// Social-network example: the paper motivates the NCC model with overlay and
// peer-to-peer systems whose interaction graphs have small arboricity but
// heavy-tailed degrees. On a preferential-attachment graph we compute a
// maximal independent set (e.g. a set of mutually non-adjacent coordinators)
// and an O(a)-coloring (e.g. interference-free slot assignment), both in
// O((a + log n) polylog n) rounds despite hub nodes of huge degree. Both
// algorithms are resolved through the registry, which pairs each run with
// its verifier and summarizer.
package main

import (
	"flag"
	"fmt"
	"log"

	"ncc/internal/algo"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

func main() {
	n := flag.Int("n", 200, "number of nodes")
	flag.Parse()

	g, err := graph.Build(graph.Spec{
		Family: "pa",
		Params: param.Values{"n": float64(*n), "k": 3},
		Seed:   99,
	})
	if err != nil {
		log.Fatal(err)
	}
	deg, _ := graph.Degeneracy(g)
	fmt.Printf("network: %v, max degree %d (hubs!), degeneracy %d (sparse)\n",
		g, g.MaxDegree(), deg)

	cfg := ncc.Config{Seed: 7, Strict: true}

	// Coordinators: a maximal independent set.
	mis, err := algo.MustGet("mis").Execute(cfg, g, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !mis.Verified {
		log.Fatalf("MIS verification failed: %s", mis.VerifyErr)
	}
	fmt.Printf("MIS: %d coordinators, no two adjacent, every node covered (%d rounds)\n",
		int(mis.Metrics["size"]), mis.Stats.Rounds)

	// Slot assignment: an O(a)-coloring.
	col, err := algo.MustGet("coloring").Execute(cfg, g, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !col.Verified {
		log.Fatalf("coloring verification failed: %s", col.VerifyErr)
	}
	fmt.Printf("coloring: %d slots used (palette bound %d = O(arboricity), independent of max degree %d) in %d rounds\n",
		int(col.Metrics["colorsUsed"]), int(col.Metrics["palette"]), g.MaxDegree(), col.Stats.Rounds)
}
