// Social-network example: the paper motivates the NCC model with overlay and
// peer-to-peer systems whose interaction graphs have small arboricity but
// heavy-tailed degrees. On a preferential-attachment graph we compute a
// maximal independent set (e.g. a set of mutually non-adjacent coordinators)
// and an O(a)-coloring (e.g. interference-free slot assignment), both in
// O((a + log n) polylog n) rounds despite hub nodes of huge degree.
package main

import (
	"fmt"
	"log"

	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func main() {
	const n = 200
	g := graph.PreferentialAttachment(n, 3, 99)
	deg, _ := graph.Degeneracy(g)
	fmt.Printf("network: %v, max degree %d (hubs!), degeneracy %d (sparse)\n",
		g, g.MaxDegree(), deg)

	cfg := ncc.Config{N: n, Seed: 7, Strict: true}

	// Coordinators: a maximal independent set.
	in, st1, err := core.RunMIS(cfg, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.MIS(g, in); err != nil {
		log.Fatal(err)
	}
	size := 0
	for _, b := range in {
		if b {
			size++
		}
	}
	fmt.Printf("MIS: %d coordinators, no two adjacent, every node covered (%d rounds)\n", size, st1.Rounds)

	// Slot assignment: an O(a)-coloring.
	res, st2, err := core.RunColoring(cfg, g)
	if err != nil {
		log.Fatal(err)
	}
	colors := make([]int, n)
	palette := 0
	for u, r := range res {
		colors[u], palette = r.Color, r.Palette
	}
	if err := verify.Coloring(g, colors, palette); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coloring: %d slots used (palette bound %d = O(arboricity), independent of max degree %d) in %d rounds\n",
		verify.ColorsUsed(colors), palette, g.MaxDegree(), st2.Rounds)
}
