// Execution smoke tests for the example programs: each one is built and run
// at a tiny problem size, so the examples are exercised — not just compiled —
// by `go test ./...` and CI.
package examples

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, dir string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./" + dir}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	return string(out)
}

func TestQuickstartExample(t *testing.T) {
	out := runExample(t, "quickstart", "-n", "16")
	for _, want := range []string{"MST:", "verified optimal", "cost:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSocialNetworkExample(t *testing.T) {
	out := runExample(t, "socialnetwork", "-n", "24")
	for _, want := range []string{"MIS:", "coordinators", "coloring:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHybridExample(t *testing.T) {
	out := runExample(t, "hybrid", "-side", "4")
	for _, want := range []string{"overlay BFS", "naive flooding"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKMachineExample(t *testing.T) {
	out := runExample(t, "kmachine", "-n", "20")
	for _, want := range []string{"k-machine simulation", "k= 2:", "verified against Kruskal"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
