// k-machine example (Appendix A of the paper): a data center processes a
// large sparse graph by partitioning its vertices over k servers. Any NCC
// algorithm can be simulated there; Corollary 2 predicts about n*T/k^2
// machine rounds for a T-round NCC algorithm. We run the NCC minimum
// spanning tree of a registry-built 2-forest graph and sweep k.
package main

import (
	"flag"
	"fmt"
	"log"

	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/kmachine"
	"ncc/internal/ncc"
	"ncc/internal/param"
	"ncc/internal/verify"
)

func main() {
	n := flag.Int("n", 96, "number of nodes")
	flag.Parse()

	g, err := graph.Build(graph.Spec{
		Family: "kforest",
		Params: param.Values{"n": float64(*n), "k": 2},
		Seed:   17,
	})
	if err != nil {
		log.Fatal(err)
	}
	wg := graph.RandomWeights(g, 500, 18)
	fmt.Printf("input graph: %v\n", g)

	perNode := make([][][2]int, g.N())
	program := func(ctx *ncc.Context) {
		perNode[ctx.ID()] = core.MST(comm.NewSession(ctx), wg)
	}

	fmt.Println("k-machine simulation of the NCC MST (bandwidth 4 words/link/round):")
	for _, k := range []int{2, 4, 8, 16} {
		if k > g.N() {
			break
		}
		res, _, err := kmachine.Simulate(k, 4, ncc.Config{N: g.N(), Seed: 21, Strict: true}, program)
		if err != nil {
			log.Fatal(err)
		}
		if err := verify.MST(wg, core.CollectMSTEdges(perNode)); err != nil {
			log.Fatal(err)
		}
		pred := float64(g.N())*float64(res.NCCRounds)/float64(k*k) + float64(res.NCCRounds)
		fmt.Printf("  k=%2d: %8d machine rounds (prediction n*T/k^2 + T = %8.0f)  cross-traffic %d msgs\n",
			k, res.KRounds, pred, res.CrossMessages)
	}
	fmt.Println("MST verified against Kruskal at every k; more machines => quadratically less routing per pair.")
}
