// Quickstart: describe a run declaratively — a graph spec, an algorithm from
// the registry, the clique model — and execute it with one call. The scenario
// below computes a verified minimum spanning tree of a random connected graph
// in polylogarithmically many rounds (Theorem 3.2 of the paper); the same
// struct round-trips through JSON (see scenarios/ and `nccrun -scenario`).
package main

import (
	"flag"
	"fmt"
	"log"

	"ncc/internal/graph"
	"ncc/internal/param"
	"ncc/internal/scenario"
)

func main() {
	n := flag.Int("n", 64, "number of nodes")
	flag.Parse()

	s := scenario.Scenario{
		Name: "quickstart-mst",
		Algo: "mst",
		// A random connected graph: 2 superimposed spanning trees. In the NCC
		// model each node initially knows only its own adjacency; the
		// algorithms enforce that discipline.
		Graph:  graph.Spec{Family: "kforest", Params: param.Values{"n": float64(*n), "k": 2}, Seed: 7},
		Params: param.Values{"maxw": 1000},
		Model:  scenario.Model{Seed: 42},
	}
	rec, err := scenario.RunOne(s, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !rec.Verified {
		log.Fatalf("verification failed: %s", rec.VerifyErr)
	}

	fmt.Printf("input: %s, max degree %d\n", rec.Graph.Desc, rec.Graph.MaxDegree)
	fmt.Printf("model: capacity %d messages/node/round\n", rec.Capacity)
	// Each MST edge is known to at least one endpoint (the paper's output
	// contract); the registry's built-in verifier checked it against Kruskal.
	fmt.Printf("MST: %s — verified optimal\n", rec.Summary)
	fmt.Printf("cost: %d rounds, %d messages, max offered receive load %d (cap %d), %d drops\n",
		rec.Stats.Rounds, rec.Stats.Messages, rec.Stats.MaxRecvOffered, rec.Capacity, rec.Stats.Dropped())
}
