// Quickstart: build a Node-Capacitated Clique, hand every node its local view
// of a weighted input graph, and compute a verified minimum spanning tree in
// polylogarithmically many rounds (Theorem 3.2 of the paper).
package main

import (
	"fmt"
	"log"

	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func main() {
	// An input graph: a random connected graph with random weights. In the
	// NCC model each node initially knows only its own adjacency; the drivers
	// enforce that discipline.
	g := graph.KForest(64, 2, 7)
	wg := graph.RandomWeights(g, 1000, 8)
	fmt.Printf("input: %v, max degree %d\n", g, g.MaxDegree())

	// The clique: 64 nodes, each allowed CapFactor*ceil(log2 n) messages of
	// O(log n) bits per synchronous round.
	cfg := ncc.Config{N: g.N(), Seed: 42, Strict: true}
	fmt.Printf("model: capacity %d messages/node/round\n", cfg.Cap())

	perNode, stats, err := core.RunMST(cfg, wg)
	if err != nil {
		log.Fatal(err)
	}

	// Each MST edge is known to at least one endpoint (the paper's output
	// contract); merge and verify against Kruskal.
	edges := core.CollectMSTEdges(perNode)
	if err := verify.MST(wg, edges); err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, e := range edges {
		total += wg.Weight(e[0], e[1])
	}
	fmt.Printf("MST: %d edges, weight %d — verified optimal\n", len(edges), total)
	fmt.Printf("cost: %d rounds, %d messages, max offered receive load %d (cap %d), %d drops\n",
		stats.Rounds, stats.Messages, stats.MaxRecvOffered, cfg.Cap(), stats.Dropped())
}
