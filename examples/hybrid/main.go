// Hybrid-network example (Section 1 of the paper): cell phones share a cheap
// local-range network — here a grid of "ad-hoc links" — and additionally
// command a node-capacitated global overlay (the clique). The task is to
// compute a BFS tree of the cheap network (e.g. shortest ad-hoc relay paths
// from a gateway) using the overlay. The registry's broadcast-tree BFS needs
// O((a + D + log n) log n) rounds; naive flooding of the same graph is shown
// for comparison.
package main

import (
	"flag"
	"fmt"
	"log"

	"ncc/internal/algo"
	"ncc/internal/baseline"
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

func main() {
	side := flag.Int("side", 12, "grid side length (n = side*side)")
	flag.Parse()

	g, err := graph.Build(graph.Spec{
		Family: "grid",
		Params: param.Values{"rows": float64(*side), "cols": float64(*side)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheap-link network: %v (%dx%d grid, diameter %d)\n", g, *side, *side, graph.Diameter(g))

	cfg := ncc.Config{N: g.N(), Seed: 3, Strict: true}
	const gateway = 0

	res, err := algo.MustGet("bfs").Execute(cfg, g, param.Values{"src": gateway})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Verified {
		log.Fatalf("BFS verification failed: %s", res.VerifyErr)
	}
	fmt.Printf("overlay BFS: every phone knows its relay parent and distance (max %d hops) — %d rounds\n",
		int(res.Metrics["eccentricity"]), res.Stats.Rounds)

	stNaive, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		baseline.NaiveBFS(comm.NewSession(ctx), g, gateway)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive flooding over the overlay: %d rounds (fine here: grid degree is constant;\n", stNaive.Rounds)
	fmt.Println("  rerun the `capacity` experiment to watch flooding collapse on a star).")
}
