// Hybrid-network example (Section 1 of the paper): cell phones share a cheap
// local-range network — here a 12x12 grid of "ad-hoc links" — and
// additionally command a node-capacitated global overlay (the clique). The
// task is to compute a BFS tree of the cheap network (e.g. shortest ad-hoc
// relay paths from a gateway) using the overlay. The broadcast-tree BFS needs
// O((a + D + log n) log n) rounds; naive flooding of the same graph is shown
// for comparison.
package main

import (
	"fmt"
	"log"

	"ncc/internal/baseline"
	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func main() {
	g := graph.Grid(12, 12)
	n := g.N()
	fmt.Printf("cheap-link network: %v (12x12 grid, diameter %d)\n", g, graph.Diameter(g))

	cfg := ncc.Config{N: n, Seed: 3, Strict: true}
	const gateway = 0

	res, st, err := core.RunBFS(cfg, g, gateway)
	if err != nil {
		log.Fatal(err)
	}
	dist := make([]int, n)
	parent := make([]int, n)
	for u, r := range res {
		dist[u], parent[u] = r.Dist, r.Parent
	}
	if err := verify.BFS(g, gateway, dist, parent, true); err != nil {
		log.Fatal(err)
	}
	far := 0
	for _, d := range dist {
		far = max(far, d)
	}
	fmt.Printf("overlay BFS: every phone knows its relay parent and distance (max %d hops) — %d rounds\n", far, st.Rounds)

	stNaive, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		baseline.NaiveBFS(comm.NewSession(ctx), g, gateway)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive flooding over the overlay: %d rounds (fine here: grid degree is constant;\n", stNaive.Rounds)
	fmt.Println("  rerun the `capacity` experiment to watch flooding collapse on a star).")
}
