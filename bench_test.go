package nccrepro

// One testing.B benchmark per experiment of cmd/nccbench (see README.md). The
// interesting metric of the NCC model is rounds (and message counts), not
// wall-clock time, so every benchmark reports rounds/op, msgs/op and
// maxRecvLoad/op via b.ReportMetric; ns/op measures only the simulator.
// `go test -bench=. -benchmem` regenerates the whole set; cmd/nccbench
// prints the same data as readable tables with the theory-bound columns.

import (
	"testing"

	"ncc/internal/algo"
	"ncc/internal/baseline"
	"ncc/internal/bench"
	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/kmachine"
	"ncc/internal/ncc"
)

// measure resolves an algorithm through the registry and fails the benchmark
// on run or verification errors.
func measure(b *testing.B, name string, g *graph.Graph, seed int64) ncc.Stats {
	b.Helper()
	res, err := algo.MustGet(name).Execute(ncc.Config{Seed: seed, Strict: true}, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Verified {
		b.Fatalf("%s verification: %s", name, res.VerifyErr)
	}
	return res.Stats
}

func report(b *testing.B, st ncc.Stats) {
	b.ReportMetric(float64(st.Rounds), "rounds/op")
	b.ReportMetric(float64(st.Messages), "msgs/op")
	b.ReportMetric(float64(st.MaxRecvOffered), "maxRecvLoad/op")
	if st.Dropped() != 0 {
		b.Fatalf("benchmark run dropped %d messages", st.Dropped())
	}
}

// reportLossy is report for the naive baselines, whose entire point is that
// they overload receivers under tight capacities: drops are a measurement,
// not a failure.
func reportLossy(b *testing.B, st ncc.Stats) {
	b.ReportMetric(float64(st.Rounds), "rounds/op")
	b.ReportMetric(float64(st.Messages), "msgs/op")
	b.ReportMetric(float64(st.MaxRecvOffered), "maxRecvLoad/op")
	b.ReportMetric(float64(st.Dropped()), "dropped/op")
}

// BenchmarkMST regenerates experiment T1-MST (Table 1 row 1, Theorem 3.2).
func BenchmarkMST(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(sizeName("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := bench.MeasureMST(n, 3*n, 42)
				if err != nil {
					b.Fatal(err)
				}
				report(b, st)
			}
		})
	}
}

// BenchmarkMSTCentralizedBaseline is T1-MST's gather-and-solve comparator.
func BenchmarkMSTCentralizedBaseline(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(sizeName("n", n), func(b *testing.B) {
			g := graph.GNM(n, 3*n, 42)
			wg := graph.RandomWeights(g, int64(n)*int64(n), 43)
			for i := 0; i < b.N; i++ {
				st, err := ncc.Run(ncc.Config{N: n, Seed: 42, Strict: true}, func(ctx *ncc.Context) {
					baseline.CentralizedMST(comm.NewSession(ctx), wg)
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, st)
			}
		})
	}
}

// BenchmarkBFS regenerates experiment T1-BFS (Table 1 row 2, Theorem 5.2).
func BenchmarkBFS(b *testing.B) {
	cases := map[string]*graph.Graph{
		"grid8x8": graph.Grid(8, 8),
		"tree127": graph.BinaryTree(127),
		"gnp128":  graph.GNP(128, 0.05, 7),
		"star128": graph.Star(128),
	}
	for name, g := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := bench.MeasureBFS(g, 0, 11)
				if err != nil {
					b.Fatal(err)
				}
				report(b, st)
			}
		})
	}
}

// BenchmarkNaiveBFS is T1-BFS's flooding comparator (ablation A3).
func BenchmarkNaiveBFS(b *testing.B) {
	cases := map[string]*graph.Graph{
		"grid8x8": graph.Grid(8, 8),
		"star128": graph.Star(128),
	}
	for name, g := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := ncc.Run(ncc.Config{N: g.N(), CapFactor: 1, Seed: 5}, func(ctx *ncc.Context) {
					baseline.NaiveBFS(comm.NewSession(ctx), g, 0)
				})
				if err != nil {
					b.Fatal(err)
				}
				reportLossy(b, st)
			}
		})
	}
}

// BenchmarkMIS regenerates experiment T1-MIS (Table 1 row 3, Theorem 5.3).
func BenchmarkMIS(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(sizeName("arbo", k), func(b *testing.B) {
			g := graph.KForest(96, k, 100+int64(k))
			for i := 0; i < b.N; i++ {
				report(b, measure(b, "mis", g, 3))
			}
		})
	}
}

// BenchmarkMatching regenerates experiment T1-MM (Table 1 row 4, Thm 5.4).
func BenchmarkMatching(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(sizeName("arbo", k), func(b *testing.B) {
			g := graph.KForest(96, k, 200+int64(k))
			for i := 0; i < b.N; i++ {
				report(b, measure(b, "matching", g, 5))
			}
		})
	}
}

// BenchmarkColoring regenerates experiment T1-COL (Table 1 row 5, Thm 5.5).
func BenchmarkColoring(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(sizeName("arbo", k), func(b *testing.B) {
			g := graph.KForest(96, k, 300+int64(k))
			for i := 0; i < b.N; i++ {
				report(b, measure(b, "coloring", g, 7))
			}
		})
	}
}

// BenchmarkOrientation regenerates experiment E-ORI (Theorem 4.12).
func BenchmarkOrientation(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(sizeName("arbo", k), func(b *testing.B) {
			g := graph.KForest(96, k, 400+int64(k))
			for i := 0; i < b.N; i++ {
				report(b, measure(b, "orientation", g, 9))
			}
		})
	}
}

// BenchmarkAggregateBroadcast regenerates experiment E-AAB (Theorem 2.2).
func BenchmarkAggregateBroadcast(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(sizeName("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := ncc.Run(ncc.Config{N: n, Seed: 1, Strict: true}, func(ctx *ncc.Context) {
					s := comm.NewSession(ctx)
					comm.AggregateAndBroadcast(s, uint64(1), true, comm.Sum)
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, st)
			}
		})
	}
}

// BenchmarkAggregation regenerates experiment E-AGG (Theorem 2.3): load sweep.
func BenchmarkAggregation(b *testing.B) {
	const n = 128
	for _, members := range []int{1, 4, 16} {
		b.Run(sizeName("members", members), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := ncc.Run(ncc.Config{N: n, Seed: 13, Strict: true}, func(ctx *ncc.Context) {
					s := comm.NewSession(ctx)
					me := ctx.ID()
					var items []comm.Agg[uint64]
					for j := 0; j < members; j++ {
						g := (me + j*37 + 1) % n
						items = append(items, comm.Agg[uint64]{Group: uint64(g), Target: g, Val: 1})
					}
					comm.Aggregate(s, items, comm.Sum, members)
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, st)
			}
		})
	}
}

// BenchmarkTreeSetupAndMulticast regenerates E-TREE and E-MC (Thms 2.4/2.5).
func BenchmarkTreeSetupAndMulticast(b *testing.B) {
	const n = 128
	for _, members := range []int{1, 4, 16} {
		b.Run(sizeName("members", members), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := ncc.Run(ncc.Config{N: n, Seed: 17, Strict: true}, func(ctx *ncc.Context) {
					s := comm.NewSession(ctx)
					me := ctx.ID()
					var items []comm.TreeItem
					for j := 0; j < members; j++ {
						items = append(items, comm.TreeItem{Group: uint64((me + j*13 + 1) % n), Origin: me})
					}
					trees := s.SetupTrees(items)
					comm.Multicast(s, trees, true, uint64(me), uint64(1), comm.U64Wire{}, members)
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, st)
			}
		})
	}
}

// BenchmarkMultiAggregation regenerates E-MC's Theorem 2.6 half over
// orientation-built broadcast trees.
func BenchmarkMultiAggregation(b *testing.B) {
	g := graph.KForest(96, 2, 9)
	b.Run("kforest96", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := ncc.Run(ncc.Config{N: g.N(), Seed: 19, Strict: true}, func(ctx *ncc.Context) {
				s := comm.NewSession(ctx)
				o := core.Orient(s, g, core.OrientParams{})
				trees, _ := core.BroadcastTrees(s, g, o)
				comm.MultiAggregate(s, trees, true, uint64(ctx.ID()), uint64(ctx.ID()), comm.Min)
			})
			if err != nil {
				b.Fatal(err)
			}
			report(b, st)
		}
	})
}

// BenchmarkGossip regenerates E-CAP's Theta(n/log n) gossip bound.
func BenchmarkGossip(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(sizeName("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := ncc.Run(ncc.Config{N: n, CapFactor: 1, Seed: 3, Strict: true}, func(ctx *ncc.Context) {
					baseline.Gossip(ctx, uint64(ctx.ID()))
				})
				if err != nil {
					b.Fatal(err)
				}
				report(b, st)
			}
		})
	}
}

// BenchmarkBroadcast compares direct Theta(n/cap) against butterfly O(log n)
// broadcast (E-CAP).
func BenchmarkBroadcast(b *testing.B) {
	const n = 1024
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := ncc.Run(ncc.Config{N: n, CapFactor: 1, Seed: 3, Strict: true}, func(ctx *ncc.Context) {
				baseline.DirectBroadcast(ctx, 0, 5)
			})
			if err != nil {
				b.Fatal(err)
			}
			report(b, st)
		}
	})
	b.Run("butterfly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := ncc.Run(ncc.Config{N: n, CapFactor: 1, Seed: 3, Strict: true}, func(ctx *ncc.Context) {
				baseline.ButterflyBroadcast(comm.NewSession(ctx), 0, 5)
			})
			if err != nil {
				b.Fatal(err)
			}
			report(b, st)
		}
	})
}

// BenchmarkKMachine regenerates experiment E-KM (Appendix A, Corollary 2).
func BenchmarkKMachine(b *testing.B) {
	g := graph.Grid(8, 8)
	program := func(ctx *ncc.Context) {
		s := comm.NewSession(ctx)
		o := core.Orient(s, g, core.OrientParams{})
		trees, lhat := core.BroadcastTrees(s, g, o)
		core.BFS(s, g, trees, lhat, 0)
	}
	for _, k := range []int{2, 4, 8} {
		b.Run(sizeName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, st, err := kmachine.Simulate(k, 4, ncc.Config{N: g.N(), Seed: 5, Strict: true}, program)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.KRounds), "kRounds/op")
				report(b, st)
			}
		})
	}
}

// BenchmarkTreeSetupStar is ablation A1: naive vs orientation-based
// broadcast-tree setup on the paper's star worst case.
func BenchmarkTreeSetupStar(b *testing.B) {
	star := graph.Star(256)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := ncc.Run(ncc.Config{N: star.N(), Seed: 31, Strict: true}, func(ctx *ncc.Context) {
				baseline.NaiveTreeSetup(comm.NewSession(ctx), star)
			})
			if err != nil {
				b.Fatal(err)
			}
			report(b, st)
		}
	})
	b.Run("oriented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := ncc.Run(ncc.Config{N: star.N(), Seed: 31, Strict: true}, func(ctx *ncc.Context) {
				s := comm.NewSession(ctx)
				o := core.Orient(s, star, core.OrientParams{})
				core.BroadcastTrees(s, star, o)
			})
			if err != nil {
				b.Fatal(err)
			}
			report(b, st)
		}
	})
}

// BenchmarkSimulatorThroughput measures the raw simulator (rounds/sec with a
// trivial program), to separate harness cost from algorithm cost. The
// workers sub-benchmarks compare the serial coordinator against the sharded
// delivery pool (identical results per seed; see also the BenchmarkEngine*
// set in internal/ncc for dense/sparse/overload traffic shapes).
func BenchmarkSimulatorThroughput(b *testing.B) {
	const n = 256
	for _, w := range []int{1, 0} { // 1 = serial, 0 = GOMAXPROCS
		b.Run("workers="+itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := ncc.Run(ncc.Config{N: n, Seed: 1, Workers: w}, func(ctx *ncc.Context) {
					for r := 0; r < 100; r++ {
						ctx.Send((ctx.ID()+1)%n, ncc.Word(1))
						ctx.EndRound()
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(100*b.N), "simRounds")
		})
	}
}

func sizeName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
