module ncc

go 1.22
