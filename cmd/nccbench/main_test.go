package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListExperiments(t *testing.T) {
	code, out, errw := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"mst", "bfs", "coloring", "kmachine"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment list missing %q:\n%s", want, out)
		}
	}
}

func TestRunOneExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	code, out, errw := runCapture(t, "-exp", "bfs", "-quick")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "### experiment bfs") || !strings.Contains(out, "==") {
		t.Errorf("experiment produced no table:\n%s", out)
	}
}

func TestWorkersFlagDoesNotChangeMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	code1, out1, errw1 := runCapture(t, "-exp", "bfs", "-quick", "-workers", "1")
	if code1 != 0 {
		t.Fatalf("workers=1 exit %d, stderr: %s", code1, errw1)
	}
	code, out8, errw := runCapture(t, "-exp", "bfs", "-quick", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if out1 != out8 {
		t.Errorf("-workers changed measured tables:\n--- w=1:\n%s\n--- w=8:\n%s", out1, out8)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	code, _, errw := runCapture(t, "-exp", "nope")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errw, "unknown experiment") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}
