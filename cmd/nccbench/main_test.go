package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListExperiments(t *testing.T) {
	code, out, errw := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"mst", "bfs", "coloring", "kmachine"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment list missing %q:\n%s", want, out)
		}
	}
}

func TestRunOneExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	code, out, errw := runCapture(t, "-exp", "bfs", "-quick")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "### experiment bfs") || !strings.Contains(out, "==") {
		t.Errorf("experiment produced no table:\n%s", out)
	}
}

func TestWorkersFlagDoesNotChangeMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	code1, out1, errw1 := runCapture(t, "-exp", "bfs", "-quick", "-workers", "1")
	if code1 != 0 {
		t.Fatalf("workers=1 exit %d, stderr: %s", code1, errw1)
	}
	code, out8, errw := runCapture(t, "-exp", "bfs", "-quick", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if stripPerf(out1) != stripPerf(out8) {
		t.Errorf("-workers changed measured tables:\n--- w=1:\n%s\n--- w=8:\n%s", out1, out8)
	}
}

// stripPerf drops the per-experiment perf footer: wall time, allocations and
// MB/s legitimately change with the worker count — only the measured model
// quantities (rounds, messages, loads) must not.
func stripPerf(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "perf: ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

func TestJSONModeEmitsParseableLines(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	code, out, errw := runCapture(t, "-exp", "load", "-quick", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("JSON mode emitted %d lines:\n%s", len(lines), out)
	}
	sawTable := false
	for _, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line does not parse as JSON: %q: %v", line, err)
		}
		if v["experiment"] != "load" {
			t.Errorf("line missing experiment tag: %q", line)
		}
		if _, ok := v["table"]; ok {
			sawTable = true
		}
	}
	if !sawTable {
		t.Errorf("no table line in JSON output:\n%s", out)
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.out", dir+"/mem.out"
	code, _, errw := runCapture(t, "-exp", "bfs", "-quick", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	code, _, errw := runCapture(t, "-exp", "nope")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errw, "unknown experiment") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}
