// Command nccbench regenerates the paper's evaluation: every Table 1 row and
// every theorem-level bound as a measured table (see README.md's experiment
// index). With -json, every experiment header, table and note is emitted as
// one self-describing JSON line, producing a diffable benchmark-trajectory
// artifact (CI uploads the quick sweep on every push).
//
// Usage:
//
//	nccbench -list
//	nccbench -exp mst
//	nccbench -exp all [-quick] [-workers 4] [-json]
//	nccbench -exp gossip -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ncc/internal/bench"
	"ncc/internal/ncc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, runs the selected
// experiments, and returns a process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nccbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment name (see -list) or 'all'")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast run")
	list := fs.Bool("list", false, "list experiments and exit")
	jsonOut := fs.Bool("json", false, "emit experiment output as JSON lines")
	workers := fs.Int("workers", 0, "round-engine delivery workers (0 = GOMAXPROCS); does not change results")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to `file`")
	memprofile := fs.String("memprofile", "", "write a heap profile to `file` after the experiments finish")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	bench.Workers = *workers

	// Profiling hooks, so hot-path regressions are diagnosable from the CLI
	// without editing code: go tool pprof <binary> cpu.out
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // record the settled heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", e.Name, e.Desc)
		}
		return 0
	}
	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; use -list\n", *exp)
			return 2
		}
		selected = []bench.Experiment{e}
	}
	r := bench.NewReporter(stdout, *jsonOut)
	for _, e := range selected {
		r.Begin(e)
		// Meter each experiment: wall time, heap allocations and payload
		// words moved through the engine, so the trajectory artifact
		// records allocation and throughput trends, not just ns/op.
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		_, words0 := ncc.TrafficTotals()
		start := time.Now()
		var err error
		// Label the experiment's CPU samples so a -cpuprofile over -exp all
		// segments per experiment: go tool pprof -tagfocus exp=mst cpu.out
		pprof.Do(context.Background(), pprof.Labels("exp", e.Name), func(context.Context) {
			err = e.Run(r, *quick)
		})
		elapsed := time.Since(start)
		_, words1 := ncc.TrafficTotals()
		runtime.ReadMemStats(&m1)
		if err != nil {
			fmt.Fprintf(stderr, "experiment %s failed: %v\n", e.Name, err)
			return 1
		}
		mbPerS := 0.0
		if s := elapsed.Seconds(); s > 0 {
			mbPerS = float64(words1-words0) * 8 / 1e6 / s
		}
		r.Perf(float64(elapsed.Nanoseconds()), float64(m1.Mallocs-m0.Mallocs), mbPerS)
	}
	return 0
}
