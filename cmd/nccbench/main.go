// Command nccbench regenerates the paper's evaluation: every Table 1 row and
// every theorem-level bound as a measured table (see DESIGN.md's experiment
// index).
//
// Usage:
//
//	nccbench -list
//	nccbench -exp mst
//	nccbench -exp all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"ncc/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment name (see -list) or 'all'")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast run")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Desc)
		}
		return
	}
	if *exp == "all" {
		for _, e := range bench.All() {
			fmt.Printf("\n### experiment %s — %s\n", e.Name, e.Desc)
			if err := e.Run(os.Stdout, *quick); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.Name, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := bench.Get(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("### experiment %s — %s\n", e.Name, e.Desc)
	if err := e.Run(os.Stdout, *quick); err != nil {
		fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
		os.Exit(1)
	}
}
