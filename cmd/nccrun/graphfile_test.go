package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/graph"
	"ncc/internal/graphio"
	"ncc/internal/param"
	"ncc/internal/service"
)

// stageGraph builds a generator graph and stores it in a fresh store,
// returning the store dir, the content hash, and a standalone .nccg copy.
func stageGraph(t *testing.T) (dir, hash, nccgPath string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "graphs")
	st, err := graphio.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(graph.Spec{Family: "pa", Params: param.Values{"n": 64, "k": 2}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if hash, err = st.PutGraph(g); err != nil {
		t.Fatal(err)
	}
	nccgPath = filepath.Join(t.TempDir(), "g.nccg")
	if err := graphio.WriteFile(nccgPath, g); err != nil {
		t.Fatal(err)
	}
	return dir, hash, nccgPath
}

// TestRunGraphFileByHashAndPath runs the same real graph through -graph-file
// both ways — stored hash and raw .nccg path — with degree-proportional
// capacities, and expects identical verified records.
func TestRunGraphFileByHashAndPath(t *testing.T) {
	dir, hash, nccgPath := stageGraph(t)

	code, byHash, errw := runCapture(t, "-graph-dir", dir, "-graph-file", hash, "-algo", "mis", "-json")
	if code != 0 {
		t.Fatalf("by hash: exit %d, stderr: %s", code, errw)
	}
	var rec struct {
		Scenario struct {
			Graph struct {
				Family string `json:"family"`
				File   string `json:"file"`
			} `json:"graph"`
		} `json:"scenario"`
		Graph struct {
			N int `json:"n"`
		} `json:"graph"`
		Verified bool `json:"verified"`
	}
	if err := json.Unmarshal([]byte(byHash), &rec); err != nil {
		t.Fatalf("decoding record: %v\n%s", err, byHash)
	}
	if rec.Scenario.Graph.Family != "file" || rec.Scenario.Graph.File != hash {
		t.Fatalf("scenario echo = %+v, want file family with %s", rec.Scenario.Graph, hash)
	}
	if !rec.Verified || rec.Graph.N != 64 {
		t.Fatalf("run not verified or wrong graph: %s", byHash)
	}

	// Ingesting the standalone .nccg lands on the same hash, so the record
	// (scenario echo included) is identical.
	code, byPath, errw := runCapture(t, "-graph-dir", dir, "-graph-file", nccgPath, "-algo", "mis", "-json")
	if code != 0 {
		t.Fatalf("by path: exit %d, stderr: %s", code, errw)
	}
	if byPath != byHash {
		t.Fatalf("-graph-file path vs hash records differ:\n%s\n%s", byPath, byHash)
	}
}

// TestRunGraphFileErrors pins usage errors: a missing hash and a bogus path
// are both exit 2 (caught before execution).
func TestRunGraphFileErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "empty")
	code, _, errw := runCapture(t, "-graph-dir", dir, "-graph-file", filepath.Join(dir, "nope.nccg"), "-algo", "mis")
	if code != 2 {
		t.Fatalf("bogus path: exit %d (stderr %s), want 2", code, errw)
	}
	// A well-formed hash that is not in the store passes static validation
	// but fails at run time (exit 1) with the resolver's hint.
	code, _, errw = runCapture(t, "-graph-dir", dir, "-graph-file", strings.Repeat("09", 32), "-algo", "mis")
	if code != 1 || !strings.Contains(errw, "nccgraph") {
		t.Fatalf("missing hash: exit %d, stderr %q; want 1 with the ingest hint", code, errw)
	}
}

// TestRemoteUploadsGraph: submitting a file-family scenario with -remote
// first pushes the locally stored graph to the daemon's /v1/graphs route, so
// a daemon that has never seen the graph can execute the job; the streamed
// records match the local run byte for byte.
func TestRemoteUploadsGraph(t *testing.T) {
	dir, hash, _ := stageGraph(t)
	serverStore := filepath.Join(t.TempDir(), "server-graphs")
	svc, err := service.New(service.Config{WorkerBudget: 4, GraphDir: serverStore})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	args := []string{"-graph-dir", dir, "-graph-file", hash, "-algo", "mis", "-json"}
	codeL, outL, errwL := runCapture(t, args...)
	if codeL != 0 {
		t.Fatalf("local exit %d, stderr: %s", codeL, errwL)
	}
	codeR, outR, errwR := runCapture(t, append(args, "-remote", ts.URL)...)
	if codeR != 0 {
		t.Fatalf("remote exit %d, stderr: %s", codeR, errwR)
	}
	if outR != outL {
		t.Fatalf("remote file-graph records differ from local:\nlocal:  %s\nremote: %s", outL, outR)
	}
	if _, err := os.Stat(filepath.Join(serverStore, hash+".nccg")); err != nil {
		t.Fatalf("graph was not uploaded to the daemon's store: %v", err)
	}
}

// TestListIncludesCapacityPolicies: the registry dump names every registered
// capacity policy alongside algorithms, families, and fault models.
func TestListIncludesCapacityPolicies(t *testing.T) {
	code, out, errw := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "capacity policies:") {
		t.Fatalf("-list missing capacity policies section:\n%s", out)
	}
	for _, name := range graph.CapacityPolicyNames() {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing capacity policy %q", name)
		}
	}
}
