package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/obs"
)

const traceSweepSpec = `{
	"algo": "mis",
	"graph": {"family": "kforest", "params": {"n": 16, "k": 2}, "seed": 1},
	"model": {"capfactor": 4, "seed": 1},
	"sweep": {"seeds": [1, 2]}
}`

func writeSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceFlag covers the local -trace path: the file validates, covers every
// sweep run, and the remote fetch of the same scenario is byte-identical.
func TestTraceFlag(t *testing.T) {
	spec := writeSpec(t, traceSweepSpec)
	local := filepath.Join(t.TempDir(), "local.ndjson")
	code, out, errw := runCapture(t, "-scenario", spec, "-trace", local)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "sha256:") {
		t.Errorf("output missing trace summary:\n%s", out)
	}
	data, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(data); err != nil {
		t.Fatalf("local trace invalid: %v", err)
	}
	tr, err := obs.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 2 {
		t.Fatalf("trace covers %d runs, want 2", len(tr.Runs))
	}

	ts := startDaemon(t)
	remote := filepath.Join(t.TempDir(), "remote.ndjson")
	code, _, errw = runCapture(t, "-scenario", spec, "-remote", ts.URL, "-trace", remote)
	if code != 0 {
		t.Fatalf("remote exit %d, stderr: %s", code, errw)
	}
	got, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("remote trace differs from local:\nlocal %d bytes, remote %d bytes", len(data), len(got))
	}
}

// TestTraceTimingFlag pins that -trace-timing interleaves non-canonical "g"
// lines without disturbing the canonical content (same hash as a plain trace).
func TestTraceTimingFlag(t *testing.T) {
	spec := writeSpec(t, traceSweepSpec)
	plain := filepath.Join(t.TempDir(), "plain.ndjson")
	timed := filepath.Join(t.TempDir(), "timed.ndjson")
	if code, _, errw := runCapture(t, "-scenario", spec, "-trace", plain); code != 0 {
		t.Fatalf("plain exit %d, stderr: %s", code, errw)
	}
	if code, _, errw := runCapture(t, "-scenario", spec, "-trace", timed, "-trace-timing"); code != 0 {
		t.Fatalf("timed exit %d, stderr: %s", code, errw)
	}
	pb, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := os.ReadFile(timed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tb, []byte(`{"t":"g"`)) {
		t.Fatal("-trace-timing produced no timing lines")
	}
	split := func(b []byte) [][]byte {
		var out [][]byte
		for _, ln := range bytes.Split(b, []byte("\n")) {
			if len(ln) > 0 {
				out = append(out, ln)
			}
		}
		return out
	}
	if ph, th := obs.Hash(split(pb)), obs.Hash(split(tb)); ph != th {
		t.Fatalf("canonical hash changed with timing lines: %s vs %s", ph, th)
	}

	if code, _, errw := runCapture(t, "-scenario", spec, "-trace-timing"); code != 2 {
		t.Fatalf("exit %d for -trace-timing without -trace, want 2; stderr: %s", code, errw)
	}
}

// TestProfileFlags mirrors nccbench's contract: both profile files exist and
// are non-empty after a run.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.out"), filepath.Join(dir, "mem.out")
	code, _, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestRemoteRejectsProfiles pins that profiling flags are a usage error with
// -remote — they would profile the idle client, not the run.
func TestRemoteRejectsProfiles(t *testing.T) {
	code, _, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16",
		"-remote", "http://127.0.0.1:1", "-cpuprofile", filepath.Join(t.TempDir(), "cpu.out"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "not supported with -remote") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}
