package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ncc/internal/algo"
	"ncc/internal/comm"
	"ncc/internal/service"
)

func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{WorkerBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteMatchesLocalJSON is the client half of the acceptance criterion:
// `nccrun -remote ... -json` must emit exactly the bytes of a local
// `nccrun -json` run of the same scenario — the remote path passes stream
// lines through verbatim.
func TestRemoteMatchesLocalJSON(t *testing.T) {
	ts := startDaemon(t)
	path := filepath.Join(t.TempDir(), "sweep.json")
	spec := `{
		"algo": "mis",
		"graph": {"family": "kforest", "params": {"n": 16, "k": 2}, "seed": 1},
		"model": {"capfactor": 4, "seed": 1},
		"sweep": {"n": [12, 16], "seeds": [1, 2]}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	codeL, outL, errwL := runCapture(t, "-scenario", path, "-json")
	if codeL != 0 {
		t.Fatalf("local exit %d, stderr: %s", codeL, errwL)
	}
	codeR, outR, errwR := runCapture(t, "-scenario", path, "-remote", ts.URL, "-json")
	if codeR != 0 {
		t.Fatalf("remote exit %d, stderr: %s", codeR, errwR)
	}
	if outL != outR {
		t.Fatalf("remote JSON differs from local:\n--- local:\n%s\n--- remote:\n%s", outL, outR)
	}

	// Second remote run hits the cache and still matches byte for byte; the
	// human-readable mode announces the hit.
	codeR2, outR2, errwR2 := runCapture(t, "-scenario", path, "-remote", ts.URL, "-json")
	if codeR2 != 0 {
		t.Fatalf("cached remote exit %d, stderr: %s", codeR2, errwR2)
	}
	if outR2 != outL {
		t.Fatal("cached remote stream differs from local run")
	}
	code, out, _ := runCapture(t, "-scenario", path, "-remote", ts.URL)
	if code != 0 {
		t.Fatalf("human-mode remote exit %d", code)
	}
	if !strings.Contains(out, "served from result cache") {
		t.Errorf("human mode did not announce the cache hit:\n%s", out)
	}
}

// TestRemoteDegradedRunExitsZero pins that the remote tail applies the same
// degradation contract as a local run: a fault-injected scenario whose
// survivors are consistent exits 0 (with the stream still byte-identical),
// it does not report "verification failed".
func TestRemoteDegradedRunExitsZero(t *testing.T) {
	ts := startDaemon(t)
	path := filepath.Join(t.TempDir(), "faulted.json")
	spec := `{
		"algo": "mis",
		"graph": {"family": "kforest", "params": {"n": 32, "k": 2}, "seed": 7},
		"model": {"seed": 11, "maxrounds": 131072},
		"faults": {"models": [{"model": "crash", "params": {"count": 3, "round": 20}}]}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	codeL, outL, errwL := runCapture(t, "-scenario", path, "-json")
	if codeL != 0 {
		t.Fatalf("local degraded exit %d, stderr: %s", codeL, errwL)
	}
	codeR, outR, errwR := runCapture(t, "-scenario", path, "-remote", ts.URL, "-json")
	if codeR != 0 {
		t.Fatalf("remote degraded exit %d, stderr: %s", codeR, errwR)
	}
	if strings.Contains(errwR, "verification failed") {
		t.Fatalf("remote degraded run reported verification failure: %s", errwR)
	}
	if outL != outR {
		t.Fatalf("remote degraded JSON differs from local:\n--- local:\n%s\n--- remote:\n%s", outL, outR)
	}
}

// TestRemoteFlagsMode checks that flag-assembled scenarios (no -scenario
// file) also submit, and that human-readable remote output matches the local
// presentation.
func TestRemoteFlagsMode(t *testing.T) {
	ts := startDaemon(t)
	args := []string{"-algo", "bfs", "-graph", "grid", "-rows", "4", "-cols", "4"}
	codeL, outL, errwL := runCapture(t, args...)
	if codeL != 0 {
		t.Fatalf("local exit %d, stderr: %s", codeL, errwL)
	}
	codeR, outR, errwR := runCapture(t, append(args, "-remote", ts.URL)...)
	if codeR != 0 {
		t.Fatalf("remote exit %d, stderr: %s", codeR, errwR)
	}
	if outL != outR {
		t.Fatalf("remote human output differs from local:\n--- local:\n%s\n--- remote:\n%s", outL, outR)
	}
}

func TestRemoteRejectsTimeline(t *testing.T) {
	code, _, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16",
		"-remote", "http://127.0.0.1:1", "-timeline", filepath.Join(t.TempDir(), "tl.csv"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "-timeline is not supported with -remote") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}

func init() {
	// Test-only algorithm that runs until the engine aborts it, so the
	// canceled-job exit-code test has an in-flight run to kill.
	algo.Register(algo.Algorithm[int]{
		Name: "spin-test",
		Desc: "test-only: spins through rounds until aborted",
		Node: func(s *comm.Session, in *algo.Input) int {
			for {
				s.Ctx.EndRound()
				time.Sleep(200 * time.Microsecond)
			}
		},
	})
}

// TestRemoteCanceledJobExitsNonzero pins that a stream ending because the
// job was canceled server-side is not reported as success: partial results
// must yield exit 1.
func TestRemoteCanceledJobExitsNonzero(t *testing.T) {
	ts := startDaemon(t)
	spin := `{"algo":"spin-test","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1}}`
	path := filepath.Join(t.TempDir(), "spin.json")
	if err := os.WriteFile(path, []byte(spin), 0o644); err != nil {
		t.Fatal(err)
	}
	// Pre-submit so the job id is known; the client's own submission
	// coalesces onto it (HTTP 200, same id).
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spin))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	go func() {
		time.Sleep(300 * time.Millisecond)
		resp, err := http.Post(ts.URL+"/v1/jobs/"+info.ID+"/cancel", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	code, _, errw := runCapture(t, "-scenario", path, "-remote", ts.URL, "-json")
	if code != 1 {
		t.Fatalf("exit = %d tailing a canceled job, want 1; stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "ended canceled") {
		t.Errorf("stderr missing cancellation diagnosis: %s", errw)
	}
}

// TestRemoteInterruptCancelsJob covers Ctrl-C during -remote: the client
// must cancel the job on the daemon (DELETE /v1/jobs/{id}) before exiting,
// so an interrupted tail doesn't leave an orphaned sweep burning the
// daemon's engine-worker budget.
func TestRemoteInterruptCancelsJob(t *testing.T) {
	ts := startDaemon(t)
	spin := `{"algo":"spin-test","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1}}`
	path := filepath.Join(t.TempDir(), "spin.json")
	if err := os.WriteFile(path, []byte(spin), 0o644); err != nil {
		t.Fatal(err)
	}

	sigs := make(chan os.Signal, 1)
	type result struct {
		code      int
		out, errw string
	}
	done := make(chan result, 1)
	go func() {
		var out, errw strings.Builder
		code := run([]string{"-scenario", path, "-remote", ts.URL, "-json"}, &out, &errw, sigs)
		done <- result{code, out.String(), errw.String()}
	}()

	// Wait until the daemon actually has the job running, then interrupt.
	var jobID string
	deadline := time.Now().Add(10 * time.Second)
	for jobID == "" {
		if time.Now().After(deadline) {
			t.Fatal("job never started on the daemon")
		}
		resp, err := http.Get(ts.URL + "/v1/jobs?state=running")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []struct {
				ID string `json:"id"`
			} `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) == 1 {
			jobID = list.Jobs[0].ID
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	sigs <- os.Interrupt

	var res result
	select {
	case res = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after the interrupt")
	}
	if res.code != 1 {
		t.Fatalf("exit = %d after interrupt, want 1; stderr: %s", res.code, res.errw)
	}
	if !strings.Contains(res.errw, "interrupted") {
		t.Errorf("stderr missing interrupt diagnosis: %s", res.errw)
	}

	// The cancel reached the daemon: the job ends canceled, not running.
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon job state = %q after interrupt, want canceled", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRemoteUnreachableDaemon(t *testing.T) {
	code, _, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16",
		"-remote", "http://127.0.0.1:1")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "error:") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}
