package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture invokes run and returns (exit code, stdout, stderr).
func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunBFSEndToEnd(t *testing.T) {
	code, out, errw := runCapture(t, "-algo", "bfs", "-graph", "grid", "-rows", "4", "-cols", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"graph:", "BFS tree from 0", "(verified)", "stats: rounds="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunColoringWithWorkers(t *testing.T) {
	// The -workers flag must not change results: same seed, two worker
	// counts, identical output.
	code1, out1, errw1 := runCapture(t, "-algo", "coloring", "-graph", "kforest", "-n", "32", "-workers", "1")
	if code1 != 0 {
		t.Fatalf("workers=1 exit %d, stderr: %s", code1, errw1)
	}
	code, out8, errw := runCapture(t, "-algo", "coloring", "-graph", "kforest", "-n", "32", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out8, "proper coloring") {
		t.Errorf("output missing coloring summary:\n%s", out8)
	}
	if out1 != out8 {
		t.Errorf("-workers changed output:\n--- w=1:\n%s\n--- w=8:\n%s", out1, out8)
	}
}

func TestRunTimelineCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.csv")
	code, out, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16", "-timeline", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "timeline:") {
		t.Errorf("output missing timeline summary:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,messages,words,maxRecvOffered\n") {
		t.Errorf("CSV missing header:\n%.100s", data)
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	code, _, errw := runCapture(t, "-algo", "nope", "-n", "8")
	if code != 2 {
		t.Fatalf("exit = %d, want usage-error exit 2", code)
	}
	if !strings.Contains(errw, "unknown algorithm") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}

func TestRunRejectsUnknownGraph(t *testing.T) {
	code, _, errw := runCapture(t, "-graph", "nope")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "unknown graph family") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	code, _, _ := runCapture(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
