package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// runCapture invokes run and returns (exit code, stdout, stderr).
func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw, nil)
	return code, out.String(), errw.String()
}

func TestRunBFSEndToEnd(t *testing.T) {
	code, out, errw := runCapture(t, "-algo", "bfs", "-graph", "grid", "-rows", "4", "-cols", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"graph:", "BFS tree from 0", "(verified)", "stats: rounds="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunColoringWithWorkers(t *testing.T) {
	// The -workers flag must not change results: same seed, two worker
	// counts, identical output.
	code1, out1, errw1 := runCapture(t, "-algo", "coloring", "-graph", "kforest", "-n", "32", "-workers", "1")
	if code1 != 0 {
		t.Fatalf("workers=1 exit %d, stderr: %s", code1, errw1)
	}
	code, out8, errw := runCapture(t, "-algo", "coloring", "-graph", "kforest", "-n", "32", "-workers", "8")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out8, "proper coloring") {
		t.Errorf("output missing coloring summary:\n%s", out8)
	}
	if out1 != out8 {
		t.Errorf("-workers changed output:\n--- w=1:\n%s\n--- w=8:\n%s", out1, out8)
	}
}

func TestRunTimelineCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.csv")
	// JSON mode exposes the measured round count, so the CSV row count can be
	// checked exactly: header + one row per round.
	code, out, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16", "-timeline", path, "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	var rec struct {
		Stats struct {
			Rounds int `json:"rounds"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("JSON record does not parse: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if lines[0] != "round,messages,words,maxRecvOffered" {
		t.Errorf("CSV missing header: %q", lines[0])
	}
	if rows := len(lines) - 1; rows != rec.Stats.Rounds {
		t.Errorf("CSV has %d rows, run took %d rounds", rows, rec.Stats.Rounds)
	}
	for i, line := range lines[1:] {
		if !strings.HasPrefix(line, strconv.Itoa(i)+",") {
			t.Fatalf("row %d misnumbered: %q", i, line)
		}
	}
}

func TestRunTimelineSummaryLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.csv")
	code, out, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16", "-timeline", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "timeline:") {
		t.Errorf("output missing timeline summary:\n%s", out)
	}
}

func TestRunTimelineUnwritablePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "tl.csv")
	code, _, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16", "-timeline", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for unwritable timeline path", code)
	}
	if !strings.Contains(errw, "error:") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}

func TestRunTimelineRejectsSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.csv")
	code, _, errw := runCapture(t, "-algo", "mis", "-graph", "cycle", "-n", "16",
		"-timeline", path, "-sweep-seeds", "1,2")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errw)
	}
}

func TestRunJSONRecordParses(t *testing.T) {
	code, out, errw := runCapture(t, "-algo", "mis", "-graph", "kforest", "-n", "24", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 {
		t.Fatalf("-json must emit exactly one line, got %d:\n%s", len(lines), out)
	}
	var rec struct {
		Scenario struct {
			Algo  string `json:"algo"`
			Graph struct {
				Family string `json:"family"`
			} `json:"graph"`
		} `json:"scenario"`
		Stats struct {
			Rounds int `json:"rounds"`
		} `json:"stats"`
		Verified bool `json:"verified"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("JSON record does not parse: %v\n%s", err, lines[0])
	}
	if rec.Scenario.Algo != "mis" || rec.Scenario.Graph.Family != "kforest" {
		t.Errorf("scenario echo wrong: %+v", rec.Scenario)
	}
	if !rec.Verified || rec.Stats.Rounds == 0 {
		t.Errorf("record incomplete: verified=%v rounds=%d", rec.Verified, rec.Stats.Rounds)
	}
}

func TestRunSweepIsDeterministic(t *testing.T) {
	args := []string{"-algo", "mis", "-graph", "kforest", "-n", "16",
		"-sweep-n", "12,16", "-sweep-seeds", "1,2", "-json"}
	code1, out1, errw1 := runCapture(t, args...)
	if code1 != 0 {
		t.Fatalf("exit %d, stderr: %s", code1, errw1)
	}
	lines := strings.Split(strings.TrimSpace(out1), "\n")
	if len(lines) != 4 {
		t.Fatalf("sweep produced %d records, want 4:\n%s", len(lines), out1)
	}
	for _, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("sweep line does not parse: %v\n%s", err, line)
		}
	}
	code2, out2, _ := runCapture(t, args...)
	if code2 != 0 || out1 != out2 {
		t.Errorf("sweep output not deterministic across runs")
	}
}

func TestRunScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	spec := `{
		"algo": "coloring",
		"graph": {"family": "kforest", "params": {"n": 20, "k": 2}, "seed": 3},
		"model": {"seed": 3},
		"sweep": {"seeds": [3, 4]}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := runCapture(t, "-scenario", path, "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if n := strings.Count(strings.TrimSpace(out), "\n") + 1; n != 2 {
		t.Errorf("got %d records, want 2:\n%s", n, out)
	}
	if strings.Contains(out, `"verified":false`) {
		t.Errorf("scenario runs failed verification:\n%s", out)
	}
	// The shipped example scenario must stay loadable.
	code, _, errw = runCapture(t, "-scenario", filepath.Join("..", "..", "scenarios", "mis-sweep.json"), "-json")
	if code != 0 {
		t.Fatalf("shipped scenario rejected: exit %d, stderr: %s", code, errw)
	}
}

func TestRunListsRegistries(t *testing.T) {
	code, out, errw := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"algorithms:", "graph families:", "mst", "kforest", "params:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunListScenarioHashes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	spec := `{
		"algo": "mis",
		"graph": {"family": "kforest", "params": {"n": 16, "k": 2}, "seed": 5},
		"model": {"seed": 5},
		"sweep": {"seeds": [5, 6]}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := runCapture(t, "-list", "-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5 (scenario/hash/runs + 2 runs):\n%s", len(lines), out)
	}
	if lines[0] != "scenario mis" {
		t.Errorf("header line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "hash ") || len(lines[1]) != len("hash ")+64 {
		t.Errorf("sweep-level hash line malformed: %q", lines[1])
	}
	if lines[2] != "runs 2" {
		t.Errorf("runs line: %q", lines[2])
	}
	hashes := map[string]bool{strings.TrimPrefix(lines[1], "hash "): true}
	for i, line := range lines[3:] {
		if !strings.Contains(line, "seed="+strconv.Itoa(5+i)) {
			t.Errorf("run %d missing its sweep seed: %q", i, line)
		}
		j := strings.LastIndex(line, " hash ")
		if j < 0 {
			t.Fatalf("run %d has no hash: %q", i, line)
		}
		h := line[j+len(" hash "):]
		if len(h) != 64 || hashes[h] {
			t.Errorf("run %d hash not a fresh 64-hex id: %q", i, h)
		}
		hashes[h] = true
	}
	// Nothing executed: listing the hashes of a sweep must be instant and
	// side-effect free, so the output is deterministic across invocations.
	_, again, _ := runCapture(t, "-list", "-scenario", path)
	if out != again {
		t.Errorf("-list -scenario output not deterministic")
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	code, _, errw := runCapture(t, "-algo", "nope", "-n", "8")
	if code != 2 {
		t.Fatalf("exit = %d, want usage-error exit 2", code)
	}
	if !strings.Contains(errw, "unknown algorithm") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}

func TestRunRejectsUnknownGraph(t *testing.T) {
	code, _, errw := runCapture(t, "-graph", "nope")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "unknown graph family") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
}

func TestRunRejectsUndeclaredExplicitFlag(t *testing.T) {
	// bipartite is sized by n1/n2, so an explicit -n must be rejected loudly
	// instead of silently running the default-size graph.
	code, _, errw := runCapture(t, "-algo", "mis", "-graph", "bipartite", "-n", "128")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errw)
	}
	if !strings.Contains(errw, "-n") || !strings.Contains(errw, "bipartite") {
		t.Errorf("stderr missing diagnosis: %s", errw)
	}
	// The same -n left at its default is fine: nothing was silently dropped.
	code, _, errw = runCapture(t, "-algo", "mis", "-graph", "bipartite", "-gparam", "n1=10,n2=10,p=0.4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
}

func TestRunGParamSizesUndeclaredFamilies(t *testing.T) {
	code, out, errw := runCapture(t, "-algo", "mis", "-graph", "disjoint",
		"-gparam", "parts=2,size=6", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	var rec struct {
		Graph struct {
			N int `json:"n"`
		} `json:"graph"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Graph.N != 12 {
		t.Errorf("graph has %d nodes, want parts*size = 12", rec.Graph.N)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	code, _, _ := runCapture(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
