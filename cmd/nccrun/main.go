// Command nccrun executes one Node-Capacitated Clique algorithm on one
// generated input graph and prints the result summary plus the run
// statistics (rounds, messages, loads).
//
// Usage examples:
//
//	nccrun -algo mst -graph gnm -n 128 -m 384
//	nccrun -algo mis -graph kforest -n 256 -k 4
//	nccrun -algo bfs -graph grid -rows 8 -cols 16 -src 0
//	nccrun -algo coloring -graph pa -n 200 -k 3 -workers 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes one algorithm,
// and returns a process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nccrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "mst", "algorithm: mst | bfs | mis | matching | coloring | orientation | components")
	gname := fs.String("graph", "gnm", "graph family: gnm | gnp | kforest | grid | star | tree | cycle | path | pa | hypercube")
	n := fs.Int("n", 64, "number of nodes")
	m := fs.Int("m", 0, "edges for gnm (default 3n)")
	p := fs.Float64("p", 0.1, "edge probability for gnp")
	k := fs.Int("k", 2, "forests for kforest / attachments for pa / dimension for hypercube")
	rows := fs.Int("rows", 8, "grid rows")
	cols := fs.Int("cols", 8, "grid cols")
	src := fs.Int("src", 0, "BFS source")
	maxW := fs.Int64("maxw", 1000, "maximum edge weight for mst")
	seed := fs.Int64("seed", 1, "seed (runs are deterministic per seed)")
	capf := fs.Int("capfactor", ncc.DefaultCapFactor, "capacity = capfactor * ceil(log2 n) messages/round")
	workers := fs.Int("workers", 0, "round-engine delivery workers (0 = GOMAXPROCS); does not change results")
	timelineCSV := fs.String("timeline", "", "write a per-round traffic CSV (round,messages,words,maxRecvOffered) to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	g, err := buildGraph(*gname, *n, *m, *p, *k, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := ncc.Config{N: g.N(), Seed: *seed, CapFactor: *capf, Workers: *workers, Strict: true}
	var tl *ncc.Timeline
	if *timelineCSV != "" {
		tl = &ncc.Timeline{}
		cfg.Observer = tl
	}
	fmt.Fprintf(stdout, "graph: %v  (max degree %d, degeneracy %d)\n", g, g.MaxDegree(), degeneracyOf(g))
	fmt.Fprintf(stdout, "model: n=%d, capacity=%d msgs/round\n", g.N(), cfg.Cap())

	st, err := runAlgo(*algo, cfg, g, *src, *maxW, *seed, stdout)
	if err != nil {
		if errors.Is(err, errUnknownAlgo) {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintf(stdout, "stats: %v\n", st)
	if tl != nil {
		if err := writeTimeline(*timelineCSV, tl); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(stdout, "timeline: %d rounds written to %s\n", len(tl.Samples), *timelineCSV)
	}
	return 0
}

// errUnknownAlgo marks an unrecognized -algo name, a usage error (exit 2)
// rather than a run failure (exit 1).
var errUnknownAlgo = errors.New("unknown algorithm")

// runAlgo executes and verifies one algorithm, printing its result summary.
func runAlgo(algo string, cfg ncc.Config, g *graph.Graph, src int, maxW int64, seed int64, stdout io.Writer) (ncc.Stats, error) {
	var st ncc.Stats
	var err error
	switch algo {
	case "mst":
		wg := graph.RandomWeights(g, maxW, seed+1)
		var perNode [][][2]int
		perNode, st, err = core.RunMST(cfg, wg)
		if err != nil {
			return st, err
		}
		edges := core.CollectMSTEdges(perNode)
		if err := verify.MST(wg, edges); err != nil {
			return st, err
		}
		var total int64
		for _, e := range edges {
			total += wg.Weight(e[0], e[1])
		}
		fmt.Fprintf(stdout, "minimum spanning forest: %d edges, total weight %d (verified against Kruskal)\n", len(edges), total)
	case "bfs":
		var res []core.BFSResult
		res, st, err = core.RunBFS(cfg, g, src)
		if err != nil {
			return st, err
		}
		dist := make([]int, g.N())
		parent := make([]int, g.N())
		reached, ecc := 0, 0
		for u, r := range res {
			dist[u], parent[u] = r.Dist, r.Parent
			if r.Dist >= 0 {
				reached++
				ecc = max(ecc, r.Dist)
			}
		}
		if err := verify.BFS(g, src, dist, parent, true); err != nil {
			return st, err
		}
		fmt.Fprintf(stdout, "BFS tree from %d: %d nodes reached, eccentricity %d (verified)\n", src, reached, ecc)
	case "mis":
		var in []bool
		in, st, err = core.RunMIS(cfg, g)
		if err != nil {
			return st, err
		}
		if err := verify.MIS(g, in); err != nil {
			return st, err
		}
		size := 0
		for _, b := range in {
			if b {
				size++
			}
		}
		fmt.Fprintf(stdout, "maximal independent set of size %d (verified)\n", size)
	case "matching":
		var mate []int
		mate, st, err = core.RunMatching(cfg, g)
		if err != nil {
			return st, err
		}
		if err := verify.Matching(g, mate); err != nil {
			return st, err
		}
		size := 0
		for u, v := range mate {
			if v > u {
				size++
			}
		}
		fmt.Fprintf(stdout, "maximal matching of size %d (verified)\n", size)
	case "coloring":
		var res []core.ColorResult
		res, st, err = core.RunColoring(cfg, g)
		if err != nil {
			return st, err
		}
		colors := make([]int, g.N())
		palette := 0
		for u, r := range res {
			colors[u], palette = r.Color, r.Palette
		}
		if err := verify.Coloring(g, colors, palette); err != nil {
			return st, err
		}
		fmt.Fprintf(stdout, "proper coloring with %d colors (palette bound %d, verified)\n", verify.ColorsUsed(colors), palette)
	case "orientation":
		var os []*core.Orientation
		os, st, err = core.RunOrientation(cfg, g, core.OrientParams{})
		if err != nil {
			return st, err
		}
		if err := verify.Orientation(g, core.OutLists(os), 0); err != nil {
			return st, err
		}
		fmt.Fprintf(stdout, "orientation with max outdegree %d over %d levels (verified)\n",
			verify.MaxOutdegree(core.OutLists(os)), os[0].Levels)
	case "components":
		var labels []int
		labels, st, err = core.RunComponents(cfg, g)
		if err != nil {
			return st, err
		}
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		_, want := graph.Components(g)
		if len(distinct) != want {
			return st, fmt.Errorf("found %d components, sequential says %d", len(distinct), want)
		}
		fmt.Fprintf(stdout, "%d connected components labeled (verified)\n", len(distinct))
	default:
		return st, fmt.Errorf("%w %q", errUnknownAlgo, algo)
	}
	return st, nil
}

func writeTimeline(path string, tl *ncc.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "round,messages,words,maxRecvOffered"); err != nil {
		return err
	}
	for i, s := range tl.Samples {
		if _, err := fmt.Fprintf(f, "%d,%d,%d,%d\n", i, s.Messages, s.Words, s.MaxRecvOffered); err != nil {
			return err
		}
	}
	return nil
}

func buildGraph(name string, n, m int, p float64, k, rows, cols int, seed int64) (*graph.Graph, error) {
	switch name {
	case "gnm":
		if m == 0 {
			m = 3 * n
		}
		return graph.GNM(n, m, seed), nil
	case "gnp":
		return graph.GNP(n, p, seed), nil
	case "kforest":
		return graph.KForest(n, k, seed), nil
	case "grid":
		return graph.Grid(rows, cols), nil
	case "star":
		return graph.Star(n), nil
	case "tree":
		return graph.RandomTree(n, seed), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "path":
		return graph.Path(n), nil
	case "pa":
		return graph.PreferentialAttachment(n, k, seed), nil
	case "hypercube":
		return graph.Hypercube(k), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", name)
	}
}

func degeneracyOf(g *graph.Graph) int {
	d, _ := graph.Degeneracy(g)
	return d
}
