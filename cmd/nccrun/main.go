// Command nccrun executes Node-Capacitated Clique algorithms on generated
// input graphs. Algorithms and graph families are resolved through the
// registries (internal/algo, internal/graph); a run is described by a
// scenario — assembled from flags or loaded from a JSON file — and can sweep
// over n, capfactor and seeds. Results print as human-readable summaries or,
// with -json, as one JSON record per run (scenario echo + graph info + stats
// + verification status).
//
// Usage examples:
//
//	nccrun -list
//	nccrun -algo mst -graph gnm -n 128 -m 384
//	nccrun -algo mis -graph kforest -n 256 -k 4 -json
//	nccrun -algo bfs -graph grid -rows 8 -cols 16 -src 0 -timeline rounds.csv
//	nccrun -algo matching -graph bipartite -gparam n1=64,n2=32,p=0.1
//	nccrun -algo coloring -graph pa -n 200 -k 3 -sweep-n 64,128,256 -sweep-seeds 1,2,3 -json
//	nccrun -algo mis -graph kforest -n 256 -k 4 -sweep-seeds 1,2,3 -trace run.ndjson
//	nccrun -scenario scenarios/mis-sweep.json -json
//	nccrun -scenario scenarios/mis-sweep.json -remote http://127.0.0.1:9876 -json
//	nccrun -scenario scenarios/mis-sweep.json -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"ncc/internal/algo"
	"ncc/internal/faultmodel"
	"ncc/internal/graph"
	"ncc/internal/graphio"
	"ncc/internal/ncc"
	"ncc/internal/obs"
	"ncc/internal/param"
	"ncc/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point: it parses args, executes the scenario,
// and returns a process exit code (0 ok, 1 run/verification failure, 2 usage).
// sigs feeds interrupt handling in -remote mode; nil installs the real
// SIGINT/SIGTERM handler there (tests inject their own channel). Local runs
// keep default signal disposition — Ctrl-C kills them outright.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("nccrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenarioFile := fs.String("scenario", "", "load the scenario from this JSON file (overrides the per-run flags)")
	remote := fs.String("remote", "", "submit to a running nccd at this base URL (e.g. http://127.0.0.1:9876) and tail the stream instead of executing locally")
	token := fs.String("token", "", "bearer token for a token-protected nccd (-remote)")
	list := fs.Bool("list", false, "list registered algorithms and graph families; with -scenario, list the scenario's expanded runs and canonical hashes instead")
	jsonOut := fs.Bool("json", false, "emit one JSON record per run instead of human-readable text")
	algoName := fs.String("algo", "mst", "algorithm (see -list)")
	gname := fs.String("graph", "gnm", "graph family (see -list)")
	n := fs.Int("n", 64, "number of nodes")
	m := fs.Int("m", 0, "edges for gnm (default 3n)")
	p := fs.Float64("p", 0.1, "edge probability for gnp")
	k := fs.Int("k", 2, "forests for kforest / attachments for pa / dimension for hypercube")
	rows := fs.Int("rows", 8, "grid rows")
	cols := fs.Int("cols", 8, "grid cols")
	src := fs.Int("src", 0, "BFS source")
	maxW := fs.Int64("maxw", 1000, "maximum edge weight for mst")
	seed := fs.Int64("seed", 1, "seed (runs are deterministic per seed)")
	capf := fs.Int("capfactor", ncc.DefaultCapFactor, "capacity = capfactor * ceil(log2 n) messages/round")
	graphFile := fs.String("graph-file", "", "run on a real graph: a .nccg file path (ingested into the graph store first) or the 64-hex content hash of an already-stored graph; overrides -graph")
	graphDir := fs.String("graph-dir", "", "content-addressed graph store directory (default $NCC_GRAPH_DIR or ./graphs)")
	gparam := fs.String("gparam", "", "extra graph params as name=value,... (for families like bipartite or disjoint)")
	aparam := fs.String("aparam", "", "extra algorithm params as name=value,...")
	workers := fs.Int("workers", 0, "round-engine delivery workers (0 = GOMAXPROCS); does not change results")
	timelineCSV := fs.String("timeline", "", "write a per-round traffic CSV (round,messages,words,maxRecvOffered) to this file")
	traceFile := fs.String("trace", "", "write the run's canonical NDJSON telemetry trace to this file (with -remote, fetched from the daemon)")
	traceTiming := fs.Bool("trace-timing", false, "interleave non-canonical per-shard timing lines into the -trace file (local runs only)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the local runs to `file` (pprof-labeled per run)")
	memprofile := fs.String("memprofile", "", "write a heap profile to `file` after the runs finish")
	sweepN := fs.String("sweep-n", "", "comma-separated n values to sweep")
	sweepCap := fs.String("sweep-capfactor", "", "comma-separated capfactor values to sweep")
	sweepSeeds := fs.String("sweep-seeds", "", "comma-separated seeds to sweep")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *graphDir != "" {
		graphio.SetStoreDir(*graphDir)
	}
	if *list {
		if *scenarioFile != "" {
			return listScenario(*scenarioFile, stdout, stderr)
		}
		printRegistries(stdout)
		return 0
	}

	var s scenario.Scenario
	if *scenarioFile != "" {
		var err error
		s, err = scenario.Load(*scenarioFile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *workers != 0 {
			s.Model.Workers = *workers
		}
	} else {
		flagVals := param.Values{
			"n": float64(*n), "m": float64(*m), "p": *p, "k": float64(*k),
			"rows": float64(*rows), "cols": float64(*cols),
			"src": float64(*src), "maxw": float64(*maxW),
		}
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		var err error
		s, err = fromFlags(*algoName, *gname, flagVals, explicit, *gparam, *aparam, *seed, *capf, *workers)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		sweep, err := parseSweep(*sweepN, *sweepCap, *sweepSeeds)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		s.Sweep = sweep
	}
	if *graphFile != "" {
		ref := *graphFile
		if !graphio.ValidHash(ref) {
			// A path: ingest the .nccg file into the store (idempotent) and
			// run against its content hash.
			st, err := graphio.ActiveStore()
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			if ref, err = st.PutFile(ref); err != nil {
				fmt.Fprintf(stderr, "-graph-file %s: %v\n", *graphFile, err)
				return 2
			}
		}
		s.Graph = graph.Spec{Family: "file", File: ref}
	}
	if err := s.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	runs := s.Expand()
	if *timelineCSV != "" && len(runs) != 1 {
		fmt.Fprintln(stderr, "-timeline requires a single run, not a sweep")
		return 2
	}
	if *traceTiming && *traceFile == "" {
		fmt.Fprintln(stderr, "-trace-timing requires -trace")
		return 2
	}
	if *remote != "" {
		if *timelineCSV != "" {
			fmt.Fprintln(stderr, "-timeline is not supported with -remote")
			return 2
		}
		if *traceTiming {
			fmt.Fprintln(stderr, "-trace-timing is not supported with -remote (daemon traces are canonical-only)")
			return 2
		}
		if *cpuprofile != "" || *memprofile != "" {
			fmt.Fprintln(stderr, "-cpuprofile/-memprofile profile local execution and are not supported with -remote")
			return 2
		}
		if sigs == nil {
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
			defer signal.Stop(ch)
			sigs = ch
		}
		return runRemote(*remote, *token, s, *jsonOut, len(runs), *traceFile, stdout, stderr, sigs)
	}

	// Profiling hooks match nccbench's, so a slow scenario is diagnosable with
	// the same workflow: go tool pprof <binary> cpu.out. CPU samples carry
	// run/scenario pprof labels, so one sweep profile splits per run.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // record the settled heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}

	var col *obs.Collector
	if *traceFile != "" {
		col = &obs.Collector{WithTiming: *traceTiming}
	}
	code := 0
	for i, c := range runs {
		var tl *ncc.Timeline
		opts := scenario.RunOpts{}
		if *timelineCSV != "" {
			tl = &ncc.Timeline{}
			opts.Probe = tl.Sample
		}
		var rec scenario.Record
		var err error
		runOne := func() {
			if col != nil {
				rec, err = scenario.RunTraced(c, col, opts)
			} else {
				rec, err = scenario.RunOneWith(c, opts)
			}
		}
		if *cpuprofile != "" {
			hash, _ := c.Hash()
			pprof.Do(context.Background(), pprof.Labels("run", strconv.Itoa(i), "scenario", hash), func(context.Context) { runOne() })
		} else {
			runOne()
		}
		if err != nil {
			rec.Error = err.Error()
		}
		if *jsonOut {
			line, jerr := json.Marshal(rec)
			if jerr != nil {
				fmt.Fprintln(stderr, "error:", jerr)
				return 1
			}
			fmt.Fprintln(stdout, string(line))
		} else if len(runs) == 1 {
			printSingle(stdout, rec)
		} else {
			printSweepLine(stdout, rec)
		}
		switch {
		case rec.Error != "":
			fmt.Fprintln(stderr, "error:", rec.Error)
			code = 1
		case degradedOK(rec):
			// A fault-injected run that degraded but kept its survivors
			// consistent is the expected outcome, not a failure.
		case !rec.Verified:
			fmt.Fprintln(stderr, "verification failed:", rec.VerifyErr)
			code = 1
		}
		if tl != nil && rec.Error == "" {
			if err := writeTimeline(*timelineCSV, tl); err != nil {
				fmt.Fprintln(stderr, "error:", err)
				return 1
			}
			if !*jsonOut {
				fmt.Fprintf(stdout, "timeline: %d rounds written to %s\n", len(tl.Samples), *timelineCSV)
			}
		}
	}
	if col != nil {
		if err := os.WriteFile(*traceFile, col.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if !*jsonOut {
			// The hash covers canonical lines only, so it matches the daemon's
			// trace id for the same scenario even with -trace-timing.
			fmt.Fprintf(stdout, "trace: %d lines (%s) written to %s\n", len(col.Lines()), col.Hash(), *traceFile)
		}
	}
	return code
}

// fromFlags assembles a scenario from the per-run flags. A dedicated flag
// (-n, -rows, ...) is kept only when the chosen graph family or algorithm
// declares a parameter of that name; passing one explicitly that neither
// declares is a usage error, never a silent no-op. -gparam/-aparam reach
// parameters that have no dedicated flag (e.g. bipartite's n1/n2).
func fromFlags(algoName, gname string, flagVals param.Values, explicit map[string]bool,
	gparam, aparam string, seed int64, capf, workers int) (scenario.Scenario, error) {
	d, ok := algo.Get(algoName)
	if !ok {
		return scenario.Scenario{}, algo.ErrUnknown(algoName)
	}
	f, ok := graph.GetFamily(gname)
	if !ok {
		return scenario.Scenario{}, fmt.Errorf("unknown graph family %q (have %s)",
			gname, strings.Join(graph.FamilyNames(), ", "))
	}
	declared := func(defs []param.Def, name string) bool {
		for _, def := range defs {
			if def.Name == name {
				return true
			}
		}
		return false
	}
	pick := func(defs []param.Def) param.Values {
		out := param.Values{}
		for _, def := range defs {
			if v, ok := flagVals[def.Name]; ok {
				out[def.Name] = v
			}
		}
		return out
	}
	for name := range flagVals {
		if explicit[name] && !declared(f.Params, name) && !declared(d.Params, name) {
			return scenario.Scenario{}, fmt.Errorf(
				"-%s: graph family %s takes %s and algorithm %s takes %s",
				name, f.Name, orNone(param.Describe(f.Params)), d.Name, orNone(param.Describe(d.Params)))
		}
	}
	gp, err := parseParams(gparam)
	if err != nil {
		return scenario.Scenario{}, fmt.Errorf("-gparam: %w", err)
	}
	ap, err := parseParams(aparam)
	if err != nil {
		return scenario.Scenario{}, fmt.Errorf("-aparam: %w", err)
	}
	return scenario.Scenario{
		Algo:   d.Name,
		Graph:  graph.Spec{Family: f.Name, Params: merge(pick(f.Params), gp), Seed: seed},
		Params: merge(pick(d.Params), ap),
		Model:  scenario.Model{CapFactor: capf, Workers: workers, Seed: seed},
	}, nil
}

func orNone(desc string) string {
	if desc == "" {
		return "no params"
	}
	return desc
}

// parseParams decodes a "name=value,name=value" list.
func parseParams(list string) (param.Values, error) {
	out := param.Values{}
	for _, item := range splitList(list) {
		name, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("%q is not name=value", item)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", item, err)
		}
		out[name] = v
	}
	return out, nil
}

// merge overlays b onto a.
func merge(a, b param.Values) param.Values {
	for k, v := range b {
		a[k] = v
	}
	return a
}

func parseSweep(ns, cfs, seeds string) (*scenario.Sweep, error) {
	sw := &scenario.Sweep{}
	var err error
	if sw.N, err = parseInts(ns); err != nil {
		return nil, fmt.Errorf("-sweep-n: %w", err)
	}
	if sw.CapFactor, err = parseInts(cfs); err != nil {
		return nil, fmt.Errorf("-sweep-capfactor: %w", err)
	}
	for _, s := range splitList(seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-sweep-seeds: %w", err)
		}
		sw.Seeds = append(sw.Seeds, v)
	}
	if len(sw.N) == 0 && len(sw.CapFactor) == 0 && len(sw.Seeds) == 0 {
		return nil, nil
	}
	return sw, nil
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, s := range splitList(list) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func splitList(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// printSingle renders one run the way nccrun always has: graph, model,
// summary with verification marker, stats.
func printSingle(w io.Writer, rec scenario.Record) {
	if rec.Graph.Desc != "" {
		fmt.Fprintf(w, "graph: %s  (max degree %d, degeneracy %d)\n",
			rec.Graph.Desc, rec.Graph.MaxDegree, rec.Graph.Degeneracy)
		fmt.Fprintf(w, "model: n=%d, capacity=%d msgs/round\n", rec.Graph.N, rec.Capacity)
	}
	if rec.Error != "" {
		return
	}
	fmt.Fprintf(w, "%s (%s)\n", rec.Summary, verdict(rec))
	fmt.Fprintf(w, "stats: %v\n", rec.Stats)
}

// printSweepLine renders one sweep entry compactly.
func printSweepLine(w io.Writer, rec scenario.Record) {
	if rec.Error != "" {
		fmt.Fprintf(w, "%s capfactor=%d seed=%d: error: %s\n",
			rec.Scenario.Graph, rec.Scenario.Model.CapFactor, rec.Scenario.Model.Seed, rec.Error)
		return
	}
	fmt.Fprintf(w, "%s capfactor=%d seed=%d: %s (%s) | %v\n",
		rec.Scenario.Graph, rec.Scenario.Model.CapFactor, rec.Scenario.Model.Seed,
		rec.Summary, verdict(rec), rec.Stats)
}

func verdict(rec scenario.Record) string {
	if rec.Verified {
		return "verified"
	}
	if d := rec.Degradation; d != nil && d.SurvivorsOK {
		return fmt.Sprintf("degraded: %d unfinished, %d down, %.0f%% reachable, survivors consistent",
			d.Unfinished, d.DownAtEnd, 100*d.ReachableFrac)
	}
	return "NOT verified: " + rec.VerifyErr
}

// degradedOK reports a fault-injected run that degraded as designed: the
// survivor verifier accepted the surviving nodes' outputs.
func degradedOK(rec scenario.Record) bool {
	return !rec.Verified && rec.Degradation != nil && rec.Degradation.SurvivorsOK
}

// listScenario prints a scenario's canonical hashes without executing it: the
// sweep-level job hash (the id nccd's result cache, job coalescing, and the
// jobs API key on) and each sweep-expanded run with its own canonical hash.
func listScenario(path string, stdout, stderr io.Writer) int {
	s, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := s.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	hash, err := s.Hash()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	name := s.Name
	if name == "" {
		name = s.Algo
	}
	fmt.Fprintf(stdout, "scenario %s\n", name)
	fmt.Fprintf(stdout, "hash %s\n", hash)
	runs := s.Expand()
	fmt.Fprintf(stdout, "runs %d\n", len(runs))
	for i, c := range runs {
		rh, err := c.Hash()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "  run %d: %s capfactor=%d seed=%d hash %s\n",
			i, c.Graph, c.Model.CapFactor, c.Model.Seed, rh)
	}
	return 0
}

func printRegistries(w io.Writer) {
	fmt.Fprintln(w, "algorithms:")
	for _, d := range algo.All() {
		fmt.Fprintf(w, "  %-12s %s\n", d.Name, d.Desc)
		if len(d.Params) > 0 {
			fmt.Fprintf(w, "  %-12s params: %s\n", "", param.Describe(d.Params))
		}
	}
	fmt.Fprintln(w, "graph families:")
	for _, f := range graph.Families() {
		seeded := ""
		if f.Seeded {
			seeded = " [seeded]"
		}
		fmt.Fprintf(w, "  %-12s %s%s\n", f.Name, f.Desc, seeded)
		fmt.Fprintf(w, "  %-12s params: %s\n", "", param.Describe(f.Params))
	}
	fmt.Fprintln(w, "capacity policies:")
	for _, p := range graph.CapacityPolicies() {
		values := ""
		if p.NeedsValues {
			values = " [takes a values list]"
		}
		fmt.Fprintf(w, "  %-12s %s%s\n", p.Name, p.Desc, values)
		if len(p.Params) > 0 {
			fmt.Fprintf(w, "  %-12s params: %s\n", "", param.Describe(p.Params))
		}
	}
	fmt.Fprintln(w, "fault models:")
	for _, m := range faultmodel.All() {
		links := ""
		if m.Links {
			links = " [takes to/from link sets]"
		}
		fmt.Fprintf(w, "  %-12s %s%s\n", m.Name, m.Desc, links)
		if len(m.Params) > 0 {
			fmt.Fprintf(w, "  %-12s params: %s\n", "", param.Describe(m.Params))
		}
	}
}

func writeTimeline(path string, tl *ncc.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "round,messages,words,maxRecvOffered"); err != nil {
		return err
	}
	for i, s := range tl.Samples {
		if _, err := fmt.Fprintf(f, "%d,%d,%d,%d\n", i, s.Messages, s.Words, s.MaxRecvOffered); err != nil {
			return err
		}
	}
	return nil
}
