// Command nccrun executes one Node-Capacitated Clique algorithm on one
// generated input graph and prints the result summary plus the run
// statistics (rounds, messages, loads).
//
// Usage examples:
//
//	nccrun -algo mst -graph gnm -n 128 -m 384
//	nccrun -algo mis -graph kforest -n 256 -k 4
//	nccrun -algo bfs -graph grid -rows 8 -cols 16 -src 0
//	nccrun -algo coloring -graph pa -n 200 -k 3
package main

import (
	"flag"
	"fmt"
	"os"

	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func main() {
	algo := flag.String("algo", "mst", "algorithm: mst | bfs | mis | matching | coloring | orientation | components")
	gname := flag.String("graph", "gnm", "graph family: gnm | gnp | kforest | grid | star | tree | cycle | path | pa | hypercube")
	n := flag.Int("n", 64, "number of nodes")
	m := flag.Int("m", 0, "edges for gnm (default 3n)")
	p := flag.Float64("p", 0.1, "edge probability for gnp")
	k := flag.Int("k", 2, "forests for kforest / attachments for pa / dimension for hypercube")
	rows := flag.Int("rows", 8, "grid rows")
	cols := flag.Int("cols", 8, "grid cols")
	src := flag.Int("src", 0, "BFS source")
	maxW := flag.Int64("maxw", 1000, "maximum edge weight for mst")
	seed := flag.Int64("seed", 1, "seed (runs are deterministic per seed)")
	capf := flag.Int("capfactor", ncc.DefaultCapFactor, "capacity = capfactor * ceil(log2 n) messages/round")
	timelineCSV := flag.String("timeline", "", "write a per-round traffic CSV (round,messages,words,maxRecvOffered) to this file")
	flag.Parse()

	g := buildGraph(*gname, *n, *m, *p, *k, *rows, *cols, *seed)
	cfg := ncc.Config{N: g.N(), Seed: *seed, CapFactor: *capf, Strict: true}
	var tl *ncc.Timeline
	if *timelineCSV != "" {
		tl = &ncc.Timeline{}
		cfg.Observer = tl
	}
	fmt.Printf("graph: %v  (max degree %d, degeneracy %d)\n", g, g.MaxDegree(), degeneracyOf(g))
	fmt.Printf("model: n=%d, capacity=%d msgs/round\n", g.N(), cfg.Cap())

	var st ncc.Stats
	var err error
	switch *algo {
	case "mst":
		wg := graph.RandomWeights(g, *maxW, *seed+1)
		var perNode [][][2]int
		perNode, st, err = core.RunMST(cfg, wg)
		exitIf(err)
		edges := core.CollectMSTEdges(perNode)
		exitIf(verify.MST(wg, edges))
		var total int64
		for _, e := range edges {
			total += wg.Weight(e[0], e[1])
		}
		fmt.Printf("minimum spanning forest: %d edges, total weight %d (verified against Kruskal)\n", len(edges), total)
	case "bfs":
		var res []core.BFSResult
		res, st, err = core.RunBFS(cfg, g, *src)
		exitIf(err)
		dist := make([]int, g.N())
		parent := make([]int, g.N())
		reached, ecc := 0, 0
		for u, r := range res {
			dist[u], parent[u] = r.Dist, r.Parent
			if r.Dist >= 0 {
				reached++
				ecc = max(ecc, r.Dist)
			}
		}
		exitIf(verify.BFS(g, *src, dist, parent, true))
		fmt.Printf("BFS tree from %d: %d nodes reached, eccentricity %d (verified)\n", *src, reached, ecc)
	case "mis":
		var in []bool
		in, st, err = core.RunMIS(cfg, g)
		exitIf(err)
		exitIf(verify.MIS(g, in))
		size := 0
		for _, b := range in {
			if b {
				size++
			}
		}
		fmt.Printf("maximal independent set of size %d (verified)\n", size)
	case "matching":
		var mate []int
		mate, st, err = core.RunMatching(cfg, g)
		exitIf(err)
		exitIf(verify.Matching(g, mate))
		size := 0
		for u, v := range mate {
			if v > u {
				size++
			}
		}
		fmt.Printf("maximal matching of size %d (verified)\n", size)
	case "coloring":
		var res []core.ColorResult
		res, st, err = core.RunColoring(cfg, g)
		exitIf(err)
		colors := make([]int, g.N())
		palette := 0
		for u, r := range res {
			colors[u], palette = r.Color, r.Palette
		}
		exitIf(verify.Coloring(g, colors, palette))
		fmt.Printf("proper coloring with %d colors (palette bound %d, verified)\n", verify.ColorsUsed(colors), palette)
	case "orientation":
		var os []*core.Orientation
		os, st, err = core.RunOrientation(cfg, g, core.OrientParams{})
		exitIf(err)
		exitIf(verify.Orientation(g, core.OutLists(os), 0))
		fmt.Printf("orientation with max outdegree %d over %d levels (verified)\n",
			verify.MaxOutdegree(core.OutLists(os)), os[0].Levels)
	case "components":
		var labels []int
		labels, st, err = core.RunComponents(cfg, g)
		exitIf(err)
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		_, want := graph.Components(g)
		if len(distinct) != want {
			exitIf(fmt.Errorf("found %d components, sequential says %d", len(distinct), want))
		}
		fmt.Printf("%d connected components labeled (verified)\n", len(distinct))
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	fmt.Printf("stats: %v\n", st)
	if tl != nil {
		exitIf(writeTimeline(*timelineCSV, tl))
		fmt.Printf("timeline: %d rounds written to %s\n", len(tl.Samples), *timelineCSV)
	}
}

func writeTimeline(path string, tl *ncc.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "round,messages,words,maxRecvOffered"); err != nil {
		return err
	}
	for i, s := range tl.Samples {
		if _, err := fmt.Fprintf(f, "%d,%d,%d,%d\n", i, s.Messages, s.Words, s.MaxRecvOffered); err != nil {
			return err
		}
	}
	return nil
}

func buildGraph(name string, n, m int, p float64, k, rows, cols int, seed int64) *graph.Graph {
	switch name {
	case "gnm":
		if m == 0 {
			m = 3 * n
		}
		return graph.GNM(n, m, seed)
	case "gnp":
		return graph.GNP(n, p, seed)
	case "kforest":
		return graph.KForest(n, k, seed)
	case "grid":
		return graph.Grid(rows, cols)
	case "star":
		return graph.Star(n)
	case "tree":
		return graph.RandomTree(n, seed)
	case "cycle":
		return graph.Cycle(n)
	case "path":
		return graph.Path(n)
	case "pa":
		return graph.PreferentialAttachment(n, k, seed)
	case "hypercube":
		return graph.Hypercube(k)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph family %q\n", name)
		os.Exit(2)
		return nil
	}
}

func degeneracyOf(g *graph.Graph) int {
	d, _ := graph.Degeneracy(g)
	return d
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
