package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"ncc/internal/graphio"
	"ncc/internal/scenario"
)

// runRemote submits the scenario to an nccd daemon and tails the job's
// record stream instead of executing locally. In -json mode the NDJSON lines
// are passed through verbatim, so remote output is byte-identical to a local
// `nccrun -json` run of the same scenario. Exit codes match local execution:
// 0 ok, 1 run/verification failure, 2 usage (the server rejected the
// scenario). A signal on sigs cancels the remote job (DELETE /v1/jobs/{id})
// before tearing down the stream, so an interrupted client doesn't leave the
// daemon running an orphaned sweep. With traceFile set, the job's canonical
// telemetry trace (GET /v1/jobs/{id}/trace) is fetched after the run
// completes — it is byte-identical to what a local -trace run would write.
func runRemote(base, token string, s scenario.Scenario, jsonOut bool, expanded int, traceFile string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	base = strings.TrimRight(base, "/")
	cl := apiClient{base: base, token: token}
	if s.Graph.File != "" {
		// File-family scenario: make sure the daemon can materialize the
		// graph before the job reaches an executor. Upload is idempotent; a
		// failure is only a warning because the daemon (or its workers) may
		// already hold the graph.
		if err := cl.pushGraph(s.Graph.File); err != nil {
			fmt.Fprintf(stderr, "warning: uploading graph %s: %v\n", s.Graph.File, err)
		}
	}
	body, err := json.Marshal(s)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	resp, err := cl.post("/v1/jobs", body)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	defer resp.Body.Close()
	// 201: a new job; 200: coalesced onto an identical in-flight job whose
	// stream delivers exactly the records this submission would produce.
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		msg := remoteError(resp.Body)
		fmt.Fprintf(stderr, "%s rejected the scenario (%s): %s\n", base, resp.Status, msg)
		if resp.StatusCode == http.StatusBadRequest {
			return 2
		}
		return 1
	}
	var info struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		fmt.Fprintln(stderr, "error: decoding submission response:", err)
		return 1
	}
	if info.Cached && !jsonOut {
		fmt.Fprintf(stdout, "job %s: served from result cache\n", info.ID)
	}

	// Interrupts cancel the remote job first, then the local stream: the
	// daemon stops burning engine workers on a sweep nobody is tailing.
	ctx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	var interrupted atomic.Bool
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-sigs:
			interrupted.Store(true)
			cl.cancelJob(info.ID)
			stopStream()
		case <-watcherDone:
		}
	}()

	stream, err := cl.get(ctx, "/v1/jobs/"+info.ID+"/records")
	if err != nil {
		if interrupted.Load() {
			fmt.Fprintf(stderr, "interrupted: remote job %s canceled\n", info.ID)
			return 1
		}
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "error: record stream: %s: %s\n", stream.Status, remoteError(stream.Body))
		return 1
	}

	code := 0
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec scenario.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			fmt.Fprintln(stderr, "error: decoding record:", err)
			return 1
		}
		if jsonOut {
			stdout.Write(line)
			io.WriteString(stdout, "\n")
		} else if expanded == 1 {
			printSingle(stdout, rec)
		} else {
			printSweepLine(stdout, rec)
		}
		switch {
		case rec.Error != "":
			fmt.Fprintln(stderr, "error:", rec.Error)
			code = 1
		case degradedOK(rec):
			// Fault-injected run that degraded as designed: not a failure.
		case !rec.Verified:
			fmt.Fprintln(stderr, "verification failed:", rec.VerifyErr)
			code = 1
		}
	}
	if interrupted.Load() {
		fmt.Fprintf(stderr, "interrupted: remote job %s canceled; records above are partial\n", info.ID)
		return 1
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "error: reading record stream:", err)
		return 1
	}
	// The stream also terminates when the job is canceled (another client,
	// or the daemon draining) or fails server-side; a truncated sweep must
	// not look like success, so check the job's terminal state.
	if state, cause, err := cl.jobState(info.ID); err != nil {
		fmt.Fprintln(stderr, "error: checking job state:", err)
		return 1
	} else if state != "done" {
		if cause != "" {
			cause = ": " + cause
		}
		fmt.Fprintf(stderr, "error: job %s ended %s%s; records above are partial\n", info.ID, state, cause)
		return 1
	}
	if traceFile != "" {
		if err := cl.fetchTrace(info.ID, traceFile); err != nil {
			fmt.Fprintln(stderr, "error: fetching trace:", err)
			return 1
		}
		if !jsonOut {
			fmt.Fprintf(stdout, "trace: written to %s\n", traceFile)
		}
	}
	return code
}

// fetchTrace downloads a completed job's telemetry trace stream to path.
func (c apiClient) fetchTrace(id, path string) error {
	resp, err := c.get(context.Background(), "/v1/jobs/"+id+"/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, remoteError(resp.Body))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// apiClient issues nccd API calls against one base URL, attaching the bearer
// token (for a token-protected daemon) to every request.
type apiClient struct {
	base  string
	token string
}

func (c apiClient) request(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

func (c apiClient) post(path string, body []byte) (*http.Response, error) {
	req, err := c.request(context.Background(), http.MethodPost, path, body)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

func (c apiClient) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := c.request(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// pushGraph uploads a locally stored graph to the daemon's /v1/graphs route.
// A graph missing from the local store is not an error — the reference may
// name a graph only the daemon holds.
func (c apiClient) pushGraph(hash string) error {
	st, err := graphio.ActiveStore()
	if err != nil {
		return err
	}
	if !st.Has(hash) {
		return nil
	}
	f, err := os.Open(st.Path(hash))
	if err != nil {
		return err
	}
	defer f.Close()
	req, err := http.NewRequest(http.MethodPut, c.base+"/v1/graphs/"+hash, f)
	if err != nil {
		return err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("%s: %s", resp.Status, remoteError(resp.Body))
	}
	return nil
}

// cancelJob is the interrupt path: best-effort DELETE of the submitted job so
// the daemon aborts it instead of finishing a sweep with no audience.
func (c apiClient) cancelJob(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := c.request(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// jobState fetches a job's terminal state (and failure cause, if any) after
// its stream ended.
func (c apiClient) jobState(id string) (state, cause string, err error) {
	resp, err := c.get(context.Background(), "/v1/jobs/"+id)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("%s: %s", resp.Status, remoteError(resp.Body))
	}
	var info struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", "", err
	}
	return info.State, info.Error, nil
}

// remoteError extracts the {"error": ...} payload of a failed API call,
// falling back to the raw body.
func remoteError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}
