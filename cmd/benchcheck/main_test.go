package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: ncc/internal/ncc
BenchmarkEngineScale/n=65536-8         	       3	 938956118 ns/op	   4466991 msgs/s	262923613 B/op	  431805 allocs/op
BenchmarkEngineScale/n=65536-8         	       3	 900000000 ns/op	   4600000 msgs/s	262923613 B/op	  431805 allocs/op
BenchmarkEngineScale/n=262144-8        	       1	3181536159 ns/op	    329582 msgs/s
PASS
`

func runCheck(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseTakesMinimumAcrossCounts(t *testing.T) {
	results := map[string]float64{}
	parseBench(benchOutput, results)
	if got := results["BenchmarkEngineScale/n=65536"]; got != 9e8 {
		t.Errorf("min ns/op = %v, want 9e8", got)
	}
	if _, ok := results["BenchmarkEngineScale/n=262144"]; !ok {
		t.Error("second benchmark not parsed")
	}
}

func TestUpdateThenCompareRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	code, _, errw := runCheck(t, benchOutput, "-update", "-baseline", baseline)
	if code != 0 {
		t.Fatalf("update exit %d: %s", code, errw)
	}
	// Identical numbers compare clean.
	code, out, errw := runCheck(t, benchOutput, "-baseline", baseline, "-match", "EngineScale")
	if code != 0 {
		t.Fatalf("compare exit %d: %s\n%s", code, errw, out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("expected ok rows:\n%s", out)
	}
}

func TestUpdateMergesOverExistingBaseline(t *testing.T) {
	// A partial bench run must not drop the other suites' points: points
	// absent from the input survive the refresh, points present are
	// replaced.
	baseline := writeFile(t, "base.json",
		`{"nsPerOp":{"BenchmarkAggregate/n=4096": 123, "BenchmarkEngineScale/n=65536": 5}}`)
	code, _, errw := runCheck(t, benchOutput, "-update", "-baseline", baseline)
	if code != 0 {
		t.Fatalf("update exit %d: %s", code, errw)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"BenchmarkAggregate/n=4096": 123`) {
		t.Errorf("comm point dropped by engine-only refresh:\n%s", data)
	}
	if !strings.Contains(string(data), `"BenchmarkEngineScale/n=65536": 900000000`) {
		t.Errorf("engine point not replaced by refresh:\n%s", data)
	}
}

func TestRegressionBeyondToleranceFails(t *testing.T) {
	baseline := writeFile(t, "base.json",
		`{"nsPerOp": {"BenchmarkEngineScale/n=65536": 500000000}}`)
	code, out, _ := runCheck(t, benchOutput, "-baseline", baseline, "-match", "n=65536")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (9e8 is +80%% over 5e8)\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("missing REGRESSION marker:\n%s", out)
	}
}

func TestRegressionWithinTolerancePasses(t *testing.T) {
	baseline := writeFile(t, "base.json",
		`{"nsPerOp": {"BenchmarkEngineScale/n=65536": 800000000}}`)
	code, out, errw := runCheck(t, benchOutput, "-baseline", baseline, "-match", "n=65536")
	if code != 0 {
		t.Fatalf("exit = %d (9e8 is +12.5%% over 8e8, within 20%%): %s\n%s", code, errw, out)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	baseline := writeFile(t, "base.json",
		`{"nsPerOp": {"BenchmarkEngineScale/n=1048576": 1}}`)
	code, _, errw := runCheck(t, benchOutput, "-baseline", baseline, "-match", "n=1048576")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for missing benchmark", code)
	}
	if !strings.Contains(errw, "missing from input") {
		t.Errorf("missing diagnosis: %s", errw)
	}
}

func TestEmptyInputRejected(t *testing.T) {
	if code, _, _ := runCheck(t, "no benchmarks here"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// campaignReport builds a minimal two-variant report fixture with the given
// ncc-variant rounds; every other metric is fixed so tests vary exactly one
// axis.
func campaignReport(rounds int) string {
	return `{"campaign":"fix","units":2,"runs":4,"errors":0,"verified":4,"entries":[
		{"name":"e1","variants":[
			{"variant":"ncc","algo":"mis","hash":"aaa","runs":2,"verified":2,"rounds":` + strconv.Itoa(rounds) + `,"messages":2000,"words":4000},
			{"variant":"baseline","algo":"mis-central","hash":"bbb","runs":2,"verified":2,"rounds":50,"messages":600,"words":1200}
		],"speedup":0.5}]}`
}

func TestCampaignGateIdenticalPasses(t *testing.T) {
	ref := writeFile(t, "ref.json", campaignReport(100))
	code, out, errw := runCheck(t, "", "-campaign", ref, "-against", ref)
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errw, out)
	}
	if strings.Contains(out, "REGRESSION") || !strings.Contains(out, "ok") {
		t.Errorf("identical reports should be all ok:\n%s", out)
	}
}

func TestCampaignGateRegressionFails(t *testing.T) {
	ref := writeFile(t, "ref.json", campaignReport(100))
	cur := writeFile(t, "cur.json", campaignReport(130))
	code, out, _ := runCheck(t, "", "-campaign", cur, "-against", ref)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (+30%% rounds over 20%% tolerance)\n%s", code, out)
	}
	if !strings.Contains(out, "e1/ncc rounds") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("missing regression row:\n%s", out)
	}
	// The same drift passes under a wider gate.
	code, out, _ = runCheck(t, "", "-campaign", cur, "-against", ref, "-tolerance", "0.5")
	if code != 0 {
		t.Fatalf("exit = %d with 50%% tolerance\n%s", code, out)
	}
	// And an improvement is labeled, never failed.
	code, out, _ = runCheck(t, "", "-campaign", ref, "-against", cur)
	if code != 0 || !strings.Contains(out, "improved") {
		t.Errorf("shrinking rounds: exit %d, output:\n%s", code, out)
	}
}

func TestCampaignGateMissingCoverageFails(t *testing.T) {
	ref := writeFile(t, "ref.json", campaignReport(100))
	cur := writeFile(t, "cur.json",
		`{"campaign":"fix","units":1,"runs":2,"errors":0,"verified":2,"entries":[
			{"name":"e1","variants":[
				{"variant":"ncc","algo":"mis","hash":"aaa","runs":2,"verified":2,"rounds":100,"messages":2000,"words":4000}]}]}`)
	code, out, _ := runCheck(t, "", "-campaign", cur, "-against", ref)
	if code != 1 || !strings.Contains(out, "e1/baseline") || !strings.Contains(out, "coverage disappeared") {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestCampaignGateUnhealthyRunFails(t *testing.T) {
	// Errors and unverified runs fail even with nothing to compare against.
	cur := writeFile(t, "cur.json",
		`{"campaign":"fix","units":1,"runs":2,"errors":1,"verified":1,"entries":[
			{"name":"e1","variants":[
				{"variant":"ncc","algo":"mis","hash":"aaa","runs":2,"errors":1,"verified":1,"rounds":100,"messages":2000,"words":4000}]}]}`)
	code, out, _ := runCheck(t, "", "-campaign", cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for errors + unverified\n%s", code, out)
	}
	for _, want := range []string{"1 run error(s)", "1/2 runs verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignGateHistoryUsesPreviousSnapshot(t *testing.T) {
	// History lines are NDJSON: compact the pretty fixture onto one line.
	snap := func(rounds int) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, []byte(campaignReport(rounds))); err != nil {
			t.Fatal(err)
		}
		return `{"time":"2026-08-07T03:37:00Z","source":"local","report":` + buf.String() + `}`
	}
	// A single snapshot has no reference yet: health checks only.
	one := writeFile(t, "one.history.json", snap(100)+"\n")
	code, out, errw := runCheck(t, "", "-campaign", one)
	if code != 0 || !strings.Contains(out, "no reference") {
		t.Fatalf("single snapshot: exit %d, stderr %s, output:\n%s", code, errw, out)
	}
	// Two snapshots: the newest is gated against the one before it.
	two := writeFile(t, "two.history.json", snap(100)+"\n"+snap(130)+"\n")
	code, out, _ = runCheck(t, "", "-campaign", two)
	if code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regressed history: exit %d, output:\n%s", code, out)
	}
}

func TestCampaignGateRejectsGarbage(t *testing.T) {
	bad := writeFile(t, "bad.json", `{"not":"a report"}`)
	if code, _, errw := runCheck(t, "", "-campaign", bad); code != 2 || !strings.Contains(errw, "not a campaign report") {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if code, _, _ := runCheck(t, "", "-campaign", filepath.Join(t.TempDir(), "nope.json")); code != 2 {
		t.Fatal("missing file must be a usage error")
	}
}
