package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: ncc/internal/ncc
BenchmarkEngineScale/n=65536-8         	       3	 938956118 ns/op	   4466991 msgs/s	262923613 B/op	  431805 allocs/op
BenchmarkEngineScale/n=65536-8         	       3	 900000000 ns/op	   4600000 msgs/s	262923613 B/op	  431805 allocs/op
BenchmarkEngineScale/n=262144-8        	       1	3181536159 ns/op	    329582 msgs/s
PASS
`

func runCheck(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseTakesMinimumAcrossCounts(t *testing.T) {
	results := map[string]float64{}
	parseBench(benchOutput, results)
	if got := results["BenchmarkEngineScale/n=65536"]; got != 9e8 {
		t.Errorf("min ns/op = %v, want 9e8", got)
	}
	if _, ok := results["BenchmarkEngineScale/n=262144"]; !ok {
		t.Error("second benchmark not parsed")
	}
}

func TestUpdateThenCompareRoundTrip(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	code, _, errw := runCheck(t, benchOutput, "-update", "-baseline", baseline)
	if code != 0 {
		t.Fatalf("update exit %d: %s", code, errw)
	}
	// Identical numbers compare clean.
	code, out, errw := runCheck(t, benchOutput, "-baseline", baseline, "-match", "EngineScale")
	if code != 0 {
		t.Fatalf("compare exit %d: %s\n%s", code, errw, out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("expected ok rows:\n%s", out)
	}
}

func TestUpdateMergesOverExistingBaseline(t *testing.T) {
	// A partial bench run must not drop the other suites' points: points
	// absent from the input survive the refresh, points present are
	// replaced.
	baseline := writeFile(t, "base.json",
		`{"nsPerOp":{"BenchmarkAggregate/n=4096": 123, "BenchmarkEngineScale/n=65536": 5}}`)
	code, _, errw := runCheck(t, benchOutput, "-update", "-baseline", baseline)
	if code != 0 {
		t.Fatalf("update exit %d: %s", code, errw)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"BenchmarkAggregate/n=4096": 123`) {
		t.Errorf("comm point dropped by engine-only refresh:\n%s", data)
	}
	if !strings.Contains(string(data), `"BenchmarkEngineScale/n=65536": 900000000`) {
		t.Errorf("engine point not replaced by refresh:\n%s", data)
	}
}

func TestRegressionBeyondToleranceFails(t *testing.T) {
	baseline := writeFile(t, "base.json",
		`{"nsPerOp": {"BenchmarkEngineScale/n=65536": 500000000}}`)
	code, out, _ := runCheck(t, benchOutput, "-baseline", baseline, "-match", "n=65536")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (9e8 is +80%% over 5e8)\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("missing REGRESSION marker:\n%s", out)
	}
}

func TestRegressionWithinTolerancePasses(t *testing.T) {
	baseline := writeFile(t, "base.json",
		`{"nsPerOp": {"BenchmarkEngineScale/n=65536": 800000000}}`)
	code, out, errw := runCheck(t, benchOutput, "-baseline", baseline, "-match", "n=65536")
	if code != 0 {
		t.Fatalf("exit = %d (9e8 is +12.5%% over 8e8, within 20%%): %s\n%s", code, errw, out)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	baseline := writeFile(t, "base.json",
		`{"nsPerOp": {"BenchmarkEngineScale/n=1048576": 1}}`)
	code, _, errw := runCheck(t, benchOutput, "-baseline", baseline, "-match", "n=1048576")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for missing benchmark", code)
	}
	if !strings.Contains(errw, "missing from input") {
		t.Errorf("missing diagnosis: %s", errw)
	}
}

func TestEmptyInputRejected(t *testing.T) {
	if code, _, _ := runCheck(t, "no benchmarks here"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
