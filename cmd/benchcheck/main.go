// Command benchcheck compares `go test -bench` output against a committed
// JSON baseline and fails on ns/op regressions beyond a tolerance. It is the
// CI regression gate for the engine benchmarks (see BENCH_baseline.json at
// the repo root) and needs no dependencies beyond the standard library, so it
// runs identically in CI and on a laptop.
//
// Usage:
//
//	go test ./internal/ncc -bench BenchmarkEngineScale -benchtime 1x | tee bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_baseline.json -match 'EngineScale/n=65536$' bench.txt
//	go run ./cmd/benchcheck -update -baseline BENCH_baseline.json bench.txt   # refresh
//
// When a benchmark appears several times (e.g. -count=3), the fastest sample
// is used, like benchstat's min-based summaries.
//
// With -campaign it gates on campaign records instead of bench output: it
// compares the two most recent snapshots of a campaign history file (or the
// newest against a -against reference report) and fails when any cost metric
// (rounds, messages, words, kRounds) grew beyond the tolerance, when coverage
// disappeared, or when the newest run has errors or unverified results:
//
//	go run ./cmd/benchcheck -campaign campaigns/compare-small.history.json
//	go run ./cmd/benchcheck -campaign new.history.json -against campaigns/reference.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"ncc/internal/campaign"
)

// Baseline is the committed benchmark reference. NsPerOp is keyed by the
// benchmark name with the -<GOMAXPROCS> suffix stripped.
type Baseline struct {
	Comment string             `json:"comment,omitempty"`
	NsPerOp map[string]float64 `json:"nsPerOp"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline JSON `file`")
	match := fs.String("match", ".", "compare only benchmarks matching this `regexp`")
	tolerance := fs.Float64("tolerance", 0.20, "allowed fractional ns/op regression before failing")
	update := fs.Bool("update", false, "write the parsed results as a new baseline instead of comparing")
	out := fs.String("out", "", "output `file` for -update (default: the -baseline path)")
	campaignPath := fs.String("campaign", "", "gate on this campaign history `file` (or report) instead of bench output")
	against := fs.String("against", "", "reference campaign report/history `file` for -campaign (default: the previous snapshot in the history)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *campaignPath != "" {
		return campaignGate(*campaignPath, *against, *tolerance, stdout, stderr)
	}

	results, err := parseInputs(fs.Args(), stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchcheck: no benchmark results found in input")
		return 2
	}

	if *update {
		path := *out
		if path == "" {
			path = *baselinePath
		}
		// Merge over the existing baseline rather than replacing it: a
		// partial bench run (one suite failed or was skipped) must not drop
		// the other suites' points from the refreshed file, or committing
		// it would leave later gates with no baseline entry to match.
		merged := results
		if data, err := os.ReadFile(*baselinePath); err == nil {
			var prev Baseline
			if err := json.Unmarshal(data, &prev); err == nil && prev.NsPerOp != nil {
				for name, v := range results {
					prev.NsPerOp[name] = v
				}
				merged = prev.NsPerOp
			}
		}
		b := Baseline{
			Comment: "Engine benchmark baseline (best ns/op). Refresh with: go run ./cmd/benchcheck -update -baseline " + *baselinePath + " <bench output>",
			NsPerOp: merged,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchcheck: %v\n", err)
			return 2
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(results), path)
		return 0
	}

	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: bad -match: %v\n", err)
		return 2
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchcheck: %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(stderr, "benchcheck: no baseline benchmarks match %q\n", *match)
		return 2
	}

	failed := false
	for _, name := range names {
		want := base.NsPerOp[name]
		got, ok := results[name]
		if !ok {
			fmt.Fprintf(stderr, "benchcheck: %s: in baseline but missing from input\n", name)
			failed = true
			continue
		}
		delta := (got - want) / want
		status := "ok"
		switch {
		case delta > *tolerance:
			status = "REGRESSION"
			failed = true
		case delta < -*tolerance:
			status = "improved"
		}
		fmt.Fprintf(stdout, "%-50s %14.0f ns/op  baseline %14.0f  %+6.1f%%  %s\n",
			name, got, want, 100*delta, status)
	}
	if failed {
		fmt.Fprintf(stdout, "FAIL: ns/op regression beyond %.0f%% (refresh the baseline with -update if intentional)\n", 100**tolerance)
		return 1
	}
	return 0
}

// campaignGate fails (exit 1) when the newest campaign run regressed: a cost
// metric grew beyond tol relative to the reference, a variant covered by the
// reference disappeared, or the newest run itself has errors or unverified
// results. The reference is -against when given, else the second-newest
// snapshot in the history file; a history with a single snapshot passes the
// health checks only (there is nothing to compare yet).
func campaignGate(path, against string, tol float64, stdout, stderr io.Writer) int {
	cur, err := campaign.LoadReport(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	var prev campaign.Report
	havePrev := false
	if against != "" {
		prev, err = campaign.LoadReport(against)
		if err != nil {
			fmt.Fprintf(stderr, "benchcheck: %v\n", err)
			return 2
		}
		havePrev = true
	} else if snaps, err := campaign.LoadHistory(path); err == nil && len(snaps) >= 2 {
		prev = snaps[len(snaps)-2].Report
		havePrev = true
	}

	failed := false
	if cur.Errors > 0 {
		fmt.Fprintf(stdout, "campaign %s: %d run error(s)  REGRESSION\n", cur.Campaign, cur.Errors)
		failed = true
	}
	if cur.Verified < cur.Runs {
		fmt.Fprintf(stdout, "campaign %s: %d/%d runs verified  REGRESSION\n", cur.Campaign, cur.Verified, cur.Runs)
		failed = true
	}
	if !havePrev {
		fmt.Fprintf(stdout, "campaign %s: no reference to compare against (first snapshot); health checks only\n", cur.Campaign)
		if failed {
			return 1
		}
		return 0
	}

	deltas, missing := campaign.Compare(prev, cur)
	for _, m := range missing {
		fmt.Fprintf(stdout, "%-40s coverage disappeared  REGRESSION\n", m)
		failed = true
	}
	for _, d := range deltas {
		status := "ok"
		switch {
		case d.Frac > tol:
			status = "REGRESSION"
			failed = true
		case d.Frac < -tol:
			status = "improved"
		}
		fmt.Fprintf(stdout, "%-40s %12.0f  reference %12.0f  %+6.1f%%  %s\n",
			d.Entry+"/"+string(d.Variant)+" "+d.Metric, d.Cur, d.Prev, 100*d.Frac, status)
	}
	if failed {
		fmt.Fprintf(stdout, "FAIL: campaign regression beyond %.0f%%\n", 100*tol)
		return 1
	}
	return 0
}

// parseInputs reads each file (or stdin when no files are given) and returns
// the best (minimum) ns/op per benchmark name.
func parseInputs(files []string, stdin io.Reader) (map[string]float64, error) {
	results := map[string]float64{}
	read := func(r io.Reader) error {
		data, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		parseBench(string(data), results)
		return nil
	}
	if len(files) == 0 {
		return results, read(stdin)
	}
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		err = read(fh)
		fh.Close()
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// parseBench extracts "Benchmark<Name>[-procs] <iters> <value> ns/op" lines,
// keeping the minimum value per name.
func parseBench(text string, results map[string]float64) {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if old, ok := results[name]; !ok || v < old {
				results[name] = v
			}
			break
		}
	}
}
