// Command nccd is the NCC scenario-execution daemon: a long-running HTTP
// service that accepts scenario submissions (the same JSON files nccrun
// consumes), executes them on a bounded-concurrency scheduler with a global
// engine-worker budget, streams results back as NDJSON records, and serves
// identical re-submissions from a content-addressed result cache.
//
// One binary, three roles:
//
//	nccd -addr :9876 -cache-dir /var/lib/nccd        # standalone daemon
//	nccd -coordinator -addr :9876                    # cluster coordinator
//	nccd -addr :0 -join http://coord:9876            # cluster worker
//
// A coordinator executes nothing itself: workers register with it
// (POST /v1/workers, heartbeated), it shards submitted jobs across them by
// free capacity, proxies each job's record stream back byte-identical to a
// local run, and re-dispatches jobs whose worker dies mid-run. A worker is an
// ordinary standalone daemon plus a registration loop; its own HTTP API keeps
// serving direct clients.
//
// Endpoints (see internal/service):
//
//	POST   /v1/jobs              submit a scenario JSON
//	GET    /v1/jobs              list jobs (?state=, ?limit=)
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/records NDJSON record stream (live)
//	POST   /v1/jobs/{id}/cancel  cancel a job
//	DELETE /v1/jobs/{id}         cancel a job
//	POST   /v1/campaigns         submit a campaign spec (inline scenarios)
//	GET    /v1/campaigns         list campaigns
//	GET    /v1/campaigns/{id}    campaign status and unit→job map
//	GET    /v1/campaigns/{id}/report  comparative report (JSON; ?format=text)
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text metrics
//	POST   /v1/workers           (coordinator) register/heartbeat a worker
//	GET    /v1/workers           (coordinator) list workers
//	DELETE /v1/workers/{name}    (coordinator) deregister a worker
//
// SIGTERM/SIGINT drain gracefully: a worker first deregisters (so the
// coordinator re-dispatches its jobs), then submissions are refused, running
// jobs get -drain-timeout to finish, stragglers are canceled through the
// engine's abort path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ncc/internal/graphio"
	"ncc/internal/service"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is the testable entry point: it serves until a signal arrives on sigs
// or the listener fails, and returns a process exit code.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("nccd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9876", "listen address (host:port; port 0 picks a free port)")
	cacheDir := fs.String("cache-dir", "", "persist completed sweeps here as content-addressed NDJSON (empty: in-memory cache only)")
	budget := fs.Int("budget", 0, "global engine-worker budget shared across jobs (0 = GOMAXPROCS)")
	jobs := fs.Int("jobs", 2, "jobs executing concurrently (runs within a job are always sequential)")
	queue := fs.Int("queue", 256, "queued-job limit; submissions beyond it get 503")
	retain := fs.Int("retain", 1024, "jobs remembered before the oldest terminal ones are forgotten (results stay cached)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown before they are canceled")
	coordinator := fs.Bool("coordinator", false, "run as a cluster coordinator: execute nothing locally, shard jobs across registered workers")
	workerTTL := fs.Duration("worker-ttl", 10*time.Second, "coordinator: drop workers whose last heartbeat is older than this")
	attempts := fs.Int("attempts", 3, "coordinator: dispatch attempts per job before it is failed")
	graphDir := fs.String("graph-dir", graphio.DefaultDir(), "content-addressed graph store served at /v1/graphs and used by file-family scenarios (empty: disable the graph API)")
	join := fs.String("join", "", "worker: register with the coordinator at this base URL and heartbeat")
	advertise := fs.String("advertise", "", "worker: base URL the coordinator should dial back (default: derived from the bound listen address)")
	name := fs.String("name", "", "worker: stable name to register under (default: advertised host:port)")
	heartbeat := fs.Duration("heartbeat", 2*time.Second, "worker: registration heartbeat period (keep well under the coordinator's -worker-ttl)")
	clusterToken := fs.String("cluster-token", "", "require this bearer token on every /v1/ route and present it to the coordinator/workers (empty: no auth)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log encoding on stderr: text or json")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (token-exempt like /healthz and /metrics; leave off beyond a trusted network)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger, err := buildLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(stderr, "nccd:", err)
		return 2
	}
	if *coordinator && *join != "" {
		fmt.Fprintln(stderr, "nccd: -coordinator and -join are mutually exclusive (a coordinator does not execute jobs)")
		return 2
	}

	cfg := service.Config{
		WorkerBudget: *budget,
		Executors:    *jobs,
		QueueLimit:   *queue,
		CacheDir:     *cacheDir,
		RetainJobs:   *retain,
		WorkerTTL:    *workerTTL,
		JobAttempts:  *attempts,
		GraphDir:     *graphDir,
		ClusterToken: *clusterToken,
		Pprof:        *pprofOn,
		Logger:       logger,
	}
	if *graphDir != "" {
		// The daemon's own file-family resolver and its /v1/graphs API share
		// one store, so a graph uploaded here is immediately runnable here.
		graphio.SetStoreDir(*graphDir)
	}
	if *join != "" {
		// Worker role: graphs referenced by dispatched jobs but missing from
		// the local store are fetched from the coordinator on demand.
		graphio.SetFetcher(service.GraphFetcher(*join, *clusterToken))
	}
	var svc *service.Server
	if *coordinator {
		svc, err = service.NewCoordinator(cfg)
	} else {
		svc, err = service.New(cfg)
	}
	if err != nil {
		logger.Error("startup failed", "err", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	role := "standalone"
	if *coordinator {
		role = "coordinator"
	} else if *join != "" {
		role = "worker"
	}
	// The stdout announcement is a stable machine-readable contract (scripts
	// sed the bound address out of it); everything else logs structured.
	fmt.Fprintf(stdout, "nccd listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(), "role", role, "pprof", *pprofOn)

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Worker role: maintain cluster membership alongside serving.
	joinCtx, stopJoin := context.WithCancel(context.Background())
	defer stopJoin()
	var joinWG sync.WaitGroup
	if *join != "" {
		self := *advertise
		if self == "" {
			self = "http://" + dialableAddr(ln.Addr())
		}
		workerLog := logger.With("role", "worker", "self", self)
		jn := &service.Joiner{
			Coordinator: *join,
			Self:        self,
			Name:        *name,
			Capacity:    *jobs,
			Interval:    *heartbeat,
			Token:       *clusterToken,
			Logf: func(format string, args ...any) {
				workerLog.Info(fmt.Sprintf(format, args...))
			},
		}
		joinWG.Add(1)
		go func() {
			defer joinWG.Done()
			jn.Run(joinCtx)
		}()
	}

	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		return 1
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(), "timeout", *drainTimeout)
		// Deregister first so the coordinator stops dispatching here and
		// re-dispatches whatever this drain is about to cancel.
		stopJoin()
		joinWG.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			logger.Warn("drain timeout exceeded, jobs canceled", "err", err)
		}
		// Streams of now-terminal jobs close on their own; give connections a
		// moment to finish, then cut whatever is left.
		shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shCancel()
		if err := srv.Shutdown(shCtx); err != nil {
			srv.Close()
		}
		fmt.Fprintln(stdout, "nccd: drained, bye")
		return 0
	}
}

// buildLogger assembles the daemon's structured stderr logger from the
// -log-level and -log-format flags. Stdout stays reserved for the two stable
// announcement lines ("nccd listening on ..." and "nccd: drained, bye").
func buildLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// dialableAddr turns the bound listen address into something another process
// can dial: an unspecified host (0.0.0.0, [::]) becomes the loopback address.
// Multi-host deployments should pass -advertise explicitly.
func dialableAddr(a net.Addr) string {
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		return a.String()
	}
	if tcp.IP == nil || tcp.IP.IsUnspecified() {
		return fmt.Sprintf("127.0.0.1:%d", tcp.Port)
	}
	return tcp.String()
}
