// Command nccd is the NCC scenario-execution daemon: a long-running HTTP
// service that accepts scenario submissions (the same JSON files nccrun
// consumes), executes them on a bounded-concurrency scheduler with a global
// engine-worker budget, streams results back as NDJSON records, and serves
// identical re-submissions from a content-addressed result cache.
//
// Usage:
//
//	nccd -addr :9876 -cache-dir /var/lib/nccd
//
// Endpoints (see internal/service):
//
//	POST /v1/jobs              submit a scenario JSON
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/records NDJSON record stream (live)
//	POST /v1/jobs/{id}/cancel  cancel a job
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text metrics
//
// SIGTERM/SIGINT drain gracefully: submissions are refused, running jobs get
// -drain-timeout to finish, stragglers are canceled through the engine's
// abort path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ncc/internal/service"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

// run is the testable entry point: it serves until a signal arrives on sigs
// or the listener fails, and returns a process exit code.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("nccd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9876", "listen address (host:port; port 0 picks a free port)")
	cacheDir := fs.String("cache-dir", "", "persist completed sweeps here as content-addressed NDJSON (empty: in-memory cache only)")
	budget := fs.Int("budget", 0, "global engine-worker budget shared across jobs (0 = GOMAXPROCS)")
	jobs := fs.Int("jobs", 2, "jobs executing concurrently (runs within a job are always sequential)")
	queue := fs.Int("queue", 256, "queued-job limit; submissions beyond it get 503")
	retain := fs.Int("retain", 1024, "jobs remembered before the oldest terminal ones are forgotten (results stay cached)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown before they are canceled")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	svc, err := service.New(service.Config{
		WorkerBudget: *budget,
		Executors:    *jobs,
		QueueLimit:   *queue,
		CacheDir:     *cacheDir,
		RetainJobs:   *retain,
	})
	if err != nil {
		fmt.Fprintln(stderr, "nccd:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "nccd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "nccd listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "nccd:", err)
		return 1
	case sig := <-sigs:
		fmt.Fprintf(stderr, "nccd: %v: draining (timeout %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintln(stderr, "nccd: drain timeout exceeded, jobs canceled:", err)
		}
		// Streams of now-terminal jobs close on their own; give connections a
		// moment to finish, then cut whatever is left.
		shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shCancel()
		if err := srv.Shutdown(shCtx); err != nil {
			srv.Close()
		}
		fmt.Fprintln(stdout, "nccd: drained, bye")
		return 0
	}
}
