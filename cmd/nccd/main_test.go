package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer: run() writes from the server
// goroutine while the test polls for the listen line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeSubmitAndDrain boots the daemon on an ephemeral port, submits a
// scenario over HTTP, reads the full record stream, and shuts down via
// SIGTERM-style delivery.
func TestServeSubmitAndDrain(t *testing.T) {
	graphDir := filepath.Join(t.TempDir(), "graphs")
	sigs := make(chan os.Signal, 1)
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-jobs", "1", "-graph-dir", graphDir}, &stdout, &stderr, sigs)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if out := stdout.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			base = "http://" + strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(health), `"status":"ok"`) {
		t.Fatalf("healthz: %s", health)
	}

	spec := `{"algo":"mis","graph":{"family":"kforest","params":{"n":16,"k":2},"seed":1},"model":{"seed":1}}`
	post, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	created, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", post.StatusCode, created)
	}
	id := extractField(t, string(created), `"id":"`)
	stream, err := http.Get(base + "/v1/jobs/" + id + "/records")
	if err != nil {
		t.Fatal(err)
	}
	records, _ := io.ReadAll(stream.Body)
	stream.Body.Close()
	if n := strings.Count(strings.TrimSpace(string(records)), "\n") + 1; n != 1 {
		t.Fatalf("got %d record lines, want 1:\n%s", n, records)
	}
	if !strings.Contains(string(records), `"verified":true`) {
		t.Fatalf("record not verified: %s", records)
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d after SIGTERM; stderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained, bye") {
		t.Errorf("missing drain farewell; stdout=%q", stdout.String())
	}
}

func extractField(t *testing.T, s, prefix string) string {
	t.Helper()
	i := strings.Index(s, prefix)
	if i < 0 {
		t.Fatalf("%q not found in %s", prefix, s)
	}
	rest := s[i+len(prefix):]
	return rest[:strings.Index(rest, `"`)]
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadAddr(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-addr", "256.256.256.256:http"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
}

// TestPprofAndJSONLogs boots the daemon with -pprof and JSON logging: the
// profiling surface answers without a token, runtime gauges appear on
// /metrics, every stderr line is a structured JSON record, and the two stable
// stdout announcements survive the slog conversion.
func TestPprofAndJSONLogs(t *testing.T) {
	sigs := make(chan os.Signal, 1)
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-jobs", "1", "-graph-dir", "",
			"-pprof", "-log-format", "json", "-log-level", "debug",
			"-cluster-token", "sekrit"}, &stdout, &stderr, sigs)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr=%q", stderr.String())
		}
		if out := stdout.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			base = "http://" + strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// pprof and /metrics answer without the cluster token (the guard covers
	// /v1/ only).
	for _, path := range []string{"/debug/pprof/", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "nccd_goroutines") {
			t.Fatalf("/metrics missing runtime gauges:\n%s", body)
		}
	}
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless /v1/jobs: status %d, want 401", resp.StatusCode)
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(stdout.String(), "drained, bye") {
		t.Errorf("missing drain farewell; stdout=%q", stdout.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stderr.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q: %v", line, err)
		}
		if rec["msg"] == nil || rec["level"] == nil {
			t.Fatalf("log record missing msg/level: %q", line)
		}
	}
	if !strings.Contains(stderr.String(), `"msg":"listening"`) {
		t.Errorf("no structured listening record; stderr=%q", stderr.String())
	}
}

func TestBadLogFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-log-level", "loud"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-log-format", "xml"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
}
