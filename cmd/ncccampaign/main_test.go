package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/campaign"
	"ncc/internal/service"
)

// runCapture invokes run and returns (exit code, stdout, stderr).
func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// smallSpec is a two-unit campaign (mis + its auto-derived baseline) small
// enough to execute in-process repeatedly.
const smallSpec = `{
	"name": "cmd-test",
	"sweep": {"seeds": [1]},
	"entries": [
		{"name": "mis-kforest", "scenario": {"algo": "mis", "graph": {"family": "kforest", "params": {"n": 12, "k": 2}}}}
	]
}`

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func newDaemon(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLocalRemoteByteIdentical is the acceptance check for the CLI surface:
// the same spec run locally and through a daemon emits byte-identical -json
// report lines (the report has no wall-clock fields, and the remote path
// passes the server's bytes through verbatim).
func TestLocalRemoteByteIdentical(t *testing.T) {
	spec := writeSpec(t, smallSpec)
	code, local, errw := runCapture(t, "-spec", spec, "-json")
	if code != 0 {
		t.Fatalf("local exit %d, stderr: %s", code, errw)
	}
	ts := newDaemon(t, service.Config{Executors: 2, WorkerBudget: 4})
	code, remote, errw := runCapture(t, "-spec", spec, "-json", "-remote", ts.URL, "-poll", "10ms")
	if code != 0 {
		t.Fatalf("remote exit %d, stderr: %s", code, errw)
	}
	if local != remote {
		t.Errorf("local and remote -json output differ:\n--- local:\n%s--- remote:\n%s", local, remote)
	}
	if !strings.Contains(errw, "submitted to "+ts.URL) {
		t.Errorf("remote run missing submission note: %s", errw)
	}
}

func TestRemoteHonorsToken(t *testing.T) {
	spec := writeSpec(t, smallSpec)
	ts := newDaemon(t, service.Config{Executors: 2, WorkerBudget: 4, ClusterToken: "s3cret"})
	code, _, errw := runCapture(t, "-spec", spec, "-json", "-remote", ts.URL, "-poll", "10ms")
	if code != 1 || !strings.Contains(errw, "401") {
		t.Fatalf("tokenless submit: exit %d, stderr %q; want 1 with a 401", code, errw)
	}
	code, out, errw := runCapture(t, "-spec", spec, "-json", "-remote", ts.URL, "-poll", "10ms", "-token", "s3cret")
	if code != 0 {
		t.Fatalf("authed exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, `"campaign":"cmd-test"`) {
		t.Errorf("report line missing campaign name:\n%s", out)
	}
}

// TestHistoryAppend pins the longitudinal artifact: each run appends exactly
// one Snapshot line, and the deterministic Report inside stays identical
// across runs.
func TestHistoryAppend(t *testing.T) {
	spec := writeSpec(t, smallSpec)
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		code, _, errw := runCapture(t, "-spec", spec, "-json", "-history", dir)
		if code != 0 {
			t.Fatalf("run %d exit %d, stderr: %s", i, code, errw)
		}
	}
	path := campaign.HistoryPath(dir, "cmd-test")
	snaps, err := campaign.LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("history has %d snapshots, want 2", len(snaps))
	}
	for i, s := range snaps {
		if s.Source != "local" || s.Time.IsZero() {
			t.Errorf("snapshot %d context incomplete: source=%q time=%v", i, s.Source, s.Time)
		}
	}
	a := renderText(t, snaps[0].Report)
	b := renderText(t, snaps[1].Report)
	if a != b {
		t.Errorf("report drifted between identical runs:\n%s\n%s", a, b)
	}
	deltas, missing := campaign.Compare(snaps[0].Report, snaps[1].Report)
	if len(missing) != 0 {
		t.Errorf("coverage changed between identical runs: %v", missing)
	}
	for _, d := range deltas {
		if d.Frac != 0 {
			t.Errorf("nonzero delta between identical runs: %+v", d)
		}
	}
}

func renderText(t *testing.T, r campaign.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := campaign.RenderText(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTextReportTable(t *testing.T) {
	spec := writeSpec(t, smallSpec)
	code, out, errw := runCapture(t, "-spec", spec)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"campaign cmd-test:", "entry", "variant", "mis-kforest", "baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Errorf("missing -spec: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-spec", filepath.Join(t.TempDir(), "nope.json")); code != 2 {
		t.Errorf("unreadable spec: exit %d, want 2", code)
	}
	bad := writeSpec(t, `{"name":"x","entries":[{"name":"e","scenario":{"algo":"no-such-algo","graph":{"family":"kforest","params":{"n":8,"k":2}}}}]}`)
	if code, _, errw := runCapture(t, "-spec", bad); code != 2 {
		t.Errorf("invalid spec: exit %d, want 2 (stderr: %s)", code, errw)
	}
}

// TestShippedSpecStaysValid keeps the committed example campaign loadable —
// the nightly workflow and README walkthrough both point at it.
func TestShippedSpecStaysValid(t *testing.T) {
	path := filepath.Join("..", "..", "campaigns", "compare-small.json")
	sp, err := campaign.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Resolve(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	units, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 6 {
		t.Fatalf("compare-small expands to %d units, want 6 (3 entries x ncc+baseline)", len(units))
	}
	if _, err := campaign.LoadReport(filepath.Join("..", "..", "campaigns", "compare-small.reference.json")); err != nil {
		t.Fatalf("shipped reference record unreadable: %v", err)
	}
}
