// Command ncccampaign runs experiment campaigns: multi-scenario suites that
// compare NCC algorithms against their centralized baselines (and k-machine
// projections) across a shared sweep, merging every unit's records into one
// comparative report.
//
// A campaign runs either locally (each unit through the in-process engine) or
// on a running nccd (POST /v1/campaigns — units flow through the daemon's
// result cache and, on a coordinator, across the worker fleet). The report is
// deterministic — it contains no wall-clock fields — so both paths emit
// byte-identical -json output for the same spec. Each report row carries the
// unit's canonical telemetry-trace hash ("trace": "sha256:..."), the join key
// to the NDJSON traces served at /v1/jobs/{id}/trace and analyzed by
// ncctrace; the hash is identical whether the unit ran locally, on a daemon,
// or out of the result cache.
//
//	ncccampaign -spec campaigns/compare-small.json
//	ncccampaign -spec campaigns/compare-small.json -json
//	ncccampaign -spec campaigns/compare-small.json -remote http://127.0.0.1:9876 -token s3cret
//	ncccampaign -spec campaigns/compare-small.json -history campaigns   # append a snapshot
//
// -history appends a timestamped Snapshot line (NDJSON) to
// <dir>/<name>.history.json — the longitudinal record that
// `benchcheck -campaign` gates on.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ncc/internal/campaign"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ncccampaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "campaign spec JSON `file` (required)")
	remote := fs.String("remote", "", "run on the nccd at this base URL instead of locally")
	token := fs.String("token", "", "bearer token for a token-protected nccd (-remote)")
	jsonOut := fs.Bool("json", false, "emit the report as one JSON line instead of the text table")
	historyDir := fs.String("history", "", "append a timestamped snapshot to <dir>/<name>.history.json")
	poll := fs.Duration("poll", 200*time.Millisecond, "remote: status poll interval")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *specPath == "" {
		fmt.Fprintln(stderr, "ncccampaign: -spec is required")
		return 2
	}

	sp, err := campaign.Load(*specPath)
	if err != nil {
		fmt.Fprintln(stderr, "ncccampaign:", err)
		return 2
	}
	// Refs resolve relative to the spec file, client-side: the daemon only
	// accepts inline scenarios (it has no view of this filesystem).
	if err := sp.Resolve(filepath.Dir(*specPath)); err != nil {
		fmt.Fprintln(stderr, "ncccampaign:", err)
		return 2
	}
	if err := sp.Validate(); err != nil {
		fmt.Fprintln(stderr, "ncccampaign:", err)
		return 2
	}

	start := time.Now()
	var rep campaign.Report
	var rawReport []byte // the server's report bytes, passed through verbatim
	source := "local"
	if *remote != "" {
		source = strings.TrimRight(*remote, "/")
		rawReport, err = runRemote(source, *token, sp, *poll, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "ncccampaign:", err)
			return 1
		}
		if err := json.Unmarshal(rawReport, &rep); err != nil {
			fmt.Fprintln(stderr, "ncccampaign: decoding report:", err)
			return 1
		}
	} else {
		rep, err = campaign.Execute(sp, campaign.Local())
		if err != nil {
			fmt.Fprintln(stderr, "ncccampaign:", err)
			return 1
		}
	}
	elapsed := time.Since(start)

	if *historyDir != "" {
		snap := campaign.Snapshot{
			Time:    time.Now().UTC(),
			Elapsed: elapsed.Seconds(),
			Source:  source,
			Report:  rep,
		}
		path := campaign.HistoryPath(*historyDir, sp.Name)
		if err := campaign.AppendHistory(path, snap); err != nil {
			fmt.Fprintln(stderr, "ncccampaign:", err)
			return 1
		}
		if !*jsonOut {
			fmt.Fprintf(stderr, "ncccampaign: snapshot appended to %s\n", path)
		}
	}

	if *jsonOut {
		if rawReport != nil {
			// Verbatim server bytes: Encoder.Encode on the daemon equals
			// Marshal+"\n" here, so local and remote output stay
			// byte-identical.
			stdout.Write(rawReport)
		} else {
			line, err := json.Marshal(rep)
			if err != nil {
				fmt.Fprintln(stderr, "ncccampaign:", err)
				return 1
			}
			fmt.Fprintln(stdout, string(line))
		}
	} else if err := campaign.RenderText(stdout, rep); err != nil {
		fmt.Fprintln(stderr, "ncccampaign:", err)
		return 1
	}

	if rep.Errors > 0 {
		fmt.Fprintf(stderr, "ncccampaign: %d run error(s)\n", rep.Errors)
		return 1
	}
	if rep.Verified < rep.Runs {
		fmt.Fprintf(stderr, "ncccampaign: %d/%d runs verified\n", rep.Verified, rep.Runs)
		return 1
	}
	return 0
}

// runRemote submits the resolved spec to the daemon and polls the campaign to
// its terminal state, returning the report endpoint's raw JSON bytes.
func runRemote(base, token string, sp campaign.Spec, poll time.Duration, stderr io.Writer) ([]byte, error) {
	cl := client{base: base, token: token}
	body, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	var info struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := cl.call(http.MethodPost, "/v1/campaigns", body, &info); err != nil {
		return nil, err
	}
	fmt.Fprintf(stderr, "ncccampaign: campaign %s submitted to %s\n", info.ID, base)
	for info.State != "done" && info.State != "failed" {
		time.Sleep(poll)
		if err := cl.call(http.MethodGet, "/v1/campaigns/"+info.ID, nil, &info); err != nil {
			return nil, err
		}
	}
	if info.State == "failed" {
		return nil, fmt.Errorf("campaign %s failed: %s", info.ID, info.Error)
	}
	return cl.raw("/v1/campaigns/" + info.ID + "/report")
}

// client issues nccd API calls with the optional bearer token attached.
type client struct {
	base  string
	token string
}

func (c client) do(method, path string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, msg)
	}
	return resp, nil
}

// call decodes a JSON response into out.
func (c client) call(method, path string, body []byte, out any) error {
	resp, err := c.do(method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// raw returns a GET response body verbatim.
func (c client) raw(path string) ([]byte, error) {
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
