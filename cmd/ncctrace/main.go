// Command ncctrace analyzes NCC telemetry traces (the NDJSON files written by
// `nccrun -trace`, `nccd`'s /v1/jobs/{id}/trace endpoint, or any tool using
// internal/obs). It never executes scenarios — it is a pure consumer of trace
// bytes, so its output is deterministic for a given input.
//
// Usage:
//
//	ncctrace summary trace.ndjson        per-run phase breakdown, round-rate
//	                                     curve, shard-imbalance percentiles
//	ncctrace diff good.ndjson bad.ndjson localize a regression: which runs and
//	                                     round ranges diverge (exit 1 if any)
//	ncctrace validate trace.ndjson       structural check + canonical hash
//	ncctrace export -pprof-labels t.ndjson  phase table keyed for pprof tag
//	                                        filtering (run=N labels)
//
// A filename of "-" reads standard input, so daemon traces pipe directly:
//
//	curl -s $NCCD/v1/jobs/j0001/trace | ncctrace summary -
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"ncc/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

const usage = `usage: ncctrace <command> [flags] <trace.ndjson>

commands:
  summary   <trace>      human-readable per-run analysis
  diff      <a> <b>      structural comparison; exit 1 when traces differ
  validate  <trace>      structural check; prints the canonical hash
  export    [-pprof-labels] <trace>  machine-readable phase table

a trace argument of "-" reads standard input
`

// run is the testable entry point (0 ok, 1 analysis failure/difference,
// 2 usage).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return cmdSummary(rest, stdin, stdout, stderr)
	case "diff":
		return cmdDiff(rest, stdin, stdout, stderr)
	case "validate":
		return cmdValidate(rest, stdin, stdout, stderr)
	case "export":
		return cmdExport(rest, stdin, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "ncctrace: unknown command %q\n%s", cmd, usage)
		return 2
	}
}

// load parses one trace argument ("-" is stdin).
func load(name string, stdin io.Reader) (*obs.Trace, error) {
	r := stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	t, err := obs.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return t, nil
}

func cmdSummary(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: ncctrace summary <trace.ndjson>")
		return 2
	}
	t, err := load(args[0], stdin)
	if err != nil {
		fmt.Fprintln(stderr, "ncctrace:", err)
		return 1
	}
	obs.WriteSummary(stdout, t)
	return 0
}

func cmdDiff(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "usage: ncctrace diff <a.ndjson> <b.ndjson>")
		return 2
	}
	a, err := load(args[0], stdin)
	if err != nil {
		fmt.Fprintln(stderr, "ncctrace:", err)
		return 1
	}
	b, err := load(args[1], stdin)
	if err != nil {
		fmt.Fprintln(stderr, "ncctrace:", err)
		return 1
	}
	if obs.WriteDiff(stdout, args[0], args[1], a, b) {
		return 0
	}
	return 1
}

func cmdValidate(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: ncctrace validate <trace.ndjson>")
		return 2
	}
	var data []byte
	var err error
	if args[0] == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(args[0])
	}
	if err != nil {
		fmt.Fprintln(stderr, "ncctrace:", err)
		return 1
	}
	if err := obs.Validate(data); err != nil {
		fmt.Fprintf(stderr, "ncctrace: %s: %v\n", args[0], err)
		return 1
	}
	t, err := obs.Parse(bytes.NewReader(data))
	if err != nil {
		fmt.Fprintln(stderr, "ncctrace:", err)
		return 1
	}
	fmt.Fprintf(stdout, "valid: %d runs, %d rounds, hash %s\n", len(t.Runs), t.Rounds(), hashOf(data))
	return 0
}

func cmdExport(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ncctrace export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pprofLabels := fs.Bool("pprof-labels", false, "frame the phase table as pprof tag keys (run=N), for -tagfocus on profiles from nccrun -cpuprofile")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ncctrace export [-pprof-labels] <trace.ndjson>")
		return 2
	}
	t, err := load(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "ncctrace:", err)
		return 1
	}
	obs.WritePhases(stdout, t, *pprofLabels)
	return 0
}

// hashOf computes the canonical hash of raw trace bytes by splitting them into
// lines (the obs.Hash contract takes lines without trailing newlines).
func hashOf(data []byte) string {
	var lines [][]byte
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i > start {
				lines = append(lines, data[start:i])
			}
			start = i + 1
		}
	}
	return obs.Hash(lines)
}
