package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/ncc"
	"ncc/internal/obs"
)

// synthTrace writes a deterministic little trace: rounds of geometric decay
// from a fixed starting volume. bump shifts one round's traffic so two traces
// can diverge on demand.
func synthTrace(t *testing.T, path string, rounds, bump int) {
	t.Helper()
	c := &obs.Collector{}
	probe := c.Probe()
	var st ncc.Stats
	for i := 0; i < rounds; i++ {
		msgs := 512 >> i
		if i == bump {
			msgs *= 3
		}
		probe(ncc.RoundSample{
			Round: i, Messages: msgs, Delivered: msgs, Words: msgs,
			Active: min(32, msgs), MaxSendLoad: max(1, msgs/32),
			MaxRecvOffered: max(1, msgs/32), MaxRecvDelivered: max(1, msgs/32),
		}, nil)
		st.Messages += int64(msgs)
		st.Words += int64(msgs)
		st.Rounds++
	}
	c.FinishRun(obs.Header{Scenario: "sha256:feed", Algo: "broadcast", Graph: "ring", N: 32, Seed: 3, Cap: 40}, st, false)
	if err := os.WriteFile(path, c.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runCapture(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errw strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

// TestSummaryDeterministic pins that summary output is a pure function of the
// trace bytes: two invocations agree byte for byte and carry the expected
// sections.
func TestSummaryDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ndjson")
	synthTrace(t, path, 8, -1)
	code, out1, errw := runCapture(t, "", "summary", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	_, out2, _ := runCapture(t, "", "summary", path)
	if out1 != out2 {
		t.Fatal("summary output is not deterministic")
	}
	for _, want := range []string{"broadcast", "ring", "rate:", "phase"} {
		if !strings.Contains(out1, want) {
			t.Errorf("summary missing %q:\n%s", want, out1)
		}
	}

	// Stdin works identically.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	code, outStdin, _ := runCapture(t, string(data), "summary", "-")
	if code != 0 || outStdin != out1 {
		t.Fatalf("stdin summary differs (exit %d):\n%s", code, outStdin)
	}
}

// TestDiffExitCodes pins the gate contract: identical traces exit 0, diverging
// traces exit 1 and localize the diverging rounds.
func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	a, b, c := filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson"), filepath.Join(dir, "c.ndjson")
	synthTrace(t, a, 8, -1)
	synthTrace(t, b, 8, -1)
	synthTrace(t, c, 8, 3)

	code, out, errw := runCapture(t, "", "diff", a, b)
	if code != 0 {
		t.Fatalf("identical traces: exit %d, stderr: %s\n%s", code, errw, out)
	}
	code, out, _ = runCapture(t, "", "diff", a, c)
	if code != 1 {
		t.Fatalf("diverging traces: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "round") {
		t.Errorf("diff does not localize rounds:\n%s", out)
	}
	_, out2, _ := runCapture(t, "", "diff", a, c)
	if out != out2 {
		t.Fatal("diff output is not deterministic")
	}
}

func TestValidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ndjson")
	synthTrace(t, path, 4, -1)
	code, out, errw := runCapture(t, "", "validate", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "valid: 1 runs, 4 rounds, hash sha256:") {
		t.Errorf("unexpected validate output: %s", out)
	}

	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(bad, []byte(`{"t":"r","round":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errw := runCapture(t, "", "validate", bad); code != 1 || errw == "" {
		t.Fatalf("invalid trace: exit %d, stderr: %q", code, errw)
	}
}

func TestExportPprofLabels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ndjson")
	synthTrace(t, path, 6, -1)
	code, plain, errw := runCapture(t, "", "export", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	code, labeled, errw := runCapture(t, "", "export", "-pprof-labels", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(labeled, "run=0") {
		t.Errorf("labeled export missing pprof tag keys:\n%s", labeled)
	}
	if plain == labeled {
		t.Error("-pprof-labels output identical to plain export")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t, "", ""); code != 2 {
		t.Errorf("empty command: exit %d, want 2", code)
	}
	if code, _, errw := runCapture(t, "", "frobnicate"); code != 2 || !strings.Contains(errw, "unknown command") {
		t.Errorf("unknown command: exit %d, stderr %q", code, errw)
	}
	if code, _, _ := runCapture(t, "", "summary"); code != 2 {
		t.Errorf("summary without file: exit %d, want 2", code)
	}
	if code, _, errw := runCapture(t, "", "summary", filepath.Join(t.TempDir(), "missing.ndjson")); code != 1 || errw == "" {
		t.Errorf("missing file: exit %d, stderr %q", code, errw)
	}
	if code, out, _ := runCapture(t, "", "help"); code != 0 || !strings.Contains(out, "usage:") {
		t.Errorf("help: exit %d, out %q", code, out)
	}
}
