// Command nccgraph manages the content-addressed graph store that feeds
// file-family scenarios: it ingests real-world edge lists into the canonical
// .nccg binary format, generates graphs from the registered families, exports
// stored graphs back out, and inspects what a store holds.
//
// Usage examples:
//
//	nccgraph ingest com-dblp.txt                     # edge list -> store, prints the hash
//	nccgraph ingest -o dblp.nccg com-dblp.txt        # edge list -> .nccg file (no store)
//	nccgraph gen -graph pa -n 100000 -k 2 -seed 1    # generator -> store
//	nccgraph info <hash>                             # inspect a stored graph
//	nccgraph info -json dblp.nccg                    # inspect a .nccg file as JSON
//	nccgraph export -format edgelist -o out.txt <hash>
//
// Every stored graph lives at <store>/<sha256>.nccg; the hash is what a
// scenario's {"graph":{"family":"file","file":"<hash>"}} block references and
// what cluster nodes exchange over /v1/graphs. The store directory defaults
// to $NCC_GRAPH_DIR or ./graphs (-graph-dir overrides).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ncc/internal/graph"
	"ncc/internal/graphio"
	"ncc/internal/param"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ingest":
		return cmdIngest(rest, stdout, stderr)
	case "gen":
		return cmdGen(rest, stdout, stderr)
	case "info":
		return cmdInfo(rest, stdout, stderr)
	case "export":
		return cmdExport(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "nccgraph: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: nccgraph <command> [flags] ...

commands:
  ingest   parse an edge-list file into canonical .nccg form (store or -o file)
  gen      build a registered graph family into the store (or -o file)
  info     describe a stored hash or .nccg file (-json for machine-readable)
  export   write a stored graph as an edge list or raw .nccg

run 'nccgraph <command> -h' for the command's flags
`)
}

// storeFlag adds the shared -graph-dir flag to a subcommand.
func storeFlag(fs *flag.FlagSet) *string {
	return fs.String("graph-dir", "", "graph store directory (default $NCC_GRAPH_DIR or ./graphs)")
}

func openStore(dir string) (*graphio.Store, error) {
	if dir == "" {
		dir = graphio.DefaultDir()
	}
	return graphio.NewStore(dir)
}

func parseFlags(fs *flag.FlagSet, args []string) (ok bool, code int) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return false, 0
		}
		return false, 2
	}
	return true, 0
}

func cmdIngest(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nccgraph ingest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := storeFlag(fs)
	out := fs.String("o", "", "write the .nccg to this file instead of the store")
	quiet := fs.Bool("q", false, "print only the content hash (or nothing with -o)")
	if ok, code := parseFlags(fs, args); !ok {
		return code
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "nccgraph ingest: need exactly one edge-list file")
		return 2
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	defer f.Close()
	g, stats, err := graphio.ParseEdgeList(f)
	if err != nil {
		fmt.Fprintf(stderr, "nccgraph: ingesting %s: %v\n", path, err)
		return 1
	}
	if !*quiet {
		mode := "identity ids"
		if stats.Remapped {
			mode = "ids remapped dense"
		}
		fmt.Fprintf(stdout, "parsed %s: %d lines (%d comments), %d raw edges, %d self-loops and %d duplicates dropped, %s\n",
			path, stats.Lines, stats.Comments, stats.RawEdges, stats.SelfLoops, stats.Duplicates, mode)
		fmt.Fprintf(stdout, "graph: n=%d m=%d\n", g.N(), g.M())
	}
	if *out != "" {
		if err := graphio.WriteFile(*out, g); err != nil {
			fmt.Fprintln(stderr, "nccgraph:", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", *out, graphio.EncodedSize(g))
		}
		return 0
	}
	st, err := openStore(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	hash, err := st.PutGraph(g)
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	if *quiet {
		fmt.Fprintln(stdout, hash)
	} else {
		fmt.Fprintf(stdout, "stored %s\nhash %s\n", st.Path(hash), hash)
	}
	return 0
}

func cmdGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nccgraph gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := storeFlag(fs)
	out := fs.String("o", "", "write the .nccg to this file instead of the store")
	family := fs.String("graph", "gnm", "graph family (see nccrun -list)")
	n := fs.Int("n", 64, "number of nodes")
	seed := fs.Int64("seed", 1, "generator seed (for seeded families)")
	gparam := fs.String("gparam", "", "extra family params as name=value,...")
	quiet := fs.Bool("q", false, "print only the content hash (or nothing with -o)")
	if ok, code := parseFlags(fs, args); !ok {
		return code
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "nccgraph gen: takes no positional arguments")
		return 2
	}
	params := param.Values{}
	for _, item := range strings.Split(*gparam, ",") {
		if item = strings.TrimSpace(item); item == "" {
			continue
		}
		name, val, okCut := strings.Cut(item, "=")
		if !okCut {
			fmt.Fprintf(stderr, "nccgraph gen: -gparam %q is not name=value\n", item)
			return 2
		}
		var v float64
		if _, err := fmt.Sscanf(val, "%g", &v); err != nil {
			fmt.Fprintf(stderr, "nccgraph gen: -gparam %q: %v\n", item, err)
			return 2
		}
		params[name] = v
	}
	if _, set := params["n"]; !set {
		params["n"] = float64(*n)
	}
	g, err := graph.Build(graph.Spec{Family: *family, Params: params, Seed: *seed})
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph gen:", err)
		return 2
	}
	if !*quiet {
		fmt.Fprintf(stdout, "graph: %s (n=%d m=%d)\n", g, g.N(), g.M())
	}
	if *out != "" {
		if err := graphio.WriteFile(*out, g); err != nil {
			fmt.Fprintln(stderr, "nccgraph:", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", *out, graphio.EncodedSize(g))
		}
		return 0
	}
	st, err := openStore(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	hash, err := st.PutGraph(g)
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	if *quiet {
		fmt.Fprintln(stdout, hash)
	} else {
		fmt.Fprintf(stdout, "stored %s\nhash %s\n", st.Path(hash), hash)
	}
	return 0
}

// graphInfo is the machine-readable `info -json` payload. CapacityPolicies
// lists the registered heterogeneous-capacity policies so tooling can
// discover what a scenario's capacities block may name.
type graphInfo struct {
	Hash             string       `json:"hash,omitempty"`
	N                int          `json:"n"`
	M                int          `json:"m"`
	MaxDegree        int          `json:"maxDegree"`
	Degeneracy       int          `json:"degeneracy"`
	Components       int          `json:"components"`
	HasCapacities    bool         `json:"hasCapacities"`
	Bytes            int64        `json:"bytes"`
	CapacityPolicies []policyInfo `json:"capacityPolicies"`
}

type policyInfo struct {
	Name        string `json:"name"`
	Desc        string `json:"desc"`
	Params      string `json:"params,omitempty"`
	NeedsValues bool   `json:"needsValues,omitempty"`
}

func policyRegistry() []policyInfo {
	var out []policyInfo
	for _, p := range graph.CapacityPolicies() {
		out = append(out, policyInfo{
			Name: p.Name, Desc: p.Desc, Params: param.Describe(p.Params), NeedsValues: p.NeedsValues,
		})
	}
	return out
}

// loadRef loads a graph named either by a store hash or a .nccg file path.
func loadRef(dir, ref string) (*graph.Graph, string, error) {
	if graphio.ValidHash(ref) {
		st, err := openStore(dir)
		if err != nil {
			return nil, "", err
		}
		g, err := st.Open(ref)
		return g, ref, err
	}
	g, err := graphio.ReadFile(ref)
	return g, "", err
}

func cmdInfo(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nccgraph info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := storeFlag(fs)
	jsonOut := fs.Bool("json", false, "emit JSON (including the capacity policy registry)")
	if ok, code := parseFlags(fs, args); !ok {
		return code
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "nccgraph info: need one store hash or .nccg path")
		return 2
	}
	g, hash, err := loadRef(*dir, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	deg, _ := graph.Degeneracy(g)
	_, comps := graph.Components(g)
	info := graphInfo{
		Hash:             hash,
		N:                g.N(),
		M:                g.M(),
		MaxDegree:        g.MaxDegree(),
		Degeneracy:       deg,
		Components:       comps,
		HasCapacities:    g.CapacityWeights() != nil,
		Bytes:            graphio.EncodedSize(g),
		CapacityPolicies: policyRegistry(),
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(info); err != nil {
			fmt.Fprintln(stderr, "nccgraph:", err)
			return 1
		}
		return 0
	}
	if info.Hash != "" {
		fmt.Fprintf(stdout, "hash %s\n", info.Hash)
	}
	fmt.Fprintf(stdout, "n=%d m=%d maxDegree=%d degeneracy=%d components=%d bytes=%d\n",
		info.N, info.M, info.MaxDegree, info.Degeneracy, info.Components, info.Bytes)
	if info.HasCapacities {
		fmt.Fprintln(stdout, "carries per-node capacity weights (capacities policy \"file\" applies)")
	}
	fmt.Fprintln(stdout, "capacity policies:")
	for _, p := range info.CapacityPolicies {
		fmt.Fprintf(stdout, "  %-10s %s\n", p.Name, p.Desc)
	}
	return 0
}

func cmdExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nccgraph export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := storeFlag(fs)
	out := fs.String("o", "", "output file (required)")
	format := fs.String("format", "nccg", "output format: nccg or edgelist")
	if ok, code := parseFlags(fs, args); !ok {
		return code
	}
	if fs.NArg() != 1 || *out == "" {
		fmt.Fprintln(stderr, "nccgraph export: need -o <file> and one store hash or .nccg path")
		return 2
	}
	g, _, err := loadRef(*dir, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	switch *format {
	case "nccg":
		err = graphio.WriteFile(*out, g)
	case "edgelist":
		var f *os.File
		if f, err = os.Create(*out); err == nil {
			err = graphio.WriteEdgeList(f, g)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	default:
		fmt.Fprintf(stderr, "nccgraph export: unknown format %q (have nccg, edgelist)\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "nccgraph:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (n=%d m=%d)\n", *out, g.N(), g.M())
	return 0
}
