package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/graph"
)

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// hashOf extracts the "hash <h>" line a store-writing command prints.
func hashOf(t *testing.T, stdout string) string {
	t.Helper()
	for _, line := range strings.Split(stdout, "\n") {
		if h, ok := strings.CutPrefix(line, "hash "); ok {
			return h
		}
	}
	t.Fatalf("no hash line in output:\n%s", stdout)
	return ""
}

// TestGenExportIngestCycle is the CLI acceptance loop: generate a graph into
// the store, export it as an edge list, ingest that edge list, and land on
// the exact same content hash — the canonical encoding makes the round trip
// lossless and byte-identical.
func TestGenExportIngestCycle(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "graphs")

	out, errOut, code := runCmd(t, "gen", "-graph", "pa", "-n", "500", "-gparam", "k=2", "-seed", "42", "-graph-dir", store)
	if code != 0 {
		t.Fatalf("gen failed (%d): %s", code, errOut)
	}
	genHash := hashOf(t, out)

	edges := filepath.Join(dir, "pa.txt")
	if _, errOut, code = runCmd(t, "export", "-format", "edgelist", "-o", edges, "-graph-dir", store, genHash); code != 0 {
		t.Fatalf("export failed (%d): %s", code, errOut)
	}

	out, errOut, code = runCmd(t, "ingest", "-graph-dir", store, edges)
	if code != 0 {
		t.Fatalf("ingest failed (%d): %s", code, errOut)
	}
	if got := hashOf(t, out); got != genHash {
		t.Fatalf("ingest hash %s differs from gen hash %s", got, genHash)
	}
	if !strings.Contains(out, "identity ids") {
		t.Fatalf("export/ingest should run in identity mode:\n%s", out)
	}

	// -q prints just the hash (script-friendly).
	out, _, code = runCmd(t, "ingest", "-q", "-graph-dir", store, edges)
	if code != 0 || strings.TrimSpace(out) != genHash {
		t.Fatalf("ingest -q = %q (code %d), want bare %s", out, code, genHash)
	}
}

// TestInfoJSON checks the machine-readable graph description, including the
// capacity-policy registry tooling discovers policies through.
func TestInfoJSON(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "graphs")
	out, errOut, code := runCmd(t, "gen", "-graph", "kforest", "-n", "128", "-seed", "7", "-graph-dir", store)
	if code != 0 {
		t.Fatalf("gen failed (%d): %s", code, errOut)
	}
	hash := hashOf(t, out)

	out, errOut, code = runCmd(t, "info", "-json", "-graph-dir", store, hash)
	if code != 0 {
		t.Fatalf("info failed (%d): %s", code, errOut)
	}
	var info struct {
		Hash             string `json:"hash"`
		N                int    `json:"n"`
		M                int    `json:"m"`
		Degeneracy       int    `json:"degeneracy"`
		Components       int    `json:"components"`
		CapacityPolicies []struct {
			Name string `json:"name"`
		} `json:"capacityPolicies"`
	}
	if err := json.Unmarshal([]byte(out), &info); err != nil {
		t.Fatalf("info -json output is not JSON: %v\n%s", err, out)
	}
	if info.Hash != hash || info.N != 128 || info.M == 0 {
		t.Fatalf("info mismatch: %+v", info)
	}
	names := map[string]bool{}
	for _, p := range info.CapacityPolicies {
		names[p.Name] = true
	}
	for _, want := range graph.CapacityPolicyNames() {
		if !names[want] {
			t.Fatalf("info -json capacityPolicies missing %q: %v", want, names)
		}
	}
}

// TestIngestToFileAndInspect covers the -o path (no store) and info on a
// plain .nccg file.
func TestIngestToFileAndInspect(t *testing.T) {
	dir := t.TempDir()
	edges := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(edges, []byte("# a comment\n1 2\n2 3\n3 1\n42 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	nccg := filepath.Join(dir, "out.nccg")
	out, errOut, code := runCmd(t, "ingest", "-o", nccg, edges)
	if code != 0 {
		t.Fatalf("ingest -o failed (%d): %s", code, errOut)
	}
	if !strings.Contains(out, "ids remapped dense") {
		t.Fatalf("sparse ids should trigger remap mode:\n%s", out)
	}
	out, errOut, code = runCmd(t, "info", nccg)
	if code != 0 {
		t.Fatalf("info on file failed (%d): %s", code, errOut)
	}
	if !strings.Contains(out, "n=4 m=4") {
		t.Fatalf("info: want n=4 m=4 in:\n%s", out)
	}
}

// TestUsageErrors pins the CLI's exit-code contract: 2 for usage problems,
// 1 for failed operations.
func TestUsageErrors(t *testing.T) {
	if _, _, code := runCmd(t); code != 2 {
		t.Errorf("no args: code %d, want 2", code)
	}
	if _, _, code := runCmd(t, "frobnicate"); code != 2 {
		t.Errorf("unknown command: code %d, want 2", code)
	}
	if _, _, code := runCmd(t, "ingest"); code != 2 {
		t.Errorf("ingest without a file: code %d, want 2", code)
	}
	if _, _, code := runCmd(t, "gen", "-graph", "no-such-family", "-graph-dir", t.TempDir()); code != 2 {
		t.Errorf("gen with unknown family: code %d, want 2", code)
	}
	if _, _, code := runCmd(t, "info", "-graph-dir", t.TempDir(), strings.Repeat("ef", 32)); code != 1 {
		t.Errorf("info on a missing hash: code %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("1 2\nnot numbers\n"), 0o644)
	if _, _, code := runCmd(t, "ingest", "-o", filepath.Join(t.TempDir(), "x.nccg"), bad); code != 1 {
		t.Errorf("ingest of malformed edges: code %d, want 1", code)
	}
}
