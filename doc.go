// Package nccrepro is a full reproduction of "Distributed Computation in
// Node-Capacitated Networks" (Augustine, Ghaffari, Gmyr, Hinnenthal,
// Scheideler, Kuhn, Li — SPAA 2019) as a Go library: an executable simulator
// of the Node-Capacitated Clique model, the paper's communication primitives
// and graph algorithms, naive baselines, the k-machine simulation of
// Appendix A, and an experiment harness regenerating every stated bound.
//
// See README.md for a tour of the package layout, the round-engine
// architecture, and how to run the examples and benchmarks.
package nccrepro
