package ncc

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime/debug"
	"sync"
)

// Received is a message delivered to a node at a round barrier.
type Received struct {
	From    NodeID
	Payload Payload
}

// Context is a node's handle on the network. It is used by exactly one
// goroutine (the node's program) and is not safe for concurrent use.
type Context struct {
	id    NodeID
	r     *run
	rng   *rand.Rand
	out   []Envelope
	inbox []Received
	round int
}

// ID returns the node's identifier (0..N-1).
func (c *Context) ID() NodeID { return c.id }

// N returns the number of nodes in the clique.
func (c *Context) N() int { return c.r.cfg.N }

// Cap returns the per-round send/receive capacity in messages.
func (c *Context) Cap() int { return c.r.cap }

// Round returns the number of completed rounds; it is identical at every
// node between barriers (the network is synchronous).
func (c *Context) Round() int { return c.round }

// Rand returns the node's deterministic private random source.
func (c *Context) Rand() *rand.Rand { return c.rng }

// Pending returns the number of messages buffered for sending this round.
func (c *Context) Pending() int { return len(c.out) }

// Send buffers a message for delivery at the next round barrier. Sending to
// oneself or out of range is a program bug and panics. Payloads larger than
// Config.MaxWords panic: the model only admits O(log n)-bit messages.
func (c *Context) Send(to NodeID, p Payload) {
	if to == c.id {
		panic(fmt.Sprintf("ncc: node %d sent a message to itself", c.id))
	}
	if to < 0 || to >= c.r.cfg.N {
		panic(fmt.Sprintf("ncc: node %d sent to out-of-range node %d", c.id, to))
	}
	if p == nil {
		panic(fmt.Sprintf("ncc: node %d sent a nil payload", c.id))
	}
	if w := p.Words(); w > c.r.cfg.MaxWords {
		panic(fmt.Sprintf("ncc: node %d payload of %d words exceeds MaxWords=%d (%T)",
			c.id, w, c.r.cfg.MaxWords, p))
	}
	c.out = append(c.out, Envelope{From: c.id, To: to, Payload: p})
}

// EndRound submits the buffered messages to the round barrier, blocks until
// every live node has done the same, and returns the messages delivered to
// this node, ordered by sender id. The returned slice is reused at the next
// barrier and must not be retained across rounds.
func (c *Context) EndRound() []Received {
	if c.r.cfg.Strict && len(c.out) > c.r.cap {
		panic(fmt.Sprintf("ncc: node %d sent %d messages in round %d, capacity is %d",
			c.id, len(c.out), c.round, c.r.cap))
	}
	// The release channel must be captured before submitting: once every
	// live node has submitted, the coordinator delivers the round and then
	// swaps r.release (the submit send/receive pair orders that swap after
	// this read, and the close orders the next read after the swap).
	release := c.r.release
	select {
	case c.r.submit <- submission{id: c.id}:
	case <-c.r.abort:
		panic(errAborted)
	}
	select {
	case <-release:
	case <-c.r.abort:
		panic(errAborted)
	}
	c.round++
	return c.inbox
}

type submission struct {
	id       NodeID
	finished bool
}

// errAborted is the sentinel panic used to unwind node goroutines when the
// coordinator aborts a run.
var errAborted = &abortError{}

type abortError struct{}

func (*abortError) Error() string { return "ncc: run aborted" }

type run struct {
	cfg        Config
	cap        int
	workers    int
	shardWidth int // ceil(N / workers); node id / shardWidth = its shard
	nodes      []*Context
	submit     chan submission
	abort      chan struct{}
	errCh      chan error
	release    chan struct{} // closed to release one round's barrier, then swapped
	stats      Stats
	err        error
	pool       *workerPool

	// Scratch, reused across rounds. buckets[i][j] holds the envelopes sent
	// by sender shard i to receiver shard j this round; perRecv[v] stages
	// receiver v's grouped messages; shardStats and obsShards are the
	// per-worker partial results merged by the coordinator.
	buckets    [][][]Envelope
	perRecv    [][]Envelope
	shardStats []Stats
	obsShards  [][]Envelope
	obsBuf     []Envelope
}

// Run executes program on every node of a fresh network and returns the run
// statistics. It returns an error if the run was aborted (node panic or
// Config.MaxRounds exceeded).
func Run(cfg Config, program func(*Context)) (Stats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	r := &run{
		cfg:     cfg,
		cap:     cfg.Cap(),
		workers: max(1, min(cfg.Workers, cfg.N)),
		submit:  make(chan submission, cfg.N),
		abort:   make(chan struct{}),
		errCh:   make(chan error, cfg.N),
		release: make(chan struct{}),
	}
	w := r.workers
	r.shardWidth = (cfg.N + w - 1) / w
	r.buckets = make([][][]Envelope, w)
	for i := range r.buckets {
		r.buckets[i] = make([][]Envelope, w)
	}
	r.perRecv = make([][]Envelope, cfg.N)
	r.shardStats = make([]Stats, w)
	r.obsShards = make([][]Envelope, w)
	if w > 1 {
		r.pool = newWorkerPool(w)
		defer r.pool.close()
	}
	r.nodes = make([]*Context, cfg.N)
	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		ctx := &Context{
			id:  i,
			r:   r,
			rng: rand.New(rand.NewPCG(uint64(cfg.Seed)^0x5851f42d4c957f2d, uint64(i)+1)),
		}
		r.nodes[i] = ctx
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if v == errAborted {
						return
					}
					select {
					case r.errCh <- fmt.Errorf("ncc: node %d panicked: %v\n%s", ctx.id, v, debug.Stack()):
					default:
					}
					return
				}
				select {
				case r.submit <- submission{id: ctx.id, finished: true}:
				case <-r.abort:
				}
			}()
			program(ctx)
		}()
	}
	r.coordinate()
	wg.Wait()
	return r.stats, r.err
}

// Collect runs program on every node and gathers the per-node return values.
func Collect[T any](cfg Config, program func(*Context) T) ([]T, Stats, error) {
	out := make([]T, cfg.N)
	st, err := Run(cfg, func(ctx *Context) {
		out[ctx.ID()] = program(ctx)
	})
	return out, st, err
}

func (r *run) fail(err error) {
	r.err = err
	close(r.abort)
}

func (r *run) coordinate() {
	alive := r.cfg.N
	finished := make([]bool, r.cfg.N)
	for alive > 0 {
		// Barrier: every live node submits exactly once per round (a node
		// blocked at the barrier cannot finish, so the live set is stable
		// once the count is reached).
		waiting := 0
		for waiting < alive {
			select {
			case s := <-r.submit:
				if s.finished {
					finished[s.id] = true
					alive--
					continue
				}
				waiting++
			case err := <-r.errCh:
				r.fail(err)
				return
			}
		}
		if alive == 0 {
			return
		}
		if r.stats.Rounds >= r.cfg.MaxRounds {
			r.fail(fmt.Errorf("%w (%d)", ErrMaxRounds, r.cfg.MaxRounds))
			return
		}
		if !r.deliverRound(finished) {
			return
		}
		// Release every submitted node with one broadcast: swap in a fresh
		// barrier channel, then close the old one.
		next := make(chan struct{})
		old := r.release
		r.release = next
		close(old)
	}
}

// shardRange returns the contiguous node-id range [lo, hi) covered by shard i
// of r.workers equal shards.
func (r *run) shardRange(i int) (int, int) {
	lo := i * r.shardWidth
	hi := min(lo+r.shardWidth, r.cfg.N)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// shardOf returns the receiver shard covering node id.
func (r *run) shardOf(id NodeID) int {
	return id / r.shardWidth
}

// roundPCG seeds a PRNG from (run seed, round, node, salt) so that random
// decisions are a pure function of the configuration — never of worker
// scheduling — keeping runs bit-for-bit deterministic for a fixed Config.Seed
// regardless of Config.Workers.
func roundPCG(seed int64, round int, node NodeID, salt uint64) rand.PCG {
	var p rand.PCG
	p.Seed(uint64(seed)^salt, uint64(round)<<32|uint64(uint32(node)))
	return p
}

const (
	saltFault = 0x9e3779b97f4a7c15
	saltRecv  = 0xbf58476d1ce4e5b9
)

func pcgFloat64(p *rand.PCG) float64 {
	return float64(p.Uint64()>>11) * 0x1.0p-53
}

// pcgIntN returns a uniform int in [0, n) by rejection sampling.
func pcgIntN(p *rand.PCG, n int) int {
	bound := math.MaxUint64 - math.MaxUint64%uint64(n)
	for {
		if v := p.Uint64(); v < bound {
			return int(v % uint64(n))
		}
	}
}

// deliverRound enforces capacities, applies faults, and hands each live node
// its inbox for the round just completed. Work is partitioned over
// r.workers shards: senders are sharded for capacity/fault filtering,
// receivers are sharded for grouping, overload truncation, and inbox fill.
// Returns false if the round was aborted by a worker panic (user Interceptor,
// Observer, or Payload callback).
func (r *run) deliverRound(finished []bool) bool {
	round := r.stats.Rounds
	observing := r.cfg.Observer != nil

	// Phase A: each sender shard filters its nodes' outboxes (send-capacity
	// truncation, finished/fault/interceptor drops) into per-receiver-shard
	// buckets, preserving ascending sender-id order within each bucket.
	err := r.runShards(func(i int) {
		st := &r.shardStats[i]
		*st = Stats{}
		buckets := r.buckets[i]
		for j := range buckets {
			buckets[j] = buckets[j][:0]
		}
		if observing {
			r.obsShards[i] = r.obsShards[i][:0]
		}
		lo, hi := r.shardRange(i)
		for id := lo; id < hi; id++ {
			if finished[id] {
				continue
			}
			ctx := r.nodes[id]
			out := ctx.out
			if len(out) > st.MaxSendLoad {
				st.MaxSendLoad = len(out)
			}
			if len(out) > r.cap {
				// Non-strict: the excess is dropped (strict mode already
				// panicked in EndRound).
				st.DroppedSendOverflow += int64(len(out) - r.cap)
				out = out[:r.cap]
			}
			var frng rand.PCG
			if r.cfg.DropProb > 0 {
				frng = roundPCG(r.cfg.Seed, round, id, saltFault)
			}
			for _, e := range out {
				if finished[e.To] {
					st.DroppedToFinished++
					continue
				}
				if r.cfg.DropProb > 0 && pcgFloat64(&frng) < r.cfg.DropProb {
					st.DroppedFault++
					continue
				}
				if r.cfg.Interceptor != nil && !r.cfg.Interceptor(round, e.From, e.To) {
					st.DroppedFault++
					continue
				}
				st.Messages++
				st.Words += int64(e.Payload.Words())
				j := r.shardOf(e.To)
				buckets[j] = append(buckets[j], e)
				if observing {
					r.obsShards[i] = append(r.obsShards[i], e)
				}
			}
			ctx.out = ctx.out[:0]
		}
	})
	if err != nil {
		r.fail(err)
		return false
	}
	r.mergeShardStats()

	if observing {
		// Concatenating the shard buffers in shard order reproduces the
		// global ascending sender-id order of the serial engine.
		r.obsBuf = r.obsBuf[:0]
		for _, s := range r.obsShards {
			r.obsBuf = append(r.obsBuf, s...)
		}
		if err := r.observeRound(round); err != nil {
			r.fail(err)
			return false
		}
	}

	// Phase B: each receiver shard groups its buckets per receiver (sender
	// shards visited in ascending order keep messages sender-sorted),
	// truncates overloads to a seeded-random subset, and fills inboxes.
	err = r.runShards(func(j int) {
		st := &r.shardStats[j]
		*st = Stats{}
		for i := 0; i < r.workers; i++ {
			for _, e := range r.buckets[i][j] {
				r.perRecv[e.To] = append(r.perRecv[e.To], e)
			}
		}
		lo, hi := r.shardRange(j)
		for id := lo; id < hi; id++ {
			if finished[id] {
				continue
			}
			ctx := r.nodes[id]
			buf := r.perRecv[id]
			msgs := buf
			if len(msgs) > st.MaxRecvOffered {
				st.MaxRecvOffered = len(msgs)
			}
			if len(msgs) > r.cap {
				st.DroppedRecvOverflow += int64(len(msgs) - r.cap)
				rng := roundPCG(r.cfg.Seed, round, id, saltRecv)
				for k := len(msgs) - 1; k > 0; k-- {
					l := pcgIntN(&rng, k+1)
					msgs[k], msgs[l] = msgs[l], msgs[k]
				}
				msgs = msgs[:r.cap]
				sortEnvelopesByFrom(msgs)
			}
			if len(msgs) > st.MaxRecvDelivered {
				st.MaxRecvDelivered = len(msgs)
			}
			ctx.inbox = ctx.inbox[:0]
			for _, e := range msgs {
				ctx.inbox = append(ctx.inbox, Received{From: e.From, Payload: e.Payload})
			}
			r.perRecv[id] = buf[:0]
		}
	})
	if err != nil {
		r.fail(err)
		return false
	}
	r.mergeShardStats()

	r.stats.Rounds++
	return true
}

// recoverDeliveryPanic converts a panic in user callback code (Interceptor,
// Observer, Payload.Words) run during round delivery into an error via the
// named return, so the run aborts cleanly instead of crashing the process or
// deadlocking the node goroutines.
func recoverDeliveryPanic(err *error) {
	if v := recover(); v != nil {
		*err = fmt.Errorf("ncc: round delivery panicked: %v\n%s", v, debug.Stack())
	}
}

// observeRound invokes the user Observer with delivery-panic recovery.
func (r *run) observeRound(round int) (err error) {
	defer recoverDeliveryPanic(&err)
	r.cfg.Observer.ObserveRound(round, r.obsBuf)
	return nil
}

func (r *run) mergeShardStats() {
	for i := range r.shardStats {
		p := &r.shardStats[i]
		r.stats.Messages += p.Messages
		r.stats.Words += p.Words
		r.stats.DroppedRecvOverflow += p.DroppedRecvOverflow
		r.stats.DroppedSendOverflow += p.DroppedSendOverflow
		r.stats.DroppedFault += p.DroppedFault
		r.stats.DroppedToFinished += p.DroppedToFinished
		r.stats.MaxSendLoad = max(r.stats.MaxSendLoad, p.MaxSendLoad)
		r.stats.MaxRecvOffered = max(r.stats.MaxRecvOffered, p.MaxRecvOffered)
		r.stats.MaxRecvDelivered = max(r.stats.MaxRecvDelivered, p.MaxRecvDelivered)
	}
}

// sortEnvelopesByFrom is a small insertion sort: post-truncation inboxes hold
// at most cap = O(log n) messages, where it beats sort.SliceStable and
// allocates nothing. It is stable, preserving send order per sender.
func sortEnvelopesByFrom(msgs []Envelope) {
	for i := 1; i < len(msgs); i++ {
		e := msgs[i]
		j := i - 1
		for j >= 0 && msgs[j].From > e.From {
			msgs[j+1] = msgs[j]
			j--
		}
		msgs[j+1] = e
	}
}

// runShards executes fn(i) for every shard 0..workers-1, inline when the run
// is serial and on the worker pool otherwise. A panic inside fn (user
// Interceptor, Observer, or Payload code) is returned as an error instead of
// crashing the process.
func (r *run) runShards(fn func(int)) (err error) {
	if r.pool == nil {
		defer recoverDeliveryPanic(&err)
		for i := 0; i < r.workers; i++ {
			fn(i)
		}
		return nil
	}
	return r.pool.run(r.workers, fn)
}

// workerPool is a fixed set of goroutines executing round-delivery shards.
// It exists so the engine does not pay a goroutine spawn per phase per round.
type workerPool struct {
	jobs chan poolJob
}

type poolJob struct {
	fn    func(int)
	shard int
	wg    *sync.WaitGroup
	panic *panicBox
}

type panicBox struct {
	mu  sync.Mutex
	err error
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan poolJob)}
	for i := 0; i < n; i++ {
		go func() {
			for j := range p.jobs {
				err := func() (err error) {
					defer recoverDeliveryPanic(&err)
					j.fn(j.shard)
					return nil
				}()
				if err != nil {
					j.panic.mu.Lock()
					if j.panic.err == nil {
						j.panic.err = err
					}
					j.panic.mu.Unlock()
				}
				// Done must come after the error store: the dispatcher reads
				// the box as soon as Wait returns.
				j.wg.Done()
			}
		}()
	}
	return p
}

// run dispatches fn over shards 0..n-1 and waits for completion, returning
// the first panic (if any) as an error.
func (p *workerPool) run(n int, fn func(int)) error {
	var wg sync.WaitGroup
	var box panicBox
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- poolJob{fn: fn, shard: i, wg: &wg, panic: &box}
	}
	wg.Wait()
	return box.err
}

func (p *workerPool) close() {
	close(p.jobs)
}
