package ncc

import (
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"sort"
	"sync"
)

// Received is a message delivered to a node at a round barrier.
type Received struct {
	From    NodeID
	Payload Payload
}

// Context is a node's handle on the network. It is used by exactly one
// goroutine (the node's program) and is not safe for concurrent use.
type Context struct {
	id      NodeID
	r       *run
	rng     *rand.Rand
	out     []Envelope
	inbox   []Received
	deliver chan struct{}
	round   int
}

// ID returns the node's identifier (0..N-1).
func (c *Context) ID() NodeID { return c.id }

// N returns the number of nodes in the clique.
func (c *Context) N() int { return c.r.cfg.N }

// Cap returns the per-round send/receive capacity in messages.
func (c *Context) Cap() int { return c.r.cap }

// Round returns the number of completed rounds; it is identical at every
// node between barriers (the network is synchronous).
func (c *Context) Round() int { return c.round }

// Rand returns the node's deterministic private random source.
func (c *Context) Rand() *rand.Rand { return c.rng }

// Pending returns the number of messages buffered for sending this round.
func (c *Context) Pending() int { return len(c.out) }

// Send buffers a message for delivery at the next round barrier. Sending to
// oneself or out of range is a program bug and panics. Payloads larger than
// Config.MaxWords panic: the model only admits O(log n)-bit messages.
func (c *Context) Send(to NodeID, p Payload) {
	if to == c.id {
		panic(fmt.Sprintf("ncc: node %d sent a message to itself", c.id))
	}
	if to < 0 || to >= c.r.cfg.N {
		panic(fmt.Sprintf("ncc: node %d sent to out-of-range node %d", c.id, to))
	}
	if p == nil {
		panic(fmt.Sprintf("ncc: node %d sent a nil payload", c.id))
	}
	if w := p.Words(); w > c.r.cfg.MaxWords {
		panic(fmt.Sprintf("ncc: node %d payload of %d words exceeds MaxWords=%d (%T)",
			c.id, w, c.r.cfg.MaxWords, p))
	}
	c.out = append(c.out, Envelope{From: c.id, To: to, Payload: p})
}

// EndRound submits the buffered messages to the round barrier, blocks until
// every live node has done the same, and returns the messages delivered to
// this node, ordered by sender id.
func (c *Context) EndRound() []Received {
	if c.r.cfg.Strict && len(c.out) > c.r.cap {
		panic(fmt.Sprintf("ncc: node %d sent %d messages in round %d, capacity is %d",
			c.id, len(c.out), c.round, c.r.cap))
	}
	select {
	case c.r.submit <- submission{id: c.id}:
	case <-c.r.abort:
		panic(errAborted)
	}
	select {
	case <-c.deliver:
	case <-c.r.abort:
		panic(errAborted)
	}
	c.round++
	return c.inbox
}

type submission struct {
	id       NodeID
	finished bool
}

// errAborted is the sentinel panic used to unwind node goroutines when the
// coordinator aborts a run.
var errAborted = &abortError{}

type abortError struct{}

func (*abortError) Error() string { return "ncc: run aborted" }

type run struct {
	cfg    Config
	cap    int
	nodes  []*Context
	submit chan submission
	abort  chan struct{}
	errCh  chan error
	rng    *rand.Rand
	stats  Stats
	err    error
	// scratch, reused across rounds
	perRecv  map[NodeID][]Envelope
	sendCnt  []int
	transmit []Envelope
}

// Run executes program on every node of a fresh network and returns the run
// statistics. It returns an error if the run was aborted (node panic or
// Config.MaxRounds exceeded).
func Run(cfg Config, program func(*Context)) (Stats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	r := &run{
		cfg:     cfg,
		cap:     cfg.Cap(),
		submit:  make(chan submission, cfg.N),
		abort:   make(chan struct{}),
		errCh:   make(chan error, cfg.N),
		rng:     rand.New(rand.NewPCG(uint64(cfg.Seed), 0x9e3779b97f4a7c15)),
		perRecv: make(map[NodeID][]Envelope),
		sendCnt: make([]int, cfg.N),
	}
	r.nodes = make([]*Context, cfg.N)
	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		ctx := &Context{
			id:      i,
			r:       r,
			rng:     rand.New(rand.NewPCG(uint64(cfg.Seed)^0x5851f42d4c957f2d, uint64(i)+1)),
			deliver: make(chan struct{}, 1),
		}
		r.nodes[i] = ctx
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if v == errAborted {
						return
					}
					select {
					case r.errCh <- fmt.Errorf("ncc: node %d panicked: %v\n%s", ctx.id, v, debug.Stack()):
					default:
					}
					return
				}
				select {
				case r.submit <- submission{id: ctx.id, finished: true}:
				case <-r.abort:
				}
			}()
			program(ctx)
		}()
	}
	r.coordinate()
	wg.Wait()
	return r.stats, r.err
}

// Collect runs program on every node and gathers the per-node return values.
func Collect[T any](cfg Config, program func(*Context) T) ([]T, Stats, error) {
	out := make([]T, cfg.N)
	st, err := Run(cfg, func(ctx *Context) {
		out[ctx.ID()] = program(ctx)
	})
	return out, st, err
}

func (r *run) fail(err error) {
	r.err = err
	close(r.abort)
}

func (r *run) coordinate() {
	alive := r.cfg.N
	finished := make([]bool, r.cfg.N)
	submitted := make([]NodeID, 0, r.cfg.N)
	for alive > 0 {
		submitted = submitted[:0]
		for len(submitted) < alive {
			select {
			case s := <-r.submit:
				if s.finished {
					finished[s.id] = true
					alive--
					continue
				}
				submitted = append(submitted, s.id)
			case err := <-r.errCh:
				r.fail(err)
				return
			}
		}
		if alive == 0 {
			return
		}
		if r.stats.Rounds >= r.cfg.MaxRounds {
			r.fail(fmt.Errorf("%w (%d)", ErrMaxRounds, r.cfg.MaxRounds))
			return
		}
		r.deliverRound(submitted, finished)
	}
}

// deliverRound enforces capacities, applies faults, and hands each submitted
// node its inbox for the round just completed.
func (r *run) deliverRound(submitted []NodeID, finished []bool) {
	round := r.stats.Rounds
	r.transmit = r.transmit[:0]
	// Gather outboxes in sender-id order for determinism.
	sort.Ints(submitted)
	for _, id := range submitted {
		ctx := r.nodes[id]
		out := ctx.out
		if len(out) > r.cap {
			// Non-strict: the excess is dropped (strict mode already
			// panicked in EndRound).
			r.stats.DroppedSendOverflow += int64(len(out) - r.cap)
			out = out[:r.cap]
		}
		if len(ctx.out) > r.stats.MaxSendLoad {
			r.stats.MaxSendLoad = len(ctx.out)
		}
		for _, e := range out {
			if finished[e.To] {
				r.stats.DroppedToFinished++
				continue
			}
			if r.cfg.DropProb > 0 && r.rng.Float64() < r.cfg.DropProb {
				r.stats.DroppedFault++
				continue
			}
			if r.cfg.Interceptor != nil && !r.cfg.Interceptor(round, e.From, e.To) {
				r.stats.DroppedFault++
				continue
			}
			r.transmit = append(r.transmit, e)
		}
		ctx.out = ctx.out[:0]
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveRound(round, r.transmit)
	}
	// Group per receiver.
	for _, e := range r.transmit {
		r.stats.Messages++
		r.stats.Words += int64(e.Payload.Words())
		r.perRecv[e.To] = append(r.perRecv[e.To], e)
	}
	// Deliver, truncating overloads to an arbitrary (seeded-random) subset.
	for _, id := range submitted {
		ctx := r.nodes[id]
		msgs := r.perRecv[id]
		if len(msgs) > r.stats.MaxRecvOffered {
			r.stats.MaxRecvOffered = len(msgs)
		}
		if len(msgs) > r.cap {
			r.stats.DroppedRecvOverflow += int64(len(msgs) - r.cap)
			r.rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
			msgs = msgs[:r.cap]
			sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
		}
		if len(msgs) > r.stats.MaxRecvDelivered {
			r.stats.MaxRecvDelivered = len(msgs)
		}
		ctx.inbox = ctx.inbox[:0]
		for _, e := range msgs {
			ctx.inbox = append(ctx.inbox, Received{From: e.From, Payload: e.Payload})
		}
		delete(r.perRecv, id)
	}
	// Anything addressed to a node that neither submitted nor is finished is
	// impossible (every live node submitted), but messages to finished nodes
	// were already filtered; clear stale entries defensively.
	for k := range r.perRecv {
		delete(r.perRecv, k)
	}
	r.stats.Rounds++
	for _, id := range submitted {
		r.nodes[id].deliver <- struct{}{}
	}
}
