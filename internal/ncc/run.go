package ncc

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime/debug"
	"slices"
	"sync"
	"time"
)

// Context is a node's handle on the network. It is used by exactly one
// goroutine (the node's program) and is not safe for concurrent use.
type Context struct {
	id    NodeID
	shard int
	r     *run
	rng   *rand.Rand
	out   []Envelope
	inbox []Received
	round int

	// sendWords is the arena backing this round's outgoing multi-word
	// payloads (SendWords); it is recycled once the round's delivery has
	// completed. inWords is the receiver-side arena the engine copies
	// delivered multi-word payloads into; inbox entries alias it.
	sendWords []uint64
	inWords   []uint64
}

// ID returns the node's identifier (0..N-1).
func (c *Context) ID() NodeID { return c.id }

// N returns the number of nodes in the clique.
func (c *Context) N() int { return c.r.cfg.N }

// Cap returns this node's per-round send/receive capacity in messages. With
// heterogeneous capacities (Config.NodeCaps) different nodes see different
// values; shared pacing constants must use MinCap instead.
func (c *Context) Cap() int { return c.r.capOf(c.id) }

// MinCap returns the smallest per-node capacity in the run — identical at
// every node, so programs can derive shared schedule constants (batch sizes,
// round counts) that every correspondent agrees on. Equals Cap on uniform
// runs.
func (c *Context) MinCap() int { return c.r.minCap }

// Round returns the number of completed rounds; it is identical at every
// node between barriers (the network is synchronous).
func (c *Context) Round() int { return c.round }

// Rand returns the node's deterministic private random source.
func (c *Context) Rand() *rand.Rand { return c.rng }

// Alive reports whether the node is currently in service. It is false only
// while the run's FaultPlan holds the node in an outage: the program keeps
// executing, but all of its traffic is suppressed until revival. Programs may
// consult it to model crash-aware behavior; ignoring it is also correct.
func (c *Context) Alive() bool { return c.r.down == nil || !c.r.down[c.id] }

// Faulty reports whether the run injects faults of any kind (message drops,
// link cuts, or node outages). Protocol layers use it to switch from
// wait-forever semantics — correct on the reliable network the model
// specifies — to bounded waits that degrade instead of hanging.
func (c *Context) Faulty() bool {
	cfg := &c.r.cfg
	return cfg.FaultPlan != nil || cfg.DropProb > 0 || cfg.Interceptor != nil
}

// Pending returns the number of messages buffered for sending this round.
func (c *Context) Pending() int { return len(c.out) }

// checkSend validates the destination of a buffered message. Sending to
// oneself or out of range is a program bug and panics.
func (c *Context) checkSend(to NodeID) {
	if to == c.id {
		panic(fmt.Sprintf("ncc: node %d sent a message to itself", c.id))
	}
	if to < 0 || to >= c.r.cfg.N {
		panic(fmt.Sprintf("ncc: node %d sent to out-of-range node %d", c.id, to))
	}
}

// growOut grows the node's outbox. Runs small enough that every node can
// afford a full-capacity outbox (provisionOut) jump straight to cap slots, so
// a node saturating the model's send bound pays exactly one allocation per
// run; very large sparse runs double from a small base instead, keeping
// memory proportional to actual traffic.
func (c *Context) growOut() []Envelope {
	target := max(4, 2*cap(c.out))
	if c.r.provisionOut {
		target = max(target, c.r.capOf(c.id))
	}
	out := make([]Envelope, len(c.out), target)
	copy(out, c.out)
	c.out = out
	return out
}

// pushOut appends one envelope to the outbox with the growth policy above.
func (c *Context) pushOut(e Envelope) {
	out := c.out
	if len(out) == cap(out) {
		out = c.growOut()
	}
	out = out[:len(out)+1]
	out[len(out)-1] = e
	c.out = out
}

// Send buffers a message for delivery at the next round barrier. Word and
// Words2 payloads are stored inline; any other payload is boxed with its
// width cached, so Payload.Words is invoked exactly once per message.
// Payloads larger than Config.MaxWords panic: the model only admits
// O(log n)-bit messages.
//
// Note that passing a Word or Words2 through the Payload interface may make
// the compiler heap-allocate the short-lived interface value at the call
// site; hot loops should use SendWord/SendWords2, which never box.
func (c *Context) Send(to NodeID, p Payload) {
	c.checkSend(to)
	if p == nil {
		panic(fmt.Sprintf("ncc: node %d sent a nil payload", c.id))
	}
	switch v := p.(type) {
	case Word:
		c.pushOut(Envelope{From: c.id, To: to, a: uint64(v), kind: kindWord})
	case Words2:
		if c.r.cfg.MaxWords < 2 {
			c.panicOversized(2, p)
		}
		c.pushOut(Envelope{From: c.id, To: to, a: v[0], b: v[1], kind: kindWords2})
	case WordsN:
		c.SendWords(to, v)
	default:
		w := p.Words()
		if w > c.r.cfg.MaxWords {
			c.panicOversized(w, p)
		}
		c.pushOut(Envelope{From: c.id, To: to, boxed: p, kind: kindBoxed, width: int32(w)})
	}
}

// SendWord buffers a one-word message. It is the allocation-free fast path:
// unlike Send(to, Word(w)) the payload never travels through an interface,
// so nothing escapes to the heap.
func (c *Context) SendWord(to NodeID, w Word) {
	c.checkSend(to)
	c.pushOut(Envelope{From: c.id, To: to, a: uint64(w), kind: kindWord})
}

// SendWords2 buffers a two-word message without boxing; see SendWord.
func (c *Context) SendWords2(to NodeID, w Words2) {
	c.checkSend(to)
	if c.r.cfg.MaxWords < 2 {
		c.panicOversized(2, w)
	}
	c.pushOut(Envelope{From: c.id, To: to, a: w[0], b: w[1], kind: kindWords2})
}

// SendWords buffers a message of len(ws) words without boxing: one- and
// two-word slices take the inline Word/Words2 representation, wider payloads
// are copied into the node's word arena (recycled every round), so arbitrary
// widths up to Config.MaxWords stay allocation-free in steady state. The
// caller keeps ownership of ws and may reuse it immediately.
func (c *Context) SendWords(to NodeID, ws []uint64) {
	c.checkSend(to)
	n := len(ws)
	switch {
	case n == 0:
		panic(fmt.Sprintf("ncc: node %d sent an empty word payload", c.id))
	case n > c.r.cfg.MaxWords:
		c.panicOversized(n, WordsN(ws))
	case n == 1:
		c.pushOut(Envelope{From: c.id, To: to, a: ws[0], kind: kindWord})
	case n == 2:
		c.pushOut(Envelope{From: c.id, To: to, a: ws[0], b: ws[1], kind: kindWords2})
	default:
		// The words go into the node's arena; the envelope carries only the
		// arena offset (offsets survive arena growth, unlike pointers), so
		// multi-word traffic never widens the Envelope struct every message
		// is copied through.
		off := len(c.sendWords)
		c.sendWords = append(c.sendWords, ws...)
		c.pushOut(Envelope{From: c.id, To: to, a: uint64(off), kind: kindWords, width: int32(n)})
	}
}

// payloadWords resolves a kindWords envelope's payload against its sender's
// arena. Only valid during delivery, while every sender is parked at the
// round barrier (the barrier's release edge orders the arena writes before
// the delivery phases read them).
func (r *run) payloadWords(e *Envelope) []uint64 {
	return r.nodes[e.From].sendWords[e.a : e.a+uint64(e.width)]
}

func (c *Context) panicOversized(w int, p Payload) {
	panic(fmt.Sprintf("ncc: node %d payload of %d words exceeds MaxWords=%d (%T)",
		c.id, w, c.r.cfg.MaxWords, p))
}

// EndRound submits the buffered messages to the round barrier, blocks until
// every live node has done the same, and returns the messages delivered to
// this node, ordered by sender id. The returned slice is reused at the next
// barrier and must not be retained across rounds.
func (c *Context) EndRound() []Received {
	r := c.r
	if r.cfg.Strict && len(c.out) > r.capOf(c.id) {
		panic(fmt.Sprintf("ncc: node %d sent %d messages in round %d, capacity is %d",
			c.id, len(c.out), c.round, r.capOf(c.id)))
	}
	// The barrier generation must be captured before arriving: the
	// coordinator may deliver and release the instant the last arrival
	// lands. Before this node arrives no release can happen (the round is
	// still incomplete), so the captured state is stable.
	start := r.bar.state.Load()
	if start&1 != 0 {
		panic(errAborted)
	}
	r.bar.arrive(c.shard)
	if r.bar.await(c.shard, start)&1 != 0 {
		panic(errAborted)
	}
	if r.killed != nil && r.killed[c.id] {
		// Fail-stopped by the fault plan while parked: unwind before the
		// program sees this round's delivery. The goroutine's recover treats
		// this as a normal finish with no output.
		panic(errCrashed)
	}
	// The round's delivery is complete: every multi-word payload has been
	// copied into its receiver's arena, so the send arena can be recycled
	// before the node buffers its next round of messages.
	c.sendWords = c.sendWords[:0]
	c.round++
	return c.inbox
}

// errAborted is the sentinel panic used to unwind node goroutines when the
// coordinator aborts a run.
var errAborted = &abortError{}

type abortError struct{}

func (*abortError) Error() string { return "ncc: run aborted" }

// errCrashed is the sentinel panic used to unwind a single node goroutine
// when the fault plan fail-stops it; the node retires with no output while
// the run continues.
var errCrashed = &crashError{}

type crashError struct{}

func (*crashError) Error() string { return "ncc: node fail-stopped by fault plan" }

type run struct {
	cfg        Config
	cap        int     // uniform base capacity (Config.Cap)
	caps       []int32 // per-node capacities; nil on uniform runs
	minCap     int     // smallest per-node capacity (== cap when uniform)
	workers    int
	shardWidth int // ceil(N / workers); node id / shardWidth = its shard
	nodes      []*Context
	bar        *barrier
	errCh      chan error
	stats      Stats
	err        error
	pool       *workerPool

	// provisionOut: outboxes may grow straight to cap slots (see growOut).
	provisionOut bool

	// finMu guards finQ, the ids of nodes whose programs returned since the
	// last barrier. The coordinator drains it only after barrier completion,
	// when no node is running, so the slice swap below is race-free.
	finMu sync.Mutex
	finQ  []NodeID

	// Coordinator-owned round state (read by delivery workers between
	// barrier completion and release only).
	finished    []bool  // finished[id]: node id's program has returned
	liveInShard []int32 // live-node count per shard, drives barrier reset

	// Liveness plane, allocated only when cfg.FaultPlan is set. down[id]
	// suppresses node id's traffic in both directions; killed[id] unwinds its
	// program at the next barrier. Both are written by the coordinator while
	// every node is parked and read by nodes/delivery workers afterwards, so
	// the barrier release orders every access. nodeFailures counts isolated
	// node panics (guarded by finMu, folded into stats after the run).
	down         []bool
	killed       []bool
	crashed      []bool // retired by fail-stop or isolated panic: no output
	nodeFailures int64

	// Scratch, reused across rounds. buckets[i][j] holds the envelopes sent
	// by sender shard i to receiver shard j this round; recvCounts[v] is
	// receiver v's offered-message count, computed so inboxes are filled
	// directly without a staging copy; shardStats and obsShards are the
	// per-worker partial results merged by the coordinator. sendFn/recvFn
	// are the two phase method values, bound once so delivery allocates no
	// closures per round.
	buckets        [][][]Envelope
	recvCounts     []int32
	recvWordCounts []int32
	// peakSend/peakRecv record each node's highest post-truncation round load
	// for the capacity-utilization percentiles; allocated only on
	// heterogeneous runs. A node's entries are written by exactly one shard
	// per phase (its sender shard in phase A, its receiver shard in phase B),
	// so the updates are race-free without atomics.
	peakSend   []int32
	peakRecv   []int32
	shardStats []Stats
	obsShards  [][]Envelope
	obsBuf     []Envelope
	sendFn     func(int)
	recvFn     func(int)

	// Coordinator-owned liveness counters (alive doubles as the run's exit
	// condition; downCount mirrors the fault plane for the probe).
	alive     int
	downCount int

	// Probe plane scratch (see probe.go), allocated only when cfg.Probe is
	// set; with probing false the delivery phases pay one predictable branch
	// per node and nothing else. prevStats snapshots the cumulative Stats at
	// the previous emission so probeRound computes per-round deltas.
	// touched[id] marks nodes that moved traffic this round; it is written
	// only by node id's own shard (its sender shard in phase A, its receiver
	// shard in phase B — the same index both times) and folded and cleared
	// into shardActive at the end of phase B, so it needs no atomics.
	// roundMaxSend is captured between the phases, before phase B zeroes the
	// shard stats. timing is the reused slice handed to the probe;
	// probeSend/probeRecv are per-shard phase durations and wakeNanos the
	// coordinator's wake timestamp for the barrier-wait computation.
	probing      bool
	prevStats    Stats
	roundMaxSend int
	wakeNanos    int64
	touched      []bool
	shardActive  []int32
	probeSend    []int64
	probeRecv    []int64
	timing       []ShardTiming
}

// Run executes program on every node of a fresh network and returns the run
// statistics. It returns an error if the run was aborted (node panic or
// Config.MaxRounds exceeded).
func Run(cfg Config, program func(*Context)) (Stats, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	r := &run{
		cfg:     cfg,
		cap:     cfg.Cap(),
		minCap:  cfg.MinCap(),
		workers: max(1, min(cfg.Workers, cfg.N)),
		errCh:   make(chan error, cfg.N),
	}
	if cfg.NodeCaps != nil {
		r.caps = make([]int32, cfg.N)
		for i, cp := range cfg.NodeCaps {
			r.caps[i] = int32(cp)
		}
		r.peakSend = make([]int32, cfg.N)
		r.peakRecv = make([]int32, cfg.N)
	}
	w := r.workers
	r.shardWidth = (cfg.N + w - 1) / w
	// Full-capacity outboxes for every node cost N*cap envelopes; provision
	// them eagerly only while that stays within a modest budget (~64 MiB),
	// so sparse million-node runs keep memory proportional to traffic.
	r.provisionOut = int64(cfg.N)*int64(r.cap) <= (64<<20)/int64(envelopeBytes)
	r.buckets = make([][][]Envelope, w)
	for i := range r.buckets {
		r.buckets[i] = make([][]Envelope, w)
	}
	r.recvCounts = make([]int32, cfg.N)
	r.recvWordCounts = make([]int32, cfg.N)
	r.shardStats = make([]Stats, w)
	r.obsShards = make([][]Envelope, w)
	r.finished = make([]bool, cfg.N)
	if cfg.FaultPlan != nil {
		r.down = make([]bool, cfg.N)
		r.killed = make([]bool, cfg.N)
		r.crashed = make([]bool, cfg.N)
	}
	r.sendFn = r.sendPhase
	r.recvFn = r.recvPhase
	if cfg.Probe != nil {
		r.probing = true
		r.touched = make([]bool, cfg.N)
		r.shardActive = make([]int32, w)
		r.probeSend = make([]int64, w)
		r.probeRecv = make([]int64, w)
		r.timing = make([]ShardTiming, w)
	}
	if w > 1 {
		r.pool = newWorkerPool(w)
		defer r.pool.close()
	}
	// Arm the first barrier before any node can arrive at it.
	r.bar = newBarrier(w)
	if r.probing {
		r.bar.times = make([]int64, w)
	}
	r.liveInShard = make([]int32, w)
	for i := 0; i < w; i++ {
		lo, hi := r.shardRange(i)
		r.liveInShard[i] = int32(hi - lo)
	}
	r.bar.reset(r.liveInShard)

	r.nodes = make([]*Context, cfg.N)
	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		ctx := &Context{
			id:    i,
			shard: i / r.shardWidth,
			r:     r,
			rng:   rand.New(rand.NewPCG(uint64(cfg.Seed)^0x5851f42d4c957f2d, uint64(i)+1)),
		}
		r.nodes[i] = ctx
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				v := recover()
				if v == errAborted {
					return
				}
				if v != nil && v != errCrashed {
					if r.cfg.FaultPlan == nil {
						select {
						case r.errCh <- fmt.Errorf("ncc: node %d panicked: %v\n%s", ctx.id, v, debug.Stack()):
						default:
						}
						return
					}
					// Failure isolation: under a fault plan, a panicking
					// program is a crashed node, not a failed run — faults
					// push protocols into states their reliable-network
					// invariants never allowed, and the run's job is to
					// measure the degradation. Only the count enters Stats
					// (the message text would be scheduling-dependent).
					r.finMu.Lock()
					r.nodeFailures++
					r.finMu.Unlock()
				}
				// Normal return or isolated crash: queue the node for
				// retirement, then arrive at the current barrier so the round
				// completes without it.
				r.finMu.Lock()
				if v != nil {
					r.crashed[ctx.id] = true // fail-stop or isolated panic: no output
				}
				r.finQ = append(r.finQ, ctx.id)
				r.finMu.Unlock()
				r.bar.arrive(ctx.shard)
			}()
			program(ctx)
		}()
	}
	r.coordinate()
	wg.Wait()
	if cfg.FaultPlan != nil {
		// Nodes that returned after the final barrier are finished even if
		// the coordinator never retired them (no goroutine is running now, so
		// reading finQ is race-free).
		for _, id := range r.finQ {
			r.finished[id] = true
		}
		for id := 0; id < cfg.N; id++ {
			if !r.finished[id] || r.crashed[id] {
				r.stats.Unfinished = append(r.stats.Unfinished, id)
			}
			if r.down[id] {
				r.stats.DownAtEnd = append(r.stats.DownAtEnd, id)
			}
		}
		r.stats.NodeFailures = r.nodeFailures
	}
	if r.caps != nil {
		// Capacity utilization: each node's highest single-round load (either
		// direction, post-truncation) as a fraction of its own capacity.
		// Deterministic at any worker count, because traffic is.
		utils := make([]float64, cfg.N)
		for id := range utils {
			utils[id] = float64(max(r.peakSend[id], r.peakRecv[id])) / float64(r.caps[id])
		}
		slices.Sort(utils)
		pct := func(p float64) float64 {
			k := max(0, int(math.Ceil(p*float64(len(utils))))-1)
			return math.Round(utils[k]*1e4) / 1e4
		}
		r.stats.CapUtilP50 = pct(0.50)
		r.stats.CapUtilP90 = pct(0.90)
		r.stats.CapUtilMax = pct(1)
	}
	processMessages.Add(r.stats.Messages)
	processWords.Add(r.stats.Words)
	processRounds.Add(int64(r.stats.Rounds))
	return r.stats, r.err
}

// Collect runs program on every node and gathers the per-node return values.
func Collect[T any](cfg Config, program func(*Context) T) ([]T, Stats, error) {
	out := make([]T, cfg.N)
	st, err := Run(cfg, func(ctx *Context) {
		out[ctx.ID()] = program(ctx)
	})
	return out, st, err
}

// fail records the abort cause and releases the barrier with the abort bit
// set, unwinding every parked or late-arriving node.
func (r *run) fail(err error) {
	r.err = err
	r.bar.release(true)
}

func (r *run) coordinate() {
	r.alive = r.cfg.N
	for {
		// Barrier: every live node arrives exactly once per round (a node
		// blocked at the barrier cannot finish, so the live set is stable
		// once the countdown completes).
		select {
		case <-r.bar.wake:
		case err := <-r.errCh:
			r.fail(err)
			return
		case <-r.cfg.Cancel: // nil channel when cancellation is unused
			r.fail(ErrCanceled)
			return
		}
		if r.probing {
			r.wakeNanos = time.Now().UnixNano()
		}
		// A cancellation racing the barrier wake must still win this round:
		// the select above picks arbitrarily among ready cases, and the
		// "within one round barrier" guarantee would otherwise only hold in
		// expectation.
		if r.cfg.Cancel != nil {
			select {
			case <-r.cfg.Cancel:
				r.fail(ErrCanceled)
				return
			default:
			}
		}
		// Retire nodes whose programs returned before this barrier. All
		// live nodes are parked (or gone) here, so draining finQ and
		// reusing its backing array cannot race with an append.
		r.finMu.Lock()
		fin := r.finQ
		r.finQ = r.finQ[:0]
		r.finMu.Unlock()
		for _, id := range fin {
			r.finished[id] = true
			r.liveInShard[r.shardOf(id)]--
			r.alive--
			if r.down != nil && r.down[id] {
				// A killed node retiring moves from the down count to the
				// finished count.
				r.downCount--
			}
		}
		if r.alive == 0 {
			return
		}
		if r.stats.Rounds >= r.cfg.MaxRounds {
			r.fail(fmt.Errorf("%w (%d)", ErrMaxRounds, r.cfg.MaxRounds))
			return
		}
		if r.cfg.FaultPlan != nil {
			r.applyTransitions(r.stats.Rounds)
		}
		if !r.deliverRound() {
			return
		}
		// Re-arm the countdowns before waking anyone: released nodes may
		// arrive at the next barrier immediately.
		r.bar.reset(r.liveInShard)
		r.bar.release(false)
	}
}

// applyTransitions asks the fault plan for round's liveness transitions and
// applies them while every live node is parked at the barrier. Outages hitting
// finished or already-down nodes are ignored (except to escalate an outage to
// a kill); revivals only lift plain outages — a kill is permanent.
func (r *run) applyTransitions(round int) {
	downs, ups := r.cfg.FaultPlan.Transitions(round)
	for _, o := range downs {
		id := o.Node
		if id < 0 || id >= r.cfg.N || r.finished[id] || r.killed[id] {
			continue
		}
		if !r.down[id] {
			r.down[id] = true
			r.downCount++
			if o.Kill {
				r.stats.NodesKilled++
			} else {
				r.stats.NodesDowned++
			}
		} else if !o.Kill {
			continue
		} else {
			r.stats.NodesKilled++
		}
		if o.Kill {
			r.killed[id] = true
		}
	}
	for _, v := range ups {
		id := v.Node
		if id < 0 || id >= r.cfg.N || r.finished[id] || !r.down[id] || r.killed[id] {
			continue
		}
		r.down[id] = false
		r.downCount--
		r.stats.NodesRevived++
		if v.Reset {
			// A rejoin with fresh volatile state: reseed the node's private
			// randomness from (seed, round, node) — deterministic across
			// worker counts — and discard whatever it had queued to send.
			ctx := r.nodes[id]
			p := roundPCG(r.cfg.Seed, round, id, saltRevive)
			ctx.rng = rand.New(&p)
			ctx.out = ctx.out[:0]
		}
	}
}

// shardRange returns the contiguous node-id range [lo, hi) covered by shard i
// of r.workers equal shards.
func (r *run) shardRange(i int) (int, int) {
	lo := i * r.shardWidth
	hi := min(lo+r.shardWidth, r.cfg.N)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// shardOf returns the shard covering node id.
func (r *run) shardOf(id NodeID) int {
	return id / r.shardWidth
}

// capOf returns node id's per-round capacity: the uniform base, or its
// NodeCaps entry on heterogeneous runs.
func (r *run) capOf(id NodeID) int {
	if r.caps == nil {
		return r.cap
	}
	return int(r.caps[id])
}

// roundPCG seeds a PRNG from (run seed, round, node, salt) so that random
// decisions are a pure function of the configuration — never of worker
// scheduling — keeping runs bit-for-bit deterministic for a fixed Config.Seed
// regardless of Config.Workers.
func roundPCG(seed int64, round int, node NodeID, salt uint64) rand.PCG {
	var p rand.PCG
	p.Seed(uint64(seed)^salt, uint64(round)<<32|uint64(uint32(node)))
	return p
}

const (
	saltFault  = 0x9e3779b97f4a7c15
	saltRecv   = 0xbf58476d1ce4e5b9
	saltRevive = 0x94d049bb133111eb
)

func pcgFloat64(p *rand.PCG) float64 {
	return float64(p.Uint64()>>11) * 0x1.0p-53
}

// pcgIntN returns a uniform int in [0, n) by rejection sampling.
func pcgIntN(p *rand.PCG, n int) int {
	bound := math.MaxUint64 - math.MaxUint64%uint64(n)
	for {
		if v := p.Uint64(); v < bound {
			return int(v % uint64(n))
		}
	}
}

// sendPhase (phase A) filters sender shard i's outboxes (send-capacity
// truncation, finished/fault/interceptor drops) into per-receiver-shard
// buckets, preserving ascending sender-id order within each bucket.
func (r *run) sendPhase(i int) {
	round := r.stats.Rounds
	observing := r.cfg.Observer != nil
	probing := r.probing
	var t0 time.Time
	if probing {
		t0 = time.Now()
	}
	st := &r.shardStats[i]
	*st = Stats{}
	buckets := r.buckets[i]
	for j := range buckets {
		buckets[j] = buckets[j][:0]
	}
	if observing {
		r.obsShards[i] = r.obsShards[i][:0]
	}
	faulty := r.down != nil
	lo, hi := r.shardRange(i)
	for id := lo; id < hi; id++ {
		if r.finished[id] {
			continue
		}
		ctx := r.nodes[id]
		if faulty && r.down[id] {
			// Out-of-service sender: its whole outbox is suppressed.
			st.DroppedDead += int64(len(ctx.out))
			ctx.out = ctx.out[:0]
			continue
		}
		out := ctx.out
		if probing && len(out) > 0 {
			r.touched[id] = true
		}
		if len(out) > st.MaxSendLoad {
			st.MaxSendLoad = len(out)
		}
		if capAt := r.capOf(id); len(out) > capAt {
			// Non-strict: the excess is dropped (strict mode already
			// panicked in EndRound).
			st.DroppedSendOverflow += int64(len(out) - capAt)
			out = out[:capAt]
		}
		if r.peakSend != nil && int32(len(out)) > r.peakSend[id] {
			r.peakSend[id] = int32(len(out))
		}
		var frng rand.PCG
		if r.cfg.DropProb > 0 {
			frng = roundPCG(r.cfg.Seed, round, id, saltFault)
		}
		for k := range out {
			e := &out[k]
			if r.finished[e.To] {
				st.DroppedToFinished++
				continue
			}
			if faulty && r.down[e.To] {
				st.DroppedDead++
				continue
			}
			if r.cfg.DropProb > 0 && pcgFloat64(&frng) < r.cfg.DropProb {
				st.DroppedFault++
				continue
			}
			if r.cfg.Interceptor != nil && !r.cfg.Interceptor(round, e.From, e.To) {
				st.DroppedFault++
				continue
			}
			st.Messages++
			st.Words += int64(e.Words())
			j := r.shardOf(e.To)
			buckets[j] = pushEnvelope(buckets[j], e)
			if observing {
				if e.kind == kindWords {
					// Observers may read Payload() and hold it past this
					// round; box a copy of the arena words for them. This
					// allocates, but only with an Observer attached.
					oe := *e
					oe.boxed = WordsN(append([]uint64(nil), r.payloadWords(e)...))
					oe.kind = kindBoxed
					r.obsShards[i] = pushEnvelope(r.obsShards[i], &oe)
				} else {
					r.obsShards[i] = pushEnvelope(r.obsShards[i], e)
				}
			}
		}
		ctx.out = ctx.out[:0]
	}
	if probing {
		r.probeSend[i] = int64(time.Since(t0))
	}
}

// recvPhase (phase B) delivers receiver shard j's buckets without a staging
// copy: a first pass counts the messages offered to each receiver (sizing
// inboxes exactly and spotting overloads), a second pass appends straight
// into the inboxes (sender shards visited in ascending order keep messages
// sender-sorted), and overloaded inboxes are then truncated in place to a
// seeded-random subset of cap messages.
func (r *run) recvPhase(j int) {
	round := r.stats.Rounds
	probing := r.probing
	var t0 time.Time
	if probing {
		t0 = time.Now()
	}
	st := &r.shardStats[j]
	*st = Stats{}
	lo, hi := r.shardRange(j)
	counts := r.recvCounts[lo:hi]
	wcounts := r.recvWordCounts[lo:hi]
	clear(counts)
	clear(wcounts)
	for i := 0; i < r.workers; i++ {
		bucket := r.buckets[i][j]
		for k := range bucket {
			e := &bucket[k]
			counts[e.To-lo]++
			if e.kind == kindWords {
				wcounts[e.To-lo] += e.width
			}
		}
	}
	for id := lo; id < hi; id++ {
		if r.finished[id] {
			continue
		}
		ctx := r.nodes[id]
		c := int(counts[id-lo])
		if probing && c > 0 {
			r.touched[id] = true
		}
		if c > st.MaxRecvOffered {
			st.MaxRecvOffered = c
		}
		d := c
		if capAt := r.capOf(id); c > capAt {
			d = capAt
			st.DroppedRecvOverflow += int64(c - capAt)
		}
		if d > st.MaxRecvDelivered {
			st.MaxRecvDelivered = d
		}
		if r.peakRecv != nil && int32(d) > r.peakRecv[id] {
			r.peakRecv[id] = int32(d)
		}
		// The inbox temporarily holds every offered message (truncation
		// happens in place below), so provision for the offered count. The
		// receiver word arena is provisioned the same way so the copy pass
		// below never reallocates mid-fill.
		if cap(ctx.inbox) < c {
			ctx.inbox = make([]Received, 0, c)
		} else {
			ctx.inbox = ctx.inbox[:0]
		}
		if wc := int(wcounts[id-lo]); cap(ctx.inWords) < wc {
			ctx.inWords = make([]uint64, 0, wc)
		} else {
			ctx.inWords = ctx.inWords[:0]
		}
	}
	for i := 0; i < r.workers; i++ {
		bucket := r.buckets[i][j]
		for k := range bucket {
			e := &bucket[k]
			ctx := r.nodes[e.To]
			rc := e.received()
			if e.kind == kindWords {
				// Copy the payload out of the sender's arena: the sender
				// recycles it the moment it resumes, while this inbox entry
				// stays readable for the receiver's whole next round. The
				// arena was provisioned to the exact offered word count
				// above, so these appends never reallocate and the taken
				// pointer stays valid.
				off := len(ctx.inWords)
				ctx.inWords = append(ctx.inWords, r.payloadWords(e)...)
				rc.ref = &ctx.inWords[off]
			}
			ctx.inbox = append(ctx.inbox, rc)
		}
	}
	for id := lo; id < hi; id++ {
		capAt := r.capOf(id)
		if int(counts[id-lo]) <= capAt || r.finished[id] {
			continue
		}
		// Overload: keep a seeded-random subset of cap messages, re-sorted
		// by sender. The shuffle consumes the per-(round, receiver) PCG in
		// offered order, so the surviving subset is identical regardless of
		// the worker count.
		ctx := r.nodes[id]
		msgs := ctx.inbox
		rng := roundPCG(r.cfg.Seed, round, id, saltRecv)
		for k := len(msgs) - 1; k > 0; k-- {
			l := pcgIntN(&rng, k+1)
			msgs[k], msgs[l] = msgs[l], msgs[k]
		}
		ctx.inbox = msgs[:capAt]
		sortReceivedByFrom(ctx.inbox)
	}
	if probing {
		// Fold the round's touched marks into the shard's active count and
		// clear them for the next round. Every node in [lo, hi) was marked
		// (if at all) by this same shard index in both phases, so the fold
		// sees every mark.
		var a int32
		for id := lo; id < hi; id++ {
			if r.touched[id] {
				a++
				r.touched[id] = false
			}
		}
		r.shardActive[j] = a
		r.probeRecv[j] = int64(time.Since(t0))
	}
}

// deliverRound enforces capacities, applies faults, and hands each live node
// its inbox for the round just completed. Work is partitioned over r.workers
// shards: senders are sharded for capacity/fault filtering, receivers for
// grouping, overload truncation, and inbox fill. Returns false if the round
// was aborted by a worker panic (user Interceptor, Observer, or Payload
// callback).
func (r *run) deliverRound() bool {
	if err := r.runShards(r.sendFn); err != nil {
		r.fail(err)
		return false
	}
	r.mergeShardStats()
	if r.probing {
		// The per-round send-load maximum must be read between the phases:
		// recvPhase zeroes the shard stats it is about to reuse.
		r.roundMaxSend = 0
		for i := range r.shardStats {
			r.roundMaxSend = max(r.roundMaxSend, r.shardStats[i].MaxSendLoad)
		}
	}

	if r.cfg.Observer != nil {
		// Concatenating the shard buffers in shard order reproduces the
		// global ascending sender-id order of the serial engine.
		r.obsBuf = r.obsBuf[:0]
		for _, s := range r.obsShards {
			r.obsBuf = append(r.obsBuf, s...)
		}
		if err := r.observeRound(r.stats.Rounds); err != nil {
			r.fail(err)
			return false
		}
	}

	if err := r.runShards(r.recvFn); err != nil {
		r.fail(err)
		return false
	}
	r.mergeShardStats()

	r.stats.Rounds++
	if r.probing {
		if err := r.probeRound(); err != nil {
			r.fail(err)
			return false
		}
	}
	return true
}

// probeRound assembles the just-completed round's RoundSample from the
// cumulative-stats deltas and the per-shard scratch (which still holds phase-B
// values here) and hands it to Config.Probe, with the same panic recovery as
// Observer callbacks. Runs on the coordinator goroutine while every node is
// parked.
func (r *run) probeRound() (err error) {
	defer recoverDeliveryPanic(&err)
	cur, prev := &r.stats, &r.prevStats
	s := RoundSample{
		Round:             cur.Rounds - 1,
		Messages:          int(cur.Messages - prev.Messages),
		Words:             int(cur.Words - prev.Words),
		Finished:          r.cfg.N - r.alive,
		Down:              r.downCount,
		MaxSendLoad:       r.roundMaxSend,
		SendThrottled:     int(cur.DroppedSendOverflow - prev.DroppedSendOverflow),
		RecvThrottled:     int(cur.DroppedRecvOverflow - prev.DroppedRecvOverflow),
		DroppedFault:      int(cur.DroppedFault - prev.DroppedFault),
		DroppedDead:       int(cur.DroppedDead - prev.DroppedDead),
		DroppedToFinished: int(cur.DroppedToFinished - prev.DroppedToFinished),
	}
	s.Delivered = s.Messages - s.RecvThrottled
	for i := range r.shardStats {
		p := &r.shardStats[i]
		s.MaxRecvOffered = max(s.MaxRecvOffered, p.MaxRecvOffered)
		s.MaxRecvDelivered = max(s.MaxRecvDelivered, p.MaxRecvDelivered)
		s.Active += int(r.shardActive[i])
	}
	for i := range r.timing {
		t := &r.timing[i]
		t.SendNanos = r.probeSend[i]
		t.RecvNanos = r.probeRecv[i]
		t.BarrierWaitNanos = 0
		// Shards with no live nodes never arrive; their stale timestamp (and
		// any clock oddity) reads as zero wait.
		if r.liveInShard[i] > 0 {
			if at := r.bar.times[i]; at != 0 && at < r.wakeNanos {
				t.BarrierWaitNanos = r.wakeNanos - at
			}
		}
	}
	r.prevStats = *cur
	r.cfg.Probe(s, r.timing)
	return nil
}

// recoverDeliveryPanic converts a panic in user callback code (Interceptor,
// Observer, Payload.Words) run during round delivery into an error via the
// named return, so the run aborts cleanly instead of crashing the process or
// deadlocking the node goroutines.
func recoverDeliveryPanic(err *error) {
	if v := recover(); v != nil {
		*err = fmt.Errorf("ncc: round delivery panicked: %v\n%s", v, debug.Stack())
	}
}

// observeRound invokes the user Observer with delivery-panic recovery.
func (r *run) observeRound(round int) (err error) {
	defer recoverDeliveryPanic(&err)
	r.cfg.Observer.ObserveRound(round, r.obsBuf)
	return nil
}

func (r *run) mergeShardStats() {
	for i := range r.shardStats {
		p := &r.shardStats[i]
		r.stats.Messages += p.Messages
		r.stats.Words += p.Words
		r.stats.DroppedRecvOverflow += p.DroppedRecvOverflow
		r.stats.DroppedSendOverflow += p.DroppedSendOverflow
		r.stats.DroppedFault += p.DroppedFault
		r.stats.DroppedToFinished += p.DroppedToFinished
		r.stats.DroppedDead += p.DroppedDead
		r.stats.MaxSendLoad = max(r.stats.MaxSendLoad, p.MaxSendLoad)
		r.stats.MaxRecvOffered = max(r.stats.MaxRecvOffered, p.MaxRecvOffered)
		r.stats.MaxRecvDelivered = max(r.stats.MaxRecvDelivered, p.MaxRecvDelivered)
	}
}

// sortReceivedByFrom is a small insertion sort: post-truncation inboxes hold
// at most cap = O(log n) messages, where it beats sort.SliceStable and
// allocates nothing. It is stable, preserving send order per sender.
func sortReceivedByFrom(msgs []Received) {
	for i := 1; i < len(msgs); i++ {
		e := msgs[i]
		j := i - 1
		for j >= 0 && msgs[j].From > e.From {
			msgs[j+1] = msgs[j]
			j--
		}
		msgs[j+1] = e
	}
}

// pushEnvelope appends with exact-doubling growth. The built-in append grows
// large slices by only 1.25x, which costs ~5x the final size in cumulative
// allocation while a round's buckets warm up; doubling caps that at 2x.
func pushEnvelope(s []Envelope, e *Envelope) []Envelope {
	if len(s) == cap(s) {
		ns := make([]Envelope, len(s), max(16, 2*cap(s)))
		copy(ns, s)
		s = ns
	}
	s = s[:len(s)+1]
	s[len(s)-1] = *e
	return s
}

// runShards executes fn(i) for every shard 0..workers-1, inline when the run
// is serial and on the worker pool otherwise. A panic inside fn (user
// Interceptor, Observer, or Payload code) is returned as an error instead of
// crashing the process.
func (r *run) runShards(fn func(int)) (err error) {
	if r.pool == nil {
		defer recoverDeliveryPanic(&err)
		for i := 0; i < r.workers; i++ {
			fn(i)
		}
		return nil
	}
	return r.pool.run(r.workers, fn)
}

// workerPool is a fixed set of goroutines executing round-delivery shards.
// It exists so the engine does not pay a goroutine spawn per phase per round;
// the dispatch WaitGroup and panic box live in the pool so a dispatch does
// not allocate either.
type workerPool struct {
	jobs chan poolJob
	wg   sync.WaitGroup
	box  panicBox
}

type poolJob struct {
	fn    func(int)
	shard int
	wg    *sync.WaitGroup
	panic *panicBox
}

type panicBox struct {
	mu  sync.Mutex
	err error
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan poolJob)}
	for i := 0; i < n; i++ {
		go func() {
			for j := range p.jobs {
				err := func() (err error) {
					defer recoverDeliveryPanic(&err)
					j.fn(j.shard)
					return nil
				}()
				if err != nil {
					j.panic.mu.Lock()
					if j.panic.err == nil {
						j.panic.err = err
					}
					j.panic.mu.Unlock()
				}
				// Done must come after the error store: the dispatcher reads
				// the box as soon as Wait returns.
				j.wg.Done()
			}
		}()
	}
	return p
}

// run dispatches fn over shards 0..n-1 and waits for completion, returning
// the first panic (if any) as an error. Only the coordinator calls this, one
// dispatch at a time, so the pool-owned WaitGroup and box can be reused.
func (p *workerPool) run(n int, fn func(int)) error {
	p.box.err = nil
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- poolJob{fn: fn, shard: i, wg: &p.wg, panic: &p.box}
	}
	p.wg.Wait()
	return p.box.err
}

func (p *workerPool) close() {
	close(p.jobs)
}
