package ncc

// This file is the engine side of the telemetry plane (see internal/obs for
// the serialization side): a per-round probe fed from the coordinator and the
// per-shard scratch the delivery phases already maintain. The plane is
// strictly zero-overhead when off — with Config.Probe nil the engine performs
// no probe allocations and no probe work beyond a handful of predictable
// branches, pinned by TestSteadyStateAllocs and BenchmarkEngineScale.

// RoundSample is one completed round's telemetry, emitted through
// Config.Probe. Every field is a pure function of the Config (graph, seed,
// fault schedule) — never of worker scheduling or wall time — so the sample
// series is bit-identical across worker counts and across local, cluster, and
// cached execution. That determinism is what makes serialized traces
// content-addressable (internal/obs hashes them alongside Records).
//
// Counter fields (Messages, Words, the throttle and drop counts) are this
// round's deltas of the run's cumulative Stats; load fields (MaxSendLoad,
// MaxRecvOffered, MaxRecvDelivered) are this round's maxima, not the running
// ones Stats reports.
type RoundSample struct {
	// Round is the 0-based index of the completed round.
	Round int

	// Messages counts messages accepted for transmission this round (after
	// send-capacity enforcement and fault drops); Delivered subtracts the
	// receive-overflow truncation, so it is what actually landed in inboxes.
	Messages  int
	Delivered int

	// Words counts accepted payload words.
	Words int

	// Active counts in-service nodes that attempted to send or were offered
	// at least one message this round; the rest of the live set was
	// quiescent. Finished counts retired programs (returned or crashed)
	// before this round; Down counts nodes held out of service by the fault
	// plan (killed nodes stay down until retired).
	Active   int
	Finished int
	Down     int

	// MaxSendLoad / MaxRecvOffered / MaxRecvDelivered are this round's
	// per-node load maxima, the per-round view of the like-named Stats
	// fields.
	MaxSendLoad      int
	MaxRecvOffered   int
	MaxRecvDelivered int

	// SendThrottled / RecvThrottled count messages dropped this round by the
	// model's capacity bounds (the send cap and the receive cap); the
	// remaining drop counters split out fault-induced losses.
	SendThrottled     int
	RecvThrottled     int
	DroppedFault      int
	DroppedDead       int
	DroppedToFinished int
}

// ShardTiming is one delivery shard's wall-clock timing for a round. Unlike
// RoundSample it is inherently nondeterministic — it measures this host, this
// run, this worker count — so it travels beside the sample, never inside it,
// and internal/obs keeps it out of the canonical (content-hashed) trace.
type ShardTiming struct {
	// BarrierWaitNanos is how long the shard's last arrival sat parked before
	// the coordinator woke: large values mark early shards, ~0 marks the
	// straggler, and the spread across shards is the round's imbalance.
	BarrierWaitNanos int64

	// SendNanos / RecvNanos are the shard's two delivery-phase durations.
	SendNanos int64
	RecvNanos int64
}

// RoundProbe receives one RoundSample per completed round, plus per-shard
// timing. It is called on the coordinator goroutine, strictly between rounds
// (every node is parked), so implementations need no locking against the run —
// but they delay the barrier release, so they should be cheap. The timing
// slice is reused every round and must not be retained. A panicking probe
// aborts the run like a panicking Observer.
type RoundProbe func(s RoundSample, timing []ShardTiming)

// Timeline records the probe's per-round series — the raw material for
// round/load plots (e.g. visualizing an algorithm's phase structure or the
// O(log n) load discipline over time). Attach it with Config{Probe:
// tl.Sample}.
type Timeline struct {
	Samples []RoundSample
}

// Sample is the RoundProbe: it appends the sample and ignores timing.
func (tl *Timeline) Sample(s RoundSample, _ []ShardTiming) {
	tl.Samples = append(tl.Samples, s)
}

// Busiest returns the index and sample of the round with the most messages
// (zeroes if the timeline is empty).
func (tl *Timeline) Busiest() (int, RoundSample) {
	best := -1
	var out RoundSample
	for i, s := range tl.Samples {
		if best == -1 || s.Messages > out.Messages {
			best, out = i, s
		}
	}
	if best == -1 {
		return 0, RoundSample{}
	}
	return best, out
}

// TotalMessages sums the series.
func (tl *Timeline) TotalMessages() int64 {
	var t int64
	for _, s := range tl.Samples {
		t += int64(s.Messages)
	}
	return t
}
