// Package ncc implements the Node-Capacitated Clique model of Augustine et
// al. (SPAA 2019) as an executable, deterministic simulator.
//
// The model: n nodes with ids 0..n-1 form a logical clique and operate in
// synchronous rounds. Per round, a node may send up to cap distinct messages
// of O(log n) bits to arbitrary nodes and may receive up to cap messages,
// where cap = CapFactor * ceil(log2 n). If more than cap messages are
// addressed to a node in one round, an arbitrary subset of cap messages is
// delivered and the rest are dropped by the network.
//
// Programs are written SPMD style: Run spawns one goroutine per node, all
// executing the same program against a Context. Context.Send buffers messages
// for the current round and Context.EndRound blocks on the global round
// barrier, returning the messages delivered to the node.
//
// Round delivery is executed by a pool of Config.Workers goroutines
// (default GOMAXPROCS) that shard senders for capacity/fault filtering and
// receivers for grouping, overload truncation, and inbox fill. Runs are
// bit-for-bit deterministic for a fixed Config.Seed regardless of the worker
// count: per-node program RNGs are derived from the seed, deliveries are
// ordered by sender id, fault decisions use a per-(round, sender) PRNG, and
// receive-overflow truncation uses a per-(round, receiver) PRNG.
//
// The engine is built for large N (10^5-10^6 nodes, where the model's
// O(log n) capacity bounds become interesting). The round barrier is a set
// of per-shard atomic countdowns: a node arriving at EndRound decrements its
// shard's counter, the last arrival overall performs one coordinator wake,
// and release is a generation-counted atomic bump plus a per-shard condvar
// broadcast — no per-round channel allocation and no serialized submit
// funnel. The steady-state message path allocates nothing: Word and Words2
// payloads travel inline inside Envelope/Received (use SendWord/SendWords2
// and AsWord/AsWords2 to stay off the heap entirely), larger payloads keep
// the Payload interface with Words() cached at Send time, and outboxes,
// buckets and inboxes are sized from observed traffic and reused across
// rounds. TestSteadyStateAllocs pins ~0 allocs/message; BenchmarkEngineScale
// tracks 64k/256k/1M-node throughput against BENCH_baseline.json in CI.
//
// Node liveness is a separate plane from message faults. Setting
// Config.FaultPlan attaches a schedule of per-round Outage/Revival
// transitions: a down node sends and receives nothing (its traffic is
// silently dropped at the round barrier), a killed node never returns, and
// a revival brings the node back — optionally with its program restarted
// from scratch. Attaching any plan (even an empty one) also switches the
// engine into failure-isolation mode: a node goroutine that panics is
// counted in Stats.NodeFailures instead of crashing the run, and Stats
// reports Unfinished/DownAtEnd so callers can distinguish "completed" from
// "survived". Liveness decisions come only from the plan — which the
// faultmodel package derives deterministically from the run seed — so
// faulted runs remain bit-for-bit reproducible across worker counts.
package ncc
