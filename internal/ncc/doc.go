// Package ncc implements the Node-Capacitated Clique model of Augustine et
// al. (SPAA 2019) as an executable, deterministic simulator.
//
// The model: n nodes with ids 0..n-1 form a logical clique and operate in
// synchronous rounds. Per round, a node may send up to cap distinct messages
// of O(log n) bits to arbitrary nodes and may receive up to cap messages,
// where cap = CapFactor * ceil(log2 n). If more than cap messages are
// addressed to a node in one round, an arbitrary subset of cap messages is
// delivered and the rest are dropped by the network.
//
// Programs are written SPMD style: Run spawns one goroutine per node, all
// executing the same program against a Context. Context.Send buffers messages
// for the current round and Context.EndRound blocks on the global round
// barrier, returning the messages delivered to the node.
//
// Round delivery is executed by a pool of Config.Workers goroutines
// (default GOMAXPROCS) that shard senders for capacity/fault filtering and
// receivers for grouping, overload truncation, and inbox fill. Runs are
// bit-for-bit deterministic for a fixed Config.Seed regardless of the worker
// count: per-node program RNGs are derived from the seed, deliveries are
// ordered by sender id, fault decisions use a per-(round, sender) PRNG, and
// receive-overflow truncation uses a per-(round, receiver) PRNG.
package ncc
