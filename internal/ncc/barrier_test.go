package ncc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestAbortDuringBarrier kills one node mid-round while every other node is
// parked at the sharded barrier: the panic must surface as the run error and
// every parked goroutine must be released (a deadlock here fails the test by
// timeout). Exercised across worker counts so both the serial and pooled
// delivery paths unwind.
func TestAbortDuringBarrier(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w=%d", workers), func(t *testing.T) {
			_, err := Run(Config{N: 64, Seed: 9, Workers: workers}, func(ctx *Context) {
				for r := 0; ; r++ {
					if ctx.ID() == 5 && r == 3 {
						panic("mid-round boom")
					}
					ctx.SendWord((ctx.ID()+1)%ctx.N(), Word(uint64(r)))
					ctx.EndRound()
				}
			})
			if err == nil || !strings.Contains(err.Error(), "mid-round boom") {
				t.Fatalf("want node panic to surface, got %v", err)
			}
		})
	}
}

// TestNodeFinishesAtBarrier retires nodes one per round (node i returns after
// i rounds), driving the live-count and per-shard countdown bookkeeping
// through every round, and checks the stats are identical across worker
// counts (the finish path must not perturb determinism).
func TestNodeFinishesAtBarrier(t *testing.T) {
	const n = 48
	runWith := func(workers int) Stats {
		st, err := Run(Config{N: n, Seed: 4, Workers: workers}, func(ctx *Context) {
			for r := 0; r < ctx.ID(); r++ {
				ctx.SendWord((ctx.ID()+1)%ctx.N(), Word(uint64(r)))
				ctx.EndRound()
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return st
	}
	base := runWith(1)
	if base.Rounds != n-1 {
		t.Errorf("rounds = %d, want %d (node n-1 runs n-1 rounds)", base.Rounds, n-1)
	}
	if base.DroppedToFinished == 0 {
		t.Error("expected messages to already-finished nodes to be dropped")
	}
	for _, workers := range []int{2, 5, 8} {
		if got := runWith(workers); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d stats diverge:\n  w1: %+v\n  w%d: %+v", workers, base, workers, got)
		}
	}
}

// TestImmediateFinishAll covers the degenerate barrier: every program returns
// without a single EndRound, so the first countdown completes purely through
// the finish path.
func TestImmediateFinishAll(t *testing.T) {
	st, err := Run(Config{N: 1000, Seed: 1, Workers: 4}, func(ctx *Context) {})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 0 || st.Messages != 0 {
		t.Errorf("stats = %+v, want empty run", st)
	}
}

// TestBarrierLargeNSmoke pushes N=4096 with mixed traffic, staggered
// finishes, and pooled delivery through the sharded countdown and
// generation-counted release. Run under -race in CI, it is the memory-model
// check on the atomic barrier: any missing happens-before edge between node
// outboxes, delivery workers, and inbox reads shows up here.
func TestBarrierLargeNSmoke(t *testing.T) {
	const n, rounds = 4096, 6
	st, err := Run(Config{N: n, Seed: 77, Workers: 8}, func(ctx *Context) {
		me := ctx.ID()
		for r := 0; r < rounds; r++ {
			if me%97 == r { // a sprinkle of early finishers, one shard at a time
				return
			}
			for j := 0; j < 1+me%3; j++ {
				to := ctx.Rand().IntN(n)
				if to != me {
					ctx.SendWord(to, Word(uint64(r)))
				}
			}
			in := ctx.EndRound()
			for i := 1; i < len(in); i++ {
				if in[i].From < in[i-1].From {
					panic("inbox not sorted by sender id")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != rounds {
		t.Errorf("rounds = %d, want %d", st.Rounds, rounds)
	}
	if st.Messages == 0 {
		t.Error("smoke run transmitted no messages")
	}
}

// TestSendWordEquivalence checks that the inline fast paths are observably
// identical to sending the same payloads through the Payload interface.
func TestSendWordEquivalence(t *testing.T) {
	type digest struct {
		st  Stats
		sum uint64
	}
	runWith := func(inline bool) digest {
		var d digest
		sums := make([]uint64, 32)
		st, err := Run(Config{N: 32, Seed: 6, CapFactor: 1}, func(ctx *Context) {
			me := ctx.ID()
			for r := 0; r < 8; r++ {
				to := (me + 1 + r) % ctx.N()
				if to != me {
					if inline {
						ctx.SendWord(to, Word(uint64(me*100+r)))
						ctx.SendWords2(to, Words2{uint64(me), uint64(r)})
					} else {
						ctx.Send(to, Word(uint64(me*100+r)))
						ctx.Send(to, Words2{uint64(me), uint64(r)})
					}
				}
				for _, rc := range ctx.EndRound() {
					if w, ok := rc.AsWord(); ok {
						sums[me] = sums[me]*31 + uint64(w)
					}
					if w2, ok := rc.AsWords2(); ok {
						sums[me] = sums[me]*37 + w2[0]<<8 + w2[1]
					}
					// The boxed view must agree with the inline view.
					switch p := rc.Payload().(type) {
					case Word:
						sums[me] = sums[me]*41 + uint64(p)
					case Words2:
						sums[me] = sums[me]*43 + p[0] + p[1]
					default:
						panic("unexpected payload type")
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		d.st = st
		for _, s := range sums {
			d.sum = d.sum*1099511628211 + s
		}
		return d
	}
	if a, b := runWith(true), runWith(false); !reflect.DeepEqual(a, b) {
		t.Errorf("inline and boxed sends diverge:\n  inline: %+v\n  boxed:  %+v", a, b)
	}
}
