package ncc

// Word is the simplest payload: a single machine word standing for
// Theta(log n) bits.
type Word uint64

// Words implements Payload.
func (Word) Words() int { return 1 }

// Words2 is a two-word payload.
type Words2 [2]uint64

// Words implements Payload.
func (Words2) Words() int { return 2 }
