package ncc

// Word is the simplest payload: a single machine word standing for
// Theta(log n) bits.
type Word uint64

// Words implements Payload.
func (Word) Words() int { return 1 }

// Words2 is a two-word payload.
type Words2 [2]uint64

// Words implements Payload.
func (Words2) Words() int { return 2 }

// WordsN is a payload of len(w) machine words. Sending a WordsN through
// Context.Send (or Context.SendWords, which takes the raw slice) copies the
// words into a per-node arena, so wide payloads travel without interface
// boxing just like Word and Words2; the receiver reads them back with
// Received.AsWords.
type WordsN []uint64

// Words implements Payload.
func (w WordsN) Words() int { return len(w) }
