package ncc

import (
	"sync"
	"sync/atomic"
	"time"
)

// barrier is the engine's sharded round barrier. Nodes arrive by decrementing
// their shard's atomic countdown; the last arrival of the last non-empty
// shard performs exactly one wake of the coordinator. Release is
// generation-counted: the coordinator bumps an atomic state word and
// broadcasts each shard's condition variable, so a round barrier costs O(N)
// uncontended atomics plus one park/unpark per node — no per-round channel
// allocation and no serialized submit funnel.
//
// The state word is generation<<1 | abortBit. Once the abort bit is set the
// barrier never releases again; woken (or newly arriving) nodes observe the
// bit and unwind with errAborted.
type barrier struct {
	shards    []barrierShard
	remaining atomic.Int32  // non-empty shards that have not fully arrived
	state     atomic.Uint64 // generation<<1 | abort bit
	wake      chan struct{} // capacity 1; one send per completed barrier

	// times, when non-nil (probe plane on), records the UnixNano instant each
	// shard's countdown hit zero. The write sits on the arrival path's cold
	// branch — once per shard per round, not once per node — and is ordered
	// before the coordinator's read: it happens before the same goroutine's
	// remaining.Add, whose RMW chain is observed by the final arriver, whose
	// wake send the coordinator receives.
	times []int64
}

// barrierShard keeps each shard's countdown on its own cache lines; the
// mutex/cond pair is used only for parking, never on the arrival path.
type barrierShard struct {
	count atomic.Int32
	_     [60]byte // keep neighbouring shard countdowns off this cache line
	mu    sync.Mutex
	cond  sync.Cond
}

func newBarrier(shards int) *barrier {
	b := &barrier{shards: make([]barrierShard, shards), wake: make(chan struct{}, 1)}
	for i := range b.shards {
		s := &b.shards[i]
		s.cond.L = &s.mu
	}
	return b
}

// reset arms the barrier for the next round: shard i expects live[i]
// arrivals. Only the coordinator calls this, strictly between barrier
// completion (wake received) and release, when no node is running.
func (b *barrier) reset(live []int32) {
	rem := int32(0)
	for i := range b.shards {
		b.shards[i].count.Store(live[i])
		if live[i] > 0 {
			rem++
		}
	}
	b.remaining.Store(rem)
}

// arrive records one node's arrival at the current barrier. The last arrival
// overall wakes the coordinator. The non-blocking send covers the post-abort
// case where the coordinator has already exited and stops draining wakes.
func (b *barrier) arrive(shard int) {
	if b.shards[shard].count.Add(-1) == 0 {
		if b.times != nil {
			b.times[shard] = time.Now().UnixNano()
		}
		if b.remaining.Add(-1) == 0 {
			select {
			case b.wake <- struct{}{}:
			default:
			}
		}
	}
}

// await blocks until the barrier state moves past start (release or abort)
// and returns the new state. The caller must have captured start before its
// arrive call: a release can happen the instant the last arrival lands.
func (b *barrier) await(shard int, start uint64) uint64 {
	if st := b.state.Load(); st != start {
		return st
	}
	s := &b.shards[shard]
	s.mu.Lock()
	st := b.state.Load()
	for st == start {
		s.cond.Wait()
		st = b.state.Load()
	}
	s.mu.Unlock()
	return st
}

// release advances the generation — setting the abort bit when the run is
// failing — and wakes every parked node. The empty lock/unlock of each shard
// mutex orders the state store before any in-flight waiter can park, closing
// the check-then-wait race.
func (b *barrier) release(abortRun bool) {
	st := (b.state.Load() &^ 1) + 2
	if abortRun {
		st |= 1
	}
	b.state.Store(st)
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		s.mu.Unlock() //nolint:staticcheck // empty critical section is the point
		s.cond.Broadcast()
	}
}
