package ncc

import (
	"fmt"
	"runtime"
	"testing"
)

// Engine microbenchmarks: raw round-delivery throughput of the simulator
// itself (trivial per-node programs), across the three traffic shapes that
// stress different engine paths. Sub-benchmarks vary Config.Workers so the
// serial coordinator (w=1) can be compared against the sharded worker pool
// (w=GOMAXPROCS and a fixed w=8) on the same host:
//
//	go test ./internal/ncc -run '^$' -bench BenchmarkEngine -benchmem
//
// On a multi-core host the dense n=1024 case is the headline number; rounds
// are reported via the rounds/s metric so worker counts compare directly.

const benchRounds = 20

func benchWorkerCounts() []int {
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 && p != 8 {
		counts = append(counts, p)
	}
	counts = append(counts, 8)
	return counts
}

func runEngineBench(b *testing.B, n, workers int, program func(*Context)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := Run(Config{N: n, Seed: 1, Workers: workers}, program)
		if err != nil {
			b.Fatal(err)
		}
		if st.Rounds != benchRounds {
			b.Fatalf("rounds = %d, want %d", st.Rounds, benchRounds)
		}
	}
	b.ReportMetric(float64(benchRounds*b.N)/b.Elapsed().Seconds(), "rounds/s")
}

// BenchmarkEngineDense saturates every node's send and receive capacity:
// node u sends cap messages to u+1..u+cap (mod n), so every node also
// receives exactly cap messages — the all-to-all worst case of the model.
func BenchmarkEngineDense(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/w=%d", n, w), func(b *testing.B) {
				runEngineBench(b, n, w, func(ctx *Context) {
					for r := 0; r < benchRounds; r++ {
						for k := 1; k <= ctx.Cap(); k++ {
							ctx.SendWord((ctx.ID()+k)%ctx.N(), Word(uint64(k)))
						}
						ctx.EndRound()
					}
				})
			})
		}
	}
}

// BenchmarkEngineScale is the large-N trajectory: the node counts where the
// paper's O(log n) capacity bounds become interesting. The 64k point runs
// dense traffic (every node saturates cap = log2 n) and is the regression
// gate CI compares against BENCH_baseline.json; the 256k and 1M points run
// one message per node per round so a single iteration stays inside CI's
// bench-smoke budget. Workers defaults to GOMAXPROCS.
func BenchmarkEngineScale(b *testing.B) {
	cases := []struct {
		n, rounds int
		dense     bool
	}{
		{65536, 4, true},
		{262144, 4, false},
		{1048576, 2, false},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(fmt.Sprintf("n=%d", tc.n), func(b *testing.B) {
			b.ReportAllocs()
			var msgs int64
			for i := 0; i < b.N; i++ {
				st, err := Run(Config{N: tc.n, Seed: 1, CapFactor: 1}, func(ctx *Context) {
					for r := 0; r < tc.rounds; r++ {
						if tc.dense {
							for k := 1; k <= ctx.Cap(); k++ {
								ctx.SendWord((ctx.ID()+k)%ctx.N(), Word(uint64(k)))
							}
						} else {
							ctx.SendWord((ctx.ID()+1)%ctx.N(), Word(uint64(r)))
						}
						ctx.EndRound()
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				if st.Rounds != tc.rounds {
					b.Fatalf("rounds = %d, want %d", st.Rounds, tc.rounds)
				}
				msgs = st.Messages
			}
			b.ReportMetric(float64(msgs)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// BenchmarkEngineProbe measures the telemetry plane's cost at the round
// barrier: the same dense workload with Probe nil (the default every scheduler
// and benchmark runs with) versus a live probe draining every RoundSample.
// The probe=off point is benchcheck-gated against BENCH_baseline.json, so a
// change that sneaks work into the nil-probe path fails CI; probe=on is
// reported for comparison but not gated (its cost is the feature's price).
func BenchmarkEngineProbe(b *testing.B) {
	const n = 4096
	program := func(ctx *Context) {
		for r := 0; r < benchRounds; r++ {
			for k := 1; k <= ctx.Cap(); k++ {
				ctx.SendWord((ctx.ID()+k)%ctx.N(), Word(uint64(k)))
			}
			ctx.EndRound()
		}
	}
	b.Run("probe=off", func(b *testing.B) {
		runEngineBench(b, n, 0, program)
	})
	b.Run("probe=on", func(b *testing.B) {
		b.ReportAllocs()
		var sink int64
		for i := 0; i < b.N; i++ {
			st, err := Run(Config{N: n, Seed: 1, Probe: func(s RoundSample, _ []ShardTiming) {
				sink += int64(s.Messages)
			}}, program)
			if err != nil {
				b.Fatal(err)
			}
			if st.Rounds != benchRounds {
				b.Fatalf("rounds = %d, want %d", st.Rounds, benchRounds)
			}
		}
		if sink == 0 {
			b.Fatal("probe never observed traffic")
		}
		b.ReportMetric(float64(benchRounds*b.N)/b.Elapsed().Seconds(), "rounds/s")
	})
}

// BenchmarkEngineSparse sends one message per node per round (a ring): the
// barrier and coordination overhead dominates, not envelope shuffling.
func BenchmarkEngineSparse(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/w=%d", n, w), func(b *testing.B) {
				runEngineBench(b, n, w, func(ctx *Context) {
					for r := 0; r < benchRounds; r++ {
						ctx.SendWord((ctx.ID()+1)%ctx.N(), Word(1))
						ctx.EndRound()
					}
				})
			})
		}
	}
}

// BenchmarkEngineOverload floods node 0 from every other node each round,
// exercising the receive-overflow truncation path (seeded shuffle + resort).
func BenchmarkEngineOverload(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/w=%d", n, w), func(b *testing.B) {
				runEngineBench(b, n, w, func(ctx *Context) {
					for r := 0; r < benchRounds; r++ {
						if ctx.ID() != 0 {
							ctx.SendWord(0, Word(uint64(r)))
						}
						ctx.EndRound()
					}
				})
			})
		}
	}
}
