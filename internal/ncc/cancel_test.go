package ncc

import (
	"errors"
	"testing"
	"time"
)

// TestCancelUnwindsWithinOneBarrier closes the cancel channel while every
// node spins through empty rounds and checks that Run returns ErrCanceled
// promptly — the coordinator must observe the cancellation at the next round
// barrier, not at MaxRounds.
func TestCancelUnwindsWithinOneBarrier(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan struct{})
	var st Stats
	var err error
	go func() {
		defer close(done)
		st, err = Run(Config{N: 64, Seed: 1, Cancel: cancel}, func(ctx *Context) {
			for {
				// A touch of traffic so delivery is exercised; the per-round
				// sleep keeps the round count low enough that the run cannot
				// finish via MaxRounds before the cancellation below lands.
				ctx.SendWord((ctx.ID()+1)%ctx.N(), Word(ctx.Round()))
				ctx.EndRound()
				time.Sleep(100 * time.Microsecond)
			}
		})
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not unwind after cancellation")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v, want ErrCanceled", err)
	}
	if st.Rounds >= DefaultMaxRounds {
		t.Fatalf("run terminated via MaxRounds (%d rounds), not cancellation", st.Rounds)
	}
}

// TestCancelBeforeFirstBarrier cancels before the run starts; the run must
// still unwind (the coordinator's first select sees the closed channel).
func TestCancelBeforeFirstBarrier(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	_, err := Run(Config{N: 16, Seed: 1, Cancel: cancel}, func(ctx *Context) {
		for {
			ctx.EndRound()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v, want ErrCanceled", err)
	}
}

// TestNilCancelStillTerminates pins that a nil Cancel channel (the default)
// never fires: a terminating program completes normally.
func TestNilCancelStillTerminates(t *testing.T) {
	st, err := Run(Config{N: 8, Seed: 1}, func(ctx *Context) {
		for r := 0; r < 3; r++ {
			ctx.SendWord((ctx.ID()+1)%ctx.N(), Word(r))
			ctx.EndRound()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Rounds < 3 {
		t.Fatalf("got %d rounds, want >= 3", st.Rounds)
	}
}
