package ncc

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10}, {1025, 11},
	}
	// Pin every power of two and its neighbours: the bits.Len rewrite must
	// agree with ceil(log2(n)) exactly at the boundaries.
	for k := 2; k <= 30; k++ {
		p := 1 << k
		cases = append(cases,
			struct{ n, want int }{p - 1, k},
			struct{ n, want int }{p, k},
			struct{ n, want int }{p + 1, k + 1},
		)
	}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1023, 9}, {1024, 10},
	}
	for k := 2; k <= 30; k++ {
		p := 1 << k
		cases = append(cases,
			struct{ n, want int }{p - 1, k - 1},
			struct{ n, want int }{p, k},
			struct{ n, want int }{p + 1, k},
		)
	}
	for _, c := range cases {
		if got := FloorLog2(c.n); got != c.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPingPong(t *testing.T) {
	const rounds = 5
	cfg := Config{N: 2, Seed: 1, Strict: true}
	st, err := Run(cfg, func(ctx *Context) {
		peer := 1 - ctx.ID()
		for i := 0; i < rounds; i++ {
			ctx.Send(peer, Word(uint64(ctx.ID()*100+i)))
			got := ctx.EndRound()
			if len(got) != 1 {
				panic("expected exactly one message")
			}
			if got[0].From != peer {
				panic("wrong sender")
			}
			want := Word(uint64(peer*100 + i))
			if got[0].Payload().(Word) != want {
				panic("wrong payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != rounds {
		t.Errorf("rounds = %d, want %d", st.Rounds, rounds)
	}
	if st.Messages != 2*rounds {
		t.Errorf("messages = %d, want %d", st.Messages, 2*rounds)
	}
	if st.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", st.Dropped())
	}
}

func TestRoundCounterIsGlobal(t *testing.T) {
	cfg := Config{N: 8, Seed: 3, Strict: true}
	_, err := Run(cfg, func(ctx *Context) {
		for i := 0; i < 10; i++ {
			if ctx.Round() != i {
				panic("round counter out of sync")
			}
			ctx.EndRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	program := func(ctx *Context) {
		for i := 0; i < 20; i++ {
			to := ctx.Rand().IntN(ctx.N())
			if to != ctx.ID() {
				ctx.Send(to, Word(ctx.Rand().Uint64()))
			}
			ctx.EndRound()
		}
	}
	cfg := Config{N: 32, Seed: 42}
	st1, err1 := Run(cfg, program)
	st2, err2 := Run(cfg, program)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("same seed gave different stats:\n%v\n%v", st1, st2)
	}
}

func TestReceiveOverflowDrops(t *testing.T) {
	// Every node floods node 0 in one round; node 0 must receive exactly cap
	// messages, and the overflow must be counted as dropped.
	cfg := Config{N: 64, CapFactor: 2, Seed: 7}
	capacity := cfg.Cap()
	got := 0
	_, err := Run(cfg, func(ctx *Context) {
		if ctx.ID() != 0 {
			ctx.Send(0, Word(1))
			ctx.EndRound()
			return
		}
		in := ctx.EndRound()
		got = len(in)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != capacity {
		t.Errorf("node 0 received %d messages, want cap=%d", got, capacity)
	}
}

func TestReceiveOverflowStats(t *testing.T) {
	cfg := Config{N: 64, CapFactor: 2, Seed: 7}
	st, err := Run(cfg, func(ctx *Context) {
		if ctx.ID() != 0 {
			ctx.Send(0, Word(1))
		}
		ctx.EndRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDropped := int64(63 - cfg.Cap())
	if st.DroppedRecvOverflow != wantDropped {
		t.Errorf("DroppedRecvOverflow = %d, want %d", st.DroppedRecvOverflow, wantDropped)
	}
	if st.MaxRecvOffered != 63 {
		t.Errorf("MaxRecvOffered = %d, want 63", st.MaxRecvOffered)
	}
	if st.MaxRecvDelivered != cfg.Cap() {
		t.Errorf("MaxRecvDelivered = %d, want %d", st.MaxRecvDelivered, cfg.Cap())
	}
}

func TestStrictSendCapPanics(t *testing.T) {
	cfg := Config{N: 4, CapFactor: 1, Seed: 1, Strict: true}
	_, err := Run(cfg, func(ctx *Context) {
		if ctx.ID() == 0 {
			for i := 0; i < ctx.Cap()+1; i++ {
				ctx.Send(1+i%3, Word(0))
			}
		}
		ctx.EndRound()
	})
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("want capacity panic error, got %v", err)
	}
}

func TestNonStrictSendCapDrops(t *testing.T) {
	cfg := Config{N: 4, CapFactor: 1, Seed: 1}
	st, err := Run(cfg, func(ctx *Context) {
		if ctx.ID() == 0 {
			for i := 0; i < ctx.Cap()+3; i++ {
				ctx.Send(1+i%3, Word(0))
			}
		}
		ctx.EndRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedSendOverflow != 3 {
		t.Errorf("DroppedSendOverflow = %d, want 3", st.DroppedSendOverflow)
	}
}

func TestMaxRounds(t *testing.T) {
	cfg := Config{N: 2, Seed: 1, MaxRounds: 10}
	_, err := Run(cfg, func(ctx *Context) {
		for {
			ctx.EndRound()
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("want ErrMaxRounds, got %v", err)
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, err := Run(Config{N: 2, Seed: 1}, func(ctx *Context) {
		ctx.Send(ctx.ID(), Word(0))
		ctx.EndRound()
	})
	if err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("want self-send panic, got %v", err)
	}
}

type bigPayload struct{}

func (bigPayload) Words() int { return 1000 }

func TestOversizedPayloadPanics(t *testing.T) {
	_, err := Run(Config{N: 2, Seed: 1}, func(ctx *Context) {
		ctx.Send(1-ctx.ID(), bigPayload{})
		ctx.EndRound()
	})
	if err == nil || !strings.Contains(err.Error(), "MaxWords") {
		t.Fatalf("want MaxWords panic, got %v", err)
	}
}

func TestMessagesToFinishedNodesAreDropped(t *testing.T) {
	cfg := Config{N: 4, Seed: 1}
	st, err := Run(cfg, func(ctx *Context) {
		if ctx.ID() != 0 {
			return // finish immediately
		}
		for i := 0; i < 3; i++ {
			ctx.Send(1, Word(0))
			ctx.EndRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedToFinished != 3 {
		t.Errorf("DroppedToFinished = %d, want 3", st.DroppedToFinished)
	}
}

func TestCollect(t *testing.T) {
	vals, _, err := Collect(Config{N: 8, Seed: 1}, func(ctx *Context) int {
		return ctx.ID() * ctx.ID()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Errorf("vals[%d] = %d, want %d", i, v, i*i)
		}
	}
}

type countObserver struct{ msgs int }

func (o *countObserver) ObserveRound(round int, msgs []Envelope) { o.msgs += len(msgs) }

func TestObserver(t *testing.T) {
	obs := &countObserver{}
	cfg := Config{N: 4, Seed: 1, Observer: obs}
	st, err := Run(cfg, func(ctx *Context) {
		ctx.Send((ctx.ID()+1)%ctx.N(), Word(0))
		ctx.EndRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(obs.msgs) != st.Messages {
		t.Errorf("observer saw %d messages, stats say %d", obs.msgs, st.Messages)
	}
}

func TestDropProbOne(t *testing.T) {
	cfg := Config{N: 4, Seed: 1, DropProb: 1}
	var deliveredAny bool
	_, err := Run(cfg, func(ctx *Context) {
		ctx.Send((ctx.ID()+1)%ctx.N(), Word(0))
		if len(ctx.EndRound()) > 0 {
			deliveredAny = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if deliveredAny {
		t.Error("DropProb=1 still delivered messages")
	}
}

func TestInterceptor(t *testing.T) {
	cfg := Config{N: 4, Seed: 1, Interceptor: func(round int, from, to NodeID) bool {
		return to != 2 // kill everything addressed to node 2
	}}
	counts := make([]int, 4)
	_, err := Run(cfg, func(ctx *Context) {
		for to := 0; to < ctx.N(); to++ {
			if to != ctx.ID() {
				ctx.Send(to, Word(0))
			}
		}
		counts[ctx.ID()] = len(ctx.EndRound())
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[2] != 0 {
		t.Errorf("node 2 received %d messages despite interceptor", counts[2])
	}
	if counts[1] != 3 {
		t.Errorf("node 1 received %d messages, want 3", counts[1])
	}
}

func TestPanicPropagates(t *testing.T) {
	_, err := Run(Config{N: 4, Seed: 1}, func(ctx *Context) {
		if ctx.ID() == 2 {
			panic("boom")
		}
		for i := 0; i < 100; i++ {
			ctx.EndRound()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want boom panic, got %v", err)
	}
}

// Property: for random fan-out patterns, every transmitted message is either
// delivered or accounted for in a drop counter.
func TestConservationProperty(t *testing.T) {
	check := func(seed int64, n8 uint8, fan uint8) bool {
		n := 2 + int(n8)%30
		f := 1 + int(fan)%5
		var delivered int64
		deliveredPer := make([]int64, n)
		cfg := Config{N: n, CapFactor: 1, Seed: seed}
		st, err := Run(cfg, func(ctx *Context) {
			for i := 0; i < 3; i++ {
				for j := 0; j < f; j++ {
					to := ctx.Rand().IntN(ctx.N())
					if to != ctx.ID() {
						ctx.Send(to, Word(0))
					}
				}
				deliveredPer[ctx.ID()] += int64(len(ctx.EndRound()))
			}
		})
		if err != nil {
			return false
		}
		delivered = 0
		for _, d := range deliveredPer {
			delivered += d
		}
		return delivered+st.DroppedRecvOverflow == st.Messages
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTimeline(t *testing.T) {
	tl := &Timeline{}
	cfg := Config{N: 8, Seed: 1, Probe: tl.Sample, Strict: true}
	st, err := Run(cfg, func(ctx *Context) {
		for r := 0; r < 5; r++ {
			if r == 3 { // make round 3 the busiest
				for to := 0; to < ctx.N(); to++ {
					if to != ctx.ID() {
						ctx.Send(to, Word(1))
					}
				}
			} else {
				ctx.Send((ctx.ID()+1)%ctx.N(), Word(1))
			}
			ctx.EndRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Samples) != st.Rounds {
		t.Fatalf("timeline has %d samples, run had %d rounds", len(tl.Samples), st.Rounds)
	}
	if tl.TotalMessages() != st.Messages {
		t.Errorf("timeline total %d != stats %d", tl.TotalMessages(), st.Messages)
	}
	busyRound, sample := tl.Busiest()
	if busyRound != 3 {
		t.Errorf("busiest round = %d, want 3", busyRound)
	}
	if sample.MaxRecvOffered != 7 {
		t.Errorf("busiest MaxRecvOffered = %d, want 7", sample.MaxRecvOffered)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := &Timeline{}
	if i, s := tl.Busiest(); i != 0 || s.Messages != 0 {
		t.Error("empty timeline Busiest not zero")
	}
}
