package ncc

import (
	"reflect"
	"testing"
)

// TestWorkerCountInvariance is the determinism regression test of the
// parallel round engine: a fixed seed must yield bit-for-bit identical Stats
// (rounds, messages, words, and every drop counter) and identical per-node
// deliveries no matter how many workers deliver the rounds. The program is
// deliberately nasty: random fan-out, periodic all-to-one overload bursts
// (receive truncation), send overflow (non-strict send truncation), and an
// early finisher (drops to finished nodes).
func TestWorkerCountInvariance(t *testing.T) {
	const n, rounds = 96, 40
	type digest struct {
		st  Stats
		sum []uint64
	}
	runWith := func(workers int, dropProb float64) digest {
		cfg := Config{N: n, Seed: 12345, CapFactor: 2, Workers: workers, DropProb: dropProb,
			Interceptor: func(round int, from, to NodeID) bool {
				return (round+from+to)%17 != 0 // deterministic targeted faults
			}}
		sums := make([]uint64, n)
		st, err := Run(cfg, func(ctx *Context) {
			me := ctx.ID()
			for r := 0; r < rounds; r++ {
				if me == n-1 && r == rounds/2 {
					return
				}
				switch {
				case r%5 == 3:
					if me != 0 {
						ctx.Send(0, Word(uint64(r)))
					}
				case r%7 == 5 && me%3 == 0:
					for i := 0; i < ctx.Cap()+4; i++ {
						ctx.Send((me+1+i%(n-1))%n, Word(uint64(i)))
					}
				default:
					for i := 0; i < 1+ctx.Rand().IntN(4); i++ {
						to := ctx.Rand().IntN(n)
						if to != me {
							ctx.Send(to, Word(ctx.Rand().Uint64()))
						}
					}
				}
				for _, rc := range ctx.EndRound() {
					sums[me] = sums[me]*31 + uint64(rc.From)*2654435761 + uint64(rc.Payload().(Word))
				}
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return digest{st: st, sum: sums}
	}

	for _, dropProb := range []float64{0, 0.15} {
		base := runWith(1, dropProb)
		if base.st.Dropped() == 0 {
			t.Fatalf("dropProb=%v: traffic pattern produced no drops; test is vacuous", dropProb)
		}
		for _, workers := range []int{2, 3, 8} {
			got := runWith(workers, dropProb)
			if !reflect.DeepEqual(got.st, base.st) {
				t.Errorf("dropProb=%v: workers=%d stats diverge from workers=1:\n  w1: %+v\n  w%d: %+v",
					dropProb, workers, base.st, workers, got.st)
			}
			for v := range got.sum {
				if got.sum[v] != base.sum[v] {
					t.Errorf("dropProb=%v: workers=%d node %d received different messages", dropProb, workers, v)
					break
				}
			}
		}
	}
}

// TestWorkersMoreThanNodes checks the engine clamps oversized worker counts.
func TestWorkersMoreThanNodes(t *testing.T) {
	st, err := Run(Config{N: 3, Seed: 1, Workers: 64}, func(ctx *Context) {
		ctx.Send((ctx.ID()+1)%3, Word(7))
		ctx.EndRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 3 || st.Rounds != 1 {
		t.Errorf("stats = %+v, want 3 messages in 1 round", st)
	}
}

// TestNegativeWorkersRejected checks config validation.
func TestNegativeWorkersRejected(t *testing.T) {
	_, err := Run(Config{N: 2, Seed: 1, Workers: -1}, func(ctx *Context) {})
	if err == nil {
		t.Fatal("Workers=-1 accepted")
	}
}

// TestParallelWorkersDeliverOrdered re-runs the core barrier contract (inbox
// sorted by sender id) through the pooled path.
func TestParallelWorkersDeliverOrdered(t *testing.T) {
	const n = 64
	cfg := Config{N: n, Seed: 2, Workers: 4, Strict: true}
	_, err := Run(cfg, func(ctx *Context) {
		for r := 0; r < 5; r++ {
			for k := 1; k <= 3; k++ {
				ctx.Send((ctx.ID()+k)%n, Word(uint64(k)))
			}
			in := ctx.EndRound()
			for i := 1; i < len(in); i++ {
				if in[i].From < in[i-1].From {
					panic("inbox not sorted by sender id")
				}
			}
			if len(in) != 3 {
				panic("expected exactly 3 messages")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

type panickyObserver struct{}

func (panickyObserver) ObserveRound(round int, msgs []Envelope) {
	if round == 2 {
		panic("observer boom")
	}
}

// TestObserverPanicSurfaces checks that a panic inside a user Observer aborts
// the run with an error instead of escaping the coordinator and leaving every
// node goroutine blocked at the barrier.
func TestObserverPanicSurfaces(t *testing.T) {
	_, err := Run(Config{N: 8, Seed: 1, Observer: panickyObserver{}}, func(ctx *Context) {
		for r := 0; r < 10; r++ {
			ctx.Send((ctx.ID()+1)%ctx.N(), Word(0))
			ctx.EndRound()
		}
	})
	if err == nil {
		t.Fatal("observer panic not surfaced")
	}
}

// TestInterceptorPanicSurfaces checks that a panic inside user callback code
// running on a delivery worker aborts the run with an error instead of
// crashing the process.
func TestInterceptorPanicSurfaces(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := Config{N: 8, Seed: 1, Workers: workers,
			Interceptor: func(round int, from, to NodeID) bool {
				if round == 2 {
					panic("interceptor boom")
				}
				return true
			}}
		_, err := Run(cfg, func(ctx *Context) {
			for r := 0; r < 10; r++ {
				ctx.Send((ctx.ID()+1)%ctx.N(), Word(0))
				ctx.EndRound()
			}
		})
		if err == nil {
			t.Fatalf("workers=%d: interceptor panic not surfaced", workers)
		}
	}
}
