package ncc

import (
	"slices"
	"strings"
	"testing"
)

// collectSamples runs cfg with a probe that records every sample and sanity-
// checks the timing slice shape.
func collectSamples(t *testing.T, cfg Config, program func(*Context)) ([]RoundSample, Stats) {
	t.Helper()
	var samples []RoundSample
	workers := cfg.Workers
	cfg.Probe = func(s RoundSample, timing []ShardTiming) {
		if workers > 0 && len(timing) != max(1, min(workers, cfg.N)) {
			t.Errorf("round %d: timing has %d shards, want %d", s.Round, len(timing), workers)
		}
		samples = append(samples, s)
	}
	st, err := Run(cfg, program)
	if err != nil {
		t.Fatal(err)
	}
	return samples, st
}

// TestProbeMatchesStats pins the sample semantics: per-round counters are the
// deltas of the run's cumulative Stats, per-round maxima fold to the run
// maxima, and Delivered is Messages minus the receive-overflow truncation.
func TestProbeMatchesStats(t *testing.T) {
	const n = 32
	program := func(ctx *Context) {
		for r := 0; r < 6; r++ {
			if r%2 == 0 {
				// Overflow the send cap by two: the excess is throttled.
				for k := 1; k <= ctx.Cap()+2; k++ {
					ctx.SendWord((ctx.ID()+k)%ctx.N(), Word(uint64(k)))
				}
			} else {
				// Converge on one hot receiver: offered n-1 >> cap.
				hot := NodeID(r % ctx.N())
				if ctx.ID() != hot {
					ctx.SendWord(hot, 1)
				}
			}
			ctx.EndRound()
		}
	}
	samples, st := collectSamples(t, Config{N: n, Seed: 7, CapFactor: 1, DropProb: 0.1, Workers: 4}, program)
	if len(samples) != st.Rounds {
		t.Fatalf("got %d samples for %d rounds", len(samples), st.Rounds)
	}
	var sum RoundSample
	var maxSend, maxOff, maxDel int
	for i, s := range samples {
		if s.Round != i {
			t.Errorf("sample %d has Round=%d", i, s.Round)
		}
		if s.Delivered != s.Messages-s.RecvThrottled {
			t.Errorf("round %d: Delivered=%d, want Messages-RecvThrottled=%d", i, s.Delivered, s.Messages-s.RecvThrottled)
		}
		sum.Messages += s.Messages
		sum.Words += s.Words
		sum.SendThrottled += s.SendThrottled
		sum.RecvThrottled += s.RecvThrottled
		sum.DroppedFault += s.DroppedFault
		sum.DroppedDead += s.DroppedDead
		sum.DroppedToFinished += s.DroppedToFinished
		maxSend = max(maxSend, s.MaxSendLoad)
		maxOff = max(maxOff, s.MaxRecvOffered)
		maxDel = max(maxDel, s.MaxRecvDelivered)
	}
	if int64(sum.Messages) != st.Messages || int64(sum.Words) != st.Words {
		t.Errorf("sample sums msgs=%d words=%d, stats %d/%d", sum.Messages, sum.Words, st.Messages, st.Words)
	}
	if int64(sum.SendThrottled) != st.DroppedSendOverflow {
		t.Errorf("SendThrottled sum %d != DroppedSendOverflow %d", sum.SendThrottled, st.DroppedSendOverflow)
	}
	if int64(sum.RecvThrottled) != st.DroppedRecvOverflow {
		t.Errorf("RecvThrottled sum %d != DroppedRecvOverflow %d", sum.RecvThrottled, st.DroppedRecvOverflow)
	}
	if int64(sum.DroppedFault) != st.DroppedFault {
		t.Errorf("DroppedFault sum %d != stats %d", sum.DroppedFault, st.DroppedFault)
	}
	if sum.SendThrottled == 0 || sum.RecvThrottled == 0 || sum.DroppedFault == 0 {
		t.Errorf("test traffic should exercise every throttle path, got %+v", sum)
	}
	if maxSend != st.MaxSendLoad || maxOff != st.MaxRecvOffered || maxDel != st.MaxRecvDelivered {
		t.Errorf("sample maxima (%d,%d,%d) != stats (%d,%d,%d)",
			maxSend, maxOff, maxDel, st.MaxSendLoad, st.MaxRecvOffered, st.MaxRecvDelivered)
	}
}

// TestProbeWorkerInvariance pins the determinism guarantee the trace plane is
// built on: the sample series is bit-identical at any worker count.
func TestProbeWorkerInvariance(t *testing.T) {
	program := func(ctx *Context) {
		for r := 0; r < 5; r++ {
			hot := NodeID(r % ctx.N())
			if ctx.ID() != hot {
				ctx.SendWord(hot, Word(uint64(r)))
			}
			ctx.EndRound()
		}
	}
	run := func(workers int) []RoundSample {
		samples, _ := collectSamples(t, Config{N: 24, Seed: 42, CapFactor: 1, DropProb: 0.2, Workers: workers}, program)
		return samples
	}
	base := run(1)
	for _, w := range []int{3, 8} {
		if got := run(w); !slices.Equal(got, base) {
			t.Errorf("workers=%d sample series diverges from workers=1:\n got %+v\nwant %+v", w, got, base)
		}
	}
}

// TestProbeActiveQuiescent checks the active-node accounting: a node is
// active in a round iff it attempted to send or was offered traffic.
func TestProbeActiveQuiescent(t *testing.T) {
	samples, st := collectSamples(t, Config{N: 8, Seed: 1}, func(ctx *Context) {
		if ctx.ID() == 0 {
			ctx.SendWord(1, 1)
		}
		ctx.EndRound()
		ctx.EndRound()
	})
	if st.Rounds != 2 || len(samples) != 2 {
		t.Fatalf("rounds=%d samples=%d, want 2/2", st.Rounds, len(samples))
	}
	if samples[0].Active != 2 {
		t.Errorf("round 0 Active=%d, want 2 (one sender, one receiver)", samples[0].Active)
	}
	if samples[1].Active != 0 {
		t.Errorf("round 1 Active=%d, want 0 (all quiescent)", samples[1].Active)
	}
	if samples[0].Finished != 0 || samples[1].Finished != 0 {
		t.Errorf("Finished = %d,%d before any retirement", samples[0].Finished, samples[1].Finished)
	}
}

// TestProbeDownAndFinished checks the liveness columns against a scripted
// fault plan and staggered program exits.
func TestProbeDownAndFinished(t *testing.T) {
	plan := planFunc(func(round int) ([]Outage, []Revival) {
		switch round {
		case 1:
			return []Outage{{Node: 2}}, nil
		case 3:
			return nil, []Revival{{Node: 2}}
		}
		return nil, nil
	})
	samples, st := collectSamples(t, Config{N: 6, Seed: 3, FaultPlan: plan}, func(ctx *Context) {
		rounds := 5
		if ctx.ID() == 5 {
			rounds = 2 // retires early; later rounds see it as finished
		}
		for r := 0; r < rounds; r++ {
			ctx.SendWord((ctx.ID()+1)%ctx.N(), 1)
			ctx.EndRound()
		}
	})
	if len(samples) != st.Rounds {
		t.Fatalf("got %d samples for %d rounds", len(samples), st.Rounds)
	}
	wantDown := []int{0, 1, 1, 0, 0}
	for i, w := range wantDown {
		if samples[i].Down != w {
			t.Errorf("round %d Down=%d, want %d", i, samples[i].Down, w)
		}
	}
	// Node 5 exits after its second EndRound, so it is retired before round 2
	// moves messages.
	wantFin := []int{0, 0, 1, 1, 1}
	for i, w := range wantFin {
		if samples[i].Finished != w {
			t.Errorf("round %d Finished=%d, want %d", i, samples[i].Finished, w)
		}
	}
	var dead, fin int64
	for _, s := range samples {
		dead += int64(s.DroppedDead)
		fin += int64(s.DroppedToFinished)
	}
	if dead != st.DroppedDead || fin != st.DroppedToFinished {
		t.Errorf("drop sums dead=%d fin=%d, stats %d/%d", dead, fin, st.DroppedDead, st.DroppedToFinished)
	}
	if dead == 0 || fin == 0 {
		t.Errorf("test traffic should hit both drop paths, got dead=%d fin=%d", dead, fin)
	}
}

// TestProbePanicAborts: a panicking probe aborts the run like a panicking
// Observer, instead of crashing the process or deadlocking parked nodes.
func TestProbePanicAborts(t *testing.T) {
	cfg := Config{N: 4, Seed: 1, Probe: func(RoundSample, []ShardTiming) { panic("probe boom") }}
	_, err := Run(cfg, func(ctx *Context) {
		for {
			ctx.SendWord((ctx.ID()+1)%ctx.N(), 1)
			ctx.EndRound()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "probe boom") {
		t.Fatalf("err = %v, want probe panic", err)
	}
}

// TestProbeSteadyStateAllocs pins the probe plane's own allocation behavior:
// with a no-op probe attached, extra rounds still allocate (near) nothing —
// all probe scratch is provisioned at run start.
func TestProbeSteadyStateAllocs(t *testing.T) {
	const (
		n      = 256
		warmup = 5
		extra  = 100
	)
	noop := func(RoundSample, []ShardTiming) {}
	program := func(rounds int) func() {
		return func() {
			st, err := Run(Config{N: n, Seed: 1, CapFactor: 1, Workers: 1, Probe: noop}, func(ctx *Context) {
				for r := 0; r < rounds; r++ {
					for k := 1; k <= ctx.Cap(); k++ {
						ctx.SendWord((ctx.ID()+k)%ctx.N(), Word(uint64(k)))
					}
					ctx.EndRound()
				}
			})
			if err != nil {
				panic(err)
			}
			if st.Rounds != rounds {
				panic("unexpected round count")
			}
		}
	}
	short := testing.AllocsPerRun(3, program(warmup))
	long := testing.AllocsPerRun(3, program(warmup+extra))
	perRound := (long - short) / extra
	t.Logf("allocs with probe on: short=%v long=%v -> %.2f allocs/round", short, long, perRound)
	if perRound > 8 {
		t.Errorf("probing steady state allocates %.2f allocs/round, want ~0", perRound)
	}
}
