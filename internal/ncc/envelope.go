package ncc

import "unsafe"

// payloadKind discriminates the inline payload fast paths from boxed
// payloads. The dominant one- and two-word payloads travel as inline machine
// words, wider word payloads through per-node word arenas; any other Payload
// implementation stays behind the interface with its width cached once at
// Send time.
type payloadKind uint8

const (
	kindBoxed  payloadKind = iota // payload held in the boxed interface
	kindWord                      // one inline word in a
	kindWords2                    // two inline words in a, b
	kindWords                     // 3+ words; a = offset into the sender's word arena
)

// Envelope is a message in transit. Word and Words2 payloads are stored
// inline (no heap boxing); multi-word (3+) payloads sent through SendWords
// are represented by an offset into the sending node's word arena — the
// struct stays pointer-light and small, which matters because every message
// is copied through outbox and bucket slices each round. The engine resolves
// the offset against the sender's arena during delivery and hands observers
// boxed copies, so a kindWords Envelope never escapes the engine. Larger
// boxed payloads keep their interface with the Words() result cached at Send
// time, so the width is computed exactly once per message no matter how many
// engine phases or observers read it.
type Envelope struct {
	From NodeID
	To   NodeID
	a, b uint64

	boxed Payload
	kind  payloadKind
	width int32
}

// envelopeBytes is the in-memory size of one Envelope, used by the engine's
// provisioning heuristics.
const envelopeBytes = int(unsafe.Sizeof(Envelope{}))

// MakeEnvelope builds an Envelope as Context.Send would: Word and Words2
// payloads are inlined, anything else — including WordsN, whose zero-copy
// arena representation exists only relative to a sending Context — is boxed
// with its width cached. It is the constructor for tests and Observer
// tooling; the engine applies MaxWords validation on top of it.
func MakeEnvelope(from, to NodeID, p Payload) Envelope {
	switch v := p.(type) {
	case Word:
		return Envelope{From: from, To: to, a: uint64(v), kind: kindWord}
	case Words2:
		return Envelope{From: from, To: to, a: v[0], b: v[1], kind: kindWords2}
	default:
		return Envelope{From: from, To: to, boxed: p, kind: kindBoxed, width: int32(p.Words())}
	}
}

// Words reports the payload width in machine words, from the cached value —
// never by re-invoking Payload.Words on the delivery path.
func (e *Envelope) Words() int {
	switch e.kind {
	case kindWord:
		return 1
	case kindWords2:
		return 2
	default:
		return int(e.width)
	}
}

// Payload materializes the message content. Inline payloads are re-boxed on
// demand (the assertion `e.Payload().(T)` keeps working for every payload
// type); on allocation-sensitive paths prefer AsWord/AsWords2.
func (e *Envelope) Payload() Payload {
	switch e.kind {
	case kindWord:
		return Word(e.a)
	case kindWords2:
		return Words2{e.a, e.b}
	case kindWords:
		// The words live in the sending node's arena, which only the
		// engine can resolve; it boxes such envelopes before they reach
		// observers (see sendPhase), so this is unreachable from user code.
		panic("ncc: multi-word payload is engine-internal; observers receive boxed copies")
	default:
		return e.boxed
	}
}

// AsWord returns the payload as a Word without boxing, and whether the
// message carried exactly a Word.
func (e *Envelope) AsWord() (Word, bool) {
	if e.kind == kindWord {
		return Word(e.a), true
	}
	return 0, false
}

// AsWords2 returns the payload as a Words2 without boxing, and whether the
// message carried exactly a Words2.
func (e *Envelope) AsWords2() (Words2, bool) {
	if e.kind == kindWords2 {
		return Words2{e.a, e.b}, true
	}
	return Words2{}, false
}

// Received is a message delivered to a node at a round barrier. Like
// Envelope, it stores Word/Words2 payloads inline. The ref field overlays
// the two mutually-exclusive indirect cases so the struct stays as small as
// the pre-arena layout: a boxed Payload interface (kindBoxed), or a *uint64
// to the first payload word in the receiver's word arena (kindWords —
// storing a pointer in an `any` never allocates). The steady-state delivery
// path performs no heap allocation per message.
type Received struct {
	From NodeID
	a, b uint64

	ref   any
	kind  payloadKind
	width int32
}

// received converts an in-transit envelope into its delivered form. For
// kindWords the engine's receive phase copies the payload words out of the
// sender's arena (recycled as soon as the sender resumes) into the
// receiver's and points ref at them.
func (e *Envelope) received() Received {
	rc := Received{From: e.From, a: e.a, b: e.b, kind: e.kind, width: e.width}
	if e.boxed != nil {
		rc.ref = e.boxed
	}
	return rc
}

// words reassembles the arena-backed payload of a kindWords message.
func (m *Received) words() []uint64 {
	return unsafe.Slice(m.ref.(*uint64), m.width)
}

// Payload materializes the message content; inline payloads are re-boxed on
// demand. Type switches like `rc.Payload().(type)` work for every payload;
// use AsWord/AsWords2/AsWords on allocation-sensitive paths.
func (m *Received) Payload() Payload {
	switch m.kind {
	case kindWord:
		return Word(m.a)
	case kindWords2:
		return Words2{m.a, m.b}
	case kindWords:
		return WordsN(m.words())
	default:
		return m.ref.(Payload)
	}
}

// AsWord returns the payload as a Word without boxing, and whether the
// message carried exactly a Word.
func (m *Received) AsWord() (Word, bool) {
	if m.kind == kindWord {
		return Word(m.a), true
	}
	return 0, false
}

// AsWords2 returns the payload as a Words2 without boxing, and whether the
// message carried exactly a Words2.
func (m *Received) AsWords2() (Words2, bool) {
	if m.kind == kindWords2 {
		return Words2{m.a, m.b}, true
	}
	return Words2{}, false
}

// AsWords returns the payload words of a multi-word (3+) message without
// boxing, and whether the message carried one. The slice aliases the
// receiver's word arena and is only valid until the node's next EndRound,
// exactly like the inbox itself.
func (m *Received) AsWords() ([]uint64, bool) {
	if m.kind == kindWords {
		return m.words(), true
	}
	return nil, false
}
