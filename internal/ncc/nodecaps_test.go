package ncc

import (
	"reflect"
	"strings"
	"testing"
)

func TestNodeCapsValidation(t *testing.T) {
	base := Config{N: 4, Seed: 1}
	cases := []struct {
		caps []int
		want string
	}{
		{nil, ""},
		{[]int{8, 8, 8, 8}, ""},
		{[]int{8, 8, 8}, "entries"},
		{[]int{8, 0, 8, 8}, "NodeCaps[1]"},
	}
	for _, c := range cases {
		cfg := base
		cfg.NodeCaps = c.caps
		_, err := Run(cfg, func(ctx *Context) {})
		if c.want == "" {
			if err != nil {
				t.Errorf("caps %v: %v", c.caps, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("caps %v: err = %v, want %q", c.caps, err, c.want)
		}
	}
}

func TestNodeCapsContextViews(t *testing.T) {
	cfg := Config{N: 4, Seed: 1, NodeCaps: []int{3, 9, 5, 7}}
	caps := make([]int, 4)
	mins := make([]int, 4)
	if _, err := Run(cfg, func(ctx *Context) {
		caps[ctx.ID()] = ctx.Cap()
		mins[ctx.ID()] = ctx.MinCap()
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(caps, []int{3, 9, 5, 7}) {
		t.Errorf("Cap views = %v", caps)
	}
	if !reflect.DeepEqual(mins, []int{3, 3, 3, 3}) {
		t.Errorf("MinCap views = %v", mins)
	}
	// Uniform run: Cap == MinCap == Config.Cap().
	ucfg := Config{N: 4, Seed: 1, CapFactor: 2}
	if _, err := Run(ucfg, func(ctx *Context) {
		if ctx.Cap() != ctx.MinCap() || ctx.Cap() != ucfg.Cap() {
			panic("uniform Cap/MinCap mismatch")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeCapsEnforcement drives every node to flood one receiver and checks
// that each sender is truncated at its own cap and the receiver at its own.
func TestNodeCapsEnforcement(t *testing.T) {
	const n = 8
	caps := []int{4, 2, 3, 3, 3, 3, 3, 3} // node 0 receives; 1..7 send
	st, err := Run(Config{N: n, Seed: 7, NodeCaps: caps}, func(ctx *Context) {
		if ctx.ID() != 0 {
			// Everyone floods node 0 with more than their own send cap.
			for i := 0; i < 6; i++ {
				ctx.SendWord(0, Word(ctx.ID()))
			}
		}
		got := ctx.EndRound()
		if ctx.ID() == 0 && len(got) != 4 {
			panic("receiver 0 delivered beyond its cap")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Senders offered 7*6 = 42; send truncation leaves 2+3*6 = 20 on the
	// wire; receiver 0 keeps 4 of those.
	if st.DroppedSendOverflow != 42-20 {
		t.Errorf("DroppedSendOverflow = %d, want 22", st.DroppedSendOverflow)
	}
	if st.DroppedRecvOverflow != 20-4 {
		t.Errorf("DroppedRecvOverflow = %d, want 16", st.DroppedRecvOverflow)
	}
	if st.MaxRecvDelivered != 4 {
		t.Errorf("MaxRecvDelivered = %d", st.MaxRecvDelivered)
	}
	// Utilization: every sender hit its cap (util 1.0); node 0 sent nothing
	// but received at its cap, so it is 1.0 too.
	if st.CapUtilP50 != 1 || st.CapUtilMax != 1 {
		t.Errorf("capUtil p50=%v max=%v, want 1", st.CapUtilP50, st.CapUtilMax)
	}
}

func TestNodeCapsStrictPanicsPerNode(t *testing.T) {
	caps := []int{2, 8, 8, 8}
	_, err := Run(Config{N: 4, Seed: 1, Strict: true, NodeCaps: caps}, func(ctx *Context) {
		if ctx.ID() == 0 {
			// 3 messages exceed node 0's cap of 2, although the uniform base
			// (8 * log2 4 = 16) would have allowed them.
			ctx.SendWord(1, 1)
			ctx.SendWord(2, 1)
			ctx.SendWord(3, 1)
		}
		ctx.EndRound()
	})
	if err == nil || !strings.Contains(err.Error(), "capacity is 2") {
		t.Fatalf("err = %v", err)
	}
}

// TestNodeCapsWorkerInvariance pins the bit-identical-stats guarantee on a
// heterogeneous overloaded run: truncation subsets and utilization
// percentiles must not depend on the worker count.
func TestNodeCapsWorkerInvariance(t *testing.T) {
	const n = 64
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 3 + i%7
	}
	run := func(workers int) Stats {
		st, err := Run(Config{N: n, Seed: 99, Workers: workers, NodeCaps: caps}, func(ctx *Context) {
			for r := 0; r < 4; r++ {
				for k := 0; k < 2+ctx.ID()%9; k++ {
					ctx.SendWord((ctx.ID()+k+1)%n, Word(r))
				}
				ctx.EndRound()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	want := run(1)
	if want.DroppedRecvOverflow == 0 && want.DroppedSendOverflow == 0 {
		t.Fatal("test load never overflowed a capacity")
	}
	if want.CapUtilP50 <= 0 || want.CapUtilP90 < want.CapUtilP50 || want.CapUtilMax < want.CapUtilP90 {
		t.Fatalf("percentiles not ordered: %+v", want)
	}
	for _, w := range []int{2, 3, 7} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: stats diverge:\n got %+v\nwant %+v", w, got, want)
		}
	}
}
