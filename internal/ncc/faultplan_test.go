package ncc

import (
	"reflect"
	"testing"
)

// planFunc adapts a function to the FaultPlan interface for tests.
type planFunc func(round int) ([]Outage, []Revival)

func (f planFunc) Transitions(round int) ([]Outage, []Revival) { return f(round) }

// TestFaultPlanKill fail-stops one node mid-run: the victim must retire with
// no output, appear in Unfinished and DownAtEnd, and traffic addressed to it
// must be counted as DroppedDead — across worker counts, bit-identically.
func TestFaultPlanKill(t *testing.T) {
	const n = 24
	const victim = 5
	plan := planFunc(func(round int) ([]Outage, []Revival) {
		if round == 3 {
			return []Outage{{Node: victim, Kill: true}}, nil
		}
		return nil, nil
	})
	runWith := func(workers int) ([]int, Stats) {
		outs, st, err := Collect(Config{N: n, Seed: 11, Workers: workers, FaultPlan: plan},
			func(ctx *Context) int {
				for r := 0; r < 10; r++ {
					ctx.SendWord((ctx.ID()+1)%n, Word(r))
					ctx.EndRound()
				}
				return ctx.ID() + 100
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return outs, st
	}
	baseOut, base := runWith(1)
	if baseOut[victim] != 0 {
		t.Errorf("killed node produced output %d, want zero value", baseOut[victim])
	}
	if !reflect.DeepEqual(base.Unfinished, []int{victim}) || !reflect.DeepEqual(base.DownAtEnd, []int{victim}) {
		t.Errorf("unfinished=%v downAtEnd=%v, want both [%d]", base.Unfinished, base.DownAtEnd, victim)
	}
	if base.NodesKilled != 1 || base.DroppedDead == 0 {
		t.Errorf("nodesKilled=%d droppedDead=%d, want 1 and > 0", base.NodesKilled, base.DroppedDead)
	}
	for _, workers := range []int{2, 7} {
		gotOut, got := runWith(workers)
		if !reflect.DeepEqual(got, base) || !reflect.DeepEqual(gotOut, baseOut) {
			t.Errorf("workers=%d diverges from workers=1:\n  w1: %+v\n  w%d: %+v", workers, base, workers, got)
		}
	}
}

// TestFaultPlanOutageAndRevival suspends a node for a round window: messages
// through the window are suppressed in both directions, delivery resumes
// after revival, and the revived node is absent from DownAtEnd.
func TestFaultPlanOutageAndRevival(t *testing.T) {
	const n = 16
	const victim = 2
	plan := planFunc(func(round int) ([]Outage, []Revival) {
		switch round {
		case 2:
			return []Outage{{Node: victim}}, nil
		case 5:
			// Reset would also discard the message the victim buffered for
			// round 5; keep state so delivery resumes the moment service does.
			return nil, []Revival{{Node: victim}}
		}
		return nil, nil
	})
	recv := make([]int, 12) // messages node 0 got from victim, per round
	_, st, err := Collect(Config{N: n, Seed: 3, FaultPlan: plan}, func(ctx *Context) int {
		alive := 0
		for r := 0; r < 12; r++ {
			if ctx.ID() == victim {
				ctx.SendWord(0, Word(r))
			}
			if ctx.Alive() {
				alive++
			}
			for _, rc := range ctx.EndRound() {
				if ctx.ID() == 0 && rc.From == victim {
					recv[r]++
				}
			}
		}
		return alive
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		suppressed := r >= 2 && r < 5
		if got := recv[r]; (got == 0) != suppressed {
			t.Errorf("round %d: node 0 received %d messages from suspended-window victim (window [2,5))", r, got)
		}
	}
	if st.NodesDowned != 1 || st.NodesRevived != 1 {
		t.Errorf("downed=%d revived=%d, want 1/1", st.NodesDowned, st.NodesRevived)
	}
	if len(st.DownAtEnd) != 0 || len(st.Unfinished) != 0 {
		t.Errorf("downAtEnd=%v unfinished=%v, want empty", st.DownAtEnd, st.Unfinished)
	}
}

// TestFaultPlanPanicIsolation: with a plan attached, a panicking node program
// is retired as a crash (counted, listed in Unfinished) instead of failing
// the run; without a plan the panic still aborts the run.
func TestFaultPlanPanicIsolation(t *testing.T) {
	program := func(ctx *Context) int {
		ctx.SendWord((ctx.ID()+1)%8, 1)
		ctx.EndRound()
		if ctx.ID() == 4 {
			for {
				if ctx.Round() == 2 {
					panic("synthetic protocol violation")
				}
				ctx.EndRound()
			}
		}
		return 7
	}
	noop := planFunc(func(int) ([]Outage, []Revival) { return nil, nil })
	outs, st, err := Collect(Config{N: 8, Seed: 1, FaultPlan: noop}, program)
	if err != nil {
		t.Fatalf("isolated run failed: %v", err)
	}
	if st.NodeFailures != 1 || !reflect.DeepEqual(st.Unfinished, []int{4}) {
		t.Errorf("nodeFailures=%d unfinished=%v, want 1 and [4]", st.NodeFailures, st.Unfinished)
	}
	if outs[4] != 0 {
		t.Errorf("crashed node produced output %d", outs[4])
	}
	if _, _, err := Collect(Config{N: 8, Seed: 1}, program); err == nil {
		t.Error("without a fault plan the panic must abort the run")
	}
}
