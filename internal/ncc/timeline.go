package ncc

// Timeline is an Observer that records a per-round traffic series — the raw
// material for round/load plots (e.g. visualizing an algorithm's phase
// structure or the O(log n) load discipline over time).
type Timeline struct {
	Samples []RoundSample

	per map[NodeID]int // per-receiver counts, reused across rounds
}

// RoundSample summarizes one round's transmitted traffic.
type RoundSample struct {
	Messages int
	Words    int
	// MaxRecvOffered is the largest number of messages addressed to a single
	// node this round.
	MaxRecvOffered int
}

// ObserveRound implements Observer.
func (tl *Timeline) ObserveRound(round int, msgs []Envelope) {
	var s RoundSample
	if tl.per == nil {
		tl.per = make(map[NodeID]int, 64)
	}
	clear(tl.per)
	for i := range msgs {
		e := &msgs[i]
		s.Messages++
		s.Words += e.Words() // cached at Send time, never recomputed
		tl.per[e.To]++
	}
	for _, c := range tl.per {
		if c > s.MaxRecvOffered {
			s.MaxRecvOffered = c
		}
	}
	tl.Samples = append(tl.Samples, s)
}

// Busiest returns the index and sample of the round with the most messages
// (zeroes if the timeline is empty).
func (tl *Timeline) Busiest() (int, RoundSample) {
	best := -1
	var out RoundSample
	for i, s := range tl.Samples {
		if best == -1 || s.Messages > out.Messages {
			best, out = i, s
		}
	}
	if best == -1 {
		return 0, RoundSample{}
	}
	return best, out
}

// TotalMessages sums the series.
func (tl *Timeline) TotalMessages() int64 {
	var t int64
	for _, s := range tl.Samples {
		t += int64(s.Messages)
	}
	return t
}
