package ncc

import "testing"

func sample(msgs, words, maxRecv int) RoundSample {
	return RoundSample{Messages: msgs, Words: words, MaxRecvOffered: maxRecv}
}

func TestTimelineRecordsOneSamplePerRound(t *testing.T) {
	tl := &Timeline{}
	tl.Sample(sample(3, 3, 2), nil)
	tl.Sample(RoundSample{Round: 1}, nil)
	tl.Sample(sample(1, 1, 1), nil)
	if len(tl.Samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(tl.Samples))
	}
	s0 := tl.Samples[0]
	if s0.Messages != 3 || s0.Words != 3 || s0.MaxRecvOffered != 2 {
		t.Errorf("round 0 sample = %+v, want 3 msgs, 3 words, maxRecv 2", s0)
	}
	if tl.Samples[1] != (RoundSample{Round: 1}) {
		t.Errorf("empty round sample = %+v, want zero counters", tl.Samples[1])
	}
}

func TestTimelineBusiestAndTotal(t *testing.T) {
	tl := &Timeline{}
	if i, s := tl.Busiest(); i != 0 || s != (RoundSample{}) {
		t.Errorf("empty timeline Busiest = (%d, %+v)", i, s)
	}
	tl.Sample(sample(1, 1, 1), nil)
	tl.Sample(sample(3, 3, 1), nil)
	tl.Sample(sample(2, 2, 1), nil)
	i, s := tl.Busiest()
	if i != 1 || s.Messages != 3 {
		t.Errorf("Busiest = (%d, %+v), want round 1 with 3 messages", i, s)
	}
	if got := tl.TotalMessages(); got != 6 {
		t.Errorf("TotalMessages = %d, want 6", got)
	}
}

func TestTimelineAsRunProbe(t *testing.T) {
	tl := &Timeline{}
	const n = 8
	st, err := Run(Config{N: n, Seed: 1, Probe: tl.Sample}, func(ctx *Context) {
		for r := 0; r < 5; r++ {
			ctx.Send((ctx.ID()+1)%n, Word(uint64(r)))
			ctx.EndRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Samples) != st.Rounds {
		t.Errorf("timeline has %d samples, run took %d rounds", len(tl.Samples), st.Rounds)
	}
	if tl.TotalMessages() != st.Messages {
		t.Errorf("timeline counted %d messages, stats say %d", tl.TotalMessages(), st.Messages)
	}
}
