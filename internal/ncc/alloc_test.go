package ncc

import "testing"

// TestSteadyStateAllocs pins the zero-allocation property of the message
// plane: once per-node buffers have warmed up (a handful of rounds), extra
// rounds of capacity-saturating Word traffic must allocate nothing per
// message — no payload boxing, no per-round barrier channels, no staging
// buffers. It measures the allocation *difference* between a short and a
// long run of the same traffic shape, so one-time setup costs (goroutines,
// contexts, warm-up growth) cancel out.
func TestSteadyStateAllocs(t *testing.T) {
	const (
		n        = 256
		warmup   = 5
		extra    = 100
		workers  = 1 // AllocsPerRun pins GOMAXPROCS to 1 anyway
		perMsgOK = 0.01
	)
	program := func(rounds int) func() {
		return func() {
			st, err := Run(Config{N: n, Seed: 1, CapFactor: 1, Workers: workers}, func(ctx *Context) {
				for r := 0; r < rounds; r++ {
					for k := 1; k <= ctx.Cap(); k++ {
						ctx.SendWord((ctx.ID()+k)%ctx.N(), Word(uint64(k)))
					}
					ctx.EndRound()
				}
			})
			if err != nil {
				panic(err)
			}
			if st.Rounds != rounds {
				panic("unexpected round count")
			}
		}
	}
	short := testing.AllocsPerRun(3, program(warmup))
	long := testing.AllocsPerRun(3, program(warmup+extra))

	capacity := (Config{N: n, CapFactor: 1}).Cap()
	extraMsgs := float64(extra * n * capacity)
	perMsg := (long - short) / extraMsgs
	perRound := (long - short) / extra
	t.Logf("allocs: short=%v long=%v -> %.5f allocs/message, %.2f allocs/round", short, long, perMsg, perRound)
	if perMsg > perMsgOK {
		t.Errorf("steady state allocates %.5f allocs/message (limit %v): the zero-allocation message plane regressed", perMsg, perMsgOK)
	}
	// A round barrier must not allocate either (the old engine paid one
	// make(chan) per round plus boxing; allow a little GC noise).
	if perRound > 8 {
		t.Errorf("steady state allocates %.2f allocs/round, want ~0: per-round allocation crept back in", perRound)
	}
}
