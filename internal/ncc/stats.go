package ncc

import (
	"fmt"
	"sync/atomic"
)

// Stats aggregates what happened during a run. All load figures are measured
// per node per round. The JSON field names are part of the scenario Record
// format written by the CLIs' -json modes.
type Stats struct {
	// Rounds is the number of completed communication rounds.
	Rounds int `json:"rounds"`

	// Messages counts messages accepted for transmission.
	Messages int64 `json:"messages"`

	// Words counts payload words accepted for transmission.
	Words int64 `json:"words"`

	// MaxSendLoad is the maximum number of messages any node attempted to
	// send in a single round (before send-capacity enforcement).
	MaxSendLoad int `json:"maxSendLoad"`

	// MaxRecvOffered is the maximum number of messages addressed to a
	// single node in a single round (before receive-capacity truncation).
	// The model's w.h.p. guarantees say this stays O(log n); experiment
	// E-LOAD checks it.
	MaxRecvOffered int `json:"maxRecvOffered"`

	// MaxRecvDelivered is the maximum number of messages actually
	// delivered to a node in one round (always <= capacity).
	MaxRecvDelivered int `json:"maxRecvDelivered"`

	// DroppedRecvOverflow counts messages dropped because more than cap
	// messages were addressed to one node in one round.
	DroppedRecvOverflow int64 `json:"droppedRecvOverflow,omitempty"`

	// DroppedSendOverflow counts messages dropped because a node tried to
	// send more than cap messages in one round (non-strict mode only).
	DroppedSendOverflow int64 `json:"droppedSendOverflow,omitempty"`

	// DroppedFault counts messages dropped by DropProb or Interceptor.
	DroppedFault int64 `json:"droppedFault,omitempty"`

	// DroppedToFinished counts messages addressed to nodes whose program
	// had already returned.
	DroppedToFinished int64 `json:"droppedToFinished,omitempty"`

	// DroppedDead counts messages suppressed because the sender or receiver
	// was out of service under the run's FaultPlan.
	DroppedDead int64 `json:"droppedDead,omitempty"`

	// NodesKilled / NodesDowned / NodesRevived count applied fault-plan
	// transitions: permanent fail-stops, suspensions, and returns to service.
	NodesKilled  int64 `json:"nodesKilled,omitempty"`
	NodesDowned  int64 `json:"nodesDowned,omitempty"`
	NodesRevived int64 `json:"nodesRevived,omitempty"`

	// NodeFailures counts node programs that panicked and were retired as
	// crashes under failure isolation (FaultPlan set) instead of aborting
	// the run.
	NodeFailures int64 `json:"nodeFailures,omitempty"`

	// CapUtilP50/P90/Max summarize per-node capacity utilization on
	// heterogeneous runs (Config.NodeCaps set): each node's highest
	// single-round post-truncation load in either direction, as a fraction of
	// its own capacity; nearest-rank percentiles over all nodes, rounded to
	// 1e-4. Zero (omitted) on uniform runs.
	CapUtilP50 float64 `json:"capUtilP50,omitempty"`
	CapUtilP90 float64 `json:"capUtilP90,omitempty"`
	CapUtilMax float64 `json:"capUtilMax,omitempty"`

	// Unfinished lists (sorted) the nodes that produced no output: programs
	// that never returned, were fail-stopped, or crashed under isolation.
	// DownAtEnd lists the nodes out of service when the run ended (killed or
	// in an unrevived outage). Populated only when a FaultPlan is set — on a
	// reliable run both are always empty.
	Unfinished []int `json:"unfinished,omitempty"`
	DownAtEnd  []int `json:"downAtEnd,omitempty"`
}

// Dropped returns the total number of messages dropped for any reason.
func (s Stats) Dropped() int64 {
	return s.DroppedRecvOverflow + s.DroppedSendOverflow + s.DroppedFault + s.DroppedToFinished + s.DroppedDead
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d words=%d maxSend=%d maxRecvOffered=%d dropped=%d",
		s.Rounds, s.Messages, s.Words, s.MaxSendLoad, s.MaxRecvOffered, s.Dropped())
}

// Process-lifetime traffic totals, bumped once per completed Run (not on the
// per-message hot path). They let a harness that triggers many nested runs —
// cmd/nccbench wraps whole experiments, which run simulations through the
// algorithm registry, baselines, and the k-machine simulator — meter the
// total payload volume moved without threading every Stats value out.
var processMessages, processWords, processRounds atomic.Int64

// TrafficTotals returns the cumulative messages and payload words accepted
// for transmission across every Run completed in this process. Subtract two
// snapshots to meter an interval.
func TrafficTotals() (messages, words int64) {
	return processMessages.Load(), processWords.Load()
}

// RoundsTotal returns the cumulative number of communication rounds completed
// across every Run in this process. The serving layer derives its rounds/s
// gauge from two snapshots of this counter.
func RoundsTotal() int64 {
	return processRounds.Load()
}
