package ncc

import "fmt"

// Stats aggregates what happened during a run. All load figures are measured
// per node per round.
type Stats struct {
	// Rounds is the number of completed communication rounds.
	Rounds int

	// Messages counts messages accepted for transmission.
	Messages int64

	// Words counts payload words accepted for transmission.
	Words int64

	// MaxSendLoad is the maximum number of messages any node attempted to
	// send in a single round (before send-capacity enforcement).
	MaxSendLoad int

	// MaxRecvOffered is the maximum number of messages addressed to a
	// single node in a single round (before receive-capacity truncation).
	// The model's w.h.p. guarantees say this stays O(log n); experiment
	// E-LOAD checks it.
	MaxRecvOffered int

	// MaxRecvDelivered is the maximum number of messages actually
	// delivered to a node in one round (always <= capacity).
	MaxRecvDelivered int

	// DroppedRecvOverflow counts messages dropped because more than cap
	// messages were addressed to one node in one round.
	DroppedRecvOverflow int64

	// DroppedSendOverflow counts messages dropped because a node tried to
	// send more than cap messages in one round (non-strict mode only).
	DroppedSendOverflow int64

	// DroppedFault counts messages dropped by DropProb or Interceptor.
	DroppedFault int64

	// DroppedToFinished counts messages addressed to nodes whose program
	// had already returned.
	DroppedToFinished int64
}

// Dropped returns the total number of messages dropped for any reason.
func (s Stats) Dropped() int64 {
	return s.DroppedRecvOverflow + s.DroppedSendOverflow + s.DroppedFault + s.DroppedToFinished
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d words=%d maxSend=%d maxRecvOffered=%d dropped=%d",
		s.Rounds, s.Messages, s.Words, s.MaxSendLoad, s.MaxRecvOffered, s.Dropped())
}
