package ncc

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
)

// NodeID identifies a node of the Node-Capacitated Clique. Ids are dense:
// 0..N-1, known to every node (the clique assumption of the model).
type NodeID = int

// Payload is the content of a message. Words reports the payload size in
// machine words, where one word stands for Theta(log n) bits; the model
// allows O(log n)-bit messages, i.e. a constant number of words. The runtime
// rejects payloads larger than Config.MaxWords.
type Payload interface {
	Words() int
}

// Observer is notified once per round with every message accepted for
// transmission that round (after send-capacity enforcement, before
// receive-capacity truncation). The slice must not be retained.
type Observer interface {
	ObserveRound(round int, msgs []Envelope)
}

// Interceptor decides the fate of a single transmitted message; returning
// false drops it. It models targeted link faults for failure-injection tests.
type Interceptor func(round int, from, to NodeID) bool

// Outage takes one node out of service at a round boundary. A plain outage
// suspends the node: its program keeps executing, but every message it sends
// or is sent is suppressed until a Revival returns it to service (the node is
// partitioned, not stopped — the engine cannot checkpoint a goroutine). Kill
// makes the outage permanent fail-stop: the node's program is unwound at its
// next round barrier and it retires with no output, exactly like a program
// that never returned.
type Outage struct {
	Node NodeID
	Kill bool
}

// Revival returns a suspended node to service. Reset additionally reseeds the
// node's private random source (from the run seed and the revival round, so
// runs stay deterministic) and discards its unsent outbox, modelling a rejoin
// with fresh volatile state; program variables are preserved either way.
type Revival struct {
	Node  NodeID
	Reset bool
}

// FaultPlan schedules node-liveness transitions. The coordinator calls
// Transitions exactly once per round r = 0, 1, 2, ... while every node is
// parked at the round barrier, and applies the returned outages and revivals
// before the round's messages move. Implementations must be pure functions of
// the plan and the round — never of goroutine scheduling — to preserve the
// engine's bit-for-bit determinism; they run on the coordinator goroutine
// only. Transitions naming finished, already-down (for outages), or in-service
// (for revivals) nodes are ignored.
type FaultPlan interface {
	Transitions(round int) (down []Outage, up []Revival)
}

// Config parameterizes a simulation run.
type Config struct {
	// N is the number of nodes; must be at least 1.
	N int

	// CapFactor is the constant hidden in the O(log n) capacity bound:
	// a node may send and receive up to CapFactor*ceil(log2 N) messages
	// per round (at least 1). Defaults to DefaultCapFactor.
	CapFactor int

	// MaxWords bounds the payload size of a single message in words of
	// Theta(log n) bits. Defaults to DefaultMaxWords. Oversized payloads
	// panic: they are always a program bug, never a network condition.
	MaxWords int

	// Seed makes the run deterministic.
	Seed int64

	// Strict makes send-capacity violations panic instead of silently
	// dropping the excess (receive overflow is always resolved by dropping,
	// as the model specifies).
	Strict bool

	// MaxRounds aborts the run with ErrMaxRounds when exceeded, so a
	// protocol bug fails a test instead of hanging it. Defaults to
	// DefaultMaxRounds.
	MaxRounds int

	// DropProb drops each transmitted message independently with this
	// probability (fault injection). Zero means a reliable network, which
	// is what the model specifies below the capacity bound.
	DropProb float64

	// Interceptor, if non-nil, can drop individual messages. With Workers >
	// 1 it is called from multiple goroutines concurrently and must be safe
	// for concurrent use (pure functions trivially are).
	Interceptor Interceptor

	// FaultPlan, if non-nil, schedules node crashes, outages, and revivals
	// (see the FaultPlan docs for timing and determinism requirements). A
	// non-nil plan also switches the engine to failure-isolation mode: a
	// panicking node program is retired as a crashed node (counted in
	// Stats.NodeFailures) instead of aborting the run, and Stats reports the
	// unfinished and down node sets at the end of the run.
	FaultPlan FaultPlan

	// Observer, if non-nil, sees every round's transmitted messages. It is
	// always called from a single goroutine, regardless of Workers.
	Observer Observer

	// Probe, if non-nil, receives one RoundSample per completed round — the
	// engine's telemetry plane (see RoundProbe). It is called on the
	// coordinator goroutine between rounds. When nil, the engine performs no
	// probe work at all: the plane is zero-overhead when off.
	Probe RoundProbe

	// Workers is the number of goroutines the coordinator uses to filter,
	// group, and deliver each round's traffic. 0 (the default) means
	// GOMAXPROCS. Runs are bit-for-bit deterministic for a fixed Seed
	// regardless of Workers: every random decision is seeded per (round,
	// node), never drawn from a shared stream.
	Workers int

	// NodeCaps, if non-nil, gives every node its own per-round send/receive
	// capacity in messages (the paper's weighted-capacity extension for
	// heterogeneous real networks), overriding the uniform Cap() for
	// enforcement. len(NodeCaps) must equal N and every entry must be >= 1.
	// Shared pacing constants derived inside node programs should use
	// Context.MinCap so every node computes the same schedule.
	NodeCaps []int

	// Cancel, if non-nil, aborts the run when it becomes readable (typically
	// by closing it). The coordinator checks it at every round barrier, so an
	// in-flight run unwinds within one round of the cancellation: parked
	// nodes are released with the abort bit set and Run returns ErrCanceled.
	// Cancellation cannot preempt a node program that never reaches its next
	// EndRound; that is what MaxRounds-style guards are for.
	Cancel <-chan struct{}
}

// Default configuration constants.
const (
	DefaultCapFactor = 8
	DefaultMaxWords  = 12
	DefaultMaxRounds = 1 << 21
)

// ErrMaxRounds reports that a run exceeded Config.MaxRounds.
var ErrMaxRounds = errors.New("ncc: exceeded maximum number of rounds")

// ErrCanceled reports that a run was aborted through Config.Cancel.
var ErrCanceled = errors.New("ncc: run canceled")

func (c Config) withDefaults() Config {
	if c.CapFactor == 0 {
		c.CapFactor = DefaultCapFactor
	}
	if c.MaxWords == 0 {
		c.MaxWords = DefaultMaxWords
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = DefaultMaxRounds
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("ncc: config N = %d, need N >= 1", c.N)
	}
	if c.CapFactor < 1 {
		return fmt.Errorf("ncc: config CapFactor = %d, need >= 1", c.CapFactor)
	}
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("ncc: config DropProb = %v out of [0,1]", c.DropProb)
	}
	if c.Workers < 0 {
		return fmt.Errorf("ncc: config Workers = %d, need >= 0", c.Workers)
	}
	if c.MaxWords < 1 {
		return fmt.Errorf("ncc: config MaxWords = %d, need >= 1", c.MaxWords)
	}
	if c.NodeCaps != nil {
		if len(c.NodeCaps) != c.N {
			return fmt.Errorf("ncc: config NodeCaps has %d entries for N = %d", len(c.NodeCaps), c.N)
		}
		for id, cp := range c.NodeCaps {
			if cp < 1 {
				return fmt.Errorf("ncc: config NodeCaps[%d] = %d, need >= 1", id, cp)
			}
		}
	}
	return nil
}

// Cap returns the uniform per-round, per-direction message capacity for this
// config — the capacity of every node when NodeCaps is nil, and the base
// value heterogeneous capacity policies scale from.
func (c Config) Cap() int {
	f := c.CapFactor
	if f == 0 {
		f = DefaultCapFactor
	}
	return f * max(1, CeilLog2(c.N))
}

// MinCap returns the smallest per-node capacity of the run: Cap() for uniform
// configs, the minimum NodeCaps entry otherwise. Node programs use it for
// pacing constants that must be identical at every node.
func (c Config) MinCap() int {
	if len(c.NodeCaps) == 0 {
		return c.Cap()
	}
	m := c.NodeCaps[0]
	for _, cp := range c.NodeCaps[1:] {
		if cp < m {
			m = cp
		}
	}
	return m
}

// CeilLog2 returns ceil(log2(n)) for n >= 1 (0 for n = 1).
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// FloorLog2 returns floor(log2(n)) for n >= 1 (-1 for n < 1, matching the
// historical loop-based implementation).
func FloorLog2(n int) int {
	if n < 1 {
		return -1
	}
	return bits.Len(uint(n)) - 1
}
