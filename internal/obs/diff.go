package obs

import (
	"fmt"
	"io"
)

// WriteDiff compares two parsed traces structurally (canonical content only —
// timing lines are ignored) and writes a localization report: which runs
// differ, by how much, and in which round ranges. It returns true when the
// canonical content is identical. Output is deterministic, pinned by golden
// tests, and designed for regression hunting: run it on the traces of a good
// and a bad build of the same scenario and the diverging round ranges point
// at the algorithm phase that regressed.
func WriteDiff(w io.Writer, aName, bName string, a, b *Trace) bool {
	same := true
	if len(a.Runs) != len(b.Runs) {
		fmt.Fprintf(w, "runs: %d in %s vs %d in %s\n", len(a.Runs), aName, len(b.Runs), bName)
		same = false
	}
	n := min(len(a.Runs), len(b.Runs))
	for i := 0; i < n; i++ {
		if !diffRun(w, i, &a.Runs[i], &b.Runs[i]) {
			same = false
		}
	}
	if same {
		fmt.Fprintf(w, "traces identical: %d runs, %d rounds\n", len(a.Runs), a.Rounds())
	}
	return same
}

func diffRun(w io.Writer, i int, a, b *RunTrace) bool {
	same := true
	note := func(format string, args ...any) {
		if same {
			fmt.Fprintf(w, "run %d:\n", i)
			same = false
		}
		fmt.Fprintf(w, "  "+format+"\n", args...)
	}
	if a.Header != b.Header {
		note("header %+v vs %+v", a.Header, b.Header)
	}
	if a.End != b.End {
		note("rounds %d vs %d (%+d), msgs %d vs %d (%+d), words %d vs %d (%+d), failed %v vs %v",
			a.End.Rounds, b.End.Rounds, b.End.Rounds-a.End.Rounds,
			a.End.Msgs, b.End.Msgs, b.End.Msgs-a.End.Msgs,
			a.End.Words, b.End.Words, b.End.Words-a.End.Words,
			a.End.Failed, b.End.Failed)
	}
	// Localize: maximal ranges of diverging rounds, with the message delta
	// per range. Rounds beyond the shorter series always diverge.
	type span struct {
		first, last int
		dmsgs       int64
	}
	var spans []span
	long := max(len(a.Rounds), len(b.Rounds))
	for r := 0; r < long; r++ {
		var dm int64
		differs := false
		switch {
		case r >= len(a.Rounds):
			differs, dm = true, int64(b.Rounds[r].Messages)
		case r >= len(b.Rounds):
			differs, dm = true, -int64(a.Rounds[r].Messages)
		case a.Rounds[r] != b.Rounds[r]:
			differs, dm = true, int64(b.Rounds[r].Messages)-int64(a.Rounds[r].Messages)
		}
		if !differs {
			continue
		}
		if len(spans) > 0 && spans[len(spans)-1].last == r-1 {
			spans[len(spans)-1].last = r
			spans[len(spans)-1].dmsgs += dm
		} else {
			spans = append(spans, span{first: r, last: r, dmsgs: dm})
		}
	}
	if len(spans) > 0 {
		note("first divergence at round %d; %d diverging range(s):", spans[0].first, len(spans))
		const maxSpans = 8
		for k, sp := range spans {
			if k == maxSpans {
				fmt.Fprintf(w, "    ... %d more range(s) elided\n", len(spans)-maxSpans)
				break
			}
			fmt.Fprintf(w, "    rounds %d-%d (%+d msgs)\n", sp.first, sp.last, sp.dmsgs)
		}
	}
	return same
}
