package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Phase is a maximal range of rounds sharing an activity signature: the same
// message-volume band (log2 of messages per round) and the same
// throttle/fault flags. Algorithm stages — doubling phases, broadcast waves,
// drain-out tails — show up as distinct bands, so the segmentation recovers
// the phase structure without any protocol knowledge.
type Phase struct {
	First, Last int // inclusive round range
	Msgs        int64
	MaxRecv     int
	Label       string
}

// phaseSig buckets a round for phase segmentation.
type phaseSig struct {
	band      int // bits.Len(msgs): 0 = quiet, k = [2^(k-1), 2^k)
	throttled bool
	faulty    bool
}

// phases segments one run's rounds.
func phases(rt *RunTrace) []Phase {
	var out []Phase
	var cur phaseSig
	for i, s := range rt.Rounds {
		sig := phaseSig{
			band:      bits.Len(uint(s.Messages)),
			throttled: s.SendThrottled > 0 || s.RecvThrottled > 0,
			faulty:    s.DroppedFault > 0 || s.DroppedDead > 0 || s.Down > 0,
		}
		if i == 0 || sig != cur || s.Round == 0 && i > 0 {
			out = append(out, Phase{First: i, Last: i, Label: sigLabel(sig)})
			cur = sig
		}
		p := &out[len(out)-1]
		p.Last = i
		p.Msgs += int64(s.Messages)
		p.MaxRecv = max(p.MaxRecv, s.MaxRecvOffered)
	}
	return out
}

func sigLabel(sig phaseSig) string {
	var b strings.Builder
	if sig.band == 0 {
		b.WriteString("quiet")
	} else {
		fmt.Fprintf(&b, "load~2^%d", sig.band-1)
	}
	if sig.throttled {
		b.WriteString("+throttle")
	}
	if sig.faulty {
		b.WriteString("+faults")
	}
	return b.String()
}

// sparkline renders per-round message counts as a fixed-width curve, scaled
// to the series maximum. Deterministic: pure arithmetic on the samples.
func sparkline(vals []int, width int) string {
	if len(vals) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if len(vals) < width {
		width = len(vals)
	}
	peak := 0
	for _, v := range vals {
		peak = max(peak, v)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		avg := float64(sum) / float64(hi-lo)
		if peak == 0 {
			b.WriteRune(levels[0])
			continue
		}
		k := int(math.Round(avg / float64(peak) * float64(len(levels)-1)))
		b.WriteRune(levels[k])
	}
	return b.String()
}

// pct returns the p-quantile of sorted vals by the ceil rule the engine's
// capacity-utilization stats use.
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	k := max(0, int(math.Ceil(p*float64(len(sorted))))-1)
	return sorted[k]
}

// WriteSummary renders the human-readable trace summary: per run, the header
// identity, traffic totals, phase table, round-rate curve, and — when the
// trace carries timing lines — shard-imbalance percentiles. Output is a pure
// function of the trace bytes, pinned by golden tests.
func WriteSummary(w io.Writer, t *Trace) {
	for ri := range t.Runs {
		rt := &t.Runs[ri]
		h := &rt.Header
		fmt.Fprintf(w, "run %d: algo=%s graph=%s n=%d seed=%d cap=%d\n", ri, orDash(h.Algo), orDash(h.Graph), h.N, h.Seed, h.Cap)
		if h.Scenario != "" {
			fmt.Fprintf(w, "  scenario %s\n", h.Scenario)
		}
		status := "ok"
		if rt.End.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(w, "  %d rounds, %d msgs, %d words [%s]\n", rt.End.Rounds, rt.End.Msgs, rt.End.Words, status)
		var thr, faults int64
		rates := make([]int, len(rt.Rounds))
		for i, s := range rt.Rounds {
			rates[i] = s.Messages
			thr += int64(s.SendThrottled + s.RecvThrottled)
			faults += int64(s.DroppedFault + s.DroppedDead + s.DroppedToFinished)
		}
		if thr > 0 || faults > 0 {
			fmt.Fprintf(w, "  dropped: %d throttled, %d faults/dead/finished\n", thr, faults)
		}
		if len(rt.Rounds) == 0 {
			continue
		}
		fmt.Fprintf(w, "  phases:\n")
		for i, p := range phases(rt) {
			n := p.Last - p.First + 1
			fmt.Fprintf(w, "    %2d  rounds %d-%d (%d)  %s  %.1f msgs/round, peak recv %d\n",
				i+1, p.First, p.Last, n, p.Label, float64(p.Msgs)/float64(n), p.MaxRecv)
		}
		fmt.Fprintf(w, "  rate: %s (peak %d msgs/round)\n", sparkline(rates, 48), maxOf(rates))
		writeImbalance(w, rt)
	}
}

// writeImbalance reports shard-imbalance percentiles over rounds: for each
// timed round, the slowest shard's delivery time over the mean. 1.00 is a
// perfectly balanced round.
func writeImbalance(w io.Writer, rt *RunTrace) {
	var imbs []float64
	for _, g := range rt.Timing {
		if len(g.Shards) == 0 {
			continue
		}
		var tot, peak int64
		for _, sh := range g.Shards {
			d := sh[1] + sh[2] // send + recv nanos
			tot += d
			peak = max(peak, d)
		}
		if tot > 0 {
			mean := float64(tot) / float64(len(g.Shards))
			imbs = append(imbs, float64(peak)/mean)
		}
	}
	if len(imbs) == 0 {
		fmt.Fprintf(w, "  shard timing: not recorded (trace with -trace-timing to capture)\n")
		return
	}
	sort.Float64s(imbs)
	fmt.Fprintf(w, "  shard imbalance (slowest/mean): p50 %.2f, p90 %.2f, max %.2f over %d timed rounds\n",
		pct(imbs, 0.50), pct(imbs, 0.90), pct(imbs, 1), len(imbs))
}

// WritePhases emits the phase table in a machine-readable form. With
// pprofLabels it is framed as a pprof tag map: CPU profiles captured with
// `nccrun -cpuprofile` label every sample with its run index (run=N) and
// scenario hash, so `go tool pprof -tagfocus run=N` isolates a run and this
// table says which algorithm phases (round ranges) that run spent its
// messages in.
func WritePhases(w io.Writer, t *Trace, pprofLabels bool) {
	if pprofLabels {
		fmt.Fprintf(w, "# pprof tag map for profiles captured with `nccrun -cpuprofile`\n")
		fmt.Fprintf(w, "# isolate a run: go tool pprof -tagfocus run=<i> <profile>\n")
	}
	for ri := range t.Runs {
		rt := &t.Runs[ri]
		if pprofLabels {
			fmt.Fprintf(w, "run=%d scenario=%s algo=%s\n", ri, orDash(rt.Header.Scenario), orDash(rt.Header.Algo))
		}
		for i, p := range phases(rt) {
			if pprofLabels {
				fmt.Fprintf(w, "  phase=%d rounds=%d-%d label=%s msgs=%d\n", i+1, p.First, p.Last, p.Label, p.Msgs)
			} else {
				fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\t%d\n", ri, i+1, p.First, p.Last, p.Label, p.Msgs)
			}
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func maxOf(vals []int) int {
	m := 0
	for _, v := range vals {
		m = max(m, v)
	}
	return m
}
