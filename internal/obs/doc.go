// Package obs is the run-trace telemetry plane: it serializes the engine's
// per-round probe samples (ncc.RoundSample) into a canonical NDJSON trace,
// parses and validates traces, and renders the analyses behind the ncctrace
// CLI (summary, diff, phase export).
//
// # Trace format (version 1)
//
// A trace is newline-delimited JSON. Every line is an object whose first key
// is "t", the line type:
//
//	{"t":"h","v":1,"run":0,"scenario":"sha256:…","algo":"broadcast","graph":"ring",
//	 "n":128,"seed":1,"cap":56}
//	{"t":"r","round":0,"msgs":128,"delivered":128,"words":128,"active":128,
//	 "maxSend":1,"maxRecv":1,"maxRecvDelivered":1}
//	{"t":"e","run":0,"rounds":12,"msgs":1536,"words":1536}
//
// A run segment is one header ("h"), the run's round samples ("r") in order,
// and one end line ("e"). Segments appear in submission order with run
// indices 0, 1, 2, …, so one trace covers a whole sweep. Zero-valued rare
// fields (finished, down, the throttle and drop counters, failed) are
// omitted. A scenario whose driver executes more than one engine run emits
// all its rounds into a single segment; the round index resetting to 0 marks
// the inner boundary.
//
// Optionally, a timing line may follow each round line:
//
//	{"t":"g","round":0,"shards":[[1200,3400,5600],…]}
//
// with one [barrierWaitNanos, sendNanos, recvNanos] triple per delivery
// shard. Timing lines are non-canonical: they measure the host, not the
// algorithm, and they vary run to run.
//
// # Stability guarantees
//
// Canonical lines ("h", "r", "e") are a pure function of the scenario — graph,
// seed, capacity model, fault schedule — and never of worker count, host
// speed, or scheduling. For a fixed scenario the canonical byte stream is
// identical across worker counts and across local, cluster, and cached
// execution; CI asserts this. The content hash (Hash) covers canonical lines
// only, so a trace captured with timing hashes identically to one without.
//
// Within version 1, existing fields keep their names and meanings; new
// OPTIONAL fields may be added (consumers must ignore unknown keys, which is
// why hashes are computed over the bytes as written, never re-serialized).
// Any incompatible change bumps "v", and Parse rejects versions it does not
// know.
//
// Failed runs record only {"failed":true} — error text is
// scheduling-dependent and would break byte-identity.
package obs
