package obs

import (
	"bytes"
	"strings"
	"testing"

	"ncc/internal/ncc"
)

// synthRun feeds c a deterministic little run: r rounds of geometric decay
// from a fixed starting volume, then a quiet tail.
func synthRun(c *Collector, h Header, rounds int, timing []ncc.ShardTiming) ncc.Stats {
	probe := c.Probe()
	var st ncc.Stats
	for i := 0; i < rounds; i++ {
		msgs := 1024 >> i
		s := ncc.RoundSample{
			Round: i, Messages: msgs, Delivered: msgs, Words: msgs,
			Active: min(h.N, msgs), MaxSendLoad: max(1, msgs/h.N),
			MaxRecvOffered: max(1, msgs/h.N), MaxRecvDelivered: max(1, msgs/h.N),
		}
		probe(s, timing)
		st.Messages += int64(msgs)
		st.Words += int64(msgs)
		st.Rounds++
	}
	c.FinishRun(h, st, false)
	return st
}

var testHeader = Header{Scenario: "sha256:abc", Algo: "broadcast", Graph: "ring", N: 64, Seed: 7, Cap: 48}

func TestCollectorRoundTrip(t *testing.T) {
	c := &Collector{}
	st := synthRun(c, testHeader, 11, nil)
	data := c.Bytes()
	tr, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("parse: %v\ntrace:\n%s", err, data)
	}
	if len(tr.Runs) != 1 {
		t.Fatalf("got %d runs", len(tr.Runs))
	}
	run := tr.Runs[0]
	if run.Header != testHeader {
		t.Errorf("header round-trip: %+v != %+v", run.Header, testHeader)
	}
	if len(run.Rounds) != 11 || run.End.Rounds != st.Rounds || run.End.Msgs != st.Messages {
		t.Errorf("end = %+v over %d rounds, want %d rounds %d msgs", run.End, len(run.Rounds), st.Rounds, st.Messages)
	}
	if run.Rounds[0].Messages != 1024 || run.Rounds[10].Messages != 1 {
		t.Errorf("sample decay lost: first=%d last=%d", run.Rounds[0].Messages, run.Rounds[10].Messages)
	}
}

func TestHashIgnoresTimingLines(t *testing.T) {
	timing := []ncc.ShardTiming{{BarrierWaitNanos: 10, SendNanos: 20, RecvNanos: 30}, {SendNanos: 5, RecvNanos: 5}}
	plain := &Collector{}
	synthRun(plain, testHeader, 5, nil)
	timed := &Collector{WithTiming: true}
	synthRun(timed, testHeader, 5, timing)

	if bytes.Equal(plain.Bytes(), timed.Bytes()) {
		t.Fatal("timing lines missing from timed trace")
	}
	if plain.Hash() != timed.Hash() {
		t.Errorf("canonical hash differs with timing: %s vs %s", plain.Hash(), timed.Hash())
	}
	tr, err := Parse(bytes.NewReader(timed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasTiming() || len(tr.Runs[0].Timing) != 5 {
		t.Errorf("timed trace parsed %d timing lines, want 5", len(tr.Runs[0].Timing))
	}
	if got := tr.Runs[0].Timing[0].Shards[0]; got != [3]int64{10, 20, 30} {
		t.Errorf("timing triple = %v", got)
	}
}

func TestCollectorTakeLinesStreams(t *testing.T) {
	c := &Collector{}
	synthRun(c, testHeader, 3, nil)
	first := c.TakeLines()
	if len(first) != 5 { // h + 3r + e
		t.Fatalf("first run drained %d lines, want 5", len(first))
	}
	synthRun(c, testHeader, 2, nil)
	second := c.TakeLines()
	if len(second) != 4 {
		t.Fatalf("second run drained %d lines, want 4", len(second))
	}
	all := append(append([][]byte{}, first...), second...)
	if _, err := Parse(bytes.NewReader(Join(all))); err != nil {
		t.Fatalf("streamed lines do not reassemble: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Bytes after TakeLines should panic")
		}
	}()
	c.Bytes()
}

func TestParseRejectsMalformed(t *testing.T) {
	good := func() *Collector { c := &Collector{}; synthRun(c, testHeader, 3, nil); return c }
	cases := map[string]string{
		"empty":          "",
		"unknown type":   `{"t":"x"}` + "\n",
		"round outside":  `{"t":"r","round":0,"msgs":1,"delivered":1}` + "\n",
		"bad version":    `{"t":"h","v":9,"run":0,"n":4,"seed":1,"cap":16}` + "\n" + `{"t":"e","run":0}` + "\n",
		"missing end":    string(good().Bytes()[:len(good().Bytes())-len(`{"t":"e","run":0,"rounds":3,"msgs":1792,"words":1792}`)-1]),
		"negative field": `{"t":"h","v":1,"run":0,"n":4,"seed":1,"cap":16}` + "\n" + `{"t":"r","round":0,"msgs":-1,"delivered":-1}` + "\n",
		"bad delivered":  `{"t":"h","v":1,"run":0,"n":4,"seed":1,"cap":16}` + "\n" + `{"t":"r","round":0,"msgs":5,"delivered":3}` + "\n",
		"round gap":      `{"t":"h","v":1,"run":0,"n":4,"seed":1,"cap":16}` + "\n" + `{"t":"r","round":0,"msgs":1,"delivered":1}` + "\n" + `{"t":"r","round":2,"msgs":1,"delivered":1}` + "\n",
		"end mismatch":   `{"t":"h","v":1,"run":0,"n":4,"seed":1,"cap":16}` + "\n" + `{"t":"r","round":0,"msgs":1,"delivered":1}` + "\n" + `{"t":"e","run":0,"rounds":1,"msgs":99,"words":0}` + "\n",
	}
	for name, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	if err := Validate(good().Bytes()); err != nil {
		t.Errorf("well-formed trace rejected: %v", err)
	}
}

func TestParseAcceptsRoundReset(t *testing.T) {
	c := &Collector{}
	probe := c.Probe()
	// Two engine runs inside one scenario segment: rounds 0,1 then 0.
	for _, r := range []int{0, 1, 0} {
		probe(ncc.RoundSample{Round: r, Messages: 2, Delivered: 2, Words: 2, Active: 2, MaxSendLoad: 1, MaxRecvOffered: 1, MaxRecvDelivered: 1}, nil)
	}
	// End stats deliberately cover only the second engine run; the reset
	// makes the parser skip the sum check.
	c.FinishRun(testHeader, ncc.Stats{Rounds: 1, Messages: 2, Words: 2}, false)
	tr, err := Parse(bytes.NewReader(c.Bytes()))
	if err != nil {
		t.Fatalf("reset trace rejected: %v", err)
	}
	if len(tr.Runs[0].Rounds) != 3 {
		t.Errorf("got %d rounds", len(tr.Runs[0].Rounds))
	}
}

const wantSummary = `run 0: algo=broadcast graph=ring n=64 seed=7 cap=48
  scenario sha256:abc
  11 rounds, 2047 msgs, 2047 words [ok]
  phases:
     1  rounds 0-0 (1)  load~2^10  1024.0 msgs/round, peak recv 16
     2  rounds 1-1 (1)  load~2^9  512.0 msgs/round, peak recv 8
     3  rounds 2-2 (1)  load~2^8  256.0 msgs/round, peak recv 4
     4  rounds 3-3 (1)  load~2^7  128.0 msgs/round, peak recv 2
     5  rounds 4-4 (1)  load~2^6  64.0 msgs/round, peak recv 1
     6  rounds 5-5 (1)  load~2^5  32.0 msgs/round, peak recv 1
     7  rounds 6-6 (1)  load~2^4  16.0 msgs/round, peak recv 1
     8  rounds 7-7 (1)  load~2^3  8.0 msgs/round, peak recv 1
     9  rounds 8-8 (1)  load~2^2  4.0 msgs/round, peak recv 1
    10  rounds 9-9 (1)  load~2^1  2.0 msgs/round, peak recv 1
    11  rounds 10-10 (1)  load~2^0  1.0 msgs/round, peak recv 1
  rate: █▅▃▂▁▁▁▁▁▁▁ (peak 1024 msgs/round)
  shard timing: not recorded (trace with -trace-timing to capture)
`

func TestSummaryGolden(t *testing.T) {
	c := &Collector{}
	synthRun(c, testHeader, 11, nil)
	tr, err := Parse(bytes.NewReader(c.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteSummary(&buf, tr)
	if buf.String() != wantSummary {
		t.Errorf("summary drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), wantSummary)
	}
}

func TestSummaryImbalance(t *testing.T) {
	timing := []ncc.ShardTiming{
		{BarrierWaitNanos: 0, SendNanos: 100, RecvNanos: 100},
		{BarrierWaitNanos: 50, SendNanos: 300, RecvNanos: 300},
	}
	c := &Collector{WithTiming: true}
	synthRun(c, testHeader, 4, timing)
	tr, err := Parse(bytes.NewReader(c.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteSummary(&buf, tr)
	// peak = 600, mean = 400 -> imbalance 1.50 every round.
	want := "shard imbalance (slowest/mean): p50 1.50, p90 1.50, max 1.50 over 4 timed rounds"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("summary missing %q:\n%s", want, buf.String())
	}
}

func TestDiffIdenticalAndDiverging(t *testing.T) {
	a := &Collector{}
	synthRun(a, testHeader, 6, nil)
	trA, err := Parse(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if !WriteDiff(&buf, "a", "a2", trA, trA) {
		t.Errorf("identical traces reported different:\n%s", buf.String())
	}
	if want := "traces identical: 1 runs, 6 rounds\n"; buf.String() != want {
		t.Errorf("identical diff output %q, want %q", buf.String(), want)
	}

	// Perturb rounds 2 and 3 of a copy.
	b := &Collector{}
	probe := b.Probe()
	var st ncc.Stats
	for i := 0; i < 6; i++ {
		msgs := 1024 >> i
		if i == 2 || i == 3 {
			msgs += 10
		}
		probe(ncc.RoundSample{Round: i, Messages: msgs, Delivered: msgs, Words: msgs,
			Active: min(64, msgs), MaxSendLoad: max(1, msgs/64),
			MaxRecvOffered: max(1, msgs/64), MaxRecvDelivered: max(1, msgs/64)}, nil)
		st.Messages += int64(msgs)
		st.Words += int64(msgs)
		st.Rounds++
	}
	b.FinishRun(testHeader, st, false)
	trB, err := Parse(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if WriteDiff(&buf, "a", "b", trA, trB) {
		t.Fatal("diverging traces reported identical")
	}
	out := buf.String()
	for _, want := range []string{"first divergence at round 2", "rounds 2-3 (+20 msgs)", "msgs 2016 vs 2036 (+20)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePhasesPprofLabels(t *testing.T) {
	c := &Collector{}
	synthRun(c, testHeader, 3, nil)
	tr, err := Parse(bytes.NewReader(c.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WritePhases(&buf, tr, true)
	out := buf.String()
	for _, want := range []string{"-tagfocus run=", "run=0 scenario=sha256:abc algo=broadcast", "phase=1 rounds=0-0 label=load~2^10 msgs=1024"} {
		if !strings.Contains(out, want) {
			t.Errorf("phase export missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	WritePhases(&buf, tr, false)
	if want := "0\t1\t0\t0\tload~2^10\t1024\n"; !strings.HasPrefix(buf.String(), want) {
		t.Errorf("tsv export starts %q, want %q", buf.String(), want)
	}
}
