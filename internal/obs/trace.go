package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ncc/internal/ncc"
)

// Version is the trace format version emitted by this package; Parse rejects
// any other. See doc.go for the format and its stability guarantees.
const Version = 1

// Header identifies one engine run inside a trace: which scenario (by its
// canonical content hash), which algorithm and graph, and the model
// parameters the per-round samples should be read against.
type Header struct {
	Scenario string // canonical scenario hash (scenario.Scenario.Hash)
	Algo     string
	Graph    string
	N        int
	Seed     int64
	Cap      int
}

// End summarizes one engine run: the round count and cumulative traffic the
// engine reported, and whether the run failed. Failure is recorded as a flag
// only — error text is scheduling-dependent and would break byte-identity.
type End struct {
	Rounds int
	Msgs   int64
	Words  int64
	Failed bool
}

// RoundTiming is the parsed form of a non-canonical timing line: per-shard
// [barrier-wait, send, recv] nanoseconds for one round.
type RoundTiming struct {
	Round  int
	Shards [][3]int64
}

// Wire types. Field order is the serialization order; "t" MUST stay first —
// the canonical filter and the parser's type probe rely on the prefix.
type headerLine struct {
	T        string `json:"t"`
	V        int    `json:"v"`
	Run      int    `json:"run"`
	Scenario string `json:"scenario,omitempty"`
	Algo     string `json:"algo,omitempty"`
	Graph    string `json:"graph,omitempty"`
	N        int    `json:"n"`
	Seed     int64  `json:"seed"`
	Cap      int    `json:"cap"`
}

type roundLine struct {
	T                 string `json:"t"`
	Round             int    `json:"round"`
	Msgs              int    `json:"msgs"`
	Delivered         int    `json:"delivered"`
	Words             int    `json:"words"`
	Active            int    `json:"active"`
	Finished          int    `json:"finished,omitempty"`
	Down              int    `json:"down,omitempty"`
	MaxSend           int    `json:"maxSend"`
	MaxRecv           int    `json:"maxRecv"`
	MaxRecvDelivered  int    `json:"maxRecvDelivered"`
	SendThrottled     int    `json:"sendThrottled,omitempty"`
	RecvThrottled     int    `json:"recvThrottled,omitempty"`
	DroppedFault      int    `json:"droppedFault,omitempty"`
	DroppedDead       int    `json:"droppedDead,omitempty"`
	DroppedToFinished int    `json:"droppedToFinished,omitempty"`
}

type endLine struct {
	T      string `json:"t"`
	Run    int    `json:"run"`
	Rounds int    `json:"rounds"`
	Msgs   int64  `json:"msgs"`
	Words  int64  `json:"words"`
	Failed bool   `json:"failed,omitempty"`
}

type timingLine struct {
	T      string     `json:"t"`
	Round  int        `json:"round"`
	Shards [][3]int64 `json:"shards"`
}

// mustMarshal serializes a wire line; the wire types cannot fail to marshal.
func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("obs: marshal trace line: %v", err))
	}
	return b
}

func marshalHeader(run int, h Header) []byte {
	return mustMarshal(headerLine{
		T: "h", V: Version, Run: run,
		Scenario: h.Scenario, Algo: h.Algo, Graph: h.Graph,
		N: h.N, Seed: h.Seed, Cap: h.Cap,
	})
}

func marshalRound(s ncc.RoundSample) []byte {
	return mustMarshal(roundLine{
		T: "r", Round: s.Round,
		Msgs: s.Messages, Delivered: s.Delivered, Words: s.Words,
		Active: s.Active, Finished: s.Finished, Down: s.Down,
		MaxSend: s.MaxSendLoad, MaxRecv: s.MaxRecvOffered, MaxRecvDelivered: s.MaxRecvDelivered,
		SendThrottled: s.SendThrottled, RecvThrottled: s.RecvThrottled,
		DroppedFault: s.DroppedFault, DroppedDead: s.DroppedDead, DroppedToFinished: s.DroppedToFinished,
	})
}

func marshalEnd(run int, st ncc.Stats, failed bool) []byte {
	return mustMarshal(endLine{
		T: "e", Run: run, Rounds: st.Rounds,
		Msgs: st.Messages, Words: st.Words, Failed: failed,
	})
}

func marshalTiming(round int, timing []ncc.ShardTiming) []byte {
	shards := make([][3]int64, len(timing))
	for i, t := range timing {
		shards[i] = [3]int64{t.BarrierWaitNanos, t.SendNanos, t.RecvNanos}
	}
	return mustMarshal(timingLine{T: "g", Round: round, Shards: shards})
}

// timingPrefix is the serialized prefix of every non-canonical line. The
// serializer above guarantees "t" is the first key, so a prefix test is an
// exact type test for traces this package wrote.
var timingPrefix = []byte(`{"t":"g"`)

func isTimingLine(line []byte) bool {
	return len(line) >= len(timingPrefix) && string(line[:len(timingPrefix)]) == string(timingPrefix)
}

// Hash returns the canonical content hash of a trace given its NDJSON lines
// (without trailing newlines), as "sha256:<hex>". Non-canonical timing lines
// are excluded, so a trace recorded with timing hashes identically to the
// same trace recorded without.
func Hash(lines [][]byte) string {
	h := sha256.New()
	for _, line := range lines {
		if isTimingLine(line) {
			continue
		}
		h.Write(line)
		h.Write([]byte{'\n'})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Join renders trace lines back to NDJSON bytes (one trailing newline per
// line), the exact byte stream a trace file or HTTP trace stream carries.
func Join(lines [][]byte) []byte {
	n := 0
	for _, l := range lines {
		n += len(l) + 1
	}
	out := make([]byte, 0, n)
	for _, l := range lines {
		out = append(out, l...)
		out = append(out, '\n')
	}
	return out
}
