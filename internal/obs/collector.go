package obs

import "ncc/internal/ncc"

// Collector turns a sequence of engine runs into a trace. Attach its Probe to
// each run's Config, then seal the run with FinishRun; segments accumulate in
// submission order, so one Collector traces a whole sweep.
//
// A Collector is not safe for concurrent use: the probe runs on the engine's
// coordinator goroutine, so the caller must finish one run before starting
// the next (the execution layers here run a job's scenarios sequentially,
// which is also what keeps traces deterministic).
type Collector struct {
	// WithTiming interleaves non-canonical per-shard timing lines ("g") after
	// each round line. Timing lines never enter the canonical hash.
	WithTiming bool

	run     int
	pending [][]byte // current run's round (and timing) lines
	sealed  [][]byte // completed segments
	taken   bool
}

// Probe returns the ncc.RoundProbe feeding this collector.
func (c *Collector) Probe() ncc.RoundProbe {
	return func(s ncc.RoundSample, timing []ncc.ShardTiming) {
		c.pending = append(c.pending, marshalRound(s))
		if c.WithTiming {
			c.pending = append(c.pending, marshalTiming(s.Round, timing))
		}
	}
}

// FinishRun seals the current run: a header line, the buffered round lines,
// and an end line join the trace, and the next run's segment begins. The
// header is written here — not before the run — because its fields (N, Cap)
// are only known once the scenario's graph has been built.
func (c *Collector) FinishRun(h Header, st ncc.Stats, failed bool) {
	c.sealed = append(c.sealed, marshalHeader(c.run, h))
	c.sealed = append(c.sealed, c.pending...)
	c.pending = nil
	c.sealed = append(c.sealed, marshalEnd(c.run, st, failed))
	c.run++
}

// TakeLines drains the sealed segments for incremental streaming (lines carry
// no trailing newline, matching the service's record-line convention). After
// a TakeLines, Bytes/Hash only cover later segments — streaming consumers
// keep the full log themselves.
func (c *Collector) TakeLines() [][]byte {
	lines := c.sealed
	c.sealed = nil
	c.taken = true
	return lines
}

// Lines returns the sealed trace lines without draining them.
func (c *Collector) Lines() [][]byte { return c.sealed }

// Bytes renders the sealed trace as NDJSON. It panics after TakeLines: a
// drained collector no longer holds the full trace, and silently returning a
// suffix would corrupt content hashes.
func (c *Collector) Bytes() []byte {
	if c.taken {
		panic("obs: Collector.Bytes after TakeLines")
	}
	return Join(c.sealed)
}

// Hash returns the canonical content hash of the sealed trace (see Hash).
// Like Bytes, it panics after TakeLines.
func (c *Collector) Hash() string {
	if c.taken {
		panic("obs: Collector.Hash after TakeLines")
	}
	return Hash(c.sealed)
}
