package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ncc/internal/ncc"
)

// RunTrace is one parsed engine-run segment: header, per-round samples, any
// interleaved timing lines, and the end summary.
type RunTrace struct {
	Header Header
	Rounds []ncc.RoundSample
	Timing []RoundTiming
	End    End
}

// Trace is a fully parsed and structurally validated trace.
type Trace struct {
	Runs []RunTrace
}

// Rounds returns the total number of round samples across all runs.
func (t *Trace) Rounds() int {
	n := 0
	for i := range t.Runs {
		n += len(t.Runs[i].Rounds)
	}
	return n
}

// HasTiming reports whether any run carries shard-timing lines.
func (t *Trace) HasTiming() bool {
	for i := range t.Runs {
		if len(t.Runs[i].Timing) > 0 {
			return true
		}
	}
	return false
}

// maxLine bounds a single trace line; a line is a bounded set of integer
// fields, so anything near this is corrupt input, not a big trace.
const maxLine = 1 << 20

// Parse reads an NDJSON trace and validates its structure: every line has a
// known type, segments are header → rounds → end with ascending run indices,
// round indices within a segment are contiguous (resetting to 0 when a
// scenario executes more than one engine run), per-line arithmetic holds
// (delivered = msgs - recvThrottled, nothing negative), and — for clean
// single-engine-run segments — the end summary matches the round sums.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	t := &Trace{}
	var cur *RunTrace
	var sawReset bool
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("obs: line %d: not a JSON object: %v", lineNo, err)
		}
		switch probe.T {
		case "h":
			var h headerLine
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad header: %v", lineNo, err)
			}
			if h.V != Version {
				return nil, fmt.Errorf("obs: line %d: trace version %d, this build reads %d", lineNo, h.V, Version)
			}
			if cur != nil {
				return nil, fmt.Errorf("obs: line %d: header inside unterminated run %d", lineNo, h.Run)
			}
			if h.Run != len(t.Runs) {
				return nil, fmt.Errorf("obs: line %d: run index %d, want %d", lineNo, h.Run, len(t.Runs))
			}
			if h.N < 1 || h.Cap < 1 {
				return nil, fmt.Errorf("obs: line %d: header n=%d cap=%d out of range", lineNo, h.N, h.Cap)
			}
			cur = &RunTrace{Header: Header{
				Scenario: h.Scenario, Algo: h.Algo, Graph: h.Graph,
				N: h.N, Seed: h.Seed, Cap: h.Cap,
			}}
			sawReset = false
		case "r":
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: round line outside a run", lineNo)
			}
			var rl roundLine
			if err := json.Unmarshal(line, &rl); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad round: %v", lineNo, err)
			}
			s, err := rl.sample()
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
			}
			switch {
			case len(cur.Rounds) == 0:
				if s.Round != 0 {
					return nil, fmt.Errorf("obs: line %d: first round is %d, want 0", lineNo, s.Round)
				}
			case s.Round == cur.Rounds[len(cur.Rounds)-1].Round+1:
				// contiguous
			case s.Round == 0:
				// A scenario driver started another engine run inside the same
				// segment; legal, but the segment's end summary no longer
				// mirrors the round sums.
				sawReset = true
			default:
				return nil, fmt.Errorf("obs: line %d: round %d after %d", lineNo, s.Round, cur.Rounds[len(cur.Rounds)-1].Round)
			}
			cur.Rounds = append(cur.Rounds, s)
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: end line outside a run", lineNo)
			}
			var e endLine
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad end: %v", lineNo, err)
			}
			if e.Run != len(t.Runs) {
				return nil, fmt.Errorf("obs: line %d: end run index %d, want %d", lineNo, e.Run, len(t.Runs))
			}
			cur.End = End{Rounds: e.Rounds, Msgs: e.Msgs, Words: e.Words, Failed: e.Failed}
			if !sawReset && !e.Failed {
				var msgs, words int64
				for _, s := range cur.Rounds {
					msgs += int64(s.Messages)
					words += int64(s.Words)
				}
				if e.Rounds != len(cur.Rounds) || e.Msgs != msgs || e.Words != words {
					return nil, fmt.Errorf("obs: line %d: end summary (rounds=%d msgs=%d words=%d) contradicts round sums (rounds=%d msgs=%d words=%d)",
						lineNo, e.Rounds, e.Msgs, e.Words, len(cur.Rounds), msgs, words)
				}
			}
			t.Runs = append(t.Runs, *cur)
			cur = nil
		case "g":
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: timing line outside a run", lineNo)
			}
			var g timingLine
			if err := json.Unmarshal(line, &g); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad timing: %v", lineNo, err)
			}
			cur.Timing = append(cur.Timing, RoundTiming{Round: g.Round, Shards: g.Shards})
		default:
			return nil, fmt.Errorf("obs: line %d: unknown line type %q", lineNo, probe.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("obs: trace ends inside run %d (missing end line)", len(t.Runs))
	}
	if len(t.Runs) == 0 {
		return nil, fmt.Errorf("obs: empty trace")
	}
	return t, nil
}

// Validate parses data and reports the first structural violation, if any.
func Validate(data []byte) error {
	_, err := Parse(bytes.NewReader(data))
	return err
}

// sample converts a wire round line into an ncc.RoundSample, checking the
// per-line arithmetic the engine guarantees.
func (rl *roundLine) sample() (ncc.RoundSample, error) {
	s := ncc.RoundSample{
		Round:             rl.Round,
		Messages:          rl.Msgs,
		Delivered:         rl.Delivered,
		Words:             rl.Words,
		Active:            rl.Active,
		Finished:          rl.Finished,
		Down:              rl.Down,
		MaxSendLoad:       rl.MaxSend,
		MaxRecvOffered:    rl.MaxRecv,
		MaxRecvDelivered:  rl.MaxRecvDelivered,
		SendThrottled:     rl.SendThrottled,
		RecvThrottled:     rl.RecvThrottled,
		DroppedFault:      rl.DroppedFault,
		DroppedDead:       rl.DroppedDead,
		DroppedToFinished: rl.DroppedToFinished,
	}
	for _, v := range []int{s.Round, s.Messages, s.Delivered, s.Words, s.Active, s.Finished, s.Down,
		s.MaxSendLoad, s.MaxRecvOffered, s.MaxRecvDelivered,
		s.SendThrottled, s.RecvThrottled, s.DroppedFault, s.DroppedDead, s.DroppedToFinished} {
		if v < 0 {
			return s, fmt.Errorf("negative field in round %d", s.Round)
		}
	}
	if s.Delivered != s.Messages-s.RecvThrottled {
		return s, fmt.Errorf("round %d: delivered=%d, want msgs-recvThrottled=%d", s.Round, s.Delivered, s.Messages-s.RecvThrottled)
	}
	if s.MaxRecvDelivered > s.MaxRecvOffered {
		return s, fmt.Errorf("round %d: maxRecvDelivered=%d exceeds maxRecv=%d", s.Round, s.MaxRecvDelivered, s.MaxRecvOffered)
	}
	return s, nil
}
