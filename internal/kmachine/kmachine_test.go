package kmachine

import (
	"testing"

	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func TestSimulatePreservesAlgorithmOutput(t *testing.T) {
	g := graph.KForest(32, 2, 3)
	wg := graph.RandomWeights(g, 100, 4)
	perNode := make([][][2]int, g.N())
	cfg := ncc.Config{N: g.N(), Seed: 7, Strict: true}
	res, st, err := Simulate(4, 8, cfg, func(ctx *ncc.Context) {
		perNode[ctx.ID()] = core.MST(comm.NewSession(ctx), wg)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MST(wg, core.CollectMSTEdges(perNode)); err != nil {
		t.Fatalf("MST corrupted by simulation accounting: %v", err)
	}
	if res.NCCRounds != st.Rounds {
		t.Errorf("NCCRounds %d != stats rounds %d", res.NCCRounds, st.Rounds)
	}
	if res.KRounds < int64(res.NCCRounds) {
		t.Errorf("k-rounds %d below NCC rounds %d (each NCC round costs at least one)", res.KRounds, res.NCCRounds)
	}
	if res.CrossMessages+res.IntraMessages != st.Messages {
		t.Errorf("message accounting mismatch: %d + %d != %d", res.CrossMessages, res.IntraMessages, st.Messages)
	}
}

func TestMoreMachinesLessWork(t *testing.T) {
	// Corollary 2: k-rounds fall roughly like 1/k^2 (until the 1-per-round
	// floor dominates). Check monotonicity over a k sweep.
	g := graph.Grid(6, 6)
	program := func(ctx *ncc.Context) {
		s := comm.NewSession(ctx)
		o := core.Orient(s, g, core.OrientParams{})
		trees, lhat := core.BroadcastTrees(s, g, o)
		core.BFS(s, g, trees, lhat, 0)
	}
	var prev int64
	for _, k := range []int{2, 4, 8} {
		cfg := ncc.Config{N: g.N(), Seed: 5, Strict: true}
		res, _, err := Simulate(k, 4, cfg, program)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && res.KRounds > prev {
			t.Errorf("k=%d: KRounds %d worse than with fewer machines (%d)", k, res.KRounds, prev)
		}
		prev = res.KRounds
	}
}

func TestSingleMachineIsFree(t *testing.T) {
	// With k=1 everything is intra-machine: cost collapses to the barrier.
	cfg := ncc.Config{N: 16, Seed: 1, Strict: true}
	res, st, err := Simulate(1, 4, cfg, func(ctx *ncc.Context) {
		s := comm.NewSession(ctx)
		s.AnyTrue(ctx.ID() == 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossMessages != 0 {
		t.Errorf("cross messages %d on a single machine", res.CrossMessages)
	}
	if res.KRounds != int64(st.Rounds) {
		t.Errorf("KRounds %d, want %d", res.KRounds, st.Rounds)
	}
}

func TestBadParams(t *testing.T) {
	if _, _, err := Simulate(0, 4, ncc.Config{N: 4}, func(*ncc.Context) {}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Simulate(2, 0, ncc.Config{N: 4}, func(*ncc.Context) {}); err == nil {
		t.Error("bandwidth=0 accepted")
	}
}

func TestPartitionBalance(t *testing.T) {
	cfg := ncc.Config{N: 1000, Seed: 3}
	res, _, err := Simulate(10, 4, cfg, func(ctx *ncc.Context) {})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMachineNodes < 100/2 || res.MaxMachineNodes > 2*100 {
		t.Errorf("random partition badly unbalanced: max machine holds %d of 1000", res.MaxMachineNodes)
	}
}
