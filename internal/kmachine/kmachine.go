// Package kmachine implements the k-machine model simulation of Appendix A:
// the n clique nodes are partitioned uniformly at random over k machines;
// every NCC round is executed by routing each clique message over the
// machine-level complete network, where each ordered machine pair's link
// carries a bounded number of words per k-machine round (store-and-forward,
// direct routing). Corollary 2 predicts that a T-round NCC algorithm costs
// about n*T/k^2 k-machine rounds (up to polylog factors).
package kmachine

import (
	"fmt"
	"math/rand/v2"

	"ncc/internal/ncc"
)

// Result summarizes a k-machine simulation.
type Result struct {
	// K is the number of machines, BandwidthWords the per-link words per
	// k-machine round.
	K              int
	BandwidthWords int
	// NCCRounds is the simulated algorithm's round count; KRounds the number
	// of k-machine rounds needed to route all of its traffic.
	NCCRounds int
	KRounds   int64
	// CrossMessages counts clique messages between machines; IntraMessages
	// those between co-located nodes (free).
	CrossMessages int64
	IntraMessages int64
	// MaxMachineNodes is the largest machine population under the random
	// vertex partition (about n/k + deviations).
	MaxMachineNodes int
	// MaxLinkWords is the largest single-round load on one directed link.
	MaxLinkWords int
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("k=%d nccRounds=%d kRounds=%d cross=%d intra=%d",
		r.K, r.NCCRounds, r.KRounds, r.CrossMessages, r.IntraMessages)
}

// Accountant is an ncc.Observer that accounts a run's communication in the
// k-machine model without owning the run itself: attach it to any engine
// execution (kmachine.Simulate, or a scenario run via the scenario package's
// kmachine block) and read the accumulated Result afterwards. The random
// vertex partition is fixed at construction from the seed, so the same
// (k, n, seed) triple always produces the same machine assignment.
type Accountant struct {
	machineOf []int
	bw        int
	res       Result
	loads     map[[2]int]int
}

// NewAccountant builds the k-machine accounting observer for an n-node clique
// with the given per-link bandwidth (words per k-machine round). The vertex
// partition derives deterministically from seed.
func NewAccountant(k, bandwidthWords, n int, seed int64) (*Accountant, error) {
	if k < 1 {
		return nil, fmt.Errorf("kmachine: k = %d, need >= 1", k)
	}
	if bandwidthWords < 1 {
		return nil, fmt.Errorf("kmachine: bandwidth = %d words, need >= 1", bandwidthWords)
	}
	a := &Accountant{
		bw:    bandwidthWords,
		res:   Result{K: k, BandwidthWords: bandwidthWords},
		loads: map[[2]int]int{},
	}
	rng := rand.New(rand.NewPCG(uint64(seed), 0x6b6d616368696e65))
	a.machineOf = make([]int, n)
	counts := make([]int, k)
	for i := range a.machineOf {
		a.machineOf[i] = rng.IntN(k)
		counts[a.machineOf[i]]++
	}
	for _, c := range counts {
		if c > a.res.MaxMachineNodes {
			a.res.MaxMachineNodes = c
		}
	}
	return a, nil
}

// ObserveRound implements ncc.Observer: it routes the round's clique messages
// over the machine-level complete network and charges the k-machine rounds.
func (a *Accountant) ObserveRound(round int, msgs []ncc.Envelope) {
	clear(a.loads)
	for i := range msgs {
		e := &msgs[i]
		p, q := a.machineOf[e.From], a.machineOf[e.To]
		if p == q {
			a.res.IntraMessages++
			continue
		}
		a.res.CrossMessages++
		a.loads[[2]int{p, q}] += e.Words() // width cached at Send time
	}
	// Direct store-and-forward routing: the round's cost is the most loaded
	// link's transfer time (at least one k-machine round per NCC round, for
	// the synchronous barrier).
	worst := 0
	for _, w := range a.loads {
		if w > worst {
			worst = w
		}
	}
	if worst > a.res.MaxLinkWords {
		a.res.MaxLinkWords = worst
	}
	a.res.KRounds += int64(max(1, (worst+a.bw-1)/a.bw))
}

// Result returns the accumulated accounting. NCCRounds is left zero — the
// run's owner fills it from the engine's Stats, which count rounds
// authoritatively (the observer only sees rounds the engine completed).
func (a *Accountant) Result() Result { return a.res }

// Simulate runs program on an NCC clique configured by cfg while accounting
// its communication in the k-machine model with the given per-link bandwidth
// (in words per round). The random vertex partition is derived from
// cfg.Seed. Any Observer already present in cfg is replaced.
func Simulate(k, bandwidthWords int, cfg ncc.Config, program func(*ncc.Context)) (Result, ncc.Stats, error) {
	a, err := NewAccountant(k, bandwidthWords, cfg.N, cfg.Seed)
	if err != nil {
		return Result{}, ncc.Stats{}, err
	}
	cfg.Observer = a
	st, err := ncc.Run(cfg, program)
	res := a.Result()
	res.NCCRounds = st.Rounds
	return res, st, err
}
