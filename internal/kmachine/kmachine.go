// Package kmachine implements the k-machine model simulation of Appendix A:
// the n clique nodes are partitioned uniformly at random over k machines;
// every NCC round is executed by routing each clique message over the
// machine-level complete network, where each ordered machine pair's link
// carries a bounded number of words per k-machine round (store-and-forward,
// direct routing). Corollary 2 predicts that a T-round NCC algorithm costs
// about n*T/k^2 k-machine rounds (up to polylog factors).
package kmachine

import (
	"fmt"
	"math/rand/v2"

	"ncc/internal/ncc"
)

// Result summarizes a k-machine simulation.
type Result struct {
	// K is the number of machines, BandwidthWords the per-link words per
	// k-machine round.
	K              int
	BandwidthWords int
	// NCCRounds is the simulated algorithm's round count; KRounds the number
	// of k-machine rounds needed to route all of its traffic.
	NCCRounds int
	KRounds   int64
	// CrossMessages counts clique messages between machines; IntraMessages
	// those between co-located nodes (free).
	CrossMessages int64
	IntraMessages int64
	// MaxMachineNodes is the largest machine population under the random
	// vertex partition (about n/k + deviations).
	MaxMachineNodes int
	// MaxLinkWords is the largest single-round load on one directed link.
	MaxLinkWords int
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("k=%d nccRounds=%d kRounds=%d cross=%d intra=%d",
		r.K, r.NCCRounds, r.KRounds, r.CrossMessages, r.IntraMessages)
}

// observer accumulates the per-round link schedule.
type observer struct {
	machineOf []int
	bw        int
	res       *Result
	loads     map[[2]int]int
}

func (o *observer) ObserveRound(round int, msgs []ncc.Envelope) {
	clear(o.loads)
	for i := range msgs {
		e := &msgs[i]
		p, q := o.machineOf[e.From], o.machineOf[e.To]
		if p == q {
			o.res.IntraMessages++
			continue
		}
		o.res.CrossMessages++
		o.loads[[2]int{p, q}] += e.Words() // width cached at Send time
	}
	// Direct store-and-forward routing: the round's cost is the most loaded
	// link's transfer time (at least one k-machine round per NCC round, for
	// the synchronous barrier).
	worst := 0
	for _, w := range o.loads {
		if w > worst {
			worst = w
		}
	}
	if worst > o.res.MaxLinkWords {
		o.res.MaxLinkWords = worst
	}
	o.res.KRounds += int64(max(1, (worst+o.bw-1)/o.bw))
}

// Simulate runs program on an NCC clique configured by cfg while accounting
// its communication in the k-machine model with the given per-link bandwidth
// (in words per round). The random vertex partition is derived from
// cfg.Seed. Any Observer already present in cfg is replaced.
func Simulate(k, bandwidthWords int, cfg ncc.Config, program func(*ncc.Context)) (Result, ncc.Stats, error) {
	if k < 1 {
		return Result{}, ncc.Stats{}, fmt.Errorf("kmachine: k = %d, need >= 1", k)
	}
	if bandwidthWords < 1 {
		return Result{}, ncc.Stats{}, fmt.Errorf("kmachine: bandwidth = %d words, need >= 1", bandwidthWords)
	}
	res := Result{K: k, BandwidthWords: bandwidthWords}
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x6b6d616368696e65))
	machineOf := make([]int, cfg.N)
	counts := make([]int, k)
	for i := range machineOf {
		machineOf[i] = rng.IntN(k)
		counts[machineOf[i]]++
	}
	for _, c := range counts {
		if c > res.MaxMachineNodes {
			res.MaxMachineNodes = c
		}
	}
	cfg.Observer = &observer{machineOf: machineOf, bw: bandwidthWords, res: &res, loads: map[[2]int]int{}}
	st, err := ncc.Run(cfg, program)
	res.NCCRounds = st.Rounds
	return res, st, err
}
