// Package graphio ingests real-world graphs into the ncc toolchain: a
// SNAP-style edge-list text parser with a streaming two-pass CSR builder, a
// compact binary graph format (.nccg), and a content-addressed on-disk store
// that backs the "file" graph family used by scenarios and the cluster.
//
// # The .nccg binary format
//
// A .nccg file is a little-endian serialization of a simple undirected graph
// in CSR (compressed sparse row) form, optionally carrying per-node capacity
// weights. The layout, in file order:
//
//	offset  size        field
//	0       4           magic "NCCG"
//	4       2           version, uint16 (currently 1)
//	6       2           flags, uint16 (bit 0: capacity array present)
//	8       8           n, uint64 — number of nodes
//	16      8           m, uint64 — number of undirected edges
//	24      8*(n+1)     offsets, uint64 — CSR row offsets into targets;
//	                    offsets[0] = 0, nondecreasing, offsets[n] = 2m
//	...     4*2m        targets, uint32 — concatenated adjacency lists;
//	                    list u is targets[offsets[u]:offsets[u+1]], strictly
//	                    ascending, no self-loops, symmetric (v in list u iff
//	                    u in list v)
//	...     4*n         capacities, uint32 (only if flags bit 0) — per-node
//	                    relative capacity weights, each >= 1
//
// The total file size is therefore exactly
//
//	24 + 8*(n+1) + 8*m + [4*n]
//
// and decoders verify the announced size against the actual input before
// allocating, so a malformed header cannot force a huge allocation. Every
// structural invariant above (monotone offsets, sorted in-range targets, no
// self-loops, positive capacity weights) is checked on decode; symmetry is
// checked by VerifySymmetric, which the store runs on ingest so stored files
// are known-good.
//
// Encoding is canonical: a given graph (plus optional capacity array) has
// exactly one .nccg byte representation, which is what makes the store's
// content addressing — and the byte-identical gen/export/ingest round-trip
// the CI smoke lane asserts — work.
//
// # The content-addressed store
//
// A Store is a flat directory of <sha256>.nccg files, named by the hex SHA-256
// of their contents. The hash is the graph's identity everywhere: scenarios
// reference it in the "file" graph family's file field, it therefore lands in
// the canonical scenario hash (so nccd's result cache distinguishes runs on
// different real graphs for free), and cluster workers that miss a hash fetch
// the bytes from the coordinator's /v1/graphs/{hash} route, verifying the
// digest before trusting them.
//
// # Edge-list ingestion
//
// ParseEdgeList reads SNAP-style text: one "u<sep>v" pair per line (any mix
// of spaces/tabs), '#' or '%' comment lines, arbitrary non-negative int64
// node ids, duplicate edges and self-loops tolerated and dropped. Ids are
// remapped to a dense 0..n-1 by ascending original id — except when a
// "# Nodes: N" header precedes the edges and every id already fits in
// [0, N), in which case ids are kept verbatim (so a graph exported with
// WriteEdgeList re-ingests to the identical dense graph, isolated nodes
// included). The parser is two-pass over an io.ReadSeeker: pass one counts
// degrees, pass two fills a single exactly-sized CSR backing array, so peak
// memory stays within ~1.3x of the final in-memory graph instead of the ~3x
// a map-of-edges intermediate costs.
package graphio
