package graphio

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ncc/internal/graph"
)

// Store is a content-addressed directory of .nccg files: every graph lives at
// <dir>/<sha256-of-bytes>.nccg, so the file name is a verifiable identity
// that scenarios embed (the "file" family's file field) and cluster nodes
// exchange (/v1/graphs/{hash}).
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a graph store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("graphio: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns where the graph with the given hash lives (whether or not it
// currently exists).
func (s *Store) Path(hash string) string {
	return filepath.Join(s.dir, hash+".nccg")
}

// Has reports whether the store holds the given hash.
func (s *Store) Has(hash string) bool {
	if !ValidHash(hash) {
		return false
	}
	_, err := os.Stat(s.Path(hash))
	return err == nil
}

// Open loads a stored graph, re-verifying that the bytes still hash to their
// name (a corrupted or hand-renamed file is an error, never a wrong graph).
func (s *Store) Open(hash string) (*graph.Graph, error) {
	if !ValidHash(hash) {
		return nil, fmt.Errorf("graphio: %q is not a sha256 graph hash", hash)
	}
	f, err := os.Open(s.Path(hash))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	g, err := Decode(io.TeeReader(f, h), st.Size())
	if err != nil {
		return nil, fmt.Errorf("graphio: stored graph %s: %w", hash, err)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != hash {
		return nil, fmt.Errorf("graphio: stored graph %s corrupted (bytes hash to %s)", hash, got)
	}
	return g, nil
}

// PutGraph stores g's canonical encoding and returns its content hash.
// Storing the same graph twice is idempotent.
func (s *Store) PutGraph(g *graph.Graph) (string, error) {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	if err := Encode(io.MultiWriter(tmp, h), g); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	hash := hex.EncodeToString(h.Sum(nil))
	return hash, s.commit(tmp.Name(), hash)
}

// PutFile ingests an existing .nccg file (validating it fully, symmetry
// included) and returns its content hash.
func (s *Store) PutFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	hash, _, err := s.PutStream(f)
	return hash, err
}

// PutStream ingests .nccg bytes from r: they are spooled to a temp file while
// hashing, fully validated (structure and symmetry), and committed under
// their content hash. Returns the hash and the decoded graph.
func (s *Store) PutStream(r io.Reader) (string, *graph.Graph, error) {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return "", nil, err
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	size, err := io.Copy(io.MultiWriter(tmp, h), r)
	if err != nil {
		tmp.Close()
		return "", nil, err
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		tmp.Close()
		return "", nil, err
	}
	g, err := Decode(tmp, size)
	if err == nil {
		err = VerifySymmetric(g)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", nil, err
	}
	hash := hex.EncodeToString(h.Sum(nil))
	if err := s.commit(tmp.Name(), hash); err != nil {
		return "", nil, err
	}
	return hash, g, nil
}

// commit renames a validated temp file into its content-addressed home; an
// already-present hash wins (contents are identical by construction).
func (s *Store) commit(tmpPath, hash string) error {
	dst := s.Path(hash)
	if _, err := os.Stat(dst); err == nil {
		return nil
	}
	return os.Rename(tmpPath, dst)
}

// ValidHash reports whether ref looks like a sha256 graph hash: exactly 64
// lowercase hex digits.
func ValidHash(ref string) bool {
	if len(ref) != 64 {
		return false
	}
	for i := 0; i < len(ref); i++ {
		c := ref[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Package-level resolver state: the active store directory, an optional
// network fetcher (cluster workers install one pointing at their
// coordinator), and a small memo of decoded graphs — graphs are immutable
// after load, so sweeps re-running the same file family share one instance.
var (
	resolveMu sync.Mutex
	storeDir  string
	activeSt  *Store
	fetchFn   func(hash string) (io.ReadCloser, error)
	memo      = map[string]*graph.Graph{}
)

const memoLimit = 8

// DefaultDir returns the store directory used when nothing is configured:
// $NCC_GRAPH_DIR, or "graphs".
func DefaultDir() string {
	if d := os.Getenv("NCC_GRAPH_DIR"); d != "" {
		return d
	}
	return "graphs"
}

// SetStoreDir points the package-level resolver at a store directory
// (creating it lazily on first use) and drops any memoized graphs.
func SetStoreDir(dir string) {
	resolveMu.Lock()
	defer resolveMu.Unlock()
	storeDir = dir
	activeSt = nil
	memo = map[string]*graph.Graph{}
}

// ActiveStore returns the process-wide store the "file" family resolves
// against, opening it on first use.
func ActiveStore() (*Store, error) {
	resolveMu.Lock()
	defer resolveMu.Unlock()
	return activeStoreLocked()
}

func activeStoreLocked() (*Store, error) {
	if activeSt != nil {
		return activeSt, nil
	}
	dir := storeDir
	if dir == "" {
		dir = DefaultDir()
	}
	st, err := NewStore(dir)
	if err != nil {
		return nil, err
	}
	activeSt = st
	return st, nil
}

// SetFetcher installs a fallback used when a requested hash is missing from
// the local store — cluster workers point this at their coordinator's
// /v1/graphs route. Fetched bytes are validated and persisted locally. Pass
// nil to remove.
func SetFetcher(fn func(hash string) (io.ReadCloser, error)) {
	resolveMu.Lock()
	defer resolveMu.Unlock()
	fetchFn = fn
}

// Resolve loads the graph named by a content hash: memo, then the local
// store, then the installed fetcher. This is the loader behind the "file"
// graph family (installed via graph.SetFileResolver in init).
func Resolve(ref string) (*graph.Graph, error) {
	if !ValidHash(ref) {
		return nil, fmt.Errorf("graphio: %q is not a sha256 graph hash (64 hex digits)", ref)
	}
	resolveMu.Lock()
	defer resolveMu.Unlock()
	if g, ok := memo[ref]; ok {
		return g, nil
	}
	st, err := activeStoreLocked()
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	if st.Has(ref) {
		g, err = st.Open(ref)
		if err != nil {
			return nil, err
		}
	} else if fetchFn != nil {
		rc, err := fetchFn(ref)
		if err != nil {
			return nil, fmt.Errorf("graphio: graph %s not in store %s and fetch failed: %w", ref, st.Dir(), err)
		}
		hash, fetched, err := st.PutStream(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("graphio: fetched graph %s: %w", ref, err)
		}
		if hash != ref {
			os.Remove(st.Path(hash))
			return nil, fmt.Errorf("graphio: fetched graph hashes to %s, want %s", hash, ref)
		}
		g = fetched
	} else {
		return nil, fmt.Errorf("graphio: graph %s not found in store %s (ingest it with nccgraph)", ref, st.Dir())
	}
	if len(memo) >= memoLimit {
		memo = map[string]*graph.Graph{}
	}
	memo[ref] = g
	return g, nil
}

func init() {
	graph.SetFileResolver(Resolve)
}
