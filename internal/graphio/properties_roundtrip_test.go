package graphio

import (
	"bytes"
	"testing"

	"ncc/internal/graph"
)

// TestPropertiesSurviveRoundTrip pins the satellite requirement that
// structural properties computed on a generator-built graph agree with the
// same graph round-tripped through .nccg and through the edge-list text path.
func TestPropertiesSurviveRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"kforest", graph.KForest(300, 3, 17)},
		{"pa", graph.PreferentialAttachment(400, 2, 5)},
		{"grid", graph.Grid(12, 9)},
		{"disjoint", graph.Disjoint(4, 8)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var bin bytes.Buffer
			if err := Encode(&bin, c.g); err != nil {
				t.Fatal(err)
			}
			viaBinary, err := DecodeBytes(bin.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			var txt bytes.Buffer
			if err := WriteEdgeList(&txt, c.g); err != nil {
				t.Fatal(err)
			}
			viaText, _, err := ParseEdgeList(bytes.NewReader(txt.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			wantDegen, _ := graph.Degeneracy(c.g)
			_, wantComp := graph.Components(c.g)
			wantDiam := graph.Diameter(c.g)
			for path, rt := range map[string]*graph.Graph{"nccg": viaBinary, "edgelist": viaText} {
				if d, _ := graph.Degeneracy(rt); d != wantDegen {
					t.Errorf("%s: degeneracy %d, want %d", path, d, wantDegen)
				}
				if _, comp := graph.Components(rt); comp != wantComp {
					t.Errorf("%s: %d components, want %d", path, comp, wantComp)
				}
				if d := graph.Diameter(rt); d != wantDiam {
					t.Errorf("%s: diameter %d, want %d", path, d, wantDiam)
				}
			}
		})
	}
}
