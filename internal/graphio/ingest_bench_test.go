package graphio

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
)

// synthEdgeList writes an identity-mode edge list ("# Nodes:" hint first)
// with `edges` formula-generated lines on n nodes, including the occasional
// duplicate and self-loop the parser must absorb.
func synthEdgeList(w *bufio.Writer, n, edges int) error {
	if _, err := fmt.Fprintf(w, "# Nodes: %d Edges: %d\n", n, edges); err != nil {
		return err
	}
	buf := make([]byte, 0, 32)
	for i := 0; i < edges; i++ {
		u := i % n
		// Mix the wrap-around count in so edges stay distinct across cycles
		// of u (i*c alone is periodic mod n with period n).
		v := (i*2_654_435_761 + (i/n)*1_000_003 + 7) % n
		buf = strconv.AppendInt(buf[:0], int64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// BenchmarkIngest is the benchcheck-gated cost of the full two-pass text
// ingest (parse + CSR build) on a 128k-edge list held in memory.
func BenchmarkIngest(b *testing.B) {
	const n, edges = 1 << 15, 1 << 17
	var src bytes.Buffer
	bw := bufio.NewWriter(&src)
	if err := synthEdgeList(bw, n, edges); err != nil {
		b.Fatal(err)
	}
	data := src.Bytes()
	b.Run(fmt.Sprintf("edges=%d", edges), func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, _, err := ParseEdgeList(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if g.N() != n {
				b.Fatalf("n = %d", g.N())
			}
		}
	})
}

// TestIngestMemoryBound is the tentpole's memory guarantee: streaming a
// 10M-edge list into CSR allocates less than 2x the final in-memory graph —
// cumulatively, which upper-bounds the peak — where a map-of-edges
// intermediate alone would blow the budget (~48 bytes/edge in buckets).
func TestIngestMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-edge ingest in -short mode")
	}
	const n, edges = 2_000_000, 10_000_000
	path := filepath.Join(t.TempDir(), "big.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := synthEdgeList(bufio.NewWriterSize(f, 1<<20), n, edges); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	g, st, err := ParseEdgeList(in)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	if g.N() != n || st.RawEdges != edges {
		t.Fatalf("parsed n=%d rawEdges=%d", g.N(), st.RawEdges)
	}
	// Final CSR footprint: the directed-edge backing array plus the per-node
	// slice headers (the dominant terms of the live graph).
	finalBytes := int64(8*g.M()) + int64(24*g.N())
	allocated := int64(after.TotalAlloc - before.TotalAlloc)
	t.Logf("m=%d final=%dMB allocated=%dMB (%.2fx)",
		g.M(), finalBytes>>20, allocated>>20, float64(allocated)/float64(finalBytes))
	if allocated >= 2*finalBytes {
		t.Fatalf("ingest allocated %d bytes, >= 2x the %d-byte final CSR", allocated, finalBytes)
	}
	runtime.KeepAlive(g)
}
