package graphio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ncc/internal/graph"
)

func encodeToBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != EncodedSize(g) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", buf.Len(), EncodedSize(g))
	}
	return buf.Bytes()
}

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("got n=%d m=%d, want n=%d m=%d", b.N(), b.M(), a.N(), a.M())
	}
	for u := 0; u < a.N(); u++ {
		av, bv := a.Neighbors(u), b.Neighbors(u)
		if len(av) != len(bv) {
			t.Fatalf("node %d: degree %d vs %d", u, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("node %d neighbor %d: %d vs %d", u, i, av[i], bv[i])
			}
		}
	}
	aw, bw := a.CapacityWeights(), b.CapacityWeights()
	if (aw == nil) != (bw == nil) {
		t.Fatalf("capacity weights presence differs: %v vs %v", aw != nil, bw != nil)
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("capacity weight %d: %d vs %d", i, aw[i], bw[i])
		}
	}
}

func TestNCCGRoundTripFamilies(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Empty(0),
		graph.Empty(5),
		graph.Path(10),
		graph.Star(33),
		graph.KForest(200, 3, 11),
		graph.GNM(100, 400, 3),
	} {
		enc := encodeToBytes(t, g)
		got, err := DecodeBytes(enc)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		sameGraph(t, g, got)
		// Canonical: re-encoding the decoded graph gives identical bytes.
		if !bytes.Equal(enc, encodeToBytes(t, got)) {
			t.Fatalf("%v: re-encode differs", g)
		}
	}
}

func TestNCCGRoundTripCapacities(t *testing.T) {
	g := graph.Cycle(16)
	w := make([]uint32, 16)
	for i := range w {
		w[i] = uint32(10 + i)
	}
	if err := g.SetCapacityWeights(w); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(encodeToBytes(t, g))
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

// mutate returns a copy of b with the byte at off xored.
func mutate(b []byte, off int, x byte) []byte {
	c := bytes.Clone(b)
	c[off] ^= x
	return c
}

func TestNCCGDecodeRejectsMalformed(t *testing.T) {
	g := graph.Path(8)
	w := make([]uint32, 8)
	for i := range w {
		w[i] = 1
	}
	if err := g.SetCapacityWeights(w); err != nil {
		t.Fatal(err)
	}
	enc := encodeToBytes(t, g)
	cases := map[string][]byte{
		"empty":             {},
		"short header":      enc[:10],
		"bad magic":         mutate(enc, 0, 0xff),
		"bad version":       mutate(enc, 4, 0x7f),
		"unknown flags":     mutate(enc, 6, 0x80),
		"truncated offsets": enc[:headerSize+8*3],
		"truncated targets": enc[:len(enc)-8*4-1],
		"trailing data":     append(bytes.Clone(enc), 0),
		"n lies":            mutate(enc, 8, 1),
		"m lies":            mutate(enc, 16, 1),
	}
	// offsets[0] != 0
	cases["nonzero first offset"] = mutate(enc, headerSize, 1)
	// decreasing offsets: offsets[2] below offsets[1]
	dec := bytes.Clone(enc)
	binary.LittleEndian.PutUint64(dec[headerSize+16:], 0)
	cases["decreasing offsets"] = dec
	// zero capacity weight
	zc := bytes.Clone(enc)
	binary.LittleEndian.PutUint32(zc[len(zc)-4:], 0)
	cases["zero capacity"] = zc
	for name, b := range cases {
		if _, err := DecodeBytes(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestNCCGDecodeRejectsStructuralLies(t *testing.T) {
	// Build a syntactically plausible file by hand: n=2, m=1, with a
	// self-loop at node 0.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	binary.Write(&buf, binary.LittleEndian, uint16(Version))
	binary.Write(&buf, binary.LittleEndian, uint16(0))
	binary.Write(&buf, binary.LittleEndian, uint64(2))
	binary.Write(&buf, binary.LittleEndian, uint64(1))
	for _, off := range []uint64{0, 1, 2} {
		binary.Write(&buf, binary.LittleEndian, off)
	}
	binary.Write(&buf, binary.LittleEndian, uint32(0)) // node 0 lists itself
	binary.Write(&buf, binary.LittleEndian, uint32(0))
	if _, err := DecodeBytes(buf.Bytes()); err == nil {
		t.Error("self-loop decoded without error")
	}
	// Out-of-range target.
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[len(b)-8:], 7)
	if _, err := DecodeBytes(b); err == nil {
		t.Error("out-of-range target decoded without error")
	}
}

func TestVerifySymmetric(t *testing.T) {
	if err := VerifySymmetric(graph.KForest(50, 2, 9)); err != nil {
		t.Errorf("builder graph flagged asymmetric: %v", err)
	}
	adj := [][]int32{{1}, {}} // 0 lists 1, 1 lists nothing
	if err := VerifySymmetric(graph.FromAdj(adj, 1)); err == nil {
		t.Error("asymmetric adjacency passed")
	}
}
