package graphio

import (
	"bytes"
	"strings"
	"testing"

	"ncc/internal/graph"
)

// FuzzEdgeListParse asserts the text parser never panics and that whatever it
// accepts is a structurally sound graph.
func FuzzEdgeListParse(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# Nodes: 4 Edges: 2\n0 1\n2 3\n")
	f.Add("# Nodes: 2\n0 9\n")
	f.Add("% c\n\n  5\t7 999\n7 5\n5 5\n")
	f.Add("4000000000 1\n")
	f.Add("# Nodes: 99999999999999999999\n0 1\n")
	f.Add("0 -1\n")
	f.Add(strings.Repeat("1 2\n", 40))
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			return
		}
		g, st, err := ParseEdgeList(strings.NewReader(s))
		if err != nil {
			return
		}
		if g.N() < 0 || g.M() < 0 || st.Nodes != g.N() || st.Edges != g.M() {
			t.Fatalf("inconsistent result: %v vs %+v", g, st)
		}
		if err := VerifySymmetric(g); err != nil {
			t.Fatalf("parsed graph asymmetric: %v", err)
		}
		// Accepted graphs must round-trip through the binary format.
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := DecodeBytes(buf.Bytes()); err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
	})
}

// FuzzNCCGRoundTrip asserts the binary decoder never panics on arbitrary
// bytes — malformed headers, truncated CSR sections, capacity-array length
// mismatches all must error — and that anything it does accept re-encodes to
// the identical bytes (the format is canonical).
func FuzzNCCGRoundTrip(f *testing.F) {
	seed := func(g *graph.Graph) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(graph.Path(6)))
	f.Add(seed(graph.Empty(0)))
	wg := graph.Cycle(5)
	if err := wg.SetCapacityWeights([]uint32{1, 2, 3, 4, 5}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed(wg))
	f.Add([]byte("NCCG"))
	f.Add(seed(graph.Path(6))[:20])
	f.Add(append(seed(graph.Path(3)), 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<16 {
			return
		}
		g, err := DecodeBytes(b)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), b) {
			t.Fatalf("accepted non-canonical bytes: %d in, %d out", len(b), buf.Len())
		}
	})
}
