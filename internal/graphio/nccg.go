package graphio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"ncc/internal/graph"
)

// Format constants for the .nccg binary graph format (see doc.go for the
// full layout specification).
const (
	Magic   = "NCCG"
	Version = 1

	flagCapacities = 1 << 0

	headerSize = 24
)

// EncodedSize returns the exact byte length of g's .nccg serialization.
func EncodedSize(g *graph.Graph) int64 {
	size := int64(headerSize) + 8*int64(g.N()+1) + 8*int64(g.M())
	if g.CapacityWeights() != nil {
		size += 4 * int64(g.N())
	}
	return size
}

// Encode writes g's canonical .nccg serialization: the one and only byte
// representation of this graph, so equal graphs always hash equal.
func Encode(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var flags uint16
	capw := g.CapacityWeights()
	if capw != nil {
		flags |= flagCapacities
	}
	var hdr [headerSize]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.M()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	off := uint64(0)
	binary.LittleEndian.PutUint64(buf[:], 0)
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		off += uint64(g.Degree(u))
		binary.LittleEndian.PutUint64(buf[:], off)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			binary.LittleEndian.PutUint32(buf[:4], uint32(v))
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	for _, c := range capw {
		binary.LittleEndian.PutUint32(buf[:4], c)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads one .nccg graph from r, whose total length must be exactly
// size: the header's announced dimensions are checked against size before any
// array is allocated, so a hostile header cannot force a huge allocation.
// Every structural invariant of the format (monotone offsets, sorted in-range
// self-loop-free targets, positive capacity weights) is verified; symmetry is
// not (see VerifySymmetric).
func Decode(r io.Reader, size int64) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("nccg: header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("nccg: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("nccg: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:8])
	if flags&^uint16(flagCapacities) != 0 {
		return nil, fmt.Errorf("nccg: unknown flags %#x", flags)
	}
	n64 := binary.LittleEndian.Uint64(hdr[8:16])
	m64 := binary.LittleEndian.Uint64(hdr[16:24])
	if n64 > math.MaxInt32 {
		return nil, fmt.Errorf("nccg: n = %d exceeds int32 id space", n64)
	}
	n := int(n64)
	// m is bounded by both the id space and what the announced file size can
	// hold, which keeps all arithmetic below in range.
	if m64 > math.MaxInt32 {
		return nil, fmt.Errorf("nccg: m = %d exceeds int32 space", m64)
	}
	m := int(m64)
	want := int64(headerSize) + 8*int64(n+1) + 8*int64(m)
	if flags&flagCapacities != 0 {
		want += 4 * int64(n)
	}
	if want != size {
		return nil, fmt.Errorf("nccg: header announces n=%d m=%d caps=%v (%d bytes) but input is %d bytes",
			n, m, flags&flagCapacities != 0, want, size)
	}

	// Offsets: stream 8-byte words, keeping only the running degree so the
	// (n+1)-entry offset array is never materialized.
	deg := make([]int32, n)
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("nccg: offsets: %w", err)
	}
	if first := binary.LittleEndian.Uint64(buf[:]); first != 0 {
		return nil, fmt.Errorf("nccg: offsets[0] = %d, want 0", first)
	}
	prev := uint64(0)
	for u := 0; u < n; u++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("nccg: offsets: %w", err)
		}
		off := binary.LittleEndian.Uint64(buf[:])
		if off < prev {
			return nil, fmt.Errorf("nccg: offsets[%d] = %d decreases from %d", u+1, off, prev)
		}
		if d := off - prev; d >= uint64(n) {
			return nil, fmt.Errorf("nccg: node %d has degree %d in an %d-node graph", u, d, n)
		} else {
			deg[u] = int32(d)
		}
		prev = off
	}
	if prev != 2*uint64(m) {
		return nil, fmt.Errorf("nccg: offsets[n] = %d, want 2m = %d", prev, 2*m)
	}

	// Targets: one exactly-sized backing array, filled in 64KB chunks.
	backing := make([]int32, 2*m)
	chunk := make([]byte, 1<<16)
	for filled := 0; filled < len(backing); {
		want := (len(backing) - filled) * 4
		if want > len(chunk) {
			want = len(chunk)
		}
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return nil, fmt.Errorf("nccg: targets: %w", err)
		}
		for i := 0; i < want; i += 4 {
			v := binary.LittleEndian.Uint32(chunk[i : i+4])
			if v >= uint32(n) {
				return nil, fmt.Errorf("nccg: target %d out of range [0,%d)", v, n)
			}
			backing[filled] = int32(v)
			filled++
		}
	}
	adj := make([][]int32, n)
	pos := 0
	for u := 0; u < n; u++ {
		list := backing[pos : pos+int(deg[u])]
		pos += int(deg[u])
		for i, v := range list {
			if v == int32(u) {
				return nil, fmt.Errorf("nccg: self-loop at node %d", u)
			}
			if i > 0 && list[i-1] >= v {
				return nil, fmt.Errorf("nccg: adjacency of node %d not strictly ascending", u)
			}
		}
		adj[u] = list
	}
	g := graph.FromAdj(adj, m)

	if flags&flagCapacities != 0 {
		capw := make([]uint32, n)
		for filled := 0; filled < n; {
			want := (n - filled) * 4
			if want > len(chunk) {
				want = len(chunk)
			}
			if _, err := io.ReadFull(br, chunk[:want]); err != nil {
				return nil, fmt.Errorf("nccg: capacities: %w", err)
			}
			for i := 0; i < want; i += 4 {
				capw[filled] = binary.LittleEndian.Uint32(chunk[i : i+4])
				filled++
			}
		}
		if err := g.SetCapacityWeights(capw); err != nil {
			return nil, fmt.Errorf("nccg: %w", err)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("nccg: trailing data after %d announced bytes", size)
	}
	return g, nil
}

// DecodeBytes decodes a .nccg graph from an in-memory buffer.
func DecodeBytes(b []byte) (*graph.Graph, error) {
	return Decode(bytes.NewReader(b), int64(len(b)))
}

// ReadFile decodes the .nccg file at path.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return Decode(f, st.Size())
}

// WriteFile encodes g to the .nccg file at path.
func WriteFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// VerifySymmetric checks that g's adjacency is symmetric (v lists u whenever
// u lists v) — the one .nccg invariant Decode skips, because it costs a
// binary search per directed edge. The store runs it on ingest so stored
// graphs are known-good.
func VerifySymmetric(g *graph.Graph) error {
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.HasEdge(int(v), u) {
				return fmt.Errorf("nccg: asymmetric edge: %d lists %d but not vice versa", u, v)
			}
		}
	}
	return nil
}
