package graphio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"

	"ncc/internal/graph"
)

// IngestStats reports what ParseEdgeList saw and did.
type IngestStats struct {
	Lines      int64 `json:"lines"`
	Comments   int64 `json:"comments"`
	RawEdges   int64 `json:"rawEdges"`   // edge lines parsed, self-loops included
	SelfLoops  int64 `json:"selfLoops"`  // dropped
	Duplicates int64 `json:"duplicates"` // dropped (multiplicity beyond the first)
	Remapped   bool  `json:"remapped"`   // ids were densified (no usable "# Nodes:" hint)
	Nodes      int   `json:"nodes"`
	Edges      int   `json:"edges"`
}

// errIdentityMiss aborts an identity-mode degree pass when an id falls outside
// the hinted [0, N) range (or no hint preceded the edges); the parser then
// rewinds and redoes the pass in remapping mode.
var errIdentityMiss = errors.New("graphio: id outside hinted range")

const maxRawEdges = math.MaxInt32 - 1

// ParseEdgeList ingests SNAP-style edge-list text from rs (see doc.go for the
// accepted syntax) using two streaming passes: degrees first, then a fill of
// one exactly-sized CSR backing array — never an edge map — so peak memory
// stays near the final graph's size. When a "# Nodes: N" header precedes the
// edges and every id fits [0, N), ids are kept verbatim (isolated nodes
// included); otherwise ids are remapped to 0..n-1 by ascending original id.
func ParseEdgeList(rs io.ReadSeeker) (*graph.Graph, *IngestStats, error) {
	st := &IngestStats{}

	// Pass 1: per-node degrees. Optimistically identity-mode; rewind into
	// remap mode on the first out-of-range id.
	var (
		deg   []int32
		idDeg map[int64]int32
		remap map[int64]int32
		n     int
	)
	err := degreePass(rs, st, false, &deg, nil)
	if errors.Is(err, errIdentityMiss) {
		idDeg = make(map[int64]int32)
		st.Remapped = true
		err = degreePass(rs, st, true, &deg, idDeg)
	}
	if err != nil {
		return nil, nil, err
	}
	if st.Remapped {
		ids := make([]int64, 0, len(idDeg))
		for id := range idDeg {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		if len(ids) > math.MaxInt32 {
			return nil, nil, fmt.Errorf("graphio: %d distinct node ids exceed int32 space", len(ids))
		}
		n = len(ids)
		remap = make(map[int64]int32, n)
		deg = make([]int32, n)
		for i, id := range ids {
			remap[id] = int32(i)
			deg[i] = idDeg[id]
		}
		idDeg = nil
	} else {
		n = len(deg)
	}

	// Pass 2: fill one backing array using the degree prefix sums as
	// advancing write cursors, both directions per edge.
	cur := make([]int64, n)
	total := int64(0)
	for u, d := range deg {
		cur[u] = total
		total += int64(d)
	}
	backing := make([]int32, total)
	lookup := func(id int64) int32 { return int32(id) }
	if st.Remapped {
		lookup = func(id int64) int32 { return remap[id] }
	}
	if err := fillPass(rs, backing, cur, lookup); err != nil {
		return nil, nil, err
	}

	// Per-node sort + dedupe with global left-compaction: views stay inside
	// the single backing array.
	adj := make([][]int32, n)
	w := 0
	r := int64(0)
	for u := 0; u < n; u++ {
		list := backing[r : r+int64(deg[u])]
		r += int64(deg[u])
		slices.Sort(list)
		start := w
		prev := int32(-1)
		for i, x := range list {
			if i == 0 || x != prev {
				backing[w] = x
				w++
			}
			prev = x
		}
		adj[u] = backing[start:w:w]
	}
	m := w / 2
	st.Duplicates = (int64(len(backing)) - int64(w)) / 2
	st.Nodes, st.Edges = n, m
	return graph.FromAdj(adj, m), st, nil
}

// degreePass scans the full input once accumulating per-node degrees, either
// into a dense slice sized by the "# Nodes:" hint (identity mode) or into an
// id-keyed map (remap mode).
func degreePass(rs io.ReadSeeker, st *IngestStats, useMap bool, deg *[]int32, idDeg map[int64]int32) error {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return err
	}
	st.Lines, st.Comments, st.RawEdges, st.SelfLoops = 0, 0, 0, 0
	*deg = nil
	hint := int64(-1)
	sc := newLineScanner(rs)
	for sc.Scan() {
		st.Lines++
		line := trimLeft(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			st.Comments++
			if st.RawEdges == 0 {
				if h, ok := parseNodesHint(line); ok {
					hint = h
				}
			}
			continue
		}
		u, v, err := parsePair(line)
		if err != nil {
			return fmt.Errorf("graphio: line %d: %w", st.Lines, err)
		}
		st.RawEdges++
		if st.RawEdges > maxRawEdges {
			return fmt.Errorf("graphio: more than %d edges", maxRawEdges)
		}
		if u == v {
			st.SelfLoops++
			continue
		}
		if useMap {
			idDeg[u]++
			idDeg[v]++
		} else {
			if *deg == nil {
				if hint < 0 || hint > math.MaxInt32 {
					return errIdentityMiss
				}
				*deg = make([]int32, hint)
			}
			if u >= int64(len(*deg)) || v >= int64(len(*deg)) {
				return errIdentityMiss
			}
			(*deg)[u]++
			(*deg)[v]++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graphio: %w", err)
	}
	if *deg == nil && !useMap {
		// No edges at all: honor a bare hint ("# Nodes: N" with zero edges),
		// else the graph is empty.
		if hint > math.MaxInt32 {
			return errIdentityMiss
		}
		*deg = make([]int32, max(hint, 0))
	}
	return nil
}

// fillPass re-scans the input writing each surviving edge's two directed
// entries at the nodes' advancing cursors.
func fillPass(rs io.ReadSeeker, backing []int32, cur []int64, lookup func(int64) int32) error {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return err
	}
	sc := newLineScanner(rs)
	lineNo := int64(0)
	for sc.Scan() {
		lineNo++
		line := trimLeft(sc.Bytes())
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue
		}
		u64, v64, err := parsePair(line)
		if err != nil {
			return fmt.Errorf("graphio: line %d: %w", lineNo, err)
		}
		if u64 == v64 {
			continue
		}
		u, v := lookup(u64), lookup(v64)
		backing[cur[u]] = v
		cur[u]++
		backing[cur[v]] = u
		cur[v]++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graphio: %w", err)
	}
	return nil
}

func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return sc
}

func trimLeft(b []byte) []byte {
	i := 0
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r') {
		i++
	}
	return b[i:]
}

// parsePair reads the two leading whitespace-separated non-negative integer
// ids of an edge line; trailing fields (e.g. weights or timestamps) are
// ignored if whitespace-separated.
func parsePair(line []byte) (int64, int64, error) {
	u, rest, err := parseID(line)
	if err != nil {
		return 0, 0, err
	}
	rest = trimLeft(rest)
	if len(rest) == 0 {
		return 0, 0, fmt.Errorf("edge line has one id, want two")
	}
	v, rest, err := parseID(rest)
	if err != nil {
		return 0, 0, err
	}
	if len(rest) > 0 && rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\r' {
		return 0, 0, fmt.Errorf("garbage %q after edge", rest)
	}
	return u, v, nil
}

func parseID(b []byte) (int64, []byte, error) {
	i := 0
	var x int64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := int64(b[i] - '0')
		if x > (math.MaxInt64-d)/10 {
			return 0, nil, fmt.Errorf("node id overflows int64")
		}
		x = x*10 + d
		i++
	}
	if i == 0 {
		return 0, nil, fmt.Errorf("expected a node id, found %q", b)
	}
	return x, b[i:], nil
}

// parseNodesHint extracts N from a "# Nodes: N ..." comment line.
func parseNodesHint(line []byte) (int64, bool) {
	j := bytes.Index(line, []byte("Nodes:"))
	if j < 0 {
		return 0, false
	}
	rest := trimLeft(line[j+len("Nodes:"):])
	n, _, err := parseID(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// WriteEdgeList renders g as SNAP-style text — a "# Nodes: N Edges: M" header
// then one "u\tv" line per undirected edge with u < v, ascending — the exact
// input shape ParseEdgeList's identity mode round-trips losslessly (capacity
// weights are not representable and are dropped; keep the .nccg for those).
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.N(), g.M()); err != nil {
		return err
	}
	buf := make([]byte, 0, 32)
	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		buf = strconv.AppendInt(buf[:0], int64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, '\n')
		_, werr = bw.Write(buf)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
