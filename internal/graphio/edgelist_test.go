package graphio

import (
	"bytes"
	"strings"
	"testing"

	"ncc/internal/graph"
)

func parseString(t *testing.T, s string) (*graph.Graph, *IngestStats) {
	t.Helper()
	g, st, err := ParseEdgeList(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return g, st
}

func TestParseEdgeListBasics(t *testing.T) {
	g, st := parseString(t, `# a comment
% another comment style

0 1
1	2
2 0
`)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got %v", g)
	}
	if st.Comments != 2 || st.RawEdges != 3 || !st.Remapped {
		t.Errorf("stats = %+v", st)
	}
}

func TestParseEdgeListRemapsSparseIds(t *testing.T) {
	// Ids 7, 100, 4000000000 must densify by ascending original id.
	g, st := parseString(t, "100 7\n4000000000 100\n")
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
	if !st.Remapped {
		t.Error("expected remapping")
	}
	// 7->0, 100->1, 4000000000->2
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Errorf("remap wrong: %v", g)
	}
}

func TestParseEdgeListDuplicatesAndSelfLoops(t *testing.T) {
	g, st := parseString(t, "0 1\n1 0\n0 1\n1 1\n# Nodes hint too late, ids fine anyway\n")
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("got %v", g)
	}
	if st.SelfLoops != 1 || st.Duplicates != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestParseEdgeListIdentityModeKeepsIsolatedNodes(t *testing.T) {
	g, st := parseString(t, "# Nodes: 6 Edges: 2\n0 2\n4 2\n")
	if g.N() != 6 || g.M() != 2 {
		t.Fatalf("got %v, stats %+v", g, st)
	}
	if st.Remapped {
		t.Error("hinted in-range ids must not be remapped")
	}
	if g.Degree(5) != 0 || g.Degree(1) != 0 {
		t.Error("isolated nodes lost")
	}
}

func TestParseEdgeListHintFallsBackOnOutOfRangeId(t *testing.T) {
	g, st := parseString(t, "# Nodes: 3\n0 1\n9 1\n")
	if !st.Remapped {
		t.Fatal("out-of-hint id must trigger the remap fallback")
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestParseEdgeListIgnoresTrailingFields(t *testing.T) {
	g, _ := parseString(t, "# Nodes: 3\n0 1 0.5\n1 2\t1973-01-01\n")
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestParseEdgeListEmptyAndHintOnly(t *testing.T) {
	g, _ := parseString(t, "")
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty input: %v", g)
	}
	g, _ = parseString(t, "# Nodes: 4 Edges: 0\n")
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("hint-only input: %v", g)
	}
}

func TestParseEdgeListRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"0\n",                            // one id
		"a b\n",                          // not numbers
		"0 -1\n",                         // negative
		"1 2x\n",                         // garbage suffix
		"99999999999999999999999999 1\n", // id overflow
	} {
		if _, _, err := ParseEdgeList(strings.NewReader(s)); err == nil {
			t.Errorf("%q: parsed without error", s)
		}
	}
}

func TestEdgeListExportIngestRoundTrip(t *testing.T) {
	// The identity-mode contract: WriteEdgeList output re-ingests to the
	// byte-identical .nccg, which is what the CI smoke lane asserts.
	orig := graph.PreferentialAttachment(500, 3, 42)
	var txt bytes.Buffer
	if err := WriteEdgeList(&txt, orig); err != nil {
		t.Fatal(err)
	}
	got, st, err := ParseEdgeList(bytes.NewReader(txt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Remapped {
		t.Error("exported list must re-ingest in identity mode")
	}
	sameGraph(t, orig, got)
	if !bytes.Equal(encodeToBytes(t, orig), encodeToBytes(t, got)) {
		t.Fatal("export/ingest round trip not byte-identical in .nccg")
	}
}
