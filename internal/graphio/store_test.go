package graphio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ncc/internal/graph"
)

func TestStorePutOpenRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.KForest(64, 2, 5)
	hash, err := st.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidHash(hash) {
		t.Fatalf("hash %q not 64 hex digits", hash)
	}
	if !st.Has(hash) {
		t.Fatal("Has = false after Put")
	}
	// Idempotent.
	again, err := st.PutGraph(g)
	if err != nil || again != hash {
		t.Fatalf("re-put: %s, %v", again, err)
	}
	got, err := st.Open(hash)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

func TestStoreOpenDetectsCorruption(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Path(10)
	w := make([]uint32, 10)
	for i := range w {
		w[i] = 4
	}
	if err := g.SetCapacityWeights(w); err != nil {
		t.Fatal(err)
	}
	hash, err := st.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(st.Path(hash))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-4] ^= 1 // a capacity weight: still structurally valid, wrong hash
	if err := os.WriteFile(st.Path(hash), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Open(hash); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupted open: %v", err)
	}
}

func TestStorePutStreamValidates(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.PutStream(strings.NewReader("not a graph")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, graph.Cycle(12)); err != nil {
		t.Fatal(err)
	}
	hash, g, err := st.PutStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || !st.Has(hash) {
		t.Fatalf("n=%d has=%v", g.N(), st.Has(hash))
	}
}

func TestResolveThroughFileFamily(t *testing.T) {
	dir := t.TempDir()
	SetStoreDir(dir)
	t.Cleanup(func() { SetStoreDir("") })
	st, err := ActiveStore()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GNM(40, 120, 3)
	hash, err := st.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// The graph registry's "file" family must load through the resolver
	// installed by this package's init.
	got, err := graph.Build(graph.Spec{Family: "file", File: hash})
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
	// Memoized: same instance on re-resolve.
	got2, err := graph.Build(graph.Spec{Family: "file", File: hash})
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got {
		t.Error("expected memoized graph instance")
	}
	if _, err := graph.Build(graph.Spec{Family: "file", File: "zz"}); err == nil {
		t.Error("bad ref accepted")
	}
	if _, err := graph.Build(graph.Spec{Family: "file", File: strings.Repeat("0", 64)}); err == nil {
		t.Error("missing hash resolved")
	}
}

func TestResolveFetchesFromFallback(t *testing.T) {
	// Source store holds the graph; the active store starts empty and must
	// pull it through the fetcher, then serve it locally.
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := NewStore(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := src.PutGraph(graph.Star(30))
	if err != nil {
		t.Fatal(err)
	}
	SetStoreDir(dstDir)
	t.Cleanup(func() { SetStoreDir(""); SetFetcher(nil) })
	fetches := 0
	SetFetcher(func(h string) (io.ReadCloser, error) {
		fetches++
		return os.Open(src.Path(h))
	})
	g, err := Resolve(hash)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 || fetches != 1 {
		t.Fatalf("n=%d fetches=%d", g.N(), fetches)
	}
	if _, err := os.Stat(filepath.Join(dstDir, hash+".nccg")); err != nil {
		t.Errorf("fetched graph not persisted: %v", err)
	}
	// A fetcher returning wrong bytes for the hash must be rejected.
	wrongHash, err := src.PutGraph(graph.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	SetFetcher(func(string) (io.ReadCloser, error) { return os.Open(src.Path(wrongHash)) })
	bogus := strings.Repeat("a", 64)
	if _, err := Resolve(bogus); err == nil {
		t.Error("hash-mismatched fetch accepted")
	}
}
