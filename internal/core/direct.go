package core

import "ncc/internal/comm"

// Direct-message wire tags of this package's algorithms. Algorithm-level
// direct messages share the session's message plane with the collectives'
// wire protocol, so each message's first word carries a tag in its top byte,
// from the space comm reserves for algorithms (>= comm.DirectTagMin); the
// remaining 56 bits (plus any further words) are the message body. All
// messages are 1-2 words and travel through the engine's inline word paths —
// nothing is boxed.
const (
	dtagUHigh      uint64 = comm.DirectTagMin + iota // high-degree id funnel (orientation stage 2)
	dtagAnnounce                                     // neighbor announcement to high-degree nodes
	dtagProbe                                        // rescue status probe
	dtagProbeReply                                   // rescue probe reply; bit 0 = inactive
	dtagEdgeProbe                                    // stage-3 rendezvous probe; word 1 = edge key
	dtagEdgeBoth                                     // stage-3 both-active notification; word 1 = edge key
	dtagNewLeader                                    // MST merge: adopted leader id
	dtagAccept                                       // matching step 2 acceptance
	dtagPropose                                      // matching step 3 proposal
	dtagRepair                                       // fault-repair neighbor exchange payload
)

// dhdr places a direct tag in the top byte of a message's first word.
func dhdr(tag uint64) uint64 { return tag << 56 }

// dbody extracts the 56-bit body of a tagged word.
func dbody(w uint64) uint64 { return w &^ (uint64(0xFF) << 56) }

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
