package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
)

// ColorResult is one node's share of an O(a)-coloring: its color and the
// global palette size (all colors are below Palette = 2(1+eps)*ahat = O(a)).
type ColorResult struct {
	Color   int
	Palette int
}

// paletteEps is the epsilon of Section 5.4's palette size 2(1+eps)*ahat.
const paletteEps = 0.25

// Coloring computes an O(a)-coloring (Theorem 5.5) level by level, highest
// level first, with the Color-Random strategy of Kothapalli et al.: in each
// repetition, every uncolored node of the current level picks a random color
// from its palette and multicasts it to its in-neighbors; a node keeps its
// pick iff it does not see the same color from any out-neighbor. Fixed colors
// are pruned from in-neighbors' palettes by a second multicast and from
// out-neighbors' palettes by an aggregation over (node, color) groups.
// Runs in O((a + log n) log^{3/2} n) rounds w.h.p.
func Coloring(s *comm.Session, g *graph.Graph, o *Orientation) ColorResult {
	me := s.Ctx.ID()
	trees := InNeighborTrees(s, o)
	// ahat is the orientation's maximum out-degree, the O(a) quantity of
	// Theorem 4.12 (<= d* <= 4a), and sizes the paper's palette
	// 2(1+eps)*ahat. Seeding it with len(o.Same) as well (as the original
	// code did) inflates the palette past the certified bound on skewed
	// graphs: Same counts in-neighbors too. Both global maxima are computed
	// in one componentwise-max aggregation.
	maxes, _ := comm.AggregateAndBroadcast(s, comm.Pair{
		A: uint64(len(o.Out)),
		B: uint64(len(o.Same) + len(o.Later)),
	}, true, comm.MaxEach)
	ahat := max(int(maxes.A), 1)
	palette := int(2 * (1 + paletteEps) * float64(ahat))
	// Before a node fixes, it prunes the fixed colors of its out-neighbors
	// (multicast below) AND of its same-level smaller-id in-neighbors
	// (aggregation below) — up to |Same| + |Later| colors, which can exceed
	// 2(1+eps)*ahat on graphs where one node's level peers all have smaller
	// ids. Floor the palette at that conflict degree plus slack so the free
	// set provably never empties (the analogue of the orientation's rescue
	// fallback: certainty instead of w.h.p.). The floor stays within the
	// O(a) bound: conflict degree <= d* <= 4a.
	if floor := int(maxes.B) + 2; palette < floor {
		palette = floor
	}
	if palette < 3 {
		palette = 3
	}

	free := make([]bool, palette)
	for i := range free {
		free[i] = true
	}
	nFree := palette
	takeColor := func(c int) {
		if c >= 0 && c < palette && free[c] {
			free[c] = false
			nFree--
		}
	}
	randFree := func() int {
		k := s.Ctx.Rand().IntN(nFree)
		for c, f := range free {
			if f {
				if k == 0 {
					return c
				}
				k--
			}
		}
		panic("core: empty palette")
	}

	colored := false
	myColor := -1
	for phase := 1; phase <= o.Levels; phase++ {
		lvl := o.Levels - phase + 1
		for {
			picking := !colored && o.Level == lvl
			var cu int
			if picking {
				cu = randFree()
			}
			// Tentative picks to in-neighbors; conflicts are seen by the
			// in-neighbor side (all picking senders this repetition are
			// same-level, since higher levels are already colored).
			got := comm.Multicast(s, trees, picking, uint64(me), uint64(cu), comm.U64Wire{}, ahat)
			conflict := false
			if picking {
				for _, gv := range got {
					if int(gv.Val) == cu {
						conflict = true
					}
				}
			}
			fix := picking && !conflict
			// Permanent choices: in-neighbors prune via multicast...
			got2 := comm.Multicast(s, trees, fix, uint64(me), uint64(cu), comm.U64Wire{}, ahat)
			for _, gv := range got2 {
				takeColor(int(gv.Val))
			}
			// ...and out-neighbors prune via aggregation over (v, color).
			var items []comm.Agg[comm.Flag]
			if fix {
				for _, v := range o.Out {
					items = append(items, comm.Agg[comm.Flag]{
						Group:  uint64(v)*uint64(palette) + uint64(cu),
						Target: v,
					})
				}
			}
			res := comm.Aggregate(s, items, comm.AnyFlag, palette)
			for _, gv := range res {
				takeColor(int(gv.Group % uint64(palette)))
			}
			if fix {
				colored = true
				myColor = cu
			}
			if !s.AnyTrue(o.Level == lvl && !colored) {
				break
			}
		}
	}
	res := ColorResult{Color: myColor, Palette: palette}
	if s.Ctx.Faulty() {
		res = repairColoring(s, g, res)
	}
	return res
}
