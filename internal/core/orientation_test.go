package core

import (
	"testing"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path16":    graph.Path(16),
		"cycle13":   graph.Cycle(13),
		"star24":    graph.Star(24),
		"grid4x5":   graph.Grid(4, 5),
		"tree31":    graph.BinaryTree(31),
		"complete9": graph.Complete(9),
		"kforest2":  graph.KForest(40, 2, 7),
		"kforest4":  graph.KForest(48, 4, 9),
		"gnp":       graph.GNP(32, 0.15, 5),
		"disjoint":  graph.Disjoint(4, 6),
		"empty":     graph.Empty(8),
		"twonodes":  graph.Path(2),
		"pa":        graph.PreferentialAttachment(50, 3, 3),
	}
}

func TestOrientationValidOnManyGraphs(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			cfg := ncc.Config{N: g.N(), Seed: 11, Strict: true}
			os, st, err := RunOrientation(cfg, g, OrientParams{})
			if err != nil {
				t.Fatalf("orientation failed: %v", err)
			}
			if err := verify.Orientation(g, OutLists(os), 0); err != nil {
				t.Fatalf("invalid orientation: %v", err)
			}
			// Outdegree bound: every out-list stays within the certified
			// d* = max over phases of active degrees, which is O(a).
			deg, _ := graph.Degeneracy(g)
			bound := max(4*deg, 4) // d* <= 2*avg <= 4a and a <= degeneracy
			if got := verify.MaxOutdegree(OutLists(os)); got > bound {
				t.Errorf("max outdegree %d exceeds 4*degeneracy bound %d", got, bound)
			}
			for id, o := range os {
				if o.Rescues != 0 {
					t.Errorf("node %d needed %d rescues", id, o.Rescues)
				}
			}
			if st.Dropped() != 0 {
				t.Errorf("%d messages dropped", st.Dropped())
			}
		})
	}
}

func TestOrientationCrossNodeConsistency(t *testing.T) {
	g := graph.KForest(36, 3, 13)
	cfg := ncc.Config{N: g.N(), Seed: 3, Strict: true}
	os, _, err := RunOrientation(cfg, g, OrientParams{})
	if err != nil {
		t.Fatal(err)
	}
	levels := os[0].Levels
	for u, o := range os {
		if o.Levels != levels {
			t.Fatalf("node %d sees %d levels, node 0 sees %d", u, o.Levels, levels)
		}
		if o.Level < 1 || o.Level > levels {
			t.Fatalf("node %d has out-of-range level %d", u, o.Level)
		}
		if len(o.Same)+len(o.Earlier)+len(o.Later) != g.Degree(u) {
			t.Fatalf("node %d classified %d neighbors, degree is %d",
				u, len(o.Same)+len(o.Earlier)+len(o.Later), g.Degree(u))
		}
		for _, v := range o.Same {
			if os[v].Level != o.Level {
				t.Errorf("node %d says %d is same-level, but levels are %d vs %d", u, v, o.Level, os[v].Level)
			}
		}
		for _, v := range o.Earlier {
			if os[v].Level >= o.Level {
				t.Errorf("node %d says %d is earlier, but levels are %d vs %d", u, v, o.Level, os[v].Level)
			}
		}
		for _, v := range o.Later {
			if os[v].Level <= o.Level {
				t.Errorf("node %d says %d is later, but levels are %d vs %d", u, v, o.Level, os[v].Level)
			}
		}
	}
}

func TestOrientationRoundsScaleWithArboricity(t *testing.T) {
	// Theorem 4.12: O((a + log n) log n). Doubling the arboricity at fixed n
	// must not blow up rounds superlinearly.
	const n = 64
	var prev int
	for _, k := range []int{1, 2, 4} {
		g := graph.KForest(n, k, 21)
		cfg := ncc.Config{N: n, Seed: 5, Strict: true}
		_, st, err := RunOrientation(cfg, g, OrientParams{})
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && st.Rounds > 6*prev {
			t.Errorf("k=%d: rounds %d grew too fast from %d", k, st.Rounds, prev)
		}
		prev = st.Rounds
	}
}

// Forcing tiny sketch parameters exercises the rescue fallback; the result
// must still be a valid orientation.
func TestOrientationRescuePathStillCorrect(t *testing.T) {
	g := graph.GNP(24, 0.3, 2)
	cfg := ncc.Config{N: g.N(), Seed: 2, Strict: true}
	os, _, err := RunOrientation(cfg, g, OrientParams{CHash: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Orientation(g, OutLists(os), 0); err != nil {
		t.Fatalf("invalid orientation on rescue path: %v", err)
	}
}

func TestOrientationDeterministic(t *testing.T) {
	g := graph.KForest(20, 2, 1)
	cfg := ncc.Config{N: g.N(), Seed: 77, Strict: true}
	a, _, err1 := RunOrientation(cfg, g, OrientParams{})
	b, _, err2 := RunOrientation(cfg, g, OrientParams{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for u := range a {
		if a[u].Level != b[u].Level || len(a[u].Out) != len(b[u].Out) {
			t.Fatalf("node %d differs across identical runs", u)
		}
	}
}
