package core

// Output-merging helpers shared by the algorithm registry (internal/algo),
// the verifiers and the tests. The one-call RunX drivers that used to live
// here are gone: production callers resolve algorithms through the
// internal/algo registry, whose descriptors pair each per-node program with
// its verifier and summarizer.

// OutLists converts per-node orientations into plain out-neighbor lists.
func OutLists(os []*Orientation) [][]int {
	out := make([][]int, len(os))
	for i, o := range os {
		out[i] = o.Out
	}
	return out
}

// CollectMSTEdges merges per-node MST knowledge into a deduplicated edge list.
func CollectMSTEdges(perNode [][][2]int) [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, edges := range perNode {
		for _, e := range edges {
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}
