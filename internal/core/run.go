package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
)

// Drivers: one-call entry points that spin up a clique, build sessions and
// run a single algorithm, returning per-node outputs plus run statistics.
// They are what the examples, benchmarks and most tests use.

// RunOrientation computes an O(a)-orientation of g.
func RunOrientation(cfg ncc.Config, g *graph.Graph, p OrientParams) ([]*Orientation, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) *Orientation {
		return Orient(comm.NewSession(ctx), g, p)
	})
}

// OutLists converts per-node orientations into plain out-neighbor lists.
func OutLists(os []*Orientation) [][]int {
	out := make([][]int, len(os))
	for i, o := range os {
		out[i] = o.Out
	}
	return out
}

// RunBFS computes a BFS tree of g from src: per-node (distance, parent).
func RunBFS(cfg ncc.Config, g *graph.Graph, src int) ([]BFSResult, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) BFSResult {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		trees, lhat := BroadcastTrees(s, g, o)
		return BFS(s, g, trees, lhat, src)
	})
}

// RunMIS computes a maximal independent set of g.
func RunMIS(cfg ncc.Config, g *graph.Graph) ([]bool, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) bool {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		trees, lhat := BroadcastTrees(s, g, o)
		return MIS(s, g, trees, lhat)
	})
}

// RunMatching computes a maximal matching of g: per-node partner or -1.
func RunMatching(cfg ncc.Config, g *graph.Graph) ([]int, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) int {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		trees, lhat := BroadcastTrees(s, g, o)
		return Matching(s, g, trees, lhat)
	})
}

// RunColoring computes an O(a)-coloring of g: per-node color plus the global
// palette bound.
func RunColoring(cfg ncc.Config, g *graph.Graph) ([]ColorResult, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) ColorResult {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		return Coloring(s, g, o)
	})
}

// RunMST computes the minimum spanning forest of wg; the per-node result
// lists the MST edges this node knows about (for every forest edge, at least
// one endpoint knows it, as in Section 3).
func RunMST(cfg ncc.Config, wg *graph.Weighted) ([][][2]int, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) [][2]int {
		return MST(comm.NewSession(ctx), wg)
	})
}

// CollectMSTEdges merges per-node MST knowledge into a deduplicated edge list.
func CollectMSTEdges(perNode [][][2]int) [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, edges := range perNode {
		for _, e := range edges {
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// RunComponents labels connected components: per-node component label.
func RunComponents(cfg ncc.Config, g *graph.Graph) ([]int, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) int {
		return ComponentLabels(comm.NewSession(ctx), g)
	})
}

// RunForestDecomposition orients g and partitions its edges into O(a)
// forests; returns per-node forest indices (parallel to the orientations'
// Out lists), the orientations, and the forest count.
func RunForestDecomposition(cfg ncc.Config, g *graph.Graph) ([][]int, []*Orientation, int, ncc.Stats, error) {
	type res struct {
		o     *Orientation
		idx   []int
		count int
	}
	rs, st, err := ncc.Collect(cfg, func(ctx *ncc.Context) res {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		idx, count := ForestDecomposition(s, o)
		return res{o: o, idx: idx, count: count}
	})
	if err != nil {
		return nil, nil, 0, st, err
	}
	idxs := make([][]int, len(rs))
	os := make([]*Orientation, len(rs))
	for i, r := range rs {
		idxs[i], os[i] = r.idx, r.o
	}
	return idxs, os, rs[0].count, st, nil
}
