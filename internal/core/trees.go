package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
)

// BroadcastTrees sets up one multicast tree per node u for the group
// A_id(u) = N(u) (Lemma 5.1), using the orientation to bound the setup load:
// for every oriented edge u->v, u injects both memberships — (group v,
// member u) and, on v's behalf, (group u, member v) — so every node injects
// O(a) packets regardless of its degree (the star graph being the paper's
// motivating example). Returns the trees and the globally agreed maximum
// degree (the membership bound lhat needed by plain Multicast).
//
// Cost: O(a + log n) rounds w.h.p.; tree congestion O(a + log n) w.h.p.
func BroadcastTrees(s *comm.Session, g *graph.Graph, o *Orientation) (*comm.Trees, int) {
	me := s.Ctx.ID()
	items := make([]comm.TreeItem, 0, 2*len(o.Out))
	for _, v := range o.Out {
		items = append(items,
			comm.TreeItem{Group: uint64(v), Origin: me},
			comm.TreeItem{Group: uint64(me), Origin: v},
		)
	}
	trees := s.SetupTrees(items)
	lhat, _ := s.MaxAll(uint64(g.Degree(me)), true)
	return trees, max(int(lhat), 1)
}

// InNeighborTrees sets up one multicast tree per node u for the group
// A_id(u) = N_in(u), as the coloring algorithm of Section 5.4 requires:
// every node joins the group of each of its out-neighbors.
func InNeighborTrees(s *comm.Session, o *Orientation) *comm.Trees {
	me := s.Ctx.ID()
	items := make([]comm.TreeItem, 0, len(o.Out))
	for _, v := range o.Out {
		items = append(items, comm.TreeItem{Group: uint64(v), Origin: me})
	}
	return s.SetupTrees(items)
}
