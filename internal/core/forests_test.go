package core

import (
	"testing"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

func TestForestDecompositionIsValidPartition(t *testing.T) {
	for name, g := range testGraphs() {
		if g.N() < 2 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cfg := ncc.Config{N: g.N(), Seed: 19, Strict: true}
			idxs, os, count, _, err := RunForestDecomposition(cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			forests := ForestsOf(g, os, idxs, count)
			if err := verify.ForestPartition(g, forests); err != nil {
				t.Fatalf("invalid forest partition: %v", err)
			}
			// Nash-Williams: at least arboricity-many forests are necessary;
			// we promise O(a), concretely <= 4*degeneracy.
			deg, _ := graph.Degeneracy(g)
			if g.M() > 0 && count > max(4*deg, 4) {
				t.Errorf("%d forests exceed 4*degeneracy = %d", count, 4*deg)
			}
			if lb := graph.ArboricityLowerBound(g); count < lb {
				t.Errorf("%d forests below the Nash-Williams lower bound %d", count, lb)
			}
		})
	}
}

func TestForestCountConsistentAcrossNodes(t *testing.T) {
	g := graph.KForest(30, 3, 5)
	cfg := ncc.Config{N: g.N(), Seed: 2, Strict: true}
	idxs, os, count, _, err := RunForestDecomposition(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	for u, o := range os {
		if len(idxs[u]) != len(o.Out) {
			t.Fatalf("node %d: %d indices for %d out-edges", u, len(idxs[u]), len(o.Out))
		}
		for _, f := range idxs[u] {
			if f < 0 || f >= count {
				t.Fatalf("node %d: forest index %d out of range [0,%d)", u, f, count)
			}
		}
	}
}
