package core

import (
	"fmt"

	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/hashing"
	"ncc/internal/ncc"
	"ncc/internal/seq"
)

// coin/finished encoding for the per-phase component multicast.
const (
	coinHeads    = 1 << 0
	compFinished = 1 << 1
)

// MST computes the minimum spanning forest of wg in O(log^4 n) rounds w.h.p.
// (Theorem 3.2): Boruvka phases with heads/tails clustering; each component
// maintains a multicast tree rooted at its leader; the lightest outgoing edge
// is found by binary (here: quaternary) search over the combined
// weight-and-edge-key space using XOR edge sketches aggregated to the leader
// (the FindMin procedure of King, Kutten and Thorup, Section 3).
//
// Returns the forest edges this node knows about: for every forest edge, the
// endpoint inside the merging component learns it, exactly the paper's output
// contract. Requires n <= 2^20 and weights below 2^23 (one sort key per
// Theta(log n)-bit word).
func MST(s *comm.Session, wg *graph.Weighted) [][2]int {
	edges, _ := MSTWithComponents(s, wg)
	return edges
}

// ComponentLabels computes connected components of g: every node learns a
// label (the id of its component's final Boruvka leader) shared by exactly
// the nodes of its component. A corollary of the MST machinery on unit
// weights, in O(log^4 n) rounds w.h.p.
func ComponentLabels(s *comm.Session, g *graph.Graph) int {
	_, leader := MSTWithComponents(s, graph.NewWeighted(g))
	return leader
}

// MSTWithComponents is MST, additionally returning the node's final
// component leader (a connectivity label).
func MSTWithComponents(s *comm.Session, wg *graph.Weighted) ([][2]int, int) {
	ctx := s.Ctx
	me := ctx.ID()
	n := ctx.N()
	if n > 1<<20 {
		panic("core: MST supports at most 2^20 nodes")
	}
	if wg.MaxWeight() >= 1<<23 {
		// Sort keys must stay below 2^63: bit 63 carries the
		// search-active/edge-found flag in the component multicasts.
		panic("core: MST supports weights below 2^23")
	}
	nbrs := wg.Neighbors(me)

	// Global search bounds over the sort-key space.
	var loLocal, hiLocal uint64
	hasEdge := len(nbrs) > 0
	if hasEdge {
		loLocal, hiLocal = ^uint64(0), 0
		for _, v := range nbrs {
			k := seq.SortKey(me, int(v), wg.Weight(me, int(v)), n)
			loLocal = min(loLocal, k)
			hiLocal = max(hiLocal, k)
		}
	}
	minKey, _ := comm.AggregateAndBroadcast(s, loLocal, hasEdge, comm.Min)
	maxKey, anyEdge := comm.AggregateAndBroadcast(s, hiLocal, hasEdge, comm.Max)
	if !anyEdge {
		minKey, maxKey = 0, 0
	}
	// Quaternary search shrinks the span by a factor of about 4 per step but
	// only by an additive constant once spans are tiny; a few extra steps
	// cover the tail.
	steps := 4
	for span := maxKey - minKey; span > 0; span >>= 2 {
		steps++
	}

	leader := me
	finished := !anyEdge
	var out [][2]int

	for {
		// Rebuild component trees: every non-leader joins its leader's group.
		var items []comm.TreeItem
		if leader != me {
			items = append(items, comm.TreeItem{Group: uint64(leader), Origin: me})
		}
		trees := s.SetupTrees(items)

		// Leader flips the coin and shares it with the component.
		isLeader := leader == me
		var cmsg uint64
		coinIsHeads := false
		if isLeader {
			coinIsHeads = ctx.Rand().Uint64()&1 == 1
			if coinIsHeads {
				cmsg |= coinHeads
			}
			if finished {
				cmsg |= compFinished
			}
		}
		got := comm.Multicast(s, trees, isLeader, uint64(me), cmsg, comm.U64Wire{}, 1)
		if !isLeader {
			for _, gv := range got {
				if gv.Group != uint64(leader) {
					panic(fmt.Sprintf("core: node %d got coin for foreign component %d", me, gv.Group))
				}
				coinIsHeads = gv.Val&coinHeads != 0
				finished = gv.Val&compFinished != 0
			}
		}

		// FindMin: locate the lightest outgoing edge of the component.
		foundMin, holderV := findLightest(s, wg, trees, leader, isLeader, finished, minKey, maxKey, steps)
		if isLeader && !foundMin {
			finished = true
		}

		// Merge: the holder u of a tails-component's lightest edge {u,v} asks
		// v for its component's coin and leader; on heads, the edge joins the
		// forest and the component adopts v's leader.
		isHolder := foundMin && holderV >= 0 && !coinIsHeads
		var items2 []comm.TreeItem
		if isHolder {
			items2 = append(items2, comm.TreeItem{Group: uint64(holderV), Origin: me})
		}
		trees2 := s.SetupTrees(items2)
		info := comm.Pair{A: boolU64(coinIsHeads), B: uint64(leader)}
		got2 := comm.Multicast(s, trees2, true, uint64(me), info, comm.PairWire{}, 1)
		newLeader := -1
		if isHolder {
			for _, gv := range got2 {
				if gv.Group != uint64(holderV) {
					continue
				}
				if gv.Val.A != 0 { // other side flipped heads
					out = append(out, [2]int{me, holderV})
					newLeader = int(gv.Val.B)
				}
			}
		}
		if newLeader != -1 && me != leader {
			ctx.SendWord(leader, ncc.Word(dhdr(dtagNewLeader)|uint64(uint32(newLeader))))
		}
		s.Advance()
		adopted := -1
		if isLeader && newLeader != -1 { // leader itself held the edge
			adopted = newLeader
		}
		s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
			if isLeader && ws[0]>>56 == dtagNewLeader {
				adopted = int(int32(dbody(ws[0])))
			}
		})
		// Leader announces the (possibly new) leader to the component.
		ann := uint64(leader)
		if isLeader && adopted != -1 {
			ann = uint64(adopted)
		}
		got3 := comm.Multicast(s, trees, isLeader, uint64(me), ann, comm.U64Wire{}, 1)
		if isLeader {
			if adopted != -1 {
				leader = adopted
			}
		} else {
			for _, gv := range got3 {
				leader = int(gv.Val)
			}
		}
		// Terminate once no component found an outgoing edge.
		if !s.AnyTrue(isLeader && foundMin) {
			return out, leader
		}
	}
}

// findLightest runs the quaternary sketch search of Section 3 for every
// component simultaneously. It returns found=true at the leader when the
// component has an outgoing edge, and at the unique component member incident
// to the lightest one, which also learns the outside endpoint holderV
// (-1 everywhere else).
func findLightest(s *comm.Session, wg *graph.Weighted, trees *comm.Trees, leader int, isLeader, finished bool, minKey, maxKey uint64, steps int) (found bool, holderV int) {
	ctx := s.Ctx
	me := ctx.ID()
	n := ctx.N()
	nbrs := wg.Neighbors(me)

	lo, hi := minKey, maxKey
	exists := false

	for step := 0; step <= steps; step++ {
		// Leader shares the current range; bit 63 flags an active search.
		var rangeMsg comm.Pair
		if isLeader && !finished {
			flag := uint64(1) << 63
			if step > 0 && !exists {
				flag = 0
			}
			rangeMsg = comm.Pair{A: lo | flag, B: hi}
		}
		gotR := comm.Multicast(s, trees, isLeader, uint64(me), rangeMsg, comm.PairWire{}, 1)
		myLo, myHi, active := lo, hi, isLeader && !finished && (step == 0 || exists)
		for _, gv := range gotR {
			active = gv.Val.A&(1<<63) != 0
			myLo, myHi = gv.Val.A&^(1<<63), gv.Val.B
		}

		// Members sketch their incident edges over three prefixes of the
		// range (full range in step 0 for the existence test).
		fam := s.SharedFamily(0x736b65746368) // fresh trial functions per step
		var sk comm.Sketch3
		var m [3]uint64
		if step == 0 {
			m[0], m[1], m[2] = myHi, myHi, myHi
		} else {
			span := myHi - myLo
			m[0] = myLo + span/4
			m[1] = myLo + span/2
			m[2] = myLo + span/4*3
		}
		if active {
			for _, v32 := range nbrs {
				v := int(v32)
				k := seq.SortKey(me, v, wg.Weight(me, v), n)
				if k < myLo || k > myHi {
					continue
				}
				up := fam.Hash(hashing.PackEdge(me, v))
				down := fam.Hash(hashing.PackEdge(v, me))
				for i := 0; i < 3; i++ {
					if k <= m[i] {
						sk.S[i].Up ^= up
						sk.S[i].Down ^= down
					}
				}
			}
		}
		var items []comm.Agg[comm.Sketch3]
		if active {
			items = append(items, comm.Agg[comm.Sketch3]{Group: uint64(leader), Target: leader, Val: sk})
		}
		res := comm.Aggregate(s, items, comm.MergeSketch3, 1)
		if isLeader && !finished && (step == 0 || exists) {
			var agg comm.Sketch3
			for _, gv := range res {
				agg = gv.Val
			}
			outIn := func(i int) bool { return agg.S[i].Up != agg.S[i].Down }
			if step == 0 {
				exists = outIn(0)
			} else {
				switch {
				case outIn(0):
					hi = m[0]
				case outIn(1):
					lo, hi = m[0]+1, m[1]
				case outIn(2):
					lo, hi = m[1]+1, m[2]
				default:
					lo = m[2] + 1
				}
			}
		}
	}

	// Leader announces the final key (bit 63 set when an edge exists).
	var ann uint64
	if isLeader && !finished && exists {
		ann = lo | 1<<63
	}
	gotA := comm.Multicast(s, trees, isLeader, uint64(me), ann, comm.U64Wire{}, 1)
	final, ok := uint64(0), false
	if isLeader {
		final, ok = lo, !finished && exists
	}
	for _, gv := range gotA {
		if gv.Val&(1<<63) != 0 {
			final, ok = gv.Val&^(1<<63), true
		}
	}
	holderV = -1
	if ok {
		for _, v32 := range nbrs {
			v := int(v32)
			if seq.SortKey(me, v, wg.Weight(me, v), n) == final {
				holderV = v
			}
		}
	}
	return ok, holderV
}
