package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
)

// Test-only drivers: one-call clique harnesses for exercising the algorithms
// from this package's tests. Production callers go through the internal/algo
// registry instead (which cannot be imported here without a cycle, as it
// builds on this package).

func RunOrientation(cfg ncc.Config, g *graph.Graph, p OrientParams) ([]*Orientation, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) *Orientation {
		return Orient(comm.NewSession(ctx), g, p)
	})
}

func RunBFS(cfg ncc.Config, g *graph.Graph, src int) ([]BFSResult, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) BFSResult {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		trees, lhat := BroadcastTrees(s, g, o)
		return BFS(s, g, trees, lhat, src)
	})
}

func RunMIS(cfg ncc.Config, g *graph.Graph) ([]bool, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) bool {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		trees, lhat := BroadcastTrees(s, g, o)
		return MIS(s, g, trees, lhat)
	})
}

func RunMatching(cfg ncc.Config, g *graph.Graph) ([]int, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) int {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		trees, lhat := BroadcastTrees(s, g, o)
		return Matching(s, g, trees, lhat)
	})
}

func RunColoring(cfg ncc.Config, g *graph.Graph) ([]ColorResult, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) ColorResult {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		return Coloring(s, g, o)
	})
}

func RunMST(cfg ncc.Config, wg *graph.Weighted) ([][][2]int, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) [][2]int {
		return MST(comm.NewSession(ctx), wg)
	})
}

func RunComponents(cfg ncc.Config, g *graph.Graph) ([]int, ncc.Stats, error) {
	return ncc.Collect(cfg, func(ctx *ncc.Context) int {
		return ComponentLabels(comm.NewSession(ctx), g)
	})
}

func RunForestDecomposition(cfg ncc.Config, g *graph.Graph) ([][]int, []*Orientation, int, ncc.Stats, error) {
	type res struct {
		o     *Orientation
		idx   []int
		count int
	}
	rs, st, err := ncc.Collect(cfg, func(ctx *ncc.Context) res {
		s := comm.NewSession(ctx)
		o := Orient(s, g, OrientParams{})
		idx, count := ForestDecomposition(s, o)
		return res{o: o, idx: idx, count: count}
	})
	if err != nil {
		return nil, nil, 0, st, err
	}
	idxs := make([][]int, len(rs))
	os := make([]*Orientation, len(rs))
	for i, r := range rs {
		idxs[i], os[i] = r.idx, r.o
	}
	return idxs, os, rs[0].count, st, nil
}
