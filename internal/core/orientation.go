// Package core implements the graph algorithms of the Node-Capacitated
// Clique paper on top of the communication primitives: the O(a)-orientation
// (Section 4) with its Identification Algorithm, broadcast trees (Section 5),
// BFS trees, maximal independent set, maximal matching, O(a)-coloring, and
// the O(log^4 n) minimum spanning tree (Section 3).
//
// Every algorithm is an SPMD collective: the per-node program calls it with
// the node's local view (its own adjacency) and receives the node's share of
// the output. Graph objects are shared read-only across node goroutines, but
// each node only ever reads its own adjacency list, matching the model's
// knowledge assumptions.
package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/hashing"
	"ncc/internal/ncc"
)

// node status during orientation.
const (
	stWaiting = iota
	stActive
	stInactive
)

// OrientParams tunes the orientation algorithm.
type OrientParams struct {
	// CHash is the constant c of Section 4.2: step 1 of stage 2 uses s = c
	// hash functions and q = 4ec*d**log n trials; step 2 uses s = c*log n and
	// q = 4ec*log^2 n. The paper's analysis wants c > 6.
	CHash int
}

func (p OrientParams) withDefaults() OrientParams {
	if p.CHash == 0 {
		p.CHash = 6
	}
	return p
}

// Orientation is one node's share of an O(a)-orientation (Theorem 4.12).
type Orientation struct {
	// Level is the phase at which this node became inactive; the level sets
	// L_1..L_T of Section 4 and the coloring order of Section 5.4.
	Level int
	// Out lists the out-neighbors: later-level neighbors plus same-level
	// neighbors with larger id. len(Out) = O(a).
	Out []int
	// Same lists same-level neighbors, Earlier the lower-level
	// (inactive-before-me) neighbors, Later the higher-level ones.
	Same    []int
	Earlier []int
	Later   []int
	// Levels is T, the total number of levels (same at every node).
	Levels int
	// DStar is the running maximum d* of per-phase active degrees, the O(a)
	// bound the algorithm certifies.
	DStar int
	// Rescues counts neighbors resolved by the direct-probe fallback rather
	// than the sketch (0 in virtually every run).
	Rescues int
}

// directBuf demultiplexes algorithm-level direct messages by tag so that a
// stage can consume its own messages without disturbing others'.
type directBuf struct {
	uhighIDs  []int32
	announces []ncc.NodeID
	probes    []ncc.NodeID
	replies   []struct {
		from     ncc.NodeID
		inactive bool
	}
	edgeProbes []struct {
		from ncc.NodeID
		key  uint64
	}
	edgeBoths []uint64
}

func (b *directBuf) pump(s *comm.Session) {
	s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
		switch ws[0] >> 56 {
		case dtagUHigh:
			b.uhighIDs = append(b.uhighIDs, int32(dbody(ws[0])))
		case dtagAnnounce:
			b.announces = append(b.announces, from)
		case dtagProbe:
			b.probes = append(b.probes, from)
		case dtagProbeReply:
			b.replies = append(b.replies, struct {
				from     ncc.NodeID
				inactive bool
			}{from, ws[0]&1 != 0})
		case dtagEdgeProbe:
			b.edgeProbes = append(b.edgeProbes, struct {
				from ncc.NodeID
				key  uint64
			}{from, ws[1]})
		case dtagEdgeBoth:
			b.edgeBoths = append(b.edgeBoths, ws[1])
		default:
			panic("core: unexpected direct message during orientation")
		}
	})
}

// sumCntMax is the stage-1 aggregate (sum of d_i, count of d_i > 0, count of
// non-inactive nodes). Its codec is defined here — the comm package's
// Wire[T] contract is open to algorithm-specific payloads.
type sumCntMax struct{ sum, cntPos, cntLive uint64 }

// scmWire is the three-word codec for sumCntMax.
type scmWire struct{}

func (scmWire) Words() int { return 3 }

func (scmWire) Encode(v sumCntMax, ws []uint64) { ws[0], ws[1], ws[2] = v.sum, v.cntPos, v.cntLive }

func (scmWire) Decode(ws []uint64) sumCntMax {
	return sumCntMax{sum: ws[0], cntPos: ws[1], cntLive: ws[2]}
}

var combineSCM = comm.Combiner[sumCntMax]{Wire: scmWire{}, Combine: func(a, b sumCntMax) sumCntMax {
	return sumCntMax{a.sum + b.sum, a.cntPos + b.cntPos, a.cntLive + b.cntLive}
}}

// Orient computes an O(a)-orientation of g (Theorem 4.12): every node learns
// a direction for each of its incident edges such that the maximum outdegree
// is at most 2*avg-degree of any phase, which is O(a). Runs in
// O((a + log n) log n) rounds w.h.p.
func Orient(s *comm.Session, g *graph.Graph, p OrientParams) *Orientation {
	p = p.withDefaults()
	ctx := s.Ctx
	me := ctx.ID()
	n := ctx.N()
	logn := max(1, ncc.CeilLog2(n))
	nbrs := g.Neighbors(me)
	d := len(nbrs)

	status := stWaiting
	var result *Orientation
	var playFor []int // once inactive: out-neighbors possibly not yet inactive
	dStar := 1
	buf := &directBuf{}
	levels := 0

	for phase := 1; ; phase++ {
		// ---- Stage 1: determine d_i(u) and the active set. ----
		var items []comm.Agg[uint64]
		if status == stInactive {
			for _, w := range playFor {
				items = append(items, comm.Agg[uint64]{Group: uint64(w), Target: w, Val: 1})
			}
		}
		res := comm.Aggregate(s, items, comm.Sum, 1)
		di := 0
		if status != stInactive {
			inact := 0
			for _, gv := range res {
				inact = int(gv.Val)
			}
			di = d - inact
		}

		var scm sumCntMax
		if status != stInactive {
			scm.cntLive = 1
			if di > 0 {
				scm.sum = uint64(di)
				scm.cntPos = 1
			}
		}
		tot, _ := comm.AggregateAndBroadcast(s, scm, true, combineSCM)
		if tot.cntLive == 0 {
			levels = phase - 1
			break
		}

		if status != stInactive && di == 0 {
			// All incident edges were oriented by earlier phases: this node
			// leaves without stage work (its neighbors are all inactive).
			status = stInactive
			earlier := make([]int, 0, d)
			for _, v := range nbrs {
				earlier = append(earlier, int(v))
			}
			result = &Orientation{Level: phase, Earlier: earlier}
			playFor = nil
		}

		active := false
		if status == stWaiting && tot.cntPos > 0 {
			avg := float64(tot.sum) / float64(tot.cntPos)
			active = float64(di) <= 2*avg
		}
		if active {
			status = stActive
		}

		dsiU, _ := s.MaxAll(uint64(di), active)
		dsi := max(int(dsiU), 1)
		if dsi > dStar {
			dStar = dsi
		}

		// ---- Stage 2 step 1: sketch-based identification. ----
		// The aggregation delivers to every node that players play for, not
		// just to learning nodes, so the delivery-window bound must cover the
		// worst-case in-player count of ANY node: its number of inactive
		// neighbors (exactly d-d_i while live, exactly |Earlier| once
		// inactive). The paper's coarser bound is lhat2 = q1 itself.
		q1 := max(16, 11*p.CHash*dStar*logn)
		blue := d - di
		if status == stInactive && result != nil {
			blue = len(result.Earlier)
		}
		maxBlueU, _ := s.MaxAll(uint64(blue), true)
		lhat21 := min(q1, p.CHash*int(maxBlueU)+1)

		var candidates []int
		if status == stActive {
			candidates = make([]int, 0, d)
			for _, v := range nbrs {
				candidates = append(candidates, int(v))
			}
		}
		r1 := runIdentification(s, identifySpec{
			learning: status == stActive, candidates: candidates, redCount: di,
			playing: status == stInactive && result != nil && result.Level < phase, playFor: playFor,
			s: p.CHash, q: q1, lhat2: lhat21,
		})
		reds := map[int]bool{}
		for _, v := range r1.reds {
			reds[v] = true
		}
		solved := status == stActive && len(reds) == di

		// ---- Stage 2 step 2: high-degree broadcast + narrowed sketch. ----
		isHigh := status == stActive && !solved && (d-di) > n/logn
		isLow := status == stActive && !solved && !isHigh
		cntHighU, _ := comm.AggregateAndBroadcast(s, boolU64(isHigh), true, comm.Sum)
		cntHigh := int(cntHighU)
		rescues := 0
		if cntHigh > 0 {
			reds2 := stage2High(s, buf, me, cntHigh, dStar, logn, isHigh, status != stInactive, nbrs)
			if isHigh {
				for _, v := range reds2 {
					reds[v] = true
				}
				solved = len(reds) == di
			}
		}
		if s.AnyTrue(isLow) {
			var treeItems []comm.TreeItem
			if status == stInactive {
				for _, w := range playFor {
					treeItems = append(treeItems, comm.TreeItem{Group: uint64(w), Origin: me})
				}
			}
			trees := s.SetupTrees(treeItems)
			got := comm.Multicast(s, trees, isLow, uint64(me), comm.Flag{}, comm.ZeroWire{}, dStar)
			lowSet := map[int]bool{}
			for _, gv := range got {
				lowSet[int(gv.Group)] = true
			}
			var playFor2 []int
			for _, w := range playFor {
				if lowSet[w] {
					playFor2 = append(playFor2, w)
				}
			}
			var cand2 []int
			for _, v := range candidates {
				if !reds[v] {
					cand2 = append(cand2, v)
				}
			}
			s2 := p.CHash * logn
			q2 := max(64, 11*p.CHash*logn*logn)
			r2 := runIdentification(s, identifySpec{
				learning: isLow, candidates: cand2, redCount: di - len(reds),
				playing: status == stInactive, playFor: playFor2,
				s: s2, q: q2, lhat2: min(q2, s2*int(maxBlueU)+1),
			})
			if isLow {
				for _, v := range r2.reds {
					reds[v] = true
				}
				solved = len(reds) == di
			}
		}

		// ---- Rescue fallback (robustness beyond the paper): directly probe any
		// still-unresolved neighbors. Triggers only on sketch failure. ----
		needRescue := status == stActive && !solved
		unk := 0
		if needRescue {
			unk = d - len(reds)
		}
		maxUnkU, _ := s.MaxAll(uint64(unk), true)
		if maxUnkU > 0 {
			got := stage2Rescue(s, buf, me, int(maxUnkU), logn, needRescue, status == stInactive, nbrs, reds)
			if needRescue {
				rescues = len(got)
				for _, v := range got {
					reds[v] = true
				}
				solved = len(reds) == di
				if !solved {
					panic("core: orientation rescue failed to resolve all neighbors")
				}
			}
		}

		// ---- Stage 3: split red edges into same-level and waiting. ----
		redList := make([]int, 0, len(reds))
		for _, v := range nbrs {
			if reds[int(v)] {
				redList = append(redList, int(v))
			}
		}
		same := stage3(s, buf, me, n, dsi, status == stActive, redList)

		if status == stActive {
			o := &Orientation{Level: phase, Same: same, Rescues: rescues}
			sameSet := map[int]bool{}
			for _, v := range same {
				sameSet[v] = true
			}
			for _, v := range redList {
				if !sameSet[v] {
					o.Later = append(o.Later, v)
					o.Out = append(o.Out, v)
				} else if v > me {
					o.Out = append(o.Out, v)
				}
			}
			for _, v := range nbrs {
				if !reds[int(v)] {
					o.Earlier = append(o.Earlier, int(v))
				}
			}
			playFor = append([]int(nil), o.Later...)
			result = o
			status = stInactive
		}
	}

	result.Levels = levels
	result.DStar = dStar
	return result
}

// stage2High lets unsuccessful high-degree nodes learn their red edges
// directly: their ids are funneled to node 0, pipelined to everyone, and
// every active-or-waiting node announces itself to its high-degree neighbors
// within a randomized window.
func stage2High(s *comm.Session, buf *directBuf, me, cntHigh, dStar, logn int, isHigh, liveSender bool, nbrs []int32) []int {
	ctx := s.Ctx
	// Funnel ids to node 0.
	w1 := (cntHigh+logn-1)/logn + 1
	sendAt := -1
	if isHigh && me != 0 {
		sendAt = ctx.Rand().IntN(w1)
	}
	var collected []uint64
	if isHigh && me == 0 {
		collected = append(collected, uint64(me))
	}
	for t := 0; t < w1; t++ {
		if t == sendAt {
			ctx.SendWord(0, ncc.Word(dhdr(dtagUHigh)|uint64(uint32(me))))
		}
		s.Advance()
		buf.pump(s)
		if me == 0 {
			for _, id := range buf.uhighIDs {
				collected = append(collected, uint64(id))
			}
			buf.uhighIDs = buf.uhighIDs[:0]
		}
	}
	ids := s.BroadcastWords(0, collected, cntHigh)

	// Announce to high-degree neighbors within the window.
	highSet := map[int]bool{}
	for _, id := range ids {
		highSet[int(id)] = true
	}
	w2 := max(cntHigh, dStar, 1)
	type job struct{ to, at int }
	var jobs []job
	if liveSender {
		for _, v := range nbrs {
			if highSet[int(v)] && int(v) != me {
				jobs = append(jobs, job{to: int(v), at: ctx.Rand().IntN(w2)})
			}
		}
	}
	var reds []int
	for t := 0; t < w2; t++ {
		for _, j := range jobs {
			if j.at == t {
				ctx.SendWord(j.to, ncc.Word(dhdr(dtagAnnounce)))
			}
		}
		s.Advance()
		buf.pump(s)
		if isHigh {
			reds = append(reds, buf.announces...)
		}
		buf.announces = buf.announces[:0]
	}
	buf.announces = buf.announces[:0]
	return reds
}

// stage2Rescue directly probes unresolved neighbors; probed nodes reply with
// their status. Not part of the paper (which accepts 1/poly(n) failure); it
// converts the w.h.p. guarantee into certainty at O(maxUnknown/log n) rounds
// on the rare failure path.
func stage2Rescue(s *comm.Session, buf *directBuf, me, maxUnk, logn int, needRescue, inactive bool, nbrs []int32, reds map[int]bool) []int {
	ctx := s.Ctx
	w := (maxUnk+logn-1)/logn + 1
	type job struct{ to, at int }
	var jobs []job
	if needRescue {
		for _, v := range nbrs {
			if !reds[int(v)] {
				jobs = append(jobs, job{to: int(v), at: ctx.Rand().IntN(w)})
			}
		}
	}
	var replyTo []ncc.NodeID
	var found []int
	for t := 0; t < w+2; t++ {
		for _, j := range jobs {
			if j.at == t {
				ctx.SendWord(j.to, ncc.Word(dhdr(dtagProbe)))
			}
		}
		for _, from := range replyTo {
			ctx.SendWord(from, ncc.Word(dhdr(dtagProbeReply)|boolU64(inactive)))
		}
		replyTo = replyTo[:0]
		s.Advance()
		buf.pump(s)
		replyTo = append(replyTo, buf.probes...)
		buf.probes = buf.probes[:0]
		for _, r := range buf.replies {
			if !r.inactive {
				found = append(found, r.from)
			}
		}
		buf.replies = buf.replies[:0]
	}
	return found
}

// stage3 resolves which red edges connect two active nodes: both endpoints
// hash the undirected edge key to a rendezvous node and a round; the
// rendezvous observes the collision and notifies both (Section 4.2, Stage 3).
func stage3(s *comm.Session, buf *directBuf, me, n, dsi int, active bool, redList []int) []int {
	ctx := s.Ctx
	fH := s.SharedFamily(0x73746167653361)
	fR := s.SharedFamily(0x73746167653362)
	w := max(dsi, 1)

	type job struct {
		to, at int
		key    uint64
	}
	var jobs []job
	if active {
		for _, v := range redList {
			key := hashing.PackUndirected(me, v)
			jobs = append(jobs, job{
				to:  int(fH.Range(key, uint64(n))),
				at:  int(fR.Range(key, uint64(w))),
				key: key,
			})
		}
	}

	rendezvous := map[uint64][]ncc.NodeID{}
	bothKeys := map[uint64]bool{}
	type resp struct {
		to  ncc.NodeID
		key uint64
	}
	var pending []resp

	observe := func(key uint64, from ncc.NodeID) {
		rendezvous[key] = append(rendezvous[key], from)
		if len(rendezvous[key]) == 2 {
			for _, peer := range rendezvous[key] {
				if peer == me {
					bothKeys[key] = true
				} else {
					pending = append(pending, resp{to: peer, key: key})
				}
			}
		}
	}

	for t := 0; t < w+2; t++ {
		for _, j := range jobs {
			if j.at != t {
				continue
			}
			if j.to == me {
				observe(j.key, me)
			} else {
				ctx.SendWords2(j.to, ncc.Words2{dhdr(dtagEdgeProbe), j.key})
			}
		}
		for _, r := range pending {
			ctx.SendWords2(r.to, ncc.Words2{dhdr(dtagEdgeBoth), r.key})
		}
		pending = pending[:0]
		s.Advance()
		buf.pump(s)
		for _, p := range buf.edgeProbes {
			observe(p.key, p.from)
		}
		buf.edgeProbes = buf.edgeProbes[:0]
		for _, k := range buf.edgeBoths {
			bothKeys[k] = true
		}
		buf.edgeBoths = buf.edgeBoths[:0]
	}

	var same []int
	for _, v := range redList {
		if bothKeys[hashing.PackUndirected(me, v)] {
			same = append(same, v)
		}
	}
	return same
}
