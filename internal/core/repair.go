package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
)

// Fault-aware repair: when a run has fault injection enabled, the collective
// phases of MIS, coloring and matching can terminate with survivor-local
// safety violations — two alive neighbors both in the set, an alive edge
// sharing a color, an unreciprocated partner claim — because aggregates were
// computed over a clique that lost messages or nodes mid-protocol. The repair
// pass restores those safety properties with a purely local, capacity-bounded
// neighbor exchange: every node ships its tentative output to each graph
// neighbor several times over a fixed window and then resolves conflicts by
// demotion (leave the set, take a fresh color, drop the claim). Demotion only
// ever weakens liveness properties (maximality, spanning) that a degraded run
// has already given up on; it never manufactures a wrong claim.
//
// The pass runs only under fault injection (ctx.Faulty()); reliable runs take
// the exact pre-repair message schedule and stay byte-identical.

// repairPasses is the number of full neighbor sweeps in a repair exchange.
// Each sweep retransmits the same value, so a message lost to drop faults or
// receive-capacity truncation in one round is recovered in a later one.
const repairPasses = 8

// repairExchange ships val (56-bit body) to every graph neighbor over a fixed
// number of rounds — identical at all nodes, so concurrently repairing nodes
// stay overlapped even when collectives released them at different rounds —
// and returns the last value heard from each neighbor. Sends are batched at
// the capacity bound with a round-robin window keyed to the global round and
// the sender id, which spreads receiver load; retransmission covers whatever
// the spread does not.
func repairExchange(s *comm.Session, g *graph.Graph, val uint64) map[int]uint64 {
	ctx := s.Ctx
	me := ctx.ID()
	nbrs := g.Neighbors(me)
	deg := len(nbrs)
	batch := max(1, ctx.MinCap())
	stride := max(1, (g.MaxDegree()+batch-1)/batch)
	total := repairPasses * stride * stride
	heard := make(map[int]uint64, deg)
	msg := ncc.Word(dhdr(dtagRepair) | dbody(val))
	for t := 0; t < total; t++ {
		if lo := ((ctx.Round() + me) % stride) * batch; lo < deg {
			for _, v := range nbrs[lo:min(lo+batch, deg)] {
				ctx.SendWord(int(v), msg)
			}
		}
		s.Advance()
		s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
			if ws[0]>>56 == dtagRepair {
				heard[from] = dbody(ws[0])
			}
		})
	}
	return heard
}

// repairMIS re-establishes independence among survivors: a node stays in the
// set only if no smaller-id neighbor reported membership. Exactly one side of
// a conflicting pair needs to hear the other for the pair to resolve, and the
// loser's demotion cannot create a new conflict (removal keeps the set
// independent). Maximality may degrade — that is the accepted survivor
// contract.
func repairMIS(s *comm.Session, g *graph.Graph, inSet bool) bool {
	heard := repairExchange(s, g, boolU64(inSet))
	if !inSet {
		return false
	}
	me := s.Ctx.ID()
	for v, w := range heard {
		if w != 0 && v < me {
			return false
		}
	}
	return true
}

// repairColorCeiling is a graph-global upper bound on every color a clean
// coloring run can emit (the palette is O(MaxDegree)); colors at or above it
// are degradation artifacts. Repair recolors into the disjoint range
// [ceiling, ceiling+n), where node ids keep fresh colors proper by
// construction.
func repairColorCeiling(g *graph.Graph) int { return 4 * (g.MaxDegree() + 2) }

// repairColoring re-establishes properness among survivors: a node whose
// color is missing, out of the legitimate range, or reported by any neighbor
// takes the fresh color ceiling+id. Either endpoint of a conflicting edge
// moving resolves it, and fresh colors never collide with kept or fresh ones.
func repairColoring(s *comm.Session, g *graph.Graph, res ColorResult) ColorResult {
	ceiling := repairColorCeiling(g)
	bad := res.Color < 0 || res.Color >= ceiling
	enc := uint64(0)
	if !bad {
		enc = uint64(res.Color) + 1
	}
	heard := repairExchange(s, g, enc)
	if !bad {
		for _, w := range heard {
			if w == enc {
				bad = true
				break
			}
		}
	}
	if bad {
		res.Color = ceiling + s.Ctx.ID()
		res.Palette = max(res.Palette, ceiling+s.Ctx.N())
	}
	return res
}

// repairMatching re-establishes reciprocity among survivors: a partner claim
// is dropped when the partner is heard claiming someone else (or nobody). A
// silent partner may be dead with the handshake complete, so silence keeps
// the claim — the survivor verifier accepts claims on dead nodes.
func repairMatching(s *comm.Session, g *graph.Graph, mate int) int {
	enc := uint64(0)
	if mate >= 0 {
		enc = uint64(mate) + 1
	}
	heard := repairExchange(s, g, enc)
	if mate < 0 {
		return -1
	}
	if mate >= g.N() || !g.HasEdge(s.Ctx.ID(), mate) {
		return -1
	}
	if w, ok := heard[mate]; ok && w != uint64(s.Ctx.ID())+1 {
		return -1
	}
	return mate
}
