package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
)

// MIS computes a maximal independent set (Theorem 5.3) by running the
// algorithm of Métivier et al. over the broadcast trees: each phase, every
// undecided node draws a random rank and multicasts it to its neighbors via
// Multi-Aggregation with MIN; a node whose own rank beats the minimum of its
// undecided neighbors joins the set, announces the fact the same way, and
// its neighbors retire. O(log n) phases w.h.p., each O(a + log n) rounds.
// Returns whether this node is in the set.
func MIS(s *comm.Session, g *graph.Graph, trees *comm.Trees, lhat int) bool {
	me := s.Ctx.ID()
	inSet := false
	decided := false
	for {
		active := !decided
		var rank comm.Pair
		if active {
			rank = comm.Pair{A: s.Ctx.Rand().Uint64(), B: uint64(me)}
		}
		m, ok := comm.MultiAggregate(s, trees, active, uint64(me), rank, comm.MinPair)
		joins := false
		if active {
			if !ok {
				// No undecided neighbor remains: join unconditionally.
				joins = true
			} else {
				joins = rank.A < m.A || (rank.A == m.A && rank.B < m.B)
			}
		}
		if joins {
			inSet = true
			decided = true
		}
		_, covered := comm.MultiAggregate(s, trees, joins, uint64(me), 1, comm.Or)
		if active && !joins && covered {
			decided = true
		}
		if !s.AnyTrue(!decided) {
			if s.Ctx.Faulty() {
				inSet = repairMIS(s, g, inSet)
			}
			return inSet
		}
	}
}
