package core

import (
	"testing"
	"testing/quick"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

// Property: on arbitrary random graphs (any density, any seed), the whole
// §4/§5 pipeline produces verifiable outputs with zero drops. This is the
// repository's broadest end-to-end invariant check.
func TestPipelinePropertyRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("property pipeline is slow")
	}
	check := func(seed int64, n8 uint8, p8 uint8) bool {
		n := 8 + int(n8)%24
		p := 0.05 + float64(p8%40)/100
		g := graph.GNP(n, p, seed)
		cfg := ncc.Config{N: n, Seed: seed, Strict: true}

		os, st, err := RunOrientation(cfg, g, OrientParams{})
		if err != nil || st.Dropped() != 0 {
			return false
		}
		if verify.Orientation(g, OutLists(os), 0) != nil {
			return false
		}
		in, st2, err := RunMIS(cfg, g)
		if err != nil || st2.Dropped() != 0 || verify.MIS(g, in) != nil {
			return false
		}
		mate, st3, err := RunMatching(cfg, g)
		if err != nil || st3.Dropped() != 0 || verify.Matching(g, mate) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: MST equals Kruskal for arbitrary random weighted graphs.
func TestMSTPropertyRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("property MST is slow")
	}
	check := func(seed int64, n8 uint8, w8 uint8) bool {
		n := 6 + int(n8)%20
		maxW := 1 + int64(w8)%500
		g := graph.GNP(n, 0.25, seed)
		wg := graph.RandomWeights(g, maxW, seed+1)
		perNode, st, err := RunMST(ncc.Config{N: n, Seed: seed, Strict: true}, wg)
		if err != nil || st.Dropped() != 0 {
			return false
		}
		return verify.MST(wg, CollectMSTEdges(perNode)) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances match sequential BFS from random sources on random
// graphs (including disconnected ones).
func TestBFSPropertyRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("property BFS is slow")
	}
	check := func(seed int64, n8, src8 uint8) bool {
		n := 6 + int(n8)%20
		g := graph.GNP(n, 0.15, seed) // often disconnected: exercises -1 paths
		src := int(src8) % n
		res, st, err := RunBFS(ncc.Config{N: n, Seed: seed, Strict: true}, g, src)
		if err != nil || st.Dropped() != 0 {
			return false
		}
		dist := make([]int, n)
		parent := make([]int, n)
		for u, r := range res {
			dist[u], parent[u] = r.Dist, r.Parent
		}
		return verify.BFS(g, src, dist, parent, true) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
