package core

import (
	"testing"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/seq"
	"ncc/internal/verify"
)

func TestBFSMatchesSequential(t *testing.T) {
	for name, g := range testGraphs() {
		if g.N() < 2 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cfg := ncc.Config{N: g.N(), Seed: 9, Strict: true}
			res, st, err := RunBFS(cfg, g, 0)
			if err != nil {
				t.Fatalf("BFS failed: %v", err)
			}
			dist := make([]int, g.N())
			parent := make([]int, g.N())
			for u, r := range res {
				dist[u], parent[u] = r.Dist, r.Parent
			}
			// The paper's tie-break: parent is the minimum-id predecessor.
			if err := verify.BFS(g, 0, dist, parent, true); err != nil {
				t.Fatalf("invalid BFS tree: %v", err)
			}
			if st.Dropped() != 0 {
				t.Errorf("%d messages dropped", st.Dropped())
			}
		})
	}
}

func TestBFSFromNonzeroSource(t *testing.T) {
	g := graph.Grid(5, 6)
	cfg := ncc.Config{N: g.N(), Seed: 4, Strict: true}
	res, _, err := RunBFS(cfg, g, 17)
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]int, g.N())
	parent := make([]int, g.N())
	for u, r := range res {
		dist[u], parent[u] = r.Dist, r.Parent
	}
	if err := verify.BFS(g, 17, dist, parent, true); err != nil {
		t.Fatal(err)
	}
}

func TestMISValidOnManyGraphs(t *testing.T) {
	for name, g := range testGraphs() {
		if g.N() < 2 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cfg := ncc.Config{N: g.N(), Seed: 31, Strict: true}
			in, st, err := RunMIS(cfg, g)
			if err != nil {
				t.Fatalf("MIS failed: %v", err)
			}
			if err := verify.MIS(g, in); err != nil {
				t.Fatalf("invalid MIS: %v", err)
			}
			if st.Dropped() != 0 {
				t.Errorf("%d messages dropped", st.Dropped())
			}
		})
	}
}

func TestMatchingValidOnManyGraphs(t *testing.T) {
	for name, g := range testGraphs() {
		if g.N() < 2 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cfg := ncc.Config{N: g.N(), Seed: 13, Strict: true}
			mate, st, err := RunMatching(cfg, g)
			if err != nil {
				t.Fatalf("matching failed: %v", err)
			}
			if err := verify.Matching(g, mate); err != nil {
				t.Fatalf("invalid matching: %v", err)
			}
			if st.Dropped() != 0 {
				t.Errorf("%d messages dropped", st.Dropped())
			}
		})
	}
}

func TestColoringValidOnManyGraphs(t *testing.T) {
	for name, g := range testGraphs() {
		if g.N() < 2 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cfg := ncc.Config{N: g.N(), Seed: 17, Strict: true}
			res, st, err := RunColoring(cfg, g)
			if err != nil {
				t.Fatalf("coloring failed: %v", err)
			}
			colors := make([]int, g.N())
			palette := 0
			for u, r := range res {
				colors[u] = r.Color
				palette = r.Palette
			}
			if err := verify.Coloring(g, colors, palette); err != nil {
				t.Fatalf("invalid coloring: %v", err)
			}
			// O(a) bound: palette is 2(1+eps)*ahat with ahat <= 4a and
			// a <= degeneracy+... allow the full certified constant.
			deg, _ := graph.Degeneracy(g)
			if palette > max(3, 2*(4*max(deg, 1)+1)) {
				t.Errorf("palette %d too large for degeneracy %d", palette, deg)
			}
			if st.Dropped() != 0 {
				t.Errorf("%d messages dropped", st.Dropped())
			}
		})
	}
}

func TestMSTMatchesKruskal(t *testing.T) {
	for name, g := range testGraphs() {
		if g.N() < 2 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			wg := graph.RandomWeights(g, 1000, 23)
			cfg := ncc.Config{N: g.N(), Seed: 29, Strict: true}
			perNode, st, err := RunMST(cfg, wg)
			if err != nil {
				t.Fatalf("MST failed: %v", err)
			}
			edges := CollectMSTEdges(perNode)
			if err := verify.MST(wg, edges); err != nil {
				t.Fatalf("invalid MST: %v", err)
			}
			if st.Dropped() != 0 {
				t.Errorf("%d messages dropped", st.Dropped())
			}
		})
	}
}

func TestMSTUnitWeights(t *testing.T) {
	// With all weights equal, the edge-key tie-break alone must produce the
	// unique minimum forest.
	g := graph.GNP(24, 0.2, 3)
	wg := graph.NewWeighted(g)
	cfg := ncc.Config{N: g.N(), Seed: 1, Strict: true}
	perNode, _, err := RunMST(cfg, wg)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MST(wg, CollectMSTEdges(perNode)); err != nil {
		t.Fatal(err)
	}
}

func TestMSTWideWeights(t *testing.T) {
	g := graph.KForest(30, 2, 8)
	wg := graph.RandomWeights(g, (1<<23)-1, 5)
	cfg := ncc.Config{N: g.N(), Seed: 6, Strict: true}
	perNode, _, err := RunMST(cfg, wg)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MST(wg, CollectMSTEdges(perNode)); err != nil {
		t.Fatal(err)
	}
}

func TestMSTOutputContract(t *testing.T) {
	// Section 3: for every MST edge, at least one endpoint knows it; no node
	// reports a non-incident edge.
	g := graph.Grid(4, 6)
	wg := graph.RandomWeights(g, 100, 2)
	cfg := ncc.Config{N: g.N(), Seed: 8, Strict: true}
	perNode, _, err := RunMST(cfg, wg)
	if err != nil {
		t.Fatal(err)
	}
	for u, edges := range perNode {
		for _, e := range edges {
			if e[0] != u && e[1] != u {
				t.Errorf("node %d reported non-incident edge %v", u, e)
			}
		}
	}
	want, _ := seq.MSTKruskal(wg)
	if len(CollectMSTEdges(perNode)) != len(want) {
		t.Errorf("forest has %d edges, want %d", len(CollectMSTEdges(perNode)), len(want))
	}
}

func TestMISRandomized(t *testing.T) {
	// Different seeds may give different sets, all valid.
	g := graph.KForest(30, 2, 4)
	for seed := int64(0); seed < 3; seed++ {
		cfg := ncc.Config{N: g.N(), Seed: seed, Strict: true}
		in, _, err := RunMIS(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.MIS(g, in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
