package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
)

// direct-message payloads of the matching algorithm.
type acceptMsg struct{}

func (acceptMsg) Words() int { return 1 }

type proposeMsg struct{}

func (proposeMsg) Words() int { return 1 }

// Matching computes a maximal matching (Theorem 5.4) with the algorithm of
// Israeli and Itai over the broadcast trees. Each phase:
//
//  1. every unmatched node learns a uniformly random unmatched neighbor via
//     the leaf-annotated Multi-Aggregation (MultiAggregatePick) and chooses it;
//  2. nodes chosen by several neighbors accept the minimum-id chooser via an
//     Aggregation and notify it directly — the accepted edges form paths and
//     cycles;
//  3. each endpoint proposes along one of its (at most two) accepted edges;
//     edges proposed from both sides join the matching.
//
// O(log n) phases w.h.p., each O(a + log n) rounds. Returns this node's
// partner, or -1.
func Matching(s *comm.Session, g *graph.Graph, trees *comm.Trees, lhat int) int {
	ctx := s.Ctx
	me := ctx.ID()
	mate := -1
	for {
		unmatched := mate == -1
		// Step 1: random choice among unmatched neighbors.
		pick, hasNbr := s.MultiAggregatePick(trees, unmatched, uint64(me), uint64(me))
		ch := -1
		if unmatched && hasNbr {
			ch = int(pick)
		}
		// Step 2: accept the minimum-id chooser.
		var items []comm.Agg
		if ch != -1 {
			items = append(items, comm.Agg{Group: uint64(ch), Target: ch, Val: comm.U64(uint64(me))})
		}
		res := s.Aggregate(items, comm.CombineMin, 1)
		acc := -1
		if unmatched {
			for _, gv := range res {
				acc = int(uint64(gv.Val.(comm.U64)))
			}
		}
		if acc != -1 {
			ctx.Send(acc, acceptMsg{})
		}
		s.Advance()
		acceptedByChosen := false
		for _, rc := range s.TakeDirect() {
			if _, ok := rc.Payload().(acceptMsg); ok && rc.From == ch {
				acceptedByChosen = true
			}
		}
		// Step 3: propose along one incident accepted edge.
		var incident []int
		if acc != -1 {
			incident = append(incident, acc)
		}
		if acceptedByChosen && ch != acc {
			incident = append(incident, ch)
		}
		prop := -1
		if len(incident) > 0 {
			prop = incident[ctx.Rand().IntN(len(incident))]
		}
		if prop != -1 {
			ctx.Send(prop, proposeMsg{})
		}
		s.Advance()
		for _, rc := range s.TakeDirect() {
			if _, ok := rc.Payload().(proposeMsg); ok && rc.From == prop {
				mate = prop
			}
		}
		if !s.AnyTrue(unmatched && hasNbr) {
			return mate
		}
	}
}
