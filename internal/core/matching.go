package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
)

// Matching computes a maximal matching (Theorem 5.4) with the algorithm of
// Israeli and Itai over the broadcast trees. Each phase:
//
//  1. every unmatched node learns a uniformly random unmatched neighbor via
//     the leaf-annotated Multi-Aggregation (MultiAggregatePick) and chooses it;
//  2. nodes chosen by several neighbors accept the minimum-id chooser via an
//     Aggregation and notify it directly — the accepted edges form paths and
//     cycles;
//  3. each endpoint proposes along one of its (at most two) accepted edges;
//     edges proposed from both sides join the matching.
//
// O(log n) phases w.h.p., each O(a + log n) rounds. Returns this node's
// partner, or -1.
func Matching(s *comm.Session, g *graph.Graph, trees *comm.Trees, lhat int) int {
	ctx := s.Ctx
	me := ctx.ID()
	mate := -1
	for {
		unmatched := mate == -1
		// Step 1: random choice among unmatched neighbors.
		pick, hasNbr := comm.MultiAggregatePick(s, trees, unmatched, uint64(me), uint64(me))
		ch := -1
		if unmatched && hasNbr {
			ch = int(pick)
		}
		// Step 2: accept the minimum-id chooser.
		var items []comm.Agg[uint64]
		if ch != -1 {
			items = append(items, comm.Agg[uint64]{Group: uint64(ch), Target: ch, Val: uint64(me)})
		}
		res := comm.Aggregate(s, items, comm.Min, 1)
		acc := -1
		if unmatched {
			for _, gv := range res {
				acc = int(gv.Val)
			}
		}
		if acc != -1 {
			ctx.SendWord(acc, ncc.Word(dhdr(dtagAccept)))
		}
		s.Advance()
		acceptedByChosen := false
		s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
			if ws[0]>>56 == dtagAccept && from == ch {
				acceptedByChosen = true
			}
		})
		// Step 3: propose along one incident accepted edge.
		var incident []int
		if acc != -1 {
			incident = append(incident, acc)
		}
		if acceptedByChosen && ch != acc {
			incident = append(incident, ch)
		}
		prop := -1
		if len(incident) > 0 {
			prop = incident[ctx.Rand().IntN(len(incident))]
		}
		if prop != -1 {
			ctx.SendWord(prop, ncc.Word(dhdr(dtagPropose)))
		}
		s.Advance()
		s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
			if ws[0]>>56 == dtagPropose && from == prop {
				mate = prop
			}
		})
		if !s.AnyTrue(unmatched && hasNbr) {
			if s.Ctx.Faulty() {
				mate = repairMatching(s, g, mate)
			}
			return mate
		}
	}
}
