package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
)

// ForestDecomposition converts an O(a)-orientation into an explicit
// Nash-Williams-style partition of the edges into O(a) forests, the
// structure underlying Section 4 (via [Barenboim-Elkin]): edge u->v is
// assigned the index of v in u's out-list. Because every node has at most
// one out-edge per index and the orientation is acyclic (levels strictly
// decrease along in-edges, ids break ties within a level), every index class
// is a forest.
//
// Purely local given the orientation, except for agreeing on the number of
// forests (one Aggregate-and-Broadcast, O(log n) rounds). Returns the
// per-out-edge forest indices (parallel to o.Out) and the global forest
// count max outdegree = O(a).
func ForestDecomposition(s *comm.Session, o *Orientation) ([]int, int) {
	idx := make([]int, len(o.Out))
	for i := range o.Out {
		idx[i] = i
	}
	count, _ := s.MaxAll(uint64(len(o.Out)), true)
	return idx, int(count)
}

// ForestsOf materializes a forest decomposition as explicit edge lists, for
// verification and downstream sequential use: forests[f] lists the edges
// (u, v) with u -> v assigned to forest f.
func ForestsOf(g *graph.Graph, os []*Orientation, idx [][]int, count int) [][][2]int {
	forests := make([][][2]int, count)
	for u, o := range os {
		for i, v := range o.Out {
			f := idx[u][i]
			forests[f] = append(forests[f], [2]int{u, v})
		}
	}
	return forests
}
