package core

import (
	"ncc/internal/comm"
	"ncc/internal/graph"
)

// BFSResult is one node's share of a BFS tree: its distance from the source
// (-1 if unreachable) and its predecessor on a shortest path, tie-broken
// toward the smallest id exactly as Section 5.1 specifies (-1 for the source
// and unreachable nodes).
type BFSResult struct {
	Dist   int
	Parent int
}

// BFS computes a BFS tree from src over precomputed broadcast trees
// (Theorem 5.2): in phase i, the frontier multicasts its ids to all
// neighbors, aggregated with MIN via Multi-Aggregation; newly reached nodes
// set distance i and adopt the minimum sender as parent. Runs in
// O((a + D + log n) log n) rounds w.h.p. including tree setup.
func BFS(s *comm.Session, g *graph.Graph, trees *comm.Trees, lhat int, src int) BFSResult {
	me := s.Ctx.ID()
	res := BFSResult{Dist: -1, Parent: -1}
	active := me == src
	visited := active
	if active {
		res.Dist = 0
	}
	for phase := 1; ; phase++ {
		v, ok := comm.MultiAggregate(s, trees, active, uint64(me), uint64(me), comm.Min)
		newlyReached := false
		if !visited && ok {
			res.Dist = phase
			res.Parent = int(v)
			visited = true
			newlyReached = true
		}
		active = newlyReached
		if !s.AnyTrue(newlyReached) {
			return res
		}
	}
}
