package core

import (
	"fmt"

	"ncc/internal/comm"
	"ncc/internal/hashing"
	"ncc/internal/ncc"
)

// identification implements the Identification Algorithm of Section 4.1:
// learning nodes determine which of their neighbors are playing, by sketching
// their incident edges into q trials with s shared hash functions, letting
// the playing side aggregate its (blue) contributions, and peeling the
// XOR/count difference cells to recover the red edges one at a time.

// trialFns holds the s shared hash functions mapping directed edge ids to
// trials; every node derives the same functions from the session's shared
// randomness.
type trialFns struct {
	fams []*hashing.Family
	q    int
}

func newTrialFns(s *comm.Session, count, q int) *trialFns {
	stream := s.SharedStream(0x747269616c) // "trial"
	k := max(4, ncc.CeilLog2(s.Ctx.N())+2)
	fams := make([]*hashing.Family, count)
	for i := range fams {
		fams[i] = hashing.NewFamily(k, stream)
	}
	return &trialFns{fams: fams, q: q}
}

// trials returns the sorted distinct trials the directed edge participates in.
func (t *trialFns) trials(edge uint64) []int {
	out := make([]int, 0, len(t.fams))
	for _, f := range t.fams {
		tr := int(f.Range(edge, uint64(t.q)))
		dup := false
		for _, x := range out {
			if x == tr {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, tr)
		}
	}
	return out
}

// identifySpec describes one node's role in an identification round.
type identifySpec struct {
	// Learning side: candidate neighbor ids with unknown status and the known
	// number of red (playing-complement) edges among them, which equals
	// d_i(u) in the orientation algorithm.
	learning   bool
	candidates []int
	redCount   int
	// Playing side: the potentially-learning neighbors this node plays for.
	playing bool
	playFor []int
	// Parameters: number of hash functions, trials, and the delivery-window
	// bound for the underlying aggregation.
	s, q, lhat2 int
}

// identifyResult reports what a learning node discovered.
type identifyResult struct {
	reds []int // identified red (non-playing) neighbors
	ok   bool  // all redCount red edges identified
}

// runIdentification executes one collective identification. Every node must
// call it (with zeroed spec fields when it is neither learning nor playing).
func runIdentification(s *comm.Session, spec identifySpec) identifyResult {
	me := s.Ctx.ID()
	fns := newTrialFns(s, spec.s, spec.q)

	// Playing side: contribute blue-edge sketches to the learners' trial
	// groups. Group id of learner w's trial t is w*q + t.
	var items []comm.Agg[comm.XorCount]
	if spec.playing {
		for _, w := range spec.playFor {
			e := hashing.PackEdge(w, me)
			for _, tr := range fns.trials(e) {
				items = append(items, comm.Agg[comm.XorCount]{
					Group:  uint64(w)*uint64(spec.q) + uint64(tr),
					Target: w,
					Val:    comm.XorCount{X: e, C: 1},
				})
			}
		}
	}
	res := comm.Aggregate(s, items, comm.MergeXorCount, spec.lhat2)

	if !spec.learning {
		return identifyResult{ok: true}
	}

	// Local cells over all candidate edges.
	type cell struct {
		x uint64
		c int64
	}
	cells := make(map[int]*cell)
	for _, v := range spec.candidates {
		e := hashing.PackEdge(me, v)
		for _, tr := range fns.trials(e) {
			cl := cells[tr]
			if cl == nil {
				cl = &cell{}
				cells[tr] = cl
			}
			cl.x ^= e
			cl.c++
		}
	}
	// Subtract the aggregated blue contributions.
	for _, gv := range res {
		tr := int(gv.Group % uint64(spec.q))
		if int(gv.Group/uint64(spec.q)) != me {
			panic(fmt.Sprintf("core: node %d received identification group %d for another learner", me, gv.Group))
		}
		xc := gv.Val
		cl := cells[tr]
		if cl == nil {
			cl = &cell{}
			cells[tr] = cl
		}
		cl.x ^= xc.X
		cl.c -= int64(xc.C)
	}

	// Peel: any cell holding exactly one red edge reveals it.
	candidateSet := make(map[int]bool, len(spec.candidates))
	for _, v := range spec.candidates {
		candidateSet[v] = true
	}
	var reds []int
	for {
		found := -1
		for tr, cl := range cells {
			if cl.c == 1 {
				found = tr
				break
			}
		}
		if found == -1 {
			break
		}
		e := cells[found].x
		u, v := hashing.UnpackEdge(e)
		if u != me || !candidateSet[v] {
			// A corrupted cell would indicate a protocol bug, not a sketch
			// failure: counts are exact.
			panic(fmt.Sprintf("core: node %d peeled inconsistent edge (%d,%d)", me, u, v))
		}
		reds = append(reds, v)
		for _, tr := range fns.trials(e) {
			cl := cells[tr]
			cl.x ^= e
			cl.c--
		}
	}
	return identifyResult{reds: reds, ok: len(reds) == spec.redCount}
}
