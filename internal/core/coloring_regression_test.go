package core

import (
	"testing"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

// TestColoringPaletteNeverExhausts is the regression test for the palette
// floor: on this graph every node can land in one level, node 2's palette
// would be 2(1+eps)*maxOut = 3 without the conflict-degree floor, and its
// three neighbors (two smaller-id level peers plus out-neighbor 3) can fix
// all three colors before node 2 does — randFree then panics with
// "invalid argument to IntN". Seeds 8, 13, and 23 reproduced the panic.
func TestColoringPaletteNeverExhausts(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	for seed := int64(1); seed <= 40; seed++ {
		res, _, err := RunColoring(ncc.Config{N: 4, Seed: seed, Strict: true}, g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		colors := make([]int, g.N())
		palette := 0
		for u, r := range res {
			colors[u], palette = r.Color, r.Palette
		}
		if err := verify.Coloring(g, colors, palette); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
