package core

import (
	"testing"

	"ncc/internal/graph"
	"ncc/internal/ncc"
)

func TestComponentLabelsMatchUnionFind(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"disjoint":  graph.Disjoint(4, 6),
		"connected": graph.KForest(30, 2, 3),
		"mixed":     graph.GNP(40, 0.05, 9),
		"empty":     graph.Empty(10),
	} {
		t.Run(name, func(t *testing.T) {
			cfg := ncc.Config{N: g.N(), Seed: 12, Strict: true}
			labels, _, err := RunComponents(cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := graph.Components(g)
			// Same label iff same component.
			for u := 0; u < g.N(); u++ {
				for v := u + 1; v < g.N(); v++ {
					same := want[u] == want[v]
					got := labels[u] == labels[v]
					if same != got {
						t.Fatalf("nodes %d,%d: same-component=%v but labels %d,%d", u, v, same, labels[u], labels[v])
					}
				}
			}
			// Labels are members of their own component.
			for u := 0; u < g.N(); u++ {
				if want[labels[u]] != want[u] {
					t.Fatalf("node %d labeled by foreign node %d", u, labels[u])
				}
			}
		})
	}
}
