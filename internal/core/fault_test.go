package core

import (
	"testing"

	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/verify"
)

// The paper's algorithms assume the network is reliable below the capacity
// bound. These failure-injection tests check that the *harness* surfaces
// faults instead of silently producing garbage: under fault injection the
// collectives run with a bounded patience budget, so a lossy network either
// completes degraded (and the verifiers reject the output), aborts with an
// explicit error, or — when a protocol invariant breaks outright — panics the
// node, which without a FaultPlan aborts the run. Never silent corruption.

func TestHeavyMessageLossIsDetected(t *testing.T) {
	g := graph.KForest(24, 2, 5)
	cfg := ncc.Config{N: g.N(), Seed: 4, DropProb: 0.3, MaxRounds: 3000}
	in, _, err := RunMIS(cfg, g)
	if err != nil {
		// Detected: a stall (MaxRounds), an explicit protocol failure, or a
		// node panic surfaced as a run error.
		t.Logf("lossy run detected: %v", err)
		return
	}
	// The run terminated degraded: its output must then fail verification
	// or, very unlikely, be valid by chance. Either way the fault is visible
	// in the stats/verifier, never silent corruption of the harness itself.
	if vErr := verify.MIS(g, in); vErr == nil {
		t.Skip("lossy run accidentally produced a valid MIS (seed-dependent)")
	}
}

func TestTargetedLinkFailureDoesNotDeadlock(t *testing.T) {
	// Killing every message into node 0 breaks the reduction tree's root, so
	// Synchronize can never actually synchronize — but with an interceptor
	// installed the session runs with a patience budget, so every node must
	// give up and return well before MaxRounds instead of deadlocking.
	cfg := ncc.Config{
		N: 16, Seed: 1, MaxRounds: 5000,
		Interceptor: func(round int, from, to ncc.NodeID) bool { return to != 0 },
	}
	st, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		s := comm.NewSession(ctx)
		s.Synchronize()
	})
	if err != nil {
		t.Fatalf("patience-bounded Synchronize must give up cleanly, got %v", err)
	}
	if st.Rounds >= cfg.MaxRounds {
		t.Fatalf("took %d rounds, expected early give-up", st.Rounds)
	}
}

func TestLateFaultAfterCleanPrefixStillDetected(t *testing.T) {
	// The network is reliable for 100 rounds, then loses everything: the MST
	// cannot complete, and the fault must surface as an error or as output
	// the verifier rejects — never as a silently valid spanning forest.
	g := graph.Grid(4, 4)
	wg := graph.RandomWeights(g, 50, 1)
	cfg := ncc.Config{
		N: g.N(), Seed: 2, MaxRounds: 20000,
		Interceptor: func(round int, from, to ncc.NodeID) bool { return round < 100 },
	}
	outs, _, err := RunMST(cfg, wg)
	if err != nil {
		t.Logf("late fault detected: %v", err)
		return
	}
	if vErr := verify.MST(wg, outs[0]); vErr == nil {
		t.Fatal("run with total message loss returned a verifiably correct MST")
	}
}

func TestCapacityStarvationDegradesGracefully(t *testing.T) {
	// With CapFactor 1 the protocols' constants exceed the capacity on some
	// rounds, so the network drops overflow; the runs must either still
	// verify (drops hit redundant traffic) or be rejected — and the drops
	// must be visible in the stats.
	g := graph.KForest(32, 2, 9)
	cfg := ncc.Config{N: g.N(), Seed: 7, CapFactor: 1, MaxRounds: 50000}
	in, st, err := RunMIS(cfg, g)
	if err != nil {
		// Detected: either a stall (MaxRounds) or an explicit protocol
		// failure (e.g. the orientation rescue reporting unresolvable
		// neighbors). Both surface as errors, never as silent corruption.
		t.Logf("lossy run detected: %v", err)
		return
	}
	if st.Dropped() > 0 {
		t.Logf("capacity starvation dropped %d messages (visible in stats)", st.Dropped())
	}
	if vErr := verify.MIS(g, in); vErr != nil {
		t.Logf("output correctly rejected by verifier: %v", vErr)
	}
}
