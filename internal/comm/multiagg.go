package comm

// MultiAggregate solves the Multi-Aggregation Problem (Theorem 2.6) over
// previously set-up multicast trees: every source's packet is multicast to
// its group, and every node receives the f-aggregate of the packets of all
// groups it belongs to, as a single value. Returns (aggregate, ok) where ok
// reports whether any packet was addressed to this node.
//
// Only nodes with isSource inject packets, so the effective congestion — and
// hence the cost O(C + log n) w.h.p. — scales with the active sources only
// (Corollary 1: O(sum of d(u) over sources / n + log n) for broadcast trees).
func (s *Session) MultiAggregate(t *Trees, isSource bool, group uint64, val Value, f Combine) (Value, bool) {
	return s.multiAggregate(t, isSource, group, val, f, false)
}

// MultiAggregatePick is the randomized variant used by the maximal matching
// algorithm (Section 5.3): every member that belongs to at least one
// source's group receives the id of one such source chosen uniformly at
// random — the leaf nodes annotate each mapped packet with a fresh random
// rank and the minimum-annotation packet survives the aggregation. The
// source's value must be its own id.
func (s *Session) MultiAggregatePick(t *Trees, isSource bool, group uint64, id uint64) (uint64, bool) {
	v, ok := s.multiAggregate(t, isSource, group, U64(id), CombineMinPair, true)
	if !ok {
		return 0, false
	}
	return v.(Pair).B, true
}

func (s *Session) multiAggregate(t *Trees, isSource bool, group uint64, val Value, f Combine, pick bool) (Value, bool) {
	s.assertDrained("MultiAggregate")
	spreadCall := s.nextCall()
	combCall := s.nextCall()
	spreadRank := s.rankOnly(spreadCall)
	dest, rank := s.destRank(combCall)
	spreadSeq := uint32(spreadCall)
	combSeq := uint32(combCall)
	ctx := s.Ctx
	em := s.BF.IsEmulator(ctx.ID())

	// Phase 1: multicast the source packets down to the leaves (no member
	// delivery; the leaves keep them for remapping).
	var sr *spreadRouter
	if em {
		sr = newSpreadRouter(s, spreadSeq, t, spreadRank)
	}
	var packets []SourcePacket
	if isSource {
		packets = []SourcePacket{{Group: group, Val: val}}
	}
	s.spreadPhase(sr, t, spreadSeq, packets)

	// Phase 2: every leaf maps each received packet p of group g to one
	// packet (id(u), p) per member u recorded at the leaf, then redistributes
	// the mapped packets to random level-0 columns.
	var cr *combineRouter
	if em {
		cr = newCombineRouter(s, combSeq, f, nil)
	}
	batch := s.batchSize()
	sent := 0
	if sr != nil {
		for _, gv := range sr.leafGot {
			for _, origin := range t.leafOrigins[gv.Group] {
				mv := gv.Val
				if pick {
					mv = Pair{A: ctx.Rand().Uint64(), B: uint64(mv.(U64))}
				}
				g := uint64(origin)
				p := pkt{
					group:   g,
					destCol: dest(g),
					rank:    rank(g),
					target:  origin,
					origin:  origin,
					val:     mv,
				}
				col := ctx.Rand().IntN(s.BF.Cols)
				if col == cr.col {
					cr.stageLocal(p)
				} else {
					ctx.Send(s.BF.Host(col), routeMsg{seq: combSeq, level: 0, p: p})
				}
				sent++
				if sent%batch == 0 {
					s.Advance()
				}
			}
		}
		sr.leafGot = nil
	}
	if sent%batch != 0 || sent == 0 {
		s.Advance()
	}
	s.Synchronize()

	// Phase 3: aggregate the mapped packets toward each member's own group
	// and deliver. Each node is the target of exactly one group (its id), so
	// the receive side needs no window, but a bottommost-level column may
	// hold many completed groups; a shared window bounds the send load.
	s.runCombine(cr)
	s.Synchronize()

	completed := 0
	if cr != nil {
		completed = len(cr.completed())
	}
	maxCompleted, _ := s.MaxAll(uint64(completed), true)
	window := s.window(int(maxCompleted))
	results := s.deliverResults(cr, window)

	for _, gv := range results {
		if gv.Group == uint64(ctx.ID()) {
			return gv.Val, true
		}
	}
	return nil, false
}
