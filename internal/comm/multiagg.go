package comm

// MultiAggregate solves the Multi-Aggregation Problem (Theorem 2.6) over
// previously set-up multicast trees: every source's packet is multicast to
// its group, and every node receives the aggregate of the packets of all
// groups it belongs to, as a single value. Returns (aggregate, ok) where ok
// reports whether any packet was addressed to this node.
//
// Only nodes with isSource inject packets, so the effective congestion — and
// hence the cost O(C + log n) w.h.p. — scales with the active sources only
// (Corollary 1: O(sum of d(u) over sources / n + log n) for broadcast trees).
func MultiAggregate[T any](s *Session, t *Trees, isSource bool, group uint64, val T, c Combiner[T]) (T, bool) {
	return multiAggregate(s, t, isSource, group, val, c.Wire, c, func(v T) T { return v })
}

// MultiAggregatePick is the randomized variant used by the maximal matching
// algorithm (Section 5.3): every member that belongs to at least one
// source's group receives the id of one such source chosen uniformly at
// random — the leaf nodes annotate each mapped packet with a fresh random
// rank and the minimum-annotation packet survives the aggregation. The
// source's value must be its own id.
func MultiAggregatePick(s *Session, t *Trees, isSource bool, group uint64, id uint64) (uint64, bool) {
	rng := s.Ctx.Rand()
	v, ok := multiAggregate(s, t, isSource, group, id, U64Wire{}, MinPair,
		func(id uint64) Pair { return Pair{A: rng.Uint64(), B: id} })
	if !ok {
		return 0, false
	}
	return v.B, true
}

// multiAggregate spreads S-typed source packets down the trees, has the
// leaves map each delivered packet to one T-typed packet per recorded member
// (mapVal bridges the two types; the identity for plain MultiAggregate), and
// aggregates the mapped packets toward each member's own singleton group.
func multiAggregate[S, T any](s *Session, t *Trees, isSource bool, group uint64, val S, sw Wire[S], c Combiner[T], mapVal func(S) T) (T, bool) {
	s.assertDrained("MultiAggregate")
	spreadCall := s.nextCall()
	combCall := s.nextCall()
	spreadRank := s.rankOnly(spreadCall)
	h := s.destRank(combCall)
	spreadSeq := seq24(spreadCall)
	combSeq := seq24(combCall)
	ctx := s.Ctx
	em := s.BF.IsEmulator(ctx.ID())

	// Phase 1: multicast the source packets down to the leaves (no member
	// delivery; the leaves keep them for remapping).
	var sr *spreadRouter[S]
	if em {
		sr = stateFor[S](s).spread(s, spreadSeq, sw, t, spreadRank)
	}
	var packets []SourcePacket[S]
	if isSource {
		packets = []SourcePacket[S]{{Group: group, Val: val}}
	}
	spreadPhase(s, sr, spreadSeq, sw, t, packets)

	// Phase 2: every leaf maps each received packet p of group g to one
	// packet (id(u), mapVal(p)) per member u recorded at the leaf, then
	// redistributes the mapped packets to random level-0 columns.
	var cr *combineRouter[T]
	if em {
		cr = stateFor[T](s).combine(s, combSeq, c, nil)
	}
	batch := s.batchSize()
	sent := 0
	if sr != nil {
		for _, gv := range sr.leafGot {
			for _, origin := range t.leafOrigins[gv.Group] {
				g := uint64(origin)
				p := pkt[T]{
					group:   g,
					destCol: h.destCol(g),
					rank:    h.rankOf(g),
					target:  origin,
					origin:  origin,
					val:     mapVal(gv.Val),
				}
				col := ctx.Rand().IntN(s.BF.Cols)
				if cr != nil && col == cr.col {
					cr.stageLocal(p)
				} else {
					sendRoute(s, s.BF.Host(col), combSeq, 0, c.Wire, p)
				}
				sent++
				if sent%batch == 0 {
					s.Advance()
				}
			}
		}
		sr.leafGot = sr.leafGot[:0]
	}
	if sent%batch != 0 || sent == 0 {
		s.Advance()
	}
	s.Synchronize()

	// Phase 3: aggregate the mapped packets toward each member's own group
	// and deliver. Each node is the target of exactly one group (its id), so
	// the receive side needs no window, but a bottommost-level column may
	// hold many completed groups; a shared window bounds the send load.
	runCombine(s, cr)
	s.Synchronize()

	completed := 0
	if cr != nil {
		completed = len(cr.completed())
	}
	maxCompleted, _ := s.MaxAll(uint64(completed), true)
	window := s.window(int(maxCompleted))
	results := deliverResults(s, cr, c.Wire, window)

	for _, gv := range results {
		if gv.Group == uint64(ctx.ID()) {
			return gv.Val, true
		}
	}
	var zero T
	return zero, false
}
