// Package comm implements the communication primitives of the
// Node-Capacitated Clique paper (Section 2.2 and Appendix B) as typed,
// generics-based collectives: butterfly emulation, Aggregate-and-Broadcast,
// Aggregation with random-rank routing and in-network combining, Multicast
// Tree Setup, Multicast, and Multi-Aggregation.
//
// # Codecs and combiners
//
// Every collective is generic over its payload type T. A Wire[T] codec fixes
// T's word layout (Words, Encode, Decode — exact inverses, pinned by the
// codec fuzz test); a Combiner[T] pairs a codec with a commutative-
// associative merge. Built-in codecs cover uint64, Pair, XorCount, Sketch,
// Sketch3 and the zero-width Flag; algorithms with bespoke payloads
// implement Wire[T] themselves (see core's three-word orientation
// aggregate). Payloads travel as flat words through the engine's inline
// SendWord/SendWords2/SendWords paths and are decoded straight out of the
// receive arenas — no interface boxing anywhere on the message plane, which
// is what keeps steady-state primitive traffic at ~0 allocations per
// message (pinned by TestCollectiveSteadyStateAllocs).
//
// # SPMD call order
//
// All primitives are SPMD collectives: every node of the clique must call
// them in the same order (possibly at different rounds; the token-based
// Synchronize realigns the network, exactly as the paper's synchronization
// variant of Aggregate-and-Broadcast does). The shared invocation counter
// that seeds each collective's hash functions — and the wire protocol's
// invocation tags — depend on this discipline; calling collectives in
// divergent orders across nodes is a protocol violation the session panics
// on when it can detect it.
package comm

import (
	"fmt"
	"math/rand/v2"
	"reflect"

	"ncc/internal/butterfly"
	"ncc/internal/hashing"
	"ncc/internal/ncc"
)

// SeedWords is the number of shared random words broadcast by node 0 when a
// session starts: Theta(log^2 n) bits as in Section 2.2.
const SeedWords = 8

// Session holds a node's view of the butterfly emulation and the shared
// randomness, and dispatches incoming wire messages to the primitive that
// owns them. Each node creates exactly one Session per program via
// NewSession.
type Session struct {
	Ctx *ncc.Context
	BF  *butterfly.Butterfly

	seed  []uint64
	calls uint64

	// Raw wire queues, filled by Advance. Payload words are stashed in the
	// vals arena and decoded by the owning collective (which knows the
	// codec); the arena is recycled whenever all queues drain.
	qGather  []gatherRaw
	qRelease []releaseRaw
	qWords   []wordRaw
	qRoute   []routeRaw
	qRtTok   []tokRaw
	qInit    []initRaw
	qSpread  []spreadRaw
	qSpTok   []tokRaw
	qLeaf    []groupRaw
	qResult  []groupRaw
	vals     []uint64

	// Algorithm-level direct messages and their word arena, drained (and
	// recycled) by DrainDirect.
	direct []directRaw
	dwords []uint64

	enc   []uint64  // wire-encode scratch, reused by every send
	view2 [2]uint64 // inline-payload view scratch for dispatch

	// Pooled per-invocation hash families (reseeded in place each collective
	// call, never reallocated) and the sorted-group scratch of the delivery
	// windows.
	famDest, famRank, famRank2 *hashing.Family
	groupScratch               []uint64

	// states pools the per-payload-type router and queue state across
	// collective invocations, keyed by the payload type, so repeated
	// collectives of the same T reuse their maps and buffers.
	states map[reflect.Type]any

	// patience is the barren-round budget of every otherwise-unbounded wait,
	// and 0 on a reliable network. The paper's collectives assume no message
	// is ever lost; under fault injection a lost token or packet would park a
	// node forever (the run would only die at MaxRounds, taking every node's
	// output with it). With patience set, a wait that sees nothing arrive for
	// this many consecutive rounds gives up and continues with what it has —
	// the collective's result degrades instead of the whole run. Reliable
	// runs keep the wait-forever semantics bit-for-bit unchanged.
	patience int
}

// NewSession builds the butterfly emulation and establishes the shared
// randomness: node 0 draws SeedWords random words and broadcasts them through
// the butterfly (O(log n) rounds). Every node must call NewSession first.
func NewSession(ctx *ncc.Context) *Session {
	s := &Session{
		Ctx:    ctx,
		BF:     butterfly.New(ctx.N()),
		enc:    make([]uint64, maxWireWords),
		states: make(map[reflect.Type]any),
	}
	if ctx.Faulty() {
		s.patience = 32 + 16*ncc.CeilLog2(ctx.N())
	}
	var words []uint64
	if ctx.ID() == 0 {
		words = make([]uint64, SeedWords)
		for i := range words {
			words[i] = ctx.Rand().Uint64()
		}
	}
	s.seed = s.BroadcastWords(0, words, SeedWords)
	return s
}

// Advance runs one communication round and dispatches everything received.
func (s *Session) Advance() {
	if len(s.qGather)+len(s.qRelease)+len(s.qRoute)+len(s.qInit)+
		len(s.qSpread)+len(s.qLeaf)+len(s.qResult) == 0 {
		s.vals = s.vals[:0]
	}
	in := s.Ctx.EndRound()
	for i := range in {
		rc := &in[i]
		ws := receivedWords(rc, &s.view2)
		w0 := ws[0]
		switch hdrTag(w0) {
		case tagGather:
			s.qGather = append(s.qGather, gatherRaw{from: rc.From, has: w0&1 != 0, val: s.stash(ws[1:])})
		case tagRelease:
			s.qRelease = append(s.qRelease, releaseRaw{
				exitRound: int(w0 >> 16 & (1<<40 - 1)),
				has:       w0&1 != 0,
				val:       s.stash(ws[1:]),
			})
		case tagWord:
			s.qWords = append(s.qWords, wordRaw{idx: int32(uint32(w0)), w: ws[1]})
		case tagRoute:
			s.qRoute = append(s.qRoute, routeRaw{
				seq:     uint32(w0 >> 32 & seqMask),
				level:   int8(w0 >> 24),
				group:   ws[1],
				destCol: int32(ws[2] >> 32),
				rank:    uint32(ws[2]),
				target:  int32(uint32(ws[3] >> 32)),
				origin:  int32(uint32(ws[3])),
				val:     s.stash(ws[4:]),
			})
		case tagRouteTok:
			s.qRtTok = append(s.qRtTok, tokRaw{seq: uint32(w0 >> 32 & seqMask), level: int8(w0 >> 24), side: int8(w0 & 1)})
		case tagInit:
			s.qInit = append(s.qInit, initRaw{seq: uint32(w0 >> 32 & seqMask), group: ws[1], val: s.stash(ws[2:])})
		case tagSpread:
			s.qSpread = append(s.qSpread, spreadRaw{
				seq:   uint32(w0 >> 32 & seqMask),
				level: int8(w0 >> 24),
				group: ws[1],
				val:   s.stash(ws[2:]),
			})
		case tagSpreadTok:
			s.qSpTok = append(s.qSpTok, tokRaw{seq: uint32(w0 >> 32 & seqMask), level: int8(w0 >> 24), side: int8(w0 & 1)})
		case tagLeaf:
			s.qLeaf = append(s.qLeaf, groupRaw{group: ws[1], val: s.stash(ws[2:])})
		case tagResult:
			s.qResult = append(s.qResult, groupRaw{group: ws[1], val: s.stash(ws[2:])})
		default:
			off := int32(len(s.dwords))
			s.dwords = append(s.dwords, ws...)
			s.direct = append(s.direct, directRaw{from: rc.From, val: rawVal{off: off, n: int32(len(ws))}})
		}
	}
}

// receivedWords returns a message's flat word view regardless of its inline
// representation; scratch backs the one- and two-word cases. Sessions only
// speak words: a boxed payload reaching a session is a program bug.
func receivedWords(rc *ncc.Received, scratch *[2]uint64) []uint64 {
	if w, ok := rc.AsWord(); ok {
		scratch[0] = uint64(w)
		return scratch[:1]
	}
	if w2, ok := rc.AsWords2(); ok {
		scratch[0], scratch[1] = w2[0], w2[1]
		return scratch[:2]
	}
	if ws, ok := rc.AsWords(); ok {
		return ws
	}
	panic(fmt.Sprintf("comm: received a boxed %T payload; sessions require word payloads "+
		"(SendWord/SendWords2/SendWords)", rc.Payload()))
}

// stash copies payload words into the value arena and returns their handle.
func (s *Session) stash(ws []uint64) rawVal {
	if len(ws) == 0 {
		return rawVal{}
	}
	off := int32(len(s.vals))
	s.vals = append(s.vals, ws...)
	return rawVal{off: off, n: int32(len(ws))}
}

// words resolves a stashed payload back to its word view.
func (s *Session) words(v rawVal) []uint64 {
	return s.vals[v.off : v.off+v.n]
}

// encode prepares the session's scratch buffer for an n-word wire message.
func (s *Session) encode(n int) []uint64 {
	if n > cap(s.enc) {
		s.enc = make([]uint64, n)
	}
	return s.enc[:n]
}

// DrainDirect hands every pending algorithm-level direct message (anything
// that is not primitive wire traffic) to fn, in arrival order, then clears
// the queue and recycles its arena. The ws slice is only valid during the
// call; fn must not call Advance or any collective.
func (s *Session) DrainDirect(fn func(from ncc.NodeID, ws []uint64)) {
	for _, d := range s.direct {
		fn(d.from, s.dwords[d.val.off:d.val.off+d.val.n])
	}
	s.direct = s.direct[:0]
	s.dwords = s.dwords[:0]
}

// nextCall advances the collective invocation counter. Because primitives are
// called in identical order at every node, the counter is common knowledge
// and seeds per-invocation hash functions without extra communication.
func (s *Session) nextCall() uint64 {
	s.calls++
	return s.calls
}

// hashFamily derives a Theta(log n)-wise independent function for collective
// invocation `call` and the given salt, identical at every node.
func (s *Session) hashFamily(call, salt uint64) *hashing.Family {
	k := max(4, ncc.CeilLog2(s.Ctx.N())+2)
	return hashing.NewFamily(k, hashing.NewSeedStream(s.seed, hashing.Mix(call)^salt))
}

// pooledFamily reseeds (or first allocates) one of the session's pooled hash
// families for the given invocation and salt.
func (s *Session) pooledFamily(slot **hashing.Family, call, salt uint64) *hashing.Family {
	k := max(4, ncc.CeilLog2(s.Ctx.N())+2)
	st := hashing.StreamFrom(s.seed, hashing.Mix(call)^salt)
	if *slot == nil || (*slot).K() != k {
		*slot = hashing.NewFamily(k, &st)
	} else {
		(*slot).Reseed(&st)
	}
	return *slot
}

// pktHash is the per-invocation hash pair of the routing primitives:
// destination column at the bottommost butterfly level and contention rank.
// It is a value over pooled families, so deriving one allocates nothing.
type pktHash struct {
	dest, rank *hashing.Family
	cols       uint64
}

func (h pktHash) destCol(g uint64) int32 { return int32(h.dest.Range(g, h.cols)) }

func (h pktHash) rankOf(g uint64) uint32 { return uint32(h.rank.Hash(g)) }

// destRank derives the routing hash pair for an invocation from the pooled
// dest/rank slots.
func (s *Session) destRank(call uint64) pktHash {
	return pktHash{
		dest: s.pooledFamily(&s.famDest, call, 0x64657374), // "dest"
		rank: s.pooledFamily(&s.famRank, call, 0x72616e6b), // "rank"
		cols: uint64(s.BF.Cols),
	}
}

// rankOnly derives just the contention-rank hash for an invocation, in its
// own pooled slot so it can stay live across a nested destRank derivation
// (Multi-Aggregation seeds both at entry).
func (s *Session) rankOnly(call uint64) *hashing.Family {
	return s.pooledFamily(&s.famRank2, call, 0x72616e6b)
}

// batchSize is the number of packets injected per round during preprocessing
// phases (ceil(log n), as in Appendix B.2), clamped to the run's smallest
// per-node capacity so heterogeneous-capacity runs never inject beyond what
// the weakest node may send. On uniform runs the clamp is a no-op (capacity
// is capfactor * ceil(log n) with capfactor >= 1).
func (s *Session) batchSize() int {
	return max(1, min(ncc.CeilLog2(s.Ctx.N()), s.Ctx.MinCap()))
}

// window returns the length of the randomized delivery window for a load
// bound of lhat messages per receiver. Under faults, lhat may come from a
// degraded aggregate (a stale or partial value), so the window is clamped to
// the patience budget — any window beyond it could not be waited out anyway.
func (s *Session) window(lhat int) int {
	w := max(1, (lhat+s.batchSize()-1)/s.batchSize())
	if s.patience > 0 {
		w = min(w, s.patience)
	}
	return w
}

// assertDrained panics if a primitive left routing state behind; this guards
// against protocol bugs in tests. Under faults, stale messages are the
// expected debris of a collective that gave up early — they are discarded so
// the next collective starts clean.
func (s *Session) assertDrained(what string) {
	if len(s.qRoute)+len(s.qRtTok)+len(s.qSpread)+len(s.qSpTok)+len(s.qInit) != 0 {
		if s.patience > 0 {
			s.qRoute = s.qRoute[:0]
			s.qRtTok = s.qRtTok[:0]
			s.qSpread = s.qSpread[:0]
			s.qSpTok = s.qSpTok[:0]
			s.qInit = s.qInit[:0]
			return
		}
		panic(fmt.Sprintf("comm: node %d: stale primitive messages at start of %s (route=%d rtok=%d spread=%d stok=%d init=%d)",
			s.Ctx.ID(), what, len(s.qRoute), len(s.qRtTok), len(s.qSpread), len(s.qSpTok), len(s.qInit)))
	}
}

// randRound picks a uniform round offset in [0, w).
func randRound(rng *rand.Rand, w int) int {
	if w <= 1 {
		return 0
	}
	return rng.IntN(w)
}

// SharedFamily derives a fresh Theta(log n)-wise independent hash family from
// the session's shared randomness, identical at every node. It advances the
// collective invocation counter, so all nodes must call it in the same order
// (the usual SPMD discipline).
func (s *Session) SharedFamily(salt uint64) *hashing.Family {
	call := s.nextCall()
	return s.hashFamily(call, salt)
}

// SharedStream derives a deterministic word stream from the shared
// randomness, identical at every node; used to seed batches of hash
// functions (e.g. the s trial functions of the Identification Algorithm).
// Advances the collective invocation counter.
func (s *Session) SharedStream(salt uint64) *hashing.SeedStream {
	call := s.nextCall()
	return hashing.NewSeedStream(s.seed, hashing.Mix(call)^salt)
}

// commState is the pooled per-payload-type scratch of the routing
// collectives: one combining router and one spreading router per T, reused
// (maps cleared, slices truncated) across invocations so steady-state
// collective traffic allocates ~nothing per message.
type commState[T any] struct {
	cr combineRouter[T]
	sr spreadRouter[T]

	// Delivery-window scratch: the per-round send plan of deliverResults,
	// the leaf fan-out schedule of deliverLeaves, and the result buffer the
	// collectives return views of (reused by the next invocation with the
	// same payload type, exactly like the engine's EndRound inbox).
	plan  [][]pkt[T]
	sched []leafPlan[T]
	out   []GroupVal[T]
}

// stateFor fetches (or creates) the session's pooled state for payload type
// T. The reflect key costs one map lookup per collective invocation — noise
// against the invocation's O(log n) rounds of traffic.
func stateFor[T any](s *Session) *commState[T] {
	key := reflect.TypeFor[T]()
	if st, ok := s.states[key]; ok {
		return st.(*commState[T])
	}
	st := &commState[T]{}
	s.states[key] = st
	return st
}
