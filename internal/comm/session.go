// Package comm implements the communication primitives of the
// Node-Capacitated Clique paper (Section 2.2 and Appendix B): butterfly
// emulation, Aggregate-and-Broadcast, Aggregation with random-rank routing
// and in-network combining, Multicast Tree Setup, Multicast, and
// Multi-Aggregation.
//
// All primitives are SPMD collectives: every node of the clique must call
// them in the same order (possibly at different rounds; the token-based
// Synchronize realigns the network, exactly as the paper's synchronization
// variant of Aggregate-and-Broadcast does).
package comm

import (
	"fmt"
	"math/rand/v2"

	"ncc/internal/butterfly"
	"ncc/internal/hashing"
	"ncc/internal/ncc"
)

// SeedWords is the number of shared random words broadcast by node 0 when a
// session starts: Theta(log^2 n) bits as in Section 2.2.
const SeedWords = 8

// Session holds a node's view of the butterfly emulation and the shared
// randomness, and dispatches incoming messages to the primitive that owns
// them. Each node creates exactly one Session per program via NewSession.
type Session struct {
	Ctx *ncc.Context
	BF  *butterfly.Butterfly

	seed  []uint64
	calls uint64

	// Message queues, filled by Advance.
	qGather  []gatherFrom
	qRelease []releaseMsg
	qWords   []wordMsg
	qRoute   []routeMsg
	qRtTok   []routeToken
	qInit    []initMsg
	qSpread  []spreadMsg
	qSpTok   []spreadToken
	qLeaf    []leafFrom
	qResult  []resultMsg
	direct   []ncc.Received
}

type gatherFrom struct {
	from ncc.NodeID
	m    gatherMsg
}

type leafFrom struct {
	from ncc.NodeID
	m    leafMsg
}

// NewSession builds the butterfly emulation and establishes the shared
// randomness: node 0 draws SeedWords random words and broadcasts them through
// the butterfly (O(log n) rounds). Every node must call NewSession first.
func NewSession(ctx *ncc.Context) *Session {
	s := &Session{Ctx: ctx, BF: butterfly.New(ctx.N())}
	var words []uint64
	if ctx.ID() == 0 {
		words = make([]uint64, SeedWords)
		for i := range words {
			words[i] = ctx.Rand().Uint64()
		}
	}
	s.seed = s.BroadcastWords(0, words, SeedWords)
	return s
}

// Advance runs one communication round and dispatches everything received.
func (s *Session) Advance() {
	for _, rc := range s.Ctx.EndRound() {
		switch m := rc.Payload().(type) {
		case gatherMsg:
			s.qGather = append(s.qGather, gatherFrom{rc.From, m})
		case releaseMsg:
			s.qRelease = append(s.qRelease, m)
		case wordMsg:
			s.qWords = append(s.qWords, m)
		case routeMsg:
			s.qRoute = append(s.qRoute, m)
		case routeToken:
			s.qRtTok = append(s.qRtTok, m)
		case initMsg:
			s.qInit = append(s.qInit, m)
		case spreadMsg:
			s.qSpread = append(s.qSpread, m)
		case spreadToken:
			s.qSpTok = append(s.qSpTok, m)
		case leafMsg:
			s.qLeaf = append(s.qLeaf, leafFrom{rc.From, m})
		case resultMsg:
			s.qResult = append(s.qResult, m)
		default:
			s.direct = append(s.direct, rc)
		}
	}
}

// TakeDirect returns and clears the algorithm-level direct messages received
// so far (anything that is not a primitive's wire message).
func (s *Session) TakeDirect() []ncc.Received {
	d := s.direct
	s.direct = nil
	return d
}

// nextCall advances the collective invocation counter. Because primitives are
// called in identical order at every node, the counter is common knowledge
// and seeds per-invocation hash functions without extra communication.
func (s *Session) nextCall() uint64 {
	s.calls++
	return s.calls
}

// hashFamily derives a Theta(log n)-wise independent function for collective
// invocation `call` and the given salt, identical at every node.
func (s *Session) hashFamily(call, salt uint64) *hashing.Family {
	k := max(4, ncc.CeilLog2(s.Ctx.N())+2)
	return hashing.NewFamily(k, hashing.NewSeedStream(s.seed, hashing.Mix(call)^salt))
}

// destRank returns the per-invocation hash pair used by the routing
// primitives: destination column at the bottommost level and contention rank.
func (s *Session) destRank(call uint64) (dest func(uint64) int32, rank func(uint64) uint32) {
	fd := s.hashFamily(call, 0x64657374) // "dest"
	fr := s.hashFamily(call, 0x72616e6b) // "rank"
	cols := uint64(s.BF.Cols)
	return func(g uint64) int32 { return int32(fd.Range(g, cols)) },
		func(g uint64) uint32 { return uint32(fr.Hash(g)) }
}

// batchSize is the number of packets injected per round during preprocessing
// phases (ceil(log n), as in Appendix B.2).
func (s *Session) batchSize() int {
	return max(1, ncc.CeilLog2(s.Ctx.N()))
}

// window returns the length of the randomized delivery window for a load
// bound of lhat messages per receiver.
func (s *Session) window(lhat int) int {
	return max(1, (lhat+s.batchSize()-1)/s.batchSize())
}

// assertDrained panics if a primitive left routing state behind; this guards
// against protocol bugs in tests.
func (s *Session) assertDrained(what string) {
	if len(s.qRoute)+len(s.qRtTok)+len(s.qSpread)+len(s.qSpTok)+len(s.qInit) != 0 {
		panic(fmt.Sprintf("comm: node %d: stale primitive messages at start of %s (route=%d rtok=%d spread=%d stok=%d init=%d)",
			s.Ctx.ID(), what, len(s.qRoute), len(s.qRtTok), len(s.qSpread), len(s.qSpTok), len(s.qInit)))
	}
}

// randRound picks a uniform round offset in [0, w).
func randRound(rng *rand.Rand, w int) int {
	if w <= 1 {
		return 0
	}
	return rng.IntN(w)
}

// SharedFamily derives a fresh Theta(log n)-wise independent hash family from
// the session's shared randomness, identical at every node. It advances the
// collective invocation counter, so all nodes must call it in the same order
// (the usual SPMD discipline).
func (s *Session) SharedFamily(salt uint64) *hashing.Family {
	call := s.nextCall()
	return s.hashFamily(call, salt)
}

// SharedStream derives a deterministic word stream from the shared
// randomness, identical at every node; used to seed batches of hash
// functions (e.g. the s trial functions of the Identification Algorithm).
// Advances the collective invocation counter.
func (s *Session) SharedStream(salt uint64) *hashing.SeedStream {
	call := s.nextCall()
	return hashing.NewSeedStream(s.seed, hashing.Mix(call)^salt)
}
