package comm

import (
	"sync"
	"testing"

	"ncc/internal/ncc"
)

// Pipelined broadcast of a long word stream: O(count + log n) rounds and
// exact content at every node, including attached ones (n = 2^k + 1).
func TestBroadcastWordsLongStream(t *testing.T) {
	const n = 33 // 32 columns + 1 attached node
	const count = 100
	var mu sync.Mutex
	bad := false
	st := runAll(t, n, 3, func(s *Session) {
		var words []uint64
		if s.Ctx.ID() == 0 {
			words = make([]uint64, count)
			for i := range words {
				words[i] = uint64(i * i)
			}
		}
		got := s.BroadcastWords(0, words, count)
		mu.Lock()
		for i, w := range got {
			if w != uint64(i*i) {
				bad = true
			}
		}
		mu.Unlock()
	})
	if bad {
		t.Fatal("broadcast corrupted words")
	}
	// O(count + log n): generous constant, but far below count * log n.
	if st.Rounds > 3*count {
		t.Errorf("pipelined broadcast took %d rounds for %d words", st.Rounds, count)
	}
	if st.Dropped() != 0 {
		t.Errorf("dropped %d", st.Dropped())
	}
}

// Aggregation whose targets are attached nodes (ids above the last butterfly
// column) must deliver exactly like any other.
func TestAggregateToAttachedTargets(t *testing.T) {
	const n = 35 // columns 0..31, attached 32..34
	var mu sync.Mutex
	got := map[uint64]uint64{}
	runAll(t, n, 5, func(s *Session) {
		target := 32 + int(s.Ctx.ID())%3
		items := []Agg[uint64]{{Group: uint64(target), Target: target, Val: 1}}
		res := Aggregate(s, items, Sum, 3)
		mu.Lock()
		for _, gv := range res {
			if s.Ctx.ID() < 32 {
				panic("result delivered to a non-target")
			}
			got[gv.Group] += gv.Val
		}
		mu.Unlock()
	})
	var total uint64
	for _, v := range got {
		total += v
	}
	if total != n {
		t.Fatalf("attached targets received %d contributions, want %d", total, n)
	}
}

// Multicast groups sourced by attached nodes.
func TestMulticastFromAttachedSource(t *testing.T) {
	const n = 34
	const src = 33
	var mu sync.Mutex
	delivered := 0
	runAll(t, n, 7, func(s *Session) {
		var items []TreeItem
		if s.Ctx.ID() < 5 { // five members
			items = append(items, TreeItem{Group: 1, Origin: s.Ctx.ID()})
		}
		trees := s.SetupTrees(items)
		got := Multicast(s, trees, s.Ctx.ID() == src, 1, uint64(4242), U64Wire{}, 1)
		mu.Lock()
		for _, gv := range got {
			if gv.Val == 4242 && s.Ctx.ID() < 5 {
				delivered++
			}
		}
		mu.Unlock()
	})
	if delivered != 5 {
		t.Fatalf("attached-source multicast reached %d members, want 5", delivered)
	}
}

// Tiny cliques: the full primitive stack must work at n = 2 and n = 3.
func TestPrimitivesTinyCliques(t *testing.T) {
	for _, n := range []int{2, 3} {
		st := runAll(t, n, 11, func(s *Session) {
			me := s.Ctx.ID()
			sum, _ := AggregateAndBroadcast(s, uint64(1), true, Sum)
			if int(sum) != n {
				panic("bad sum")
			}
			trees := s.SetupTrees([]TreeItem{{Group: uint64((me + 1) % n), Origin: me}})
			got := Multicast(s, trees, true, uint64(me), uint64(me), U64Wire{}, 1)
			if len(got) != 1 || int(got[0].Val) != (me+1)%n {
				panic("bad multicast at tiny n")
			}
		})
		if st.Dropped() != 0 {
			t.Errorf("n=%d dropped %d", n, st.Dropped())
		}
	}
}

// Words accounting: the runtime must count payload words of transmitted
// messages.
func TestWordsAccounting(t *testing.T) {
	cfg := ncc.Config{N: 2, Seed: 1, Strict: true}
	st, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		if ctx.ID() == 0 {
			ctx.SendWords2(1, ncc.Words2{1, 2})       // 2 words
			ctx.SendWord(1, 7)                        // 1 word
			ctx.SendWords(1, []uint64{1, 2, 3, 4, 5}) // 5 words, arena path
		}
		ctx.EndRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Words != 8 {
		t.Errorf("words = %d, want 8", st.Words)
	}
}

// MulticastMulti: one node sources many groups at once (the paper's
// post-Theorem-2.5 extension).
func TestMulticastMultiSourcer(t *testing.T) {
	const n = 24
	const groups = 10 // all sourced by node 0
	var mu sync.Mutex
	received := map[int]map[uint64]uint64{}
	st := runAll(t, n, 13, func(s *Session) {
		me := s.Ctx.ID()
		// Node g+1 is the (single) member of group g.
		var items []TreeItem
		if me >= 1 && me <= groups {
			items = append(items, TreeItem{Group: uint64(me - 1), Origin: me})
		}
		trees := s.SetupTrees(items)
		var packets []SourcePacket[uint64]
		if me == 0 {
			for g := 0; g < groups; g++ {
				packets = append(packets, SourcePacket[uint64]{Group: uint64(g), Val: uint64(9000 + g)})
			}
		}
		got := MulticastMulti(s, trees, packets, U64Wire{}, 1)
		m := map[uint64]uint64{}
		for _, gv := range got {
			m[gv.Group] = gv.Val
		}
		mu.Lock()
		received[me] = m
		mu.Unlock()
	})
	for g := 0; g < groups; g++ {
		member := g + 1
		v, ok := received[member][uint64(g)]
		if !ok || v != uint64(9000+g) {
			t.Errorf("member %d of group %d got %d,%v", member, g, v, ok)
		}
	}
	if st.Dropped() != 0 {
		t.Errorf("dropped %d", st.Dropped())
	}
}
