package comm

import (
	"math/rand/v2"
	"sync"
	"testing"

	"ncc/internal/ncc"
)

// TestAggregateSumsPerGroup builds a random Aggregation Problem, solves it
// both with the primitive and by brute force, and compares.
func TestAggregateSumsPerGroup(t *testing.T) {
	for _, tc := range []struct {
		n, groups, membersPer int
		seed                  int64
	}{
		{2, 1, 2, 1},
		{3, 2, 2, 2},
		{8, 5, 4, 3},
		{16, 10, 6, 4},
		{23, 17, 5, 5},
		{64, 40, 9, 6},
		{100, 64, 16, 7},
	} {
		// Deterministically derive the problem: group g has target g%n and
		// members (g*7+j*13)%n with value g*100+member.
		n := tc.n
		type gm struct{ target int }
		groupsOf := make([][]Agg[uint64], n) // per member node
		want := map[uint64]uint64{}          // group -> sum
		targetOf := map[uint64]int{}
		for g := 0; g < tc.groups; g++ {
			target := (g * 31) % n
			targetOf[uint64(g)] = target
			seen := map[int]bool{}
			for j := 0; j < tc.membersPer; j++ {
				m := (g*7 + j*13) % n
				if seen[m] {
					continue
				}
				seen[m] = true
				val := uint64(g*100 + m)
				groupsOf[m] = append(groupsOf[m], Agg[uint64]{Group: uint64(g), Target: target, Val: val})
				want[uint64(g)] += val
			}
		}
		var mu sync.Mutex
		got := map[uint64]uint64{}
		gotTarget := map[uint64]int{}
		st := runAll(t, n, tc.seed, func(s *Session) {
			res := Aggregate(s, groupsOf[s.Ctx.ID()], Sum, tc.groups)
			mu.Lock()
			for _, gv := range res {
				got[gv.Group] = gv.Val
				gotTarget[gv.Group] = s.Ctx.ID()
			}
			mu.Unlock()
		})
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d groups, want %d", n, len(got), len(want))
		}
		for g, w := range want {
			if got[g] != w {
				t.Errorf("n=%d group %d: sum=%d want %d", n, g, got[g], w)
			}
			if gotTarget[g] != targetOf[g] {
				t.Errorf("n=%d group %d delivered to %d, want %d", n, g, gotTarget[g], targetOf[g])
			}
		}
		if st.Dropped() != 0 {
			t.Errorf("n=%d: dropped %d messages", n, st.Dropped())
		}
	}
}

// TestAggregateMinAndTies exercises a non-sum combiner and many groups
// sharing one target.
func TestAggregateManyGroupsOneTarget(t *testing.T) {
	const n = 32
	const groups = 64 // node 0 is the target of every group
	var mu sync.Mutex
	got := map[uint64]uint64{}
	runAll(t, n, 17, func(s *Session) {
		var items []Agg[uint64]
		for g := 0; g < groups; g++ {
			if g%n == s.Ctx.ID() || (g+7)%n == s.Ctx.ID() {
				items = append(items, Agg[uint64]{Group: uint64(g), Target: 0, Val: uint64(s.Ctx.ID() + g)})
			}
		}
		res := Aggregate(s, items, Min, groups)
		mu.Lock()
		for _, gv := range res {
			if s.Ctx.ID() != 0 {
				panic("result delivered to a non-target")
			}
			got[gv.Group] = gv.Val
		}
		mu.Unlock()
	})
	if len(got) != groups {
		t.Fatalf("got %d groups, want %d", len(got), groups)
	}
	for g := uint64(0); g < groups; g++ {
		a := (g % n) + g
		b := ((g + 7) % n) + g
		want := min(a, b)
		if got[g] != want {
			t.Errorf("group %d: min=%d want %d", g, got[g], want)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	runAll(t, 16, 3, func(s *Session) {
		res := Aggregate[uint64](s, nil, Sum, 1)
		if len(res) != 0 {
			panic("empty aggregation produced results")
		}
	})
}

// TestAggregateXorCount checks the Identification Algorithm's value type
// end to end.
func TestAggregateXorCount(t *testing.T) {
	const n = 16
	var mu sync.Mutex
	var got XorCount
	runAll(t, n, 9, func(s *Session) {
		items := []Agg[XorCount]{{Group: 1, Target: 3, Val: XorCount{X: uint64(s.Ctx.ID() * 1111), C: 1}}}
		res := Aggregate(s, items, MergeXorCount, 1)
		for _, gv := range res {
			mu.Lock()
			got = gv.Val
			mu.Unlock()
		}
	})
	var want XorCount
	for i := 0; i < n; i++ {
		want.X ^= uint64(i * 1111)
		want.C++
	}
	if got != want {
		t.Errorf("XorCount aggregate = %+v, want %+v", got, want)
	}
}

// multicastProblem is a reusable random multicast-group layout.
type multicastProblem struct {
	n       int
	members [][]uint64 // per node: groups it belongs to
	sources map[uint64]int
	vals    map[uint64]uint64
}

func makeMulticastProblem(n, groups int, seed int64) *multicastProblem {
	rng := rand.New(rand.NewPCG(uint64(seed), 99))
	p := &multicastProblem{n: n, members: make([][]uint64, n), sources: map[uint64]int{}, vals: map[uint64]uint64{}}
	perm := rng.Perm(n)
	for g := 0; g < groups && g < n; g++ {
		src := perm[g] // distinct source per group, as the theorems require
		p.sources[uint64(g)] = src
		p.vals[uint64(g)] = uint64(5000 + g)
		sz := 1 + rng.IntN(5)
		for j := 0; j < sz; j++ {
			m := rng.IntN(n)
			if m == src {
				continue
			}
			p.members[m] = append(p.members[m], uint64(g))
		}
	}
	return p
}

func (p *multicastProblem) items(node int) []TreeItem {
	var items []TreeItem
	for _, g := range p.members[node] {
		items = append(items, TreeItem{Group: g, Origin: node})
	}
	return items
}

func (p *multicastProblem) maxMemberships() int {
	m := 1
	for _, gs := range p.members {
		if len(gs) > m {
			m = len(gs)
		}
	}
	return m
}

func TestSetupTreesAndMulticast(t *testing.T) {
	for _, tc := range []struct {
		n, groups int
		seed      int64
	}{
		{2, 1, 1}, {4, 3, 2}, {8, 6, 3}, {16, 12, 4}, {33, 20, 5}, {64, 50, 6},
	} {
		p := makeMulticastProblem(tc.n, tc.groups, tc.seed)
		lhat := p.maxMemberships()
		var mu sync.Mutex
		received := make([]map[uint64]uint64, tc.n)
		st := runAll(t, tc.n, tc.seed, func(s *Session) {
			trees := s.SetupTrees(p.items(s.Ctx.ID()))
			var group uint64
			var isSource bool
			for g, src := range p.sources {
				if src == s.Ctx.ID() {
					group, isSource = g, true
				}
			}
			var val uint64
			if isSource {
				val = p.vals[group]
			}
			got := Multicast(s, trees, isSource, group, val, U64Wire{}, lhat)
			m := map[uint64]uint64{}
			for _, gv := range got {
				m[gv.Group] = gv.Val
			}
			mu.Lock()
			received[s.Ctx.ID()] = m
			mu.Unlock()
		})
		for node := 0; node < tc.n; node++ {
			wantGroups := map[uint64]int{}
			for _, g := range p.members[node] {
				wantGroups[g]++
			}
			for g := range wantGroups {
				got, ok := received[node][g]
				if !ok {
					t.Errorf("n=%d node %d missed multicast of group %d", tc.n, node, g)
					continue
				}
				if got != p.vals[g] {
					t.Errorf("n=%d node %d group %d: got %d want %d", tc.n, node, g, got, p.vals[g])
				}
			}
			for g := range received[node] {
				if wantGroups[g] == 0 {
					t.Errorf("n=%d node %d received group %d it never joined", tc.n, node, g)
				}
			}
		}
		if st.Dropped() != 0 {
			t.Errorf("n=%d: dropped %d messages", tc.n, st.Dropped())
		}
	}
}

func TestMulticastNoSources(t *testing.T) {
	p := makeMulticastProblem(16, 8, 3)
	runAll(t, 16, 3, func(s *Session) {
		trees := s.SetupTrees(p.items(s.Ctx.ID()))
		got := Multicast(s, trees, false, 0, uint64(0), U64Wire{}, p.maxMemberships())
		if len(got) != 0 {
			panic("received multicast with no sources")
		}
	})
}

func TestMulticastReusedTrees(t *testing.T) {
	// The same trees must support repeated multicasts (the MST algorithm
	// multicasts over component trees several times per phase).
	p := makeMulticastProblem(16, 10, 8)
	lhat := p.maxMemberships()
	var mu sync.Mutex
	counts := make([]int, 3)
	runAll(t, 16, 8, func(s *Session) {
		trees := s.SetupTrees(p.items(s.Ctx.ID()))
		var group uint64
		var isSource bool
		for g, src := range p.sources {
			if src == s.Ctx.ID() {
				group, isSource = g, true
			}
		}
		for round := 0; round < 3; round++ {
			var val uint64
			if isSource {
				val = uint64(round)
			}
			got := Multicast(s, trees, isSource, group, val, U64Wire{}, lhat)
			mu.Lock()
			counts[round] += len(got)
			mu.Unlock()
			for _, gv := range got {
				if gv.Val != uint64(round) {
					panic("stale value from a previous multicast")
				}
			}
		}
	})
	if counts[0] == 0 || counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("delivery counts varied across reuses: %v", counts)
	}
}

func TestMultiAggregateMin(t *testing.T) {
	for _, tc := range []struct {
		n, groups int
		seed      int64
	}{
		{4, 3, 1}, {8, 6, 2}, {16, 12, 3}, {32, 25, 4}, {64, 40, 5},
	} {
		p := makeMulticastProblem(tc.n, tc.groups, tc.seed)
		var mu sync.Mutex
		got := make([]uint64, tc.n)
		gotOK := make([]bool, tc.n)
		runAll(t, tc.n, tc.seed+100, func(s *Session) {
			trees := s.SetupTrees(p.items(s.Ctx.ID()))
			var group uint64
			var isSource bool
			for g, src := range p.sources {
				if src == s.Ctx.ID() {
					group, isSource = g, true
				}
			}
			var val uint64
			if isSource {
				val = p.vals[group]
			}
			v, ok := MultiAggregate(s, trees, isSource, group, val, Min)
			mu.Lock()
			gotOK[s.Ctx.ID()] = ok
			if ok {
				got[s.Ctx.ID()] = v
			}
			mu.Unlock()
		})
		for node := 0; node < tc.n; node++ {
			want := uint64(0)
			has := false
			for _, g := range p.members[node] {
				v := p.vals[g]
				if !has || v < want {
					want, has = v, true
				}
			}
			if gotOK[node] != has {
				t.Errorf("n=%d node %d: ok=%v want %v", tc.n, node, gotOK[node], has)
				continue
			}
			if has && got[node] != want {
				t.Errorf("n=%d node %d: min=%d want %d", tc.n, node, got[node], want)
			}
		}
	}
}

func TestMultiAggregatePartialSources(t *testing.T) {
	// Only half the sources are active; members must aggregate over active
	// groups only (Corollary 1 with S a strict subset).
	p := makeMulticastProblem(32, 20, 6)
	active := func(g uint64) bool { return g%2 == 0 }
	var mu sync.Mutex
	got := make(map[int]uint64)
	runAll(t, 32, 6, func(s *Session) {
		trees := s.SetupTrees(p.items(s.Ctx.ID()))
		var group uint64
		var isSource bool
		for g, src := range p.sources {
			if src == s.Ctx.ID() && active(g) {
				group, isSource = g, true
			}
		}
		var val uint64
		if isSource {
			val = p.vals[group]
		}
		v, ok := MultiAggregate(s, trees, isSource, group, val, Min)
		if ok {
			mu.Lock()
			got[s.Ctx.ID()] = v
			mu.Unlock()
		}
	})
	for node := 0; node < 32; node++ {
		want := uint64(0)
		has := false
		for _, g := range p.members[node] {
			if !active(g) {
				continue
			}
			if v := p.vals[g]; !has || v < want {
				want, has = v, true
			}
		}
		v, ok := got[node]
		if ok != has {
			t.Errorf("node %d: ok=%v want %v", node, ok, has)
			continue
		}
		if has && v != want {
			t.Errorf("node %d: got %d want %d", node, v, want)
		}
	}
}

func TestMultiAggregatePickReturnsANeighborSource(t *testing.T) {
	p := makeMulticastProblem(32, 24, 11)
	var mu sync.Mutex
	picks := map[int]uint64{}
	runAll(t, 32, 11, func(s *Session) {
		trees := s.SetupTrees(p.items(s.Ctx.ID()))
		var group uint64
		var isSource bool
		for g, src := range p.sources {
			if src == s.Ctx.ID() {
				group, isSource = g, true
			}
		}
		id, ok := MultiAggregatePick(s, trees, isSource, group, uint64(s.Ctx.ID()))
		if ok {
			mu.Lock()
			picks[s.Ctx.ID()] = id
			mu.Unlock()
		}
	})
	for node, id := range picks {
		valid := false
		for _, g := range p.members[node] {
			if p.sources[g] == int(id) {
				valid = true
			}
		}
		if !valid {
			t.Errorf("node %d picked %d, which sources none of its groups", node, id)
		}
	}
	// Every node with at least one group must have picked something.
	for node := 0; node < 32; node++ {
		if len(p.members[node]) > 0 {
			if _, ok := picks[node]; !ok {
				t.Errorf("node %d has memberships but picked nothing", node)
			}
		}
	}
}

func TestTreeCongestionIsLogarithmic(t *testing.T) {
	// Disjoint groups (a partition) must give congestion O(L/n + log n) =
	// O(log n) (Theorem 2.4); with L = n and small log n we allow a generous
	// constant.
	const n = 128
	var mu sync.Mutex
	maxCong := 0
	runAll(t, n, 19, func(s *Session) {
		// Partition nodes into groups of 8 by id; group id = block index.
		g := uint64(s.Ctx.ID() / 8)
		trees := s.SetupTrees([]TreeItem{{Group: g, Origin: s.Ctx.ID()}})
		c := trees.Congestion()
		mu.Lock()
		if c > maxCong {
			maxCong = c
		}
		mu.Unlock()
	})
	if maxCong > 6*ncc.CeilLog2(n) {
		t.Errorf("congestion %d too high for disjoint groups (log n = %d)", maxCong, ncc.CeilLog2(n))
	}
}
