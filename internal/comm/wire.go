package comm

// The typed value layer of the collectives: a Wire[T] codec describes how a
// payload type is laid out as Theta(log n)-bit machine words, a Combiner[T]
// pairs a codec with a commutative-associative merge. All primitives move
// encoded words through the engine's inline word paths — no payload is ever
// boxed into an interface, so primitive traffic is allocation-free end to
// end.

// Wire is a fixed-width word codec for payload type T. Words reports the
// payload width; Encode writes exactly Words() words into ws; Decode reads
// them back. Codecs must be stateless values (they are copied freely) and
// Encode/Decode must be exact inverses — the codec fuzz test pins this for
// every built-in.
type Wire[T any] interface {
	Words() int
	Encode(v T, ws []uint64)
	Decode(ws []uint64) T
}

// Combiner pairs a codec with a distributive aggregate function: Combine
// must be commutative and associative so that packets of the same
// aggregation group can merge in any order along the butterfly.
type Combiner[T any] struct {
	Wire[T]
	Combine func(a, b T) T
}

// Pair is a two-word value, combined lexicographically by the MinPair /
// MaxPair combiners.
type Pair struct{ A, B uint64 }

// XorCount carries an XOR accumulator and an exact counter; it is the cell
// type of the Identification Algorithm's sketch (Section 4.1).
type XorCount struct {
	X uint64
	C uint64
}

// Sketch carries the h-up and h-down trial bit vectors of the FindMin edge
// sketch (Section 3), 64 parallel trials each.
type Sketch struct{ Up, Down uint64 }

// Sketch3 carries three prefix sketches, enabling quaternary search (three
// range tests per round trip) in FindMin.
type Sketch3 struct{ S [3]Sketch }

// Flag is a zero-information presence marker: its arrival is the message, so
// its codec is zero-width and a Flag rides entirely inside the wire header.
type Flag struct{}

// U64Wire is the one-word codec for uint64 values.
type U64Wire struct{}

// Words implements Wire.
func (U64Wire) Words() int { return 1 }

// Encode implements Wire.
func (U64Wire) Encode(v uint64, ws []uint64) { ws[0] = v }

// Decode implements Wire.
func (U64Wire) Decode(ws []uint64) uint64 { return ws[0] }

// PairWire is the two-word codec for Pair.
type PairWire struct{}

// Words implements Wire.
func (PairWire) Words() int { return 2 }

// Encode implements Wire.
func (PairWire) Encode(v Pair, ws []uint64) { ws[0], ws[1] = v.A, v.B }

// Decode implements Wire.
func (PairWire) Decode(ws []uint64) Pair { return Pair{A: ws[0], B: ws[1]} }

// XorCountWire is the two-word codec for XorCount.
type XorCountWire struct{}

// Words implements Wire.
func (XorCountWire) Words() int { return 2 }

// Encode implements Wire.
func (XorCountWire) Encode(v XorCount, ws []uint64) { ws[0], ws[1] = v.X, v.C }

// Decode implements Wire.
func (XorCountWire) Decode(ws []uint64) XorCount { return XorCount{X: ws[0], C: ws[1]} }

// SketchWire is the two-word codec for Sketch.
type SketchWire struct{}

// Words implements Wire.
func (SketchWire) Words() int { return 2 }

// Encode implements Wire.
func (SketchWire) Encode(v Sketch, ws []uint64) { ws[0], ws[1] = v.Up, v.Down }

// Decode implements Wire.
func (SketchWire) Decode(ws []uint64) Sketch { return Sketch{Up: ws[0], Down: ws[1]} }

// Sketch3Wire is the six-word codec for Sketch3.
type Sketch3Wire struct{}

// Words implements Wire.
func (Sketch3Wire) Words() int { return 6 }

// Encode implements Wire.
func (Sketch3Wire) Encode(v Sketch3, ws []uint64) {
	for i, sk := range v.S {
		ws[2*i], ws[2*i+1] = sk.Up, sk.Down
	}
}

// Decode implements Wire.
func (Sketch3Wire) Decode(ws []uint64) Sketch3 {
	var v Sketch3
	for i := range v.S {
		v.S[i] = Sketch{Up: ws[2*i], Down: ws[2*i+1]}
	}
	return v
}

// ZeroWire is the zero-width codec for Flag: a Flag payload contributes no
// words to its wire message.
type ZeroWire struct{}

// Words implements Wire.
func (ZeroWire) Words() int { return 0 }

// Encode implements Wire.
func (ZeroWire) Encode(Flag, []uint64) {}

// Decode implements Wire.
func (ZeroWire) Decode([]uint64) Flag { return Flag{} }

// maxValWords bounds the payload width of the built-in codecs; the session's
// encode scratch is sized for the widest wire message plus this.
const maxValWords = 6

// Built-in combiners for the value types above.
var (
	// Min keeps the smaller uint64.
	Min = Combiner[uint64]{U64Wire{}, func(a, b uint64) uint64 { return min(a, b) }}
	// Max keeps the larger uint64.
	Max = Combiner[uint64]{U64Wire{}, func(a, b uint64) uint64 { return max(a, b) }}
	// Sum adds uint64 values.
	Sum = Combiner[uint64]{U64Wire{}, func(a, b uint64) uint64 { return a + b }}
	// Xor XORs uint64 values.
	Xor = Combiner[uint64]{U64Wire{}, func(a, b uint64) uint64 { return a ^ b }}
	// Or ORs uint64 values (0/1 used as booleans).
	Or = Combiner[uint64]{U64Wire{}, func(a, b uint64) uint64 { return a | b }}

	// MinPair keeps the lexicographically smaller pair.
	MinPair = Combiner[Pair]{PairWire{}, func(a, b Pair) Pair {
		if b.A < a.A || (b.A == a.A && b.B < a.B) {
			return b
		}
		return a
	}}
	// MaxPair keeps the lexicographically larger pair.
	MaxPair = Combiner[Pair]{PairWire{}, func(a, b Pair) Pair {
		if b.A > a.A || (b.A == a.A && b.B > a.B) {
			return b
		}
		return a
	}}
	// MaxEach takes the componentwise maximum of pairs (two independent
	// MaxAll reductions in one aggregation).
	MaxEach = Combiner[Pair]{PairWire{}, func(a, b Pair) Pair {
		return Pair{A: max(a.A, b.A), B: max(a.B, b.B)}
	}}
	// SumPair adds pairs componentwise.
	SumPair = Combiner[Pair]{PairWire{}, func(a, b Pair) Pair {
		return Pair{A: a.A + b.A, B: a.B + b.B}
	}}

	// MergeXorCount XORs the accumulators and adds the counters, the
	// aggregate function of the Identification Algorithm.
	MergeXorCount = Combiner[XorCount]{XorCountWire{}, func(a, b XorCount) XorCount {
		return XorCount{X: a.X ^ b.X, C: a.C + b.C}
	}}
	// MergeSketch XORs both trial vectors.
	MergeSketch = Combiner[Sketch]{SketchWire{}, mergeSketch}
	// MergeSketch3 XORs all three prefix sketches.
	MergeSketch3 = Combiner[Sketch3]{Sketch3Wire{}, func(a, b Sketch3) Sketch3 {
		var out Sketch3
		for i := range out.S {
			out.S[i] = mergeSketch(a.S[i], b.S[i])
		}
		return out
	}}
	// AnyFlag merges two presence markers.
	AnyFlag = Combiner[Flag]{ZeroWire{}, func(Flag, Flag) Flag { return Flag{} }}
)

func mergeSketch(a, b Sketch) Sketch {
	return Sketch{Up: a.Up ^ b.Up, Down: a.Down ^ b.Down}
}
