package comm

import (
	"testing"

	"ncc/internal/ncc"
)

// Benchmarks for the typed collectives themselves (as opposed to the
// engine-level BenchmarkEngine* set in internal/ncc and the experiment
// regeneration set in the repo root): one session at n=4096, every node
// performing b.N collective calls, so ns/op converges to the steady-state
// cost of one primitive invocation with session setup amortized away.
// ReportAllocs pins the zero-allocation property in the recorded numbers
// (allocs/op -> ~0 as b.N grows) and SetBytes reports payload throughput.
// CI gates BenchmarkAggregate/n=4096 against BENCH_baseline.json via
// cmd/benchcheck.

const benchN = 4096

// benchSession runs node(s, b.N) on every node of an n=benchN clique and
// charges the whole run to the benchmark timer, reporting per-op message
// counts and payload bytes.
func benchSession(b *testing.B, node func(s *Session, iters int)) {
	b.Helper()
	b.ReportAllocs()
	st, err := ncc.Run(ncc.Config{N: benchN, Seed: 1, Strict: true}, func(ctx *ncc.Context) {
		node(NewSession(ctx), b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Words * 8 / int64(b.N))
	b.ReportMetric(float64(st.Messages)/float64(b.N), "msgs/op")
}

// BenchmarkAggregate measures one Aggregation (Theorem 2.3) per op: every
// node contributes one uint64 to a distinct group, combined with Sum
// in-network.
func BenchmarkAggregate(b *testing.B) {
	b.Run("n=4096", func(b *testing.B) {
		benchSession(b, func(s *Session, iters int) {
			me := s.Ctx.ID()
			items := []Agg[uint64]{{Group: uint64((me + 3) % benchN), Target: (me + 3) % benchN, Val: uint64(me)}}
			for i := 0; i < iters; i++ {
				if got := Aggregate(s, items, Sum, 1); len(got) != 1 {
					panic("aggregate lost a group")
				}
			}
		})
	})
}

// BenchmarkMulticast measures one Multicast (Theorem 2.5) per op over trees
// set up once per session: every node sources one uint64 into its group.
func BenchmarkMulticast(b *testing.B) {
	b.Run("n=4096", func(b *testing.B) {
		benchSession(b, func(s *Session, iters int) {
			me := s.Ctx.ID()
			trees := s.SetupTrees([]TreeItem{{Group: uint64((me + 1) % benchN), Origin: me}})
			for i := 0; i < iters; i++ {
				if got := Multicast(s, trees, true, uint64(me), uint64(i), U64Wire{}, 1); len(got) != 1 {
					panic("multicast lost a packet")
				}
			}
		})
	})
}

// BenchmarkAggregateAndBroadcast measures one Aggregate-and-Broadcast
// (Theorem 2.2) per op: a global Sum over one uint64 per node, result
// delivered everywhere.
func BenchmarkAggregateAndBroadcast(b *testing.B) {
	b.Run("n=4096", func(b *testing.B) {
		benchSession(b, func(s *Session, iters int) {
			for i := 0; i < iters; i++ {
				if v, ok := AggregateAndBroadcast(s, uint64(1), true, Sum); !ok || v != benchN {
					panic("bad aggregate-and-broadcast")
				}
			}
		})
	})
}
