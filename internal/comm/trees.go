package comm

import (
	"ncc/internal/hashing"
	"ncc/internal/ncc"
)

// TreeItem declares one multicast-group membership to be wired into the
// multicast trees: the member node Origin joins group Group. A node may
// declare memberships on behalf of others (the paper's orientation-based
// broadcast-tree setup has each node inject packets for its out-neighbors,
// Section 5).
type TreeItem struct {
	Group  uint64
	Origin ncc.NodeID
}

// Trees is a node's share of a set of multicast trees (Theorem 2.4): for
// every group, a tree in the butterfly rooted at a pseudo-random
// bottommost-level node with one leaf per member at the topmost level. The
// structure is distributed; each node holds only the state of its own column.
type Trees struct {
	call uint64 // setup invocation; fixes the root hash

	// children[level][group] is the bitmask of up-edge sides (bit 0 straight,
	// bit 1 cross) along which setup packets of the group arrived at this
	// column's butterfly node of that level; those edges are the tree edges
	// the multicast retraces downward.
	children []map[uint64]uint8

	// leafOrigins[group] lists the members whose packets entered the
	// butterfly at this column's level-0 node; the leaf delivers multicasts
	// to them directly.
	leafOrigins map[uint64][]int32

	// destFam/cols reproduce the setup invocation's root hash; they live as
	// long as the trees (unlike the session's pooled per-call families).
	destFam *hashing.Family
	cols    uint64
}

// record notes a setup packet's arrival for tree construction.
func (t *Trees) record(level int, group uint64, origin int32, side int) {
	if level == 0 {
		t.leafOrigins[group] = append(t.leafOrigins[group], origin)
		return
	}
	t.children[level][group] |= 1 << side
}

// Congestion returns the number of trees sharing this column's most loaded
// butterfly node (the local contribution to the congestion of Theorem 2.4;
// aggregate with MaxAll for the global value).
func (t *Trees) Congestion() int {
	c := len(t.leafOrigins)
	for _, m := range t.children {
		if len(m) > c {
			c = len(m)
		}
	}
	return c
}

// Root returns the bottommost-level column at which the tree of the given
// group is rooted.
func (t *Trees) Root(group uint64) int32 { return int32(t.destFam.Range(group, t.cols)) }

// SetupTrees solves the Multicast Tree Setup Problem (Theorem 2.4): the
// memberships declared by all nodes are routed toward their groups' root
// columns exactly like an aggregation, and every butterfly node records the
// edges along which packets of each group arrived. Cost: O(L/n + l/log n +
// log n) rounds w.h.p.; the resulting trees have congestion O(L/n + log n)
// w.h.p.
func (s *Session) SetupTrees(items []TreeItem) *Trees {
	s.assertDrained("SetupTrees")
	call := s.nextCall()
	// The dest family is retained by the returned Trees (it fixes every
	// group's root), so it is allocated fresh rather than pooled.
	k := max(4, ncc.CeilLog2(s.Ctx.N())+2)
	st := hashing.StreamFrom(s.seed, hashing.Mix(call)^0x64657374)
	destFam := hashing.NewFamily(k, &st)
	h := pktHash{dest: destFam, rank: s.pooledFamily(&s.famRank, call, 0x72616e6b), cols: uint64(s.BF.Cols)}
	seq := seq24(call)

	levels := s.BF.Levels()
	t := &Trees{call: call, leafOrigins: make(map[uint64][]int32), destFam: destFam, cols: h.cols}
	t.children = make([]map[uint64]uint8, levels)
	for i := range t.children {
		t.children[i] = make(map[uint64]uint8)
	}

	var r *combineRouter[uint64]
	if s.BF.IsEmulator(s.Ctx.ID()) {
		r = stateFor[uint64](s).combine(s, seq, Sum, t)
	}

	// Inject with per-item origins (the Aggregate inject is not reusable here
	// because the origin differs from the sender for on-behalf memberships,
	// and there is no delivery target).
	ctx := s.Ctx
	batch := s.batchSize()
	for i, it := range items {
		p := pkt[uint64]{
			group:   it.Group,
			destCol: h.destCol(it.Group),
			rank:    h.rankOf(it.Group),
			target:  -1,
			origin:  int32(it.Origin),
			val:     1,
		}
		col := ctx.Rand().IntN(s.BF.Cols)
		if r != nil && col == r.col {
			r.stageLocal(p)
		} else {
			sendRoute(s, s.BF.Host(col), seq, 0, U64Wire{}, p)
		}
		if (i+1)%batch == 0 {
			s.Advance()
		}
	}
	if len(items)%batch != 0 || len(items) == 0 {
		s.Advance()
	}
	s.Synchronize()

	runCombine(s, r)
	s.Synchronize()

	if r != nil {
		clear(r.pend[s.BF.D])
	}
	return t
}
