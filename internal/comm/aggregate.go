package comm

import (
	"slices"

	"ncc/internal/ncc"
)

// Agg is one aggregation-group membership of the calling node: the group's
// identity, the node that must receive the aggregate, and this node's input
// value. A node may be a member and a target of many groups (Section 2.2,
// Aggregation Problem).
type Agg struct {
	Group  uint64
	Target ncc.NodeID
	Val    Value
}

// GroupVal is a per-group result delivered to a target.
type GroupVal struct {
	Group uint64
	Val   Value
}

// Aggregate solves the Aggregation Problem (Theorem 2.3): for every group,
// the inputs of all members are combined with the distributive function f and
// delivered to the group's target. Every member must pass the same target for
// the same group. lhat2 is the globally known upper bound on the number of
// nonempty groups any single node is the target of; it controls the
// randomized delivery window, exactly as in Appendix B.2.
//
// Cost: O(L/n + (l1+lhat2)/log n + log n) rounds w.h.p., where L is the
// global load and l1 the maximum number of memberships per node.
func (s *Session) Aggregate(items []Agg, f Combine, lhat2 int) []GroupVal {
	s.assertDrained("Aggregate")
	call := s.nextCall()
	dest, rank := s.destRank(call)
	seq := uint32(call)

	var r *combineRouter
	if s.BF.IsEmulator(s.Ctx.ID()) {
		r = newCombineRouter(s, seq, f, nil)
	}

	// Preprocessing: inject packets in batches of ceil(log n) per round to
	// uniformly random bottom... top-level (level-0) butterfly nodes.
	s.inject(r, seq, items, dest, rank)
	s.Synchronize()

	// Combining: route and merge until the column is quiescent.
	s.runCombine(r)
	s.Synchronize()

	// Postprocessing: deliver each completed group to its target within a
	// randomized window of ceil(lhat2/log n) rounds.
	return s.deliverResults(r, s.window(lhat2))
}

// inject sends the node's membership packets to random level-0 columns,
// batch-by-batch. Packets addressed to the node's own column are staged
// locally (same one-round latency, no clique message).
func (s *Session) inject(r *combineRouter, seq uint32, items []Agg, dest func(uint64) int32, rank func(uint64) uint32) {
	ctx := s.Ctx
	batch := s.batchSize()
	for i, it := range items {
		p := pkt{
			group:   it.Group,
			destCol: dest(it.Group),
			rank:    rank(it.Group),
			target:  int32(it.Target),
			origin:  int32(ctx.ID()),
			val:     it.Val,
		}
		col := ctx.Rand().IntN(s.BF.Cols)
		if r != nil && col == r.col {
			r.stageLocal(p)
		} else {
			ctx.Send(s.BF.Host(col), routeMsg{seq: seq, level: 0, p: p})
		}
		if (i+1)%batch == 0 {
			s.Advance()
		}
	}
	if len(items)%batch != 0 || len(items) == 0 {
		s.Advance()
	}
}

// deliverResults sends every completed group's value from its intermediate
// target to its final target at a uniformly random round of the window, and
// collects the results addressed to this node.
func (s *Session) deliverResults(r *combineRouter, window int) []GroupVal {
	ctx := s.Ctx
	var mine []GroupVal
	plan := make([][]*pkt, window)
	if r != nil {
		// Iterate completed groups in sorted order: ranging over the map
		// directly would pair packets with random rounds in a different order
		// every process run, breaking the per-seed determinism of the engine.
		done := r.completed()
		groups := make([]uint64, 0, len(done))
		for g := range done {
			groups = append(groups, g)
		}
		slices.Sort(groups)
		for _, g := range groups {
			t := randRound(ctx.Rand(), window)
			plan[t] = append(plan[t], done[g])
		}
	}
	for t := 0; t < window; t++ {
		for _, p := range plan[t] {
			if int(p.target) == ctx.ID() {
				mine = append(mine, GroupVal{Group: p.group, Val: p.val})
			} else {
				ctx.Send(int(p.target), resultMsg{group: p.group, val: p.val})
			}
		}
		s.Advance()
	}
	for _, m := range s.qResult {
		mine = append(mine, GroupVal{Group: m.group, Val: m.val})
	}
	s.qResult = s.qResult[:0]
	if r != nil {
		clear(r.pend[s.BF.D])
	}
	return mine
}
