package comm

import (
	"slices"

	"ncc/internal/ncc"
)

// Agg is one aggregation-group membership of the calling node: the group's
// identity, the node that must receive the aggregate, and this node's input
// value. A node may be a member and a target of many groups (Section 2.2,
// Aggregation Problem).
type Agg[T any] struct {
	Group  uint64
	Target ncc.NodeID
	Val    T
}

// GroupVal is a per-group result delivered to a target or group member.
type GroupVal[T any] struct {
	Group uint64
	Val   T
}

// Aggregate solves the Aggregation Problem (Theorem 2.3): for every group,
// the inputs of all members are combined with the distributive combiner c and
// delivered to the group's target. Every member must pass the same target for
// the same group. lhat2 is the globally known upper bound on the number of
// nonempty groups any single node is the target of; it controls the
// randomized delivery window, exactly as in Appendix B.2.
//
// Cost: O(L/n + (l1+lhat2)/log n + log n) rounds w.h.p., where L is the
// global load and l1 the maximum number of memberships per node.
//
// The returned slice is reused by the next collective invocation with the
// same payload type (like the engine's EndRound inbox); copy it if it must
// survive that long.
func Aggregate[T any](s *Session, items []Agg[T], c Combiner[T], lhat2 int) []GroupVal[T] {
	s.assertDrained("Aggregate")
	call := s.nextCall()
	h := s.destRank(call)
	seq := seq24(call)

	var r *combineRouter[T]
	if s.BF.IsEmulator(s.Ctx.ID()) {
		r = stateFor[T](s).combine(s, seq, c, nil)
	}

	// Preprocessing: inject packets in batches of ceil(log n) per round to
	// uniformly random bottommost-level (level-0) butterfly nodes.
	inject(s, r, seq, c.Wire, items, h)
	s.Synchronize()

	// Combining: route and merge until the column is quiescent.
	runCombine(s, r)
	s.Synchronize()

	// Postprocessing: deliver each completed group to its target within a
	// randomized window of ceil(lhat2/log n) rounds.
	return deliverResults(s, r, c.Wire, s.window(lhat2))
}

// inject sends the node's membership packets to random level-0 columns,
// batch-by-batch. Packets addressed to the node's own column are staged
// locally (same one-round latency, no clique message). A nil router means
// this node is attached (no butterfly column), so nothing can stage locally.
func inject[T any](s *Session, r *combineRouter[T], seq uint32, w Wire[T], items []Agg[T], h pktHash) {
	ctx := s.Ctx
	batch := s.batchSize()
	for i, it := range items {
		p := pkt[T]{
			group:   it.Group,
			destCol: h.destCol(it.Group),
			rank:    h.rankOf(it.Group),
			target:  int32(it.Target),
			origin:  int32(ctx.ID()),
			val:     it.Val,
		}
		col := ctx.Rand().IntN(s.BF.Cols)
		if r != nil && col == r.col {
			r.stageLocal(p)
		} else {
			sendRoute(s, s.BF.Host(col), seq, 0, w, p)
		}
		if (i+1)%batch == 0 {
			s.Advance()
		}
	}
	if len(items)%batch != 0 || len(items) == 0 {
		s.Advance()
	}
}

// sendRoute encodes a packet crossing into `level` toward node `to`.
func sendRoute[T any](s *Session, to ncc.NodeID, seq uint32, level int, w Wire[T], p pkt[T]) {
	n := w.Words()
	enc := s.encode(4 + n)
	enc[0] = tagRoute<<56 | uint64(seq&seqMask)<<32 | uint64(uint8(level))<<24
	enc[1] = p.group
	enc[2] = uint64(uint32(p.destCol))<<32 | uint64(p.rank)
	enc[3] = uint64(uint32(p.target))<<32 | uint64(uint32(p.origin))
	w.Encode(p.val, enc[4:])
	s.Ctx.SendWords(to, enc)
}

// deliverResults sends every completed group's value from its intermediate
// target to its final target at a uniformly random round of the window, and
// collects the results addressed to this node.
func deliverResults[T any](s *Session, r *combineRouter[T], w Wire[T], window int) []GroupVal[T] {
	ctx := s.Ctx
	st := stateFor[T](s)
	mine := st.out[:0]
	plan := st.plan
	if cap(plan) < window {
		plan = make([][]pkt[T], window)
	} else {
		plan = plan[:window]
	}
	for i := range plan {
		plan[i] = plan[i][:0]
	}
	st.plan = plan
	if r != nil {
		// Iterate completed groups in sorted order: ranging over the map
		// directly would pair packets with random rounds in a different order
		// every process run, breaking the per-seed determinism of the engine.
		done := r.completed()
		groups := s.groupScratch[:0]
		for g := range done {
			groups = append(groups, g)
		}
		s.groupScratch = groups
		slices.Sort(groups)
		for _, g := range groups {
			t := randRound(ctx.Rand(), window)
			plan[t] = append(plan[t], done[g])
		}
	}
	for t := 0; t < window; t++ {
		for _, p := range plan[t] {
			if int(p.target) == ctx.ID() {
				mine = append(mine, GroupVal[T]{Group: p.group, Val: p.val})
			} else {
				sendGroupVal(s, int(p.target), tagResult, w, p.group, p.val)
			}
		}
		s.Advance()
	}
	for _, m := range s.qResult {
		mine = append(mine, GroupVal[T]{Group: m.group, Val: w.Decode(s.words(m.val))})
	}
	s.qResult = s.qResult[:0]
	if r != nil {
		clear(r.pend[s.BF.D])
	}
	st.out = mine
	return mine
}

// sendGroupVal encodes a final-hop (group, value) delivery under the given
// tag (tagResult for aggregations, tagLeaf for multicast leaves).
func sendGroupVal[T any](s *Session, to ncc.NodeID, tag uint64, w Wire[T], group uint64, val T) {
	n := w.Words()
	enc := s.encode(2 + n)
	enc[0] = tag << 56
	enc[1] = group
	w.Encode(val, enc[2:])
	s.Ctx.SendWords(to, enc)
}
