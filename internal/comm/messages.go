package comm

import "ncc/internal/ncc"

// Wire messages of the communication primitives. Words() reports payload
// sizes in Theta(log n)-bit words; small control fields (level, side,
// sequence stamps) ride inside the header words.

// wordMsg carries one word of a pipelined broadcast (shared randomness,
// high-degree id announcements).
type wordMsg struct {
	idx int32
	w   uint64
}

func (wordMsg) Words() int { return 2 }

// gatherMsg flows up the reduction tree during Synchronize /
// Aggregate-and-Broadcast. A nil val is a pure synchronization token.
type gatherMsg struct {
	val Value // may be nil
}

func (m gatherMsg) Words() int { return 1 + valueWords(m.val) }

// releaseMsg flows down the reduction tree, carrying the aggregate and the
// common round at which every node leaves the primitive.
type releaseMsg struct {
	exitRound int
	val       Value // may be nil
}

func (m releaseMsg) Words() int { return 1 + valueWords(m.val) }

// pkt is a routable aggregation packet: group identity, destination column at
// the bottommost butterfly level, contention rank, final target node, origin
// node (recorded by multicast tree setup), and the value.
type pkt struct {
	group   uint64
	destCol int32
	rank    uint32
	target  int32
	origin  int32
	val     Value
}

func (p pkt) Words() int { return 3 + valueWords(p.val) }

// routeMsg moves a packet across a cross edge into butterfly level `level`.
type routeMsg struct {
	seq   uint32
	level int8
	p     pkt
}

func (m routeMsg) Words() int { return m.p.Words() }

// routeToken certifies that no more packets will cross the corresponding
// up-edge (side 0 straight, 1 cross) into level `level`.
type routeToken struct {
	seq   uint32
	level int8
	side  int8
}

func (routeToken) Words() int { return 1 }

// initMsg delivers a multicast source's packet to its tree root at the
// bottommost butterfly level.
type initMsg struct {
	seq   uint32
	group uint64
	val   Value
}

func (m initMsg) Words() int { return 1 + valueWords(m.val) }

// spreadMsg moves a multicast packet down a recorded tree edge into level
// `level`.
type spreadMsg struct {
	seq   uint32
	level int8
	group uint64
	val   Value
}

func (m spreadMsg) Words() int { return 2 + valueWords(m.val) }

// spreadToken certifies that no more spread packets will arrive along the
// corresponding down-edge into level `level`.
type spreadToken struct {
	seq   uint32
	level int8
	side  int8
}

func (spreadToken) Words() int { return 1 }

// leafMsg is the final hop of a multicast: a level-0 leaf delivering a
// group's packet to a member.
type leafMsg struct {
	group uint64
	val   Value
}

func (m leafMsg) Words() int { return 1 + valueWords(m.val) }

// resultMsg is the final hop of an aggregation: the intermediate target at
// the bottommost level delivering the combined value to the group's target.
type resultMsg struct {
	group uint64
	val   Value
}

func (m resultMsg) Words() int { return 1 + valueWords(m.val) }

func valueWords(v Value) int {
	if v == nil {
		return 0
	}
	return v.Words()
}

// Received re-exports ncc.Received for algorithm-level direct messages.
type Received = ncc.Received
