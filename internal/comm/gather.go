package comm

import (
	"ncc/internal/butterfly"
	"ncc/internal/ncc"
)

// Synchronize blocks until every node of the clique has called it and returns
// at a common round at every node. It is the synchronization variant of the
// Aggregate-and-Broadcast algorithm (Appendix B.1): nodes feed tokens up the
// butterfly's reduction tree as they arrive; the root then releases everyone
// with a common exit round. Cost: O(log n) rounds after the last participant
// arrives.
func (s *Session) Synchronize() {
	gatherScatter[Flag](s, ZeroWire{}, AnyFlag.Combine, Flag{}, false)
}

// AggregateAndBroadcast computes the distributive aggregate of the input
// values of all nodes with has set, and returns it to every node (Theorem
// 2.2, O(log n) rounds). The boolean result reports whether any node
// contributed a value. Like all primitives it also synchronizes the network.
// It must be entered at a common round across nodes (true after any
// collective, which all exit at a common round).
func AggregateAndBroadcast[T any](s *Session, val T, has bool, c Combiner[T]) (T, bool) {
	return gatherScatter(s, c.Wire, c.Combine, val, has)
}

// sendGather emits a gather message carrying val iff has.
func sendGather[T any](s *Session, to ncc.NodeID, w Wire[T], val T, has bool) {
	h := tagGather << 56
	n := 1
	if has {
		h |= 1
		n += w.Words()
	}
	enc := s.encode(n)
	enc[0] = h
	if has {
		w.Encode(val, enc[1:])
	}
	s.Ctx.SendWords(to, enc)
}

// gatherScatter implements both Synchronize and Aggregate-and-Broadcast: a
// token/value wave up the hypercube reduction tree over the butterfly
// columns, then a release wave down carrying the aggregate and a common exit
// round.
func gatherScatter[T any](s *Session, w Wire[T], merge func(a, b T) T, val T, has bool) (T, bool) {
	ctx := s.Ctx
	bf := s.BF

	if col, attached := bf.AttachedColumn(ctx.ID()); attached {
		// Contribute to the level-0 node we are attached to, then await the
		// release forwarded by our host.
		sendGather(s, bf.Host(col), w, val, has)
		exit, rv, rhas := awaitRelease(s, w)
		s.idleUntil(exit)
		return rv, rhas
	}

	col := bf.Column(ctx.ID())
	acc, accHas := val, has
	need := butterfly.ReduceChildCount(col, bf.D)
	if _, ok := bf.AttachedNode(col); ok {
		need++
	}
	got, barren := 0, 0
	for got < need {
		s.Advance()
		if len(s.qGather) == 0 {
			if barren++; s.patience > 0 && barren > s.patience {
				break // lost contributions; aggregate over what arrived
			}
			continue
		}
		barren = 0
		for _, g := range s.qGather {
			got++
			if g.has && (s.patience == 0 || int(g.val.n) == w.Words()) {
				v := w.Decode(s.words(g.val))
				if accHas {
					acc = merge(acc, v)
				} else {
					acc, accHas = v, true
				}
			}
		}
		s.qGather = s.qGather[:0]
	}

	if col != 0 {
		sendGather(s, bf.Host(butterfly.ReduceParent(col)), w, acc, accHas)
		exit, rv, rhas := awaitRelease(s, w)
		forwardRelease(s, col, w, exit, rv, rhas)
		s.idleUntil(exit)
		return rv, rhas
	}

	// Root: everyone has contributed; release with a common exit round
	// deep enough for the longest forwarding chain (D tree hops plus the
	// attached-node hop).
	exit := ctx.Round() + bf.D + 2
	forwardRelease(s, 0, w, exit, acc, accHas)
	s.idleUntil(exit)
	if !accHas {
		// No contributor anywhere: return the zero value, exactly what the
		// release wave just delivered to every other node — the result must
		// be uniform across the clique even when it is "nothing".
		var zero T
		return zero, false
	}
	return acc, accHas
}

// awaitRelease blocks for the release wave and decodes its aggregate. Under
// faults a lost release gives up after the patience budget and reports no
// value, exiting at the current round.
func awaitRelease[T any](s *Session, w Wire[T]) (exitRound int, val T, has bool) {
	barren := 0
	for len(s.qRelease) == 0 {
		if s.patience > 0 && barren > s.patience {
			return s.Ctx.Round(), val, false
		}
		barren++
		s.Advance()
	}
	m := s.qRelease[0]
	if m.has && (s.patience == 0 || int(m.val.n) == w.Words()) {
		val = w.Decode(s.words(m.val))
	} else {
		m.has = false
	}
	s.qRelease = s.qRelease[:0]
	return m.exitRound, val, m.has
}

// forwardRelease re-encodes the release and fans it down the reduction tree.
func forwardRelease[T any](s *Session, col int, w Wire[T], exitRound int, val T, has bool) {
	bf := s.BF
	nChildren := butterfly.ReduceChildCount(col, bf.D)
	att, hasAtt := bf.AttachedNode(col)
	if nChildren == 0 && !hasAtt {
		return
	}
	h := tagRelease<<56 | uint64(exitRound)<<16
	n := 1
	if has {
		h |= 1
		n += w.Words()
	}
	enc := s.encode(n)
	enc[0] = h
	if has {
		w.Encode(val, enc[1:])
	}
	for j := 0; j < nChildren; j++ {
		s.Ctx.SendWords(bf.Host(butterfly.ReduceChild(col, j)), enc)
	}
	if hasAtt {
		s.Ctx.SendWords(att, enc)
	}
}

// idleUntil advances rounds until the global round counter reaches target.
// Under faults the target may come from a corrupted release word, so it is
// clamped to the deepest exit any honest release could name plus patience.
func (s *Session) idleUntil(target int) {
	if s.patience > 0 {
		target = min(target, s.Ctx.Round()+s.BF.D+2+s.patience)
	}
	for s.Ctx.Round() < target {
		s.Advance()
	}
}

// AnyTrue aggregates a boolean OR across all nodes (a common special case).
func (s *Session) AnyTrue(local bool) bool {
	v := uint64(0)
	if local {
		v = 1
	}
	out, ok := AggregateAndBroadcast(s, v, true, Or)
	return ok && out != 0
}

// SumCount aggregates (sum, count) over contributing nodes and returns both.
func (s *Session) SumCount(val uint64, has bool) (sum, count uint64) {
	out, ok := AggregateAndBroadcast(s, Pair{A: val, B: 1}, has, SumPair)
	if !ok {
		return 0, 0
	}
	return out.A, out.B
}

// MaxAll aggregates a maximum over contributing nodes; ok reports whether
// anyone contributed.
func (s *Session) MaxAll(val uint64, has bool) (uint64, bool) {
	return AggregateAndBroadcast(s, val, has, Max)
}

// BroadcastWords delivers `count` words from node src to every node: src
// ships them to node 0 in capacity-bounded batches, node 0 pipelines them
// down the reduction tree one word per round, and hosts forward each word to
// their attached node. Cost: O(count + log n) rounds. All nodes must pass the
// same src and count; only src's words slice is consulted. Ends synchronized.
func (s *Session) BroadcastWords(src ncc.NodeID, words []uint64, count int) []uint64 {
	ctx := s.Ctx
	bf := s.BF
	if s.patience > 0 {
		// Under faults, count may derive from a degraded aggregate at some
		// nodes: clamp it to the largest broadcast any algorithm here
		// legitimately performs (O(n) ids) so a garbage count cannot demand
		// an absurd allocation or an endless pipeline.
		count = max(0, min(count, 4*ctx.N()+s.patience))
	}
	if count == 0 {
		s.Synchronize()
		return nil
	}

	out := make([]uint64, count)
	have := 0
	if ctx.ID() == src {
		// Reliable callers always hold count words; a degraded caller may
		// disagree with its own clamped count, so ship what exists.
		have = min(count, len(words))
		copy(out, words[:have])
		// Ship to the broadcast root if we are not hosting it.
		if src != 0 {
			batch := s.batchSize()
			for i := 0; i < count; i += batch {
				for j := i; j < min(i+batch, count); j++ {
					s.sendWord(0, int32(j), out[j])
				}
				s.Advance()
			}
		}
	}

	// collect drains word messages until `need` have arrived, giving up after
	// the patience budget of barren rounds; forward relays each fresh word
	// down the tree (nil at collectors). Word indexes are validated under
	// faults — a corrupted index must not fault the collector.
	collect := func(need int, forward func(idx int32, w uint64)) {
		barren := 0
		for got := 0; got < need; {
			s.Advance()
			if len(s.qWords) == 0 {
				if barren++; s.patience > 0 && barren > s.patience {
					break // missing words stay zero
				}
				continue
			}
			barren = 0
			for _, m := range s.qWords {
				if s.patience > 0 && (m.idx < 0 || int(m.idx) >= count) {
					continue
				}
				out[m.idx] = m.w
				got++
				if forward != nil {
					forward(m.idx, m.w)
				}
			}
			s.qWords = s.qWords[:0]
		}
	}

	switch {
	case bf.IsEmulator(ctx.ID()) && bf.Column(ctx.ID()) == 0:
		// Root: collect all words (trivial when we are the source), then
		// pipeline one word per round down the reduction tree.
		collect(count-have, nil)
		for i := 0; i < count; i++ {
			s.forwardWord(0, int32(i), out[i], src)
			s.Advance()
		}
	case bf.IsEmulator(ctx.ID()):
		// Inner tree node: store and forward every word arriving from the
		// parent, even if we are the source and already know the contents
		// (our subtree still depends on the relay). The root's pacing
		// guarantees at most one word arrives per round, so forwarding stays
		// within the capacity (at most D+1 copies per word).
		col := bf.Column(ctx.ID())
		collect(count, func(idx int32, w uint64) { s.forwardWord(col, idx, w, src) })
	default:
		// Attached node: just collect (the host skips the hop if we were the
		// source).
		collect(count-have, nil)
	}

	s.Synchronize()
	// A source that did not need the incoming copies may have accumulated
	// stray word messages; drop them so later broadcasts start clean.
	s.qWords = s.qWords[:0]
	return out
}

func (s *Session) sendWord(to ncc.NodeID, idx int32, w uint64) {
	s.Ctx.SendWords2(to, ncc.Words2{tagWord<<56 | uint64(uint32(idx)), w})
}

func (s *Session) forwardWord(col int, idx int32, w uint64, src ncc.NodeID) {
	bf := s.BF
	for j, c := 0, butterfly.ReduceChildCount(col, bf.D); j < c; j++ {
		s.sendWord(bf.Host(butterfly.ReduceChild(col, j)), idx, w)
	}
	if att, ok := bf.AttachedNode(col); ok && att != src {
		s.sendWord(att, idx, w)
	}
}
