package comm

import (
	"ncc/internal/butterfly"
	"ncc/internal/ncc"
)

// Synchronize blocks until every node of the clique has called it and returns
// at a common round at every node. It is the synchronization variant of the
// Aggregate-and-Broadcast algorithm (Appendix B.1): nodes feed tokens up the
// butterfly's reduction tree as they arrive; the root then releases everyone
// with a common exit round. Cost: O(log n) rounds after the last participant
// arrives.
func (s *Session) Synchronize() {
	s.gatherScatter(nil, false, nil)
}

// AggregateAndBroadcast computes the distributive aggregate f over the input
// values of all nodes with has set, and returns it to every node (Theorem
// 2.2, O(log n) rounds). The boolean result reports whether any node
// contributed a value. Like all primitives it also synchronizes the network.
func (s *Session) AggregateAndBroadcast(val Value, has bool, f Combine) (Value, bool) {
	return s.gatherScatter(val, has, f)
}

// gatherScatter implements both Synchronize and Aggregate-and-Broadcast: a
// token/value wave up the hypercube reduction tree over the butterfly
// columns, then a release wave down carrying the aggregate and a common exit
// round.
func (s *Session) gatherScatter(val Value, has bool, f Combine) (Value, bool) {
	ctx := s.Ctx
	bf := s.BF

	if col, attached := bf.AttachedColumn(ctx.ID()); attached {
		// Contribute to the level-0 node we are attached to, then await the
		// release forwarded by our host.
		var v Value
		if has {
			v = val
		}
		ctx.Send(bf.Host(col), gatherMsg{val: v})
		rel := s.awaitRelease()
		s.idleUntil(rel.exitRound)
		return rel.val, rel.val != nil
	}

	col := bf.Column(ctx.ID())
	acc, accHas := val, has
	need := len(butterfly.ReduceChildren(col, bf.D))
	if _, ok := bf.AttachedNode(col); ok {
		need++
	}
	got := 0
	for got < need {
		s.Advance()
		for _, g := range s.qGather {
			got++
			if g.m.val != nil {
				if accHas {
					acc = f(acc, g.m.val)
				} else {
					acc, accHas = g.m.val, true
				}
			}
		}
		s.qGather = s.qGather[:0]
	}

	if col != 0 {
		var v Value
		if accHas {
			v = acc
		}
		ctx.Send(bf.Host(butterfly.ReduceParent(col)), gatherMsg{val: v})
		rel := s.awaitRelease()
		s.forwardRelease(col, rel)
		s.idleUntil(rel.exitRound)
		return rel.val, rel.val != nil
	}

	// Root: everyone has contributed; release with a common exit round
	// deep enough for the longest forwarding chain (D tree hops plus the
	// attached-node hop).
	var v Value
	if accHas {
		v = acc
	}
	rel := releaseMsg{exitRound: ctx.Round() + bf.D + 2, val: v}
	s.forwardRelease(0, rel)
	s.idleUntil(rel.exitRound)
	return rel.val, rel.val != nil
}

func (s *Session) awaitRelease() releaseMsg {
	for len(s.qRelease) == 0 {
		s.Advance()
	}
	rel := s.qRelease[0]
	s.qRelease = s.qRelease[:0]
	return rel
}

func (s *Session) forwardRelease(col int, rel releaseMsg) {
	bf := s.BF
	for _, child := range butterfly.ReduceChildren(col, bf.D) {
		s.Ctx.Send(bf.Host(child), rel)
	}
	if att, ok := bf.AttachedNode(col); ok {
		s.Ctx.Send(att, rel)
	}
}

// idleUntil advances rounds until the global round counter reaches target.
func (s *Session) idleUntil(target int) {
	for s.Ctx.Round() < target {
		s.Advance()
	}
}

// AnyTrue aggregates a boolean OR across all nodes (a common special case).
func (s *Session) AnyTrue(local bool) bool {
	v := U64(0)
	if local {
		v = 1
	}
	out, ok := s.AggregateAndBroadcast(v, true, CombineOr)
	return ok && out.(U64) != 0
}

// SumCount aggregates (sum, count) over contributing nodes and returns both.
func (s *Session) SumCount(val uint64, has bool) (sum, count uint64) {
	out, ok := s.AggregateAndBroadcast(Pair{A: val, B: 1}, has, CombineSumPair)
	if !ok {
		return 0, 0
	}
	p := out.(Pair)
	return p.A, p.B
}

// MaxAll aggregates a maximum over contributing nodes; ok reports whether
// anyone contributed.
func (s *Session) MaxAll(val uint64, has bool) (uint64, bool) {
	out, ok := s.AggregateAndBroadcast(U64(val), has, CombineMax)
	if !ok {
		return 0, false
	}
	return uint64(out.(U64)), true
}

// BroadcastWords delivers `count` words from node src to every node: src
// ships them to node 0 in capacity-bounded batches, node 0 pipelines them
// down the reduction tree one word per round, and hosts forward each word to
// their attached node. Cost: O(count + log n) rounds. All nodes must pass the
// same src and count; only src's words slice is consulted. Ends synchronized.
func (s *Session) BroadcastWords(src ncc.NodeID, words []uint64, count int) []uint64 {
	ctx := s.Ctx
	bf := s.BF
	if count == 0 {
		s.Synchronize()
		return nil
	}

	out := make([]uint64, count)
	have := 0
	if ctx.ID() == src {
		copy(out, words[:count])
		have = count
		// Ship to the broadcast root if we are not hosting it.
		if src != 0 {
			batch := s.batchSize()
			for i := 0; i < count; i += batch {
				for j := i; j < min(i+batch, count); j++ {
					ctx.Send(0, wordMsg{idx: int32(j), w: out[j]})
				}
				s.Advance()
			}
		}
	}

	switch {
	case bf.IsEmulator(ctx.ID()) && bf.Column(ctx.ID()) == 0:
		// Root: collect all words (trivial when we are the source), then
		// pipeline one word per round down the reduction tree.
		for have < count {
			s.Advance()
			for _, m := range s.qWords {
				out[m.idx] = m.w
				have++
			}
			s.qWords = s.qWords[:0]
		}
		for i := 0; i < count; i++ {
			s.forwardWord(0, wordMsg{idx: int32(i), w: out[i]}, src)
			s.Advance()
		}
	case bf.IsEmulator(ctx.ID()):
		// Inner tree node: store and forward every word arriving from the
		// parent, even if we are the source and already know the contents
		// (our subtree still depends on the relay). The root's pacing
		// guarantees at most one word arrives per round, so forwarding stays
		// within the capacity (at most D+1 copies per word).
		col := bf.Column(ctx.ID())
		for got := 0; got < count; {
			s.Advance()
			for _, m := range s.qWords {
				out[m.idx] = m.w
				got++
				s.forwardWord(col, m, src)
			}
			s.qWords = s.qWords[:0]
		}
	default:
		// Attached node: just collect (the host skips the hop if we were the
		// source).
		for have < count {
			s.Advance()
			for _, m := range s.qWords {
				out[m.idx] = m.w
				have++
			}
			s.qWords = s.qWords[:0]
		}
	}

	s.Synchronize()
	// A source that did not need the incoming copies may have accumulated
	// stray word messages; drop them so later broadcasts start clean.
	s.qWords = s.qWords[:0]
	return out
}

func (s *Session) forwardWord(col int, m wordMsg, src ncc.NodeID) {
	bf := s.BF
	for _, child := range butterfly.ReduceChildren(col, bf.D) {
		s.Ctx.Send(bf.Host(child), m)
	}
	if att, ok := bf.AttachedNode(col); ok && att != src {
		s.Ctx.Send(att, m)
	}
}
