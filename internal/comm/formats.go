package comm

import "ncc/internal/ncc"

// Wire formats of the communication primitives. Every message is a flat
// sequence of machine words sent through the engine's inline word paths
// (SendWord / SendWords2 / SendWords): word 0 is the header — the top byte
// carries the message tag, the rest packs the small control fields — and any
// payload words follow, encoded by the collective's Wire[T] codec. Nothing on
// the wire is ever interface-boxed.
//
// Header layouts (bit ranges within word 0):
//
//	gather     tag(63-56) has(0)                      + val words if has
//	release    tag(63-56) exitRound(55-16) has(0)     + val words if has
//	word       tag(63-56) idx(31-0)                   + 1 word
//	route      tag(63-56) seq(55-32) level(31-24)     + group, destCol|rank,
//	                                                    target|origin, val
//	routeTok   tag(63-56) seq(55-32) level(31-24) side(0)
//	init       tag(63-56) seq(55-32)                  + group, val
//	spread     tag(63-56) seq(55-32) level(31-24)     + group, val
//	spreadTok  tag(63-56) seq(55-32) level(31-24) side(0)
//	leaf       tag(63-56)                             + group, val
//	result     tag(63-56)                             + group, val
//
// Tags below DirectTagMin are reserved for this protocol; the top byte of an
// algorithm-level direct message's first word must be 0 or >= DirectTagMin.

const (
	tagGather uint64 = iota + 1
	tagRelease
	tagWord
	tagRoute
	tagRouteTok
	tagInit
	tagSpread
	tagSpreadTok
	tagLeaf
	tagResult
	tagReservedEnd
)

// DirectTagMin is the smallest top-byte value available to algorithm-level
// direct messages (anything the session does not recognize as primitive
// traffic is handed to DrainDirect). A first word with top byte 0 is also
// direct — plain data words need no tag at all.
const DirectTagMin = 0x40

// seqMask truncates a collective call counter to the 24 header bits that
// identify an invocation on the wire (wrap-around after 16M collectives is
// harmless: invocations of the same session never overlap by more than one).
const seqMask = 1<<24 - 1

// maxWireWords is the widest wire message: the 4 route header/address words
// plus the widest built-in payload. Custom codecs may be wider; the encode
// scratch grows to fit (bounded by the engine's Config.MaxWords).
const maxWireWords = 4 + maxValWords

func seq24(call uint64) uint32 { return uint32(call) & seqMask }

func hdrTag(w0 uint64) uint64 { return w0 >> 56 }

// rawVal locates a message's payload words inside the session's value arena
// (n = 0 means no payload). Decoding is deferred to the collective that owns
// the message, which knows the codec.
type rawVal struct{ off, n int32 }

// gatherRaw is a message flowing up the reduction tree during Synchronize /
// Aggregate-and-Broadcast; has=false is a pure synchronization token.
type gatherRaw struct {
	from ncc.NodeID
	val  rawVal
	has  bool
}

// releaseRaw flows down the reduction tree, carrying the aggregate and the
// common round at which every node leaves the primitive.
type releaseRaw struct {
	exitRound int
	val       rawVal
	has       bool
}

// wordRaw carries one word of a pipelined broadcast (shared randomness,
// high-degree id announcements).
type wordRaw struct {
	idx int32
	w   uint64
}

// routeRaw is a routable aggregation packet crossing into butterfly level
// `level`: group identity, destination column at the bottommost level,
// contention rank, final target node, origin node (recorded by multicast tree
// setup), and the payload words.
type routeRaw struct {
	group   uint64
	seq     uint32
	rank    uint32
	destCol int32
	target  int32
	origin  int32
	level   int8
	val     rawVal
}

// tokRaw certifies that no more packets will cross the corresponding edge
// into `level` (side 0 straight, 1 cross); shared by the combining and
// spreading phases.
type tokRaw struct {
	seq   uint32
	level int8
	side  int8
}

// initRaw delivers a multicast source's packet to its tree root at the
// bottommost butterfly level.
type initRaw struct {
	group uint64
	seq   uint32
	val   rawVal
}

// spreadRaw moves a multicast packet down a recorded tree edge into `level`.
type spreadRaw struct {
	group uint64
	seq   uint32
	level int8
	val   rawVal
}

// groupRaw is a final-hop delivery — a multicast leaf packet or an
// aggregation result — of a group's payload to a member/target.
type groupRaw struct {
	group uint64
	val   rawVal
}

// directRaw is an algorithm-level direct message staged for DrainDirect.
type directRaw struct {
	from ncc.NodeID
	val  rawVal // into the session's direct-word arena
}
