package comm

import "ncc/internal/ncc"

// Value is the payload type aggregated and multicast by the primitives. One
// word stands for Theta(log n) bits; the model admits O(1) words per message.
type Value = ncc.Payload

// Combine is a distributive aggregate function: it must be commutative and
// associative so that packets of the same aggregation group can be merged in
// any order along the butterfly.
type Combine func(a, b Value) Value

// U64 is a one-word value.
type U64 uint64

// Words implements Value.
func (U64) Words() int { return 1 }

// Pair is a two-word value, combined lexicographically by the Min/Max pair
// combiners.
type Pair struct{ A, B uint64 }

// Words implements Value.
func (Pair) Words() int { return 2 }

// XorCount carries an XOR accumulator and an exact counter; it is the cell
// type of the Identification Algorithm's sketch (Section 4.1).
type XorCount struct {
	X uint64
	C uint64
}

// Words implements Value.
func (XorCount) Words() int { return 2 }

// Sketch carries the h-up and h-down trial bit vectors of the FindMin edge
// sketch (Section 3), 64 parallel trials each.
type Sketch struct{ Up, Down uint64 }

// Words implements Value.
func (Sketch) Words() int { return 2 }

// Sketch3 carries three prefix sketches, enabling quaternary search (three
// range tests per round trip) in FindMin.
type Sketch3 struct{ S [3]Sketch }

// Words implements Value.
func (Sketch3) Words() int { return 6 }

// Flag is a zero-information presence marker (its arrival is the message).
type Flag struct{}

// Words implements Value.
func (Flag) Words() int { return 1 }

// CombineMin returns the smaller U64.
func CombineMin(a, b Value) Value {
	x, y := a.(U64), b.(U64)
	if y < x {
		return y
	}
	return x
}

// CombineMax returns the larger U64.
func CombineMax(a, b Value) Value {
	x, y := a.(U64), b.(U64)
	if y > x {
		return y
	}
	return x
}

// CombineSum adds two U64 values.
func CombineSum(a, b Value) Value { return a.(U64) + b.(U64) }

// CombineXor XORs two U64 values.
func CombineXor(a, b Value) Value { return a.(U64) ^ b.(U64) }

// CombineOr ORs two U64 values (0/1 used as booleans).
func CombineOr(a, b Value) Value { return a.(U64) | b.(U64) }

// CombineMinPair returns the lexicographically smaller pair.
func CombineMinPair(a, b Value) Value {
	x, y := a.(Pair), b.(Pair)
	if y.A < x.A || (y.A == x.A && y.B < x.B) {
		return y
	}
	return x
}

// CombineMaxPair returns the lexicographically larger pair.
func CombineMaxPair(a, b Value) Value {
	x, y := a.(Pair), b.(Pair)
	if y.A > x.A || (y.A == x.A && y.B > x.B) {
		return y
	}
	return x
}

// CombineMaxEach takes the componentwise maximum of pairs (two independent
// MaxAll reductions in one aggregation).
func CombineMaxEach(a, b Value) Value {
	x, y := a.(Pair), b.(Pair)
	return Pair{A: max(x.A, y.A), B: max(x.B, y.B)}
}

// CombineSumPair adds pairs componentwise.
func CombineSumPair(a, b Value) Value {
	x, y := a.(Pair), b.(Pair)
	return Pair{x.A + y.A, x.B + y.B}
}

// CombineXorCount XORs the accumulators and adds the counters, the aggregate
// function of the Identification Algorithm.
func CombineXorCount(a, b Value) Value {
	x, y := a.(XorCount), b.(XorCount)
	return XorCount{X: x.X ^ y.X, C: x.C + y.C}
}

// CombineSketch XORs both trial vectors.
func CombineSketch(a, b Value) Value {
	x, y := a.(Sketch), b.(Sketch)
	return Sketch{Up: x.Up ^ y.Up, Down: x.Down ^ y.Down}
}

// CombineSketch3 XORs all three prefix sketches.
func CombineSketch3(a, b Value) Value {
	x, y := a.(Sketch3), b.(Sketch3)
	var out Sketch3
	for i := range out.S {
		out.S[i] = CombineSketch(x.S[i], y.S[i]).(Sketch)
	}
	return out
}

// CombineFlag merges two presence markers.
func CombineFlag(a, b Value) Value { return Flag{} }
