package comm

import "fmt"

// combineRouter executes the combining phase of the Aggregation Algorithm
// (Appendix B.2) for the butterfly column emulated by one clique node.
// Packets travel from level 0 to level D along bit-fixing paths toward their
// group's destination column; packets of the same aggregation group merge
// whenever they meet; edge contention is resolved by minimum (rank, group);
// per-edge tokens certify quiescence level by level.
//
// Straight edges connect butterfly nodes of the same column and therefore
// cost no clique message, but they still carry at most one packet per round,
// keeping the congestion analysis of Theorem B.2 intact.
type combineRouter struct {
	s   *Session
	seq uint32
	f   Combine
	rec *Trees // non-nil: record tree edges and leaf origins (Theorem 2.4)
	col int

	pend    []map[uint64]*pkt // per level; pend[D] holds completed groups
	tokIn   [][2]bool         // tokens received into level i via side 0/1
	tokSent []bool            // token emitted out of level i

	nextPkts []stagedPkt
	nextToks []stagedTok
}

type stagedPkt struct {
	level int
	p     pkt
}

type stagedTok struct {
	level int
	side  int
}

func newCombineRouter(s *Session, seq uint32, f Combine, rec *Trees) *combineRouter {
	levels := s.BF.Levels()
	r := &combineRouter{
		s:       s,
		seq:     seq,
		f:       f,
		rec:     rec,
		col:     s.BF.Column(s.Ctx.ID()),
		pend:    make([]map[uint64]*pkt, levels),
		tokIn:   make([][2]bool, levels),
		tokSent: make([]bool, levels),
	}
	for i := range r.pend {
		r.pend[i] = make(map[uint64]*pkt)
	}
	return r
}

// stageLocal queues a locally injected packet for arrival at level 0 next
// round (the injection hop costs a round whether or not it crosses columns).
func (r *combineRouter) stageLocal(p pkt) {
	r.nextPkts = append(r.nextPkts, stagedPkt{level: 0, p: p})
}

// absorb applies staged internal moves and drains the session's routing
// queues into the per-level pending sets.
func (r *combineRouter) absorb() {
	staged := r.nextPkts
	r.nextPkts = nil
	for _, sp := range staged {
		r.arrive(sp.level, sp.p, 0)
	}
	toks := r.nextToks
	r.nextToks = nil
	for _, st := range toks {
		r.tokIn[st.level][st.side] = true
	}
	for _, m := range r.s.qRoute {
		if m.seq != r.seq {
			panic(fmt.Sprintf("comm: route packet from invocation %d received during %d", m.seq, r.seq))
		}
		r.arrive(int(m.level), m.p, 1)
	}
	r.s.qRoute = r.s.qRoute[:0]
	for _, m := range r.s.qRtTok {
		if m.seq != r.seq {
			panic(fmt.Sprintf("comm: route token from invocation %d received during %d", m.seq, r.seq))
		}
		r.tokIn[m.level][m.side] = true
	}
	r.s.qRtTok = r.s.qRtTok[:0]
}

func (r *combineRouter) arrive(level int, p pkt, side int) {
	if r.rec != nil {
		r.rec.record(level, p, side)
	}
	if cur, ok := r.pend[level][p.group]; ok {
		cur.val = r.f(cur.val, p.val)
		return
	}
	cp := p
	r.pend[level][p.group] = &cp
}

// step performs one butterfly routing round: per down-edge, forward the
// minimum-rank pending packet, then emit per-edge tokens where quiescent.
func (r *combineRouter) step() {
	bf := r.s.BF
	for level := 0; level < bf.D; level++ {
		for bit := 0; bit <= 1; bit++ {
			best := r.selectMin(level, bit)
			if best == nil {
				continue
			}
			delete(r.pend[level], best.group)
			toCol := bf.DownNeighbor(level, r.col, bit)
			if toCol == r.col {
				r.nextPkts = append(r.nextPkts, stagedPkt{level: level + 1, p: *best})
			} else {
				r.s.Ctx.Send(bf.Host(toCol), routeMsg{seq: r.seq, level: int8(level + 1), p: *best})
			}
		}
		if !r.tokSent[level] && len(r.pend[level]) == 0 && r.upDone(level) {
			r.tokSent[level] = true
			for bit := 0; bit <= 1; bit++ {
				toCol := bf.DownNeighbor(level, r.col, bit)
				if toCol == r.col {
					r.nextToks = append(r.nextToks, stagedTok{level: level + 1, side: 0})
				} else {
					r.s.Ctx.Send(bf.Host(toCol), routeToken{seq: r.seq, level: int8(level + 1), side: 1})
				}
			}
		}
	}
}

// selectMin picks the pending packet at `level` with the smallest
// (rank, group) among those whose destination requires the down-edge labelled
// `bit`. Deterministic despite map iteration.
func (r *combineRouter) selectMin(level, bit int) *pkt {
	var best *pkt
	for _, p := range r.pend[level] {
		if int(p.destCol>>level)&1 != bit {
			continue
		}
		if best == nil || p.rank < best.rank || (p.rank == best.rank && p.group < best.group) {
			best = p
		}
	}
	return best
}

func (r *combineRouter) upDone(level int) bool {
	if level == 0 {
		// Injection finished before the combining phase started (the callers
		// synchronize in between), so level 0 receives nothing new.
		return true
	}
	return r.tokIn[level][0] && r.tokIn[level][1]
}

// done reports whether this column is fully quiescent: every level has
// emitted its tokens and the bottommost level has received both of its own.
func (r *combineRouter) done() bool {
	for level := 0; level < r.s.BF.D; level++ {
		if !r.tokSent[level] {
			return false
		}
	}
	return r.tokIn[r.s.BF.D][0] && r.tokIn[r.s.BF.D][1]
}

// completed returns the packets that reached the bottommost level at this
// column, one per aggregation group, fully combined.
func (r *combineRouter) completed() map[uint64]*pkt {
	return r.pend[r.s.BF.D]
}

// runCombine drives the router until quiescent. Attached nodes (no butterfly
// column) pass a nil router and return immediately.
func (s *Session) runCombine(r *combineRouter) {
	if r == nil {
		return
	}
	r.absorb()
	for !r.done() {
		r.step()
		s.Advance()
		r.absorb()
	}
}
