package comm

import (
	"fmt"

	"ncc/internal/ncc"
)

// combineRouter executes the combining phase of the Aggregation Algorithm
// (Appendix B.2) for the butterfly column emulated by one clique node, typed
// by the collective's payload. Packets travel from level 0 to level D along
// bit-fixing paths toward their group's destination column; packets of the
// same aggregation group merge whenever they meet; edge contention is
// resolved by minimum (rank, group); per-edge tokens certify quiescence
// level by level.
//
// Straight edges connect butterfly nodes of the same column and therefore
// cost no clique message, but they still carry at most one packet per round,
// keeping the congestion analysis of Theorem B.2 intact.
type combineRouter[T any] struct {
	s     *Session
	seq   uint32
	w     Wire[T]
	merge func(a, b T) T
	rec   *Trees // non-nil: record tree edges and leaf origins (Theorem 2.4)
	col   int

	pend    []map[uint64]pkt[T] // per level; pend[D] holds completed groups
	tokIn   [][2]bool           // tokens received into level i via side 0/1
	tokSent []bool              // token emitted out of level i

	nextPkts []stagedPkt[T]
	nextToks []stagedTok
}

// pkt is a routable aggregation packet with its payload held decoded — the
// codec runs only at the clique-message boundary, never on local hops.
type pkt[T any] struct {
	group   uint64
	destCol int32
	rank    uint32
	target  int32
	origin  int32
	val     T
}

type stagedPkt[T any] struct {
	level int
	p     pkt[T]
}

type stagedTok struct {
	level int
	side  int
}

// combine readies the pooled combining router for a new invocation: maps are
// cleared, token state zeroed, staging queues truncated — no steady-state
// allocation.
func (st *commState[T]) combine(s *Session, seq uint32, c Combiner[T], rec *Trees) *combineRouter[T] {
	r := &st.cr
	levels := s.BF.Levels()
	r.s, r.seq, r.w, r.merge, r.rec = s, seq, c.Wire, c.Combine, rec
	r.col = s.BF.Column(s.Ctx.ID())
	if len(r.pend) != levels {
		r.pend = make([]map[uint64]pkt[T], levels)
		r.tokIn = make([][2]bool, levels)
		r.tokSent = make([]bool, levels)
		for i := range r.pend {
			r.pend[i] = make(map[uint64]pkt[T])
		}
	} else {
		for i := range r.pend {
			clear(r.pend[i])
			r.tokIn[i] = [2]bool{}
			r.tokSent[i] = false
		}
	}
	r.nextPkts = r.nextPkts[:0]
	r.nextToks = r.nextToks[:0]
	return r
}

// stageLocal queues a locally injected packet for arrival at level 0 next
// round (the injection hop costs a round whether or not it crosses columns).
func (r *combineRouter[T]) stageLocal(p pkt[T]) {
	r.nextPkts = append(r.nextPkts, stagedPkt[T]{level: 0, p: p})
}

// absorb applies staged internal moves and drains the session's routing
// queues — decoding payload words with the invocation's codec — into the
// per-level pending sets.
func (r *combineRouter[T]) absorb() {
	s := r.s
	staged := r.nextPkts
	r.nextPkts = r.nextPkts[:0]
	for _, sp := range staged {
		r.arrive(sp.level, sp.p, 0)
	}
	toks := r.nextToks
	r.nextToks = r.nextToks[:0]
	for _, st := range toks {
		r.tokIn[st.level][st.side] = true
	}
	for _, m := range s.qRoute {
		if m.seq != r.seq {
			if s.patience > 0 {
				continue // straggler from a collective that gave up early
			}
			panic(fmt.Sprintf("comm: route packet from invocation %d received during %d", m.seq, r.seq))
		}
		if s.patience > 0 && (int(m.val.n) != r.w.Words() || int(m.level) < 0 || int(m.level) >= len(r.pend)) {
			continue // corrupted frame; drop rather than fault the node
		}
		r.arrive(int(m.level), pkt[T]{
			group:   m.group,
			destCol: m.destCol,
			rank:    m.rank,
			target:  m.target,
			origin:  m.origin,
			val:     r.w.Decode(s.words(m.val)),
		}, 1)
	}
	s.qRoute = s.qRoute[:0]
	for _, m := range s.qRtTok {
		if m.seq != r.seq {
			if s.patience > 0 {
				continue
			}
			panic(fmt.Sprintf("comm: route token from invocation %d received during %d", m.seq, r.seq))
		}
		if s.patience > 0 && (int(m.level) < 0 || int(m.level) >= len(r.tokIn)) {
			continue
		}
		r.tokIn[m.level][m.side] = true
	}
	s.qRtTok = s.qRtTok[:0]
}

func (r *combineRouter[T]) arrive(level int, p pkt[T], side int) {
	if r.rec != nil {
		r.rec.record(level, p.group, p.origin, side)
	}
	if cur, ok := r.pend[level][p.group]; ok {
		cur.val = r.merge(cur.val, p.val)
		r.pend[level][p.group] = cur
		return
	}
	r.pend[level][p.group] = p
}

// step performs one butterfly routing round: per down-edge, forward the
// minimum-rank pending packet, then emit per-edge tokens where quiescent.
func (r *combineRouter[T]) step() {
	bf := r.s.BF
	for level := 0; level < bf.D; level++ {
		for bit := 0; bit <= 1; bit++ {
			group, ok := r.selectMin(level, bit)
			if !ok {
				continue
			}
			best := r.pend[level][group]
			delete(r.pend[level], group)
			toCol := bf.DownNeighbor(level, r.col, bit)
			if toCol == r.col {
				r.nextPkts = append(r.nextPkts, stagedPkt[T]{level: level + 1, p: best})
			} else {
				sendRoute(r.s, bf.Host(toCol), r.seq, level+1, r.w, best)
			}
		}
		if !r.tokSent[level] && len(r.pend[level]) == 0 && r.upDone(level) {
			r.tokSent[level] = true
			for bit := 0; bit <= 1; bit++ {
				toCol := bf.DownNeighbor(level, r.col, bit)
				if toCol == r.col {
					r.nextToks = append(r.nextToks, stagedTok{level: level + 1, side: 0})
				} else {
					h := tagRouteTok<<56 | uint64(r.seq&seqMask)<<32 | uint64(uint8(level+1))<<24 | 1
					r.s.Ctx.SendWord(bf.Host(toCol), ncc.Word(h))
				}
			}
		}
	}
}

// selectMin picks the pending packet at `level` with the smallest
// (rank, group) among those whose destination requires the down-edge labelled
// `bit`. Deterministic despite map iteration.
func (r *combineRouter[T]) selectMin(level, bit int) (uint64, bool) {
	var bestGroup uint64
	var bestRank uint32
	found := false
	for g, p := range r.pend[level] {
		if int(p.destCol>>level)&1 != bit {
			continue
		}
		if !found || p.rank < bestRank || (p.rank == bestRank && g < bestGroup) {
			bestGroup, bestRank, found = g, p.rank, true
		}
	}
	return bestGroup, found
}

func (r *combineRouter[T]) upDone(level int) bool {
	if level == 0 {
		// Injection finished before the combining phase started (the callers
		// synchronize in between), so level 0 receives nothing new.
		return true
	}
	return r.tokIn[level][0] && r.tokIn[level][1]
}

// done reports whether this column is fully quiescent: every level has
// emitted its tokens and the bottommost level has received both of its own.
func (r *combineRouter[T]) done() bool {
	for level := 0; level < r.s.BF.D; level++ {
		if !r.tokSent[level] {
			return false
		}
	}
	return r.tokIn[r.s.BF.D][0] && r.tokIn[r.s.BF.D][1]
}

// completed returns the packets that reached the bottommost level at this
// column, one per aggregation group, fully combined.
func (r *combineRouter[T]) completed() map[uint64]pkt[T] {
	return r.pend[r.s.BF.D]
}

// runCombine drives the router until quiescent. Attached nodes (no butterfly
// column) pass a nil router and return immediately. Under faults a lost token
// would spin this loop to MaxRounds, so the whole phase is bounded by a
// multiple of the patience budget; giving up strands whatever packets are
// still pending (their groups degrade to partial aggregates downstream).
func runCombine[T any](s *Session, r *combineRouter[T]) {
	if r == nil {
		return
	}
	r.absorb()
	spins := 0
	for !r.done() {
		if s.patience > 0 {
			if spins++; spins > 8*s.patience {
				break
			}
		}
		r.step()
		s.Advance()
		r.absorb()
	}
}
