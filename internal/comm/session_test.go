package comm

import (
	"sync"
	"testing"

	"ncc/internal/ncc"
)

// runAll executes program (which receives a ready Session) on an n-node
// clique with strict capacity checking and returns the stats.
func runAll(t *testing.T, n int, seed int64, program func(*Session)) ncc.Stats {
	t.Helper()
	cfg := ncc.Config{N: n, Seed: seed, Strict: true}
	st, err := ncc.Run(cfg, func(ctx *ncc.Context) {
		program(NewSession(ctx))
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return st
}

func TestSessionSetupNoDrops(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 13, 16, 33, 64, 100} {
		st := runAll(t, n, 7, func(s *Session) {})
		if st.Dropped() != 0 {
			t.Errorf("n=%d: %d messages dropped during session setup", n, st.Dropped())
		}
	}
}

func TestSynchronizeAlignsRounds(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16, 40} {
		var mu sync.Mutex
		rounds := map[int]bool{}
		runAll(t, n, 3, func(s *Session) {
			// Desynchronize on purpose.
			for i := 0; i < s.Ctx.ID()%5; i++ {
				s.Advance()
			}
			s.Synchronize()
			mu.Lock()
			rounds[s.Ctx.Round()] = true
			mu.Unlock()
		})
		if len(rounds) != 1 {
			t.Errorf("n=%d: Synchronize returned at %d distinct rounds", n, len(rounds))
		}
	}
}

func TestSynchronizeRepeated(t *testing.T) {
	var mu sync.Mutex
	rounds := map[int]bool{}
	runAll(t, 11, 9, func(s *Session) {
		for k := 0; k < 4; k++ {
			for i := 0; i < (s.Ctx.ID()*7+k)%4; i++ {
				s.Advance()
			}
			s.Synchronize()
		}
		mu.Lock()
		rounds[s.Ctx.Round()] = true
		mu.Unlock()
	})
	if len(rounds) != 1 {
		t.Errorf("repeated Synchronize desynced: %d distinct rounds", len(rounds))
	}
}

func TestAggregateAndBroadcastSum(t *testing.T) {
	for _, n := range []int{2, 3, 6, 16, 31, 64} {
		want := uint64(n * (n - 1) / 2)
		got := make([]uint64, n)
		runAll(t, n, 5, func(s *Session) {
			v, ok := AggregateAndBroadcast(s, uint64(s.Ctx.ID()), true, Sum)
			if !ok {
				panic("no aggregate")
			}
			got[s.Ctx.ID()] = v
		})
		for id, g := range got {
			if g != want {
				t.Fatalf("n=%d node %d: sum=%d want %d", n, id, g, want)
			}
		}
	}
}

func TestAggregateAndBroadcastPartial(t *testing.T) {
	// Only odd nodes contribute; everyone must learn the max odd id.
	const n = 21
	got := make([]uint64, n)
	runAll(t, n, 5, func(s *Session) {
		id := uint64(s.Ctx.ID())
		v, ok := AggregateAndBroadcast(s, id, id%2 == 1, Max)
		if !ok {
			panic("no aggregate")
		}
		got[s.Ctx.ID()] = v
	})
	for id, g := range got {
		if g != 19 {
			t.Fatalf("node %d: max=%d want 19", id, g)
		}
	}
}

func TestAggregateAndBroadcastNobody(t *testing.T) {
	// Distinct per-node inputs with has=false everywhere: the result must be
	// the uniform (zero, false) on every node — in particular the butterfly
	// root must not leak its own input value back out.
	oks := make([]bool, 9)
	vals := make([]uint64, 9)
	runAll(t, 9, 5, func(s *Session) {
		v, ok := AggregateAndBroadcast(s, uint64(s.Ctx.ID())+100, false, Max)
		oks[s.Ctx.ID()] = ok
		vals[s.Ctx.ID()] = v
	})
	for id, ok := range oks {
		if ok {
			t.Fatalf("node %d: got ok for empty aggregation", id)
		}
		if vals[id] != 0 {
			t.Fatalf("node %d: empty aggregation returned %d, want uniform 0", id, vals[id])
		}
	}
}

func TestAggregateAndBroadcastRounds(t *testing.T) {
	// Theorem 2.2: O(log n) rounds. Check rounds grow like log n, not n.
	prev := 0
	for _, n := range []int{8, 64, 512} {
		var st ncc.Stats
		st = runAll(t, n, 1, func(s *Session) {
			AggregateAndBroadcast(s, uint64(1), true, Sum)
		})
		logn := ncc.CeilLog2(n)
		if st.Rounds > 20*logn {
			t.Errorf("n=%d: A&B(+setup) took %d rounds, want O(log n)=~%d", n, st.Rounds, logn)
		}
		if prev != 0 && st.Rounds > prev*4 {
			t.Errorf("rounds grew superlogarithmically: %d -> %d", prev, st.Rounds)
		}
		prev = st.Rounds
	}
}

func TestAnyTrueAndSumCountAndMaxAll(t *testing.T) {
	const n = 17
	runAll(t, n, 2, func(s *Session) {
		if s.AnyTrue(false) {
			panic("AnyTrue(false everywhere) = true")
		}
		if !s.AnyTrue(s.Ctx.ID() == 13) {
			panic("AnyTrue missed the true node")
		}
		sum, count := s.SumCount(uint64(s.Ctx.ID()), s.Ctx.ID() < 5)
		if sum != 0+1+2+3+4 || count != 5 {
			panic("SumCount wrong")
		}
		m, ok := s.MaxAll(uint64(s.Ctx.ID()*2), true)
		if !ok || m != uint64((n-1)*2) {
			panic("MaxAll wrong")
		}
	})
}

func TestBroadcastWordsFromZero(t *testing.T) {
	for _, n := range []int{2, 3, 8, 19, 64} {
		const count = 10
		got := make([][]uint64, n)
		runAll(t, n, 11, func(s *Session) {
			var words []uint64
			if s.Ctx.ID() == 0 {
				words = make([]uint64, count)
				for i := range words {
					words[i] = uint64(1000 + i)
				}
			}
			got[s.Ctx.ID()] = s.BroadcastWords(0, words, count)
		})
		for id, ws := range got {
			for i, w := range ws {
				if w != uint64(1000+i) {
					t.Fatalf("n=%d node %d word %d = %d", n, id, i, w)
				}
			}
		}
	}
}

func TestBroadcastWordsFromNonRoot(t *testing.T) {
	// Sources covering: inner emulator column, attached node.
	for _, src := range []int{3, 9} {
		const n, count = 11, 7 // cols=8; node 9 is attached to column 1
		got := make([][]uint64, n)
		runAll(t, n, 13, func(s *Session) {
			var words []uint64
			if s.Ctx.ID() == src {
				words = []uint64{7, 6, 5, 4, 3, 2, 1}
			}
			got[s.Ctx.ID()] = s.BroadcastWords(src, words, count)
		})
		want := []uint64{7, 6, 5, 4, 3, 2, 1}
		for id, ws := range got {
			for i, w := range ws {
				if w != want[i] {
					t.Fatalf("src=%d node %d word %d = %d want %d", src, id, i, w, want[i])
				}
			}
		}
	}
}

func TestSessionsShareSeed(t *testing.T) {
	const n = 16
	hashes := make([]uint64, n)
	runAll(t, n, 21, func(s *Session) {
		f := s.hashFamily(1, 42)
		hashes[s.Ctx.ID()] = f.Hash(12345)
	})
	for id := 1; id < n; id++ {
		if hashes[id] != hashes[0] {
			t.Fatalf("node %d derived a different shared hash", id)
		}
	}
}

func TestDirectMessages(t *testing.T) {
	const n = 8
	gotFrom := make([]int, n)
	runAll(t, n, 2, func(s *Session) {
		peer := s.Ctx.ID() ^ 1
		s.Ctx.SendWord(peer, ncc.Word(99))
		s.Advance()
		s.Synchronize()
		count := 0
		s.DrainDirect(func(from ncc.NodeID, ws []uint64) {
			count++
			if len(ws) != 1 || ws[0] != 99 {
				panic("direct message lost or corrupted")
			}
			gotFrom[s.Ctx.ID()] = from
		})
		if count != 1 {
			panic("direct message count wrong")
		}
	})
	for id, from := range gotFrom {
		if from != id^1 {
			t.Fatalf("node %d got direct message from %d", id, from)
		}
	}
}
