package comm

import (
	"fmt"

	"ncc/internal/hashing"
	"ncc/internal/ncc"
)

// spreadRouter runs the Multicast Algorithm's reverse routing (Appendix B.4)
// for one butterfly column, typed by the collective's payload: packets enter
// at tree roots on the bottommost level and retrace the recorded tree edges
// up to the level-0 leaves, one packet per edge per round, minimum
// (rank, group) first, with per-edge tokens flowing downward for termination.
type spreadRouter[T any] struct {
	s    *Session
	seq  uint32
	w    Wire[T]
	t    *Trees
	rank *hashing.Family
	col  int

	// queues[level][side] holds packets waiting to traverse the down-spread
	// edge of (level, col) toward level-1 side `side` (0 straight, 1 cross).
	queues [][2][]spreadItem[T]
	// tokIn[level][side] marks the token received into (level, col) along its
	// up-edge of that side (no more packets will arrive there).
	tokIn [][2]bool
	// tokSent[level][side] marks the token emitted on the down-spread edge.
	tokSent [][2]bool

	initsDone bool
	leafGot   []GroupVal[T] // packets that reached this column's level-0 leaf

	nextItems []stagedSpread[T]
	nextToks  []stagedTok
}

type spreadItem[T any] struct {
	group uint64
	rank  uint32
	val   T
}

// leafPlan is one planned leaf delivery of deliverLeaves.
type leafPlan[T any] struct {
	to    int
	group uint64
	val   T
	rnd   int
}

func (r *spreadRouter[T]) rankOf(g uint64) uint32 { return uint32(r.rank.Hash(g)) }

type stagedSpread[T any] struct {
	level int
	it    spreadItem[T]
}

// spread readies the pooled spreading router for a new invocation.
func (st *commState[T]) spread(s *Session, seq uint32, w Wire[T], t *Trees, rank *hashing.Family) *spreadRouter[T] {
	r := &st.sr
	levels := s.BF.Levels()
	r.s, r.seq, r.w, r.t, r.rank = s, seq, w, t, rank
	r.col = s.BF.Column(s.Ctx.ID())
	if len(r.queues) != levels {
		r.queues = make([][2][]spreadItem[T], levels)
		r.tokIn = make([][2]bool, levels)
		r.tokSent = make([][2]bool, levels)
	} else {
		for i := range r.queues {
			r.queues[i][0] = r.queues[i][0][:0]
			r.queues[i][1] = r.queues[i][1][:0]
			r.tokIn[i] = [2]bool{}
			r.tokSent[i] = [2]bool{}
		}
	}
	r.initsDone = false
	r.leafGot = r.leafGot[:0]
	r.nextItems = r.nextItems[:0]
	r.nextToks = r.nextToks[:0]
	return r
}

// arrive processes a packet entering (level, col): leaves collect it; inner
// nodes fan it out onto the recorded tree edges of its group.
func (r *spreadRouter[T]) arrive(level int, it spreadItem[T]) {
	if level == 0 {
		r.leafGot = append(r.leafGot, GroupVal[T]{Group: it.group, Val: it.val})
		return
	}
	mask := r.t.children[level][it.group]
	for side := 0; side <= 1; side++ {
		if mask&(1<<side) != 0 {
			r.queues[level][side] = append(r.queues[level][side], it)
		}
	}
}

func (r *spreadRouter[T]) absorb() {
	s := r.s
	staged := r.nextItems
	r.nextItems = r.nextItems[:0]
	for _, sp := range staged {
		r.arrive(sp.level, sp.it)
	}
	toks := r.nextToks
	r.nextToks = r.nextToks[:0]
	for _, st := range toks {
		r.tokIn[st.level][st.side] = true
	}
	for _, m := range s.qInit {
		if m.seq != r.seq {
			if s.patience > 0 {
				continue // straggler from a collective that gave up early
			}
			panic(fmt.Sprintf("comm: multicast init from invocation %d received during %d", m.seq, r.seq))
		}
		if s.patience > 0 && int(m.val.n) != r.w.Words() {
			continue // corrupted frame; drop rather than fault the node
		}
		r.arrive(s.BF.D, spreadItem[T]{group: m.group, rank: r.rankOf(m.group), val: r.w.Decode(s.words(m.val))})
	}
	s.qInit = s.qInit[:0]
	for _, m := range s.qSpread {
		if m.seq != r.seq {
			if s.patience > 0 {
				continue
			}
			panic(fmt.Sprintf("comm: spread packet from invocation %d received during %d", m.seq, r.seq))
		}
		if s.patience > 0 && (int(m.val.n) != r.w.Words() || int(m.level) < 0 || int(m.level) >= len(r.queues)) {
			continue
		}
		r.arrive(int(m.level), spreadItem[T]{group: m.group, rank: r.rankOf(m.group), val: r.w.Decode(s.words(m.val))})
	}
	s.qSpread = s.qSpread[:0]
	for _, m := range s.qSpTok {
		if m.seq != r.seq {
			if s.patience > 0 {
				continue
			}
			panic(fmt.Sprintf("comm: spread token from invocation %d received during %d", m.seq, r.seq))
		}
		if s.patience > 0 && (int(m.level) < 0 || int(m.level) >= len(r.tokIn)) {
			continue
		}
		r.tokIn[m.level][m.side] = true
	}
	s.qSpTok = s.qSpTok[:0]
}

// sendSpread encodes a packet moving down a tree edge into `level`.
func sendSpread[T any](s *Session, to ncc.NodeID, seq uint32, level int, w Wire[T], group uint64, val T) {
	n := w.Words()
	enc := s.encode(2 + n)
	enc[0] = tagSpread<<56 | uint64(seq&seqMask)<<32 | uint64(uint8(level))<<24
	enc[1] = group
	w.Encode(val, enc[2:])
	s.Ctx.SendWords(to, enc)
}

func (r *spreadRouter[T]) step() {
	bf := r.s.BF
	for level := bf.D; level >= 1; level-- {
		for side := 0; side <= 1; side++ {
			q := r.queues[level][side]
			if len(q) > 0 {
				best := 0
				for i := 1; i < len(q); i++ {
					if q[i].rank < q[best].rank || (q[i].rank == q[best].rank && q[i].group < q[best].group) {
						best = i
					}
				}
				it := q[best]
				q[best] = q[len(q)-1]
				r.queues[level][side] = q[:len(q)-1]
				toCol := bf.UpNeighbor(level-1, r.col, side)
				if toCol == r.col {
					r.nextItems = append(r.nextItems, stagedSpread[T]{level: level - 1, it: it})
				} else {
					sendSpread(r.s, bf.Host(toCol), r.seq, level-1, r.w, it.group, it.val)
				}
			}
			if !r.tokSent[level][side] && len(r.queues[level][side]) == 0 && r.upDone(level) {
				r.tokSent[level][side] = true
				toCol := bf.UpNeighbor(level-1, r.col, side)
				if toCol == r.col {
					r.nextToks = append(r.nextToks, stagedTok{level: level - 1, side: 0})
				} else {
					h := tagSpreadTok<<56 | uint64(r.seq&seqMask)<<32 | uint64(uint8(level-1))<<24 | 1
					r.s.Ctx.SendWord(bf.Host(toCol), ncc.Word(h))
				}
			}
		}
	}
}

func (r *spreadRouter[T]) upDone(level int) bool {
	if level == r.s.BF.D {
		return r.initsDone
	}
	return r.tokIn[level][0] && r.tokIn[level][1]
}

func (r *spreadRouter[T]) done() bool {
	for level := 1; level <= r.s.BF.D; level++ {
		if !r.tokSent[level][0] || !r.tokSent[level][1] {
			return false
		}
	}
	return r.tokIn[0][0] && r.tokIn[0][1]
}

// runSpread drives the spreading router to quiescence; like runCombine it is
// bounded by the patience budget under faults so a lost token cannot spin the
// phase to MaxRounds.
func runSpread[T any](s *Session, r *spreadRouter[T]) {
	if r == nil {
		return
	}
	spins := 0
	for !r.done() {
		if s.patience > 0 {
			if spins++; spins > 8*s.patience {
				break
			}
		}
		r.step()
		s.Advance()
		r.absorb()
	}
}

// sendInit delivers a source's packet to its tree root (or stages it locally
// when this node hosts the root column).
func sendInit[T any](s *Session, r *spreadRouter[T], seq uint32, w Wire[T], t *Trees, group uint64, val T) {
	rootCol := int(t.Root(group))
	if r != nil && rootCol == r.col {
		r.nextItems = append(r.nextItems, stagedSpread[T]{level: s.BF.D, it: spreadItem[T]{group: group, rank: r.rankOf(group), val: val}})
		return
	}
	n := w.Words()
	enc := s.encode(2 + n)
	enc[0] = tagInit<<56 | uint64(seq&seqMask)<<32
	enc[1] = group
	w.Encode(val, enc[2:])
	s.Ctx.SendWords(s.BF.Host(rootCol), enc)
}

// SourcePacket is one multicast payload: the source's group and its message.
type SourcePacket[T any] struct {
	Group uint64
	Val   T
}

// Multicast solves the Multicast Problem (Theorem 2.5) over previously set-up
// trees: every source's packet is delivered to every member of its group.
// Each node is the source of at most one group per call (isSource with its
// group id and payload); lhat is the globally known upper bound on the number
// of groups any node is a member of. Returns the packets delivered to this
// node as (group, value) pairs. Cost: O(C + lhat/log n + log n) rounds
// w.h.p., where C is the tree congestion. The returned slice is reused by
// the next collective invocation with the same payload type; copy it if it
// must survive that long.
func Multicast[T any](s *Session, t *Trees, isSource bool, group uint64, val T, w Wire[T], lhat int) []GroupVal[T] {
	var packets []SourcePacket[T]
	if isSource {
		packets = []SourcePacket[T]{{Group: group, Val: val}}
	}
	return MulticastMulti(s, t, packets, w, lhat)
}

// MulticastMulti is the extension the paper notes after Theorem 2.5: a node
// may be the source of several multicast groups in the same call. The source
// packets are injected into the tree roots in capacity-bounded batches over a
// globally agreed window before the spread starts; everything else is
// identical. Cost gains an additive O(maxPackets/log n) term.
func MulticastMulti[T any](s *Session, t *Trees, packets []SourcePacket[T], w Wire[T], lhat int) []GroupVal[T] {
	s.assertDrained("Multicast")
	call := s.nextCall()
	rankF := s.rankOnly(call)
	seq := seq24(call)

	var r *spreadRouter[T]
	if s.BF.IsEmulator(s.Ctx.ID()) {
		r = stateFor[T](s).spread(s, seq, w, t, rankF)
	}

	spreadPhase(s, r, seq, w, t, packets)

	// Leaf delivery within a randomized window.
	window := s.window(lhat)
	return deliverLeaves(s, r, w, window)
}

// spreadPhase injects this node's source packets into the tree roots over a
// globally agreed window (the MaxAll doubles as the start barrier), then runs
// the spread routing to quiescence and synchronizes.
func spreadPhase[T any](s *Session, r *spreadRouter[T], seq uint32, w Wire[T], t *Trees, packets []SourcePacket[T]) {
	maxP, _ := s.MaxAll(uint64(len(packets)), true)
	window := s.window(int(maxP))
	batch := s.batchSize()
	k := 0
	for i := 0; i < window; i++ {
		for j := 0; j < batch && k < len(packets); j++ {
			sendInit(s, r, seq, w, t, packets[k].Group, packets[k].Val)
			k++
		}
		s.Advance()
		if r != nil {
			r.absorb()
		}
	}
	if r != nil {
		r.initsDone = true
	}
	runSpread(s, r)
	s.Synchronize()
}

// deliverLeaves fans each leaf packet out to the group members recorded at
// this column's leaf, each at a uniformly random round of the window, and
// collects the packets addressed to this node.
func deliverLeaves[T any](s *Session, r *spreadRouter[T], w Wire[T], window int) []GroupVal[T] {
	ctx := s.Ctx
	st := stateFor[T](s)
	mine := st.out[:0]
	sched := st.sched[:0]
	if r != nil {
		for _, gv := range r.leafGot {
			for _, origin := range r.t.leafOrigins[gv.Group] {
				sched = append(sched, leafPlan[T]{to: int(origin), group: gv.Group, val: gv.Val, rnd: randRound(ctx.Rand(), window)})
			}
		}
		r.leafGot = r.leafGot[:0]
	}
	st.sched = sched
	for t := 0; t < window; t++ {
		for _, p := range sched {
			if p.rnd != t {
				continue
			}
			if p.to == ctx.ID() {
				mine = append(mine, GroupVal[T]{Group: p.group, Val: p.val})
			} else {
				sendGroupVal(s, p.to, tagLeaf, w, p.group, p.val)
			}
		}
		s.Advance()
	}
	for _, lm := range s.qLeaf {
		if s.patience > 0 && int(lm.val.n) != w.Words() {
			continue // corrupted frame; drop rather than fault the node
		}
		mine = append(mine, GroupVal[T]{Group: lm.group, Val: w.Decode(s.words(lm.val))})
	}
	s.qLeaf = s.qLeaf[:0]
	st.out = mine
	return mine
}
