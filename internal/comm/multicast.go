package comm

import "fmt"

// spreadRouter runs the Multicast Algorithm's reverse routing (Appendix B.4)
// for one butterfly column: packets enter at tree roots on the bottommost
// level and retrace the recorded tree edges up to the level-0 leaves, one
// packet per edge per round, minimum (rank, group) first, with per-edge
// tokens flowing downward for termination.
type spreadRouter struct {
	s    *Session
	seq  uint32
	t    *Trees
	rank func(uint64) uint32
	col  int

	// queues[level][side] holds packets waiting to traverse the down-spread
	// edge of (level, col) toward level-1 side `side` (0 straight, 1 cross).
	queues [][2][]spreadItem
	// tokIn[level][side] marks the token received into (level, col) along its
	// up-edge of that side (no more packets will arrive there).
	tokIn [][2]bool
	// tokSent[level][side] marks the token emitted on the down-spread edge.
	tokSent [][2]bool

	initsDone bool
	leafGot   []GroupVal // packets that reached this column's level-0 leaf

	nextItems []stagedSpread
	nextToks  []stagedTok
}

type spreadItem struct {
	group uint64
	rank  uint32
	val   Value
}

type stagedSpread struct {
	level int
	it    spreadItem
}

func newSpreadRouter(s *Session, seq uint32, t *Trees, rank func(uint64) uint32) *spreadRouter {
	levels := s.BF.Levels()
	return &spreadRouter{
		s:       s,
		seq:     seq,
		t:       t,
		rank:    rank,
		col:     s.BF.Column(s.Ctx.ID()),
		queues:  make([][2][]spreadItem, levels),
		tokIn:   make([][2]bool, levels),
		tokSent: make([][2]bool, levels),
	}
}

// arrive processes a packet entering (level, col): leaves collect it; inner
// nodes fan it out onto the recorded tree edges of its group.
func (r *spreadRouter) arrive(level int, it spreadItem) {
	if level == 0 {
		r.leafGot = append(r.leafGot, GroupVal{Group: it.group, Val: it.val})
		return
	}
	mask := r.t.children[level][it.group]
	for side := 0; side <= 1; side++ {
		if mask&(1<<side) != 0 {
			r.queues[level][side] = append(r.queues[level][side], it)
		}
	}
}

func (r *spreadRouter) absorb() {
	staged := r.nextItems
	r.nextItems = nil
	for _, sp := range staged {
		r.arrive(sp.level, sp.it)
	}
	toks := r.nextToks
	r.nextToks = nil
	for _, st := range toks {
		r.tokIn[st.level][st.side] = true
	}
	for _, m := range r.s.qInit {
		if m.seq != r.seq {
			panic(fmt.Sprintf("comm: multicast init from invocation %d received during %d", m.seq, r.seq))
		}
		r.arrive(r.s.BF.D, spreadItem{group: m.group, rank: r.rank(m.group), val: m.val})
	}
	r.s.qInit = r.s.qInit[:0]
	for _, m := range r.s.qSpread {
		if m.seq != r.seq {
			panic(fmt.Sprintf("comm: spread packet from invocation %d received during %d", m.seq, r.seq))
		}
		r.arrive(int(m.level), spreadItem{group: m.group, rank: r.rank(m.group), val: m.val})
	}
	r.s.qSpread = r.s.qSpread[:0]
	for _, m := range r.s.qSpTok {
		if m.seq != r.seq {
			panic(fmt.Sprintf("comm: spread token from invocation %d received during %d", m.seq, r.seq))
		}
		r.tokIn[m.level][m.side] = true
	}
	r.s.qSpTok = r.s.qSpTok[:0]
}

func (r *spreadRouter) step() {
	bf := r.s.BF
	for level := bf.D; level >= 1; level-- {
		for side := 0; side <= 1; side++ {
			q := r.queues[level][side]
			if len(q) > 0 {
				best := 0
				for i := 1; i < len(q); i++ {
					if q[i].rank < q[best].rank || (q[i].rank == q[best].rank && q[i].group < q[best].group) {
						best = i
					}
				}
				it := q[best]
				q[best] = q[len(q)-1]
				r.queues[level][side] = q[:len(q)-1]
				toCol := bf.UpNeighbor(level-1, r.col, side)
				if toCol == r.col {
					r.nextItems = append(r.nextItems, stagedSpread{level: level - 1, it: it})
				} else {
					r.s.Ctx.Send(bf.Host(toCol), spreadMsg{seq: r.seq, level: int8(level - 1), group: it.group, val: it.val})
				}
			}
			if !r.tokSent[level][side] && len(r.queues[level][side]) == 0 && r.upDone(level) {
				r.tokSent[level][side] = true
				toCol := bf.UpNeighbor(level-1, r.col, side)
				if toCol == r.col {
					r.nextToks = append(r.nextToks, stagedTok{level: level - 1, side: 0})
				} else {
					r.s.Ctx.Send(bf.Host(toCol), spreadToken{seq: r.seq, level: int8(level - 1), side: 1})
				}
			}
		}
	}
}

func (r *spreadRouter) upDone(level int) bool {
	if level == r.s.BF.D {
		return r.initsDone
	}
	return r.tokIn[level][0] && r.tokIn[level][1]
}

func (r *spreadRouter) done() bool {
	for level := 1; level <= r.s.BF.D; level++ {
		if !r.tokSent[level][0] || !r.tokSent[level][1] {
			return false
		}
	}
	return r.tokIn[0][0] && r.tokIn[0][1]
}

func (s *Session) runSpread(r *spreadRouter) {
	if r == nil {
		return
	}
	for !r.done() {
		r.step()
		s.Advance()
		r.absorb()
	}
}

// sendInit delivers a source's packet to its tree root (or stages it locally
// when this node hosts the root column).
func (s *Session) sendInit(r *spreadRouter, seq uint32, t *Trees, group uint64, val Value) {
	rootCol := int(t.rootCol(group))
	if r != nil && rootCol == r.col {
		r.nextItems = append(r.nextItems, stagedSpread{level: s.BF.D, it: spreadItem{group: group, rank: r.rank(group), val: val}})
	} else {
		s.Ctx.Send(s.BF.Host(rootCol), initMsg{seq: seq, group: group, val: val})
	}
}

// SourcePacket is one multicast payload: the source's group and its message.
type SourcePacket struct {
	Group uint64
	Val   Value
}

// Multicast solves the Multicast Problem (Theorem 2.5) over previously set-up
// trees: every source's packet is delivered to every member of its group.
// Each node is the source of at most one group per call (isSource with its
// group id and payload); lhat is the globally known upper bound on the number
// of groups any node is a member of. Returns the packets delivered to this
// node as (group, value) pairs. Cost: O(C + lhat/log n + log n) rounds
// w.h.p., where C is the tree congestion.
func (s *Session) Multicast(t *Trees, isSource bool, group uint64, val Value, lhat int) []GroupVal {
	var packets []SourcePacket
	if isSource {
		packets = []SourcePacket{{Group: group, Val: val}}
	}
	return s.MulticastMulti(t, packets, lhat)
}

// MulticastMulti is the extension the paper notes after Theorem 2.5: a node
// may be the source of several multicast groups in the same call. The source
// packets are injected into the tree roots in capacity-bounded batches over a
// globally agreed window before the spread starts; everything else is
// identical. Cost gains an additive O(maxPackets/log n) term.
func (s *Session) MulticastMulti(t *Trees, packets []SourcePacket, lhat int) []GroupVal {
	s.assertDrained("Multicast")
	call := s.nextCall()
	rankF := s.rankOnly(call)
	seq := uint32(call)

	var r *spreadRouter
	if s.BF.IsEmulator(s.Ctx.ID()) {
		r = newSpreadRouter(s, seq, t, rankF)
	}

	s.spreadPhase(r, t, seq, packets)

	// Leaf delivery within a randomized window.
	window := s.window(lhat)
	return s.deliverLeaves(r, window)
}

// spreadPhase injects this node's source packets into the tree roots over a
// globally agreed window (the MaxAll doubles as the start barrier), then runs
// the spread routing to quiescence and synchronizes.
func (s *Session) spreadPhase(r *spreadRouter, t *Trees, seq uint32, packets []SourcePacket) {
	maxP, _ := s.MaxAll(uint64(len(packets)), true)
	window := s.window(int(maxP))
	batch := s.batchSize()
	k := 0
	for w := 0; w < window; w++ {
		for j := 0; j < batch && k < len(packets); j++ {
			s.sendInit(r, seq, t, packets[k].Group, packets[k].Val)
			k++
		}
		s.Advance()
		if r != nil {
			r.absorb()
		}
	}
	if r != nil {
		r.initsDone = true
	}
	s.runSpread(r)
	s.Synchronize()
}

// deliverLeaves fans each leaf packet out to the group members recorded at
// this column's leaf, each at a uniformly random round of the window, and
// collects the packets addressed to this node.
func (s *Session) deliverLeaves(r *spreadRouter, window int) []GroupVal {
	ctx := s.Ctx
	var mine []GroupVal
	type planned struct {
		to  int
		m   leafMsg
		rnd int
	}
	var sched []planned
	if r != nil {
		for _, gv := range r.leafGot {
			for _, origin := range r.t.leafOrigins[gv.Group] {
				sched = append(sched, planned{to: int(origin), m: leafMsg{group: gv.Group, val: gv.Val}, rnd: randRound(ctx.Rand(), window)})
			}
		}
		r.leafGot = nil
	}
	for t := 0; t < window; t++ {
		for _, p := range sched {
			if p.rnd != t {
				continue
			}
			if p.to == ctx.ID() {
				mine = append(mine, GroupVal{Group: p.m.group, Val: p.m.val})
			} else {
				ctx.Send(p.to, p.m)
			}
		}
		s.Advance()
	}
	for _, lm := range s.qLeaf {
		mine = append(mine, GroupVal{Group: lm.m.group, Val: lm.m.val})
	}
	s.qLeaf = s.qLeaf[:0]
	return mine
}

// rankOnly derives just the contention-rank hash for an invocation.
func (s *Session) rankOnly(call uint64) func(uint64) uint32 {
	fr := s.hashFamily(call, 0x72616e6b)
	return func(g uint64) uint32 { return uint32(fr.Hash(g)) }
}
