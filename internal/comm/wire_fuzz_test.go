package comm

import (
	"math"
	"testing"
)

// FuzzWireRoundTrip pins the Wire contract for every built-in codec:
// Decode(Encode(v)) == v for any value, Encode(Decode(ws)) == ws for any
// words, and Encode writes exactly Words() words (no out-of-range touches).
// The checked-in seed corpus (testdata/fuzz/FuzzWireRoundTrip) covers the
// width boundaries: zero, all-ones, the sign bit, and 2^k±1 patterns.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(1), uint64(1)<<63, uint64(1)<<63-1, uint64(1)<<32, uint64(1)<<32-1, uint64(math.MaxInt64))
	f.Add(uint64(0xdeadbeefcafebabe), uint64(42), uint64(7), uint64(1)<<31, uint64(1)<<16-1, uint64(3))
	f.Fuzz(func(t *testing.T, w0, w1, w2, w3, w4, w5 uint64) {
		ws := [maxValWords]uint64{w0, w1, w2, w3, w4, w5}

		roundTrip(t, "U64Wire", U64Wire{}, w0, ws)
		roundTrip(t, "PairWire", PairWire{}, Pair{A: w0, B: w1}, ws)
		roundTrip(t, "XorCountWire", XorCountWire{}, XorCount{X: w0, C: w1}, ws)
		roundTrip(t, "SketchWire", SketchWire{}, Sketch{Up: w0, Down: w1}, ws)
		roundTrip(t, "Sketch3Wire", Sketch3Wire{}, Sketch3{S: [3]Sketch{
			{Up: w0, Down: w1}, {Up: w2, Down: w3}, {Up: w4, Down: w5},
		}}, ws)
		roundTrip(t, "ZeroWire", ZeroWire{}, Flag{}, ws)
	})
}

// roundTrip checks both directions of the codec contract. The value side
// (Decode after Encode yields v) proves no information is lost; the word
// side (Encode after Decode reproduces ws[:Words()]) proves the codec uses
// every word it claims, with no padding bits invented or dropped. Guard
// words past Words() must stay untouched by Encode.
func roundTrip[T comparable](t *testing.T, name string, w Wire[T], v T, ws [maxValWords]uint64) {
	t.Helper()
	k := w.Words()
	if k < 0 || k > maxValWords {
		t.Fatalf("%s: Words() = %d, outside [0, %d]", name, k, maxValWords)
	}

	const guard = 0xa5a5a5a5a5a5a5a5
	buf := [maxValWords + 1]uint64{}
	for i := range buf {
		buf[i] = guard
	}
	w.Encode(v, buf[:k])
	for i := k; i < len(buf); i++ {
		if buf[i] != guard {
			t.Fatalf("%s: Encode wrote past Words()=%d at index %d", name, k, i)
		}
	}
	if got := w.Decode(buf[:k]); got != v {
		t.Errorf("%s: Decode(Encode(%v)) = %v", name, v, got)
	}

	dec := w.Decode(ws[:k])
	re := [maxValWords]uint64{}
	w.Encode(dec, re[:k])
	for i := 0; i < k; i++ {
		if re[i] != ws[i] {
			t.Errorf("%s: Encode(Decode(%x)) word %d = %x, want %x", name, ws[:k], i, re[i], ws[i])
		}
	}
}
