package comm

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"ncc/internal/ncc"
)

// Property: for arbitrary random Aggregation Problems, the primitive computes
// exactly the per-group sums a direct computation yields, at every target,
// with zero drops. Exercises odd n (attached nodes), group fan-in collisions
// and value combining under random loads.
func TestAggregatePropertyRandomProblems(t *testing.T) {
	check := func(seed int64, n16 uint16, groups8, members8 uint8) bool {
		n := 2 + int(n16)%60
		groups := 1 + int(groups8)%20
		membersPer := 1 + int(members8)%6
		rng := rand.New(rand.NewPCG(uint64(seed), 1))

		type member struct {
			node int
			val  uint64
		}
		want := map[uint64]uint64{}
		target := map[uint64]int{}
		items := make([][]Agg[uint64], n)
		for g := 0; g < groups; g++ {
			target[uint64(g)] = rng.IntN(n)
			for j := 0; j < membersPer; j++ {
				m := rng.IntN(n)
				v := rng.Uint64() % 1000
				items[m] = append(items[m], Agg[uint64]{Group: uint64(g), Target: target[uint64(g)], Val: v})
				want[uint64(g)] += v
			}
		}
		var mu sync.Mutex
		got := map[uint64]uint64{}
		gotAt := map[uint64]int{}
		st, err := ncc.Run(ncc.Config{N: n, Seed: seed, Strict: true}, func(ctx *ncc.Context) {
			s := NewSession(ctx)
			res := Aggregate(s, items[ctx.ID()], Sum, groups)
			mu.Lock()
			for _, gv := range res {
				got[gv.Group] += gv.Val
				gotAt[gv.Group] = ctx.ID()
			}
			mu.Unlock()
		})
		if err != nil || st.Dropped() != 0 {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for g, w := range want {
			if got[g] != w || gotAt[g] != target[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Aggregate-and-Broadcast with MAX over an arbitrary contributing
// subset returns the true maximum to every node, for any clique size.
func TestAggregateBroadcastProperty(t *testing.T) {
	check := func(seed int64, n16 uint16, mask uint32) bool {
		n := 2 + int(n16)%50
		anyone := false
		var want uint64
		vals := make([]uint64, n)
		has := make([]bool, n)
		rng := rand.New(rand.NewPCG(uint64(seed), 2))
		for i := 0; i < n; i++ {
			vals[i] = rng.Uint64() % 10000
			has[i] = mask&(1<<(i%32)) != 0
			if has[i] {
				if !anyone || vals[i] > want {
					want = vals[i]
				}
				anyone = true
			}
		}
		ok := true
		var mu sync.Mutex
		_, err := ncc.Run(ncc.Config{N: n, Seed: seed, Strict: true}, func(ctx *ncc.Context) {
			s := NewSession(ctx)
			v, found := AggregateAndBroadcast(s, vals[ctx.ID()], has[ctx.ID()], Max)
			mu.Lock()
			if found != anyone || (found && v != want) {
				ok = false
			}
			mu.Unlock()
		})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: multicast over random trees delivers each source's payload to
// exactly its members, whatever the group topology.
func TestMulticastProperty(t *testing.T) {
	check := func(seed int64, n16 uint16, groups8 uint8) bool {
		n := 4 + int(n16)%40
		groups := 1 + int(groups8)%(n/2)
		p := makeMulticastProblem(n, groups, seed)
		lhat := p.maxMemberships()
		ok := true
		var mu sync.Mutex
		_, err := ncc.Run(ncc.Config{N: n, Seed: seed, Strict: true}, func(ctx *ncc.Context) {
			s := NewSession(ctx)
			trees := s.SetupTrees(p.items(ctx.ID()))
			var group uint64
			var isSource bool
			for g, src := range p.sources {
				if src == ctx.ID() {
					group, isSource = g, true
				}
			}
			var val uint64
			if isSource {
				val = p.vals[group]
			}
			got := Multicast(s, trees, isSource, group, val, U64Wire{}, lhat)
			// Duplicate memberships are legal and yield one delivery each.
			want := map[uint64]int{}
			for _, g := range p.members[ctx.ID()] {
				want[g]++
			}
			gotPer := map[uint64]int{}
			mu.Lock()
			if len(got) != len(p.members[ctx.ID()]) {
				ok = false
			}
			for _, gv := range got {
				gotPer[gv.Group]++
				if want[gv.Group] == 0 || gv.Val != p.vals[gv.Group] {
					ok = false
				}
			}
			for g, c := range want {
				if gotPer[g] != c {
					ok = false
				}
			}
			mu.Unlock()
		})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Sessions must stay usable for long mixed workloads: interleave every
// primitive repeatedly and confirm queues stay clean (assertDrained fires on
// leakage).
func TestSessionLongMixedWorkload(t *testing.T) {
	const n = 23 // odd: exercises attached nodes
	st := runAll(t, n, 77, func(s *Session) {
		me := s.Ctx.ID()
		for iter := 0; iter < 4; iter++ {
			s.Synchronize()
			sum, _ := AggregateAndBroadcast(s, uint64(1), true, Sum)
			if sum != n {
				panic("bad sum")
			}
			res := Aggregate(s, []Agg[uint64]{{Group: uint64((me + iter) % n), Target: (me + iter) % n, Val: 1}}, Sum, 1)
			_ = res
			trees := s.SetupTrees([]TreeItem{{Group: uint64((me + 1) % n), Origin: me}})
			got := Multicast(s, trees, true, uint64(me), uint64(iter), U64Wire{}, 1)
			if len(got) != 1 || got[0].Val != uint64(iter) {
				panic("bad multicast")
			}
			// I am a member of group (me+1)%n, so I receive that source's id.
			v, okk := MultiAggregate(s, trees, true, uint64(me), uint64(me), Min)
			if !okk || v != uint64((me+1)%n) {
				panic("bad multi-aggregate")
			}
		}
	})
	if st.Dropped() != 0 {
		t.Errorf("mixed workload dropped %d messages", st.Dropped())
	}
}
