package comm

import (
	"testing"

	"ncc/internal/ncc"
)

// TestCollectiveSteadyStateAllocs pins the zero-allocation property of the
// typed collectives, the analog of the engine's TestSteadyStateAllocs one
// layer up: once sessions and the pooled per-type router state have warmed
// up, extra iterations of a mixed Aggregate/Multicast/Aggregate-and-Broadcast
// workload must allocate ~nothing per delivered message — no payload boxing,
// no per-packet queue nodes, no codec garbage. It measures the allocation
// *difference* between a short and a long run of the same traffic shape, so
// one-time costs (session setup, butterfly, warm-up growth of the pooled
// state) cancel out.
func TestCollectiveSteadyStateAllocs(t *testing.T) {
	const (
		n        = 64
		warmup   = 6
		extra    = 10
		perMsgOK = 0.02
	)
	program := func(iters int) (func(), *ncc.Stats) {
		st := &ncc.Stats{}
		return func() {
			stats, err := ncc.Run(ncc.Config{N: n, Seed: 5, Strict: true, Workers: 1}, func(ctx *ncc.Context) {
				s := NewSession(ctx)
				me := ctx.ID()
				trees := s.SetupTrees([]TreeItem{{Group: uint64((me + 1) % n), Origin: me}})
				items := []Agg[uint64]{{Group: uint64((me + 3) % n), Target: (me + 3) % n, Val: uint64(me)}}
				sk := []Agg[Sketch3]{{Group: uint64(me % 7), Target: me % 7, Val: Sketch3{}}}
				for it := 0; it < iters; it++ {
					if got := Aggregate(s, items, Sum, 1); len(got) != 1 {
						panic("aggregate lost a group")
					}
					Aggregate(s, sk, MergeSketch3, 7)
					if got := Multicast(s, trees, true, uint64(me), uint64(it), U64Wire{}, 1); len(got) != 1 {
						panic("multicast lost a packet")
					}
					if v, ok := AggregateAndBroadcast(s, uint64(1), true, Sum); !ok || v != n {
						panic("bad aggregate-and-broadcast")
					}
				}
			})
			if err != nil {
				panic(err)
			}
			*st = stats
		}, st
	}

	shortFn, shortStats := program(warmup)
	longFn, longStats := program(warmup + extra)
	short := testing.AllocsPerRun(3, shortFn)
	long := testing.AllocsPerRun(3, longFn)

	extraMsgs := float64(longStats.Messages - shortStats.Messages)
	if extraMsgs <= 0 {
		t.Fatalf("bad message accounting: short=%d long=%d", shortStats.Messages, longStats.Messages)
	}
	perMsg := (long - short) / extraMsgs
	t.Logf("allocs: short=%v long=%v over %v extra messages -> %.5f allocs/message",
		short, long, extraMsgs, perMsg)
	if perMsg > perMsgOK {
		t.Errorf("steady-state collectives allocate %.5f allocs/message (limit %v): "+
			"the typed zero-copy primitive layer regressed", perMsg, perMsgOK)
	}
}
