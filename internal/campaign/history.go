package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Snapshot is one history record of a campaign run: the deterministic Report
// plus the non-deterministic context around it (when it ran, how long it
// took, where). History files are the longitudinal perf trajectory; the
// Report inside stays byte-identical across equivalent runs, so two
// Snapshots differ exactly where runs legitimately differ.
type Snapshot struct {
	Time    time.Time `json:"time"`
	Elapsed float64   `json:"elapsedSeconds,omitempty"`
	Source  string    `json:"source,omitempty"`
	Report  Report    `json:"report"`
}

// HistoryPath is the append-only artifact path for a campaign's snapshots:
// dir/<sanitized-name>.history.json (NDJSON, one Snapshot per line).
func HistoryPath(dir, name string) string {
	san := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, name)
	return filepath.Join(dir, san+".history.json")
}

// AppendHistory appends one Snapshot line to the history file, creating the
// file and its directory as needed.
func AppendHistory(path string, snap Snapshot) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(b, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// LoadHistory reads every Snapshot line of a history file, oldest first.
func LoadHistory(path string) ([]Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Snapshot
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, snap)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadReport extracts a Report from any of the artifact shapes: a history
// file (the newest snapshot wins), a single Snapshot object, or a bare
// Report object.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	// History files are NDJSON; a lone object also parses line-wise.
	if snaps, err := LoadHistory(path); err == nil && len(snaps) > 0 && snaps[len(snaps)-1].Report.Campaign != "" {
		return snaps[len(snaps)-1].Report, nil
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Campaign == "" {
		return r, fmt.Errorf("%s: not a campaign report, snapshot, or history file", path)
	}
	return r, nil
}
