// Package campaign turns single-scenario runs into experiment suites: one
// strict-decoded JSON spec declares a matrix of entries (scenario refs or
// inline scenarios) crossed with campaign-wide sweep and model defaults, and
// each entry expands into comparative variants — the NCC algorithm itself, its
// paired naive baseline (automatic via algo.BaselineFor, or explicit), and an
// optional k-machine-accounted run. Expansion is deterministic and every
// variant is a single canonical-hashed scenario, so campaign units flow
// through the same execution seams as ordinary jobs: the local runner calls
// scenario.Run directly, the service runner submits them as nccd jobs where
// the result cache and cluster workers apply unchanged.
//
// The report builder merges per-unit Records into comparative tables — round,
// message and word totals per variant, verification pass counts, and the
// baseline-rounds-per-NCC-round speedup column that quantifies the paper's
// headline claims. Reports are deterministic (no wall-clock fields), so the
// same campaign produces byte-identical report JSON whether it ran locally,
// against a coordinator, or straight out of the result cache. Wall-clock time
// lives only in history Snapshots: append-only NDJSON artifacts under
// campaigns/ that record the longitudinal perf trajectory, which Compare and
// benchcheck -campaign gate regressions against.
package campaign
