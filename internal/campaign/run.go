package campaign

import (
	"fmt"

	"ncc/internal/scenario"
)

// Runner executes one campaign unit and returns its Records, one per
// sweep-expanded run. Individual run failures belong in Record.Error; a
// Runner error means the unit could not be executed at all (bad spec,
// unreachable service) and aborts the campaign.
type Runner interface {
	RunUnit(u Unit) ([]scenario.Record, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(u Unit) ([]scenario.Record, error)

// RunUnit calls f.
func (f RunnerFunc) RunUnit(u Unit) ([]scenario.Record, error) { return f(u) }

// Local returns the in-process Runner: each unit runs through scenario.Run
// on the calling machine.
func Local() Runner {
	return RunnerFunc(func(u Unit) ([]scenario.Record, error) {
		return scenario.Run(u.Scenario), nil
	})
}

// Execute expands the campaign, runs every distinct unit once (units sharing
// a canonical hash share one execution and one result), and builds the
// report. Units run in deterministic expansion order.
func Execute(sp Spec, r Runner) (Report, error) {
	units, err := sp.Expand()
	if err != nil {
		return Report{}, err
	}
	records := make(map[string][]scenario.Record, len(units))
	for _, u := range units {
		if _, done := records[u.Hash]; done {
			continue
		}
		recs, err := r.RunUnit(u)
		if err != nil {
			return Report{}, fmt.Errorf("entry %s, %s variant: %w", u.Entry, u.Variant, err)
		}
		records[u.Hash] = recs
	}
	return BuildReport(sp.Name, units, records)
}
