package campaign

import (
	"fmt"

	"ncc/internal/obs"
	"ncc/internal/scenario"
)

// UnitResult is one executed campaign unit: its Records (one per
// sweep-expanded run) and the content hash of its telemetry trace. TraceHash
// is empty when the runner recorded no trace; when present it is the
// "sha256:..." canonical trace hash (see internal/obs), identical for the
// same unit whether it ran locally, on a daemon, or out of the result cache.
type UnitResult struct {
	Records   []scenario.Record
	TraceHash string
}

// Runner executes one campaign unit. Individual run failures belong in
// Record.Error; a Runner error means the unit could not be executed at all
// (bad spec, unreachable service) and aborts the campaign.
type Runner interface {
	RunUnit(u Unit) (UnitResult, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(u Unit) (UnitResult, error)

// RunUnit calls f.
func (f RunnerFunc) RunUnit(u Unit) (UnitResult, error) { return f(u) }

// Local returns the in-process Runner: each unit's expanded scenarios run on
// the calling machine with telemetry collected, so the report's trace refs
// match what a daemon executing the same units would produce.
func Local() Runner {
	return RunnerFunc(func(u Unit) (UnitResult, error) {
		col := &obs.Collector{}
		var recs []scenario.Record
		for _, c := range u.Scenario.Expand() {
			rec, err := scenario.RunTraced(c, col, scenario.RunOpts{})
			if err != nil {
				rec.Error = err.Error()
			}
			recs = append(recs, rec)
		}
		res := UnitResult{Records: recs}
		if len(col.Lines()) > 0 {
			res.TraceHash = col.Hash()
		}
		return res, nil
	})
}

// Execute expands the campaign, runs every distinct unit once (units sharing
// a canonical hash share one execution and one result), and builds the
// report. Units run in deterministic expansion order.
func Execute(sp Spec, r Runner) (Report, error) {
	units, err := sp.Expand()
	if err != nil {
		return Report{}, err
	}
	records := make(map[string][]scenario.Record, len(units))
	traces := make(map[string]string, len(units))
	for _, u := range units {
		if _, done := records[u.Hash]; done {
			continue
		}
		res, err := r.RunUnit(u)
		if err != nil {
			return Report{}, fmt.Errorf("entry %s, %s variant: %w", u.Entry, u.Variant, err)
		}
		records[u.Hash] = res.Records
		if res.TraceHash != "" {
			traces[u.Hash] = res.TraceHash
		}
	}
	return BuildReport(sp.Name, units, records, traces)
}
