package campaign

import (
	"fmt"

	"ncc/internal/scenario"
)

// Variant names one comparative axis of a campaign entry.
type Variant string

const (
	// VariantNCC is the entry's scenario as written: the paper's algorithm.
	VariantNCC Variant = "ncc"
	// VariantBaseline is the same scenario with the algorithm swapped for
	// its naive counterpart (same graph, model, sweep and parameters).
	VariantBaseline Variant = "baseline"
	// VariantKMachine is the same scenario with k-machine accounting
	// attached (same run, extra Record section).
	VariantKMachine Variant = "kmachine"
)

// Unit is one executable cell of the expanded campaign matrix: a single
// sweep-bearing scenario — exactly the payload of one nccd job — addressed by
// its canonical hash. Units with equal hashes are the same computation; the
// executor runs each distinct hash once and the report references results by
// hash, so overlapping entries and immediate re-runs hit the result cache.
type Unit struct {
	Entry    string            `json:"entry"`
	Variant  Variant           `json:"variant"`
	Scenario scenario.Scenario `json:"scenario"`
	Hash     string            `json:"hash"`
}

// Expand resolves the campaign matrix into its deterministic unit sequence:
// entries in spec order, each contributing its ncc variant, then the baseline
// variant (when the entry has a pairing), then the kmachine variant (when the
// entry asks for accounting). Campaign-wide sweep and model defaults overlay
// whatever each entry's scenario leaves unset; the overlaid scenario is what
// every variant shares, so the comparison is apples-to-apples.
func (sp Spec) Expand() ([]Unit, error) {
	var units []Unit
	for i, e := range sp.Entries {
		if e.Scenario == nil {
			return nil, fmt.Errorf("entries[%d]: needs a ref or an inline scenario", i)
		}
		name := e.displayName(i)
		base := *e.Scenario
		if base.Sweep == nil {
			base.Sweep = sp.Sweep
		}
		base.Model = overlayModel(base.Model, sp.Model)

		add := func(v Variant, sc scenario.Scenario) error {
			sc.Name = name + "/" + string(v)
			h, err := sc.Hash()
			if err != nil {
				return fmt.Errorf("entry %s, %s variant: %w", name, v, err)
			}
			units = append(units, Unit{Entry: name, Variant: v, Scenario: sc, Hash: h})
			return nil
		}

		if err := add(VariantNCC, base); err != nil {
			return nil, err
		}
		bl, err := e.baselineAlgo()
		if err != nil {
			return nil, fmt.Errorf("entries[%d]: %w", i, err)
		}
		if bl != "" {
			sc := base
			sc.Algo = bl
			if err := add(VariantBaseline, sc); err != nil {
				return nil, err
			}
		}
		if e.KMachine != nil {
			sc := base
			km := *e.KMachine
			sc.KMachine = &km
			if err := add(VariantKMachine, sc); err != nil {
				return nil, err
			}
		}
	}
	return units, nil
}

// overlayModel fills the zero-valued fields of an entry's model from the
// campaign-wide defaults.
func overlayModel(m scenario.Model, d *scenario.Model) scenario.Model {
	if d == nil {
		return m
	}
	if m.CapFactor == 0 {
		m.CapFactor = d.CapFactor
	}
	if m.MaxWords == 0 {
		m.MaxWords = d.MaxWords
	}
	if m.MaxRounds == 0 {
		m.MaxRounds = d.MaxRounds
	}
	if m.Workers == 0 {
		m.Workers = d.Workers
	}
	if m.Seed == 0 {
		m.Seed = d.Seed
	}
	if !m.NonStrict {
		m.NonStrict = d.NonStrict
	}
	return m
}
