package campaign

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"ncc/internal/scenario"
)

// Report is the deterministic comparative digest of one campaign run: it is
// built purely from the units' Records (rounds, messages, words, k-machine
// accounting, verification), never from wall-clock measurements, so the same
// campaign yields byte-identical report JSON locally, remotely, and from
// cache. Timing lives in the history Snapshot wrapper instead.
type Report struct {
	Campaign string        `json:"campaign"`
	Entries  []EntryReport `json:"entries"`
	Units    int           `json:"units"`
	Runs     int           `json:"runs"`
	Errors   int           `json:"errors"`
	Verified int           `json:"verified"`
}

// EntryReport compares one entry's variants. Speedup is the headline column:
// baseline rounds per NCC round (summed over the entry's runs), present when
// the entry has both variants and the NCC variant completed rounds.
type EntryReport struct {
	Name     string          `json:"name"`
	Variants []VariantReport `json:"variants"`
	Speedup  float64         `json:"speedup,omitempty"`
}

// VariantReport aggregates the Records of one unit (one canonical-hashed
// scenario, possibly a sweep of many runs).
type VariantReport struct {
	Variant       Variant `json:"variant"`
	Algo          string  `json:"algo"`
	Hash          string  `json:"hash"`
	Runs          int     `json:"runs"`
	Errors        int     `json:"errors"`
	Verified      int     `json:"verified"`
	Rounds        int64   `json:"rounds"`
	Messages      int64   `json:"messages"`
	Words         int64   `json:"words"`
	KRounds       int64   `json:"kRounds,omitempty"`
	CrossMessages int64   `json:"crossMessages,omitempty"`
	// Trace is the content hash of the unit's telemetry trace ("sha256:...").
	// It is a cross-surface correlation key, not a metric: the same unit
	// yields the same hash locally, on a daemon, and from cache, so a report
	// row can be joined to its archived trace file.
	Trace string `json:"trace,omitempty"`
}

// BuildReport merges per-unit Records into the comparative report. records
// maps canonical scenario hashes to the unit's Record slice; every unit must
// be present (deduplicated units share one entry). traces optionally maps the
// same hashes to trace content hashes; units absent from it simply omit the
// trace ref (nil disables trace refs entirely).
func BuildReport(name string, units []Unit, records map[string][]scenario.Record, traces map[string]string) (Report, error) {
	r := Report{Campaign: name, Units: len(units)}
	byEntry := map[string]*EntryReport{}
	for _, u := range units {
		recs, ok := records[u.Hash]
		if !ok {
			return r, fmt.Errorf("entry %s, %s variant: no records for hash %.12s", u.Entry, u.Variant, u.Hash)
		}
		vr := VariantReport{Variant: u.Variant, Algo: u.Scenario.Algo, Hash: u.Hash, Runs: len(recs), Trace: traces[u.Hash]}
		for _, rec := range recs {
			if rec.Error != "" {
				vr.Errors++
			}
			if rec.Verified {
				vr.Verified++
			}
			vr.Rounds += int64(rec.Stats.Rounds)
			vr.Messages += rec.Stats.Messages
			vr.Words += rec.Stats.Words
			if rec.KMachine != nil {
				vr.KRounds += int64(rec.KMachine.KRounds)
				vr.CrossMessages += rec.KMachine.CrossMessages
			}
		}
		er := byEntry[u.Entry]
		if er == nil {
			r.Entries = append(r.Entries, EntryReport{Name: u.Entry})
			er = &r.Entries[len(r.Entries)-1]
			byEntry[u.Entry] = er
		}
		er.Variants = append(er.Variants, vr)
		r.Runs += vr.Runs
		r.Errors += vr.Errors
		r.Verified += vr.Verified
	}
	for i := range r.Entries {
		er := &r.Entries[i]
		var ncc, bl *VariantReport
		for j := range er.Variants {
			switch er.Variants[j].Variant {
			case VariantNCC:
				ncc = &er.Variants[j]
			case VariantBaseline:
				bl = &er.Variants[j]
			}
		}
		if ncc != nil && bl != nil && ncc.Rounds > 0 {
			er.Speedup = math.Round(float64(bl.Rounds)/float64(ncc.Rounds)*1000) / 1000
		}
	}
	return r, nil
}

// Delta is one metric's movement between two reports of the same campaign.
// Frac is the relative change (cur-prev)/prev; positive means the metric
// grew (a regression for cost metrics).
type Delta struct {
	Entry   string  `json:"entry"`
	Variant Variant `json:"variant"`
	Metric  string  `json:"metric"`
	Prev    float64 `json:"prev"`
	Cur     float64 `json:"cur"`
	Frac    float64 `json:"frac"`
}

// Compare computes the per-variant metric deltas from prev to cur. Variants
// present in prev but absent from cur are returned in missing (a gate should
// treat disappearing coverage as failure, not as zero delta); metrics that
// were zero in prev are skipped (no baseline to be relative to).
func Compare(prev, cur Report) (deltas []Delta, missing []string) {
	type key struct {
		entry   string
		variant Variant
	}
	curIdx := map[key]VariantReport{}
	for _, er := range cur.Entries {
		for _, vr := range er.Variants {
			curIdx[key{er.Name, vr.Variant}] = vr
		}
	}
	for _, er := range prev.Entries {
		for _, pv := range er.Variants {
			cv, ok := curIdx[key{er.Name, pv.Variant}]
			if !ok {
				missing = append(missing, er.Name+"/"+string(pv.Variant))
				continue
			}
			for _, m := range []struct {
				name      string
				prev, cur int64
			}{
				{"rounds", pv.Rounds, cv.Rounds},
				{"messages", pv.Messages, cv.Messages},
				{"words", pv.Words, cv.Words},
				{"kRounds", pv.KRounds, cv.KRounds},
			} {
				if m.prev == 0 {
					continue
				}
				deltas = append(deltas, Delta{
					Entry:   er.Name,
					Variant: pv.Variant,
					Metric:  m.name,
					Prev:    float64(m.prev),
					Cur:     float64(m.cur),
					Frac:    float64(m.cur-m.prev) / float64(m.prev),
				})
			}
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return deltas, missing
}

// Regressions filters Compare's deltas down to metrics that grew by more
// than tol (e.g. 0.2 gates on >20% growth).
func Regressions(deltas []Delta, tol float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Frac > tol {
			out = append(out, d)
		}
	}
	return out
}

// RenderText writes the human-readable report table.
func RenderText(w io.Writer, r Report) error {
	fmt.Fprintf(w, "campaign %s: %d entries, %d units, %d runs, %d verified, %d errors\n\n",
		r.Campaign, len(r.Entries), r.Units, r.Runs, r.Verified, r.Errors)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "entry\tvariant\talgo\truns\tok\trounds\tmessages\twords\tkrounds\tspeedup")
	for _, er := range r.Entries {
		for _, vr := range er.Variants {
			krounds := ""
			if vr.KRounds > 0 {
				krounds = fmt.Sprintf("%d", vr.KRounds)
			}
			speedup := ""
			if vr.Variant == VariantBaseline && er.Speedup > 0 {
				speedup = fmt.Sprintf("%.2fx", er.Speedup)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
				er.Name, vr.Variant, vr.Algo, vr.Runs, vr.Verified,
				vr.Rounds, vr.Messages, vr.Words, krounds, speedup)
		}
	}
	return tw.Flush()
}
