package campaign

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

const specJSON = `{
  "name": "unit-test",
  "sweep": {"seeds": [1, 2]},
  "model": {"maxrounds": 40000},
  "entries": [
    {"scenario": {"algo": "coloring", "graph": {"family": "gnp", "params": {"n": 40, "p": 0.15}}}},
    {"scenario": {"algo": "bfs", "graph": {"family": "grid", "params": {"rows": 6, "cols": 6}}}, "kmachine": {"k": 4}},
    {"name": "mis-solo", "baseline": "none",
     "scenario": {"algo": "mis", "graph": {"family": "cycle", "params": {"n": 48}}}}
  ]
}`

func decodeSpec(t *testing.T) Spec {
	t.Helper()
	sp, err := Decode([]byte(specJSON))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return sp
}

func TestDecodeStrictPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"entry typo", `{"name":"x","entries":[{},{},{"basline":"none"}]}`, `entries[2].basline`},
		{"nested scenario typo", `{"name":"x","entries":[{"scenario":{"algo":"mis","grph":{}}}]}`, `entries[0].scenario.grph`},
		{"top-level typo", `{"nmae":"x"}`, `"nmae" (spec has`},
		{"model typo", `{"model":{"capfator":2}}`, `model.capfator`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Decode accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := Decode([]byte(specJSON)); err != nil {
		t.Fatalf("Decode rejected a valid spec: %v", err)
	}
}

func TestExpandDeterministic(t *testing.T) {
	sp := decodeSpec(t)
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	units, err := sp.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// coloring gets ncc+baseline, bfs gets ncc+baseline+kmachine, mis-solo
	// opted out of its baseline pairing: 6 units in entry-then-variant order.
	type uv struct {
		entry   string
		variant Variant
		algo    string
	}
	var got []uv
	for _, u := range units {
		got = append(got, uv{u.Entry, u.Variant, u.Scenario.Algo})
	}
	want := []uv{
		{"coloring", VariantNCC, "coloring"},
		{"coloring", VariantBaseline, "coloring-central"},
		{"bfs", VariantNCC, "bfs"},
		{"bfs", VariantBaseline, "bfs-naive"},
		{"bfs", VariantKMachine, "bfs"},
		{"mis-solo", VariantNCC, "mis"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expansion order:\n got %v\nwant %v", got, want)
	}
	for _, u := range units {
		if u.Scenario.Sweep == nil || len(u.Scenario.Sweep.Seeds) != 2 {
			t.Fatalf("unit %s/%s: campaign sweep default not applied: %+v", u.Entry, u.Variant, u.Scenario.Sweep)
		}
		if u.Scenario.Model.MaxRounds != 40000 {
			t.Fatalf("unit %s/%s: campaign model default not applied", u.Entry, u.Variant)
		}
	}
	if units[4].Scenario.KMachine == nil || units[4].Scenario.KMachine.K != 4 {
		t.Fatalf("kmachine variant lost its accounting block: %+v", units[4].Scenario.KMachine)
	}
	if units[2].Scenario.KMachine != nil {
		t.Fatalf("ncc variant gained a kmachine block")
	}

	// Re-expansion is bit-identical, including hashes; names never leak into
	// hashes (the ncc and kmachine variants differ, ncc and baseline differ).
	again, err := sp.Expand()
	if err != nil {
		t.Fatalf("second Expand: %v", err)
	}
	if !reflect.DeepEqual(units, again) {
		t.Fatalf("Expand is not deterministic")
	}
	seen := map[string]string{}
	for _, u := range units {
		if prev, dup := seen[u.Hash]; dup {
			t.Fatalf("distinct units %s and %s/%s share hash %s", prev, u.Entry, u.Variant, u.Hash)
		}
		seen[u.Hash] = u.Entry + "/" + string(u.Variant)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no name", `{"entries":[{"scenario":{"algo":"mis","graph":{"family":"cycle","params":{"n":8}}}}]}`, "no name"},
		{"no entries", `{"name":"x"}`, "no entries"},
		{"unresolved ref", `{"name":"x","entries":[{"ref":"a.json"}]}`, "unresolved ref"},
		{"no scenario", `{"name":"x","entries":[{"baseline":"none"}]}`, "needs a ref or an inline scenario"},
		{"unknown baseline", `{"name":"x","entries":[{"baseline":"nope","scenario":{"algo":"mis","graph":{"family":"cycle","params":{"n":8}}}}]}`, "nope"},
		{"duplicate names", `{"name":"x","entries":[
			{"scenario":{"algo":"mis","graph":{"family":"cycle","params":{"n":8}}}},
			{"scenario":{"algo":"mis","graph":{"family":"cycle","params":{"n":16}}}}]}`, "collides"},
		{"double kmachine", `{"name":"x","entries":[{"kmachine":{"k":2},
			"scenario":{"algo":"mis","kmachine":{"k":4},"graph":{"family":"cycle","params":{"n":8}}}}]}`, "kmachine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := Decode([]byte(tc.doc))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			err = sp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestExecuteLocalAndReport(t *testing.T) {
	sp, err := Decode([]byte(`{
	  "name": "exec-test",
	  "entries": [
	    {"scenario": {"algo": "mis", "graph": {"family": "cycle", "params": {"n": 32}},
	      "sweep": {"seeds": [1, 2]}}},
	    {"name": "mis-k", "baseline": "none", "kmachine": {"k": 4},
	     "scenario": {"algo": "mis", "graph": {"family": "cycle", "params": {"n": 32}}}}
	  ]
	}`))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rep, err := Execute(sp, Local())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rep.Campaign != "exec-test" || len(rep.Entries) != 2 || rep.Units != 4 {
		t.Fatalf("report shape: %+v", rep)
	}
	// 2 sweep seeds x (ncc + baseline) + 1 ncc + 1 kmachine = 6 runs.
	if rep.Runs != 6 || rep.Verified != 6 || rep.Errors != 0 {
		t.Fatalf("runs/verified/errors = %d/%d/%d, want 6/6/0", rep.Runs, rep.Verified, rep.Errors)
	}
	// Speedup is the baseline-rounds-per-NCC-round quotient of the sums (on a
	// 32-cycle the centralized gather wins; the ratio just has to be right).
	mis := rep.Entries[0]
	wantSpeedup := math.Round(float64(mis.Variants[1].Rounds)/float64(mis.Variants[0].Rounds)*1000) / 1000
	if mis.Speedup != wantSpeedup || mis.Speedup <= 0 {
		t.Fatalf("speedup = %v, want %v", mis.Speedup, wantSpeedup)
	}
	var kr *VariantReport
	for i := range rep.Entries[1].Variants {
		if rep.Entries[1].Variants[i].Variant == VariantKMachine {
			kr = &rep.Entries[1].Variants[i]
		}
	}
	if kr == nil || kr.KRounds == 0 || kr.CrossMessages == 0 {
		t.Fatalf("kmachine variant missing accounting: %+v", kr)
	}

	// Determinism end to end: a second execution marshals byte-identically.
	rep2, err := Execute(sp, Local())
	if err != nil {
		t.Fatalf("second Execute: %v", err)
	}
	b1, _ := json.Marshal(rep)
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Fatalf("report JSON is not deterministic:\n%s\n%s", b1, b2)
	}
}

// fixtureReport builds a report pair with known metric movements for the
// regression-delta math.
func fixtureReport(rounds, messages int64) Report {
	return Report{
		Campaign: "fix",
		Units:    2,
		Entries: []EntryReport{{
			Name: "e1",
			Variants: []VariantReport{
				{Variant: VariantNCC, Algo: "mis", Runs: 1, Verified: 1, Rounds: rounds, Messages: messages, Words: 4 * messages},
				{Variant: VariantBaseline, Algo: "mis-central", Runs: 1, Verified: 1, Rounds: 10 * rounds, Messages: messages, Words: 4 * messages},
			},
		}},
	}
}

func TestCompareAndRegressions(t *testing.T) {
	prev := fixtureReport(100, 1000)
	cur := fixtureReport(130, 900)
	deltas, missing := Compare(prev, cur)
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	// 2 variants x 3 nonzero metrics (kRounds is zero in prev and skipped).
	if len(deltas) != 6 {
		t.Fatalf("got %d deltas: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Entry+"/"+string(d.Variant)+"/"+d.Metric] = d
	}
	d := byKey["e1/ncc/rounds"]
	if d.Prev != 100 || d.Cur != 130 || d.Frac < 0.299 || d.Frac > 0.301 {
		t.Fatalf("rounds delta = %+v, want +30%%", d)
	}
	if d := byKey["e1/ncc/messages"]; d.Frac > -0.099 || d.Frac < -0.101 {
		t.Fatalf("messages delta = %+v, want -10%%", d)
	}

	reg := Regressions(deltas, 0.2)
	if len(reg) != 2 { // rounds regressed on both variants; messages improved
		t.Fatalf("Regressions(0.2) = %+v, want the two rounds deltas", reg)
	}
	for _, d := range reg {
		if d.Metric != "rounds" {
			t.Fatalf("unexpected regression %+v", d)
		}
	}
	if got := Regressions(deltas, 0.5); len(got) != 0 {
		t.Fatalf("Regressions(0.5) = %+v, want none", got)
	}

	// A variant disappearing is reported, not silently ignored.
	shrunk := cur
	shrunk.Entries = []EntryReport{{Name: "e1", Variants: cur.Entries[0].Variants[:1]}}
	_, missing = Compare(prev, shrunk)
	if len(missing) != 1 || missing[0] != "e1/baseline" {
		t.Fatalf("missing = %v, want [e1/baseline]", missing)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := HistoryPath(dir, "My Campaign/v1")
	if base := filepath.Base(path); base != "My-Campaign-v1.history.json" {
		t.Fatalf("HistoryPath sanitization: %s", base)
	}
	r1 := fixtureReport(100, 1000)
	r2 := fixtureReport(110, 1000)
	for i, r := range []Report{r1, r2} {
		snap := Snapshot{Time: time.Date(2026, 8, 1+i, 0, 0, 0, 0, time.UTC), Elapsed: float64(i + 1), Source: "local", Report: r}
		if err := AppendHistory(path, snap); err != nil {
			t.Fatalf("AppendHistory: %v", err)
		}
	}
	snaps, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	if len(snaps) != 2 || snaps[0].Report.Entries[0].Variants[0].Rounds != 100 || snaps[1].Report.Entries[0].Variants[0].Rounds != 110 {
		t.Fatalf("history contents: %+v", snaps)
	}
	// LoadReport on a history file yields the newest snapshot's report.
	r, err := LoadReport(path)
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if r.Entries[0].Variants[0].Rounds != 110 {
		t.Fatalf("LoadReport picked the wrong snapshot: %+v", r)
	}
}

func TestResolveRefs(t *testing.T) {
	dir := t.TempDir()
	scPath := filepath.Join(dir, "mis.json")
	if err := os.WriteFile(scPath, []byte(`{"algo":"mis","graph":{"family":"cycle","params":{"n":16}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := Decode([]byte(`{"name":"x","entries":[{"ref":"mis.json"}]}`))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := sp.Resolve(dir); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if sp.Entries[0].Ref != "" || sp.Entries[0].Scenario == nil || sp.Entries[0].Scenario.Algo != "mis" {
		t.Fatalf("ref not inlined: %+v", sp.Entries[0])
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate after Resolve: %v", err)
	}
}
