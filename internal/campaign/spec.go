package campaign

import (
	"fmt"
	"os"
	"path/filepath"

	"ncc/internal/algo"
	"ncc/internal/scenario"
)

// Spec is one campaign: a named suite of comparative entries plus optional
// campaign-wide sweep and model defaults that fill in whatever the entry
// scenarios leave unset.
type Spec struct {
	Name    string          `json:"name"`
	Entries []Entry         `json:"entries"`
	Sweep   *scenario.Sweep `json:"sweep,omitempty"`
	Model   *scenario.Model `json:"model,omitempty"`
}

// Entry is one row of the campaign matrix: a scenario (inline, or a ref to a
// scenario file resolved by the CLI before submission) plus the comparative
// variants to derive from it. Baseline selects the paired naive algorithm:
// empty means automatic pairing via algo.BaselineFor, "none" suppresses the
// baseline variant, anything else names a registered algorithm explicitly.
// KMachine adds a k-machine-accounted variant of the same run.
type Entry struct {
	Name     string             `json:"name,omitempty"`
	Ref      string             `json:"ref,omitempty"`
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	Baseline string             `json:"baseline,omitempty"`
	KMachine *scenario.KMachine `json:"kmachine,omitempty"`
}

// BaselineNone is the Entry.Baseline value that suppresses the baseline
// variant of an entry whose algorithm has an automatic pairing.
const BaselineNone = "none"

// Decode parses one Spec from JSON with the same strict field checking
// scenarios get: an unknown field anywhere — spec, entries, embedded
// scenarios — is rejected with its dotted path (e.g. entries[2].basline).
func Decode(data []byte) (Spec, error) {
	var sp Spec
	if err := scenario.StrictUnmarshal(data, &sp); err != nil {
		return sp, err
	}
	return sp, nil
}

// Load reads a Spec from a JSON file with strict field checking.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	sp, err := Decode(data)
	if err != nil {
		return sp, fmt.Errorf("campaign %s: %w", path, err)
	}
	return sp, nil
}

// Resolve loads every ref entry's scenario file (relative refs resolve
// against dir, typically the spec file's directory) and inlines it. Refs are
// a CLI-side convenience: the HTTP API accepts inline scenarios only, so
// ncccampaign resolves before submitting and remote runs see the identical
// expanded spec.
func (sp *Spec) Resolve(dir string) error {
	for i := range sp.Entries {
		e := &sp.Entries[i]
		switch {
		case e.Ref == "":
			continue
		case e.Scenario != nil:
			return fmt.Errorf("entries[%d]: has both ref and an inline scenario", i)
		}
		path := e.Ref
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		s, err := scenario.Load(path)
		if err != nil {
			return fmt.Errorf("entries[%d]: %w", i, err)
		}
		e.Scenario = &s
		e.Ref = ""
	}
	return nil
}

// Validate checks the statically checkable parts of a campaign: the spec has
// a name and entries, every entry has a resolved scenario and an unambiguous
// display name, baseline pairings exist, and every expanded variant scenario
// validates against the algorithm and graph registries.
func (sp Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("campaign has no name (history artifacts are keyed on it)")
	}
	if len(sp.Entries) == 0 {
		return fmt.Errorf("campaign %s has no entries", sp.Name)
	}
	seen := map[string]int{}
	for i, e := range sp.Entries {
		if e.Ref != "" {
			return fmt.Errorf("entries[%d]: unresolved ref %q (refs are resolved client-side; the API takes inline scenarios)", i, e.Ref)
		}
		if e.Scenario == nil {
			return fmt.Errorf("entries[%d]: needs a ref or an inline scenario", i)
		}
		if e.KMachine != nil && e.Scenario.KMachine != nil {
			return fmt.Errorf("entries[%d]: scenario already declares kmachine accounting; drop the entry-level kmachine block", i)
		}
		if km := e.KMachine; km != nil && km.K < 1 {
			return fmt.Errorf("entries[%d]: kmachine.k = %d, need >= 1", i, km.K)
		}
		name := e.displayName(i)
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("entries[%d]: display name %q collides with entries[%d]; set distinct entry names", i, name, prev)
		}
		seen[name] = i
		if _, err := e.baselineAlgo(); err != nil {
			return fmt.Errorf("entries[%d]: %w", i, err)
		}
	}
	units, err := sp.Expand()
	if err != nil {
		return err
	}
	for _, u := range units {
		if err := u.Scenario.Validate(); err != nil {
			return fmt.Errorf("entry %s, %s variant: %w", u.Entry, u.Variant, err)
		}
	}
	return nil
}

// displayName is the entry's report label: the explicit name, else the
// scenario's name, else the algorithm.
func (e Entry) displayName(i int) string {
	switch {
	case e.Name != "":
		return e.Name
	case e.Scenario == nil:
		return fmt.Sprintf("entry%d", i)
	case e.Scenario.Name != "":
		return e.Scenario.Name
	default:
		return e.Scenario.Algo
	}
}

// baselineAlgo resolves the entry's baseline variant algorithm ("" when the
// entry has none): explicit names must be registered, and the empty value
// means automatic pairing — entries whose algorithm has no registered
// counterpart simply have no baseline variant.
func (e Entry) baselineAlgo() (string, error) {
	switch e.Baseline {
	case BaselineNone:
		return "", nil
	case "":
		if e.Scenario == nil {
			return "", nil
		}
		b, _ := algo.BaselineFor(e.Scenario.Algo)
		return b, nil
	default:
		if _, ok := algo.Get(e.Baseline); !ok {
			return "", fmt.Errorf("baseline: %w", algo.ErrUnknown(e.Baseline))
		}
		return e.Baseline, nil
	}
}
