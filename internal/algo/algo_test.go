package algo_test

import (
	"encoding/json"
	"strings"
	"testing"

	"ncc/internal/algo"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.Build(graph.Spec{Family: "kforest", Params: param.Values{"n": 24, "k": 2}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEveryAlgorithmRunsAndVerifies(t *testing.T) {
	g := testGraph(t)
	for _, d := range algo.All() {
		t.Run(d.Name, func(t *testing.T) {
			res, err := d.Execute(ncc.Config{Seed: 3, Strict: true}, g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("unverified: %s", res.VerifyErr)
			}
			if res.Summary == "" {
				t.Error("empty summary")
			}
			if res.Stats.Rounds == 0 {
				t.Error("zero rounds recorded")
			}
		})
	}
}

func TestRegistryContainsTheSuite(t *testing.T) {
	for _, want := range []string{"orientation", "bfs", "mis", "matching", "coloring", "mst", "components", "forests"} {
		if _, ok := algo.Get(want); !ok {
			t.Errorf("algorithm %q not registered", want)
		}
	}
}

func TestRunRejectsUnknownParam(t *testing.T) {
	g := testGraph(t)
	_, err := algo.MustGet("mis").Execute(ncc.Config{Seed: 1, Strict: true}, g, param.Values{"bogus": 1})
	if err == nil || !strings.Contains(err.Error(), "unknown params bogus") {
		t.Errorf("err = %v", err)
	}
}

func TestBFSRejectsOutOfRangeSource(t *testing.T) {
	g := testGraph(t)
	_, err := algo.MustGet("bfs").Execute(ncc.Config{Seed: 1, Strict: true}, g, param.Values{"src": 1000})
	if err == nil || !strings.Contains(err.Error(), "src") {
		t.Errorf("err = %v", err)
	}
}

func TestMSTSummaryAndMetrics(t *testing.T) {
	g := testGraph(t)
	res, err := algo.MustGet("mst").Execute(ncc.Config{Seed: 3, Strict: true}, g, param.Values{"maxw": 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("unverified: %s", res.VerifyErr)
	}
	// A connected 24-node graph has a 23-edge spanning tree.
	if res.Metrics["edges"] != 23 {
		t.Errorf("edges metric = %v, want 23", res.Metrics["edges"])
	}
	if !strings.Contains(res.Summary, "minimum spanning forest: 23 edges") {
		t.Errorf("summary = %q", res.Summary)
	}
}

func TestResultSerializesDeterministically(t *testing.T) {
	g := testGraph(t)
	var lines []string
	for i := 0; i < 2; i++ {
		res, err := algo.MustGet("coloring").Execute(ncc.Config{Seed: 7, Strict: true, Workers: 1 + i*7}, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	if lines[0] != lines[1] {
		t.Errorf("same seed serialized differently:\n%s\n%s", lines[0], lines[1])
	}
	var back map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &back); err != nil {
		t.Fatalf("result JSON does not parse: %v", err)
	}
	if back["verified"] != true {
		t.Errorf("verified flag missing from JSON: %s", lines[0])
	}
}
