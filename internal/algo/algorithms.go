package algo

import (
	"fmt"

	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/param"
	"ncc/internal/verify"
)

// The paper's algorithm suite (Table 1 plus the Section 4/5 building blocks),
// registered as typed descriptors. Each entry wires the per-node program to
// its sequential verifier and a summarizer that feeds both the CLIs' human
// output and the JSON/metrics pipeline.

func init() {
	Register(Algorithm[*core.Orientation]{
		Name: "orientation",
		Desc: "O(a)-orientation with max outdegree O(a) (Theorem 4.12)",
		Node: func(s *comm.Session, in *Input) *core.Orientation {
			return core.Orient(s, in.G, core.OrientParams{})
		},
		Verify: func(in *Input, outs []*core.Orientation) error {
			return verify.Orientation(in.G, core.OutLists(outs), 0)
		},
		Summarize: func(in *Input, outs []*core.Orientation) Summary {
			rescues := 0
			for _, o := range outs {
				rescues += o.Rescues
			}
			od := verify.MaxOutdegree(core.OutLists(outs))
			return Summary{
				Text: fmt.Sprintf("orientation with max outdegree %d over %d levels", od, outs[0].Levels),
				Metrics: map[string]float64{
					"maxOutdegree": float64(od),
					"levels":       float64(outs[0].Levels),
					"rescues":      float64(rescues),
				},
			}
		},
	})

	Register(Algorithm[core.BFSResult]{
		Name:   "bfs",
		Desc:   "BFS tree over broadcast trees in O((a+D+log n) log n) rounds (Theorem 5.2)",
		Params: []param.Def{param.Int("src", 0, "BFS source node")},
		Prepare: func(in *Input) error {
			if src := in.Params.Int("src"); src < 0 || src >= in.G.N() {
				return fmt.Errorf("param src = %d out of [0,%d)", src, in.G.N())
			}
			return nil
		},
		Node: func(s *comm.Session, in *Input) core.BFSResult {
			o := core.Orient(s, in.G, core.OrientParams{})
			trees, lhat := core.BroadcastTrees(s, in.G, o)
			return core.BFS(s, in.G, trees, lhat, in.Params.Int("src"))
		},
		Verify: func(in *Input, outs []core.BFSResult) error {
			dist, parent := bfsVectors(outs)
			return verify.BFS(in.G, in.Params.Int("src"), dist, parent, true)
		},
		VerifySurvivors: func(in *Input, outs []core.BFSResult, alive []bool) error {
			dist, parent := bfsVectors(outs)
			return verify.SurvivorBFS(in.G, in.Params.Int("src"), dist, parent, alive)
		},
		Summarize: func(in *Input, outs []core.BFSResult) Summary {
			reached, ecc := 0, 0
			for _, r := range outs {
				if r.Dist >= 0 {
					reached++
					ecc = max(ecc, r.Dist)
				}
			}
			return Summary{
				Text: fmt.Sprintf("BFS tree from %d: %d nodes reached, eccentricity %d",
					in.Params.Int("src"), reached, ecc),
				Metrics: map[string]float64{"reached": float64(reached), "eccentricity": float64(ecc)},
			}
		},
	})

	Register(Algorithm[bool]{
		Name: "mis",
		Desc: "maximal independent set in O((a+log n) log n) rounds (Theorem 5.3)",
		Node: func(s *comm.Session, in *Input) bool {
			o := core.Orient(s, in.G, core.OrientParams{})
			trees, lhat := core.BroadcastTrees(s, in.G, o)
			return core.MIS(s, in.G, trees, lhat)
		},
		Verify: func(in *Input, outs []bool) error { return verify.MIS(in.G, outs) },
		VerifySurvivors: func(in *Input, outs []bool, alive []bool) error {
			return verify.SurvivorMIS(in.G, outs, alive)
		},
		Summarize: func(in *Input, outs []bool) Summary {
			size := 0
			for _, b := range outs {
				if b {
					size++
				}
			}
			return Summary{
				Text:    fmt.Sprintf("maximal independent set of size %d", size),
				Metrics: map[string]float64{"size": float64(size)},
			}
		},
	})

	Register(Algorithm[int]{
		Name: "matching",
		Desc: "maximal matching in O((a+log n) log n) rounds (Theorem 5.4)",
		Node: func(s *comm.Session, in *Input) int {
			o := core.Orient(s, in.G, core.OrientParams{})
			trees, lhat := core.BroadcastTrees(s, in.G, o)
			return core.Matching(s, in.G, trees, lhat)
		},
		Verify: func(in *Input, outs []int) error { return verify.Matching(in.G, outs) },
		VerifySurvivors: func(in *Input, outs []int, alive []bool) error {
			// A dead node's zero-value output is 0, not the -1 "unmatched"
			// sentinel, but survivor checks never read dead entries.
			return verify.SurvivorMatching(in.G, outs, alive)
		},
		Summarize: func(in *Input, outs []int) Summary {
			size := 0
			for u, v := range outs {
				if v > u {
					size++
				}
			}
			return Summary{
				Text:    fmt.Sprintf("maximal matching of size %d", size),
				Metrics: map[string]float64{"size": float64(size)},
			}
		},
	})

	Register(Algorithm[core.ColorResult]{
		Name: "coloring",
		Desc: "O(a)-coloring in O((a+log n) log^{3/2} n) rounds (Theorem 5.5)",
		Node: func(s *comm.Session, in *Input) core.ColorResult {
			o := core.Orient(s, in.G, core.OrientParams{})
			return core.Coloring(s, in.G, o)
		},
		Verify: func(in *Input, outs []core.ColorResult) error {
			colors, palette := colorVectors(outs)
			return verify.Coloring(in.G, colors, palette)
		},
		VerifySurvivors: func(in *Input, outs []core.ColorResult, alive []bool) error {
			colors, _ := colorVectors(outs)
			return verify.SurvivorColoring(in.G, colors, alive)
		},
		Summarize: func(in *Input, outs []core.ColorResult) Summary {
			colors, palette := colorVectors(outs)
			used := verify.ColorsUsed(colors)
			return Summary{
				Text: fmt.Sprintf("proper coloring with %d colors (palette bound %d)", used, palette),
				Metrics: map[string]float64{
					"colorsUsed": float64(used),
					"palette":    float64(palette),
				},
			}
		},
	})

	Register(Algorithm[[][2]int]{
		Name:   "mst",
		Desc:   "minimum spanning forest in O(log^4 n) rounds (Theorem 3.2)",
		Params: []param.Def{param.Int("maxw", 1000, "maximum random edge weight")},
		Prepare: func(in *Input) error {
			maxw := in.Params.Int64("maxw")
			if maxw < 1 {
				return fmt.Errorf("param maxw = %d, need >= 1", maxw)
			}
			in.Weights = graph.RandomWeights(in.G, maxw, in.Seed+1)
			return nil
		},
		Node: func(s *comm.Session, in *Input) [][2]int {
			return core.MST(s, in.Weights)
		},
		Verify: func(in *Input, outs [][][2]int) error {
			return verify.MST(in.Weights, core.CollectMSTEdges(outs))
		},
		VerifySurvivors: func(in *Input, outs [][][2]int, alive []bool) error {
			return verify.SurvivorForest(in.G, outs, alive)
		},
		Summarize: func(in *Input, outs [][][2]int) Summary {
			edges := core.CollectMSTEdges(outs)
			var total int64
			for _, e := range edges {
				total += in.Weights.Weight(e[0], e[1])
			}
			return Summary{
				Text: fmt.Sprintf("minimum spanning forest: %d edges, total weight %d", len(edges), total),
				Metrics: map[string]float64{
					"edges":  float64(len(edges)),
					"weight": float64(total),
				},
			}
		},
	})

	Register(Algorithm[int]{
		Name: "components",
		Desc: "connected-component labeling via MST sketches (Section 3)",
		Node: func(s *comm.Session, in *Input) int {
			return core.ComponentLabels(s, in.G)
		},
		Verify: func(in *Input, outs []int) error {
			_, want := graph.Components(in.G)
			if got := distinct(outs); got != want {
				return fmt.Errorf("found %d components, sequential says %d", got, want)
			}
			return nil
		},
		Summarize: func(in *Input, outs []int) Summary {
			return Summary{
				Text:    fmt.Sprintf("%d connected components labeled", distinct(outs)),
				Metrics: map[string]float64{"components": float64(distinct(outs))},
			}
		},
	})

	Register(Algorithm[forestShare]{
		Name: "forests",
		Desc: "O(a)-forest decomposition of the edge set (Section 4)",
		Node: func(s *comm.Session, in *Input) forestShare {
			o := core.Orient(s, in.G, core.OrientParams{})
			idx, count := core.ForestDecomposition(s, o)
			return forestShare{o: o, idx: idx, count: count}
		},
		Verify: func(in *Input, outs []forestShare) error {
			os, idxs, count := forestVectors(outs)
			for u, o := range os {
				if len(idxs[u]) != len(o.Out) {
					return fmt.Errorf("node %d: %d forest indices for %d out-edges", u, len(idxs[u]), len(o.Out))
				}
				if outs[u].count != count {
					return fmt.Errorf("node %d reports %d forests, node 0 reports %d", u, outs[u].count, count)
				}
			}
			return verify.ForestPartition(in.G, core.ForestsOf(in.G, os, idxs, count))
		},
		Summarize: func(in *Input, outs []forestShare) Summary {
			_, _, count := forestVectors(outs)
			return Summary{
				Text:    fmt.Sprintf("edge set partitioned into %d forests", count),
				Metrics: map[string]float64{"forests": float64(count)},
			}
		},
	})
}

// forestShare is one node's share of a forest decomposition.
type forestShare struct {
	o     *core.Orientation
	idx   []int
	count int
}

func forestVectors(outs []forestShare) ([]*core.Orientation, [][]int, int) {
	os := make([]*core.Orientation, len(outs))
	idxs := make([][]int, len(outs))
	for i, r := range outs {
		os[i], idxs[i] = r.o, r.idx
	}
	return os, idxs, outs[0].count
}

func bfsVectors(outs []core.BFSResult) (dist, parent []int) {
	dist = make([]int, len(outs))
	parent = make([]int, len(outs))
	for u, r := range outs {
		dist[u], parent[u] = r.Dist, r.Parent
	}
	return dist, parent
}

func colorVectors(outs []core.ColorResult) (colors []int, palette int) {
	colors = make([]int, len(outs))
	for u, r := range outs {
		colors[u], palette = r.Color, r.Palette
	}
	return colors, palette
}

func distinct(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
