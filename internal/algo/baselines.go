package algo

import (
	"fmt"

	"ncc/internal/baseline"
	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/param"
	"ncc/internal/seq"
	"ncc/internal/verify"
)

// The naive-baseline suite: for each headline algorithm, the straightforward
// NCC counterpart the paper's constructions are measured against — direct
// flooding where the paper multicasts, gather-everything-and-solve-centrally
// where the paper computes distributively. They register like any other
// algorithm, so scenarios, sweeps, nccd jobs and campaigns run them through
// the identical pipeline; the campaign report's "speedup" column is the ratio
// of a baseline run's rounds to its paired NCC run's rounds.

// BaselineFor maps each algorithm to its registered naive counterpart;
// campaigns use it for automatic NCC-vs-baseline pairing. Parameters are
// shared: a pair accepts the same parameter bag (bfs/bfs-naive take src,
// mst/mst-central take maxw, the centralized solvers take none).
func BaselineFor(name string) (string, bool) {
	b, ok := baselinePairs[name]
	return b, ok
}

var baselinePairs = map[string]string{
	"bfs":      "bfs-naive",
	"mst":      "mst-central",
	"mis":      "mis-central",
	"coloring": "coloring-central",
}

func init() {
	Register(Algorithm[core.BFSResult]{
		Name:   "bfs-naive",
		Desc:   "baseline: BFS by direct flooding, Theta(n/log n) rounds per phase on a star (Section 5 ablation)",
		Params: []param.Def{param.Int("src", 0, "BFS source node")},
		Prepare: func(in *Input) error {
			if src := in.Params.Int("src"); src < 0 || src >= in.G.N() {
				return fmt.Errorf("param src = %d out of [0,%d)", src, in.G.N())
			}
			return nil
		},
		Node: func(s *comm.Session, in *Input) core.BFSResult {
			d, p := baseline.NaiveBFS(s, in.G, in.Params.Int("src"))
			return core.BFSResult{Dist: d, Parent: p}
		},
		Verify: func(in *Input, outs []core.BFSResult) error {
			dist, parent := bfsVectors(outs)
			return verify.BFS(in.G, in.Params.Int("src"), dist, parent, true)
		},
		Summarize: func(in *Input, outs []core.BFSResult) Summary {
			reached, ecc := 0, 0
			for _, r := range outs {
				if r.Dist >= 0 {
					reached++
					ecc = max(ecc, r.Dist)
				}
			}
			return Summary{
				Text: fmt.Sprintf("naive BFS from %d: %d nodes reached, eccentricity %d",
					in.Params.Int("src"), reached, ecc),
				Metrics: map[string]float64{"reached": float64(reached), "eccentricity": float64(ecc)},
			}
		},
	})

	Register(Algorithm[[][2]int]{
		Name:   "mst-central",
		Desc:   "baseline: gather all edges at node 0 and run Kruskal, Theta(m/log n) rounds (T1-MST ablation)",
		Params: []param.Def{param.Int("maxw", 1000, "maximum random edge weight")},
		Prepare: func(in *Input) error {
			maxw := in.Params.Int64("maxw")
			if maxw < 1 {
				return fmt.Errorf("param maxw = %d, need >= 1", maxw)
			}
			in.Weights = graph.RandomWeights(in.G, maxw, in.Seed+1)
			return nil
		},
		Node: func(s *comm.Session, in *Input) [][2]int {
			return baseline.CentralizedMST(s, in.Weights)
		},
		Verify: func(in *Input, outs [][][2]int) error {
			// Every node holds the full forest; verify node 0's copy.
			return verify.MST(in.Weights, outs[0])
		},
		Summarize: func(in *Input, outs [][][2]int) Summary {
			edges := outs[0]
			var total int64
			for _, e := range edges {
				total += in.Weights.Weight(e[0], e[1])
			}
			return Summary{
				Text: fmt.Sprintf("centralized spanning forest: %d edges, total weight %d", len(edges), total),
				Metrics: map[string]float64{
					"edges":  float64(len(edges)),
					"weight": float64(total),
				},
			}
		},
	})

	Register(Algorithm[int]{
		Name: "mis-central",
		Desc: "baseline: gather the graph at node 0, greedy MIS, broadcast membership; Theta((m+n)/log n) rounds",
		Node: func(s *comm.Session, in *Input) int {
			bit := baseline.CentralizedSolve(s, in.G, func(g *graph.Graph) []uint64 {
				inSet := seq.GreedyMIS(g)
				words := make([]uint64, g.N())
				for u, b := range inSet {
					if b {
						words[u] = 1
					}
				}
				return words
			})
			return int(bit)
		},
		Verify: func(in *Input, outs []int) error {
			inSet := make([]bool, len(outs))
			for u, v := range outs {
				inSet[u] = v != 0
			}
			return verify.MIS(in.G, inSet)
		},
		Summarize: func(in *Input, outs []int) Summary {
			size := 0
			for _, v := range outs {
				if v != 0 {
					size++
				}
			}
			return Summary{
				Text:    fmt.Sprintf("centralized maximal independent set of size %d", size),
				Metrics: map[string]float64{"size": float64(size)},
			}
		},
	})

	Register(Algorithm[int]{
		Name: "coloring-central",
		Desc: "baseline: gather the graph at node 0, greedy (Delta+1)-coloring, broadcast colors; Theta((m+n)/log n) rounds",
		Node: func(s *comm.Session, in *Input) int {
			color := baseline.CentralizedSolve(s, in.G, func(g *graph.Graph) []uint64 {
				colors, _ := seq.GreedyColoring(g)
				words := make([]uint64, g.N())
				for u, c := range colors {
					words[u] = uint64(c)
				}
				return words
			})
			return int(color)
		},
		Verify: func(in *Input, outs []int) error {
			return verify.Coloring(in.G, outs, in.G.MaxDegree()+1)
		},
		Summarize: func(in *Input, outs []int) Summary {
			used := verify.ColorsUsed(outs)
			return Summary{
				Text: fmt.Sprintf("centralized greedy coloring with %d colors (palette bound %d)",
					used, in.G.MaxDegree()+1),
				Metrics: map[string]float64{
					"colorsUsed": float64(used),
					"palette":    float64(in.G.MaxDegree() + 1),
				},
			}
		},
	})
}
