package algo

import (
	"testing"

	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/faultmodel"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
	"ncc/internal/verify"
)

// misAlgo mirrors the registered "mis" entry as a typed value (the registry
// only exposes the type-erased Descriptor; scenario-level tests cover that
// path).
var misAlgo = Algorithm[bool]{
	Name: "mis-test",
	Node: func(s *comm.Session, in *Input) bool {
		o := core.Orient(s, in.G, core.OrientParams{})
		trees, lhat := core.BroadcastTrees(s, in.G, o)
		return core.MIS(s, in.G, trees, lhat)
	},
	Verify: func(in *Input, outs []bool) error { return verify.MIS(in.G, outs) },
	VerifySurvivors: func(in *Input, outs []bool, alive []bool) error {
		return verify.SurvivorMIS(in.G, outs, alive)
	},
}

// buildPlan compiles a fault spec list against g, failing the test on error.
func buildPlan(t *testing.T, g *graph.Graph, seed int64, specs ...faultmodel.Spec) *faultmodel.Schedule {
	t.Helper()
	s, err := faultmodel.Build(specs, faultmodel.Env{G: g, N: g.N(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDegradedRunProducesReport: killing nodes mid-run must not fail the run;
// it must yield a Result with a DegradationReport, a skipped full verifier,
// and a survivor verdict.
func TestDegradedRunProducesReport(t *testing.T) {
	g := graph.KForest(48, 2, 3)
	plan := buildPlan(t, g, 11, faultmodel.Spec{
		Model:  "crash",
		Params: param.Values{"count": 4, "round": 20},
	})
	cfg := ncc.Config{Seed: 11, MaxRounds: 1 << 17, FaultPlan: plan}
	res, _, err := Run(misAlgo, cfg, g, nil)
	if err != nil {
		t.Fatalf("degraded run failed hard: %v", err)
	}
	rep := res.Degradation
	if rep == nil {
		t.Fatal("faulted run has no degradation report")
	}
	if rep.Unfinished < 4 {
		t.Errorf("unfinished = %d, want >= 4 (the killed nodes)", rep.Unfinished)
	}
	if res.Verified {
		t.Error("degraded run must not claim full verification")
	}
	if rep.ReachableFrac <= 0 || rep.ReachableFrac > 1 {
		t.Errorf("reachableFrac = %v out of (0,1]", rep.ReachableFrac)
	}
	if !rep.SurvivorsOK {
		t.Errorf("survivor verification failed: %s", rep.Detail)
	}
}

// TestFaultFreeRunsUnchanged: without fault injection the Result carries no
// degradation report and verifies as before.
func TestFaultFreeRunsUnchanged(t *testing.T) {
	g := graph.KForest(32, 2, 5)
	res, _, err := Run(misAlgo, ncc.Config{Seed: 5}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation != nil {
		t.Error("reliable run carries a degradation report")
	}
	if !res.Verified {
		t.Errorf("reliable run failed verification: %s", res.VerifyErr)
	}
}

// TestIIDDropAttachesReport: pure message loss with an attached (event-free)
// fault plan still yields a degradation report; when every node finishes, the
// full verifier's verdict is echoed into SurvivorsOK-adjacent fields.
func TestIIDDropAttachesReport(t *testing.T) {
	g := graph.KForest(32, 2, 5)
	plan := buildPlan(t, g, 5, faultmodel.Spec{
		Model:  "iid-drop",
		Params: param.Values{"p": 0.005},
	})
	cfg := ncc.Config{Seed: 5, MaxRounds: 1 << 17, DropProb: plan.DropProb, FaultPlan: plan}
	res, _, err := Run(misAlgo, cfg, g, nil)
	if err != nil {
		t.Fatalf("lossy run failed hard: %v", err)
	}
	if res.Degradation == nil {
		t.Fatal("faulted run has no degradation report")
	}
}
