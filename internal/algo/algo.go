// Package algo is the algorithm registry: every NCC algorithm registers a
// typed descriptor — name, declared parameters, per-node program, built-in
// verifier and result summarizer — and the CLIs, the scenario runner and the
// benchmarks resolve algorithms exclusively through it. Registering an
// algorithm here makes it runnable, sweepable and verifiable everywhere at
// once; there is no other dispatch path.
package algo

import (
	"fmt"
	"sort"
	"strings"

	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

// Input bundles everything a run needs beyond the clique configuration: the
// input graph, the resolved algorithm parameters, the run seed, and any
// derived inputs a Prepare hook materializes (currently edge weights).
type Input struct {
	G      *graph.Graph
	Params param.Values
	Seed   int64

	// Weights is set by weighted algorithms' Prepare hooks (MST derives it
	// from the maxw parameter and Seed+1) and read by their programs.
	Weights *graph.Weighted
}

// Summary is a summarizer's digest of the per-node outputs: a one-line human
// text (without a verification marker — presenters append that) plus named
// machine-readable metrics for tables and JSON records.
type Summary struct {
	Text    string
	Metrics map[string]float64
}

// Algorithm is a typed algorithm descriptor. T is the per-node output type.
type Algorithm[T any] struct {
	Name string
	Desc string
	// Params declares the accepted parameters (may be empty).
	Params []param.Def
	// Prepare, if non-nil, validates parameters against the graph and derives
	// shared inputs (e.g. edge weights) before the clique spins up.
	Prepare func(in *Input) error
	// Node is the SPMD per-node program, run once per node against a fresh
	// comm.Session.
	Node func(s *comm.Session, in *Input) T
	// Verify, if non-nil, checks the collected outputs against a sequential
	// reference; a non-nil error marks the run unverified (it does not abort).
	Verify func(in *Input, outs []T) error
	// Summarize, if non-nil, digests the collected outputs.
	Summarize func(in *Input, outs []T) Summary
}

// Result is what a run produces besides the raw outputs: statistics,
// verification status and the summarizer's digest. It serializes to JSON.
type Result struct {
	Algo      string             `json:"algo"`
	Summary   string             `json:"summary,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Stats     ncc.Stats          `json:"stats"`
	Verified  bool               `json:"verified"`
	VerifyErr string             `json:"verifyError,omitempty"`
}

// Run executes one typed algorithm against a fresh simulation of cfg (whose N
// is forced to g.N()) and returns the result plus the raw per-node outputs.
// Failures of the simulation itself (config errors, round-limit aborts)
// return an error; verification failures only clear Result.Verified.
func Run[T any](a Algorithm[T], cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, []T, error) {
	vals, err := param.Resolve(p, a.Params)
	if err != nil {
		return nil, nil, fmt.Errorf("algorithm %s: %w", a.Name, err)
	}
	cfg.N = g.N()
	in := &Input{G: g, Params: vals, Seed: cfg.Seed}
	if a.Prepare != nil {
		if err := a.Prepare(in); err != nil {
			return nil, nil, fmt.Errorf("algorithm %s: %w", a.Name, err)
		}
	}
	outs, st, err := ncc.Collect(cfg, func(ctx *ncc.Context) T {
		return a.Node(comm.NewSession(ctx), in)
	})
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Algo: a.Name, Stats: st, Verified: true}
	if a.Verify != nil {
		if verr := a.Verify(in, outs); verr != nil {
			res.Verified = false
			res.VerifyErr = verr.Error()
		}
	}
	if a.Summarize != nil {
		s := a.Summarize(in, outs)
		res.Summary = s.Text
		res.Metrics = s.Metrics
	}
	return res, outs, nil
}

// Descriptor is the type-erased registry entry for one algorithm.
type Descriptor struct {
	Name   string
	Desc   string
	Params []param.Def
	run    func(cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, error)
}

// Execute runs the algorithm on g under cfg with parameter bag p.
func (d Descriptor) Execute(cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, error) {
	return d.run(cfg, g, p)
}

var registry = map[string]Descriptor{}

// Register adds a typed algorithm to the registry; duplicate or incomplete
// registrations are programming errors.
func Register[T any](a Algorithm[T]) {
	if a.Name == "" || a.Node == nil {
		panic("algo: Register needs a name and a node program")
	}
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("algo: algorithm %q registered twice", a.Name))
	}
	registry[a.Name] = Descriptor{
		Name:   a.Name,
		Desc:   a.Desc,
		Params: a.Params,
		run: func(cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, error) {
			res, _, err := Run(a, cfg, g, p)
			return res, err
		},
	}
}

// Get looks up a registered algorithm.
func Get(name string) (Descriptor, bool) {
	d, ok := registry[name]
	return d, ok
}

// MustGet is Get for algorithm names fixed at compile time.
func MustGet(name string) Descriptor {
	d, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("algo: unknown algorithm %q", name))
	}
	return d
}

// Names lists registered algorithms in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered algorithm, ordered by name.
func All() []Descriptor {
	out := make([]Descriptor, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// ErrUnknown formats the canonical unknown-algorithm error.
func ErrUnknown(name string) error {
	return fmt.Errorf("unknown algorithm %q (have %s)", name, strings.Join(Names(), ", "))
}
