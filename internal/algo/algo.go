// Package algo is the algorithm registry: every NCC algorithm registers a
// typed descriptor — name, declared parameters, per-node program, built-in
// verifier and result summarizer — and the CLIs, the scenario runner and the
// benchmarks resolve algorithms exclusively through it. Registering an
// algorithm here makes it runnable, sweepable and verifiable everywhere at
// once; there is no other dispatch path.
package algo

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ncc/internal/comm"
	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/param"
)

// Input bundles everything a run needs beyond the clique configuration: the
// input graph, the resolved algorithm parameters, the run seed, and any
// derived inputs a Prepare hook materializes (currently edge weights).
type Input struct {
	G      *graph.Graph
	Params param.Values
	Seed   int64

	// Weights is set by weighted algorithms' Prepare hooks (MST derives it
	// from the maxw parameter and Seed+1) and read by their programs.
	Weights *graph.Weighted
}

// Summary is a summarizer's digest of the per-node outputs: a one-line human
// text (without a verification marker — presenters append that) plus named
// machine-readable metrics for tables and JSON records.
type Summary struct {
	Text    string
	Metrics map[string]float64
}

// Algorithm is a typed algorithm descriptor. T is the per-node output type.
type Algorithm[T any] struct {
	Name string
	Desc string
	// Params declares the accepted parameters (may be empty).
	Params []param.Def
	// Prepare, if non-nil, validates parameters against the graph and derives
	// shared inputs (e.g. edge weights) before the clique spins up.
	Prepare func(in *Input) error
	// Node is the SPMD per-node program, run once per node against a fresh
	// comm.Session.
	Node func(s *comm.Session, in *Input) T
	// Verify, if non-nil, checks the collected outputs against a sequential
	// reference; a non-nil error marks the run unverified (it does not abort).
	Verify func(in *Input, outs []T) error
	// VerifySurvivors, if non-nil, checks a degraded run's outputs restricted
	// to the alive nodes (alive[u] is false for nodes that crashed, never
	// finished, or ended out of service — their outs entries are zero values
	// and must not be trusted). It asserts the fault-tolerant contract: the
	// survivors' outputs are mutually consistent even though global properties
	// (spanning, maximality) may have been lost with the dead nodes.
	VerifySurvivors func(in *Input, outs []T, alive []bool) error
	// Summarize, if non-nil, digests the collected outputs.
	Summarize func(in *Input, outs []T) Summary
}

// DegradationReport quantifies how a faulted run degraded instead of failing:
// how much of the clique survived, how much of the graph the survivors still
// cover, and whether the surviving outputs are consistent. It is attached to
// every Result whose run had fault injection enabled, degraded or not.
type DegradationReport struct {
	// Unfinished and DownAtEnd count the nodes of Stats' same-named sets.
	Unfinished int `json:"unfinished"`
	DownAtEnd  int `json:"downAtEnd"`
	// NodeFailures counts node programs retired by failure isolation.
	NodeFailures int64 `json:"nodeFailures,omitempty"`
	// Partial marks a run that hit the round limit under faults: treated as
	// a degraded completion (the outputs collected so far), not a failure.
	Partial bool `json:"partial,omitempty"`
	// ReachableFrac is the fraction of all nodes in the largest connected
	// component of the subgraph induced by the alive nodes — how much of the
	// input graph the survivors can still jointly compute on.
	ReachableFrac float64 `json:"reachableFrac"`
	// SurvivorsOK reports whether the survivor verifier accepted the alive
	// nodes' outputs (the full verifier's verdict when the run did not
	// degrade and no survivor verifier is registered).
	SurvivorsOK bool   `json:"survivorsOk"`
	Detail      string `json:"detail,omitempty"`
}

// Result is what a run produces besides the raw outputs: statistics,
// verification status and the summarizer's digest. It serializes to JSON.
type Result struct {
	Algo        string             `json:"algo"`
	Summary     string             `json:"summary,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Stats       ncc.Stats          `json:"stats"`
	Verified    bool               `json:"verified"`
	VerifyErr   string             `json:"verifyError,omitempty"`
	Degradation *DegradationReport `json:"degradation,omitempty"`
}

// Run executes one typed algorithm against a fresh simulation of cfg (whose N
// is forced to g.N()) and returns the result plus the raw per-node outputs.
// Failures of the simulation itself (config errors, round-limit aborts on a
// reliable network) return an error; verification failures only clear
// Result.Verified.
//
// Under fault injection (a FaultPlan, DropProb, or Interceptor in cfg) the
// contract shifts from fail-hard to degrade: a round-limit abort is treated
// as a partial completion, a run with unfinished nodes skips the full
// verifier and summarizer (dead nodes' outputs are zero values the hooks
// were never written to tolerate), and every faulted Result carries a
// DegradationReport with the surviving-component size and the survivor
// verifier's verdict.
func Run[T any](a Algorithm[T], cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, []T, error) {
	vals, err := param.Resolve(p, a.Params)
	if err != nil {
		return nil, nil, fmt.Errorf("algorithm %s: %w", a.Name, err)
	}
	cfg.N = g.N()
	in := &Input{G: g, Params: vals, Seed: cfg.Seed}
	if a.Prepare != nil {
		if err := a.Prepare(in); err != nil {
			return nil, nil, fmt.Errorf("algorithm %s: %w", a.Name, err)
		}
	}
	faulty := cfg.FaultPlan != nil || cfg.DropProb > 0 || cfg.Interceptor != nil
	outs, st, err := ncc.Collect(cfg, func(ctx *ncc.Context) T {
		return a.Node(comm.NewSession(ctx), in)
	})
	partial := false
	if err != nil {
		if !faulty || !errors.Is(err, ncc.ErrMaxRounds) {
			return nil, nil, err
		}
		partial = true // collected outputs are best-effort; degrade, don't fail
	}
	res := &Result{Algo: a.Name, Stats: st, Verified: true}
	degraded := partial || len(st.Unfinished) > 0
	if degraded {
		res.Verified = false
		res.VerifyErr = fmt.Sprintf("degraded run: %d unfinished nodes, %d down at end (partial=%v)",
			len(st.Unfinished), len(st.DownAtEnd), partial)
	} else {
		if a.Verify != nil {
			if verr := a.Verify(in, outs); verr != nil {
				res.Verified = false
				res.VerifyErr = verr.Error()
			}
		}
		if a.Summarize != nil {
			s := a.Summarize(in, outs)
			res.Summary = s.Text
			res.Metrics = s.Metrics
		}
	}
	if faulty {
		res.Degradation = degradation(a, in, outs, st, partial, res.Verified, !degraded && a.Verify != nil)
	}
	return res, outs, nil
}

// degradation assembles the DegradationReport for a faulted run.
func degradation[T any](a Algorithm[T], in *Input, outs []T, st ncc.Stats, partial, verified, fullRan bool) *DegradationReport {
	n := in.G.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for _, id := range st.Unfinished {
		alive[id] = false
	}
	for _, id := range st.DownAtEnd {
		alive[id] = false
	}
	rep := &DegradationReport{
		Unfinished:    len(st.Unfinished),
		DownAtEnd:     len(st.DownAtEnd),
		NodeFailures:  st.NodeFailures,
		Partial:       partial,
		ReachableFrac: reachableFrac(in.G, alive),
	}
	switch {
	case a.VerifySurvivors != nil:
		if err := a.VerifySurvivors(in, outs, alive); err != nil {
			rep.Detail = err.Error()
		} else {
			rep.SurvivorsOK = true
		}
	case fullRan:
		// The run did not degrade, so the full verifier's verdict covers the
		// (complete) survivor set.
		rep.SurvivorsOK = verified
	default:
		rep.Detail = "no survivor verifier registered"
	}
	return rep
}

// reachableFrac returns |largest connected component of the alive-induced
// subgraph| / n.
func reachableFrac(g *graph.Graph, alive []bool) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	seen := make([]bool, n)
	best := 0
	var stack []int
	for s := 0; s < n; s++ {
		if seen[s] || !alive[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		size := 0
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, v32 := range g.Neighbors(u) {
				v := int(v32)
				if alive[v] && !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		best = max(best, size)
	}
	return float64(best) / float64(n)
}

// Descriptor is the type-erased registry entry for one algorithm.
type Descriptor struct {
	Name   string
	Desc   string
	Params []param.Def
	run    func(cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, error)
}

// Execute runs the algorithm on g under cfg with parameter bag p.
func (d Descriptor) Execute(cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, error) {
	return d.run(cfg, g, p)
}

var registry = map[string]Descriptor{}

// Register adds a typed algorithm to the registry; duplicate or incomplete
// registrations are programming errors.
func Register[T any](a Algorithm[T]) {
	if a.Name == "" || a.Node == nil {
		panic("algo: Register needs a name and a node program")
	}
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("algo: algorithm %q registered twice", a.Name))
	}
	registry[a.Name] = Descriptor{
		Name:   a.Name,
		Desc:   a.Desc,
		Params: a.Params,
		run: func(cfg ncc.Config, g *graph.Graph, p param.Values) (*Result, error) {
			res, _, err := Run(a, cfg, g, p)
			return res, err
		},
	}
}

// Get looks up a registered algorithm.
func Get(name string) (Descriptor, bool) {
	d, ok := registry[name]
	return d, ok
}

// MustGet is Get for algorithm names fixed at compile time.
func MustGet(name string) Descriptor {
	d, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("algo: unknown algorithm %q", name))
	}
	return d
}

// Names lists registered algorithms in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered algorithm, ordered by name.
func All() []Descriptor {
	out := make([]Descriptor, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// ErrUnknown formats the canonical unknown-algorithm error.
func ErrUnknown(name string) error {
	return fmt.Errorf("unknown algorithm %q (have %s)", name, strings.Join(Names(), ", "))
}
