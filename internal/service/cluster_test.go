package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ncc/internal/algo"
	"ncc/internal/comm"
	"ncc/internal/service"
)

// slow-test is a test-only algorithm with a deterministic result and a
// deliberately slow wall clock (a per-round sleep over a fixed round count),
// so the failover test can kill a worker while a sweep is genuinely mid-run
// and still compare the final stream byte-for-byte against a local run.
func init() {
	algo.Register(algo.Algorithm[int]{
		Name: "slow-test",
		Desc: "test-only: fixed round count with a per-round sleep",
		Node: func(s *comm.Session, in *algo.Input) int {
			for r := 0; r < 30; r++ {
				s.Ctx.EndRound()
				time.Sleep(time.Millisecond)
			}
			return 0
		},
	})
}

const slowSweepJSON = `{"name":"slow","algo":"slow-test","graph":{"family":"kforest","params":{"n":16,"k":2},"seed":1},"model":{"capfactor":4,"seed":1},"sweep":{"seeds":[1,2,3,4,5,6,7,8]}}`

// faultSweepJSON carries a fault-plan block: fault schedules are derived from
// each run's seed, so the cluster stream (including redispatch and cache
// replay) must stay byte-identical to a local run even with nodes crashing.
const faultSweepJSON = `{"name":"faulted","algo":"mis","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":7},"model":{"seed":11,"maxrounds":131072},"faults":{"models":[{"model":"crash","params":{"count":3,"round":20}}]},"sweep":{"seeds":[1,2,3]}}`

func newCoordinator(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	svc, err := service.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		svc.Drain(ctx)
		ts.Close()
	})
	return ts
}

// registerWorker registers a worker daemon with the coordinator directly (the
// test plays the heartbeat loop, so a "crashed" worker stays registered until
// the coordinator notices on its own).
func registerWorker(t *testing.T, coord, name, url string, capacity int) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"url":%q,"capacity":%d}`, name, url, capacity)
	resp, err := http.Post(coord+"/v1/workers", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registering %s: status %d", name, resp.StatusCode)
	}
}

func waitRecords(t *testing.T, base, id string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if info := jobInfo(t, base, id); info.Records >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %d records", id, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterEndToEnd is the basic cluster acceptance path: a coordinator
// with two registered workers streams a submitted sweep byte-identical to a
// local run, reports both workers live with per-worker dispatch counters, and
// answers the identical re-submission from its own result cache.
func TestClusterEndToEnd(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute})
	w1 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	w2 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	registerWorker(t, coord.URL, "w1", w1.URL, 1)
	registerWorker(t, coord.URL, "w2", w2.URL, 1)

	want := localLines(t, sweepJSON)
	info := submit(t, coord.URL, sweepJSON)
	got := fetch(t, coord.URL+"/v1/jobs/"+info.ID+"/records")
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster stream differs from local run:\nlocal:  %q\ncluster: %q", want, got)
	}
	if n := metricValue(t, coord.URL, "nccd_workers_live"); n != 2 {
		t.Fatalf("nccd_workers_live = %g, want 2", n)
	}
	// Exactly one dispatch attempt happened, attributed to one worker.
	metrics := string(fetch(t, coord.URL+"/metrics"))
	if !strings.Contains(metrics, `nccd_worker_jobs_total{worker="w1"} 1`) &&
		!strings.Contains(metrics, `nccd_worker_jobs_total{worker="w2"} 1`) {
		t.Fatalf("no per-worker dispatch counter at 1:\n%s", metrics)
	}

	info2 := submit(t, coord.URL, sweepJSON)
	if !info2.Cached {
		t.Fatal("identical re-submission missed the coordinator's result cache")
	}
	if got2 := fetch(t, coord.URL+"/v1/jobs/"+info2.ID+"/records"); !bytes.Equal(got2, want) {
		t.Fatal("cached cluster stream differs from the original")
	}
}

// TestClusterFaultedSweepByteIdentity pins the fault-model determinism
// contract across the service plane: a sweep whose runs crash nodes under a
// seeded fault plan streams byte-identical records from the cluster and from
// the coordinator's cache replay, because schedules derive from the run seed
// rather than from wall-clock or executor identity. Every record must carry a
// degradation report with a clean survivor verdict.
func TestClusterFaultedSweepByteIdentity(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute})
	w1 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 2})
	w2 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 2})
	registerWorker(t, coord.URL, "w1", w1.URL, 1)
	registerWorker(t, coord.URL, "w2", w2.URL, 1)

	want := localLines(t, faultSweepJSON)
	info := submit(t, coord.URL, faultSweepJSON)
	got := fetch(t, coord.URL+"/v1/jobs/"+info.ID+"/records")
	if !bytes.Equal(got, want) {
		t.Fatalf("faulted cluster stream differs from local run:\nlocal:   %q\ncluster: %q", want, got)
	}
	for i, line := range bytes.Split(bytes.TrimSpace(got), []byte("\n")) {
		var rec struct {
			Error       string `json:"error"`
			Degradation *struct {
				SurvivorsOK bool `json:"survivorsOk"`
			} `json:"degradation"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Error != "" {
			t.Fatalf("record %d errored: %s", i, rec.Error)
		}
		if rec.Degradation == nil {
			t.Fatalf("record %d: faulted run carries no degradation report", i)
		}
		if !rec.Degradation.SurvivorsOK {
			t.Fatalf("record %d: survivor verdict not clean", i)
		}
	}

	info2 := submit(t, coord.URL, faultSweepJSON)
	if !info2.Cached {
		t.Fatal("identical faulted re-submission missed the coordinator's result cache")
	}
	if got2 := fetch(t, coord.URL+"/v1/jobs/"+info2.ID+"/records"); !bytes.Equal(got2, want) {
		t.Fatal("cached faulted stream differs from the original")
	}
}

// TestClusterFailoverMidRun is the tentpole acceptance criterion: kill the
// worker that is executing a sweep mid-run and the coordinator re-dispatches
// the job to the surviving worker, with the client-visible NDJSON stream
// byte-identical to a local `nccrun -json` run — the replayed deterministic
// prefix is skipped, not duplicated.
func TestClusterFailoverMidRun(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute, JobAttempts: 3})
	w1 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	w2 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	registerWorker(t, coord.URL, "w1", w1.URL, 1)
	registerWorker(t, coord.URL, "w2", w2.URL, 1)

	want := localLines(t, slowSweepJSON)
	info := submit(t, coord.URL, slowSweepJSON)
	waitRecords(t, coord.URL, info.ID, 1, 30*time.Second)

	// The whole sweep runs on one worker; find which and kill it mid-run.
	victim, survivorName := w1, "w2"
	var vlist struct {
		Jobs []service.JobInfo `json:"jobs"`
	}
	if err := json.Unmarshal(fetch(t, w2.URL+"/v1/jobs?state=running"), &vlist); err != nil {
		t.Fatal(err)
	}
	if len(vlist.Jobs) > 0 {
		victim, survivorName = w2, "w1"
	}
	victim.CloseClientConnections()
	victim.Close()

	waitState(t, coord.URL, info.ID, service.StateDone, 60*time.Second)
	got := fetch(t, coord.URL+"/v1/jobs/"+info.ID+"/records")
	if !bytes.Equal(got, want) {
		t.Fatalf("post-failover stream differs from local run:\nlocal:   %q\ncluster: %q", want, got)
	}
	// The dead worker was dropped from the registry on the broken stream.
	if n := metricValue(t, coord.URL, "nccd_workers_live"); n != 1 {
		t.Fatalf("nccd_workers_live = %g after the kill, want 1", n)
	}
	metrics := string(fetch(t, coord.URL+"/metrics"))
	if !strings.Contains(metrics, fmt.Sprintf("nccd_worker_jobs_total{worker=%q} 1", survivorName)) {
		t.Fatalf("survivor %s has no dispatch attempt:\n%s", survivorName, metrics)
	}
}

// TestClusterQueuedUntilWorkerJoins submits to an empty cluster: the job
// waits in the queue (no capacity anywhere), then runs as soon as the first
// worker registers.
func TestClusterQueuedUntilWorkerJoins(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute})
	want := localLines(t, sweepJSON)

	info := submit(t, coord.URL, sweepJSON)
	time.Sleep(50 * time.Millisecond)
	if st := jobInfo(t, coord.URL, info.ID).State; st != service.StateQueued {
		t.Fatalf("job state with no workers = %q, want queued", st)
	}
	w := newTestServer(t, service.Config{WorkerBudget: 2})
	registerWorker(t, coord.URL, "w1", w.URL, 2)
	waitState(t, coord.URL, info.ID, service.StateDone, 30*time.Second)
	if got := fetch(t, coord.URL+"/v1/jobs/"+info.ID+"/records"); !bytes.Equal(got, want) {
		t.Fatal("stream differs from local run after late worker join")
	}
}

// TestClusterCancelPropagates cancels a coordinator job whose run never ends
// on its own: the coordinator job flips to canceled AND the cancel reaches
// the worker's engine (its own job terminates too, instead of spinning to
// MaxRounds).
func TestClusterCancelPropagates(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute})
	w := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	registerWorker(t, coord.URL, "w1", w.URL, 1)

	info := submit(t, coord.URL, spinJSON)
	waitState(t, coord.URL, info.ID, service.StateRunning, 10*time.Second)
	// Wait for the worker to actually be running it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var list struct {
			Jobs []service.JobInfo `json:"jobs"`
		}
		if err := json.Unmarshal(fetch(t, w.URL+"/v1/jobs?state=running"), &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never started the proxied job")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, coord.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, coord.URL, info.ID, service.StateCanceled, 10*time.Second)

	// The worker-side job unwinds through its engine's abort path.
	deadline = time.Now().Add(10 * time.Second)
	for {
		var list struct {
			Jobs []service.JobInfo `json:"jobs"`
		}
		if err := json.Unmarshal(fetch(t, w.URL+"/v1/jobs?state=canceled"), &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never propagated to the worker's job")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerExpiryAndDeregister covers registry membership: a worker that
// stops heartbeating is expired after the TTL, and DELETE /v1/workers/{name}
// removes one immediately.
func TestWorkerExpiryAndDeregister(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: 100 * time.Millisecond})
	registerWorker(t, coord.URL, "ephemeral", "http://127.0.0.1:1", 1)
	if n := metricValue(t, coord.URL, "nccd_workers_live"); n != 1 {
		t.Fatalf("nccd_workers_live = %g after registration, want 1", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, coord.URL, "nccd_workers_live") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	registerWorker(t, coord.URL, "explicit", "http://127.0.0.1:1", 1)
	req, err := http.NewRequest(http.MethodDelete, coord.URL+"/v1/workers/explicit", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d, want 200", resp.StatusCode)
	}
	if n := metricValue(t, coord.URL, "nccd_workers_live"); n != 0 {
		t.Fatalf("nccd_workers_live = %g after deregister, want 0", n)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double deregister: status %d, want 404", resp.StatusCode)
	}
}

// TestJoinerLifecycle drives the worker-side membership loop end to end:
// Joiner registers (workers_live 1), heartbeats keep it alive past several
// TTLs, and context cancellation deregisters it promptly — no TTL wait.
func TestJoinerLifecycle(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: 250 * time.Millisecond})
	w := newTestServer(t, service.Config{WorkerBudget: 2})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jn := &service.Joiner{
		Coordinator: coord.URL,
		Self:        w.URL,
		Name:        "joined",
		Capacity:    2,
		Interval:    50 * time.Millisecond,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		jn.Run(ctx)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, coord.URL, "nccd_workers_live") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Survive several TTL windows on heartbeats alone.
	time.Sleep(600 * time.Millisecond)
	if n := metricValue(t, coord.URL, "nccd_workers_live"); n != 1 {
		t.Fatalf("nccd_workers_live = %g under active heartbeats, want 1", n)
	}

	cancel()
	<-done
	// Deregistration is immediate (well inside one TTL).
	if n := metricValue(t, coord.URL, "nccd_workers_live"); n != 0 {
		t.Fatalf("nccd_workers_live = %g right after Joiner shutdown, want 0", n)
	}
}

// TestJoinerBacksOffWhenCoordinatorUnreachable: a failing coordinator must
// not be hammered at the heartbeat period — registration retries back off
// exponentially (with jitter) up to a cap, and a recovered coordinator gets
// the worker back.
func TestJoinerBacksOffWhenCoordinatorUnreachable(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	failing := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if failing {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	registered := make(chan struct{}, 1)
	jn := &service.Joiner{
		Coordinator: srv.URL,
		Self:        "http://127.0.0.1:0",
		Name:        "backoff-test",
		Interval:    20 * time.Millisecond,
		Logf: func(format string, args ...any) {
			if strings.HasPrefix(format, "registered") {
				select {
				case registered <- struct{}{}:
				default:
				}
			}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		jn.Run(ctx)
	}()

	// While failing, the retry gaps grow: minimum gaps are interval, then
	// 2*interval, then the 4x cap... so 1.2s admits at most ~14 attempts
	// (a plain 20ms ticker would make 50+).
	time.Sleep(1200 * time.Millisecond)
	mu.Lock()
	failures := attempts
	failing = false
	mu.Unlock()
	if failures >= 25 {
		t.Errorf("joiner made %d attempts in 1.2s against a dead coordinator; backoff is not applied", failures)
	}
	select {
	case <-registered:
	case <-time.After(5 * time.Second):
		t.Error("joiner never re-registered after the coordinator recovered")
	}
	cancel()
	<-done
}
