package service

import (
	"errors"
	"fmt"
	"sync"

	"ncc/internal/scenario"
)

// ErrDraining rejects submissions while the server is shutting down.
var ErrDraining = errors.New("draining, not accepting jobs")

// JobStore owns job lifecycle bookkeeping: identity assignment, the job
// index, in-flight coalescing by canonical scenario hash, retention pruning,
// and the drain flag. It is execution-agnostic — the same store backs a
// single-process daemon (LocalBackend) and a cluster coordinator
// (RemoteBackend), because a Job is just an append-only record log plus a
// state machine, however the records are produced.
type JobStore struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job
	byHash   map[string]*Job // latest executing job per canonical hash
	nextID   int
	retain   int
	draining bool
}

func newJobStore(retain int) *JobStore {
	return &JobStore{
		jobs:   map[string]*Job{},
		byHash: map[string]*Job{},
		retain: retain,
	}
}

// Admit registers a submission under the store lock, atomically with respect
// to coalescing and drain. An identical live job (same hash, not terminal) is
// returned with coalesced = true and nothing new is created. With hit set,
// the new job completes immediately from cachedLines and cachedTrace;
// otherwise start — the backend's Submit — runs while the lock is held (so
// two racing identical submissions cannot both enqueue), and its error aborts
// the admission.
func (st *JobStore) Admit(sc scenario.Scenario, hash string, cachedLines, cachedTrace [][]byte, hit bool, start func(*Job) error) (j *Job, coalesced bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.draining {
		return nil, false, ErrDraining
	}
	// In-flight coalescing: an identical scenario already queued or running
	// is the same computation — hand back that job (its stream delivers
	// exactly the records this submission would produce) instead of burning
	// a second executor on it. Terminal non-done jobs (canceled, failed)
	// don't count; a fresh submission retries those.
	if prev, ok := st.byHash[hash]; ok {
		if info := prev.Info(); !info.State.terminal() {
			return prev, true, nil
		}
	}
	st.nextID++
	j = newJob(fmt.Sprintf("j%06d", st.nextID), hash, sc)
	if hit {
		j.completeFromCache(cachedLines, cachedTrace)
	} else {
		if err := start(j); err != nil {
			st.nextID--
			return nil, false, err
		}
		st.byHash[hash] = j
	}
	st.jobs[j.ID] = j
	st.order = append(st.order, j)
	st.pruneLocked()
	return j, false, nil
}

// pruneLocked forgets the oldest terminal jobs once the retention bound is
// exceeded, so a long-running daemon's memory stays proportional to the
// bound, not to its lifetime submission count. Live jobs are never pruned;
// completed results survive in the result cache. Callers hold st.mu.
func (st *JobStore) pruneLocked() {
	excess := len(st.order) - st.retain
	if excess <= 0 {
		return
	}
	kept := st.order[:0]
	for _, j := range st.order {
		if excess > 0 && j.Info().State.terminal() {
			delete(st.jobs, j.ID)
			if st.byHash[j.Hash] == j {
				delete(st.byHash, j.Hash)
			}
			excess--
			continue
		}
		kept = append(kept, j)
	}
	clear(st.order[len(kept):])
	st.order = kept
}

// Get returns the job with the given id, if it is still retained.
func (st *JobStore) Get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// List snapshots jobs in submission order. A non-empty state keeps only jobs
// currently in that state; limit > 0 keeps only the most recent that many
// (applied after the filter).
func (st *JobStore) List(state State, limit int) []JobInfo {
	st.mu.Lock()
	infos := make([]JobInfo, 0, len(st.order))
	for _, j := range st.order {
		info := j.Info()
		if state != "" && info.State != state {
			continue
		}
		infos = append(infos, info)
	}
	st.mu.Unlock()
	if limit > 0 && len(infos) > limit {
		infos = infos[len(infos)-limit:]
	}
	return infos
}

// CancelAll cancels every retained job (terminal jobs are unaffected). Drain
// uses it when the grace period expires.
func (st *JobStore) CancelAll() {
	st.mu.Lock()
	jobs := append([]*Job(nil), st.order...)
	st.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

// SetDraining flips the store into drain mode: Admit refuses everything.
func (st *JobStore) SetDraining() {
	st.mu.Lock()
	st.draining = true
	st.mu.Unlock()
}

// Draining reports whether the store refuses submissions.
func (st *JobStore) Draining() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.draining
}
