package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// WorkerInfo is the JSON view of a registered worker (GET /v1/workers).
type WorkerInfo struct {
	Name     string    `json:"name"`
	URL      string    `json:"url"`
	Capacity int       `json:"capacity"`
	Inflight int       `json:"inflight"`
	LastSeen time.Time `json:"lastSeen"`
}

// remoteWorker is one registered worker daemon. gone is closed exactly once —
// on heartbeat expiry, explicit deregistration, or a dispatch failure — and
// aborts every in-flight proxy request to the worker, so a dead worker's jobs
// re-dispatch promptly instead of stalling until their streams time out.
type remoteWorker struct {
	name     string
	url      string
	capacity int
	inflight int
	lastSeen time.Time
	joined   time.Time
	gone     chan struct{}
}

func (w *remoteWorker) free() int { return w.capacity - w.inflight }

// workerRegistry tracks live workers and hands out job slots. Placement is
// capacity-aware: acquire picks the live worker with the most free slots
// (ties broken by registration order), so jobs pulled FIFO from the queue
// spread across the fleet in proportion to each worker's advertised executor
// capacity.
type workerRegistry struct {
	mu      sync.Mutex
	cond    sync.Cond
	workers map[string]*remoteWorker // keyed by worker name
	ttl     time.Duration
}

func newWorkerRegistry(ttl time.Duration) *workerRegistry {
	r := &workerRegistry{workers: map[string]*remoteWorker{}, ttl: ttl}
	r.cond.L = &r.mu
	return r
}

// register upserts a worker; the same POST is registration and heartbeat. A
// re-registration under the same name but a new URL replaces the old entry
// (its in-flight proxies abort and re-dispatch).
func (r *workerRegistry) register(name, rawURL string, capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[name]; ok {
		if w.url == rawURL {
			w.lastSeen = now
			w.capacity = capacity
			r.cond.Broadcast()
			return
		}
		close(w.gone)
	}
	r.workers[name] = &remoteWorker{
		name:     name,
		url:      rawURL,
		capacity: capacity,
		lastSeen: now,
		joined:   now,
		gone:     make(chan struct{}),
	}
	r.cond.Broadcast()
}

// remove deregisters a worker by name, waking its in-flight proxies so their
// jobs re-dispatch. Reports whether the worker was registered.
func (r *workerRegistry) remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[name]
	if !ok {
		return false
	}
	close(w.gone)
	delete(r.workers, name)
	r.cond.Broadcast()
	return true
}

// fail drops a worker after a dispatch error (connection refused, broken
// stream). If the worker is actually alive it re-registers on its next
// heartbeat with a clean slate; if it is dead this beats waiting out the TTL.
func (r *workerRegistry) fail(w *remoteWorker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.workers[w.name]; ok && cur == w {
		close(w.gone)
		delete(r.workers, w.name)
		r.cond.Broadcast()
	}
}

// expire drops every worker whose last heartbeat is older than the TTL.
func (r *workerRegistry) expire() {
	cutoff := time.Now().Add(-r.ttl)
	r.mu.Lock()
	defer r.mu.Unlock()
	expired := false
	for name, w := range r.workers {
		if w.lastSeen.Before(cutoff) {
			close(w.gone)
			delete(r.workers, name)
			expired = true
		}
	}
	if expired {
		r.cond.Broadcast()
	}
}

// acquire blocks until a live worker has a free slot, reserves the slot, and
// returns the worker — or nil once cancel fires. Among workers with free
// slots it prefers the most free capacity, then the earliest joined.
func (r *workerRegistry) acquire(cancel <-chan struct{}) *remoteWorker {
	stop := make(chan struct{})
	defer close(stop)
	if cancel != nil {
		go func() {
			select {
			case <-cancel:
				r.mu.Lock()
				r.cond.Broadcast()
				r.mu.Unlock()
			case <-stop:
			}
		}()
	}
	canceled := func() bool {
		if cancel == nil {
			return false
		}
		select {
		case <-cancel:
			return true
		default:
			return false
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if canceled() {
			return nil
		}
		var best *remoteWorker
		for _, w := range r.workers {
			if w.free() <= 0 {
				continue
			}
			if best == nil || w.free() > best.free() ||
				(w.free() == best.free() && w.joined.Before(best.joined)) {
				best = w
			}
		}
		if best != nil {
			best.inflight++
			return best
		}
		r.cond.Wait()
	}
}

// release returns a slot reserved by acquire.
func (r *workerRegistry) release(w *remoteWorker) {
	r.mu.Lock()
	w.inflight--
	r.cond.Broadcast()
	r.mu.Unlock()
}

// snapshot lists the live workers for /v1/workers and /metrics, sorted by
// registration order.
func (r *workerRegistry) snapshot() []WorkerInfo {
	r.mu.Lock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerInfo{
			Name:     w.name,
			URL:      w.url,
			Capacity: w.capacity,
			Inflight: w.inflight,
			LastSeen: w.lastSeen,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sums reports the fleet's total and free job slots (metrics).
func (r *workerRegistry) sums() (total, free int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		total += w.capacity
		if f := w.free(); f > 0 {
			free += f
		}
	}
	return total, free
}

// RemoteBackend is the coordinator's ExecBackend: it holds no executors of
// its own, instead sharding queued jobs across registered worker daemons and
// proxying each job's NDJSON record stream back into the Job's line log —
// byte-identical to a local run, because workers stream the same marshaled
// Records a LocalBackend produces. When a worker dies mid-run (broken stream,
// missed heartbeats, deregistration) the job is re-dispatched to another
// worker: execution is deterministic and idempotent (keyed by the canonical
// scenario hash, deduped by the worker's own coalescing cache), so the retry
// replays an identical stream and the proxy skips the lines it already has.
type RemoteBackend struct {
	cfg      Config
	m        *metrics
	cache    CacheTier
	reg      *workerRegistry
	queue    chan *Job
	client   *http.Client
	wg       sync.WaitGroup // dispatcher + in-flight proxies
	stopScan chan struct{}  // stops the heartbeat-expiry loop
}

func newRemoteBackend(cfg Config, c CacheTier, m *metrics) *RemoteBackend {
	b := &RemoteBackend{
		cfg:      cfg,
		m:        m,
		cache:    c,
		reg:      newWorkerRegistry(cfg.WorkerTTL),
		queue:    make(chan *Job, cfg.QueueLimit),
		client:   newClusterClient(),
		stopScan: make(chan struct{}),
	}
	b.wg.Add(1)
	go b.dispatcher()
	go b.expiryLoop()
	return b
}

// newClusterClient builds the coordinator→worker HTTP client. Job record
// streams are long-lived, so there is no whole-request timeout; instead the
// transport bounds the two places a dead worker could hang a dispatch
// forever: establishing the connection and waiting for response headers.
// Stalls after the headers are handled by the heartbeat expiry path, which
// cancels and re-dispatches the jobs of a worker that stops heartbeating.
func newClusterClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: 15 * time.Second,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   8,
		},
	}
}

// expiryLoop sweeps the registry for workers that missed their heartbeats.
func (b *RemoteBackend) expiryLoop() {
	interval := max(b.cfg.WorkerTTL/4, 10*time.Millisecond)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			b.reg.expire()
		case <-b.stopScan:
			return
		}
	}
}

// authorize attaches the shared cluster token to a coordinator→worker request;
// workers run the same bearer guard as the coordinator.
func (b *RemoteBackend) authorize(req *http.Request) {
	if b.cfg.ClusterToken != "" {
		req.Header.Set("Authorization", "Bearer "+b.cfg.ClusterToken)
	}
}

// Submit enqueues a job for dispatch without blocking.
func (b *RemoteBackend) Submit(j *Job) error {
	select {
	case b.queue <- j:
		b.m.jobsQueued.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

// Capacity reports the fleet's total and free job slots.
func (b *RemoteBackend) Capacity() (total, free int) {
	return b.reg.sums()
}

// dispatcher assigns queued jobs to workers strictly FIFO: each job blocks
// until the fleet has a free slot (capacity-aware placement happens inside
// acquire), then proxies on its own goroutine so streams overlap.
func (b *RemoteBackend) dispatcher() {
	defer b.wg.Done()
	for j := range b.queue {
		b.m.jobsQueued.Add(-1)
		// A twin of this job may have completed while it sat in the queue
		// (admission only checks the cache once, before enqueueing). Serving
		// the landed result here skips the dispatch entirely — no worker slot,
		// no proxy stream — which matters most for campaigns, whose deduped
		// units frequently re-enqueue recently finished hashes.
		if lines, trace, ok := b.cache.get(j.Hash); ok {
			if j.completeFromCache(lines, trace) {
				b.m.dispatchCacheHits.Add(1)
				b.m.jobsDone.Add(1)
				continue
			}
			b.m.jobsCanceled.Add(1)
			continue
		}
		w := b.reg.acquire(j.cancel)
		if w == nil {
			// Canceled while waiting for a slot; Job.Cancel already flipped
			// the queued job to canceled.
			b.m.jobsCanceled.Add(1)
			continue
		}
		if !j.setRunning() {
			b.reg.release(w)
			b.m.jobsCanceled.Add(1)
			continue
		}
		b.m.jobsRunning.Add(1)
		b.cfg.Logger.Info("job dispatched", "job", j.ID, "trace", j.TraceID, "worker", w.name)
		b.wg.Add(1)
		go b.proxyLoop(j, w)
	}
}

// proxyLoop drives one job to a terminal state, re-dispatching across worker
// failures up to the attempt bound. The worker slot passed in is already
// reserved.
func (b *RemoteBackend) proxyLoop(j *Job, w *remoteWorker) {
	defer b.wg.Done()
	defer b.m.jobsRunning.Add(-1)
	dispatched := time.Now()
	for attempt := 1; ; attempt++ {
		state, msg, err := b.runOn(j, w)
		b.reg.release(w)
		if err == nil {
			if state == StateDone {
				b.m.dispatchLatency.observeSince(dispatched)
			}
			b.finishJob(j, state, msg)
			return
		}
		// The dispatch failed below the job level: drop the worker (it
		// re-registers on its next heartbeat if it is actually alive) and try
		// the job elsewhere.
		b.cfg.Logger.Warn("dispatch attempt failed", "job", j.ID, "trace", j.TraceID, "worker", w.name, "attempt", attempt, "err", err)
		b.reg.fail(w)
		if j.canceled() {
			b.finishJob(j, StateCanceled, "")
			return
		}
		if attempt >= b.cfg.JobAttempts {
			b.finishJob(j, StateFailed, fmt.Sprintf("dispatch attempt %d/%d on worker %s: %v", attempt, b.cfg.JobAttempts, w.name, err))
			return
		}
		if w = b.reg.acquire(j.cancel); w == nil {
			b.finishJob(j, StateCanceled, "")
			return
		}
	}
}

func (b *RemoteBackend) finishJob(j *Job, state State, msg string) {
	j.finish(state, msg)
	switch state {
	case StateDone:
		b.m.jobsDone.Add(1)
		b.cfg.Logger.Info("job done", "job", j.ID, "trace", j.TraceID, "records", j.lineCount())
		lines, trace := j.resultLines()
		if err := b.cache.put(j.Hash, lines, trace); err != nil {
			b.m.cacheWriteErrors.Add(1)
		}
	case StateFailed:
		b.m.jobsFailed.Add(1)
		b.cfg.Logger.Error("job failed", "job", j.ID, "trace", j.TraceID, "cause", msg)
	case StateCanceled:
		b.m.jobsCanceled.Add(1)
		b.cfg.Logger.Info("job canceled", "job", j.ID, "trace", j.TraceID)
	}
}

// runOn executes one dispatch attempt of j on w: submit the scenario, tail
// the record stream into the job's line log (skipping the replay prefix on a
// retry), and map the worker job's terminal state onto the coordinator job.
// A nil error means the job reached the returned terminal state; a non-nil
// error means the attempt failed for reasons a different worker may fix.
func (b *RemoteBackend) runOn(j *Job, w *remoteWorker) (State, string, error) {
	if j.canceled() {
		return StateCanceled, "", nil
	}
	wm := b.m.worker(w.name)
	wm.jobs.Add(1)

	body, err := json.Marshal(j.Scenario)
	if err != nil {
		return StateFailed, fmt.Sprintf("encoding scenario: %v", err), nil
	}

	// Every request of this attempt aborts when the worker is declared dead
	// or the attempt ends.
	ctx, stopReq := context.WithCancel(context.Background())
	defer stopReq()
	attemptDone := make(chan struct{})
	defer close(attemptDone)
	go func() {
		select {
		case <-w.gone:
			stopReq()
		case <-attemptDone:
		}
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", "", fmt.Errorf("building submit request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the coordinator's job and trace identity so the whole
	// dispatch — coordinator job, worker job, both trace streams — correlates
	// under one pair of ids in logs and traces.
	req.Header.Set("X-NCC-Job-Id", j.ID)
	req.Header.Set("X-NCC-Trace-Id", j.TraceID)
	b.authorize(req)
	resp, err := b.client.Do(req)
	if err != nil {
		return "", "", fmt.Errorf("submitting: %w", err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		msg := readAPIError(resp.Body)
		resp.Body.Close()
		return "", "", fmt.Errorf("submit: %s: %s", resp.Status, msg)
	}
	var remote struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&remote)
	resp.Body.Close()
	if err != nil {
		return "", "", fmt.Errorf("decoding submit response: %w", err)
	}

	// The remote id is known: propagate a coordinator-side cancel to the
	// worker so its engine aborts within one round, then tear the stream down.
	go func() {
		select {
		case <-j.cancel:
			b.cancelRemote(w.url, remote.ID)
			stopReq()
		case <-attemptDone:
		}
	}()

	req, err = http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/jobs/"+remote.ID+"/records", nil)
	if err != nil {
		return "", "", fmt.Errorf("building stream request: %w", err)
	}
	b.authorize(req)
	stream, err := b.client.Do(req)
	if err != nil {
		return "", "", fmt.Errorf("opening record stream: %w", err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("record stream: %s: %s", stream.Status, readAPIError(stream.Body))
	}

	// On a retry the worker replays the full deterministic stream; skip the
	// lines the previous attempt already published so clients see one
	// seamless, byte-identical stream across the failover.
	skip := j.lineCount()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		j.appendLine(append([]byte(nil), line...))
		b.m.recordsProduced.Add(1)
		wm.records.Add(1)
	}
	if err := sc.Err(); err != nil {
		if j.canceled() {
			return StateCanceled, "", nil
		}
		return "", "", fmt.Errorf("record stream: %w", err)
	}

	// The record stream is complete; pull the job's telemetry trace before
	// settling its state, so a terminal job always has its full trace.
	if err := b.fetchTrace(ctx, j, w, remote.ID); err != nil {
		if j.canceled() {
			return StateCanceled, "", nil
		}
		return "", "", err
	}

	// Clean EOF: the worker job reached a terminal state — fetch it.
	state, cause, err := b.remoteState(w.url, remote.ID)
	if err != nil {
		if j.canceled() {
			return StateCanceled, "", nil
		}
		return "", "", err
	}
	switch state {
	case StateDone:
		return StateDone, "", nil
	case StateFailed:
		return StateFailed, cause, nil
	case StateCanceled:
		if j.canceled() {
			return StateCanceled, "", nil
		}
		// The worker canceled unilaterally (draining): run elsewhere.
		return "", "", fmt.Errorf("worker canceled the job")
	default:
		return "", "", fmt.Errorf("stream ended with worker job %s still %s", remote.ID, state)
	}
}

// fetchTrace proxies the worker job's telemetry trace into j's trace log,
// byte-for-byte. The trace is deterministic, so a retry after a worker
// failure replays an identical stream and the proxy skips the prefix it
// already published — the same seamless-failover contract as the record
// stream. The worker job is terminal when this runs (its record stream hit
// clean EOF), so the trace stream is complete and EOF-bounded.
func (b *RemoteBackend) fetchTrace(ctx context.Context, j *Job, w *remoteWorker, remoteID string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/jobs/"+remoteID+"/trace", nil)
	if err != nil {
		return fmt.Errorf("building trace request: %w", err)
	}
	req.Header.Set("X-NCC-Job-Id", j.ID)
	req.Header.Set("X-NCC-Trace-Id", j.TraceID)
	b.authorize(req)
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("opening trace stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace stream: %s: %s", resp.Status, readAPIError(resp.Body))
	}
	skip := j.traceCount()
	var batch [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		batch = append(batch, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace stream: %w", err)
	}
	j.appendTraceLines(batch)
	b.m.traceLinesProduced.Add(int64(len(batch)))
	return nil
}

// cancelRemote best-effort cancels a job on a worker.
func (b *RemoteBackend) cancelRemote(base, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	b.authorize(req)
	if resp, err := b.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// remoteState fetches a worker job's state after its stream ended.
func (b *RemoteBackend) remoteState(base, id string) (State, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return "", "", err
	}
	b.authorize(req)
	resp, err := b.client.Do(req)
	if err != nil {
		return "", "", fmt.Errorf("fetching job state: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("job state: %s: %s", resp.Status, readAPIError(resp.Body))
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", "", fmt.Errorf("decoding job state: %w", err)
	}
	return info.State, info.Error, nil
}

// readAPIError extracts the {"error": ...} payload of a failed API call.
func readAPIError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// Drain stops the dispatcher after the already-queued jobs finish. If ctx
// expires first, cancelAll cancels every live job — proxies propagate the
// cancels to their workers — and Drain waits for the short tail.
func (b *RemoteBackend) Drain(ctx context.Context, cancelAll func()) error {
	close(b.queue)
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		cancelAll()
		<-done
		err = ctx.Err()
	}
	close(b.stopScan)
	return err
}

// registerRequest is the body of POST /v1/workers: registration and
// heartbeat are the same call, upserted by name.
type registerRequest struct {
	Name     string `json:"name,omitempty"` // defaults to the URL's host:port
	URL      string `json:"url"`
	Capacity int    `json:"capacity,omitempty"` // job slots (worker executors); min 1
}

func (b *RemoteBackend) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req registerRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding registration: %v", err)
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		httpError(w, http.StatusBadRequest, "url %q is not an absolute http(s) URL", req.URL)
		return
	}
	name := req.Name
	if name == "" {
		name = u.Host
	}
	b.reg.register(name, strings.TrimRight(req.URL, "/"), req.Capacity)
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "ttl": b.cfg.WorkerTTL.String()})
}

func (b *RemoteBackend) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": b.reg.snapshot()})
}

func (b *RemoteBackend) handleDeregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !b.reg.remove(name) {
		httpError(w, http.StatusNotFound, "unknown worker %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}
