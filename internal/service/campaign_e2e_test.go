package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"ncc/internal/campaign"
	"ncc/internal/service"
)

func submitCampaign(t *testing.T, base, js string) (service.CampaignInfo, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info service.CampaignInfo
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info, resp.StatusCode
}

func waitCampaign(t *testing.T, base, id string, timeout time.Duration) service.CampaignInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var info service.CampaignInfo
		if err := json.Unmarshal(fetch(t, base+"/v1/campaigns/"+id), &info); err != nil {
			t.Fatal(err)
		}
		if info.State == service.StateDone || info.State == service.StateFailed {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in state %q", id, info.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCampaignEndToEnd is the campaign acceptance test, run against the
// checked-in example campaign: POST /v1/campaigns produces report JSON
// byte-identical to a local ncccampaign-style Execute of the same spec, an
// immediate re-submission is served entirely from the result cache (asserted
// via the daemon's cache metrics), and the text rendering is served at
// ?format=text.
func TestCampaignEndToEnd(t *testing.T) {
	specJSON, err := os.ReadFile("../../campaigns/compare-small.json")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := campaign.Decode(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	localRep, err := campaign.Execute(sp, campaign.Local())
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := json.Marshal(localRep)
	if err != nil {
		t.Fatal(err)
	}
	localBytes = append(localBytes, '\n')

	ts := newTestServer(t, service.Config{WorkerBudget: 4, Executors: 2})
	info, status := submitCampaign(t, ts.URL, string(specJSON))
	if status != http.StatusCreated {
		t.Fatalf("POST /v1/campaigns: status %d, want 201", status)
	}
	units, _ := sp.Expand()
	if len(info.Units) != len(units) {
		t.Fatalf("campaign has %d units, want %d", len(info.Units), len(units))
	}
	for i, u := range info.Units {
		if u.Hash == "" || u.JobID == "" {
			t.Fatalf("unit %d (%s/%s) missing hash or job id: %+v", i, u.Entry, u.Variant, u)
		}
		if u.Hash != units[i].Hash {
			t.Fatalf("unit %d hash %s differs from expansion hash %s", i, u.Hash, units[i].Hash)
		}
	}

	final := waitCampaign(t, ts.URL, info.ID, 120*time.Second)
	if final.State != service.StateDone {
		t.Fatalf("campaign ended %s: %s", final.State, final.Error)
	}
	gotBytes := fetch(t, ts.URL+"/v1/campaigns/"+info.ID+"/report")
	if !bytes.Equal(gotBytes, localBytes) {
		t.Fatalf("server report differs from local execution:\nlocal:  %s\nserver: %s", localBytes, gotBytes)
	}

	text := string(fetch(t, ts.URL+"/v1/campaigns/"+info.ID+"/report?format=text"))
	if !strings.Contains(text, "campaign "+sp.Name) || !strings.Contains(text, "baseline") {
		t.Fatalf("text report missing header or baseline rows:\n%s", text)
	}

	// Immediate re-run: every unit is answered from the result cache, the
	// report bytes do not move. Acceptance floor is >= 50% served from cache;
	// with all hashes already resident it is 100%.
	misses := metricValue(t, ts.URL, "nccd_cache_misses_total")
	info2, status := submitCampaign(t, ts.URL, string(specJSON))
	if status != http.StatusCreated {
		t.Fatalf("re-submission: status %d, want 201", status)
	}
	final2 := waitCampaign(t, ts.URL, info2.ID, 60*time.Second)
	if final2.State != service.StateDone {
		t.Fatalf("re-run campaign ended %s: %s", final2.State, final2.Error)
	}
	hits := metricValue(t, ts.URL, "nccd_cache_hits_total")
	if distinct := distinctHashes(units); hits < float64(distinct+1)/2 {
		t.Fatalf("re-run cache hits = %g, want >= half of %d units", hits, distinct)
	}
	if m := metricValue(t, ts.URL, "nccd_cache_misses_total"); m != misses {
		t.Fatalf("re-run executed %g fresh units, want 0", m-misses)
	}
	if got2 := fetch(t, ts.URL+"/v1/campaigns/"+info2.ID+"/report"); !bytes.Equal(got2, gotBytes) {
		t.Fatal("cached re-run report differs from the original")
	}

	// The campaign listing holds both runs, newest-counted metrics agree.
	var list struct {
		Campaigns []service.CampaignInfo `json:"campaigns"`
	}
	if err := json.Unmarshal(fetch(t, ts.URL+"/v1/campaigns"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 2 {
		t.Fatalf("campaign listing has %d entries, want 2", len(list.Campaigns))
	}
	if n := metricValue(t, ts.URL, "nccd_campaigns_done_total"); n != 2 {
		t.Fatalf("nccd_campaigns_done_total = %g, want 2", n)
	}
}

func distinctHashes(units []campaign.Unit) int {
	seen := map[string]bool{}
	for _, u := range units {
		seen[u.Hash] = true
	}
	return len(seen)
}

// TestCampaignRejects covers the campaign API's error surface: strict
// decoding with field paths, server-side refusal of unresolved refs, 404 on
// unknown ids, and 409 for a report that is not ready.
func TestCampaignRejects(t *testing.T) {
	ts := newTestServer(t, service.Config{WorkerBudget: 2})
	cases := []struct {
		js   string
		want string
	}{
		{`{"name":"x","entries":[{"basline":"none"}]}`, "entries[0].basline"},
		{`{"name":"x","entries":[{"ref":"other.json"}]}`, "unresolved ref"},
		{`{"entries":[]}`, "no name"},
		{`not json`, "invalid character"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(tc.js))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("campaign %q: status %d, want 400", tc.js, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Fatalf("campaign %q: error %q does not mention %q", tc.js, body, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/campaigns/c9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d, want 404", resp.StatusCode)
	}

	// A campaign held up by a spinning unit has no report yet: 409.
	spinCampaign := fmt.Sprintf(`{"name":"held","entries":[{"baseline":"none","scenario":%s}]}`, spinJSON)
	info, status := submitCampaign(t, ts.URL, spinCampaign)
	if status != http.StatusCreated {
		t.Fatalf("spin campaign: status %d, want 201", status)
	}
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + info.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report of a running campaign: status %d, want 409", resp.StatusCode)
	}
	// Cancel the unit's job; the campaign must end failed (partial results
	// never silently become a report).
	resp, err = http.Post(ts.URL+"/v1/jobs/"+info.Units[0].JobID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitCampaign(t, ts.URL, info.ID, 30*time.Second)
	if final.State != service.StateFailed || !strings.Contains(final.Error, "canceled") {
		t.Fatalf("campaign after unit cancel: state %s error %q, want failed/canceled", final.State, final.Error)
	}
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + info.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report of a failed campaign: status %d, want 409", resp.StatusCode)
	}
}

// TestJobHashExposed pins the canonical scenario hash into the job surfaces:
// POST response, status endpoint, and the listing — the id a client needs to
// correlate jobs with cache entries and campaign units.
func TestJobHashExposed(t *testing.T) {
	ts := newTestServer(t, service.Config{WorkerBudget: 2})
	info := submit(t, ts.URL, sweepJSON)
	if info.Hash == "" {
		t.Fatal("POST /v1/jobs response has no hash")
	}
	waitState(t, ts.URL, info.ID, service.StateDone, 60*time.Second)
	if h := jobInfo(t, ts.URL, info.ID).Hash; h != info.Hash {
		t.Fatalf("status hash %q differs from submission hash %q", h, info.Hash)
	}
	var list struct {
		Jobs []service.JobInfo `json:"jobs"`
	}
	if err := json.Unmarshal(fetch(t, ts.URL+"/v1/jobs"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].Hash != info.Hash {
		t.Fatalf("listing hash = %+v, want %q", list.Jobs, info.Hash)
	}
}

// TestClusterTokenAuth covers the shared-token boundary end to end: without
// the bearer token every /v1/ route answers 401 (healthz and metrics stay
// open), with it the full cluster works — worker registration via Joiner,
// coordinator→worker dispatch, and an authenticated client submission.
func TestClusterTokenAuth(t *testing.T) {
	const token = "s3cret-cluster-token"

	coordSvc, err := service.NewCoordinator(service.Config{WorkerTTL: time.Minute, ClusterToken: token})
	if err != nil {
		t.Fatal(err)
	}
	coord := httptest.NewServer(coordSvc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		coordSvc.Drain(ctx)
		coord.Close()
	})
	worker := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1, ClusterToken: token})

	// Unauthenticated: worker registration, job submission, listings all 401.
	for _, probe := range []struct {
		method, url, body string
	}{
		{http.MethodPost, coord.URL + "/v1/workers", fmt.Sprintf(`{"name":"w","url":%q,"capacity":1}`, worker.URL)},
		{http.MethodPost, coord.URL + "/v1/jobs", sweepJSON},
		{http.MethodGet, coord.URL + "/v1/jobs", ""},
		{http.MethodGet, worker.URL + "/v1/jobs", ""},
	} {
		req, err := http.NewRequest(probe.method, probe.url, strings.NewReader(probe.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s %s without token: status %d, want 401", probe.method, probe.url, resp.StatusCode)
		}
	}
	// A wrong token is as unauthorized as none.
	req, err := http.NewRequest(http.MethodGet, coord.URL+"/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", resp.StatusCode)
	}
	// Probes stay open.
	for _, open := range []string{coord.URL + "/healthz", coord.URL + "/metrics"} {
		resp, err := http.Get(open)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without token: status %d, want 200 (open probe)", open, resp.StatusCode)
		}
	}

	// Authenticated path: the Joiner presents the token to register, the
	// coordinator presents it back on dispatch, and the job completes
	// byte-identically to a local run.
	jctx, jcancel := context.WithCancel(context.Background())
	defer jcancel()
	jn := &service.Joiner{
		Coordinator: coord.URL,
		Self:        worker.URL,
		Name:        "w1",
		Capacity:    1,
		Interval:    50 * time.Millisecond,
		Token:       token,
	}
	joinDone := make(chan struct{})
	go func() {
		defer close(joinDone)
		jn.Run(jctx)
	}()
	t.Cleanup(func() { jcancel(); <-joinDone })
	deadline := time.Now().Add(10 * time.Second)
	for metricValue(t, coord.URL, "nccd_workers_live") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("token-bearing joiner never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	authed := func(method, url, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp = authed(http.MethodPost, coord.URL+"/v1/jobs", sweepJSON)
	var info service.JobInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("authenticated submission: status %d err %v", resp.StatusCode, err)
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp = authed(http.MethodGet, coord.URL+"/v1/jobs/"+info.ID, "")
		var cur service.JobInfo
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == service.StateDone {
			break
		}
		if cur.State == service.StateFailed || cur.State == service.StateCanceled || time.Now().After(deadline) {
			t.Fatalf("authenticated cluster job ended %s: %s", cur.State, cur.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp = authed(http.MethodGet, coord.URL+"/v1/jobs/"+info.ID+"/records", "")
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := localLines(t, sweepJSON); !bytes.Equal(got, want) {
		t.Fatal("token-protected cluster stream differs from local run")
	}
}
