package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ncc/internal/campaign"
	"ncc/internal/obs"
	"ncc/internal/scenario"
)

// defaultRetainCampaigns bounds how many campaigns the daemon remembers;
// terminal campaigns beyond it are forgotten oldest-first (their units'
// results stay in the result cache, so re-running a forgotten campaign is
// cheap).
const defaultRetainCampaigns = 256

// CampaignUnitInfo is the JSON view of one expanded campaign unit and the job
// executing it. Hash is the unit scenario's canonical hash — the same id the
// jobs API, the result cache, and local `ncccampaign` runs report, so a unit
// can be correlated across every surface.
type CampaignUnitInfo struct {
	Entry   string           `json:"entry"`
	Variant campaign.Variant `json:"variant"`
	Hash    string           `json:"hash"`
	JobID   string           `json:"jobId"`
	TraceID string           `json:"traceId,omitempty"`
	State   State            `json:"state"`
	Cached  bool             `json:"cached"`
	Records int              `json:"records"`
}

// CampaignInfo is the JSON view of a campaign returned by POST /v1/campaigns
// and the status endpoints.
type CampaignInfo struct {
	ID        string             `json:"id"`
	Name      string             `json:"name"`
	State     State              `json:"state"`
	Units     []CampaignUnitInfo `json:"units"`
	Error     string             `json:"error,omitempty"`
	Submitted time.Time          `json:"submitted"`
}

// campaignRun tracks one submitted campaign: its expanded units, the jobs
// executing them (deduplicated units share a job), and — once every job is
// terminal — the merged comparative report.
type campaignRun struct {
	id        string
	spec      campaign.Spec
	units     []campaign.Unit
	jobs      []*Job // parallel to units
	submitted time.Time

	mu     sync.Mutex
	state  State
	errMsg string
	report *campaign.Report
}

func (c *campaignRun) Info() CampaignInfo {
	c.mu.Lock()
	state, errMsg := c.state, c.errMsg
	c.mu.Unlock()
	info := CampaignInfo{
		ID:        c.id,
		Name:      c.spec.Name,
		State:     state,
		Error:     errMsg,
		Submitted: c.submitted,
		Units:     make([]CampaignUnitInfo, len(c.units)),
	}
	for i, u := range c.units {
		ji := c.jobs[i].Info()
		info.Units[i] = CampaignUnitInfo{
			Entry:   u.Entry,
			Variant: u.Variant,
			Hash:    u.Hash,
			JobID:   ji.ID,
			TraceID: ji.TraceID,
			State:   ji.State,
			Cached:  ji.Cached,
			Records: ji.Records,
		}
	}
	return info
}

// result snapshots the terminal outcome: the report when done, the failure
// cause when failed, neither while running.
func (c *campaignRun) result() (*campaign.Report, State, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report, c.state, c.errMsg
}

func (c *campaignRun) finish(rep *campaign.Report, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if errMsg != "" {
		c.state = StateFailed
		c.errMsg = errMsg
	} else {
		c.state = StateDone
		c.report = rep
	}
}

// watch drives a campaign to its terminal state: wait for every unit's job,
// then merge the per-unit record streams into the comparative report. A unit
// whose job failed or was canceled fails the whole campaign (a report built
// from partial results would silently compare different run sets); individual
// run errors inside a completed job are ordinary report rows.
func (c *campaignRun) watch(m *metrics) {
	for _, j := range c.jobs {
		for {
			_, terminal, changed := j.next(0)
			if terminal {
				break
			}
			<-changed
		}
	}
	failMsg := ""
	for i, j := range c.jobs {
		if info := j.Info(); info.State != StateDone {
			failMsg = fmt.Sprintf("unit %s/%s (job %s) ended %s", c.units[i].Entry, c.units[i].Variant, j.ID, info.State)
			if info.Error != "" {
				failMsg += ": " + info.Error
			}
			break
		}
	}
	if failMsg != "" {
		c.finish(nil, failMsg)
		m.campaignsFailed.Add(1)
		return
	}
	records := make(map[string][]scenario.Record, len(c.units))
	traces := make(map[string]string, len(c.units))
	for i, u := range c.units {
		if _, ok := records[u.Hash]; ok {
			continue
		}
		lines, trace := c.jobs[i].resultLines()
		recs := make([]scenario.Record, 0, len(lines))
		for _, line := range lines {
			var rec scenario.Record
			if err := json.Unmarshal(line, &rec); err != nil {
				c.finish(nil, fmt.Sprintf("unit %s/%s: decoding record: %v", u.Entry, u.Variant, err))
				m.campaignsFailed.Add(1)
				return
			}
			recs = append(recs, rec)
		}
		records[u.Hash] = recs
		if len(trace) > 0 {
			// The canonical content hash, so the report row matches a local
			// run's trace ref byte-for-byte.
			traces[u.Hash] = obs.Hash(trace)
		}
	}
	rep, err := campaign.BuildReport(c.spec.Name, c.units, records, traces)
	if err != nil {
		c.finish(nil, err.Error())
		m.campaignsFailed.Add(1)
		return
	}
	c.finish(&rep, "")
	m.campaignsDone.Add(1)
}

// campaignStore owns campaign identity and retention, mirroring the JobStore.
type campaignStore struct {
	mu     sync.Mutex
	byID   map[string]*campaignRun
	order  []*campaignRun
	nextID int
	retain int
}

func newCampaignStore(retain int) *campaignStore {
	if retain <= 0 {
		retain = defaultRetainCampaigns
	}
	return &campaignStore{byID: map[string]*campaignRun{}, retain: retain}
}

func (st *campaignStore) create(sp campaign.Spec, units []campaign.Unit, jobs []*Job) *campaignRun {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	c := &campaignRun{
		id:        fmt.Sprintf("c%04d", st.nextID),
		spec:      sp,
		units:     units,
		jobs:      jobs,
		submitted: time.Now().UTC(),
		state:     StateRunning,
	}
	st.byID[c.id] = c
	st.order = append(st.order, c)
	excess := len(st.order) - st.retain
	if excess > 0 {
		kept := st.order[:0]
		for _, old := range st.order {
			if _, state, _ := old.result(); excess > 0 && state.terminal() {
				delete(st.byID, old.id)
				excess--
				continue
			}
			kept = append(kept, old)
		}
		clear(st.order[len(kept):])
		st.order = kept
	}
	return c
}

func (st *campaignStore) get(id string) (*campaignRun, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	c, ok := st.byID[id]
	return c, ok
}

func (st *campaignStore) list() []CampaignInfo {
	st.mu.Lock()
	order := append([]*campaignRun(nil), st.order...)
	st.mu.Unlock()
	out := make([]CampaignInfo, 0, len(order))
	for _, c := range order {
		out = append(out, c.Info())
	}
	return out
}

// handleCampaignSubmit answers POST /v1/campaigns: decode the strict spec
// (inline scenarios only — refs are a CLI-side convenience), expand the
// matrix, admit every distinct unit through the ordinary job admission path
// (cache lookup, in-flight coalescing, backend submit), and return the
// campaign with its unit-to-job assignments. The report is built
// asynchronously once every job completes.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "campaign body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	sp, err := campaign.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := sp.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	units, err := sp.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	jobs := make([]*Job, len(units))
	byHash := map[string]*Job{}
	for i, u := range units {
		if j, ok := byHash[u.Hash]; ok {
			jobs[i] = j
			continue
		}
		j, err := s.admit(u.Scenario, u.Hash)
		if err != nil {
			// Units admitted before the failure keep running; their results
			// land in the cache, so a retried campaign picks them up for free.
			httpError(w, http.StatusServiceUnavailable, "unit %s/%s: %v", u.Entry, u.Variant, err)
			return
		}
		byHash[u.Hash] = j
		jobs[i] = j
	}
	c := s.campaigns.create(sp, units, jobs)
	s.m.campaignsSubmitted.Add(1)
	go c.watch(s.m)
	writeJSON(w, http.StatusCreated, c.Info())
}

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": s.campaigns.list()})
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaigns.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, c.Info())
}

// handleCampaignReport answers GET /v1/campaigns/{id}/report: the merged
// comparative report as JSON (byte-identical to a local `ncccampaign -json`
// run of the same spec — the report contains no wall-clock fields), or as the
// human-readable table with ?format=text.
func (s *Server) handleCampaignReport(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaigns.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	rep, state, errMsg := c.result()
	switch state {
	case StateDone:
	case StateFailed:
		httpError(w, http.StatusConflict, "campaign %s failed: %s", c.id, errMsg)
		return
	default:
		httpError(w, http.StatusConflict, "campaign %s is still %s", c.id, state)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		campaign.RenderText(w, *rep)
		return
	}
	writeJSON(w, http.StatusOK, *rep)
}
