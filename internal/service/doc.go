// Package service turns the one-shot scenario runner into a long-lived
// execution service: the HTTP daemon behind cmd/nccd. Clients POST the same
// declarative scenario JSON the CLIs consume; the server validates it against
// the algorithm and graph registries, executes it, and streams the resulting
// scenario Records back as NDJSON — live, while the sweep is still running.
//
// # Architecture: four seams behind one HTTP surface
//
// Server is a thin HTTP layer over four components, each replaceable behind
// an interface or a small struct:
//
//	    ┌──────────────────────── Server (HTTP) ───────────────────────┐
//	    │  POST /v1/jobs   GET /v1/jobs[/{id}[/records]]   /metrics    │
//	    └──────┬──────────────────┬─────────────────────┬──────────────┘
//	           │ admit            │ stream              │ lookup
//	           ▼                  ▼                     ▼
//	     ┌──────────┐       ┌───────────┐         ┌───────────┐
//	     │ JobStore │       │ StreamHub │         │ CacheTier │
//	     └────┬─────┘       └───────────┘         └─────┬─────┘
//	          │ Submit                                  │ get/put
//	          ▼                                         │
//	┌───────────────────┐                               │
//	│    ExecBackend    │ ◄─────────────────────────────┘
//	│ Local │  Remote   │
//	└───────────────────┘
//
// JobStore owns the job lifecycle: admission (with drain refusal and
// in-flight coalescing under one lock), id assignment, retention pruning of
// terminal jobs, lookup, and filtered listing. ExecBackend runs an admitted
// job: LocalBackend executes in-process on the two-level scheduler below;
// RemoteBackend (coordinator mode) shards jobs across registered worker
// daemons and proxies their streams. StreamHub serves a job's NDJSON record
// stream to any number of concurrent tails, live or replayed. CacheTier is
// the content-addressed result cache; the default implementation layers an
// in-memory FIFO over an optional on-disk directory.
//
// # Local scheduling
//
// Scheduling is two-level. A fixed set of executors runs jobs concurrently
// while each job's expanded runs stay sequential, so a job's record stream is
// ordered exactly like a local sweep. Engine parallelism comes from a global
// worker budget shared across jobs: before each run an executor acquires
// between 1 and GOMAXPROCS-equivalent tokens — whatever the budget can spare
// — and hands the engine exactly that many delivery workers. Acquisition is
// ticket-ordered FIFO and tokens return between runs, so a million-node sweep
// can saturate the budget only until its current run ends; a small request
// waits for one run, never for a whole sweep. Results are bit-identical
// across worker counts (an engine invariant), so the scheduler's worker
// assignment is invisible in the records.
//
// # Result cache and coalescing
//
// Completed sweeps land in a content-addressed result cache keyed by the
// canonical scenario hash (scenario.Hash): JSON key order, spelled-out
// defaults, display names, worker counts, and sweep-axis order all
// canonicalize away, so a semantically identical re-submission is answered
// instantly from memory — or from the cache directory, which persists each
// sweep as one <hash>.ndjson file across restarts. Cached streams replay the
// exact bytes the original execution produced. The same hash also coalesces
// in-flight duplicates: submitting a scenario identical to one still queued
// or running returns that job (HTTP 200 instead of 201) rather than
// executing it twice.
//
// # Cluster mode
//
// NewCoordinator builds the same Server over a RemoteBackend: the
// coordinator executes nothing itself. Worker daemons — ordinary standalone
// nccd processes plus a Joiner heartbeat loop — register via POST
// /v1/workers with an advertised URL and capacity; registration doubles as
// the heartbeat, and workers that miss the TTL are expired. A dispatcher
// pulls admitted jobs FIFO and places each on the live worker with the most
// free slots, then proxies the worker's record stream back into the job
// byte-for-byte, so clients cannot tell a proxied stream from a local one.
//
// Failover leans on determinism: the engine is bit-identical for a given
// scenario, and the canonical hash makes execution idempotent. When a worker
// dies mid-run — its stream breaks, its heartbeat lapses, or it deregisters
// during drain — the coordinator re-dispatches the job to another worker and
// skips the prefix of lines it already holds; the client-visible stream is
// still byte-identical to a local run. A job is failed only after JobAttempts
// distinct dispatch attempts.
//
// # Cancellation and drain
//
// Cancellation is wired through the engine's abort path (ncc.Config.Cancel):
// canceling a job releases the round barrier with the abort bit set, so even
// a run mid-sweep unwinds within one round. A coordinator forwards the cancel
// to whichever worker holds the job. Drain uses the same machinery for
// graceful shutdown: stop accepting (503), finish what is queued and running,
// cancel whatever outlives the grace period. A draining worker deregisters
// first, so its coordinator re-dispatches rather than waiting out the TTL.
package service
