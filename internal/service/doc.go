// Package service turns the one-shot scenario runner into a long-lived
// execution service: the HTTP daemon behind cmd/nccd. Clients POST the same
// declarative scenario JSON the CLIs consume; the server validates it against
// the algorithm and graph registries, executes it on a shared scheduler, and
// streams the resulting scenario Records back as NDJSON — live, while the
// sweep is still running.
//
// Scheduling is two-level. A fixed set of executors runs jobs concurrently
// while each job's expanded runs stay sequential, so a job's record stream is
// ordered exactly like a local sweep. Engine parallelism comes from a global
// worker budget shared across jobs: before each run an executor acquires
// between 1 and GOMAXPROCS-equivalent tokens — whatever the budget can spare
// — and hands the engine exactly that many delivery workers. Acquisition is
// ticket-ordered FIFO and tokens return between runs, so a million-node sweep
// can saturate the budget only until its current run ends; a small request
// waits for one run, never for a whole sweep. Results are bit-identical
// across worker counts (an engine invariant), so the scheduler's worker
// assignment is invisible in the records.
//
// Completed sweeps land in a content-addressed result cache keyed by the
// canonical scenario hash (scenario.Hash): JSON key order, spelled-out
// defaults, display names, worker counts, and sweep-axis order all
// canonicalize away, so a semantically identical re-submission is answered
// instantly from memory — or from the cache directory, which persists each
// sweep as one <hash>.ndjson file across restarts. Cached streams replay the
// exact bytes the original execution produced. The same hash also coalesces
// in-flight duplicates: submitting a scenario identical to one still queued
// or running returns that job (HTTP 200 instead of 201) rather than
// executing it twice.
//
// Cancellation is wired through the engine's abort path (ncc.Config.Cancel):
// canceling a job releases the round barrier with the abort bit set, so even
// a run mid-sweep unwinds within one round. Drain uses the same machinery for
// graceful shutdown: stop accepting, finish what is running, cancel whatever
// outlives the grace period.
package service
