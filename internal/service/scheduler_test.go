package service

import (
	"sync"
	"testing"
	"time"

	"ncc/internal/graph"
	"ncc/internal/param"
)

// TestSpecNodeCount pins the scheduler's sizing hint across every family
// convention, so worker-token reservations match actual graph sizes and
// never idle budget other jobs could use.
func TestSpecNodeCount(t *testing.T) {
	cases := []struct {
		spec graph.Spec
		want int
	}{
		{graph.Spec{Family: "kforest", Params: param.Values{"n": 48, "k": 2}}, 48},
		{graph.Spec{Family: "kforest"}, 64}, // registry default n
		{graph.Spec{Family: "grid", Params: param.Values{"rows": 6, "cols": 8}}, 48},
		{graph.Spec{Family: "torus"}, 64}, // default 8x8
		{graph.Spec{Family: "bipartite", Params: param.Values{"n1": 10, "n2": 5}}, 15},
		{graph.Spec{Family: "disjoint", Params: param.Values{"parts": 3, "size": 7}}, 21},
		{graph.Spec{Family: "hypercube", Params: param.Values{"k": 5}}, 32},
		{graph.Spec{Family: "no-such-family"}, 0},
		{graph.Spec{Family: "kforest", Params: param.Values{"bogus": 1}}, 0}, // unresolvable params
	}
	for _, tc := range cases {
		if got := specNodeCount(tc.spec); got != tc.want {
			t.Errorf("specNodeCount(%v) = %d, want %d", tc.spec, got, tc.want)
		}
	}
}

func TestTokenPoolGivesPartialAllocations(t *testing.T) {
	p := newTokenPool(4)
	if got := p.acquire(8); got != 4 {
		t.Fatalf("acquire(8) on budget 4 = %d, want 4", got)
	}
	done := make(chan int, 1)
	go func() { done <- p.acquire(2) }()
	select {
	case v := <-done:
		t.Fatalf("acquire(2) returned %d with no free tokens", v)
	case <-time.After(20 * time.Millisecond):
	}
	p.release(1)
	select {
	case v := <-done:
		if v != 1 {
			t.Fatalf("acquire(2) with one free token = %d, want 1", v)
		}
	case <-time.After(time.Second):
		t.Fatal("acquire did not wake on release")
	}
	p.release(1)
	p.release(4)
	if free := p.available(); free != 5 {
		t.Fatalf("available = %d after releasing everything, want 5", free)
	}
}

// TestTokenPoolFIFO pins the no-starvation property: a small request that is
// already waiting is served before a later big request, even when the big
// one could swallow the whole budget.
func TestTokenPoolFIFO(t *testing.T) {
	p := newTokenPool(4)
	p.acquire(4) // budget exhausted

	order := make(chan string, 2)
	var started sync.WaitGroup
	started.Add(1)
	go func() {
		started.Done()
		p.acquire(1)
		order <- "small"
	}()
	started.Wait()
	time.Sleep(10 * time.Millisecond) // the small waiter takes its ticket first
	go func() {
		p.acquire(4)
		order <- "big"
	}()
	time.Sleep(10 * time.Millisecond)

	p.release(4)
	first := <-order
	if first != "small" {
		t.Fatalf("first served waiter = %q, want the earlier small request", first)
	}
	<-order // big proceeds with whatever is left
}
