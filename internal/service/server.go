package service

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ncc/internal/graphio"
	"ncc/internal/scenario"
)

// Config parameterizes a Server. Zero values mean the defaults.
type Config struct {
	// WorkerBudget is the total number of engine workers shared across every
	// concurrently executing job (default GOMAXPROCS). A single run never
	// uses more than the budget; concurrent runs split it, FIFO-fair.
	// Coordinator mode ignores it — a coordinator executes nothing itself.
	WorkerBudget int

	// Executors is the number of jobs executing concurrently (default 2).
	// Runs within one job are always sequential: the record stream is
	// ordered like a local sweep. Ignored in coordinator mode, where
	// concurrency is the sum of registered worker capacities.
	Executors int

	// QueueLimit bounds the number of queued jobs; submissions beyond it are
	// rejected with 503 (default 256).
	QueueLimit int

	// CacheDir, when non-empty, persists completed sweeps as content-addressed
	// NDJSON files so the cache survives restarts. Empty keeps the cache
	// in memory only.
	CacheDir string

	// MaxBodyBytes bounds a submission body (default 1 MiB).
	MaxBodyBytes int64

	// RetainJobs bounds how many jobs the daemon remembers (default 1024).
	// When a new submission would exceed it, the oldest terminal jobs are
	// forgotten (their results stay in the result cache); running and queued
	// jobs are never pruned. A forgotten job id answers 404.
	RetainJobs int

	// CacheEntries bounds the in-memory result-cache entries (default 4096),
	// evicted FIFO. With CacheDir set, evicted sweeps remain on disk and are
	// re-promoted on their next hit.
	CacheEntries int

	// WorkerTTL (coordinator mode) is how long a worker stays live without a
	// heartbeat before it is expired and its in-flight jobs re-dispatched
	// (default 10s).
	WorkerTTL time.Duration

	// JobAttempts (coordinator mode) bounds how many workers a job is tried
	// on before it is failed (default 3). Re-dispatch after a worker death is
	// safe because the canonical scenario hash makes execution idempotent:
	// the retry replays a deterministic stream and the coordinator skips the
	// lines it already has.
	JobAttempts int

	// GraphDir, when non-empty, opens a content-addressed graph store there
	// and serves it at /v1/graphs/{hash}: clients PUT ingested .nccg graphs
	// before submitting file-family scenarios, and cluster workers GET graphs
	// their dispatched jobs reference. Empty disables the graph API.
	GraphDir string

	// MaxGraphBytes bounds an uploaded graph body (default 1 GiB — graphs are
	// much larger than scenario JSON, so they get their own limit).
	MaxGraphBytes int64

	// ClusterToken, when non-empty, requires `Authorization: Bearer <token>`
	// on every /v1/ route (jobs, campaigns, and the cluster membership API).
	// /healthz and /metrics stay open for probes and scrapers. The same token
	// authenticates coordinator→worker dispatch and worker→coordinator
	// registration, so one shared secret secures the whole cluster.
	ClusterToken string

	// Pprof serves net/http/pprof under /debug/pprof/ on the same mux. Like
	// /healthz and /metrics it is deliberately outside the cluster-token guard
	// (the guard covers /v1/ only): profiles carry no scenario data, and
	// profiling tooling cannot send bearer tokens. Leave it off on daemons
	// exposed beyond a trusted network.
	Pprof bool

	// Logger receives the service's structured logs — job admissions and
	// terminal states, cluster dispatches, worker membership — each carrying
	// the job/trace/worker ids needed to correlate a log line with its trace
	// stream and metrics series. Nil discards logs (tests, embedding).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxGraphBytes <= 0 {
		c.MaxGraphBytes = 1 << 30
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 10 * time.Second
	}
	if c.JobAttempts <= 0 {
		c.JobAttempts = 3
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the scenario-execution service behind cmd/nccd: the HTTP surface
// over four seams. It validates submitted scenarios against the registries,
// admits them through the JobStore (coalescing identical in-flight work and
// answering repeats from the CacheTier), hands admitted jobs to an
// ExecBackend — in-process executors (LocalBackend) or a worker cluster
// (RemoteBackend) — and streams results through the StreamHub.
type Server struct {
	cfg       Config
	m         *metrics
	cache     CacheTier
	store     *JobStore
	hub       *StreamHub
	backend   ExecBackend
	cluster   *RemoteBackend // non-nil in coordinator mode; adds /v1/workers
	campaigns *campaignStore
	graphs    *graphio.Store // non-nil with GraphDir set; adds /v1/graphs
}

// New builds a single-process Server executing jobs on a LocalBackend
// (creating the cache directory if configured).
func New(cfg Config) (*Server, error) {
	return build(cfg, func(cfg Config, c CacheTier, m *metrics) (ExecBackend, *RemoteBackend) {
		return newLocalBackend(cfg.WorkerBudget, cfg.Executors, cfg.QueueLimit, c, m, cfg.Logger), nil
	})
}

// NewCoordinator builds a Server in cluster-coordinator mode: it executes
// nothing itself, instead sharding admitted jobs across worker daemons that
// register via POST /v1/workers and proxying their record streams.
func NewCoordinator(cfg Config) (*Server, error) {
	return build(cfg, func(cfg Config, c CacheTier, m *metrics) (ExecBackend, *RemoteBackend) {
		rb := newRemoteBackend(cfg, c, m)
		return rb, rb
	})
}

func build(cfg Config, mk func(Config, CacheTier, *metrics) (ExecBackend, *RemoteBackend)) (*Server, error) {
	cfg = cfg.withDefaults()
	c, err := newCache(cfg.CacheDir, cfg.CacheEntries)
	if err != nil {
		return nil, err
	}
	m := newMetrics()
	var graphs *graphio.Store
	if cfg.GraphDir != "" {
		if graphs, err = graphio.NewStore(cfg.GraphDir); err != nil {
			return nil, err
		}
	}
	backend, cluster := mk(cfg, c, m)
	return &Server{
		cfg:       cfg,
		m:         m,
		cache:     c,
		store:     newJobStore(cfg.RetainJobs),
		hub:       newStreamHub(m),
		backend:   backend,
		cluster:   cluster,
		campaigns: newCampaignStore(0),
		graphs:    graphs,
	}, nil
}

// Drain stops accepting submissions and waits for queued and running jobs to
// finish. If ctx expires first, every live job is canceled (in-flight runs
// unwind within one round barrier; proxied jobs are canceled on their
// workers) and Drain returns ctx.Err after the tail completes. Drain is
// idempotent only in its refusal of new work; call it once.
func (s *Server) Drain(ctx context.Context) error {
	s.store.SetDraining()
	return s.backend.Drain(ctx, s.store.CancelAll)
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs              submit a scenario (strict JSON), returns JobInfo
//	GET    /v1/jobs              list jobs in submission order (?state=, ?limit=)
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/records NDJSON record stream, live while the job runs
//	GET    /v1/jobs/{id}/trace   NDJSON telemetry trace (internal/obs format)
//	POST   /v1/jobs/{id}/cancel  cancel a queued or running job
//	DELETE /v1/jobs/{id}         same as cancel (idiomatic client teardown)
//	GET    /healthz              liveness (and drain state)
//	GET    /metrics              Prometheus text metrics
//
// plus the campaign API:
//
//	POST   /v1/campaigns             submit a campaign spec (strict JSON)
//	GET    /v1/campaigns             list campaigns in submission order
//	GET    /v1/campaigns/{id}        one campaign's status and unit→job map
//	GET    /v1/campaigns/{id}/report comparative report (JSON, ?format=text)
//
// Coordinator mode adds the cluster membership API:
//
//	POST   /v1/workers           register / heartbeat a worker daemon
//	GET    /v1/workers           list registered workers
//	DELETE /v1/workers/{name}    deregister a worker immediately
//
// With GraphDir set, the content-addressed graph store is served too:
//
//	PUT    /v1/graphs/{hash}     upload a .nccg graph (validated, idempotent)
//	GET    /v1/graphs/{hash}     download a stored graph's bytes
//
// With ClusterToken set, every /v1/ route requires the bearer token. With
// Pprof set, net/http/pprof is served under /debug/pprof/ (token-exempt).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/records", s.handleRecords)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleCampaignList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleCampaignReport)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		mux.HandleFunc("POST /v1/workers", s.cluster.handleRegister)
		mux.HandleFunc("GET /v1/workers", s.cluster.handleWorkers)
		mux.HandleFunc("DELETE /v1/workers/{name}", s.cluster.handleDeregister)
	}
	if s.graphs != nil {
		mux.HandleFunc("GET /v1/graphs/{hash}", s.handleGraphGet)
		mux.HandleFunc("PUT /v1/graphs/{hash}", s.handleGraphPut)
	}
	if s.cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	if s.cfg.ClusterToken != "" {
		return requireToken(s.cfg.ClusterToken, mux)
	}
	return mux
}

// requireToken guards every /v1/ route behind `Authorization: Bearer <token>`.
// Liveness and metrics stay open: probes and scrapers hold no secrets, and
// neither endpoint exposes scenario data.
func requireToken(token string, next http.Handler) http.Handler {
	want := []byte("Bearer " + token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			got := []byte(r.Header.Get("Authorization"))
			if subtle.ConstantTimeCompare(got, want) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="nccd"`)
				httpError(w, http.StatusUnauthorized, "missing or invalid cluster token")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "scenario body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	sc, err := scenario.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := sc.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := sc.Hash()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j, coalesced, err := s.admitDetail(sc, hash)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if coalesced {
		writeJSON(w, http.StatusOK, j.Info())
		return
	}
	writeJSON(w, http.StatusCreated, j.Info())
}

// admitDetail runs the shared admission path for one validated, hashed
// scenario — cache lookup, JobStore admission (coalescing in-flight twins),
// backend submit — and maintains the admission metrics.
func (s *Server) admitDetail(sc scenario.Scenario, hash string) (j *Job, coalesced bool, err error) {
	// The cache lookup may touch disk; do it before the store's admission
	// lock so submissions never serialize the status/health endpoints behind
	// file I/O. A hit that lands between this lookup and the lock merely
	// costs a redundant execution — coalescing in Admit still catches
	// in-flight twins.
	cached, cachedTrace, hit := s.cache.get(hash)

	j, coalesced, err = s.store.Admit(sc, hash, cached, cachedTrace, hit, s.backend.Submit)
	if err != nil {
		return nil, false, err
	}
	if coalesced {
		s.m.jobsCoalesced.Add(1)
		s.cfg.Logger.Debug("submission coalesced", "job", j.ID, "trace", j.TraceID, "scenario", hash)
		return j, true, nil
	}
	if hit {
		s.m.cacheHits.Add(1)
	} else {
		s.m.cacheMisses.Add(1)
	}
	s.m.jobsSubmitted.Add(1)
	s.cfg.Logger.Info("job admitted", "job", j.ID, "trace", j.TraceID, "scenario", hash, "cached", hit)
	return j, false, nil
}

// admit is admitDetail for callers that treat coalescing as success.
func (s *Server) admit(sc scenario.Scenario, hash string) (*Job, error) {
	j, _, err := s.admitDetail(sc, hash)
	return j, err
}

func (s *Server) job(r *http.Request) (*Job, bool) {
	return s.store.Get(r.PathValue("id"))
}

// handleList answers GET /v1/jobs: every retained job in submission order,
// optionally filtered with ?state=queued|running|done|failed|canceled and
// truncated with ?limit=N to the N most recent matches.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := State(q.Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		httpError(w, http.StatusBadRequest, "unknown state %q (have queued, running, done, failed, canceled)", state)
		return
	}
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "limit %q is not a non-negative integer", ls)
			return
		}
		limit = v
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.List(state, limit)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.hub.Serve(w, r, j)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("X-NCC-Job-Id", j.ID)
	w.Header().Set("X-NCC-Trace-Id", j.TraceID)
	s.hub.ServeTrace(w, r, j)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.store.Draining()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	total, free := s.backend.Capacity()
	var workers []WorkerInfo
	if s.cluster != nil {
		workers = s.cluster.reg.snapshot()
	}
	s.m.render(w, total, free, s.cache.len(), workers, s.cluster != nil)
}
