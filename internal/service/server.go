package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"ncc/internal/scenario"
)

// Config parameterizes a Server. Zero values mean the defaults.
type Config struct {
	// WorkerBudget is the total number of engine workers shared across every
	// concurrently executing job (default GOMAXPROCS). A single run never
	// uses more than the budget; concurrent runs split it, FIFO-fair.
	WorkerBudget int

	// Executors is the number of jobs executing concurrently (default 2).
	// Runs within one job are always sequential: the record stream is
	// ordered like a local sweep.
	Executors int

	// QueueLimit bounds the number of queued jobs; submissions beyond it are
	// rejected with 503 (default 256).
	QueueLimit int

	// CacheDir, when non-empty, persists completed sweeps as content-addressed
	// NDJSON files so the cache survives restarts. Empty keeps the cache
	// in memory only.
	CacheDir string

	// MaxBodyBytes bounds a submission body (default 1 MiB).
	MaxBodyBytes int64

	// RetainJobs bounds how many jobs the daemon remembers (default 1024).
	// When a new submission would exceed it, the oldest terminal jobs are
	// forgotten (their results stay in the result cache); running and queued
	// jobs are never pruned. A forgotten job id answers 404.
	RetainJobs int

	// CacheEntries bounds the in-memory result-cache entries (default 4096),
	// evicted FIFO. With CacheDir set, evicted sweeps remain on disk and are
	// re-promoted on their next hit.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	return c
}

// Server is the scenario-execution service behind cmd/nccd: it validates
// submitted scenarios against the registries, executes them on the shared
// scheduler, streams results as NDJSON, and answers identical re-submissions
// from the content-addressed result cache.
type Server struct {
	cfg   Config
	m     *metrics
	cache *cache
	sched *scheduler

	mu       sync.Mutex // guards jobs/order/byHash/nextID and draining vs enqueue
	jobs     map[string]*Job
	order    []*Job
	byHash   map[string]*Job // latest executing job per canonical hash
	nextID   int
	draining bool
}

// New builds a Server (creating the cache directory if configured).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	c, err := newCache(cfg.CacheDir, cfg.CacheEntries)
	if err != nil {
		return nil, err
	}
	m := newMetrics()
	return &Server{
		cfg:    cfg,
		m:      m,
		cache:  c,
		sched:  newScheduler(cfg.WorkerBudget, cfg.Executors, cfg.QueueLimit, c, m),
		jobs:   map[string]*Job{},
		byHash: map[string]*Job{},
	}, nil
}

// Drain stops accepting submissions and waits for queued and running jobs to
// finish. If ctx expires first, every live job is canceled (in-flight runs
// unwind within one round barrier) and Drain returns ctx.Err after the tail
// completes. Drain is idempotent only in its refusal of new work; call it
// once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	return s.sched.drain(ctx, func() {
		s.mu.Lock()
		jobs := append([]*Job(nil), s.order...)
		s.mu.Unlock()
		for _, j := range jobs {
			j.Cancel()
		}
	})
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs              submit a scenario (strict JSON), returns JobInfo
//	GET  /v1/jobs              list jobs in submission order
//	GET  /v1/jobs/{id}         one job's status
//	GET  /v1/jobs/{id}/records NDJSON record stream, live while the job runs
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /healthz              liveness (and drain state)
//	GET  /metrics              Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/records", s.handleRecords)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "scenario body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	sc, err := scenario.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := sc.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := sc.Hash()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The cache lookup may touch disk; do it before taking the server lock
	// so submissions never serialize the status/health endpoints behind file
	// I/O. A hit that lands between this lookup and the lock merely costs a
	// redundant execution — coalescing below still catches in-flight twins.
	cached, hit := s.cache.get(hash)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining, not accepting jobs")
		return
	}
	// In-flight coalescing: an identical scenario already queued or running
	// is the same computation — hand back that job (its stream delivers
	// exactly the records this submission would produce) instead of burning
	// a second executor on it. Terminal non-done jobs (canceled, failed)
	// don't count; a fresh submission retries those.
	if prev, ok := s.byHash[hash]; ok {
		if info := prev.Info(); !info.State.terminal() {
			s.m.jobsCoalesced.Add(1)
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j%06d", s.nextID), hash, sc)
	if hit {
		j.completeFromCache(cached)
		s.m.cacheHits.Add(1)
	} else {
		s.m.cacheMisses.Add(1)
		if err := s.sched.enqueue(j); err != nil {
			s.nextID--
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.byHash[hash] = j
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.pruneLocked()
	s.m.jobsSubmitted.Add(1)
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, j.Info())
}

// pruneLocked forgets the oldest terminal jobs once the retention bound is
// exceeded, so a long-running daemon's memory stays proportional to the
// bound, not to its lifetime submission count. Live jobs are never pruned;
// completed results survive in the result cache. Callers hold s.mu.
func (s *Server) pruneLocked() {
	excess := len(s.order) - s.cfg.RetainJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if excess > 0 && j.Info().State.terminal() {
			delete(s.jobs, j.ID)
			if s.byHash[j.Hash] == j {
				delete(s.byHash, j.Hash)
			}
			excess--
			continue
		}
		kept = append(kept, j)
	}
	clear(s.order[len(kept):])
	s.order = kept
}

func (s *Server) job(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]JobInfo, len(s.order))
	for i, j := range s.order {
		infos[i] = j.Info()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Info())
}

// handleRecords streams a job's records as NDJSON: everything produced so
// far, then live lines as the sweep emits them, terminating when the job
// reaches a terminal state or the client goes away. Each line is the exact
// bytes `nccrun -json` would print for the scenario the job *executed*; a
// cache hit or coalesced submission replays the original submission's
// stream verbatim, so a semantically identical re-spelling sees the first
// submission's record echoes (display name, workers, sweep-axis order).
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		lines, terminal, changed := j.next(sent)
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
			s.m.recordsStreamed.Add(1)
		}
		sent += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal && len(lines) == 0 {
			return
		}
		if terminal {
			continue // drain any lines appended after the terminal flip
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": draining})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.render(w, s.cfg.WorkerBudget, s.sched.pool.available(), s.cache.len())
}
