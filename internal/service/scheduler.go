package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"ncc/internal/graph"
	"ncc/internal/ncc"
	"ncc/internal/obs"
	"ncc/internal/param"
	"ncc/internal/scenario"
)

// tokenPool is the global engine-worker budget shared by every job. A run
// acquires between 1 and want tokens — whatever is free — and sets the
// engine's worker count to what it got, so a huge sweep consumes the whole
// budget only while nothing else is waiting. Acquisition is strictly FIFO
// (ticket-ordered): a small job that arrives while a 1M-node sweep holds the
// budget is first in line the moment the sweep's current run returns its
// tokens, and the sweep's next run queues behind it — between-run yields
// bound a small request's wait by one run, never by a whole sweep.
type tokenPool struct {
	mu            sync.Mutex
	cond          sync.Cond
	free          int
	next, serving uint64
}

func newTokenPool(budget int) *tokenPool {
	p := &tokenPool{free: budget}
	p.cond.L = &p.mu
	return p
}

// acquire blocks until this caller is first in line and at least one token is
// free, then takes min(want, free) tokens and returns the count.
func (p *tokenPool) acquire(want int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	ticket := p.next
	p.next++
	for p.serving != ticket || p.free == 0 {
		p.cond.Wait()
	}
	p.serving++
	got := min(max(1, want), p.free)
	p.free -= got
	p.cond.Broadcast() // the next ticket may proceed if tokens remain
	return got
}

func (p *tokenPool) release(n int) {
	p.mu.Lock()
	p.free += n
	p.cond.Broadcast()
	p.mu.Unlock()
}

// available reports the currently unassigned tokens (metrics).
func (p *tokenPool) available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// LocalBackend executes jobs in-process on a fixed set of executor goroutines
// pulling from a bounded FIFO queue. Each job's expanded runs execute
// sequentially (the record stream is ordered), while distinct jobs proceed
// concurrently, competing for engine workers through the token pool. It is
// the ExecBackend of a plain nccd and of every nccd worker in a cluster.
type LocalBackend struct {
	budget int
	queue  chan *Job
	pool   *tokenPool
	wg     sync.WaitGroup
	m      *metrics
	cache  CacheTier
	log    *slog.Logger
}

func newLocalBackend(budget, executors, queueLimit int, c CacheTier, m *metrics, log *slog.Logger) *LocalBackend {
	b := &LocalBackend{
		budget: budget,
		queue:  make(chan *Job, queueLimit),
		pool:   newTokenPool(budget),
		m:      m,
		cache:  c,
		log:    log,
	}
	for i := 0; i < executors; i++ {
		b.wg.Add(1)
		go b.executor()
	}
	return b
}

// errQueueFull rejects submissions beyond the queue limit.
var errQueueFull = errors.New("job queue is full")

// Submit adds a job without blocking. The caller serializes Submit against
// Drain (the JobStore's admission lock), so sending on a closed queue cannot
// happen.
func (b *LocalBackend) Submit(j *Job) error {
	select {
	case b.queue <- j:
		b.m.jobsQueued.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

// Capacity reports the engine-worker budget and its free share.
func (b *LocalBackend) Capacity() (total, free int) {
	return b.budget, b.pool.available()
}

func (b *LocalBackend) executor() {
	defer b.wg.Done()
	for j := range b.queue {
		b.m.jobsQueued.Add(-1)
		b.runJob(j)
	}
}

// workersFor decides how many engine workers a run would ideally use: its
// model's explicit choice or GOMAXPROCS, capped by the graph size (a 32-node
// run cannot use more than 32 workers — the engine clamps anyway, but tokens
// reserved here stay reserved, so over-asking would idle budget other jobs
// could use) and by the global budget.
func (b *LocalBackend) workersFor(c scenario.Scenario) int {
	want := c.Model.Workers
	if want <= 0 {
		want = runtime.GOMAXPROCS(0)
	}
	if n := specNodeCount(c.Graph); n >= 1 && want > n {
		want = n
	}
	return min(want, b.budget)
}

// specNodeCount estimates a graph spec's node count from its resolved
// parameters (defaults included), covering every registered family's sizing
// convention: n, rows*cols, n1+n2, parts*size, or 2^k for the hypercube.
// Returns 0 when the family is unknown or unsized — callers treat that as
// "no cap". This is a scheduling hint only; results never depend on it.
func specNodeCount(spec graph.Spec) int {
	f, ok := graph.GetFamily(spec.Family)
	if !ok {
		return 0
	}
	v, err := param.Resolve(spec.Params, f.Params)
	if err != nil {
		return 0
	}
	switch {
	case v["n"] >= 1:
		return int(v["n"])
	case v["rows"] >= 1 && v["cols"] >= 1:
		return int(v["rows"]) * int(v["cols"])
	case v["n1"] >= 1 || v["n2"] >= 1:
		return int(v["n1"]) + int(v["n2"])
	case v["parts"] >= 1 && v["size"] >= 1:
		return int(v["parts"]) * int(v["size"])
	case v["k"] >= 1: // hypercube: 2^k nodes (only sized by k alone)
		if k := int(v["k"]); k < 30 {
			return 1 << k
		}
	}
	return 0
}

func (b *LocalBackend) runJob(j *Job) {
	if !j.setRunning() {
		b.m.jobsCanceled.Add(1) // canceled while queued
		return
	}
	b.m.jobsRunning.Add(1)
	defer b.m.jobsRunning.Add(-1)
	b.log.Info("job running", "job", j.ID, "trace", j.TraceID)
	// Every executed job records its telemetry trace. The canonical lines are
	// deterministic (no timing lines here — the collector stays canonical-only
	// so local and cluster traces are byte-identical), so caching the trace
	// alongside the records preserves the replay guarantee.
	col := &obs.Collector{}
	// The probe below runs on the engine's coordinator goroutine; lastRound is
	// reset before each run so queue/build time is not charged to round 0.
	var lastRound time.Time
	probe := func(ncc.RoundSample, []ncc.ShardTiming) {
		b.m.roundDuration.observeSince(lastRound)
		lastRound = time.Now()
	}
	for _, c := range j.Scenario.Expand() {
		if j.canceled() {
			break
		}
		got := b.pool.acquire(b.workersFor(c))
		lastRound = time.Now()
		rec, err := scenario.RunTraced(c, col, scenario.RunOpts{Cancel: j.cancel, Workers: got, Probe: probe})
		b.pool.release(got)
		if err != nil {
			if errors.Is(err, ncc.ErrCanceled) {
				break
			}
			// Run failures are sweep entries, exactly as in a local sweep:
			// the record carries the error and the job continues.
			rec.Error = err.Error()
		}
		line, merr := json.Marshal(rec)
		if merr != nil {
			j.finish(StateFailed, fmt.Sprintf("encoding record: %v", merr))
			b.m.jobsFailed.Add(1)
			b.log.Error("job failed", "job", j.ID, "trace", j.TraceID, "err", merr)
			return
		}
		j.appendLine(line)
		b.m.recordsProduced.Add(1)
		if tl := col.TakeLines(); len(tl) > 0 {
			j.appendTraceLines(tl)
			b.m.traceLinesProduced.Add(int64(len(tl)))
		}
	}
	if j.canceled() {
		j.finish(StateCanceled, "")
		b.m.jobsCanceled.Add(1)
		b.log.Info("job canceled", "job", j.ID, "trace", j.TraceID)
		return
	}
	j.finish(StateDone, "")
	b.m.jobsDone.Add(1)
	b.m.jobLatency.observeSince(j.Submitted)
	b.log.Info("job done", "job", j.ID, "trace", j.TraceID, "records", j.lineCount())
	lines, trace := j.resultLines()
	if err := b.cache.put(j.Hash, lines, trace); err != nil {
		// Disk persistence is best-effort; the in-memory entry is in place.
		b.m.cacheWriteErrors.Add(1)
	}
}

// Drain stops the executors after the already-queued jobs finish. If ctx
// expires first, cancelAll is invoked (the server cancels every live job,
// which unwinds in-flight runs within one round barrier) and Drain waits for
// the now-short tail.
func (b *LocalBackend) Drain(ctx context.Context, cancelAll func()) error {
	close(b.queue)
	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		cancelAll()
		<-done
		return ctx.Err()
	}
}
