package service

import (
	"bytes"
	"fmt"
	"testing"
)

func lines(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestCacheFIFOEviction(t *testing.T) {
	c, err := newCache("", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := c.put(fmt.Sprintf("h%d", i), lines(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.get("h1"); ok {
		t.Fatal("oldest entry h1 survived past the bound")
	}
	for _, h := range []string{"h2", "h3"} {
		if _, _, ok := c.get(h); !ok {
			t.Fatalf("entry %s was wrongly evicted", h)
		}
	}
	if n := c.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// Re-storing an existing key must not evict it, whatever its age.
	if err := c.put("h2", lines("r2b"), nil); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := c.get("h2"); !ok || !bytes.Equal(got[0], []byte("r2b")) {
		t.Fatalf("re-stored h2 = %q, %v", got, ok)
	}
}

func TestCacheDiskTierOutlivesEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := newCache(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.put("aa11", lines(`{"x":1}`, `{"x":2}`), lines(`{"t":"h"}`)); err != nil {
		t.Fatal(err)
	}
	if err := c.put("bb22", lines(`{"y":1}`), nil); err != nil {
		t.Fatal(err) // evicts aa11 from memory; its file remains
	}
	got, trace, ok := c.get("aa11")
	if !ok {
		t.Fatal("evicted entry not re-promoted from disk")
	}
	if len(got) != 2 || !bytes.Equal(got[0], []byte(`{"x":1}`)) {
		t.Fatalf("disk round-trip mangled lines: %q", got)
	}
	if len(trace) != 1 || !bytes.Equal(trace[0], []byte(`{"t":"h"}`)) {
		t.Fatalf("disk round-trip mangled trace: %q", trace)
	}
}
