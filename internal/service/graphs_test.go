package service_test

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"ncc/internal/graph"
	"ncc/internal/graphio"
	"ncc/internal/param"
	"ncc/internal/service"
)

// putGraph uploads raw .nccg bytes under the given hash and returns the status.
func putGraph(t *testing.T, base, hash string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/graphs/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestGraphRoutes covers the graph store's HTTP surface: upload, idempotent
// re-upload, download byte-identity, and the rejection paths.
func TestGraphRoutes(t *testing.T) {
	ts := newTestServer(t, service.Config{GraphDir: t.TempDir()})

	g, err := graph.Build(graph.Spec{Family: "kforest", Params: param.Values{"n": 64}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if err := graphio.Encode(&enc, g); err != nil {
		t.Fatal(err)
	}
	st, err := graphio.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash, err := st.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}

	if got := putGraph(t, ts.URL, hash, enc.Bytes()); got != http.StatusCreated {
		t.Fatalf("first PUT: status %d, want 201", got)
	}
	if got := putGraph(t, ts.URL, hash, enc.Bytes()); got != http.StatusOK {
		t.Fatalf("re-PUT: status %d, want 200", got)
	}
	if got := fetch(t, ts.URL+"/v1/graphs/"+hash); !bytes.Equal(got, enc.Bytes()) {
		t.Fatal("downloaded graph bytes differ from the upload")
	}

	wrong := strings.Repeat("ab", 32)
	if got := putGraph(t, ts.URL, wrong, enc.Bytes()); got != http.StatusBadRequest {
		t.Fatalf("PUT under a wrong hash: status %d, want 400", got)
	}
	if got := putGraph(t, ts.URL, hash[:10], enc.Bytes()); got != http.StatusBadRequest {
		t.Fatalf("PUT under a malformed hash: status %d, want 400", got)
	}
	if got := putGraph(t, ts.URL, wrong, []byte("not a graph")); got != http.StatusBadRequest {
		t.Fatalf("PUT of garbage bytes: status %d, want 400", got)
	}
	resp, err := http.Get(ts.URL + "/v1/graphs/" + strings.Repeat("cd", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET of a missing graph: status %d, want 404", resp.StatusCode)
	}
}

// TestClusterFileGraphSweep is the ingestion subsystem's cluster acceptance
// path: a content-addressed graph is uploaded to the coordinator, referenced
// by hash from a file-family scenario with degree-proportional capacities,
// and executed by workers whose local stores have never seen it — they fetch
// it through GET /v1/graphs on demand. The cluster stream must be
// byte-identical to a local run, and the re-submission cached.
func TestClusterFileGraphSweep(t *testing.T) {
	// Build and store the graph locally, and compute the expected stream
	// while the local store still holds it.
	srcDir := t.TempDir()
	graphio.SetStoreDir(srcDir)
	t.Cleanup(func() {
		graphio.SetFetcher(nil)
		graphio.SetStoreDir("")
	})
	g, err := graph.Build(graph.Spec{Family: "pa", Params: param.Values{"n": 128, "k": 2}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	st, err := graphio.ActiveStore()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := st.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	fileJSON := `{"name":"real","algo":"mis","graph":{"family":"file","file":"` + hash + `"},` +
		`"model":{"seed":5},"capacities":{"policy":"degree"},"sweep":{"seeds":[1,2,3]}}`
	want := localLines(t, fileJSON)

	// Upload the graph to the coordinator, then point the process's resolver
	// at an empty store with the coordinator as its fetch fallback — the
	// position a fresh cluster worker is in.
	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute, GraphDir: t.TempDir()})
	enc, err := os.ReadFile(st.Path(hash))
	if err != nil {
		t.Fatal(err)
	}
	if got := putGraph(t, coord.URL, hash, enc); got != http.StatusCreated {
		t.Fatalf("uploading graph to coordinator: status %d, want 201", got)
	}
	graphio.SetStoreDir(t.TempDir())
	graphio.SetFetcher(service.GraphFetcher(coord.URL, ""))

	w1 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	w2 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	registerWorker(t, coord.URL, "w1", w1.URL, 1)
	registerWorker(t, coord.URL, "w2", w2.URL, 1)

	info := submit(t, coord.URL, fileJSON)
	got := fetch(t, coord.URL+"/v1/jobs/"+info.ID+"/records")
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster file-graph stream differs from local run:\nlocal:   %q\ncluster: %q", want, got)
	}
	if !strings.Contains(string(got), `"capMin"`) {
		t.Fatal("records carry no heterogeneous capacity range")
	}

	info2 := submit(t, coord.URL, fileJSON)
	if !info2.Cached {
		t.Fatal("identical file-graph re-submission missed the result cache")
	}
	if got2 := fetch(t, coord.URL+"/v1/jobs/"+info2.ID+"/records"); !bytes.Equal(got2, want) {
		t.Fatal("cached file-graph stream differs from the original")
	}
}
