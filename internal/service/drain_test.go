package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ncc/internal/service"
)

// TestDrainCompletesInFlight is the graceful half of shutdown (TestDrain in
// e2e_test.go covers the forced half): with the grace period ample, Drain
// lets the running job AND the job queued behind it finish with complete
// streams, refuses new submissions with 503 the moment draining starts, and
// returns nil.
func TestDrainCompletesInFlight(t *testing.T) {
	svc, err := service.New(service.Config{WorkerBudget: 2, Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	wantSlow := localLines(t, slowSweepJSON)
	wantSweep := localLines(t, sweepJSON)

	// One executor: the slow sweep runs, the ordinary sweep queues behind it.
	running := submit(t, ts.URL, slowSweepJSON)
	waitRecords(t, ts.URL, running.ID, 1, 30*time.Second)
	queued := submit(t, ts.URL, sweepJSON)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()

	// As soon as /healthz reports draining, fresh submissions get 503.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Draining bool `json:"draining"`
		}
		if err := json.Unmarshal(fetch(t, ts.URL+"/healthz"), &health); err != nil {
			t.Fatal(err)
		}
		if health.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, status := trySubmit(t, ts.URL, spinJSON); status != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", status)
	}

	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain with ample grace returned %v, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain never returned")
	}

	// Both jobs finished with complete, byte-identical streams — the drain
	// canceled nothing.
	for _, tc := range []struct {
		id   string
		want []byte
	}{{running.ID, wantSlow}, {queued.ID, wantSweep}} {
		if st := jobInfo(t, ts.URL, tc.id).State; st != service.StateDone {
			t.Fatalf("job %s state after graceful drain: %q, want done", tc.id, st)
		}
		if got := fetch(t, ts.URL+"/v1/jobs/"+tc.id+"/records"); !bytes.Equal(got, tc.want) {
			t.Fatalf("job %s stream truncated or altered by drain", tc.id)
		}
	}
}

// TestListFilterAndLimit covers GET /v1/jobs query handling: ?state= filters,
// ?limit= keeps the most recent matches, both compose, and malformed values
// are 400s rather than silently ignored.
func TestListFilterAndLimit(t *testing.T) {
	svc, err := service.New(service.Config{WorkerBudget: 2, Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Three terminal jobs (done, done, canceled) and one running spinner.
	done1 := submit(t, ts.URL, sweepJSON)
	waitState(t, ts.URL, done1.ID, service.StateDone, 30*time.Second)
	done2 := submit(t, ts.URL, strings.Replace(sweepJSON, `"seeds":[1,2]`, `"seeds":[3]`, 1))
	waitState(t, ts.URL, done2.ID, service.StateDone, 30*time.Second)
	// A spin variant (distinct n, so a distinct hash) can't finish on its own
	// — canceling it is race-free.
	canceled := submit(t, ts.URL, strings.Replace(spinJSON, `"n":32`, `"n":24`, 1))
	waitState(t, ts.URL, canceled.ID, service.StateRunning, 10*time.Second)
	cancelJob(t, ts.URL, canceled.ID)
	waitState(t, ts.URL, canceled.ID, service.StateCanceled, 10*time.Second)
	spinning := submit(t, ts.URL, spinJSON)
	waitState(t, ts.URL, spinning.ID, service.StateRunning, 10*time.Second)
	defer cancelJob(t, ts.URL, spinning.ID)

	ids := func(url string) []string {
		var list struct {
			Jobs []service.JobInfo `json:"jobs"`
		}
		if err := json.Unmarshal(fetch(t, url), &list); err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(list.Jobs))
		for i, j := range list.Jobs {
			out[i] = j.ID
		}
		return out
	}
	eq := func(got, want []string) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	if got := ids(ts.URL + "/v1/jobs"); !eq(got, []string{done1.ID, done2.ID, canceled.ID, spinning.ID}) {
		t.Fatalf("unfiltered list = %v", got)
	}
	if got := ids(ts.URL + "/v1/jobs?state=done"); !eq(got, []string{done1.ID, done2.ID}) {
		t.Fatalf("?state=done = %v, want [%s %s]", got, done1.ID, done2.ID)
	}
	if got := ids(ts.URL + "/v1/jobs?state=running"); !eq(got, []string{spinning.ID}) {
		t.Fatalf("?state=running = %v, want [%s]", got, spinning.ID)
	}
	if got := ids(ts.URL + "/v1/jobs?state=failed"); len(got) != 0 {
		t.Fatalf("?state=failed = %v, want empty", got)
	}
	// limit keeps the MOST RECENT matches, still in submission order.
	if got := ids(ts.URL + "/v1/jobs?limit=2"); !eq(got, []string{canceled.ID, spinning.ID}) {
		t.Fatalf("?limit=2 = %v, want [%s %s]", got, canceled.ID, spinning.ID)
	}
	if got := ids(ts.URL + "/v1/jobs?state=done&limit=1"); !eq(got, []string{done2.ID}) {
		t.Fatalf("?state=done&limit=1 = %v, want [%s]", got, done2.ID)
	}
	if got := ids(ts.URL + "/v1/jobs?limit=0"); len(got) != 4 {
		t.Fatalf("?limit=0 returned %d jobs, want all 4 (0 means unlimited)", len(got))
	}

	for _, bad := range []string{"?state=nonsense", "?limit=-1", "?limit=abc"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func cancelJob(t *testing.T, base, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
	}
}
