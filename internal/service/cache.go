package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// CacheTier is the content-addressed result store seam: canonical scenario
// hash -> the complete NDJSON record stream of one executed sweep. The
// default tier (newCache) is per-process memory with an optional disk
// directory; the interface exists so a shared or replicated tier (a cache
// directory on network storage, a remote cache service) can drop in without
// touching the store, the backends, or the handlers. Implementations must be
// safe for concurrent use; put is best-effort (an error means the entry may
// not persist, not that the job failed).
type CacheTier interface {
	get(hash string) ([][]byte, bool)
	put(hash string, lines [][]byte) error
	len() int
}

// cache is the default CacheTier. Entries live in memory and, when a
// directory is configured, as one <hash>.ndjson file each, so a restarted
// daemon keeps serving past results. Records are stored as the exact
// marshaled lines the first execution streamed, so a cache hit is
// byte-identical to the run that populated it.
type cache struct {
	mu   sync.Mutex // held across disk reads; cache traffic is not a hot path
	mem  map[string][][]byte
	fifo []string // insertion order of mem keys, oldest first
	max  int      // in-memory entry bound; evicted FIFO (disk tier keeps all)
	dir  string
}

func newCache(dir string, maxEntries int) (*cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache dir: %w", err)
		}
	}
	return &cache{mem: map[string][][]byte{}, max: maxEntries, dir: dir}, nil
}

// get returns the cached record lines for hash, consulting memory first and
// the disk tier second (a disk hit is promoted into memory).
func (c *cache) get(hash string) ([][]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lines, ok := c.mem[hash]; ok {
		return lines, true
	}
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, false
	}
	lines := splitLines(data)
	c.storeLocked(hash, lines)
	return lines, true
}

// storeLocked inserts an in-memory entry, evicting the oldest entries beyond
// the bound. Callers hold c.mu.
func (c *cache) storeLocked(hash string, lines [][]byte) {
	if _, exists := c.mem[hash]; !exists {
		c.fifo = append(c.fifo, hash)
	}
	c.mem[hash] = lines
	// Every live key appears exactly once in fifo, so this terminates.
	for c.max > 0 && len(c.mem) > c.max {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		if old == hash { // never evict the entry just stored
			c.fifo = append(c.fifo, old)
			continue
		}
		delete(c.mem, old)
	}
}

// put stores a completed sweep's record lines under hash. The disk write goes
// through a temp file + rename so a crashed daemon never leaves a torn entry.
func (c *cache) put(hash string, lines [][]byte) error {
	c.mu.Lock()
	c.storeLocked(hash, lines)
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	var buf bytes.Buffer
	for _, ln := range lines {
		buf.Write(ln)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), c.path(hash))
}

// len reports the number of in-memory entries (metrics).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

func (c *cache) path(hash string) string {
	// Hashes are internally generated hex, but never let a stray value walk
	// the filesystem.
	return filepath.Join(c.dir, filepath.Base(hash)+".ndjson")
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	for _, ln := range bytes.Split(data, []byte{'\n'}) {
		if len(ln) > 0 {
			out = append(out, ln)
		}
	}
	return out
}
