package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// CacheTier is the content-addressed result store seam: canonical scenario
// hash -> the complete NDJSON record stream of one executed sweep, plus its
// telemetry trace when one was recorded (traces are deterministic, so the
// cached trace is exactly what a re-execution would produce). The default
// tier (newCache) is per-process memory with an optional disk directory; the
// interface exists so a shared or replicated tier (a cache directory on
// network storage, a remote cache service) can drop in without touching the
// store, the backends, or the handlers. Implementations must be safe for
// concurrent use; put is best-effort (an error means the entry may not
// persist, not that the job failed).
type CacheTier interface {
	get(hash string) (lines, trace [][]byte, ok bool)
	put(hash string, lines, trace [][]byte) error
	len() int
}

// cache is the default CacheTier. Entries live in memory and, when a
// directory is configured, as one <hash>.ndjson file each (plus a
// <hash>.trace file when the run recorded telemetry), so a restarted daemon
// keeps serving past results. Records are stored as the exact marshaled
// lines the first execution streamed, so a cache hit is byte-identical to
// the run that populated it.
type cache struct {
	mu   sync.Mutex // held across disk reads; cache traffic is not a hot path
	mem  map[string]cacheEntry
	fifo []string // insertion order of mem keys, oldest first
	max  int      // in-memory entry bound; evicted FIFO (disk tier keeps all)
	dir  string
}

type cacheEntry struct {
	lines [][]byte
	trace [][]byte
}

func newCache(dir string, maxEntries int) (*cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache dir: %w", err)
		}
	}
	return &cache{mem: map[string]cacheEntry{}, max: maxEntries, dir: dir}, nil
}

// get returns the cached record and trace lines for hash, consulting memory
// first and the disk tier second (a disk hit is promoted into memory). The
// trace is nil when the populating run recorded none.
func (c *cache) get(hash string) (lines, trace [][]byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.mem[hash]; ok {
		return e.lines, e.trace, true
	}
	if c.dir == "" {
		return nil, nil, false
	}
	data, err := os.ReadFile(c.path(hash, ".ndjson"))
	if err != nil {
		return nil, nil, false
	}
	e := cacheEntry{lines: splitLines(data)}
	if tdata, err := os.ReadFile(c.path(hash, ".trace")); err == nil {
		e.trace = splitLines(tdata)
	}
	c.storeLocked(hash, e)
	return e.lines, e.trace, true
}

// storeLocked inserts an in-memory entry, evicting the oldest entries beyond
// the bound. Callers hold c.mu.
func (c *cache) storeLocked(hash string, e cacheEntry) {
	if _, exists := c.mem[hash]; !exists {
		c.fifo = append(c.fifo, hash)
	}
	c.mem[hash] = e
	// Every live key appears exactly once in fifo, so this terminates.
	for c.max > 0 && len(c.mem) > c.max {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		if old == hash { // never evict the entry just stored
			c.fifo = append(c.fifo, old)
			continue
		}
		delete(c.mem, old)
	}
}

// put stores a completed sweep's record and trace lines under hash. Disk
// writes go through a temp file + rename so a crashed daemon never leaves a
// torn entry.
func (c *cache) put(hash string, lines, trace [][]byte) error {
	c.mu.Lock()
	c.storeLocked(hash, cacheEntry{lines: lines, trace: trace})
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	if err := c.writeFile(c.path(hash, ".ndjson"), lines); err != nil {
		return err
	}
	if len(trace) == 0 {
		return nil
	}
	return c.writeFile(c.path(hash, ".trace"), trace)
}

func (c *cache) writeFile(path string, lines [][]byte) error {
	var buf bytes.Buffer
	for _, ln := range lines {
		buf.Write(ln)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// len reports the number of in-memory entries (metrics).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

func (c *cache) path(hash, ext string) string {
	// Hashes are internally generated hex, but never let a stray value walk
	// the filesystem.
	return filepath.Join(c.dir, filepath.Base(hash)+ext)
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	for _, ln := range bytes.Split(data, []byte{'\n'}) {
		if len(ln) > 0 {
			out = append(out, ln)
		}
	}
	return out
}
