package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ncc/internal/algo"
	"ncc/internal/comm"
	"ncc/internal/scenario"
	"ncc/internal/service"
)

// spin-test is a test-only algorithm that runs until the engine aborts it
// (cancellation or MaxRounds); it exists so the cancellation and drain tests
// have a genuinely in-flight run to kill. The per-round sleep keeps it from
// burning through MaxRounds while a test sets up.
func init() {
	algo.Register(algo.Algorithm[int]{
		Name: "spin-test",
		Desc: "test-only: spins through rounds until aborted",
		Node: func(s *comm.Session, in *algo.Input) int {
			for {
				s.Ctx.EndRound()
				time.Sleep(200 * time.Microsecond)
			}
		},
	})
}

const sweepJSON = `{"name":"e2e","algo":"mis","graph":{"family":"kforest","params":{"n":16,"k":2},"seed":1},"model":{"capfactor":4,"seed":1},"sweep":{"n":[16,24],"seeds":[1,2]}}`

const spinJSON = `{"name":"spin","algo":"spin-test","graph":{"family":"kforest","params":{"n":32,"k":2},"seed":1},"model":{"seed":1}}`

func newTestServer(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// localLines renders js exactly as `nccrun -json` does: one marshaled Record
// per line.
func localLines(t *testing.T, js string) []byte {
	t.Helper()
	s, err := scenario.Decode([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, rec := range scenario.Run(s) {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func submit(t *testing.T, base, js string) service.JobInfo {
	t.Helper()
	info, status := trySubmit(t, base, js)
	if status != http.StatusCreated {
		t.Fatalf("POST /v1/jobs: status %d", status)
	}
	return info
}

func trySubmit(t *testing.T, base, js string) (service.JobInfo, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info service.JobInfo
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info, resp.StatusCode
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func jobInfo(t *testing.T, base, id string) service.JobInfo {
	t.Helper()
	var info service.JobInfo
	if err := json.Unmarshal(fetch(t, base+"/v1/jobs/"+id), &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func waitState(t *testing.T, base, id string, want service.State, timeout time.Duration) service.JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info := jobInfo(t, base, id)
		if info.State == want {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q, want %q", id, info.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(fetch(t, base+"/metrics")), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestEndToEnd is the tentpole acceptance test: a sweep submitted over HTTP
// streams records byte-identical to a local execution, and a second identical
// submission is answered from the result cache (observable both in the
// JobInfo and the cache-hit counter) with, again, the identical bytes.
func TestEndToEnd(t *testing.T) {
	want := localLines(t, sweepJSON)
	ts := newTestServer(t, service.Config{WorkerBudget: 4, Executors: 2})

	info := submit(t, ts.URL, sweepJSON)
	if info.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	got := fetch(t, ts.URL+"/v1/jobs/"+info.ID+"/records")
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed records differ from local run:\nlocal:  %q\nremote: %q", want, got)
	}
	if n := metricValue(t, ts.URL, "nccd_cache_hits_total"); n != 0 {
		t.Fatalf("cache hits after first submission = %g, want 0", n)
	}

	info2 := submit(t, ts.URL, sweepJSON)
	if !info2.Cached {
		t.Fatal("identical re-submission was not served from the cache")
	}
	if info2.ID == info.ID {
		t.Fatal("re-submission reused the job id")
	}
	got2 := fetch(t, ts.URL+"/v1/jobs/"+info2.ID+"/records")
	if !bytes.Equal(got2, want) {
		t.Fatal("cached stream differs from the original")
	}
	if n := metricValue(t, ts.URL, "nccd_cache_hits_total"); n != 1 {
		t.Fatalf("nccd_cache_hits_total = %g, want 1", n)
	}

	// A semantically identical spelling — permuted sweep axes, default
	// capfactor written out differently, another display name — also hits.
	respun := `{"name":"respelled","algo":"mis","graph":{"params":{"k":2,"n":16},"family":"kforest","seed":1},"model":{"seed":1,"capfactor":4,"workers":3},"sweep":{"seeds":[2,1],"n":[24,16]}}`
	info3 := submit(t, ts.URL, respun)
	if !info3.Cached {
		t.Fatal("semantically identical re-spelling missed the cache")
	}

	var list struct {
		Jobs []service.JobInfo `json:"jobs"`
	}
	if err := json.Unmarshal(fetch(t, ts.URL+"/v1/jobs"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 3 {
		t.Fatalf("job listing has %d entries, want 3", len(list.Jobs))
	}
}

// TestCancelInFlight cancels a job whose run never terminates on its own and
// checks that the cancellation propagates through the engine's abort path
// promptly — within one round barrier, not at MaxRounds.
func TestCancelInFlight(t *testing.T) {
	ts := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	info := submit(t, ts.URL, spinJSON)
	waitState(t, ts.URL, info.ID, service.StateRunning, 10*time.Second)
	time.Sleep(20 * time.Millisecond) // let the run get genuinely in flight

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/jobs/"+info.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, info.ID, service.StateCanceled, 10*time.Second)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want well under the MaxRounds horizon", d)
	}
	// The record stream of a canceled job terminates (empty: the only run
	// was aborted before producing a record).
	if got := fetch(t, ts.URL+"/v1/jobs/"+info.ID+"/records"); len(got) != 0 {
		t.Fatalf("canceled job streamed %q, want empty", got)
	}
	if n := metricValue(t, ts.URL, "nccd_jobs_canceled_total"); n != 1 {
		t.Fatalf("nccd_jobs_canceled_total = %g, want 1", n)
	}
}

// TestCoalesceInFlight submits a scenario identical to one still running:
// the server must hand back the running job (200, same id) instead of
// executing the same computation twice.
func TestCoalesceInFlight(t *testing.T) {
	ts := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 2})
	first := submit(t, ts.URL, spinJSON)
	waitState(t, ts.URL, first.ID, service.StateRunning, 10*time.Second)

	dup, status := trySubmit(t, ts.URL, spinJSON)
	if status != http.StatusOK {
		t.Fatalf("duplicate submission: status %d, want 200 (coalesced)", status)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate submission got job %s, want the in-flight %s", dup.ID, first.ID)
	}
	if n := metricValue(t, ts.URL, "nccd_jobs_coalesced_total"); n != 1 {
		t.Fatalf("nccd_jobs_coalesced_total = %g, want 1", n)
	}

	// After cancellation the hash is no longer in flight: a fresh submission
	// makes a new job (the canceled one produced nothing cacheable).
	resp, err := http.Post(ts.URL+"/v1/jobs/"+first.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, first.ID, service.StateCanceled, 10*time.Second)
	again, status := trySubmit(t, ts.URL, spinJSON)
	if status != http.StatusCreated || again.ID == first.ID {
		t.Fatalf("post-cancel resubmission: status %d id %s, want a fresh 201 job", status, again.ID)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs/"+again.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, again.ID, service.StateCanceled, 10*time.Second)
}

// TestCancelQueued cancels a job parked behind a running one: it must flip to
// canceled without ever executing.
func TestCancelQueued(t *testing.T) {
	ts := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	spinning := submit(t, ts.URL, spinJSON)
	waitState(t, ts.URL, spinning.ID, service.StateRunning, 10*time.Second)
	queued := submit(t, ts.URL, sweepJSON)
	if st := jobInfo(t, ts.URL, queued.ID).State; st != service.StateQueued {
		t.Fatalf("second job state %q, want queued behind the single executor", st)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, queued.ID, service.StateCanceled, 5*time.Second)
	// Unblock the executor for cleanup.
	resp, err = http.Post(ts.URL+"/v1/jobs/"+spinning.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, spinning.ID, service.StateCanceled, 10*time.Second)
}

// TestDiskCacheSurvivesRestart runs a sweep under one server, then brings up
// a fresh server over the same cache directory and checks the identical
// submission is answered from disk, byte-identically.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	want := localLines(t, sweepJSON)

	ts1 := newTestServer(t, service.Config{WorkerBudget: 4, CacheDir: dir})
	info := submit(t, ts1.URL, sweepJSON)
	if got := fetch(t, ts1.URL+"/v1/jobs/"+info.ID+"/records"); !bytes.Equal(got, want) {
		t.Fatal("first server streamed records differing from local run")
	}
	ts1.Close()

	ts2 := newTestServer(t, service.Config{WorkerBudget: 4, CacheDir: dir})
	info2 := submit(t, ts2.URL, sweepJSON)
	if !info2.Cached {
		t.Fatal("restarted server missed the disk cache")
	}
	if got := fetch(t, ts2.URL+"/v1/jobs/"+info2.ID+"/records"); !bytes.Equal(got, want) {
		t.Fatal("disk-cached stream differs from the original")
	}
}

// TestSubmitRejectsBadScenarios checks the strict decoding and validation
// surface: typos fail with their field path, unknown algorithms with the
// registry error — and nothing is enqueued for either.
func TestSubmitRejectsBadScenarios(t *testing.T) {
	ts := newTestServer(t, service.Config{})
	cases := []struct {
		js   string
		want string
	}{
		{`{"algo":"mis","graph":{"family":"kforest"},"model":{"capfator":4}}`, "model.capfator"},
		{`{"algo":"nope","graph":{"family":"kforest"}}`, "unknown algorithm"},
		{`{"algo":"mis","graph":{"family":"nope"}}`, "unknown graph family"},
		{`{"algo":"mis","graph":{"family":"kforest","params":{"zap":1}}}`, "unknown params zap"},
		{`not json`, "invalid character"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.js))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submission %q: status %d, want 400", tc.js, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Fatalf("submission %q: error %q does not mention %q", tc.js, body, tc.want)
		}
	}
	if n := metricValue(t, ts.URL, "nccd_jobs_submitted_total"); n != 0 {
		t.Fatalf("rejected submissions counted: %g", n)
	}
}

// TestJobRetention submits more jobs than the retention bound: the oldest
// terminal jobs are forgotten (404, gone from the listing) while their
// results survive in the cache.
func TestJobRetention(t *testing.T) {
	ts := newTestServer(t, service.Config{WorkerBudget: 2, RetainJobs: 2})
	mk := func(seed int) string {
		return fmt.Sprintf(`{"algo":"mis","graph":{"family":"kforest","params":{"n":12,"k":2},"seed":%d},"model":{"seed":%d}}`, seed, seed)
	}
	var ids []string
	for seed := 1; seed <= 4; seed++ {
		info := submit(t, ts.URL, mk(seed))
		waitState(t, ts.URL, info.ID, service.StateDone, 30*time.Second)
		ids = append(ids, info.ID)
	}
	var list struct {
		Jobs []service.JobInfo `json:"jobs"`
	}
	if err := json.Unmarshal(fetch(t, ts.URL+"/v1/jobs"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) > 2 {
		t.Fatalf("listing holds %d jobs, want <= RetainJobs = 2", len(list.Jobs))
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pruned job %s: status %d, want 404", ids[0], resp.StatusCode)
	}
	// The pruned job's result is still content-addressed: resubmitting its
	// scenario is a cache hit, not a re-execution.
	if info := submit(t, ts.URL, mk(1)); !info.Cached {
		t.Fatal("pruned job's scenario missed the cache")
	}
}

// TestDrain covers graceful shutdown: draining refuses new submissions, and
// a job outliving the grace period is canceled through the abort path rather
// than holding the drain forever.
func TestDrain(t *testing.T) {
	svc, err := service.New(service.Config{WorkerBudget: 2, Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	info := submit(t, ts.URL, spinJSON)
	waitState(t, ts.URL, info.ID, service.StateRunning, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = svc.Drain(ctx)
	if err == nil {
		t.Fatal("drain of a spinning job returned nil before the deadline forced cancellation")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("drain took %v despite the cancellation fallback", d)
	}
	if st := jobInfo(t, ts.URL, info.ID).State; st != service.StateCanceled {
		t.Fatalf("spinning job state after drain: %q, want canceled", st)
	}
	if _, status := trySubmit(t, ts.URL, sweepJSON); status != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: status %d, want 503", status)
	}
}
