package service

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"ncc/internal/graphio"
)

// handleGraphGet serves a stored graph's raw .nccg bytes. http.ServeFile
// provides Content-Length, range requests, and HEAD for free; the content is
// immutable by construction (the name is the hash of the bytes), so clients
// may cache it indefinitely.
func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !graphio.ValidHash(hash) {
		httpError(w, http.StatusBadRequest, "%q is not a sha256 graph hash (64 hex digits)", hash)
		return
	}
	if !s.graphs.Has(hash) {
		httpError(w, http.StatusNotFound, "graph %s not in store", hash)
		return
	}
	w.Header().Set("Content-Type", "application/x-nccg")
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	http.ServeFile(w, r, s.graphs.Path(hash))
}

// handleGraphPut ingests an uploaded .nccg graph. The body is fully validated
// (structure and symmetry) and committed under its content hash, which must
// match the one in the URL — the route is declarative ("store these bytes AT
// this address"), so a client bug cannot silently register a graph under a
// wrong name. Re-uploading a stored graph is an idempotent 200.
func (s *Server) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	want := r.PathValue("hash")
	if !graphio.ValidHash(want) {
		httpError(w, http.StatusBadRequest, "%q is not a sha256 graph hash (64 hex digits)", want)
		return
	}
	if s.graphs.Has(want) {
		io.Copy(io.Discard, r.Body) // drain so the connection can be reused
		writeJSON(w, http.StatusOK, map[string]string{"hash": want})
		return
	}
	got, _, err := s.graphs.PutStream(http.MaxBytesReader(w, r.Body, s.cfg.MaxGraphBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "graph body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "invalid graph upload: %v", err)
		return
	}
	if got != want {
		// The bytes were valid and are now stored under their true address;
		// the claim in the URL was wrong, which is a client error.
		httpError(w, http.StatusBadRequest, "uploaded graph hashes to %s, not %s", got, want)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"hash": got})
}

// GraphFetcher returns a fetch function for graphio.SetFetcher that pulls
// missing graphs from another daemon's /v1/graphs route — the hook that lets
// a cluster worker execute a file-family scenario it has never seen: the
// resolver fetches the bytes from the coordinator, validates them against the
// content hash, and persists them in the worker's own store.
func GraphFetcher(base, token string) func(hash string) (io.ReadCloser, error) {
	client := &http.Client{}
	return func(hash string) (io.ReadCloser, error) {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/graphs/"+hash, nil)
		if err != nil {
			return nil, err
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s/v1/graphs/%s: %s: %s", base, hash, resp.Status, body)
		}
		return resp.Body, nil
	}
}
