package service_test

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"ncc/internal/service"
)

// promSeries is one parsed sample line: a metric name, its sorted label
// pairs, and the value.
type promSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// promFamily is one metric family: its declared TYPE and the samples that
// follow it.
type promFamily struct {
	typ     string
	help    string
	samples []promSeries
}

// parseProm is a strict parser for the subset of the Prometheus text
// exposition format /metrics emits. It enforces the structural rules a real
// scraper relies on: every sample belongs to a previously declared family
// (HELP then TYPE), names match the metric name charset, label values are
// properly quoted, and values parse as floats.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	var open string // family of the current HELP/TYPE/sample block
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			families[name] = &promFamily{help: help}
			open = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			f, ok := families[name]
			if !ok || name != open {
				t.Fatalf("line %d: TYPE %s without immediately preceding HELP", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unexpected TYPE %q", lineNo, typ)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}
		s := parsePromSample(t, lineNo, line)
		fam, ok := families[familyOf(s.name)]
		if !ok || fam.typ == "" {
			t.Fatalf("line %d: sample %s precedes its HELP/TYPE", lineNo, s.name)
		}
		fam.samples = append(fam.samples, s)
	}
	return families
}

// familyOf maps a sample name to its family name: histogram series share the
// family of their _bucket/_sum/_count base name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			return base
		}
	}
	return name
}

func parsePromSample(t *testing.T, lineNo int, line string) promSeries {
	t.Helper()
	s := promSeries{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		close := strings.LastIndexByte(rest, '}')
		if close < i {
			t.Fatalf("line %d: unterminated label set: %q", lineNo, line)
		}
		for _, pair := range strings.Split(rest[i+1:close], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("line %d: malformed label %q", lineNo, pair)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("line %d: label value %s not a quoted string: %v", lineNo, v, err)
			}
			s.labels[k] = uq
		}
		rest = strings.TrimSpace(rest[close+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("line %d: sample without value: %q", lineNo, line)
		}
	}
	for _, r := range s.name {
		if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			t.Fatalf("line %d: invalid metric name %q", lineNo, s.name)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

// checkHistogram enforces the histogram contract on one family: bucket series
// carry le labels in ascending order, counts are cumulative, the +Inf bucket
// exists and equals _count, and _sum/_count are present.
func checkHistogram(t *testing.T, name string, f *promFamily) {
	t.Helper()
	if f.typ != "histogram" {
		t.Fatalf("%s: TYPE %q, want histogram", name, f.typ)
	}
	var bounds []float64
	var counts []float64
	var sum, count float64
	haveSum, haveCount, haveInf := false, false, false
	for _, s := range f.samples {
		switch s.name {
		case name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket without le label", name)
			}
			if le == "+Inf" {
				haveInf = true
				bounds = append(bounds, math.Inf(1))
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: le=%q: %v", name, le, err)
				}
				bounds = append(bounds, b)
			}
			counts = append(counts, s.value)
		case name + "_sum":
			haveSum, sum = true, s.value
		case name + "_count":
			haveCount, count = true, s.value
		default:
			t.Fatalf("%s: unexpected series %s", name, s.name)
		}
	}
	if !haveSum || !haveCount || !haveInf {
		t.Fatalf("%s: sum=%v count=%v +Inf=%v, want all present", name, haveSum, haveCount, haveInf)
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Fatalf("%s: bucket bounds out of order: %v", name, bounds)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("%s: bucket counts not cumulative: %v", name, counts)
		}
	}
	if last := counts[len(counts)-1]; last != count {
		t.Fatalf("%s: +Inf bucket %g != _count %g", name, last, count)
	}
	if count > 0 && sum < 0 {
		t.Fatalf("%s: negative _sum %g", name, sum)
	}
}

// TestMetricsPrometheusFormat scrapes /metrics through a strict parser:
// every family is well-formed, the histograms obey the bucket contract, and
// counters never decrease between an execution and a later scrape.
func TestMetricsPrometheusFormat(t *testing.T) {
	ts := newTestServer(t, service.Config{WorkerBudget: 2})

	scrape := func() map[string]*promFamily {
		return parseProm(t, string(fetch(t, ts.URL+"/metrics")))
	}
	before := scrape()

	info := submit(t, ts.URL, sweepJSON)
	waitState(t, ts.URL, info.ID, service.StateDone, 60*time.Second)
	fetch(t, ts.URL+"/v1/jobs/"+info.ID+"/records")
	fetch(t, ts.URL+"/v1/jobs/"+info.ID+"/trace")
	after := scrape()

	for _, name := range []string{
		"nccd_jobs_submitted_total", "nccd_jobs_done_total",
		"nccd_records_produced_total", "nccd_records_streamed_total",
		"nccd_trace_lines_produced_total", "nccd_trace_lines_streamed_total",
		"nccd_cache_misses_total", "nccd_engine_rounds_total",
	} {
		f, ok := after[name]
		if !ok {
			t.Fatalf("counter %s missing", name)
		}
		if f.typ != "counter" {
			t.Fatalf("%s: TYPE %q, want counter", name, f.typ)
		}
		if !strings.HasSuffix(name, "_total") {
			t.Fatalf("counter %s not suffixed _total", name)
		}
		if prev, ok := before[name]; ok && f.samples[0].value < prev.samples[0].value {
			t.Fatalf("counter %s decreased: %g -> %g", name, prev.samples[0].value, f.samples[0].value)
		}
	}
	if v := after["nccd_trace_lines_produced_total"].samples[0].value; v == 0 {
		t.Fatal("no trace lines counted for an executed sweep")
	}
	for _, name := range []string{
		"nccd_jobs_queued", "nccd_jobs_running", "nccd_worker_budget",
		"nccd_heap_bytes", "nccd_goroutines", "nccd_uptime_seconds",
	} {
		f, ok := after[name]
		if !ok {
			t.Fatalf("gauge %s missing", name)
		}
		if f.typ != "gauge" {
			t.Fatalf("%s: TYPE %q, want gauge", name, f.typ)
		}
	}
	if v := after["nccd_goroutines"].samples[0].value; v < 1 {
		t.Fatalf("nccd_goroutines = %g, want >= 1", v)
	}
	checkHistogram(t, "nccd_round_duration_seconds", after["nccd_round_duration_seconds"])
	checkHistogram(t, "nccd_job_latency_seconds", after["nccd_job_latency_seconds"])
	if f := after["nccd_round_duration_seconds"]; f.samples[len(f.samples)-1].value == 0 {
		t.Fatal("round-duration histogram empty after an executed sweep")
	}
	if _, ok := after["nccd_dispatch_latency_seconds"]; ok {
		t.Fatal("dispatch-latency histogram rendered outside coordinator mode")
	}
}

// TestMetricsCoordinatorSeries checks the coordinator-only surface: the
// per-worker labeled counters parse and cover every registered worker, and
// the dispatch-latency histogram renders.
func TestMetricsCoordinatorSeries(t *testing.T) {
	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute})
	w1 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	w2 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	registerWorker(t, coord.URL, "w1", w1.URL, 1)
	registerWorker(t, coord.URL, "w2", w2.URL, 1)

	// Two distinct jobs so both workers see dispatches.
	for seed := 1; seed <= 2; seed++ {
		js := fmt.Sprintf(`{"algo":"mis","graph":{"family":"kforest","params":{"n":12,"k":2},"seed":%d},"model":{"seed":%d}}`, seed, seed)
		info := submit(t, coord.URL, js)
		waitState(t, coord.URL, info.ID, service.StateDone, 60*time.Second)
	}

	fams := parseProm(t, string(fetch(t, coord.URL+"/metrics")))
	checkHistogram(t, "nccd_dispatch_latency_seconds", fams["nccd_dispatch_latency_seconds"])
	jobs, ok := fams["nccd_worker_jobs_total"]
	if !ok {
		t.Fatal("nccd_worker_jobs_total missing on a coordinator with dispatches")
	}
	seen := map[string]bool{}
	var totalDispatches float64
	for _, s := range jobs.samples {
		name := s.labels["worker"]
		if name == "" {
			t.Fatalf("per-worker series without worker label: %+v", s)
		}
		seen[name] = true
		totalDispatches += s.value
	}
	if totalDispatches < 2 {
		t.Fatalf("worker dispatch total %g, want >= 2", totalDispatches)
	}
	if len(seen) == 0 || (!seen["w1"] && !seen["w2"]) {
		t.Fatalf("per-worker series name none of the registered workers: %v", seen)
	}
	if f, ok := fams["nccd_worker_records_total"]; !ok || len(f.samples) == 0 {
		t.Fatal("nccd_worker_records_total missing")
	}
	if f := fams["nccd_workers_live"]; f == nil || f.samples[0].value != 2 {
		t.Fatal("nccd_workers_live != 2")
	}
}
