package service

import "net/http"

// StreamHub fans a job's NDJSON record log out to any number of HTTP
// streaming clients. It is purely a consumer of the Job abstraction — lines
// land in the log via ExecBackend (executed locally or proxied from a cluster
// worker) and the hub replays them byte-identically: everything produced so
// far, then live lines as they arrive, terminating when the job reaches a
// terminal state or the client goes away.
type StreamHub struct {
	m *metrics
}

func newStreamHub(m *metrics) *StreamHub {
	return &StreamHub{m: m}
}

// Serve streams j's records to one client. Each line is the exact bytes
// `nccrun -json` would print for the scenario the job *executed*; a cache hit
// or coalesced submission replays the original submission's stream verbatim,
// so a semantically identical re-spelling sees the first submission's record
// echoes (display name, workers, sweep-axis order).
func (h *StreamHub) Serve(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		lines, terminal, changed := j.next(sent)
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
			h.m.recordsStreamed.Add(1)
		}
		sent += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal && len(lines) == 0 {
			return
		}
		if terminal {
			continue // drain any lines appended after the terminal flip
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
