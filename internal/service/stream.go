package service

import (
	"net/http"
	"sync/atomic"
)

// StreamHub fans a job's NDJSON logs out to any number of HTTP streaming
// clients. It is purely a consumer of the Job abstraction — lines land in the
// logs via ExecBackend (executed locally or proxied from a cluster worker)
// and the hub replays them byte-identically: everything produced so far, then
// live lines as they arrive, terminating when the job reaches a terminal
// state or the client goes away. Records and traces are two logs on the same
// job, served by the same loop.
type StreamHub struct {
	m *metrics
}

func newStreamHub(m *metrics) *StreamHub {
	return &StreamHub{m: m}
}

// Serve streams j's records to one client. Each line is the exact bytes
// `nccrun -json` would print for the scenario the job *executed*; a cache hit
// or coalesced submission replays the original submission's stream verbatim,
// so a semantically identical re-spelling sees the first submission's record
// echoes (display name, workers, sweep-axis order).
func (h *StreamHub) Serve(w http.ResponseWriter, r *http.Request, j *Job) {
	h.serve(w, r, j.next, &h.m.recordsStreamed)
}

// ServeTrace streams j's telemetry trace (internal/obs NDJSON). The same
// byte-identity guarantee applies: the trace is deterministic, so every
// consumer — live, late, cached, proxied — reads the same stream.
func (h *StreamHub) ServeTrace(w http.ResponseWriter, r *http.Request, j *Job) {
	h.serve(w, r, j.nextTrace, &h.m.traceLinesStreamed)
}

func (h *StreamHub) serve(w http.ResponseWriter, r *http.Request,
	next func(int) ([][]byte, bool, <-chan struct{}), streamed *atomic.Int64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		lines, terminal, changed := next(sent)
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
			streamed.Add(1)
		}
		sent += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal && len(lines) == 0 {
			return
		}
		if terminal {
			continue // drain any lines appended after the terminal flip
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
