package service_test

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"ncc/internal/obs"
	"ncc/internal/scenario"
	"ncc/internal/service"
)

// localTrace renders js's telemetry trace exactly as the daemon's scheduler
// does: every expanded run through one canonical-only collector.
func localTrace(t *testing.T, js string) []byte {
	t.Helper()
	s, err := scenario.Decode([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	for _, c := range s.Expand() {
		if _, err := scenario.RunTraced(c, col, scenario.RunOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	return col.Bytes()
}

// fetchTrace GETs a job's trace stream and returns body plus the correlation
// headers.
func fetchTrace(t *testing.T, base, id string) (body []byte, jobID, traceID string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	jobID = resp.Header.Get("X-NCC-Job-Id")
	traceID = resp.Header.Get("X-NCC-Trace-Id")
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), jobID, traceID
}

// TestTraceEndToEnd is the trace plane's acceptance test against a local
// daemon: the streamed trace validates, matches a local in-process execution
// byte-for-byte, survives the result cache byte-identically, and carries the
// job/trace correlation headers.
func TestTraceEndToEnd(t *testing.T) {
	want := localTrace(t, sweepJSON)
	ts := newTestServer(t, service.Config{WorkerBudget: 4, Executors: 2})

	info := submit(t, ts.URL, sweepJSON)
	waitState(t, ts.URL, info.ID, service.StateDone, 60*time.Second)
	if info.TraceID == "" {
		t.Fatal("JobInfo has no trace id")
	}

	got, jobID, traceID := fetchTrace(t, ts.URL, info.ID)
	if err := obs.Validate(got); err != nil {
		t.Fatalf("streamed trace invalid: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed trace differs from local run:\nlocal: %q\ndaemon: %q", want, got)
	}
	if jobID != info.ID || traceID != info.TraceID {
		t.Fatalf("trace headers job=%q trace=%q, want %q/%q", jobID, traceID, info.ID, info.TraceID)
	}

	// A cached re-submission replays the identical trace under the same trace
	// id (it is derived from the scenario hash, not the job).
	info2 := submit(t, ts.URL, sweepJSON)
	if !info2.Cached {
		t.Fatal("re-submission missed the cache")
	}
	if info2.TraceID != info.TraceID {
		t.Fatalf("cached job trace id %q, want %q", info2.TraceID, info.TraceID)
	}
	got2, _, _ := fetchTrace(t, ts.URL, info2.ID)
	if !bytes.Equal(got2, want) {
		t.Fatal("cached trace differs from the original")
	}
}

// TestTraceClusterByteIdentity pins the cross-deployment guarantee: the trace
// a coordinator proxies from a worker fleet is byte-identical to a local
// in-process execution of the same (faulted) sweep.
func TestTraceClusterByteIdentity(t *testing.T) {
	const faulted = `{"name":"trace-faulted","algo":"mis","graph":{"family":"kforest","params":{"n":24,"k":2},"seed":3},"model":{"seed":3},"faults":{"models":[{"model":"crash","params":{"count":4,"round":2}}]},"sweep":{"seeds":[1,2,3]}}`
	want := localTrace(t, faulted)

	coord := newCoordinator(t, service.Config{WorkerTTL: time.Minute})
	w1 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	w2 := newTestServer(t, service.Config{WorkerBudget: 2, Executors: 1})
	registerWorker(t, coord.URL, "w1", w1.URL, 1)
	registerWorker(t, coord.URL, "w2", w2.URL, 1)

	info := submit(t, coord.URL, faulted)
	waitState(t, coord.URL, info.ID, service.StateDone, 60*time.Second)
	got, _, traceID := fetchTrace(t, coord.URL, info.ID)
	if err := obs.Validate(got); err != nil {
		t.Fatalf("proxied trace invalid: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster trace differs from local execution:\nlocal: %d bytes\ncluster: %d bytes", len(want), len(got))
	}
	if traceID != info.TraceID {
		t.Fatalf("proxied trace id %q, want %q", traceID, info.TraceID)
	}
}
