package service

import "context"

// ExecBackend is the execution seam between the HTTP surface and whatever
// actually runs scenarios. A backend receives freshly admitted jobs, drives
// each through its lifecycle (queued -> running -> done/failed/canceled), and
// appends the job's pre-marshaled NDJSON record lines as they are produced —
// everything above the seam (JobStore, StreamHub, the handlers) is identical
// whether the records come from an in-process executor pool (LocalBackend)
// or are proxied from a fleet of worker daemons (RemoteBackend).
type ExecBackend interface {
	// Submit enqueues a queued job for execution without blocking. It fails
	// (typically with errQueueFull) when the backend cannot accept more work;
	// the admission is rolled back by the caller.
	Submit(j *Job) error

	// Drain stops the backend after already-accepted jobs finish. If ctx
	// expires first, cancelAll is invoked (the server cancels every live job)
	// and Drain waits for the now-short tail before returning ctx.Err. The
	// caller has already stopped new admissions.
	Drain(ctx context.Context, cancelAll func()) error

	// Capacity reports the backend's execution capacity for metrics: the
	// total worker budget and the currently free share. For LocalBackend
	// these are engine-worker tokens; for RemoteBackend, cluster job slots.
	Capacity() (total, free int)
}
