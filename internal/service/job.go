package service

import (
	"sync"
	"time"

	"ncc/internal/scenario"
)

// State is a job's lifecycle position. Transitions are linear:
// queued -> running -> done, with canceled reachable from queued and running
// and failed reachable from running (only for internal encoding errors — a
// run that errors produces a Record with its Error field set, like a local
// sweep, and the job still completes).
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobInfo is the JSON view of a job returned by the listing and status
// endpoints and by POST /v1/jobs.
type JobInfo struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	Hash      string    `json:"hash"`
	State     State     `json:"state"`
	Cached    bool      `json:"cached"`
	Records   int       `json:"records"`
	TraceID   string    `json:"traceId,omitempty"`
	Trace     int       `json:"trace,omitempty"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
}

// Job is one submitted scenario execution. Results accumulate as
// pre-marshaled NDJSON lines so every consumer — live streams, late streams,
// the result cache — serves byte-identical records without re-encoding.
type Job struct {
	ID        string
	Hash      string
	Scenario  scenario.Scenario
	Submitted time.Time

	// TraceID names the job's telemetry trace in logs and cross-node
	// headers. It is derived from the scenario hash, so a coalesced or
	// re-dispatched job carries the same trace identity everywhere.
	TraceID string

	// cancel is closed (once) to abort the job; the scheduler threads it
	// into the engine's abort path, so an in-flight run unwinds within one
	// round barrier.
	cancel     chan struct{}
	cancelOnce sync.Once

	mu      sync.Mutex
	state   State
	cached  bool
	err     string
	lines   [][]byte      // one marshaled Record per line, no trailing newline
	trace   [][]byte      // NDJSON trace lines (internal/obs format), same convention
	changed chan struct{} // closed and replaced on every mutation
}

func newJob(id, hash string, sc scenario.Scenario) *Job {
	return &Job{
		ID:        id,
		Hash:      hash,
		Scenario:  sc,
		Submitted: time.Now().UTC(),
		TraceID:   traceID(hash),
		cancel:    make(chan struct{}),
		state:     StateQueued,
		changed:   make(chan struct{}),
	}
}

// traceID derives the trace identity from the scenario hash, so every
// execution of the same scenario — coalesced, re-dispatched, cached — logs
// under the same trace id.
func traceID(hash string) string {
	if len(hash) > 12 {
		hash = hash[:12]
	}
	return "tr-" + hash
}

// notifyLocked wakes every waiting stream. Callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Cancel requests the job's abortion. A queued job flips to canceled
// immediately (the scheduler skips it on dequeue); a running job unwinds
// through the engine's abort path. Terminal jobs are unaffected.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.notifyLocked()
	}
}

// canceled reports whether cancellation has been requested.
func (j *Job) canceled() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// setRunning transitions queued -> running; it fails when the job was
// canceled while queued.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.notifyLocked()
	return true
}

// appendLine publishes one completed record to every stream.
func (j *Job) appendLine(line []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lines = append(j.lines, line)
	j.notifyLocked()
}

// lineCount reports how many record lines have been published. The cluster
// proxy uses it as the replay offset when a job is re-dispatched after a
// worker failure: the retry's stream skips this many lines (deterministic
// execution makes them identical) so clients see one seamless byte stream.
func (j *Job) lineCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.lines)
}

// appendTraceLines publishes completed trace segments to every trace stream.
// Traces arrive run-at-a-time (a sealed collector segment locally, a proxied
// worker trace in the cluster), so a batched append keeps wakeups cheap.
func (j *Job) appendTraceLines(lines [][]byte) {
	if len(lines) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.trace = append(j.trace, lines...)
	j.notifyLocked()
}

// traceCount mirrors lineCount for the trace log: the cluster proxy's replay
// offset when a job is re-dispatched.
func (j *Job) traceCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.trace)
}

// finish moves the job to a terminal state. The queued->canceled transition
// in Cancel may have beaten a racing finish; terminal states never change.
func (j *Job) finish(state State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.err = errMsg
	j.notifyLocked()
}

// completeFromCache marks a job done with a cached result stream. It reports
// false on a job already terminal — a dispatch-time hit must not resurrect a
// job canceled while queued.
func (j *Job) completeFromCache(lines, trace [][]byte) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.lines = lines
	j.trace = trace
	j.cached = true
	j.state = StateDone
	j.notifyLocked()
	return true
}

// next returns the record lines from index from on, whether the job is
// terminal, and a channel that closes on the next mutation. A streaming
// consumer loops: emit lines, advance, and — when not terminal — wait on
// changed (or its own client context). The returned slice aliases the job's
// append-only line log and must not be mutated.
func (j *Job) next(from int) (lines [][]byte, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.lines) {
		lines = j.lines[from:]
	}
	return lines, j.state.terminal(), j.changed
}

// nextTrace is next over the trace log.
func (j *Job) nextTrace(from int) (lines [][]byte, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.trace) {
		lines = j.trace[from:]
	}
	return lines, j.state.terminal(), j.changed
}

// resultLines returns the complete record and trace logs of a terminal job
// (nil otherwise) — what the cache stores.
func (j *Job) resultLines() (lines, trace [][]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		return nil, nil
	}
	return j.lines, j.trace
}

// Info snapshots the job for the status endpoints.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{
		ID:        j.ID,
		Name:      j.Scenario.Name,
		Hash:      j.Hash,
		State:     j.state,
		Cached:    j.cached,
		Records:   len(j.lines),
		TraceID:   j.TraceID,
		Trace:     len(j.trace),
		Error:     j.err,
		Submitted: j.Submitted,
	}
}
