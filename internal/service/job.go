package service

import (
	"sync"
	"time"

	"ncc/internal/scenario"
)

// State is a job's lifecycle position. Transitions are linear:
// queued -> running -> done, with canceled reachable from queued and running
// and failed reachable from running (only for internal encoding errors — a
// run that errors produces a Record with its Error field set, like a local
// sweep, and the job still completes).
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobInfo is the JSON view of a job returned by the listing and status
// endpoints and by POST /v1/jobs.
type JobInfo struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	Hash      string    `json:"hash"`
	State     State     `json:"state"`
	Cached    bool      `json:"cached"`
	Records   int       `json:"records"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
}

// Job is one submitted scenario execution. Results accumulate as
// pre-marshaled NDJSON lines so every consumer — live streams, late streams,
// the result cache — serves byte-identical records without re-encoding.
type Job struct {
	ID        string
	Hash      string
	Scenario  scenario.Scenario
	Submitted time.Time

	// cancel is closed (once) to abort the job; the scheduler threads it
	// into the engine's abort path, so an in-flight run unwinds within one
	// round barrier.
	cancel     chan struct{}
	cancelOnce sync.Once

	mu      sync.Mutex
	state   State
	cached  bool
	err     string
	lines   [][]byte      // one marshaled Record per line, no trailing newline
	changed chan struct{} // closed and replaced on every mutation
}

func newJob(id, hash string, sc scenario.Scenario) *Job {
	return &Job{
		ID:        id,
		Hash:      hash,
		Scenario:  sc,
		Submitted: time.Now().UTC(),
		cancel:    make(chan struct{}),
		state:     StateQueued,
		changed:   make(chan struct{}),
	}
}

// notifyLocked wakes every waiting stream. Callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Cancel requests the job's abortion. A queued job flips to canceled
// immediately (the scheduler skips it on dequeue); a running job unwinds
// through the engine's abort path. Terminal jobs are unaffected.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.notifyLocked()
	}
}

// canceled reports whether cancellation has been requested.
func (j *Job) canceled() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// setRunning transitions queued -> running; it fails when the job was
// canceled while queued.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.notifyLocked()
	return true
}

// appendLine publishes one completed record to every stream.
func (j *Job) appendLine(line []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lines = append(j.lines, line)
	j.notifyLocked()
}

// lineCount reports how many record lines have been published. The cluster
// proxy uses it as the replay offset when a job is re-dispatched after a
// worker failure: the retry's stream skips this many lines (deterministic
// execution makes them identical) so clients see one seamless byte stream.
func (j *Job) lineCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.lines)
}

// finish moves the job to a terminal state. The queued->canceled transition
// in Cancel may have beaten a racing finish; terminal states never change.
func (j *Job) finish(state State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.err = errMsg
	j.notifyLocked()
}

// completeFromCache marks a job done with a cached result stream. It reports
// false on a job already terminal — a dispatch-time hit must not resurrect a
// job canceled while queued.
func (j *Job) completeFromCache(lines [][]byte) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.lines = lines
	j.cached = true
	j.state = StateDone
	j.notifyLocked()
	return true
}

// next returns the record lines from index from on, whether the job is
// terminal, and a channel that closes on the next mutation. A streaming
// consumer loops: emit lines, advance, and — when not terminal — wait on
// changed (or its own client context). The returned slice aliases the job's
// append-only line log and must not be mutated.
func (j *Job) next(from int) (lines [][]byte, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.lines) {
		lines = j.lines[from:]
	}
	return lines, j.state.terminal(), j.changed
}

// resultLines returns the complete line log of a terminal job (nil
// otherwise) — what the cache stores.
func (j *Job) resultLines() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		return nil
	}
	return j.lines
}

// Info snapshots the job for the status endpoints.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{
		ID:        j.ID,
		Name:      j.Scenario.Name,
		Hash:      j.Hash,
		State:     j.state,
		Cached:    j.cached,
		Records:   len(j.lines),
		Error:     j.err,
		Submitted: j.Submitted,
	}
}
