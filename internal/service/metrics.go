package service

import (
	"fmt"
	"io"
	"math"
	runtimemetrics "runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ncc/internal/ncc"
)

// metrics is the daemon's counter set, rendered at /metrics in the Prometheus
// text exposition format. Engine figures (rounds, messages, words) come from
// the ncc package's process-lifetime totals; rounds/s is measured over the
// window since the previous scrape, so a dashboard polling /metrics sees the
// live round rate, not a lifetime average.
type metrics struct {
	start time.Time

	jobsSubmitted atomic.Int64
	jobsCoalesced atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	jobsQueued    atomic.Int64 // gauge
	jobsRunning   atomic.Int64 // gauge

	recordsProduced    atomic.Int64
	recordsStreamed    atomic.Int64
	traceLinesProduced atomic.Int64
	traceLinesStreamed atomic.Int64

	// Latency histograms. Observation is lock-cheap (one atomic add per
	// bucket hit); rendering walks the buckets under the Prometheus rules
	// (cumulative _bucket series with +Inf, plus _sum and _count).
	roundDuration   *histogram // seconds per engine round, local execution
	jobLatency      *histogram // submission -> terminal, executed jobs
	dispatchLatency *histogram // coordinator: dispatch -> worker stream done

	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	cacheWriteErrors  atomic.Int64
	dispatchCacheHits atomic.Int64 // coordinator: hits found at dispatch time

	campaignsSubmitted atomic.Int64
	campaignsDone      atomic.Int64
	campaignsFailed    atomic.Int64

	mu         sync.Mutex
	lastScrape time.Time
	lastRounds int64

	// Per-worker dispatch counters, coordinator mode only. Counters persist
	// after a worker expires (Prometheus counters must never reset while the
	// process lives); the live set is reported separately as a gauge.
	wmu       sync.Mutex
	perWorker map[string]*workerCounters
}

// workerCounters label the coordinator's dispatch traffic by worker.
type workerCounters struct {
	jobs    atomic.Int64 // dispatch attempts sent to this worker
	records atomic.Int64 // record lines proxied back from this worker
}

// worker returns (creating on first use) the counter set for one worker name.
func (m *metrics) worker(name string) *workerCounters {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	wc, ok := m.perWorker[name]
	if !ok {
		wc = &workerCounters{}
		m.perWorker[name] = wc
	}
	return wc
}

func newMetrics() *metrics {
	return &metrics{
		start:           time.Now(),
		perWorker:       map[string]*workerCounters{},
		roundDuration:   newHistogram(roundDurationBuckets),
		jobLatency:      newHistogram(latencyBuckets),
		dispatchLatency: newHistogram(latencyBuckets),
	}
}

// Bucket bounds in seconds. Engine rounds are microseconds to milliseconds;
// job and dispatch latencies are milliseconds to minutes.
var (
	roundDurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
	latencyBuckets       = []float64{1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 120, 600}
)

// histogram is a fixed-bucket Prometheus histogram. counts[i] tallies
// observations <= bounds[i]; observations beyond the last bound only land in
// the implicit +Inf bucket (count). sumMicros keeps the running sum as an
// integer so it can live in an atomic; microsecond resolution is far below
// bucket granularity.
type histogram struct {
	bounds    []float64
	counts    []atomic.Int64
	count     atomic.Int64
	sumMicros atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// observe records one value (seconds).
func (h *histogram) observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	h.sumMicros.Add(int64(math.Round(v * 1e6)))
}

// observeSince records the elapsed time since t0.
func (h *histogram) observeSince(t0 time.Time) {
	h.observe(time.Since(t0).Seconds())
}

// render writes the histogram in Prometheus text exposition format. Buckets
// are cumulative by construction (observe adds to every bucket the value
// fits), ending with the mandatory +Inf bucket equal to _count.
func (h *histogram) render(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), h.counts[i].Load())
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumMicros.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// formatBound renders a bucket bound the way Prometheus clients expect
// (shortest float representation).
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// roundsRate returns the engine round total and the rounds/s rate since the
// previous scrape (since startup, on the first).
func (m *metrics) roundsRate() (total int64, perSec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	total = ncc.RoundsTotal()
	since := m.lastScrape
	if since.IsZero() {
		since = m.start
	}
	if dt := now.Sub(since).Seconds(); dt > 0 {
		perSec = float64(total-m.lastRounds) / dt
	}
	m.lastScrape = now
	m.lastRounds = total
	return total, perSec
}

// render writes the exposition text. budget/free describe the backend's
// capacity (engine-worker tokens locally, cluster job slots on a
// coordinator); entries is the in-memory cache size. liveWorkers is nil
// outside coordinator mode; on a coordinator it carries the current worker
// registry snapshot and enables the cluster section (workers_live gauge plus
// per-worker job/record counters).
func (m *metrics) render(w io.Writer, budget, free, entries int, liveWorkers []WorkerInfo, coordinator bool) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("nccd_jobs_submitted_total", "Scenario submissions accepted.", m.jobsSubmitted.Load())
	counter("nccd_jobs_coalesced_total", "Submissions answered by an identical in-flight job.", m.jobsCoalesced.Load())
	counter("nccd_jobs_done_total", "Jobs that ran to completion.", m.jobsDone.Load())
	counter("nccd_jobs_failed_total", "Jobs that failed internally.", m.jobsFailed.Load())
	counter("nccd_jobs_canceled_total", "Jobs canceled before completion.", m.jobsCanceled.Load())
	gauge("nccd_jobs_queued", "Jobs waiting for an executor.", float64(m.jobsQueued.Load()))
	gauge("nccd_jobs_running", "Jobs currently executing.", float64(m.jobsRunning.Load()))

	counter("nccd_records_produced_total", "Sweep records produced by executed runs.", m.recordsProduced.Load())
	counter("nccd_records_streamed_total", "Record lines written to streaming clients.", m.recordsStreamed.Load())
	counter("nccd_trace_lines_produced_total", "Telemetry trace lines produced by executed runs.", m.traceLinesProduced.Load())
	counter("nccd_trace_lines_streamed_total", "Trace lines written to streaming clients.", m.traceLinesStreamed.Load())

	m.roundDuration.render(w, "nccd_round_duration_seconds", "Wall-clock duration of locally executed engine rounds.")
	m.jobLatency.render(w, "nccd_job_latency_seconds", "Submission-to-terminal latency of executed (non-cached) jobs.")
	if coordinator {
		m.dispatchLatency.render(w, "nccd_dispatch_latency_seconds", "Dispatch-to-completion latency of jobs proxied to workers.")
	}

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	counter("nccd_cache_hits_total", "Submissions served from the result cache.", hits)
	counter("nccd_cache_misses_total", "Submissions that had to execute.", misses)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	gauge("nccd_cache_hit_ratio", "Lifetime cache hit ratio.", ratio)
	counter("nccd_cache_write_errors_total", "Failed disk-cache writes (entries stay in memory).", m.cacheWriteErrors.Load())
	counter("nccd_dispatch_cache_hits_total", "Queued jobs completed from a cache result that landed after admission.", m.dispatchCacheHits.Load())
	gauge("nccd_cache_entries", "Result-cache entries held in memory.", float64(entries))

	counter("nccd_campaigns_submitted_total", "Campaign specs accepted.", m.campaignsSubmitted.Load())
	counter("nccd_campaigns_done_total", "Campaigns whose report was built.", m.campaignsDone.Load())
	counter("nccd_campaigns_failed_total", "Campaigns aborted by a failed or canceled unit.", m.campaignsFailed.Load())

	gauge("nccd_worker_budget", "Global engine-worker budget shared across jobs.", float64(budget))
	gauge("nccd_workers_free", "Engine workers currently unassigned.", float64(free))

	if coordinator {
		gauge("nccd_workers_live", "Worker daemons currently registered and within their heartbeat TTL.", float64(len(liveWorkers)))
		m.wmu.Lock()
		names := make([]string, 0, len(m.perWorker))
		for name := range m.perWorker {
			names = append(names, name)
		}
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Fprintf(w, "# HELP nccd_worker_jobs_total Job dispatch attempts sent to each worker.\n# TYPE nccd_worker_jobs_total counter\n")
			for _, name := range names {
				fmt.Fprintf(w, "nccd_worker_jobs_total{worker=%q} %d\n", name, m.perWorker[name].jobs.Load())
			}
			fmt.Fprintf(w, "# HELP nccd_worker_records_total Record lines proxied back from each worker.\n# TYPE nccd_worker_records_total counter\n")
			for _, name := range names {
				fmt.Fprintf(w, "nccd_worker_records_total{worker=%q} %d\n", name, m.perWorker[name].records.Load())
			}
		}
		m.wmu.Unlock()
	}

	rounds, rate := m.roundsRate()
	counter("nccd_engine_rounds_total", "Communication rounds completed by the engine.", rounds)
	gauge("nccd_engine_rounds_per_second", "Engine round rate since the previous scrape.", rate)
	msgs, words := ncc.TrafficTotals()
	counter("nccd_engine_messages_total", "Messages accepted for transmission.", msgs)
	counter("nccd_engine_words_total", "Payload words accepted for transmission.", words)

	heap, goroutines, gcPause := runtimeGauges()
	gauge("nccd_heap_bytes", "Live heap memory (runtime/metrics heap objects).", heap)
	gauge("nccd_goroutines", "Goroutines currently live.", goroutines)
	gauge("nccd_gc_pause_p99_seconds", "Approximate p99 stop-the-world GC pause since process start.", gcPause)

	gauge("nccd_uptime_seconds", "Seconds since the daemon started.", time.Since(m.start).Seconds())
}

// runtimeGauges samples the runtime/metrics sources surfaced on /metrics:
// live heap bytes, goroutine count, and an approximate p99 GC pause derived
// from the runtime's pause-duration histogram.
func runtimeGauges() (heapBytes, goroutines, gcPauseP99 float64) {
	samples := []runtimemetrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/gc/pauses:seconds"},
	}
	runtimemetrics.Read(samples)
	if samples[0].Value.Kind() == runtimemetrics.KindUint64 {
		heapBytes = float64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == runtimemetrics.KindUint64 {
		goroutines = float64(samples[1].Value.Uint64())
	}
	if samples[2].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		gcPauseP99 = histQuantile(samples[2].Value.Float64Histogram(), 0.99)
	}
	return heapBytes, goroutines, gcPauseP99
}

// histQuantile approximates a quantile of a runtime Float64Histogram by the
// upper bound of the bucket where the cumulative count crosses q.
func histQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	threshold := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= threshold {
			// Buckets[i+1] is bucket i's upper bound; the last bucket's bound
			// may be +Inf, in which case its lower bound is the best finite
			// answer.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
