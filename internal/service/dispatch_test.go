package service

import (
	"context"
	"testing"
	"time"

	"ncc/internal/scenario"
)

// TestDispatchTimeCacheHit exercises the coordinator's second cache check: a
// result that lands in the cache after a job was admitted (so the
// admission-time lookup missed) is served when the dispatcher pops the job,
// without ever needing a worker — observable because no worker is registered
// here, so dispatch is the only path to completion.
func TestDispatchTimeCacheHit(t *testing.T) {
	svc, err := NewCoordinator(Config{WorkerTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		svc.Drain(ctx)
	}()

	sc, err := scenario.Decode([]byte(`{"algo":"mis","graph":{"family":"kforest","params":{"n":12,"k":2},"seed":7},"model":{"seed":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := sc.Hash()
	if err != nil {
		t.Fatal(err)
	}
	lines := [][]byte{[]byte(`{"stub":"record"}`)}
	if err := svc.cache.put(hash, lines, nil); err != nil {
		t.Fatal(err)
	}

	// hit=false models the race: the admission lookup ran before the result
	// landed. The dispatcher must still find it.
	j, coalesced, err := svc.store.Admit(sc, hash, nil, nil, false, svc.backend.Submit)
	if err != nil || coalesced {
		t.Fatalf("admit: coalesced=%v err=%v", coalesced, err)
	}
	deadline := time.After(10 * time.Second)
	for {
		_, terminal, changed := j.next(0)
		if terminal {
			break
		}
		select {
		case <-changed:
		case <-deadline:
			t.Fatal("job never completed from the dispatch-time cache check")
		}
	}
	info := j.Info()
	if info.State != StateDone || !info.Cached || info.Records != 1 {
		t.Fatalf("job after dispatch-time hit: %+v", info)
	}
	if n := svc.m.dispatchCacheHits.Load(); n != 1 {
		t.Fatalf("dispatchCacheHits = %d, want 1", n)
	}
	if n := svc.m.jobsDone.Load(); n != 1 {
		t.Fatalf("jobsDone = %d, want 1", n)
	}
}

// TestCompleteFromCacheGuardsTerminal pins the terminal guard: a cached result
// must not resurrect a job canceled while it waited in the queue.
func TestCompleteFromCacheGuardsTerminal(t *testing.T) {
	j := newJob("j1", "h", scenario.Scenario{})
	j.Cancel()
	if j.completeFromCache([][]byte{[]byte(`{"stub":true}`)}, nil) {
		t.Fatal("completeFromCache resurrected a canceled job")
	}
	if info := j.Info(); info.State != StateCanceled || info.Records != 0 {
		t.Fatalf("canceled job after cache attempt: %+v", info)
	}
}
