package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Joiner maintains a worker daemon's membership in a cluster: it registers
// with the coordinator immediately, re-registers every Interval (the same
// POST is the heartbeat), and deregisters on shutdown so the coordinator
// re-dispatches this worker's jobs without waiting out the TTL. A worker nccd
// runs a Joiner alongside its ordinary LocalBackend — cluster membership is
// purely additive; the worker's own HTTP API keeps serving direct clients.
type Joiner struct {
	Coordinator string        // coordinator base URL, e.g. http://coord:9876
	Self        string        // this worker's advertised base URL
	Name        string        // stable worker name; default: Self's host:port
	Capacity    int           // job slots to advertise (the worker's Executors)
	Interval    time.Duration // heartbeat period (default 2s; TTL is the coordinator's)
	Token       string        // shared cluster token, sent as a bearer credential
	Logf        func(format string, args ...any)
}

// authorize attaches the shared cluster token to a worker→coordinator request.
func (jn *Joiner) authorize(req *http.Request) {
	if jn.Token != "" {
		req.Header.Set("Authorization", "Bearer "+jn.Token)
	}
}

// Run registers, heartbeats until ctx is done, then deregisters best-effort.
func (jn *Joiner) Run(ctx context.Context) {
	interval := jn.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	name := jn.Name
	if name == "" {
		if u, err := url.Parse(jn.Self); err == nil && u.Host != "" {
			name = u.Host
		} else {
			name = jn.Self
		}
	}
	base := strings.TrimRight(jn.Coordinator, "/")
	body, _ := json.Marshal(registerRequest{Name: name, URL: jn.Self, Capacity: jn.Capacity})

	// The timer is re-armed at the top of every iteration (heartbeat period
	// on success, backoff on failure), so it starts parked far in the future:
	// Reset then never races a pending fire.
	t := time.NewTimer(24 * time.Hour)
	defer t.Stop()
	registered := false
	backoff := interval
	for {
		wait := interval
		if err := jn.register(ctx, base, body); err != nil {
			if jn.Logf != nil {
				jn.Logf("join %s: %v", base, err)
			}
			registered = false
			// Capped exponential backoff with jitter: an unreachable
			// coordinator is retried ever more slowly (up to 8 heartbeat
			// periods), and the jitter keeps a fleet of workers that lost the
			// coordinator together from re-registering in lockstep.
			backoff = min(backoff*2, 8*interval)
			wait = backoff/2 + rand.N(backoff/2+1)
		} else {
			if !registered && jn.Logf != nil {
				jn.Logf("registered with coordinator %s as %s (capacity %d)", base, name, jn.Capacity)
			}
			registered = true
			backoff = interval
		}
		t.Reset(wait)
		select {
		case <-ctx.Done():
			jn.deregister(base, name)
			return
		case <-t.C:
		}
	}
}

func (jn *Joiner) register(ctx context.Context, base string, body []byte) error {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, base+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	jn.authorize(req)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, readAPIError(resp.Body))
	}
	return nil
}

// deregister is best-effort and runs on a fresh context: Run's ctx is already
// done when shutdown reaches it.
func (jn *Joiner) deregister(base, name string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/workers/"+url.PathEscape(name), nil)
	if err != nil {
		return
	}
	jn.authorize(req)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}
