// Package bench is the experiment harness: it regenerates every entry of the
// paper's Table 1 and every theorem-level bound as a measured table (see
// README.md's experiment index).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Workers is the round-engine worker count applied to every experiment's
// simulation run (0 = the engine default, GOMAXPROCS). It is set by
// cmd/nccbench's -workers flag; changing it never changes measured rounds,
// messages, or loads — the engine is deterministic per seed — only the
// wall-clock time of the sweep.
var Workers int

// Table accumulates aligned rows for printing.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	var b strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(b.String(), " "))))
	for _, r := range t.Rows {
		b.Reset()
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// Experiment is a named, runnable experiment. Quick mode shrinks the sweeps
// so the full suite stays test-friendly.
type Experiment struct {
	Name string
	Desc string
	Run  func(w io.Writer, quick bool) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.Name] = e
}

// Get returns a registered experiment.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names lists registered experiments in order.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered experiment, ordered by name.
func All() []Experiment {
	var out []Experiment
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
