// Package bench is the experiment harness: it regenerates every entry of the
// paper's Table 1 and every theorem-level bound as a measured table (see
// README.md's experiment index). Algorithms and input graphs are resolved
// through the registries (internal/algo, internal/graph); tables render as
// aligned text or, through a JSON reporter, as machine-readable records for
// the benchmark trajectory artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Workers is the round-engine worker count applied to every experiment's
// simulation run (0 = the engine default, GOMAXPROCS). It is set by
// cmd/nccbench's -workers flag; changing it never changes measured rounds,
// messages, or loads — the engine is deterministic per seed — only the
// wall-clock time of the sweep.
var Workers int

// Table accumulates aligned rows for printing.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	var b strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(b.String(), " "))))
	for _, r := range t.Rows {
		b.Reset()
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// Reporter is where experiments send their output. In text mode it renders
// aligned tables and prose notes; in JSON mode it emits one self-describing
// JSON line per experiment header, table and note, so a quick sweep
// serializes into a diffable benchmark-trajectory artifact.
type Reporter struct {
	w    io.Writer
	json bool
	exp  string
}

// NewReporter creates a reporter writing to w, in JSON mode if jsonMode.
func NewReporter(w io.Writer, jsonMode bool) *Reporter {
	return &Reporter{w: w, json: jsonMode}
}

// jsonLine marshals v onto one line. Table rows and titles never fail to
// marshal; a failure would be a programming error, so it panics.
func (r *Reporter) jsonLine(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("bench: marshal report line: %v", err))
	}
	fmt.Fprintln(r.w, string(line))
}

// Begin announces the start of an experiment.
func (r *Reporter) Begin(e Experiment) {
	r.exp = e.Name
	if r.json {
		r.jsonLine(struct {
			Experiment string `json:"experiment"`
			Desc       string `json:"desc"`
		}{e.Name, e.Desc})
		return
	}
	fmt.Fprintf(r.w, "\n### experiment %s — %s\n", e.Name, e.Desc)
}

// Table reports one measured table.
func (r *Reporter) Table(t *Table) {
	if r.json {
		r.jsonLine(struct {
			Experiment string     `json:"experiment"`
			Table      string     `json:"table"`
			Headers    []string   `json:"headers"`
			Rows       [][]string `json:"rows"`
		}{r.exp, t.Title, t.Headers, t.Rows})
		return
	}
	t.Print(r.w)
}

// Perf reports one simulator-performance record for the experiment that just
// ran: wall time, heap allocations, and payload throughput (MB/s of uint64
// payload words moved through the engine, metered via ncc.TrafficTotals).
// "Op" is one full experiment run, so successive BENCH_*.json snapshots can
// track allocation and throughput trends of the primitive layer, not just
// the model-level rounds/messages tables. In text mode it prints as a
// one-line footer; in JSON mode it is a self-describing line alongside the
// experiment's tables.
func (r *Reporter) Perf(nsPerOp, allocsPerOp, mbPerS float64) {
	if r.json {
		r.jsonLine(struct {
			Experiment  string  `json:"experiment"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
			MBPerS      float64 `json:"mb_per_s"`
		}{r.exp, nsPerOp, allocsPerOp, mbPerS})
		return
	}
	fmt.Fprintf(r.w, "perf: %.0f ns/op, %.0f allocs/op, %.2f MB/s\n", nsPerOp, allocsPerOp, mbPerS)
}

// Notef reports a prose line (shape checks, caveats).
func (r *Reporter) Notef(format string, args ...any) {
	if r.json {
		r.jsonLine(struct {
			Experiment string `json:"experiment"`
			Note       string `json:"note"`
		}{r.exp, fmt.Sprintf(format, args...)})
		return
	}
	fmt.Fprintf(r.w, format+"\n", args...)
}

// Experiment is a named, runnable experiment. Quick mode shrinks the sweeps
// so the full suite stays test-friendly.
type Experiment struct {
	Name string
	Desc string
	Run  func(r *Reporter, quick bool) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.Name] = e
}

// Get returns a registered experiment.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names lists registered experiments in order.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered experiment, ordered by name.
func All() []Experiment {
	var out []Experiment
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
