package bench

import (
	"fmt"
	"io"
	"math"
	"sync"

	"ncc/internal/baseline"
	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/kmachine"
	"ncc/internal/ncc"
	"ncc/internal/seq"
	"ncc/internal/verify"
)

func logn(n int) float64 { return math.Log2(float64(max(n, 2))) }

// MeasureMST runs the distributed MST on a random graph with m edges and
// verifies it against Kruskal. Returns the run stats.
func MeasureMST(n, m int, seed int64) (ncc.Stats, error) {
	g := graph.GNM(n, m, seed)
	wg := graph.RandomWeights(g, int64(n)*int64(n), seed+1)
	perNode, st, err := core.RunMST(ncc.Config{N: n, Seed: seed, Strict: true, Workers: Workers}, wg)
	if err != nil {
		return st, err
	}
	if err := verify.MST(wg, core.CollectMSTEdges(perNode)); err != nil {
		return st, fmt.Errorf("mst verification: %w", err)
	}
	return st, nil
}

func init() {
	register(Experiment{
		Name: "mst",
		Desc: "Table 1 row 1 / Theorem 3.2: MST in O(log^4 n) rounds; centralized-gather baseline",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{32, 64, 128, 256}
			if quick {
				sizes = []int{32, 64}
			}
			t := NewTable("T1-MST: rounds vs n on G(n, m=3n), weights <= n^2",
				"n", "rounds", "log^4(n)", "rounds/log^4", "msgs", "centralized", "maxRecv/logn")
			for _, n := range sizes {
				st, err := MeasureMST(n, 3*n, 42)
				if err != nil {
					return err
				}
				cst, err := measureCentralizedMST(n, 3*n, 42)
				if err != nil {
					return err
				}
				l4 := math.Pow(logn(n), 4)
				t.Add(n, st.Rounds, fmt.Sprintf("%.0f", l4), float64(st.Rounds)/l4,
					st.Messages, cst.Rounds, float64(st.MaxRecvOffered)/logn(n))
			}
			t.Print(w)
			fmt.Fprintln(w, "shape check: rounds/log^4 stays bounded (polylog MST); centralized grows with m.")
			return nil
		},
	})
}

func measureCentralizedMST(n, m int, seed int64) (ncc.Stats, error) {
	g := graph.GNM(n, m, seed)
	wg := graph.RandomWeights(g, int64(n)*int64(n), seed+1)
	var mu sync.Mutex
	var forest [][2]int
	st, err := ncc.Run(ncc.Config{N: n, Seed: seed, Strict: true, Workers: Workers}, func(ctx *ncc.Context) {
		f := baseline.CentralizedMST(comm.NewSession(ctx), wg)
		if ctx.ID() == 0 {
			mu.Lock()
			forest = f
			mu.Unlock()
		}
	})
	if err != nil {
		return st, err
	}
	if err := verify.MST(wg, forest); err != nil {
		return st, fmt.Errorf("centralized mst: %w", err)
	}
	return st, nil
}

// MeasureBFS runs the broadcast-tree BFS on g from src and verifies it.
func MeasureBFS(g *graph.Graph, src int, seed int64) (ncc.Stats, error) {
	res, st, err := core.RunBFS(ncc.Config{N: g.N(), Seed: seed, Strict: true, Workers: Workers}, g, src)
	if err != nil {
		return st, err
	}
	dist := make([]int, g.N())
	parent := make([]int, g.N())
	for u, r := range res {
		dist[u], parent[u] = r.Dist, r.Parent
	}
	if err := verify.BFS(g, src, dist, parent, true); err != nil {
		return st, fmt.Errorf("bfs verification: %w", err)
	}
	return st, nil
}

func init() {
	register(Experiment{
		Name: "bfs",
		Desc: "Table 1 row 2 / Theorem 5.2: BFS in O((a+D+log n) log n) rounds",
		Run: func(w io.Writer, quick bool) error {
			type cfg struct {
				name string
				g    *graph.Graph
				a    int
			}
			side := 16
			n := 256
			if quick {
				side, n = 8, 64
			}
			cases := []cfg{
				{fmt.Sprintf("grid %dx%d", side, side), graph.Grid(side, side), 2},
				{fmt.Sprintf("tree n=%d", n), graph.BinaryTree(n), 1},
				{fmt.Sprintf("gnp n=%d", n), graph.GNP(n, 4*logn(n)/float64(n), 7), 0},
				{fmt.Sprintf("path n=%d", n/2), graph.Path(n / 2), 1},
			}
			t := NewTable("T1-BFS: rounds vs (a+D+log n) log n",
				"graph", "n", "D", "deg(a)", "rounds", "bound", "ratio")
			for _, c := range cases {
				d := graph.Diameter(c.g)
				dg, _ := graph.Degeneracy(c.g)
				st, err := MeasureBFS(c.g, 0, 11)
				if err != nil {
					return err
				}
				bound := (float64(dg) + float64(d) + logn(c.g.N())) * logn(c.g.N())
				t.Add(c.name, c.g.N(), d, dg, st.Rounds, fmt.Sprintf("%.0f", bound), float64(st.Rounds)/bound)
			}
			t.Print(w)
			fmt.Fprintln(w, "shape check: ratio stays within a constant band across shapes (D-dominated on path/grid).")
			return nil
		},
	})
}

// arboricitySweep runs fn over k-forest graphs of rising arboricity and
// tabulates rounds against the (a + log n) log n bound.
func arboricitySweep(w io.Writer, title string, n int, ks []int, seed int64,
	fn func(g *graph.Graph) (ncc.Stats, error), boundPow float64) error {
	t := NewTable(title, "arboricity<=k", "n", "m", "rounds", "bound", "ratio")
	for _, k := range ks {
		g := graph.KForest(n, k, seed+int64(k))
		st, err := fn(g)
		if err != nil {
			return err
		}
		bound := (float64(k) + logn(n)) * math.Pow(logn(n), boundPow)
		t.Add(k, n, g.M(), st.Rounds, fmt.Sprintf("%.0f", bound), float64(st.Rounds)/bound)
	}
	t.Print(w)
	return nil
}

func init() {
	register(Experiment{
		Name: "mis",
		Desc: "Table 1 row 3 / Theorem 5.3: MIS in O((a+log n) log n) rounds",
		Run: func(w io.Writer, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			return arboricitySweep(w, "T1-MIS: rounds vs (a+log n) log n", n, ks, 100,
				func(g *graph.Graph) (ncc.Stats, error) {
					in, st, err := core.RunMIS(ncc.Config{N: g.N(), Seed: 3, Strict: true, Workers: Workers}, g)
					if err != nil {
						return st, err
					}
					return st, verify.MIS(g, in)
				}, 1)
		},
	})
	register(Experiment{
		Name: "matching",
		Desc: "Table 1 row 4 / Theorem 5.4: maximal matching in O((a+log n) log n) rounds",
		Run: func(w io.Writer, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			return arboricitySweep(w, "T1-MM: rounds vs (a+log n) log n", n, ks, 200,
				func(g *graph.Graph) (ncc.Stats, error) {
					mate, st, err := core.RunMatching(ncc.Config{N: g.N(), Seed: 5, Strict: true, Workers: Workers}, g)
					if err != nil {
						return st, err
					}
					return st, verify.Matching(g, mate)
				}, 1)
		},
	})
	register(Experiment{
		Name: "coloring",
		Desc: "Table 1 row 5 / Theorem 5.5: O(a)-coloring in O((a+log n) log^{3/2} n) rounds",
		Run: func(w io.Writer, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			t := NewTable("T1-COL: rounds and palette vs arboricity",
				"arboricity<=k", "rounds", "bound", "ratio", "palette", "colorsUsed", "greedy(deg+1)")
			for _, k := range ks {
				g := graph.KForest(n, k, 300+int64(k))
				res, st, err := core.RunColoring(ncc.Config{N: n, Seed: 7, Strict: true, Workers: Workers}, g)
				if err != nil {
					return err
				}
				colors := make([]int, n)
				palette := 0
				for u, r := range res {
					colors[u], palette = r.Color, r.Palette
				}
				if err := verify.Coloring(g, colors, palette); err != nil {
					return err
				}
				_, greedy := seq.GreedyColoring(g)
				bound := (float64(k) + logn(n)) * math.Pow(logn(n), 1.5)
				t.Add(k, st.Rounds, fmt.Sprintf("%.0f", bound), float64(st.Rounds)/bound,
					palette, verify.ColorsUsed(colors), greedy)
			}
			t.Print(w)
			fmt.Fprintln(w, "shape check: palette = 2(1+eps)*ahat = O(a); rounds/bound bounded.")
			return nil
		},
	})
	register(Experiment{
		Name: "orientation",
		Desc: "Theorem 4.12: O(a)-orientation in O((a+log n) log n) rounds, outdegree O(a)",
		Run: func(w io.Writer, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8, 16, 32}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			t := NewTable("E-ORI: orientation quality and cost",
				"arboricity<=k", "rounds", "bound", "ratio", "maxOutdeg", "outdeg/k", "rescues")
			for _, k := range ks {
				g := graph.KForest(n, k, 400+int64(k))
				os, st, err := core.RunOrientation(ncc.Config{N: n, Seed: 9, Strict: true, Workers: Workers}, g, core.OrientParams{})
				if err != nil {
					return err
				}
				if err := verify.Orientation(g, core.OutLists(os), 0); err != nil {
					return err
				}
				rescues := 0
				for _, o := range os {
					rescues += o.Rescues
				}
				od := verify.MaxOutdegree(core.OutLists(os))
				bound := (float64(k) + logn(n)) * logn(n)
				t.Add(k, st.Rounds, fmt.Sprintf("%.0f", bound), float64(st.Rounds)/bound,
					od, float64(od)/float64(k), rescues)
			}
			t.Print(w)
			fmt.Fprintln(w, "shape check: outdeg/k bounded by a small constant (paper: <= 4); rescues == 0.")
			return nil
		},
	})
}

func init() {
	register(Experiment{
		Name: "primitives",
		Desc: "Theorems 2.2-2.6: Aggregate-and-Broadcast, Aggregation, tree setup, multicast",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{64, 256, 1024}
			if quick {
				sizes = []int{64, 256}
			}
			t1 := NewTable("E-AAB: Aggregate-and-Broadcast rounds vs n (setup excluded)",
				"n", "rounds", "log n", "rounds/log n")
			for _, n := range sizes {
				var setup, total int
				st, err := ncc.Run(ncc.Config{N: n, Seed: 1, Strict: true, Workers: Workers}, func(ctx *ncc.Context) {
					s := comm.NewSession(ctx)
					if ctx.ID() == 0 {
						setup = ctx.Round()
					}
					s.AggregateAndBroadcast(comm.U64(1), true, comm.CombineSum)
				})
				if err != nil {
					return err
				}
				total = st.Rounds
				r := total - setup
				t1.Add(n, r, fmt.Sprintf("%.0f", logn(n)), float64(r)/logn(n))
			}
			t1.Print(w)

			n := 128
			t2 := NewTable("E-AGG: Aggregation rounds vs global load L (n=128, one group per node)",
				"membersPerGroup", "L", "rounds", "L/n + log n", "ratio")
			for _, members := range []int{1, 4, 16} {
				st, err := measureAggregation(n, members)
				if err != nil {
					return err
				}
				L := n * members
				bound := float64(L)/float64(n) + logn(n)
				t2.Add(members, L, st.Rounds, fmt.Sprintf("%.0f", bound), float64(st.Rounds)/bound)
			}
			t2.Print(w)

			t3 := NewTable("E-TREE/E-MC: tree setup congestion and multicast rounds (n=128)",
				"membersPerGroup", "congestion", "O(L/n+log n)", "multicastRounds")
			for _, members := range []int{1, 4, 16} {
				cong, mcRounds, err := measureTreesMulticast(n, members)
				if err != nil {
					return err
				}
				bound := float64(members) + logn(n)
				t3.Add(members, cong, fmt.Sprintf("%.0f", bound), mcRounds)
			}
			t3.Print(w)
			fmt.Fprintln(w, "shape check: all ratios O(1); congestion tracks L/n + log n.")
			return nil
		},
	})
}

// measureAggregation times one Aggregation with `members` memberships per
// node (group g owned by node g, membership assignments round-robin).
func measureAggregation(n, members int) (ncc.Stats, error) {
	startRounds := make([]int, n)
	return runSession(n, 13, func(s *comm.Session) {
		me := s.Ctx.ID()
		startRounds[me] = s.Ctx.Round()
		var items []comm.Agg
		for j := 0; j < members; j++ {
			g := (me + j*37 + 1) % n
			items = append(items, comm.Agg{Group: uint64(g), Target: g, Val: comm.U64(1)})
		}
		got := s.Aggregate(items, comm.CombineSum, members)
		if len(got) == 0 {
			panic("aggregation produced no result")
		}
	})
}

func measureTreesMulticast(n, members int) (congestion int, mcRounds int, err error) {
	var mu sync.Mutex
	before := 0
	_, err = runSession(n, 17, func(s *comm.Session) {
		me := s.Ctx.ID()
		var items []comm.TreeItem
		for j := 0; j < members; j++ {
			items = append(items, comm.TreeItem{Group: uint64((me + j*13 + 1) % n), Origin: me})
		}
		trees := s.SetupTrees(items)
		c, _ := s.MaxAll(uint64(trees.Congestion()), true)
		if me == 0 {
			mu.Lock()
			congestion = int(c)
			before = s.Ctx.Round()
			mu.Unlock()
		}
		got := s.Multicast(trees, true, uint64(me), comm.U64(uint64(me)), members)
		if len(got) != members {
			panic(fmt.Sprintf("node got %d multicasts, want %d", len(got), members))
		}
		if me == 0 {
			mu.Lock()
			mcRounds = s.Ctx.Round() - before
			mu.Unlock()
		}
	})
	return congestion, mcRounds, err
}

func runSession(n int, seed int64, fn func(*comm.Session)) (ncc.Stats, error) {
	return ncc.Run(ncc.Config{N: n, Seed: seed, Strict: true, Workers: Workers}, func(ctx *ncc.Context) {
		fn(comm.NewSession(ctx))
	})
}

func init() {
	register(Experiment{
		Name: "capacity",
		Desc: "Section 1 bounds: gossip Theta(n/log n); broadcast butterfly vs direct; capacity sweep",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{256, 1024, 2048}
			if quick {
				sizes = []int{256, 512}
			}
			t := NewTable("E-CAP: broadcast and gossip rounds (CapFactor=1)",
				"n", "gossip", "n/cap", "direct bcast", "butterfly bcast(+setup)")
			for _, n := range sizes {
				cfg := ncc.Config{N: n, CapFactor: 1, Seed: 3, Strict: true, Workers: Workers}
				stG, err := ncc.Run(cfg, func(ctx *ncc.Context) {
					baseline.Gossip(ctx, uint64(ctx.ID()))
				})
				if err != nil {
					return err
				}
				stD, err := ncc.Run(cfg, func(ctx *ncc.Context) {
					baseline.DirectBroadcast(ctx, 0, 5)
				})
				if err != nil {
					return err
				}
				stB, err := ncc.Run(cfg, func(ctx *ncc.Context) {
					baseline.ButterflyBroadcast(comm.NewSession(ctx), 0, 5)
				})
				if err != nil {
					return err
				}
				t.Add(n, stG.Rounds, (n+cfg.Cap()-1)/cfg.Cap(), stD.Rounds, stB.Rounds)
			}
			t.Print(w)

			n := 128
			if quick {
				n = 64
			}
			t2 := NewTable("E-CAP: BFS on a star vs capacity (naive flooding vs broadcast trees)",
				"capFactor", "naive rounds", "tree-based rounds")
			star := graph.Star(n)
			for _, cf := range []int{1, 4, 16} {
				cfg := ncc.Config{N: n, CapFactor: cf, Seed: 5, Strict: true, Workers: Workers}
				stN, err := ncc.Run(cfg, func(ctx *ncc.Context) {
					baseline.NaiveBFS(comm.NewSession(ctx), star, 0)
				})
				if err != nil {
					return err
				}
				res, stT, err := core.RunBFS(cfg, star, 0)
				if err != nil {
					return err
				}
				_ = res
				t2.Add(cf, stN.Rounds, stT.Rounds)
			}
			t2.Print(w)
			fmt.Fprintln(w, "shape check: gossip ~ n/cap; butterfly flat in n; naive BFS improves with capacity, tree BFS already flat.")
			return nil
		},
	})
	register(Experiment{
		Name: "kmachine",
		Desc: "Appendix A / Corollary 2: k-machine simulation cost ~ n*T/k^2",
		Run: func(w io.Writer, quick bool) error {
			side := 8
			if quick {
				side = 6
			}
			g := graph.Grid(side, side)
			n := g.N()
			ks := []int{2, 4, 8, 16}
			if quick {
				ks = []int{2, 4}
			}
			t := NewTable("E-KM: k-machine rounds for the NCC BFS trace",
				"k", "nccRounds", "kRounds", "n*T/k^2 + T", "ratio", "cross msgs")
			program := func(ctx *ncc.Context) {
				s := comm.NewSession(ctx)
				o := core.Orient(s, g, core.OrientParams{})
				trees, lhat := core.BroadcastTrees(s, g, o)
				core.BFS(s, g, trees, lhat, 0)
			}
			for _, k := range ks {
				res, _, err := kmachine.Simulate(k, 4, ncc.Config{N: n, Seed: 5, Strict: true, Workers: Workers}, program)
				if err != nil {
					return err
				}
				pred := float64(n)*float64(res.NCCRounds)/float64(k*k) + float64(res.NCCRounds)
				t.Add(k, res.NCCRounds, res.KRounds, fmt.Sprintf("%.0f", pred), float64(res.KRounds)/pred, res.CrossMessages)
			}
			t.Print(w)
			fmt.Fprintln(w, "shape check: kRounds shrinks toward the T floor as k grows (~1/k^2 until saturated).")
			return nil
		},
	})
	register(Experiment{
		Name: "load",
		Desc: "Lemma 4.11 etc.: per-round receive load stays O(log n); zero drops",
		Run: func(w io.Writer, quick bool) error {
			n := 128
			if quick {
				n = 64
			}
			g := graph.KForest(n, 3, 21)
			t := NewTable("E-LOAD: max per-round offered receive load", "algorithm", "maxRecvOffered", "cap", "offered/log n", "dropped")
			type job struct {
				name string
				run  func() (ncc.Stats, error)
			}
			wg := graph.RandomWeights(g, 1000, 3)
			jobs := []job{
				{"orientation", func() (ncc.Stats, error) {
					_, st, err := core.RunOrientation(ncc.Config{N: n, Seed: 1, Strict: true, Workers: Workers}, g, core.OrientParams{})
					return st, err
				}},
				{"mis", func() (ncc.Stats, error) {
					_, st, err := core.RunMIS(ncc.Config{N: n, Seed: 2, Strict: true, Workers: Workers}, g)
					return st, err
				}},
				{"mst", func() (ncc.Stats, error) {
					_, st, err := core.RunMST(ncc.Config{N: n, Seed: 3, Strict: true, Workers: Workers}, wg)
					return st, err
				}},
			}
			for _, j := range jobs {
				st, err := j.run()
				if err != nil {
					return err
				}
				t.Add(j.name, st.MaxRecvOffered, ncc.Config{N: n}.Cap(),
					float64(st.MaxRecvOffered)/logn(n), st.Dropped())
			}
			t.Print(w)
			fmt.Fprintln(w, "shape check: offered/log n stays below the CapFactor (8); dropped == 0.")
			return nil
		},
	})
	register(Experiment{
		Name: "ablation",
		Desc: "design ablations: orientation-based vs naive tree setup; sketch MST vs gather; tree BFS vs flooding",
		Run: func(w io.Writer, quick bool) error {
			sizes := []int{256, 1024, 4096}
			if quick {
				sizes = []int{64, 256}
			}
			t := NewTable("A1: broadcast-tree setup on a star (rounds, incl. session+orientation)",
				"n", "naive (l=Delta)", "oriented (l=O(a))")
			for _, n := range sizes {
				star := graph.Star(n)
				stN, err := runSession(n, 31, func(s *comm.Session) {
					baseline.NaiveTreeSetup(s, star)
				})
				if err != nil {
					return err
				}
				stO, err := runSession(n, 31, func(s *comm.Session) {
					o := core.Orient(s, star, core.OrientParams{})
					core.BroadcastTrees(s, star, o)
				})
				if err != nil {
					return err
				}
				t.Add(n, stN.Rounds, stO.Rounds)
			}
			t.Print(w)

			n := 128
			if quick {
				n = 64
			}
			t2 := NewTable("A2: sketch MST vs centralized gather (rounds)",
				"m", "distributed", "centralized")
			for _, mult := range []int{1, 4, 16} {
				m := mult * n
				st, err := MeasureMST(n, m, 51)
				if err != nil {
					return err
				}
				cst, err := measureCentralizedMST(n, m, 51)
				if err != nil {
					return err
				}
				t2.Add(m, st.Rounds, cst.Rounds)
			}
			t2.Print(w)

			t3 := NewTable("A3: BFS flooding vs broadcast trees (rounds)",
				"graph", "naive", "trees")
			for _, c := range []struct {
				name string
				g    *graph.Graph
			}{
				{"star", graph.Star(n)},
				{"grid", graph.Grid(8, n/8)},
			} {
				stN, err := runSession(c.g.N(), 61, func(s *comm.Session) {
					baseline.NaiveBFS(s, c.g, 0)
				})
				if err != nil {
					return err
				}
				st, err := MeasureBFS(c.g, 0, 61)
				if err != nil {
					return err
				}
				t3.Add(c.name, stN.Rounds, st.Rounds)
			}
			t3.Print(w)
			fmt.Fprintln(w, "shape check: the naive columns grow with Delta resp. m (linear slopes), the")
			fmt.Fprintln(w, "primitive columns stay polylog-flat. At laptop-scale n the primitives' fixed")
			fmt.Fprintln(w, "polylog costs still dominate in absolute terms; the crossovers extrapolate to")
			fmt.Fprintln(w, "n in the 10^4-10^6 range.")
			return nil
		},
	})
}
