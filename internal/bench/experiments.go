package bench

import (
	"fmt"
	"math"
	"sync"

	"ncc/internal/algo"
	"ncc/internal/baseline"
	"ncc/internal/comm"
	"ncc/internal/core"
	"ncc/internal/graph"
	"ncc/internal/kmachine"
	"ncc/internal/ncc"
	"ncc/internal/param"
	"ncc/internal/seq"
	"ncc/internal/verify"
)

func logn(n int) float64 { return math.Log2(float64(max(n, 2))) }

// cfg builds the standard strict run configuration.
func cfg(n int, seed int64) ncc.Config {
	return ncc.Config{N: n, Seed: seed, Strict: true, Workers: Workers}
}

// mustGraph resolves a graph family through the registry; the experiments'
// specs are compile-time constants, so a rejection is a programming error.
func mustGraph(family string, seed int64, params param.Values) *graph.Graph {
	g, err := graph.Build(graph.Spec{Family: family, Params: params, Seed: seed})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return g
}

// measure resolves an algorithm through the registry, runs it, and requires
// the built-in verifier to pass.
func measure(name string, c ncc.Config, g *graph.Graph, p param.Values) (*algo.Result, error) {
	res, err := algo.MustGet(name).Execute(c, g, p)
	if err != nil {
		return nil, err
	}
	if !res.Verified {
		return nil, fmt.Errorf("%s verification: %s", name, res.VerifyErr)
	}
	return res, nil
}

// MeasureMST runs the distributed MST on a random graph with m edges and
// verifies it against Kruskal. Returns the run stats.
func MeasureMST(n, m int, seed int64) (ncc.Stats, error) {
	g := mustGraph("gnm", seed, param.Values{"n": float64(n), "m": float64(m)})
	res, err := measure("mst", cfg(n, seed), g, param.Values{"maxw": float64(n) * float64(n)})
	if err != nil {
		return ncc.Stats{}, err
	}
	return res.Stats, nil
}

func init() {
	register(Experiment{
		Name: "mst",
		Desc: "Table 1 row 1 / Theorem 3.2: MST in O(log^4 n) rounds; centralized-gather baseline",
		Run: func(r *Reporter, quick bool) error {
			sizes := []int{32, 64, 128, 256}
			if quick {
				sizes = []int{32, 64}
			}
			t := NewTable("T1-MST: rounds vs n on G(n, m=3n), weights <= n^2",
				"n", "rounds", "log^4(n)", "rounds/log^4", "msgs", "centralized", "maxRecv/logn")
			for _, n := range sizes {
				st, err := MeasureMST(n, 3*n, 42)
				if err != nil {
					return err
				}
				cst, err := measureCentralizedMST(n, 3*n, 42)
				if err != nil {
					return err
				}
				l4 := math.Pow(logn(n), 4)
				t.Add(n, st.Rounds, fmt.Sprintf("%.0f", l4), float64(st.Rounds)/l4,
					st.Messages, cst.Rounds, float64(st.MaxRecvOffered)/logn(n))
			}
			r.Table(t)
			r.Notef("shape check: rounds/log^4 stays bounded (polylog MST); centralized grows with m.")
			return nil
		},
	})
}

func measureCentralizedMST(n, m int, seed int64) (ncc.Stats, error) {
	g := mustGraph("gnm", seed, param.Values{"n": float64(n), "m": float64(m)})
	wg := graph.RandomWeights(g, int64(n)*int64(n), seed+1)
	var mu sync.Mutex
	var forest [][2]int
	st, err := ncc.Run(cfg(n, seed), func(ctx *ncc.Context) {
		f := baseline.CentralizedMST(comm.NewSession(ctx), wg)
		if ctx.ID() == 0 {
			mu.Lock()
			forest = f
			mu.Unlock()
		}
	})
	if err != nil {
		return st, err
	}
	if err := verify.MST(wg, forest); err != nil {
		return st, fmt.Errorf("centralized mst: %w", err)
	}
	return st, nil
}

// MeasureBFS runs the broadcast-tree BFS on g from src and verifies it.
func MeasureBFS(g *graph.Graph, src int, seed int64) (ncc.Stats, error) {
	res, err := measure("bfs", cfg(g.N(), seed), g, param.Values{"src": float64(src)})
	if err != nil {
		return ncc.Stats{}, err
	}
	return res.Stats, nil
}

func init() {
	register(Experiment{
		Name: "bfs",
		Desc: "Table 1 row 2 / Theorem 5.2: BFS in O((a+D+log n) log n) rounds",
		Run: func(r *Reporter, quick bool) error {
			type tc struct {
				name string
				g    *graph.Graph
			}
			side := 16
			n := 256
			if quick {
				side, n = 8, 64
			}
			cases := []tc{
				{fmt.Sprintf("grid %dx%d", side, side),
					mustGraph("grid", 0, param.Values{"rows": float64(side), "cols": float64(side)})},
				{fmt.Sprintf("tree n=%d", n),
					mustGraph("binarytree", 0, param.Values{"n": float64(n)})},
				{fmt.Sprintf("gnp n=%d", n),
					mustGraph("gnp", 7, param.Values{"n": float64(n), "p": 4 * logn(n) / float64(n)})},
				{fmt.Sprintf("path n=%d", n/2),
					mustGraph("path", 0, param.Values{"n": float64(n / 2)})},
			}
			t := NewTable("T1-BFS: rounds vs (a+D+log n) log n",
				"graph", "n", "D", "deg(a)", "rounds", "bound", "ratio")
			for _, c := range cases {
				d := graph.Diameter(c.g)
				dg, _ := graph.Degeneracy(c.g)
				st, err := MeasureBFS(c.g, 0, 11)
				if err != nil {
					return err
				}
				bound := (float64(dg) + float64(d) + logn(c.g.N())) * logn(c.g.N())
				t.Add(c.name, c.g.N(), d, dg, st.Rounds, fmt.Sprintf("%.0f", bound), float64(st.Rounds)/bound)
			}
			r.Table(t)
			r.Notef("shape check: ratio stays within a constant band across shapes (D-dominated on path/grid).")
			return nil
		},
	})
}

// arboricitySweep runs the named algorithm over k-forest graphs of rising
// arboricity and tabulates rounds against the (a + log n) log^boundPow n
// bound.
func arboricitySweep(r *Reporter, title, name string, n int, ks []int, gseed, seed int64, boundPow float64) error {
	t := NewTable(title, "arboricity<=k", "n", "m", "rounds", "bound", "ratio")
	for _, k := range ks {
		g := mustGraph("kforest", gseed+int64(k), param.Values{"n": float64(n), "k": float64(k)})
		res, err := measure(name, cfg(n, seed), g, nil)
		if err != nil {
			return err
		}
		bound := (float64(k) + logn(n)) * math.Pow(logn(n), boundPow)
		t.Add(k, n, g.M(), res.Stats.Rounds, fmt.Sprintf("%.0f", bound), float64(res.Stats.Rounds)/bound)
	}
	r.Table(t)
	return nil
}

func init() {
	register(Experiment{
		Name: "mis",
		Desc: "Table 1 row 3 / Theorem 5.3: MIS in O((a+log n) log n) rounds",
		Run: func(r *Reporter, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			return arboricitySweep(r, "T1-MIS: rounds vs (a+log n) log n", "mis", n, ks, 100, 3, 1)
		},
	})
	register(Experiment{
		Name: "matching",
		Desc: "Table 1 row 4 / Theorem 5.4: maximal matching in O((a+log n) log n) rounds",
		Run: func(r *Reporter, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			return arboricitySweep(r, "T1-MM: rounds vs (a+log n) log n", "matching", n, ks, 200, 5, 1)
		},
	})
	register(Experiment{
		Name: "coloring",
		Desc: "Table 1 row 5 / Theorem 5.5: O(a)-coloring in O((a+log n) log^{3/2} n) rounds",
		Run: func(r *Reporter, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			t := NewTable("T1-COL: rounds and palette vs arboricity",
				"arboricity<=k", "rounds", "bound", "ratio", "palette", "colorsUsed", "greedy(deg+1)")
			for _, k := range ks {
				g := mustGraph("kforest", 300+int64(k), param.Values{"n": float64(n), "k": float64(k)})
				res, err := measure("coloring", cfg(n, 7), g, nil)
				if err != nil {
					return err
				}
				_, greedy := seq.GreedyColoring(g)
				bound := (float64(k) + logn(n)) * math.Pow(logn(n), 1.5)
				t.Add(k, res.Stats.Rounds, fmt.Sprintf("%.0f", bound), float64(res.Stats.Rounds)/bound,
					int(res.Metrics["palette"]), int(res.Metrics["colorsUsed"]), greedy)
			}
			r.Table(t)
			r.Notef("shape check: palette = 2(1+eps)*ahat = O(a); rounds/bound bounded.")
			return nil
		},
	})
	register(Experiment{
		Name: "orientation",
		Desc: "Theorem 4.12: O(a)-orientation in O((a+log n) log n) rounds, outdegree O(a)",
		Run: func(r *Reporter, quick bool) error {
			n, ks := 128, []int{1, 2, 4, 8, 16, 32}
			if quick {
				n, ks = 64, []int{1, 4}
			}
			t := NewTable("E-ORI: orientation quality and cost",
				"arboricity<=k", "rounds", "bound", "ratio", "maxOutdeg", "outdeg/k", "rescues")
			for _, k := range ks {
				g := mustGraph("kforest", 400+int64(k), param.Values{"n": float64(n), "k": float64(k)})
				res, err := measure("orientation", cfg(n, 9), g, nil)
				if err != nil {
					return err
				}
				od := int(res.Metrics["maxOutdegree"])
				bound := (float64(k) + logn(n)) * logn(n)
				t.Add(k, res.Stats.Rounds, fmt.Sprintf("%.0f", bound), float64(res.Stats.Rounds)/bound,
					od, float64(od)/float64(k), int(res.Metrics["rescues"]))
			}
			r.Table(t)
			r.Notef("shape check: outdeg/k bounded by a small constant (paper: <= 4); rescues == 0.")
			return nil
		},
	})
}

func init() {
	register(Experiment{
		Name: "primitives",
		Desc: "Theorems 2.2-2.6: Aggregate-and-Broadcast, Aggregation, tree setup, multicast",
		Run: func(r *Reporter, quick bool) error {
			sizes := []int{64, 256, 1024}
			if quick {
				sizes = []int{64, 256}
			}
			t1 := NewTable("E-AAB: Aggregate-and-Broadcast rounds vs n (setup excluded)",
				"n", "rounds", "log n", "rounds/log n")
			for _, n := range sizes {
				var setup, total int
				st, err := ncc.Run(cfg(n, 1), func(ctx *ncc.Context) {
					s := comm.NewSession(ctx)
					if ctx.ID() == 0 {
						setup = ctx.Round()
					}
					comm.AggregateAndBroadcast(s, uint64(1), true, comm.Sum)
				})
				if err != nil {
					return err
				}
				total = st.Rounds
				rds := total - setup
				t1.Add(n, rds, fmt.Sprintf("%.0f", logn(n)), float64(rds)/logn(n))
			}
			r.Table(t1)

			n := 128
			t2 := NewTable("E-AGG: Aggregation rounds vs global load L (n=128, one group per node)",
				"membersPerGroup", "L", "rounds", "L/n + log n", "ratio")
			for _, members := range []int{1, 4, 16} {
				st, err := measureAggregation(n, members)
				if err != nil {
					return err
				}
				L := n * members
				bound := float64(L)/float64(n) + logn(n)
				t2.Add(members, L, st.Rounds, fmt.Sprintf("%.0f", bound), float64(st.Rounds)/bound)
			}
			r.Table(t2)

			t3 := NewTable("E-TREE/E-MC: tree setup congestion and multicast rounds (n=128)",
				"membersPerGroup", "congestion", "O(L/n+log n)", "multicastRounds")
			for _, members := range []int{1, 4, 16} {
				cong, mcRounds, err := measureTreesMulticast(n, members)
				if err != nil {
					return err
				}
				bound := float64(members) + logn(n)
				t3.Add(members, cong, fmt.Sprintf("%.0f", bound), mcRounds)
			}
			r.Table(t3)
			r.Notef("shape check: all ratios O(1); congestion tracks L/n + log n.")
			return nil
		},
	})
}

// measureAggregation times one Aggregation with `members` memberships per
// node (group g owned by node g, membership assignments round-robin).
func measureAggregation(n, members int) (ncc.Stats, error) {
	return runSession(n, 13, func(s *comm.Session) {
		me := s.Ctx.ID()
		var items []comm.Agg[uint64]
		for j := 0; j < members; j++ {
			g := (me + j*37 + 1) % n
			items = append(items, comm.Agg[uint64]{Group: uint64(g), Target: g, Val: 1})
		}
		got := comm.Aggregate(s, items, comm.Sum, members)
		if len(got) == 0 {
			panic("aggregation produced no result")
		}
	})
}

func measureTreesMulticast(n, members int) (congestion int, mcRounds int, err error) {
	var mu sync.Mutex
	before := 0
	_, err = runSession(n, 17, func(s *comm.Session) {
		me := s.Ctx.ID()
		var items []comm.TreeItem
		for j := 0; j < members; j++ {
			items = append(items, comm.TreeItem{Group: uint64((me + j*13 + 1) % n), Origin: me})
		}
		trees := s.SetupTrees(items)
		c, _ := s.MaxAll(uint64(trees.Congestion()), true)
		if me == 0 {
			mu.Lock()
			congestion = int(c)
			before = s.Ctx.Round()
			mu.Unlock()
		}
		got := comm.Multicast(s, trees, true, uint64(me), uint64(me), comm.U64Wire{}, members)
		if len(got) != members {
			panic(fmt.Sprintf("node got %d multicasts, want %d", len(got), members))
		}
		if me == 0 {
			mu.Lock()
			mcRounds = s.Ctx.Round() - before
			mu.Unlock()
		}
	})
	return congestion, mcRounds, err
}

func runSession(n int, seed int64, fn func(*comm.Session)) (ncc.Stats, error) {
	return ncc.Run(cfg(n, seed), func(ctx *ncc.Context) {
		fn(comm.NewSession(ctx))
	})
}

func init() {
	register(Experiment{
		Name: "capacity",
		Desc: "Section 1 bounds: gossip Theta(n/log n); broadcast butterfly vs direct; capacity sweep",
		Run: func(r *Reporter, quick bool) error {
			sizes := []int{256, 1024, 2048}
			if quick {
				sizes = []int{256, 512}
			}
			t := NewTable("E-CAP: broadcast and gossip rounds (CapFactor=1)",
				"n", "gossip", "n/cap", "direct bcast", "butterfly bcast(+setup)")
			for _, n := range sizes {
				c := cfg(n, 3)
				c.CapFactor = 1
				stG, err := ncc.Run(c, func(ctx *ncc.Context) {
					baseline.Gossip(ctx, uint64(ctx.ID()))
				})
				if err != nil {
					return err
				}
				stD, err := ncc.Run(c, func(ctx *ncc.Context) {
					baseline.DirectBroadcast(ctx, 0, 5)
				})
				if err != nil {
					return err
				}
				stB, err := ncc.Run(c, func(ctx *ncc.Context) {
					baseline.ButterflyBroadcast(comm.NewSession(ctx), 0, 5)
				})
				if err != nil {
					return err
				}
				t.Add(n, stG.Rounds, (n+c.Cap()-1)/c.Cap(), stD.Rounds, stB.Rounds)
			}
			r.Table(t)

			n := 128
			if quick {
				n = 64
			}
			t2 := NewTable("E-CAP: BFS on a star vs capacity (naive flooding vs broadcast trees)",
				"capFactor", "naive rounds", "tree-based rounds")
			star := mustGraph("star", 0, param.Values{"n": float64(n)})
			for _, cf := range []int{1, 4, 16} {
				c := cfg(n, 5)
				c.CapFactor = cf
				stN, err := ncc.Run(c, func(ctx *ncc.Context) {
					baseline.NaiveBFS(comm.NewSession(ctx), star, 0)
				})
				if err != nil {
					return err
				}
				res, err := measure("bfs", c, star, nil)
				if err != nil {
					return err
				}
				t2.Add(cf, stN.Rounds, res.Stats.Rounds)
			}
			r.Table(t2)
			r.Notef("shape check: gossip ~ n/cap; butterfly flat in n; naive BFS improves with capacity, tree BFS already flat.")
			return nil
		},
	})
	register(Experiment{
		Name: "kmachine",
		Desc: "Appendix A / Corollary 2: k-machine simulation cost ~ n*T/k^2",
		Run: func(r *Reporter, quick bool) error {
			side := 8
			if quick {
				side = 6
			}
			g := mustGraph("grid", 0, param.Values{"rows": float64(side), "cols": float64(side)})
			n := g.N()
			ks := []int{2, 4, 8, 16}
			if quick {
				ks = []int{2, 4}
			}
			t := NewTable("E-KM: k-machine rounds for the NCC BFS trace",
				"k", "nccRounds", "kRounds", "n*T/k^2 + T", "ratio", "cross msgs")
			program := func(ctx *ncc.Context) {
				s := comm.NewSession(ctx)
				o := core.Orient(s, g, core.OrientParams{})
				trees, lhat := core.BroadcastTrees(s, g, o)
				core.BFS(s, g, trees, lhat, 0)
			}
			for _, k := range ks {
				res, _, err := kmachine.Simulate(k, 4, cfg(n, 5), program)
				if err != nil {
					return err
				}
				pred := float64(n)*float64(res.NCCRounds)/float64(k*k) + float64(res.NCCRounds)
				t.Add(k, res.NCCRounds, res.KRounds, fmt.Sprintf("%.0f", pred), float64(res.KRounds)/pred, res.CrossMessages)
			}
			r.Table(t)
			r.Notef("shape check: kRounds shrinks toward the T floor as k grows (~1/k^2 until saturated).")
			return nil
		},
	})
	register(Experiment{
		Name: "load",
		Desc: "Lemma 4.11 etc.: per-round receive load stays O(log n); zero drops",
		Run: func(r *Reporter, quick bool) error {
			n := 128
			if quick {
				n = 64
			}
			g := mustGraph("kforest", 21, param.Values{"n": float64(n), "k": 3})
			t := NewTable("E-LOAD: max per-round offered receive load", "algorithm", "maxRecvOffered", "cap", "offered/log n", "dropped")
			for i, name := range []string{"orientation", "mis", "mst"} {
				res, err := measure(name, cfg(n, int64(i+1)), g, nil)
				if err != nil {
					return err
				}
				t.Add(name, res.Stats.MaxRecvOffered, ncc.Config{N: n}.Cap(),
					float64(res.Stats.MaxRecvOffered)/logn(n), res.Stats.Dropped())
			}
			r.Table(t)
			r.Notef("shape check: offered/log n stays below the CapFactor (8); dropped == 0.")
			return nil
		},
	})
	register(Experiment{
		Name: "ablation",
		Desc: "design ablations: orientation-based vs naive tree setup; sketch MST vs gather; tree BFS vs flooding",
		Run: func(r *Reporter, quick bool) error {
			sizes := []int{256, 1024, 4096}
			if quick {
				sizes = []int{64, 256}
			}
			t := NewTable("A1: broadcast-tree setup on a star (rounds, incl. session+orientation)",
				"n", "naive (l=Delta)", "oriented (l=O(a))")
			for _, n := range sizes {
				star := mustGraph("star", 0, param.Values{"n": float64(n)})
				stN, err := runSession(n, 31, func(s *comm.Session) {
					baseline.NaiveTreeSetup(s, star)
				})
				if err != nil {
					return err
				}
				stO, err := runSession(n, 31, func(s *comm.Session) {
					o := core.Orient(s, star, core.OrientParams{})
					core.BroadcastTrees(s, star, o)
				})
				if err != nil {
					return err
				}
				t.Add(n, stN.Rounds, stO.Rounds)
			}
			r.Table(t)

			n := 128
			if quick {
				n = 64
			}
			t2 := NewTable("A2: sketch MST vs centralized gather (rounds)",
				"m", "distributed", "centralized")
			for _, mult := range []int{1, 4, 16} {
				m := mult * n
				st, err := MeasureMST(n, m, 51)
				if err != nil {
					return err
				}
				cst, err := measureCentralizedMST(n, m, 51)
				if err != nil {
					return err
				}
				t2.Add(m, st.Rounds, cst.Rounds)
			}
			r.Table(t2)

			t3 := NewTable("A3: BFS flooding vs broadcast trees (rounds)",
				"graph", "naive", "trees")
			for _, c := range []struct {
				name string
				g    *graph.Graph
			}{
				{"star", mustGraph("star", 0, param.Values{"n": float64(n)})},
				{"grid", mustGraph("grid", 0, param.Values{"rows": 8, "cols": float64(n / 8)})},
			} {
				stN, err := runSession(c.g.N(), 61, func(s *comm.Session) {
					baseline.NaiveBFS(s, c.g, 0)
				})
				if err != nil {
					return err
				}
				st, err := MeasureBFS(c.g, 0, 61)
				if err != nil {
					return err
				}
				t3.Add(c.name, stN.Rounds, st.Rounds)
			}
			r.Table(t3)
			r.Notef("shape check: the naive columns grow with Delta resp. m (linear slopes), the")
			r.Notef("primitive columns stay polylog-flat. At laptop-scale n the primitives' fixed")
			r.Notef("polylog costs still dominate in absolute terms; the crossovers extrapolate to")
			r.Notef("n in the 10^4-10^6 range.")
			return nil
		},
	})
}
