package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Every registered experiment must run clean in quick mode and produce a
// table; this is the harness's own regression test.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a while")
	}
	for _, e := range All() {
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("experiment %s failed: %v", e.Name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Errorf("experiment %s produced no table:\n%s", e.Name, out)
			}
		})
	}
}

func TestTablePrinting(t *testing.T) {
	tb := NewTable("demo", "a", "longheader")
	tb.Add(1, 2.5)
	tb.Add("xyz", "w")
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "longheader", "2.50", "xyz"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("expected at least 8 experiments, got %v", names)
	}
	for _, want := range []string{"mst", "bfs", "mis", "matching", "coloring", "orientation", "primitives", "capacity", "kmachine", "load", "ablation"} {
		if _, ok := Get(want); !ok {
			t.Errorf("experiment %q not registered", want)
		}
	}
}
