package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Every registered experiment must run clean in quick mode and produce a
// table; this is the harness's own regression test.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a while")
	}
	for _, e := range All() {
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(NewReporter(&buf, false), true); err != nil {
				t.Fatalf("experiment %s failed: %v", e.Name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Errorf("experiment %s produced no table:\n%s", e.Name, out)
			}
		})
	}
}

// The JSON reporter must emit parseable lines carrying the same tables.
func TestReporterJSONLines(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.Add(1, 2.5)
	var buf bytes.Buffer
	r := NewReporter(&buf, true)
	r.Begin(Experiment{Name: "x", Desc: "demo experiment"})
	r.Table(tb)
	r.Notef("shape check: %d", 7)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line does not parse as JSON: %q: %v", line, err)
		}
		if v["experiment"] != "x" {
			t.Errorf("line missing experiment tag: %q", line)
		}
	}
	if !strings.Contains(lines[1], `"table":"demo"`) || !strings.Contains(lines[1], `"2.50"`) {
		t.Errorf("table line wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "shape check: 7") {
		t.Errorf("note line wrong: %q", lines[2])
	}
}

func TestTablePrinting(t *testing.T) {
	tb := NewTable("demo", "a", "longheader")
	tb.Add(1, 2.5)
	tb.Add("xyz", "w")
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "longheader", "2.50", "xyz"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("expected at least 8 experiments, got %v", names)
	}
	for _, want := range []string{"mst", "bfs", "mis", "matching", "coloring", "orientation", "primitives", "capacity", "kmachine", "load", "ablation"} {
		if _, ok := Get(want); !ok {
			t.Errorf("experiment %q not registered", want)
		}
	}
}
