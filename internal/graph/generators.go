package graph

import "math/rand/v2"

// rng builds a deterministic generator from a seed.
func rng(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0xda3e39cb94b95bdb))
}

// Empty returns the edgeless graph on n nodes.
func Empty(n int) *Graph { return NewBuilder(n).Build() }

// Complete returns K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Path returns the path 0-1-...-(n-1); arboricity 1, diameter n-1.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return b.Build()
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n)
	}
	return b.Build()
}

// Star returns the star with center 0; arboricity 1, maximum degree n-1. The
// paper's motivating worst case for naive neighborhood communication.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Grid returns the rows x cols grid; planar, arboricity <= 3, diameter
// rows+cols-2.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols torus (grid with wraparound).
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			b.AddEdge(u, u^(1<<i))
		}
	}
	return b.Build()
}

// BinaryTree returns the complete-ish binary tree on n nodes (node v has
// parent (v-1)/2); arboricity 1, diameter O(log n).
func BinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	return b.Build()
}

// RandomTree returns a uniform-attachment random tree: node v attaches to a
// uniform node among 0..v-1.
func RandomTree(n int, seed int64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, r.IntN(v))
	}
	return b.Build()
}

// Caterpillar returns a path of length n/2 with a leg hanging off every
// spine node; arboricity 1 with diameter Theta(n).
func Caterpillar(n int) *Graph {
	b := NewBuilder(n)
	spine := (n + 1) / 2
	for u := 0; u+1 < spine; u++ {
		b.AddEdge(u, u+1)
	}
	for v := spine; v < n; v++ {
		b.AddEdge(v, v-spine)
	}
	return b.Build()
}

// GNP returns an Erdos-Renyi G(n, p) graph.
func GNP(n int, p float64, seed int64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// GNM returns a uniform random graph with exactly m distinct edges (or the
// maximum possible). Rejection sampling needs incremental membership, which
// the append-only Builder no longer tracks, so GNM keeps its own packed-edge
// set; the loop consumes exactly two random draws per attempt (duplicate or
// not), preserving the seeded output of the historical map-based Builder.
func GNM(n, m int, seed int64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	seen := make(map[uint64]struct{}, m)
	for len(seen) < m {
		u, v := r.IntN(n), r.IntN(n)
		if u != v {
			lo, hi := min(u, v), max(u, v)
			key := uint64(lo)<<32 | uint64(hi)
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// KForest returns the union of k independent uniform random spanning trees on
// the same node set: arboricity at most k (and typically close to k), the
// canonical workload for the paper's arboricity sweeps.
func KForest(n, k int, seed int64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for t := 0; t < k; t++ {
		perm := r.Perm(n)
		for i := 1; i < n; i++ {
			b.AddEdge(perm[i], perm[r.IntN(i)])
		}
	}
	return b.Build()
}

// PreferentialAttachment returns a Barabasi-Albert style graph: each new node
// attaches to k existing nodes chosen proportionally to degree. Arboricity
// is at most k; degrees are heavy-tailed (a realistic social-network shape).
func PreferentialAttachment(n, k int, seed int64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	var targets []int // multiset of endpoints, degree-proportional
	// added is an ordered slice, not a map: appending endpoints to targets in
	// map-iteration order would make the "seeded" generator produce a
	// different graph every process run.
	added := make([]int, 0, k)
	contains := func(u int) bool {
		for _, x := range added {
			if x == u {
				return true
			}
		}
		return false
	}
	for v := 1; v < n; v++ {
		added = added[:0]
		for i := 0; i < k && i < v; i++ {
			var u int
			if len(targets) == 0 {
				u = r.IntN(v)
			} else {
				u = targets[r.IntN(len(targets))]
			}
			if u == v || contains(u) {
				u = r.IntN(v)
			}
			if u != v && !contains(u) {
				added = append(added, u)
				b.AddEdge(u, v)
			}
		}
		for _, u := range added {
			targets = append(targets, u, v)
		}
	}
	return b.Build()
}

// Bipartite returns a random bipartite graph between parts of size n1 and n2
// with edge probability p.
func Bipartite(n1, n2 int, p float64, seed int64) *Graph {
	r := rng(seed)
	b := NewBuilder(n1 + n2)
	for u := 0; u < n1; u++ {
		for v := 0; v < n2; v++ {
			if r.Float64() < p {
				b.AddEdge(u, n1+v)
			}
		}
	}
	return b.Build()
}

// Disjoint returns a graph of `parts` disjoint cliques of size `size` each
// (useful for testing disconnected inputs).
func Disjoint(parts, size int) *Graph {
	b := NewBuilder(parts * size)
	for p := 0; p < parts; p++ {
		base := p * size
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
	}
	return b.Build()
}
